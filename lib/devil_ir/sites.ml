(* The universe of coverable sites of a device: everything in a Devil
   spec that a workload can exercise at runtime. Mirrors the mutation
   analysis's view of "places a spec can be wrong" — a site that no
   workload covers is a site where a mutation survives. *)

type site =
  | S_reg of { reg : string; access : Ir.access }
  | S_template of { template : string; access : Ir.access }
  | S_bits of { reg : string; var : string; ranges : (int * int) list }
  | S_var of { var : string; access : Ir.access }
  | S_behaviour of { var : string; behaviour : string }
  | S_action of { owner : string; phase : string }
  | S_serial of { owner : string }

let access_label = function Ir.Read -> "read" | Ir.Write -> "write"

let site_id = function
  | S_reg { reg; access } -> Printf.sprintf "reg:%s:%s" reg (access_label access)
  | S_template { template; access } ->
      Printf.sprintf "template:%s:%s" template (access_label access)
  | S_bits { reg; var; ranges } ->
      Printf.sprintf "bits:%s:%s:%s" reg var
        (String.concat ","
           (List.map (fun (hi, lo) -> Printf.sprintf "%d-%d" hi lo) ranges))
  | S_var { var; access } -> Printf.sprintf "var:%s:%s" var (access_label access)
  | S_behaviour { var; behaviour } -> Printf.sprintf "behaviour:%s:%s" var behaviour
  | S_action { owner; phase } -> Printf.sprintf "action:%s:%s" owner phase
  | S_serial { owner } -> Printf.sprintf "serial:%s" owner

let pp_site fmt s = Format.pp_print_string fmt (site_id s)

let is_reg_site = function S_reg _ -> true | _ -> false

let site_access = function
  | S_reg { access; _ } | S_template { access; _ } | S_var { access; _ } ->
      Some access
  | S_bits _ | S_behaviour _ | S_action _ | S_serial _ -> None

(* An enum with no case mapping in a direction cannot be accessed that
   way at all: a '=>' case only encodes (writes) and a '<=' case only
   decodes, so e.g. a variable whose every case is one-directional
   write can never be read without a dynamic error. *)
let type_allows access (v : Ir.var) =
  match v.v_type with
  | Dtype.Enum cases ->
      List.exists
        (fun (c : Dtype.enum_case) ->
          match (access, c.dir) with
          | Ir.Read, (Dtype.Read | Dtype.Both) -> true
          | Ir.Write, (Dtype.Write | Dtype.Both) -> true
          | _ -> false)
        cases
  | _ -> true

(* A variable is readable (writable) when every register its chunks
   touch is, and its type maps in that direction; a memory cell is
   both. *)
let var_accesses (d : Ir.device) (v : Ir.var) =
  let reg_accesses =
    match v.v_chunks with
    | [] -> [ Ir.Read; Ir.Write ]
    | chunks ->
        let regs =
          List.filter_map (fun (c : Ir.chunk) -> Ir.find_reg d c.c_reg) chunks
        in
        let all p = regs <> [] && List.for_all p regs in
        (if all Ir.reg_readable then [ Ir.Read ] else [])
        @ if all Ir.reg_writable then [ Ir.Write ] else []
  in
  List.filter (fun access -> type_allows access v) reg_accesses

(* The write-side seed corpus: every value is in-type and writable, so
   a generator drawing from it never trips the §3.2 dynamic checks. *)
let canonical_writes (v : Ir.var) =
  match v.v_type with
  | Dtype.Bool -> [ Value.Bool false; Value.Bool true ]
  | Dtype.Int { signed; bits } ->
      let bits = min bits 30 in
      if signed then
        let hi = (1 lsl (bits - 1)) - 1 in
        List.sort_uniq compare [ Value.Int 0; Value.Int hi; Value.Int (-hi - 1) ]
      else
        let hi = (1 lsl bits) - 1 in
        List.sort_uniq compare [ Value.Int 0; Value.Int hi; Value.Int (hi / 2) ]
  | Dtype.Int_set { values; _ } ->
      List.filteri (fun i _ -> i < 8) (List.map (fun n -> Value.Int n) values)
  | Dtype.Enum cases ->
      List.filter_map
        (fun (c : Dtype.enum_case) ->
          if Dtype.writable_case c.dir then Some (Value.Enum c.case_name)
          else None)
        cases

let behaviours_of (v : Ir.var) =
  let b = v.v_behaviour in
  (if b.b_volatile then [ "volatile" ] else [])
  @ (match b.b_trigger with
    | None -> []
    | Some tr ->
        (if tr.tr_read then [ "trigger.read" ] else [])
        @ if tr.tr_write then [ "trigger.write" ] else [])
  @ if b.b_block then [ "block" ] else []

let action_sites owner (pre : Ir.action) (post : Ir.action) (set : Ir.action) =
  (if pre <> [] then [ S_action { owner; phase = "pre" } ] else [])
  @ (if post <> [] then [ S_action { owner; phase = "post" } ] else [])
  @ if set <> [] then [ S_action { owner; phase = "set" } ] else []

let universe (d : Ir.device) =
  let reg_sites =
    List.concat_map
      (fun (r : Ir.reg) ->
        (if Ir.reg_readable r then [ S_reg { reg = r.r_name; access = Read } ]
         else [])
        @ (if Ir.reg_writable r then [ S_reg { reg = r.r_name; access = Write } ]
           else [])
        @ action_sites r.r_name r.r_pre r.r_post r.r_set)
      d.d_regs
  in
  let template_sites =
    List.concat_map
      (fun (t : Ir.template) ->
        (if t.t_read <> None then
           [ S_template { template = t.t_name; access = Read } ]
         else [])
        @
        if t.t_write <> None then
          [ S_template { template = t.t_name; access = Write } ]
        else [])
      d.d_templates
  in
  let var_sites =
    List.concat_map
      (fun (v : Ir.var) ->
        List.map (fun access -> S_var { var = v.v_name; access })
          (var_accesses d v)
        @ List.map
            (fun (c : Ir.chunk) ->
              S_bits { reg = c.c_reg; var = v.v_name; ranges = c.c_ranges })
            v.v_chunks
        @ List.map
            (fun behaviour -> S_behaviour { var = v.v_name; behaviour })
            (behaviours_of v)
        @ action_sites v.v_name v.v_pre v.v_post v.v_set
        @ match v.v_serial with
          | Some _ -> [ S_serial { owner = v.v_name } ]
          | None -> [])
      (Ir.public_vars d)
  in
  let struct_sites =
    List.concat_map
      (fun (s : Ir.strct) ->
        match s.s_serial with
        | Some _ -> [ S_serial { owner = s.s_name } ]
        | None -> [])
      d.d_structs
  in
  reg_sites @ template_sites @ var_sites @ struct_sites
