(** The universe of coverable sites of a device (DESIGN.md §10).

    A {e site} is a place in a Devil spec that driver activity can
    exercise: a register in one access direction, a variable and the
    bit-range chunks its access compiles to, a declared behaviour
    ([volatile], triggers, [block]), an action, a serialization
    clause. {!universe} enumerates them; {!Devil_runtime.Coverage}
    marks them covered from a trace. The vocabulary deliberately
    parallels the mutation analysis: a site no workload covers is a
    site where a spec mutation goes undetected. *)

type site =
  | S_reg of { reg : string; access : Ir.access }
      (** A declared register, per readable/writable direction
          (template instances declared in the spec included). *)
  | S_template of { template : string; access : Ir.access }
      (** A parameterized register template, covered when any runtime
          instance of it (e.g. [I(23)]) is accessed. *)
  | S_bits of { reg : string; var : string; ranges : (int * int) list }
      (** One chunk of a variable's footprint: the bit ranges it
          occupies in one register. *)
  | S_var of { var : string; access : Ir.access }
      (** A public variable, per direction its registers support. *)
  | S_behaviour of { var : string; behaviour : string }
      (** ["volatile"], ["trigger.read"], ["trigger.write"] or
          ["block"] on a public variable. *)
  | S_action of { owner : string; phase : string }
      (** A non-empty pre/post/set action of a register or variable. *)
  | S_serial of { owner : string }
      (** A serialization clause of a variable or structure. *)

val universe : Ir.device -> site list
(** Every coverable site of the device, in declaration order. *)

val site_id : site -> string
(** A stable, human-readable key, e.g. ["reg:STATUS:read"] — the
    identity used by coverage reports and the mutated-site mapping. *)

val pp_site : Format.formatter -> site -> unit
val access_label : Ir.access -> string
val is_reg_site : site -> bool

(** {1 Site metadata}

    Enough structure for a harness generator to synthesize, from the
    universe alone, operations that can cover each site: which
    directions a variable supports, which direction a site is scoped
    to, and an in-type seed corpus for the write side. *)

val site_access : site -> Ir.access option
(** The access direction a site is scoped to: [Some] for register,
    template and variable sites, [None] for bit-range, behaviour,
    action and serialization sites (those are covered through whichever
    direction reaches them). *)

val var_accesses : Ir.device -> Ir.var -> Ir.access list
(** Directions the variable supports through the public interface: a
    variable is readable (writable) when every register its chunks
    touch is and its type maps in that direction — an enum all of whose
    cases are write-only ([=>]) can never be read. A pure memory cell
    supports both. *)

val canonical_writes : Ir.var -> Value.t list
(** A small, deterministic, in-type seed corpus for writing the
    variable — direction-filtered at the type level: both booleans, an
    integer type's extremes and zero, every member of a small set type
    (capped at 8), every {e writable} enum case and nothing else. Empty
    only for an enum with no writable case. *)
