type init_state = Ready | Want_icw2 | Want_icw3 | Want_icw4

type t = {
  mutable state : init_state;
  mutable initialized : bool;
  mutable single : bool;
  mutable need_icw4 : bool;
  mutable level_triggered : bool;
  mutable vector_base : int;
  mutable cascade : int;
  mutable icw4 : int;
  mutable imr : int;
  mutable irr : int;
  mutable isr : int;
  mutable read_isr : bool;  (* OCW3 read selection *)
  mutable special_mask : bool;
  mutable poll : bool;
  mutable int_callback : (bool -> unit) option;
  mutable last_int : bool;  (* last INT level the callback observed *)
}

let create () =
  {
    state = Ready;
    initialized = false;
    single = false;
    need_icw4 = false;
    level_triggered = false;
    vector_base = 0;
    cascade = 0;
    icw4 = 0;
    imr = 0xff;
    irr = 0;
    isr = 0;
    read_isr = false;
    special_mask = false;
    poll = false;
    int_callback = None;
    last_int = false;
  }

let initialized t = t.initialized
let vector_base t = t.vector_base
let imr t = t.imr
let irr t = t.irr
let isr t = t.isr
let auto_eoi t = t.icw4 land 0x02 <> 0

let highest_bit v =
  let rec go i = if i > 7 then None else if v land (1 lsl i) <> 0 then Some i else go (i + 1) in
  go 0

let pending t =
  let candidates = t.irr land lnot t.imr in
  match highest_bit candidates with
  | None -> None
  | Some line -> (
      (* A request interrupts only if no higher-priority line is in
         service (fully-nested mode). *)
      match highest_bit t.isr with
      | Some served when served <= line && not t.special_mask -> None
      | _ -> Some line)

let int_asserted t = t.initialized && Option.is_some (pending t)

(* Re-evaluate the INT output after any state change and report edges
   to the attached CPU/scheduler. Crucially this runs after an EOI
   clears an ISR bit: with a higher-priority line leaving service, a
   queued lower-priority request must re-assert INT immediately — real
   8259A priority-resolution behaviour the callback consumer (the
   event loop) depends on to drain wire-OR'd lines. *)
let update_int t =
  let level = int_asserted t in
  if level <> t.last_int then begin
    t.last_int <- level;
    match t.int_callback with Some f -> f level | None -> ()
  end

let set_int_callback t f =
  t.int_callback <- Some f;
  (* Sync the consumer with the current level, whatever it is. *)
  t.last_int <- int_asserted t;
  f t.last_int

let raise_irq t ~line =
  t.irr <- t.irr lor (1 lsl (line land 7));
  update_int t

let lower_irq t ~line =
  t.irr <- t.irr land lnot (1 lsl (line land 7));
  update_int t

let inta t =
  let result =
    match pending t with
    | None -> None
    | Some line ->
        t.irr <- t.irr land lnot (1 lsl line);
        if not (auto_eoi t) then t.isr <- t.isr lor (1 lsl line);
        Some (t.vector_base + line)
  in
  update_int t;
  result

let start_init t v =
  t.state <- Want_icw2;
  t.initialized <- false;
  t.single <- v land 0x02 <> 0;
  t.need_icw4 <- v land 0x01 <> 0;
  t.level_triggered <- v land 0x08 <> 0;
  t.imr <- 0;
  t.irr <- 0;
  t.isr <- 0;
  t.icw4 <- 0;
  t.read_isr <- false

let finish_init t = begin
  t.state <- Ready;
  t.initialized <- true
end

let write_ocw2 t v =
  let cmd = (v lsr 5) land 0x7 in
  let level = v land 0x7 in
  match cmd with
  | 0x1 ->
      (* non-specific EOI: clear the highest in-service bit *)
      (match highest_bit t.isr with
      | Some line -> t.isr <- t.isr land lnot (1 lsl line)
      | None -> ())
  | 0x3 -> t.isr <- t.isr land lnot (1 lsl level) (* specific EOI *)
  | _ -> ()

let write_ocw3 t v =
  (match v land 0x3 with
  | 0x2 -> t.read_isr <- false
  | 0x3 -> t.read_isr <- true
  | _ -> ());
  if v land 0x4 <> 0 then t.poll <- true;
  match (v lsr 5) land 0x3 with
  | 0x2 -> t.special_mask <- false
  | 0x3 -> t.special_mask <- true
  | _ -> ()

let write t ~width:_ ~offset ~value =
  let v = value land 0xff in
  (match offset with
  | 0 ->
      if v land 0x10 <> 0 then start_init t v
      else if v land 0x08 <> 0 then write_ocw3 t v
      else write_ocw2 t v
  | 1 -> (
      match t.state with
      | Want_icw2 ->
          t.vector_base <- v land 0xf8;
          if not t.single then t.state <- Want_icw3
          else if t.need_icw4 then t.state <- Want_icw4
          else finish_init t
      | Want_icw3 ->
          t.cascade <- v;
          if t.need_icw4 then t.state <- Want_icw4 else finish_init t
      | Want_icw4 ->
          t.icw4 <- v;
          finish_init t
      | Ready -> t.imr <- v)
  | _ -> ());
  update_int t

let read t ~width:_ ~offset =
  match offset with
  | 0 ->
      if t.poll then begin
        t.poll <- false;
        (* [inta] itself re-evaluates INT. *)
        match inta t with
        | Some vector -> 0x80 lor (vector - t.vector_base)
        | None -> 0
      end
      else if t.read_isr then t.isr
      else t.irr
  | 1 -> t.imr
  | _ -> 0xff

let model t = { Model.name = "pic8259"; read = read t; write = write t }
