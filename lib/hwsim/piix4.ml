type t = {
  disk : Ide_disk.t;
  memory : Bytes.t;
  mutable prd : int;
  mutable running : bool;
  mutable direction_to_memory : bool;
  mutable status_irq : bool;
  mutable status_error : bool;
  mutable latency : int;  (* work units per transfer; 0 = instantaneous *)
  mutable countdown : int option;  (* remaining work of a deferred transfer *)
}

let create ~disk ~memory_size =
  {
    disk;
    memory = Bytes.make memory_size '\000';
    prd = 0;
    running = false;
    direction_to_memory = false;
    status_irq = false;
    status_error = false;
    latency = 0;
    countdown = None;
  }

let set_latency t n = t.latency <- max 0 n

let memory t = t.memory
let irq_seen t = t.status_irq

let run_transfer t =
  let sector = Ide_disk.sector_bytes in
  match Ide_disk.dma_read_pending t.disk with
  | Some (lba, count) when t.direction_to_memory ->
      let ok = ref true in
      for s = 0 to count - 1 do
        let data = Ide_disk.read_sector t.disk ~lba:(lba + s) in
        let dst = t.prd + (s * sector) in
        if dst + sector <= Bytes.length t.memory then
          Bytes.blit data 0 t.memory dst sector
        else ok := false
      done;
      t.status_error <- not !ok;
      t.status_irq <- true;
      t.running <- false;
      Ide_disk.dma_complete t.disk
  | _ -> (
      match Ide_disk.dma_write_pending t.disk with
      | Some (lba, count) when not t.direction_to_memory ->
          let ok = ref true in
          for s = 0 to count - 1 do
            let src = t.prd + (s * sector) in
            if src + sector <= Bytes.length t.memory then
              Ide_disk.write_sector t.disk ~lba:(lba + s)
                (Bytes.sub t.memory src sector)
            else ok := false
          done;
          t.status_error <- not !ok;
          t.status_irq <- true;
          t.running <- false;
          Ide_disk.dma_complete t.disk
      | _ ->
          (* Started without a matching disk command: flag an error. *)
          t.status_error <- true;
          t.running <- false)

(* One unit of engine progress. A latency-deferred transfer still
   executes atomically when its countdown expires — the deferral
   models the bus time a real transfer takes, during which a polling
   driver burns a status read per unit while a queued driver runs the
   scheduler loop and hears about completion through the IRQ line. *)
let tick t =
  match t.countdown with
  | Some n when t.running ->
      if n <= 1 then begin
        t.countdown <- None;
        run_transfer t
      end
      else t.countdown <- Some (n - 1)
  | _ -> ()

let bm_read t ~width:_ ~offset =
  match offset with
  | 0 ->
      (if t.running then 0x01 else 0x00)
      lor if t.direction_to_memory then 0x08 else 0x00
  | 2 ->
      (* A status poll is itself a bus cycle, so it advances a deferred
         transfer one unit: polling still terminates with latency > 0,
         it just pays an I/O operation per unit of progress. *)
      tick t;
      (if t.running then 0x01 else 0x00)
      lor (if t.status_error then 0x02 else 0x00)
      lor if t.status_irq then 0x04 else 0x00
  | _ -> 0xff

let bm_write t ~width:_ ~offset ~value =
  match offset with
  | 0 ->
      t.direction_to_memory <- value land 0x08 <> 0;
      if value land 0x01 <> 0 then begin
        t.running <- true;
        if t.latency = 0 then run_transfer t
        else t.countdown <- Some t.latency
      end
      else begin
        t.running <- false;
        t.countdown <- None
      end
  | 2 ->
      (* Write-1-to-clear status bits. *)
      if value land 0x02 <> 0 then t.status_error <- false;
      if value land 0x04 <> 0 then t.status_irq <- false
  | _ -> ()

let prd_read t ~width:_ ~offset =
  match offset with 0 -> t.prd | _ -> 0

let prd_write t ~width:_ ~offset ~value =
  match offset with 0 -> t.prd <- value | _ -> ()

let bm_model t =
  { Model.name = "piix4-busmaster"; read = bm_read t; write = bm_write t }

let prd_model t =
  { Model.name = "piix4-prd"; read = prd_read t; write = prd_write t }
