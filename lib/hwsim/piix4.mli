(** Behavioural model of the Intel PIIX4 IDE busmaster function.

    The model owns a simulated system-memory buffer. When the driver
    starts the engine (bit 0 of the command register) while the
    attached {!Ide_disk} has a pending DMA command, the whole transfer
    completes between the disk and memory at the address programmed in
    the PRD register, the status register's interrupt bit is set and
    the engine stops — the "long DMA transfer" of paper §4.3, which
    costs no per-word I/O operations.

    Offsets: 0 = busmaster command (byte), 2 = busmaster status
    (byte); the PRD base address register is a separate 32-bit port. *)

type t

val create : disk:Ide_disk.t -> memory_size:int -> t
val bm_model : t -> Model.t
(** Command/status registers (offsets 0 and 2). *)

val prd_model : t -> Model.t
(** The 32-bit PRD address register (offset 0). *)

val memory : t -> Bytes.t
(** The simulated system memory DMA reads/writes. *)

val irq_seen : t -> bool

val set_latency : t -> int -> unit
(** Work units a started transfer takes before completing. The default
    0 keeps the historical instantaneous behaviour (the transfer runs
    inside the engine-start write). With [n > 0] the engine completes
    after [n] calls to {!tick} — or [n] busmaster-status reads, each of
    which advances it one unit, so a polling driver still terminates
    but pays one I/O operation per unit while an interrupt-driven
    driver pays none. *)

val tick : t -> unit
(** One unit of engine progress; no effect unless a latency-deferred
    transfer is running. Wired as a {!Devil_runtime.Sched} ticker. *)
