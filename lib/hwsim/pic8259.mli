(** Behavioural model of the Intel 8259A interrupt controller.

    Implements the ICW1..ICW4 initialization state machine (the paper's
    control-flow-serialization example: the number of ICWs consumed
    depends on the SNGL and IC4 bits of ICW1), the OCW1 interrupt mask,
    OCW2 EOI/priority commands, OCW3 read-register selection, and the
    IRR/ISR/IMR priority logic with the INTA handshake. *)

type t

val create : unit -> t
val model : t -> Model.t

val raise_irq : t -> line:int -> unit
(** A device asserts IRQ [line] (0..7). *)

val lower_irq : t -> line:int -> unit

val int_asserted : t -> bool
(** True when an unmasked request is pending and would drive INT. *)

val set_int_callback : t -> (bool -> unit) -> unit
(** Attaches the CPU-side INT pin: the callback fires on every edge of
    {!int_asserted} — after a request is raised or lowered, after an
    INTA, and after every register write, {e including an EOI that
    uncovers a queued lower-priority request} (the controller
    re-resolves priority the moment an ISR bit clears). Registering
    immediately reports the current level. One callback; the last
    registration wins. *)

val inta : t -> int option
(** CPU interrupt acknowledge: moves the highest-priority pending
    request into service and returns its vector (base + line). *)

val initialized : t -> bool
val vector_base : t -> int
val imr : t -> int
val irr : t -> int
val isr : t -> int
val auto_eoi : t -> bool
