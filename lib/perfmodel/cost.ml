let t_isa_io = 0.47e-6
let t_loop = 0.05e-6
let t_irq = 11.0e-6
let disk_rate = 14.25e6
let t_mmio_tick = 60.0e-9
let t_gfx_read = 300.0e-9
let t_gfx_write = 30.0e-9

type io_sample = { singles : int; block_items : int; irqs : int }

let pio_time { singles; block_items; irqs } =
  (float_of_int singles *. (t_isa_io +. t_loop))
  +. (float_of_int block_items *. t_isa_io)
  +. (float_of_int irqs *. t_irq)

let dma_time { singles; block_items; irqs } ~bytes =
  (float_of_int (singles + block_items) *. t_isa_io)
  +. (float_of_int irqs *. t_irq)
  +. (float_of_int bytes /. disk_rate)

module Metrics = Devil_runtime.Metrics

let sample_of_metrics ?(irqs = 0) m =
  let c = Metrics.count m in
  {
    singles = c "bus.reads" + c "bus.writes";
    block_items = c "bus.read_items" + c "bus.write_items";
    irqs;
  }
