(** The calibrated I/O cost model (DESIGN.md §4).

    Throughput in the paper's experiments is governed by the number of
    I/O operations — which our simulator counts exactly — converted to
    time with per-operation constants calibrated once against the
    paper's absolute numbers. Who wins and by what factor is produced
    by the counted operations, not by the calibration. *)

val t_isa_io : float
(** Seconds per ISA port transfer (any width): 0.47 us. *)

val t_loop : float
(** Extra CPU cost of one iteration of a driver-level C loop around a
    single transfer, compared to a [rep] string instruction: 50 ns. *)

val t_irq : float
(** Kernel interrupt service overhead per serviced interrupt: 11 us. *)

val disk_rate : float
(** Media transfer rate of the simulated UDMA2 disk: 14.25 MB/s. *)

val t_mmio_tick : float
(** Seconds per memory-mapped access to the graphics controller,
    averaged: 60 ns. One simulator tick. *)

val t_gfx_read : float
(** A PCI memory read stalls the CPU for the full round trip: 300 ns. *)

val t_gfx_write : float
(** A posted PCI write retires quickly: 30 ns. *)

type io_sample = {
  singles : int;  (** single transfers (each pays [t_loop] in a loop) *)
  block_items : int;  (** elements moved by string instructions *)
  irqs : int;  (** interrupts serviced *)
}

val pio_time : io_sample -> float
(** Programmed-I/O elapsed time under the model. *)

val dma_time : io_sample -> bytes:int -> float
(** Busmaster transfer: I/O programming plus media time. *)

val sample_of_metrics : ?irqs:int -> Devil_runtime.Metrics.t -> io_sample
(** Builds a sample from an observability registry: [singles] from
    [bus.reads + bus.writes], [block_items] from
    [bus.read_items + bus.write_items]. This is the accounting the
    model has always used — block {e transactions} are free, the
    {e elements} they move pay [t_isa_io] each — now read off the
    shared metrics vocabulary instead of an ad-hoc counting bus.
    [irqs] cannot be observed on the bus and defaults to 0. *)
