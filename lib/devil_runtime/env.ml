(* Shared scaffolding for the observability opt-in environment
   variables (DEVIL_TRACE / DEVIL_METRICS / DEVIL_PROFILE): one lookup
   helper owning the getenv + parse + warn-and-fall-back protocol, so
   the three from_env readers cannot drift apart. *)

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" | "false" | "no" -> Ok false
  | "1" | "on" | "true" | "yes" -> Ok true
  | _ -> Error (Printf.sprintf "%S is not a boolean" s)

let bool_forms = "0/off to disable, 1/on to enable"

let lookup ~var ~parse ~accepted ~fallback ~fallback_note =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> (
      match parse s with
      | Ok v -> Some v
      | Error why ->
          Printf.eprintf
            "devil: malformed %s=%s (%s); accepted forms: %s; %s\n%!" var s
            why accepted fallback_note;
          Some fallback)
