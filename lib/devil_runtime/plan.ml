module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Bitops = Devil_bits.Bitops
module Mask = Devil_bits.Mask

exception Device_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Device_error s)) fmt
let fail_str s = raise (Device_error s)

(* {1 Plan representation}

   Every name the interpreter would resolve per access is resolved here
   once, to an array index ([Ok slot]) or to the exact [Device_error]
   message the interpreter would produce ([Error msg]), raised at the
   same program point. Nothing about the device is consulted at access
   time except through these plans. *)

type io_point = { io_addr : int; io_width : int }

type operand_plan =
  | P_const of Value.t  (** literals, and wildcards resolved statically *)
  | P_var of { pv_name : string; pv_slot : (int, string) result }
  | P_fail of string  (** deferred failure, e.g. unsubstituted parameter *)

type assignment_plan =
  | P_set_var of { av_target : (int, string) result; av_value : operand_plan }
  | P_set_struct of {
      as_target : (int, string) result;
      as_fields : (string * (int, string) result * operand_plan) list;
    }

type action_plan = { ap_count : int; ap_items : assignment_plan list }

type cond_plan = {
  cp_name : string;
  cp_var : (int, string) result;
  cp_negated : bool;
  cp_value : operand_plan;
}

type serial_item_plan = {
  sip_cond : cond_plan option;
  sip_reg : (int, string) result;
}

type serial_plan = serial_item_plan list option

type reg_plan = {
  rp_reg : Ir.reg;
  rp_slot : int;  (** cache slot; -1 = runtime template instance *)
  rp_read : (io_point, string) result option;
  rp_write : (io_point, string) result option;
  rp_keep : int;  (** mask's covered-bit set *)
  rp_force : int;  (** mask's forced-bit value *)
  rp_base_keep : int;  (** cached bits surviving a sibling rewrite *)
  rp_base_neutral : int;  (** trigger-neutral bits of a sibling rewrite *)
  rp_refresh_any : bool;  (** volatile sibling forces a re-read (no exclusions) *)
  rp_pre : action_plan;
  rp_post : action_plan;
  rp_set : action_plan;
  rp_m_reads : string;  (** precomputed metric counter names *)
  rp_m_writes : string;
}

type gather_chunk = { gc_reg : (int, string) result; gc_ranges : (int * int) list }

type scatter_piece = {
  sp_slot : int;
  sp_hi : int;
  sp_lo : int;
  sp_src_hi : int;
  sp_src_lo : int;
}

type write_reg = { wr_rp : reg_plan; wr_refresh : bool }

type field_route = { fr_sname : string; fr_slot : int option }
type route = R_standalone | R_field of field_route

type var_plan = {
  vp_var : Ir.var;
  vp_gather : gather_chunk list;
  vp_scatter : scatter_piece list;
  vp_regs : (write_reg list, string) result;  (** distinct, chunk order *)
  vp_must_io : bool;  (** volatile or read trigger *)
  vp_route : route;
  vp_serial : serial_plan;
  vp_pre : action_plan;
  vp_post : action_plan;
  vp_set : action_plan;
  vp_block : (int, string) result;  (** block-capable register slot *)
  vp_k_read : string;  (** precomputed span keys: "<label>/var:<name>:..." *)
  vp_k_write : string;
  vp_k_bread : string;
  vp_k_bwrite : string;
}

type struct_plan = {
  st_strct : Ir.strct;
  st_regs : (write_reg list, string) result;
  st_fields : (string * (int, string) result) list;
  st_serial : serial_plan;
  st_k_read : string;  (** precomputed span keys *)
  st_k_write : string;
}

(* The compile environment survives in [t] so parameterized-register
   instances can be compiled (and memoized) on first use. *)
type cenv = {
  ce_device : Ir.device;
  ce_bases : (string * int) list;
  ce_label : string;
  ce_var_idx : (string, int) Hashtbl.t;
  ce_reg_idx : (string, int) Hashtbl.t;
  ce_struct_idx : (string, int) Hashtbl.t;
}

type t = {
  env : cenv;
  bus : Bus.t;
  debug : bool;
  label : string;
  trace : Trace.t option;
  metrics : Metrics.t option;
  profile : Profile.t option;
  regs : reg_plan array;
  vars : var_plan array;
  structs : struct_plan array;
  m_io_reads : string;
  m_io_writes : string;
  m_hits : string;
  m_misses : string;
  (* Mutable per-instance state, slot-indexed. *)
  cache : int array;
  cache_valid : bool array;
  simages : int array array;  (** struct slot -> reg slot -> image *)
  spresent : bool array array;
  sactive : bool array;  (** struct has a cache entry at all *)
  mem : Value.t option array;  (** memory-cell variables, by var slot *)
  tmpl_memo : (string, reg_plan) Hashtbl.t;
  rt_raw : (string, int) Hashtbl.t;  (** cache for template instances *)
  mutable depth : int;
}

let device t = t.env.ce_device

(* {1 Compilation} *)

let resolve_var env name =
  match Hashtbl.find_opt env.ce_var_idx name with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown device variable %s" name)

let resolve_reg env name =
  match Hashtbl.find_opt env.ce_reg_idx name with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown register %s" name)

let resolve_struct env name =
  match Hashtbl.find_opt env.ce_struct_idx name with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown structure %s" name)

(* Mirrors the interpreter's evaluation order: the bases lookup fails
   before the port-width lookup. *)
let resolve_point env (lp : Ir.located_port) =
  match List.assoc_opt lp.lp_port env.ce_bases with
  | None -> Error (Printf.sprintf "port %s has no base address" lp.lp_port)
  | Some base -> (
      match Ir.find_port env.ce_device lp.lp_port with
      | None -> Error (Printf.sprintf "unknown port %s" lp.lp_port)
      | Some p -> Ok { io_addr = base + lp.lp_offset; io_width = p.p_width })

let var_type env name =
  match Ir.find_var env.ce_device name with
  | Some v -> v.Ir.v_type
  | None -> Dtype.Bool (* placeholder; the target failure fires first *)

let compile_operand env (o : Ir.operand) ~(target_type : Dtype.t) =
  match o with
  | Ir.O_int n -> P_const (Value.Int n)
  | Ir.O_bool b -> P_const (Value.Bool b)
  | Ir.O_enum name -> P_const (Value.Enum name)
  | Ir.O_any -> (
      match target_type with
      | Dtype.Bool -> P_const (Value.Bool false)
      | Dtype.Int _ -> P_const (Value.Int 0)
      | Dtype.Int_set { values; _ } ->
          P_const (Value.Int (match values with v :: _ -> v | [] -> 0))
      | Dtype.Enum cases -> (
          match
            List.find_opt (fun c -> Dtype.writable_case c.Dtype.dir) cases
          with
          | Some c -> P_const (Value.Enum c.case_name)
          | None -> P_fail "no writable case for wildcard value"))
  | Ir.O_var src -> P_var { pv_name = src; pv_slot = resolve_var env src }
  | Ir.O_param p ->
      P_fail (Printf.sprintf "unsubstituted register parameter %s" p)

let compile_action env (a : Ir.action) =
  {
    ap_count = List.length a;
    ap_items =
      List.map
        (fun (assignment : Ir.assignment) ->
          match assignment with
          | Ir.Set_var { target; value } ->
              P_set_var
                {
                  av_target = resolve_var env target;
                  av_value =
                    compile_operand env value ~target_type:(var_type env target);
                }
          | Ir.Set_struct { target; fields } ->
              P_set_struct
                {
                  as_target = resolve_struct env target;
                  as_fields =
                    List.map
                      (fun (f, o) ->
                        ( f,
                          resolve_var env f,
                          compile_operand env o ~target_type:(var_type env f) ))
                      fields;
                })
        a;
  }

let compile_serial env (items : Ir.serial_item list option) : serial_plan =
  Option.map
    (List.map (fun (it : Ir.serial_item) ->
         {
           sip_cond =
             Option.map
               (fun (c : Ir.serial_cond) ->
                 {
                   cp_name = c.sc_var;
                   cp_var = resolve_var env c.sc_var;
                   cp_negated = c.sc_negated;
                   cp_value =
                     compile_operand env c.sc_value
                       ~target_type:(var_type env c.sc_var);
                 })
               it.si_cond;
           sip_reg = resolve_reg env it.si_reg;
         }))
    items

(* Same as the interpreter's scatter_bits, generalized to expose the
   positions so compile time can fold them into masks. *)
let scatter_apply (v : Ir.var) ~raw
    ~(update : string -> hi:int -> lo:int -> field:int -> unit) =
  let total = Ir.var_width v in
  let consumed = ref 0 in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          let field =
            Bitops.extract ~hi:(total - !consumed - 1)
              ~lo:(total - !consumed - w) raw
          in
          update c.c_reg ~hi ~lo ~field;
          consumed := !consumed + w)
        c.c_ranges)
    v.v_chunks

let neutral_raw (v : Ir.var) =
  let encode value =
    match Dtype.encode v.v_type value with
    | Ok raw -> Some raw
    | Error _ -> None
  in
  match v.v_behaviour.b_trigger with
  | Some { tr_write = true; tr_exempt = Some (Ir.Neutral value); _ } ->
      encode value
  | Some { tr_write = true; tr_exempt = Some (Ir.Only value); _ } -> (
      match encode value with
      | Some raw ->
          Some (if raw = 0 then 1 land Bitops.width_mask (Ir.var_width v) else 0)
      | None -> Some 0)
  | Some _ | None -> None

(* Fold the interpreter's compose_base neutral pass into two masks:
   base = (cached land keep) lor neutral. Sequential [insert]s into the
   cached image are exactly clearing the covered slices then or-ing. *)
let base_masks device (r : Ir.reg) =
  let keep = ref (-1) and neutral = ref 0 in
  List.iter
    (fun (v : Ir.var) ->
      match neutral_raw v with
      | None -> ()
      | Some raw ->
          scatter_apply v ~raw ~update:(fun reg ~hi ~lo ~field ->
              if String.equal reg r.Ir.r_name then begin
                keep := Bitops.insert ~hi ~lo ~field:0 !keep;
                neutral := Bitops.insert ~hi ~lo ~field !neutral
              end))
    (Ir.vars_of_reg device r.Ir.r_name);
  (!keep, !neutral)

(* A register rewrite must re-read the register first when a volatile
   sibling (other than the variables being rewritten) has bits in it
   that the device may have changed behind the cache — unless a read
   has side effects (read trigger), in which case the cached/zero bits
   are the only safe base. *)
let refresh_excluding device (r : Ir.reg) ~exclude =
  Ir.reg_readable r
  &&
  let sibs = Ir.vars_of_reg device r.Ir.r_name in
  List.exists
    (fun (v : Ir.var) ->
      v.v_behaviour.b_volatile && not (List.mem v.v_name exclude))
    sibs
  && not
       (List.exists
          (fun (v : Ir.var) ->
            match v.v_behaviour.b_trigger with
            | Some { tr_read = true; _ } -> true
            | Some _ | None -> false)
          sibs)

let covered_mask m =
  List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 (Mask.covered_bits m)

let compile_reg env ~slot (r : Ir.reg) =
  let base_keep, base_neutral = base_masks env.ce_device r in
  {
    rp_reg = r;
    rp_slot = slot;
    rp_read = Option.map (resolve_point env) r.r_read;
    rp_write = Option.map (resolve_point env) r.r_write;
    rp_keep = covered_mask r.r_mask;
    rp_force = Mask.forced_value r.r_mask;
    rp_base_keep = base_keep;
    rp_base_neutral = base_neutral;
    rp_refresh_any = refresh_excluding env.ce_device r ~exclude:[];
    rp_pre = compile_action env r.r_pre;
    rp_post = compile_action env r.r_post;
    rp_set = compile_action env r.r_set;
    rp_m_reads = "reg." ^ env.ce_label ^ "." ^ r.r_name ^ ".reads";
    rp_m_writes = "reg." ^ env.ce_label ^ "." ^ r.r_name ^ ".writes";
  }

(* Distinct chunk registers in order, failing like regs_in_chunk_order:
   the first unknown register wins. *)
let write_regs env regs ~exclude (chunk_regs : string list) =
  let seen = Hashtbl.create 4 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
        if Hashtbl.mem seen name then go acc rest
        else (
          Hashtbl.add seen name ();
          match resolve_reg env name with
          | Error m -> Error m
          | Ok i ->
              let rp = regs.(i) in
              let wr =
                {
                  wr_rp = rp;
                  wr_refresh = refresh_excluding env.ce_device rp.rp_reg ~exclude;
                }
              in
              go (wr :: acc) rest)
  in
  go [] chunk_regs

let compile_var env regs (v : Ir.var) =
  let vp_gather =
    List.map
      (fun (c : Ir.chunk) ->
        { gc_reg = resolve_reg env c.c_reg; gc_ranges = c.c_ranges })
      v.v_chunks
  in
  let vp_scatter =
    let total = Ir.var_width v in
    let consumed = ref 0 in
    List.concat_map
      (fun (c : Ir.chunk) ->
        let slot =
          match resolve_reg env c.c_reg with Ok i -> i | Error _ -> -1
        in
        List.map
          (fun (hi, lo) ->
            let w = hi - lo + 1 in
            let sp =
              {
                sp_slot = slot;
                sp_hi = hi;
                sp_lo = lo;
                sp_src_hi = total - !consumed - 1;
                sp_src_lo = total - !consumed - w;
              }
            in
            consumed := !consumed + w;
            sp)
          c.c_ranges)
      v.v_chunks
  in
  let vp_regs =
    write_regs env regs ~exclude:[ v.v_name ]
      (List.map (fun (c : Ir.chunk) -> c.c_reg) v.v_chunks)
  in
  let vp_must_io =
    v.v_behaviour.b_volatile
    ||
    match v.v_behaviour.b_trigger with
    | Some { tr_read = true; _ } -> true
    | Some _ | None -> false
  in
  let vp_route =
    match v.v_struct with
    | None -> R_standalone
    | Some sname ->
        R_field
          { fr_sname = sname; fr_slot = Hashtbl.find_opt env.ce_struct_idx sname }
  in
  let vp_block =
    if not v.v_behaviour.b_block then
      Error (Printf.sprintf "variable %s has no block behaviour" v.v_name)
    else
      match v.v_chunks with
      | [ { c_reg; c_ranges = [ (hi, lo) ] } ] -> (
          match resolve_reg env c_reg with
          | Error m -> Error m
          | Ok i ->
              if lo <> 0 || hi <> regs.(i).rp_reg.r_size - 1 then
                Error
                  (Printf.sprintf "block variable %s must span its whole register"
                     v.v_name)
              else Ok i)
      | _ ->
          Error
            (Printf.sprintf "block variable %s must map to a single register"
               v.v_name)
  in
  {
    vp_var = v;
    vp_gather;
    vp_scatter;
    vp_regs;
    vp_must_io;
    vp_route;
    vp_serial = compile_serial env v.v_serial;
    vp_pre = compile_action env v.v_pre;
    vp_post = compile_action env v.v_post;
    vp_set = compile_action env v.v_set;
    vp_block;
    vp_k_read = env.ce_label ^ "/var:" ^ v.v_name ^ ":read";
    vp_k_write = env.ce_label ^ "/var:" ^ v.v_name ^ ":write";
    vp_k_bread = env.ce_label ^ "/var:" ^ v.v_name ^ ":block_read";
    vp_k_bwrite = env.ce_label ^ "/var:" ^ v.v_name ^ ":block_write";
  }

let compile_struct env regs (s : Ir.strct) =
  let st_regs =
    (* struct_regs: fields in order, each field's chunk registers,
       deduplicated; an unknown field fails first. *)
    let rec fields acc = function
      | [] -> write_regs env regs ~exclude:s.s_fields (List.rev acc)
      | fname :: rest -> (
          match Ir.find_var env.ce_device fname with
          | None -> Error (Printf.sprintf "unknown device variable %s" fname)
          | Some v ->
              fields
                (List.rev_append
                   (List.map (fun (c : Ir.chunk) -> c.c_reg) v.v_chunks)
                   acc)
                rest)
    in
    fields [] s.s_fields
  in
  {
    st_strct = s;
    st_regs;
    st_fields = List.map (fun f -> (f, resolve_var env f)) s.s_fields;
    st_serial = compile_serial env s.s_serial;
    st_k_read = env.ce_label ^ "/struct:" ^ s.s_name ^ ":read";
    st_k_write = env.ce_label ^ "/struct:" ^ s.s_name ^ ":write";
  }

let compile ?(debug = false) ~label ?trace ?metrics ?profile
    (device : Ir.device) ~bus ~bases =
  List.iter
    (fun (p : Ir.port) ->
      if not (List.mem_assoc p.p_name bases) then
        fail "port %s has no base address" p.p_name)
    device.Ir.d_ports;
  let index names =
    let h = Hashtbl.create 17 in
    List.iteri (fun i n -> if not (Hashtbl.mem h n) then Hashtbl.add h n i) names;
    h
  in
  let env =
    {
      ce_device = device;
      ce_bases = bases;
      ce_label = label;
      ce_var_idx = index (List.map (fun (v : Ir.var) -> v.v_name) device.d_vars);
      ce_reg_idx = index (List.map (fun (r : Ir.reg) -> r.r_name) device.d_regs);
      ce_struct_idx =
        index (List.map (fun (s : Ir.strct) -> s.s_name) device.d_structs);
    }
  in
  let regs =
    Array.of_list (List.mapi (fun i r -> compile_reg env ~slot:i r) device.d_regs)
  in
  let vars = Array.of_list (List.map (compile_var env regs) device.d_vars) in
  let structs =
    Array.of_list (List.map (compile_struct env regs) device.d_structs)
  in
  let nregs = Array.length regs and nstructs = Array.length structs in
  {
    env;
    bus;
    debug;
    label;
    trace;
    metrics;
    profile;
    regs;
    vars;
    structs;
    m_io_reads = "io." ^ label ^ ".reg_reads";
    m_io_writes = "io." ^ label ^ ".reg_writes";
    m_hits = "cache." ^ label ^ ".hits";
    m_misses = "cache." ^ label ^ ".misses";
    cache = Array.make (max nregs 1) 0;
    cache_valid = Array.make (max nregs 1) false;
    simages = Array.init (max nstructs 1) (fun _ -> Array.make (max nregs 1) 0);
    spresent =
      Array.init (max nstructs 1) (fun _ -> Array.make (max nregs 1) false);
    sactive = Array.make (max nstructs 1) false;
    mem = Array.make (max (Array.length vars) 1) None;
    tmpl_memo = Hashtbl.create 4;
    rt_raw = Hashtbl.create 4;
    depth = 0;
  }

(* {1 Observability hooks} *)

let note_reg_io t (rp : reg_plan) ~write raw =
  (match t.metrics with
  | Some m ->
      if write then begin
        Metrics.incr m t.m_io_writes;
        Metrics.incr m rp.rp_m_writes
      end
      else begin
        Metrics.incr m t.m_io_reads;
        Metrics.incr m rp.rp_m_reads
      end
  | None -> ());
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (if write then
           Trace.Reg_write { dev = t.label; reg = rp.rp_reg.Ir.r_name; raw }
         else Trace.Reg_read { dev = t.label; reg = rp.rp_reg.Ir.r_name; raw })
  | None -> ()

let note_cache t reg_name ~hit =
  (match t.metrics with
  | Some m -> Metrics.incr m (if hit then t.m_hits else t.m_misses)
  | None -> ());
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (if hit then Trace.Cache_hit { dev = t.label; reg = reg_name }
         else Trace.Cache_miss { dev = t.label; reg = reg_name })
  | None -> ()

let note_serialized t ~owner (order : reg_plan list) =
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (Trace.Serialized
           {
             dev = t.label;
             owner;
             order = List.map (fun rp -> rp.rp_reg.Ir.r_name) order;
           })
  | None -> ()

let note_var_read t name =
  match t.trace with
  | Some tr -> Trace.emit tr (Trace.Var_read { dev = t.label; var = name })
  | None -> ()

let note_var_write t name regs =
  match t.trace with
  | Some tr ->
      Trace.emit tr (Trace.Var_write { dev = t.label; var = name; regs })
  | None -> ()

let note_struct_write t name fields regs =
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (Trace.Struct_write { dev = t.label; strct = name; fields; regs })
  | None -> ()

(* {1 Cache primitives} *)

let cache_store t (rp : reg_plan) raw =
  if rp.rp_slot >= 0 then begin
    t.cache.(rp.rp_slot) <- raw;
    t.cache_valid.(rp.rp_slot) <- true
  end
  else Hashtbl.replace t.rt_raw rp.rp_reg.Ir.r_name raw

let cached t (rp : reg_plan) =
  if rp.rp_slot >= 0 then
    if t.cache_valid.(rp.rp_slot) then Some t.cache.(rp.rp_slot) else None
  else Hashtbl.find_opt t.rt_raw rp.rp_reg.Ir.r_name

let invalidate_cache t =
  Array.fill t.cache_valid 0 (Array.length t.cache_valid) false;
  Array.fill t.sactive 0 (Array.length t.sactive) false;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) false) t.spresent;
  Hashtbl.reset t.rt_raw;
  match t.trace with
  | Some tr -> Trace.emit tr (Trace.Cache_invalidated { dev = t.label })
  | None -> ()

let cached_raw t reg =
  match Hashtbl.find_opt t.env.ce_reg_idx reg with
  | Some i -> if t.cache_valid.(i) then Some t.cache.(i) else None
  | None -> Hashtbl.find_opt t.rt_raw reg

let ok_point = function Ok (p : io_point) -> p | Error m -> fail_str m

let gather t (gcs : gather_chunk list) ~(image : gather_chunk -> int) =
  ignore t;
  List.fold_left
    (fun acc gc ->
      let reg_raw = image gc in
      List.fold_left
        (fun acc (hi, lo) ->
          let w = hi - lo + 1 in
          (acc lsl w) lor Bitops.extract ~hi ~lo reg_raw)
        acc gc.gc_ranges)
    0 gcs

let scatter_into t (pieces : scatter_piece list) ~raw
    ~(images : (int * int ref) list) =
  ignore t;
  List.iter
    (fun sp ->
      match List.assoc_opt sp.sp_slot images with
      | Some img ->
          let field = Bitops.extract ~hi:sp.sp_src_hi ~lo:sp.sp_src_lo raw in
          img := Bitops.insert ~hi:sp.sp_hi ~lo:sp.sp_lo ~field !img
      | None -> ())
    pieces

(* {1 The access engine} *)

let max_action_depth = 32

let rec with_depth t f =
  if t.depth > max_action_depth then
    fail "action recursion exceeds %d levels (cyclic pre-actions?)"
      max_action_depth
  else begin
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match f () with
    | result ->
        finally ();
        result
    | exception e ->
        finally ();
        raise e
  end

and read_reg_io t (rp : reg_plan) =
  match rp.rp_read with
  | None -> fail "register %s is not readable" rp.rp_reg.Ir.r_name
  | Some pt ->
      run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
      let pt = ok_point pt in
      let raw = t.bus.Bus.read ~width:pt.io_width ~addr:pt.io_addr in
      run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
      cache_store t rp raw;
      note_reg_io t rp ~write:false raw;
      raw

and write_reg_io t (rp : reg_plan) raw =
  match rp.rp_write with
  | None -> fail "register %s is not writable" rp.rp_reg.Ir.r_name
  | Some pt ->
      run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
      let frame = raw land rp.rp_keep lor rp.rp_force in
      let pt = ok_point pt in
      t.bus.Bus.write ~width:pt.io_width ~addr:pt.io_addr ~value:frame;
      run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
      run_action ~what:(Trace.Set, rp.rp_reg.Ir.r_name) t rp.rp_set;
      cache_store t rp raw;
      note_reg_io t rp ~write:true raw

(* Base image for rewriting a register; see Instance.compose_base. When
   the plan says a volatile sibling's bits may be stale, the register is
   re-read first so the rewrite carries fresh device bits. *)
and compose_base t (wr : write_reg) =
  if wr.wr_refresh then ignore (read_reg_io t wr.wr_rp);
  let base = match cached t wr.wr_rp with Some raw -> raw | None -> 0 in
  (base land wr.wr_rp.rp_base_keep) lor wr.wr_rp.rp_base_neutral

and eval_operand ?self t (op : operand_plan) : Value.t =
  match op with
  | P_const v -> v
  | P_fail msg -> fail_str msg
  | P_var { pv_name; pv_slot } -> (
      match self with
      | Some (name, value) when String.equal name pv_name -> value
      | _ -> (
          match pv_slot with
          | Ok i -> get_internal t i
          | Error m -> fail_str m))

and run_action ?self ?what t (ap : action_plan) =
  if ap.ap_count = 0 then ()
  else begin
    match (t.profile, what) with
    | Some p, Some (phase, owner) ->
        let s =
          Profile.enter p
            (t.label ^ "/action:" ^ owner ^ ":" ^ Trace.phase_label phase)
        in
        (match run_action_body ?self ?what t ap with
        | () -> Profile.exit p s
        | exception e ->
            Profile.exit p s;
            raise e)
    | _ -> run_action_body ?self ?what t ap
  end

and run_action_body ?self ?what t (ap : action_plan) =
  begin
    (match (t.trace, what) with
    | Some tr, Some (phase, owner) ->
        Trace.emit tr
          (Trace.Action
             { dev = t.label; owner; phase; assignments = ap.ap_count })
    | _ -> ());
    if t.depth > max_action_depth then
      fail "action recursion exceeds %d levels (cyclic pre-actions?)"
        max_action_depth;
    t.depth <- t.depth + 1;
    Fun.protect
      ~finally:(fun () -> t.depth <- t.depth - 1)
      (fun () ->
        List.iter
          (fun (ass : assignment_plan) ->
            match ass with
            | P_set_var { av_target; av_value } ->
                let ti =
                  match av_target with Ok i -> i | Error m -> fail_str m
                in
                let v = eval_operand ?self t av_value in
                set_internal t ti v
            | P_set_struct { as_target; as_fields } ->
                let values =
                  List.map
                    (fun (fname, fres, op) ->
                      (match fres with Error m -> fail_str m | Ok _ -> ());
                      (fname, eval_operand ?self t op))
                    as_fields
                in
                let si =
                  match as_target with Ok i -> i | Error m -> fail_str m
                in
                set_struct_internal t si values)
          ap.ap_items)
  end

and get_internal t i : Value.t =
  (* The span wrappers below match the profile handle before anything
     else, so the disabled path costs one branch and a tail call — no
     closure, mirroring the note_* hooks. Spans sit on the internal
     accessors (not just the public entry points) so nested accesses
     made by actions are attributed to their own site. *)
  match t.profile with
  | None -> get_internal_body t i
  | Some p ->
      let s = Profile.enter p t.vars.(i).vp_k_read in
      (match get_internal_body t i with
      | v ->
          Profile.exit p s;
          v
      | exception e ->
          Profile.exit p s;
          raise e)

and get_internal_body t i : Value.t =
  let vp = t.vars.(i) in
  let v = vp.vp_var in
  note_var_read t v.v_name;
  if v.v_chunks = [] then
    match t.mem.(i) with
    | Some value -> value
    | None -> (
        match v.v_type with
        | Dtype.Bool -> Value.Bool false
        | Dtype.Int _ -> Value.Int 0
        | Dtype.Int_set { values; _ } ->
            Value.Int (match values with x :: _ -> x | [] -> 0)
        | Dtype.Enum _ -> fail "memory variable %s was never assigned" v.v_name)
  else
    match vp.vp_route with
    | R_field fr -> get_field t vp fr
    | R_standalone -> get_standalone t vp

and get_field t (vp : var_plan) (fr : field_route) =
  let image (gc : gather_chunk) =
    let in_struct =
      match fr.fr_slot with
      | Some si when t.sactive.(si) -> (
          match gc.gc_reg with
          | Ok ri when t.spresent.(si).(ri) -> Some t.simages.(si).(ri)
          | _ -> None)
      | _ -> None
    in
    match in_struct with
    | Some img -> img
    | None -> (
        match gc.gc_reg with
        | Ok ri when t.cache_valid.(ri) -> t.cache.(ri)
        | _ ->
            fail
              "field %s of structure %s read before the structure (call \
               get_struct first)"
              vp.vp_var.v_name fr.fr_sname)
  in
  let raw = gather t vp.vp_gather ~image in
  decode_checked t vp.vp_var raw

and get_standalone t (vp : var_plan) =
  let v = vp.vp_var in
  run_action ~what:(Trace.Pre, v.v_name) t vp.vp_pre;
  let image (gc : gather_chunk) =
    match gc.gc_reg with
    | Error m -> fail_str m
    | Ok ri ->
        let rp = t.regs.(ri) in
        if vp.vp_must_io then read_reg_io t rp
        else if t.cache_valid.(ri) then begin
          note_cache t rp.rp_reg.Ir.r_name ~hit:true;
          t.cache.(ri)
        end
        else (
          match rp.rp_read with
          | Some _ ->
              note_cache t rp.rp_reg.Ir.r_name ~hit:false;
              read_reg_io t rp
          | None ->
              fail "variable %s is write-only and has no cached value" v.v_name)
  in
  let raw = gather t vp.vp_gather ~image in
  run_action ~what:(Trace.Post, v.v_name) t vp.vp_post;
  decode_checked t v raw

and decode_checked t (v : Ir.var) raw =
  if t.debug then begin
    match Dtype.validate_read_raw v.v_type raw with
    | Ok () -> ()
    | Error msg -> fail "variable %s: %s" v.v_name msg
  end;
  match Dtype.decode v.v_type raw with
  | Ok value -> value
  | Error msg -> fail "variable %s: %s" v.v_name msg

and encode_checked (v : Ir.var) value =
  match Dtype.encode v.v_type value with
  | Ok raw -> raw
  | Error msg -> fail "variable %s: %s" v.v_name msg

and eval_serial_cond t ?self (cp : cond_plan) =
  let from_var () =
    match cp.cp_var with Ok i -> get_internal t i | Error m -> fail_str m
  in
  let actual =
    match self with
    | Some values -> (
        match List.assoc_opt cp.cp_name values with
        | Some v -> v
        | None -> from_var ())
    | None -> from_var ()
  in
  (match cp.cp_var with Error m -> fail_str m | Ok _ -> ());
  let expected = eval_operand t cp.cp_value in
  let eq = Value.equal actual expected in
  if cp.cp_negated then not eq else eq

and ordered_regs t ?self ~(serial : serial_plan) ~default () =
  match serial with
  | None -> default
  | Some items ->
      List.filter_map
        (fun (sip : serial_item_plan) ->
          let enabled =
            match sip.sip_cond with
            | None -> true
            | Some cp -> eval_serial_cond t ?self cp
          in
          if enabled then
            Some
              (match sip.sip_reg with
              | Ok ri -> t.regs.(ri)
              | Error m -> fail_str m)
          else None)
        items

and set_internal t i value =
  match t.profile with
  | None -> set_internal_body t i value
  | Some p ->
      let s = Profile.enter p t.vars.(i).vp_k_write in
      (match set_internal_body t i value with
      | () -> Profile.exit p s
      | exception e ->
          Profile.exit p s;
          raise e)

and set_internal_body t i value =
  let vp = t.vars.(i) in
  let v = vp.vp_var in
  if v.v_chunks = [] then begin
    (match Dtype.validate_write v.v_type value with
    | Ok () -> ()
    | Error msg -> fail "variable %s: %s" v.v_name msg);
    t.mem.(i) <- Some value;
    note_var_write t v.v_name []
  end
  else begin
    let raw = encode_checked v value in
    run_action ~what:(Trace.Pre, v.v_name) t vp.vp_pre;
    let wrs = match vp.vp_regs with Ok l -> l | Error m -> fail_str m in
    let images =
      List.map (fun wr -> (wr.wr_rp.rp_slot, ref (compose_base t wr))) wrs
    in
    scatter_into t vp.vp_scatter ~raw ~images;
    let default = List.map (fun wr -> wr.wr_rp) wrs in
    let order =
      ordered_regs t ~self:[ (v.v_name, value) ] ~serial:vp.vp_serial ~default
        ()
    in
    (match vp.vp_serial with
    | Some _ -> note_serialized t ~owner:v.v_name order
    | None -> ());
    (* Same emission point as the interpreter: after compose/scatter,
       right before the register writes it announces. *)
    note_var_write t v.v_name
      (List.map (fun (rp : reg_plan) -> rp.rp_reg.Ir.r_name) order);
    List.iter
      (fun (rp : reg_plan) ->
        (* List.assoc raising Not_found here matches the interpreter's
           Hashtbl.find on a serialized register foreign to the
           variable. *)
        write_reg_io t rp !(List.assoc rp.rp_slot images))
      order;
    (match vp.vp_route with
    | R_field { fr_slot = Some si; _ } when t.sactive.(si) ->
        List.iter
          (fun (slot, img) ->
            t.simages.(si).(slot) <- !img;
            t.spresent.(si).(slot) <- true)
          images
    | _ -> ());
    run_action ~self:(v.v_name, value) ~what:(Trace.Set, v.v_name) t vp.vp_set;
    run_action ~what:(Trace.Post, v.v_name) t vp.vp_post
  end

and set_struct_internal t si fields =
  match t.profile with
  | None -> set_struct_internal_body t si fields
  | Some p ->
      let s = Profile.enter p t.structs.(si).st_k_write in
      (match set_struct_internal_body t si fields with
      | () -> Profile.exit p s
      | exception e ->
          Profile.exit p s;
          raise e)

and set_struct_internal_body t si fields =
  let st = t.structs.(si) in
  let s = st.st_strct in
  List.iter
    (fun (f, _) ->
      if not (List.mem f s.s_fields) then
        fail "%s is not a field of structure %s" f s.s_name)
    fields;
  let wrs = match st.st_regs with Ok l -> l | Error m -> fail_str m in
  let images =
    List.map (fun wr -> (wr.wr_rp.rp_slot, ref (compose_base t wr))) wrs
  in
  let field_plan fname =
    match List.assoc fname st.st_fields with
    | Ok fi -> t.vars.(fi)
    | Error m -> fail_str m
  in
  let field_values =
    List.map
      (fun fname ->
        let fvp = field_plan fname in
        match List.assoc_opt fname fields with
        | Some value ->
            ignore (encode_checked fvp.vp_var value);
            (fname, value)
        | None -> (
            match get_cached_field t fvp with
            | Some value -> (fname, value)
            | None ->
                fail "structure %s: field %s has no supplied or cached value"
                  s.s_name fname))
      s.s_fields
  in
  List.iter
    (fun (fname, value) ->
      let fvp = field_plan fname in
      let raw = encode_checked fvp.vp_var value in
      scatter_into t fvp.vp_scatter ~raw ~images)
    field_values;
  let default = List.map (fun wr -> wr.wr_rp) wrs in
  let order =
    ordered_regs t ~self:field_values ~serial:st.st_serial ~default ()
  in
  (match st.st_serial with
  | Some _ -> note_serialized t ~owner:s.s_name order
  | None -> ());
  note_struct_write t s.s_name s.s_fields
    (List.map (fun (rp : reg_plan) -> rp.rp_reg.Ir.r_name) order);
  List.iter
    (fun (rp : reg_plan) ->
      let image =
        match List.assoc_opt rp.rp_slot images with
        | Some img -> !img
        | None ->
            (* A serialized register carrying no field of this
               structure: rebuild it from cache and neutrals. *)
            compose_base t { wr_rp = rp; wr_refresh = rp.rp_refresh_any }
      in
      write_reg_io t rp image)
    order;
  List.iter
    (fun (fname, value) ->
      let fvp = field_plan fname in
      if List.exists (fun (f, _) -> String.equal f fname) fields then
        run_action ~self:(fname, value) ~what:(Trace.Set, fname) t fvp.vp_set)
    field_values;
  t.sactive.(si) <- true;
  List.iter
    (fun (slot, img) ->
      t.simages.(si).(slot) <- !img;
      t.spresent.(si).(slot) <- true)
    images

and get_cached_field t (vp : var_plan) : Value.t option =
  let image (gc : gather_chunk) : int option =
    let in_struct =
      match vp.vp_route with
      | R_field { fr_slot = Some osi; _ } when t.sactive.(osi) -> (
          match gc.gc_reg with
          | Ok ri when t.spresent.(osi).(ri) -> Some t.simages.(osi).(ri)
          | _ -> None)
      | _ -> None
    in
    match in_struct with
    | Some img -> Some img
    | None -> (
        match gc.gc_reg with
        | Ok ri when t.cache_valid.(ri) -> Some t.cache.(ri)
        | _ -> None)
  in
  let complete =
    List.for_all (fun gc -> Option.is_some (image gc)) vp.vp_gather
  in
  if not complete then None
  else
    let raw =
      gather t vp.vp_gather ~image:(fun gc ->
          match image gc with Some x -> x | None -> 0)
    in
    match Dtype.decode vp.vp_var.v_type raw with
    | Ok v -> Some v
    | Error _ -> None

let get_struct_slot t si (st : struct_plan) =
  let wrs = match st.st_regs with Ok l -> l | Error m -> fail_str m in
  let read =
    List.map (fun wr -> (wr.wr_rp.rp_slot, read_reg_io t wr.wr_rp)) wrs
  in
  (* Replace the whole entry only after every read succeeded, like the
     interpreter's atomic Hashtbl.replace of a fresh table. *)
  Array.fill t.spresent.(si) 0 (Array.length t.spresent.(si)) false;
  List.iter
    (fun (slot, raw) ->
      t.simages.(si).(slot) <- raw;
      t.spresent.(si).(slot) <- true)
    read;
  t.sactive.(si) <- true

let get_struct t name =
  let si =
    match Hashtbl.find_opt t.env.ce_struct_idx name with
    | Some i -> i
    | None -> fail "unknown structure %s" name
  in
  let st = t.structs.(si) in
  if st.st_strct.s_private then fail "structure %s is private" name;
  match t.profile with
  | None -> get_struct_slot t si st
  | Some p -> Profile.span p st.st_k_read (fun () -> get_struct_slot t si st)

(* Block and indexed entry points pair the depth guard with a span in
   one step; disabled, this is [with_depth] plus one branch (the inner
   closure below is the one [with_depth] always took). *)
let with_depth_profiled t key f =
  match t.profile with
  | None -> with_depth t f
  | Some p -> Profile.span p key (fun () -> with_depth t f)

(* {1 Public entry points} *)

type handle = int

let handle t name =
  match Hashtbl.find_opt t.env.ce_var_idx name with
  | None -> fail "unknown device variable %s" name
  | Some i ->
      if t.vars.(i).vp_var.v_private then
        fail "variable %s is private and not part of the device interface" name
      else i

let get_h t h = with_depth t (fun () -> get_internal t h)
let set_h t h value = with_depth t (fun () -> set_internal t h value)
let get t name = get_h t (handle t name)
let set t name value = set_h t (handle t name) value

let set_struct t name fields =
  let si =
    match Hashtbl.find_opt t.env.ce_struct_idx name with
    | Some i -> i
    | None -> fail "unknown structure %s" name
  in
  if t.structs.(si).st_strct.s_private then fail "structure %s is private" name;
  with_depth t (fun () -> set_struct_internal t si fields)

(* {1 Block transfers} *)

let block_plan t name =
  let i =
    match Hashtbl.find_opt t.env.ce_var_idx name with
    | Some i -> i
    | None -> fail "unknown device variable %s" name
  in
  let vp = t.vars.(i) in
  match vp.vp_block with
  | Ok ri -> (vp, t.regs.(ri))
  | Error m -> fail_str m

let read_block t name ~count =
  let vp, rp = block_plan t name in
  match rp.rp_read with
  | None -> fail "register %s is not readable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_bread (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_read t name;
          let into = Array.make count 0 in
          let pt = ok_point pt in
          t.bus.Bus.read_block ~width:pt.io_width ~addr:pt.io_addr ~into;
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          into)

let write_block t name data =
  let vp, rp = block_plan t name in
  match rp.rp_write with
  | None -> fail "register %s is not writable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_bwrite (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_write t name [ rp.rp_reg.Ir.r_name ];
          let pt = ok_point pt in
          t.bus.Bus.write_block ~width:pt.io_width ~addr:pt.io_addr ~from:data;
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          run_action ~what:(Trace.Set, rp.rp_reg.Ir.r_name) t rp.rp_set)

let read_wide t name ~scale =
  let vp, rp = block_plan t name in
  match rp.rp_read with
  | None -> fail "register %s is not readable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_read (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_read t name;
          let pt = ok_point pt in
          let v = t.bus.Bus.read ~width:(scale * pt.io_width) ~addr:pt.io_addr in
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          v)

let write_wide t name ~scale value =
  let vp, rp = block_plan t name in
  match rp.rp_write with
  | None -> fail "register %s is not writable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_write (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_write t name [ rp.rp_reg.Ir.r_name ];
          let pt = ok_point pt in
          t.bus.Bus.write ~width:(scale * pt.io_width) ~addr:pt.io_addr ~value;
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          run_action ~what:(Trace.Set, rp.rp_reg.Ir.r_name) t rp.rp_set)

let read_block_wide t name ~scale ~count =
  let vp, rp = block_plan t name in
  match rp.rp_read with
  | None -> fail "register %s is not readable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_bread (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_read t name;
          let into = Array.make count 0 in
          let pt = ok_point pt in
          t.bus.Bus.read_block ~width:(scale * pt.io_width) ~addr:pt.io_addr
            ~into;
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          into)

let write_block_wide t name ~scale data =
  let vp, rp = block_plan t name in
  match rp.rp_write with
  | None -> fail "register %s is not writable" rp.rp_reg.Ir.r_name
  | Some pt ->
      with_depth_profiled t vp.vp_k_bwrite (fun () ->
          run_action ~what:(Trace.Pre, rp.rp_reg.Ir.r_name) t rp.rp_pre;
          note_var_write t name [ rp.rp_reg.Ir.r_name ];
          let pt = ok_point pt in
          t.bus.Bus.write_block ~width:(scale * pt.io_width) ~addr:pt.io_addr
            ~from:data;
          run_action ~what:(Trace.Post, rp.rp_reg.Ir.r_name) t rp.rp_post;
          run_action ~what:(Trace.Set, rp.rp_reg.Ir.r_name) t rp.rp_set)

(* {1 Indexed (parameterized) register access}

   Argument validation runs on every call, exactly like the
   interpreter; the compiled plan of each distinct instance is
   memoized. *)

let indexed_plan t ~template ~args =
  match Ir.find_template t.env.ce_device template with
  | None -> fail "unknown register template %s" template
  | Some tp ->
      if List.length args <> List.length tp.t_params then
        fail "template %s expects %d argument(s)" template
          (List.length tp.t_params);
      List.iter2
        (fun (pname, legal) arg ->
          if not (List.mem arg legal) then
            fail "argument %d is outside the range of parameter %s of %s" arg
              pname template)
        tp.t_params args;
      let name =
        Printf.sprintf "%s(%s)" template
          (String.concat "," (List.map string_of_int args))
      in
      (match Hashtbl.find_opt t.tmpl_memo name with
      | Some rp -> rp
      | None ->
          let bindings = List.combine (List.map fst tp.t_params) args in
          let subst (a : Ir.action) : Ir.action =
            List.map
              (fun (assignment : Ir.assignment) ->
                let subst_op (o : Ir.operand) =
                  match o with
                  | Ir.O_param p -> (
                      match List.assoc_opt p bindings with
                      | Some v -> Ir.O_int v
                      | None -> o)
                  | _ -> o
                in
                match assignment with
                | Ir.Set_var { target; value } ->
                    Ir.Set_var { target; value = subst_op value }
                | Ir.Set_struct { target; fields } ->
                    Ir.Set_struct
                      {
                        target;
                        fields = List.map (fun (f, o) -> (f, subst_op o)) fields;
                      })
              a
          in
          let reg =
            {
              Ir.r_name = name;
              r_size = tp.t_size;
              r_read = tp.t_read;
              r_write = tp.t_write;
              r_mask = tp.t_mask;
              r_pre = subst tp.t_pre;
              r_post = subst tp.t_post;
              r_set = subst tp.t_set;
              r_from_template = Some (template, args);
              r_loc = tp.t_loc;
            }
          in
          let rp = compile_reg t.env ~slot:(-1) reg in
          Hashtbl.add t.tmpl_memo name rp;
          rp)

let read_indexed t ~template ~args =
  let rp = indexed_plan t ~template ~args in
  match t.profile with
  | None -> with_depth t (fun () -> read_reg_io t rp)
  | Some p ->
      Profile.span p
        (t.label ^ "/template:" ^ template ^ ":read")
        (fun () -> with_depth t (fun () -> read_reg_io t rp))

let write_indexed t ~template ~args raw =
  let rp = indexed_plan t ~template ~args in
  match t.profile with
  | None -> with_depth t (fun () -> write_reg_io t rp raw)
  | Some p ->
      Profile.span p
        (t.label ^ "/template:" ^ template ^ ":write")
        (fun () -> with_depth t (fun () -> write_reg_io t rp raw))
