type error =
  | Timeout of string
  | Device_fault of string
  | Bus_fault of string
  | Degraded of string

exception Driver_error of error

let error_to_string = function
  | Timeout m -> "timeout: " ^ m
  | Device_fault m -> "device fault: " ^ m
  | Bus_fault m -> "bus fault: " ^ m
  | Degraded m -> "degraded: " ^ m

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)
let fail e = raise (Driver_error e)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let poll_deadline = ref (env_int "DEVIL_POLL_DEADLINE" 1_000_000)
let retry_attempts = ref (env_int "DEVIL_RETRY_ATTEMPTS" 3)
let default_deadline () = !poll_deadline
let set_default_deadline n = if n > 0 then poll_deadline := n
let default_attempts () = !retry_attempts
let set_default_attempts n = if n > 0 then retry_attempts := n

let is_transient = function
  | Fault.Bus_fault _ -> true
  | Driver_error (Bus_fault _ | Device_fault _) -> true
  | _ -> false

let describe_exn = function
  | Driver_error e -> error_to_string e
  | Fault.Bus_fault m -> "bus fault: " ^ m
  | Instance.Device_error m -> "device error: " ^ m
  | e -> Printexc.to_string e

let with_retries ?attempts ?(retry_on = is_transient)
    ?(on_retry = fun ~attempt:_ _ -> ()) ~label f =
  let attempts =
    max 1 (match attempts with Some n -> n | None -> !retry_attempts)
  in
  let rec go attempt =
    try f ()
    with e when retry_on e ->
      if attempt >= attempts then
        fail
          (Degraded
             (Printf.sprintf "%s: gave up after %d attempts (last: %s)" label
                attempts (describe_exn e)))
      else begin
        on_retry ~attempt e;
        go (attempt + 1)
      end
  in
  go 1

let no_backoff (_ : int) = 0
let linear_backoff step i = max 0 (step * i)

let exponential_backoff ?(base = 1) ?(cap = 1024) i =
  min cap (max 1 base * (1 lsl min i 20))

(* The shared poll core: iteration [i] costs [1 + backoff i] ticks, so
   the condition runs at most [deadline] times and the loop provably
   terminates within the budget. *)
let poll_core ?deadline ?(backoff = no_backoff) cond =
  let deadline =
    match deadline with Some d -> d | None -> !poll_deadline
  in
  let rec go i spent =
    if spent >= deadline then false
    else if cond () then true
    else go (i + 1) (spent + 1 + max 0 (backoff i))
  in
  go 0 0

let try_poll ?deadline ?backoff cond = poll_core ?deadline ?backoff cond

let poll_until ?deadline ?backoff ~label cond =
  if not (poll_core ?deadline ?backoff cond) then fail (Timeout label)

let try_poll_for ?deadline ?backoff f =
  let result = ref None in
  ignore
    (poll_core ?deadline ?backoff (fun () ->
         match f () with
         | Some v ->
             result := Some v;
             true
         | None -> false));
  !result

let poll_for ?deadline ?backoff ~label f =
  match try_poll_for ?deadline ?backoff f with
  | Some v -> v
  | None -> fail (Timeout label)

let guarded ~label f =
  try f () with
  | Driver_error _ as e -> raise e
  | Fault.Bus_fault m -> fail (Bus_fault (label ^ ": " ^ m))
  | Instance.Device_error m -> fail (Device_fault (label ^ ": " ^ m))
  | Failure m -> fail (Device_fault (label ^ ": " ^ m))
