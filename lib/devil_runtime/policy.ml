type error =
  | Timeout of string
  | Device_fault of string
  | Bus_fault of string
  | Degraded of string

exception Driver_error of error

let error_to_string = function
  | Timeout m -> "timeout: " ^ m
  | Device_fault m -> "device fault: " ^ m
  | Bus_fault m -> "bus fault: " ^ m
  | Degraded m -> "degraded: " ^ m

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)
let fail e = raise (Driver_error e)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let poll_deadline = ref (env_int "DEVIL_POLL_DEADLINE" 1_000_000)
let retry_attempts = ref (env_int "DEVIL_RETRY_ATTEMPTS" 3)
let default_deadline () = !poll_deadline
let set_default_deadline n = if n > 0 then poll_deadline := n
let default_attempts () = !retry_attempts
let set_default_attempts n = if n > 0 then retry_attempts := n

(* {1 Observability}

   The combinators are plain functions with no per-driver state, so
   the observability hook is a module-level observer installed by
   whoever owns the trace/metrics handles (Machine.create, a test, a
   campaign trial). With no observer installed the hooks are two ref
   reads and two option matches — no allocation. *)

let trace_hook : Trace.t option ref = ref None
let metrics_hook : Metrics.t option ref = ref None
let profile_hook : Profile.t option ref = ref None

let observe ?trace ?metrics ?profile () =
  trace_hook := trace;
  metrics_hook := metrics;
  profile_hook := profile

let unobserve () =
  trace_hook := None;
  metrics_hook := None;
  profile_hook := None

(* {1 Request attribution}

   The scheduler parks the id of the queued request it is currently
   serving here (around the request's start thunk, its interrupt
   handler and its timeout abort), so the Poll/Retry trace events the
   combinators emit on that request's behalf carry its id and the
   lifecycle layer can attribute them. 0 means "no queued request" —
   synchronous drivers never see a non-zero id. A bare int ref: the
   disabled path costs one immediate store, no allocation. *)

let request_hook = ref 0
let set_current_request rid = request_hook := if rid > 0 then rid else 0
let current_request () = !request_hook

(* {1 Exploration decision points}

   Every poll completion and every retry is a branch point the
   exploration engine can force down its failure edge: a poll can time
   out even though the device would have answered, a retry can be
   denied even though the budget remains. The decider sees each branch
   point with a per-kind ordinal (0-based, counted from the last
   [set_decider]/[reset_decision_points]) and answers [true] to force
   the adverse outcome. Forced outcomes stay inside the classified
   error vocabulary: a forced poll behaves as an ordinary timeout, a
   denied retry fails [Degraded] — so exploration never teaches
   drivers a new failure shape, it only schedules the existing ones. *)

type decision =
  | Poll_decision of { label : string; ordinal : int }
  | Retry_decision of { label : string; attempt : int; ordinal : int }

let decider_hook : (decision -> bool) option ref = ref None
let poll_ix = ref 0
let retry_ix = ref 0

let reset_decision_points () =
  poll_ix := 0;
  retry_ix := 0

let set_decider f =
  decider_hook := Some f;
  reset_decision_points ()

let clear_decider () = decider_hook := None
let poll_points () = !poll_ix
let retry_points () = !retry_ix

let is_transient = function
  | Fault.Bus_fault _ -> true
  | Driver_error (Bus_fault _ | Device_fault _) -> true
  | _ -> false

let describe_exn = function
  | Driver_error e -> error_to_string e
  | Fault.Bus_fault m -> "bus fault: " ^ m
  | Instance.Device_error m -> "device error: " ^ m
  | e -> Printexc.to_string e

let with_retries ?attempts ?(retry_on = is_transient)
    ?(on_retry = fun ~attempt:_ _ -> ()) ~label f =
  let attempts =
    max 1 (match attempts with Some n -> n | None -> !retry_attempts)
  in
  let rec go attempt =
    try f ()
    with e when retry_on e ->
      if attempt >= attempts then begin
        (match !metrics_hook with
        | Some m -> Metrics.incr m "retry.exhausted"
        | None -> ());
        fail
          (Degraded
             (Printf.sprintf "%s: gave up after %d attempts (last: %s)" label
                attempts (describe_exn e)))
      end
      else begin
        let denied =
          match !decider_hook with
          | None -> false
          | Some d ->
              let ordinal = !retry_ix in
              incr retry_ix;
              d (Retry_decision { label; attempt; ordinal })
        in
        if denied then begin
          (match !metrics_hook with
          | Some m ->
              Metrics.incr m "retry.denied";
              Metrics.incr m "retry.exhausted"
          | None -> ());
          fail
            (Degraded
               (Printf.sprintf "%s: retry denied after attempt %d (last: %s)"
                  label attempt (describe_exn e)))
        end
        else begin
          (match !metrics_hook with
          | Some m -> Metrics.incr m "retry.attempts"
          | None -> ());
          (match !trace_hook with
          | Some tr ->
              Trace.emit tr
                (Trace.Retry
                   { label; attempt; reason = describe_exn e;
                     rid = !request_hook })
          | None -> ());
          on_retry ~attempt e;
          go (attempt + 1)
        end
      end
  in
  match !profile_hook with
  | None -> go 1
  | Some p -> Profile.span p ("retry:" ^ label) (fun () -> go 1)

let no_backoff (_ : int) = 0
let linear_backoff step i = max 0 (step * i)

let exponential_backoff ?(base = 1) ?(cap = 1024) i =
  min cap (max 1 base * (1 lsl min i 20))

(* The shared poll core: iteration [i] costs [1 + backoff i] ticks, so
   the condition runs at most [deadline] times and the loop provably
   terminates within the budget. Every completed poll reports its
   condition-evaluation count to the observer. *)
let poll_core ?deadline ?(backoff = no_backoff) ~label cond =
  let deadline =
    match deadline with Some d -> d | None -> !poll_deadline
  in
  let forced =
    match !decider_hook with
    | None -> false
    | Some d ->
        let ordinal = !poll_ix in
        incr poll_ix;
        d (Poll_decision { label; ordinal })
  in
  let rec go i spent =
    if spent >= deadline then (false, i)
    else if cond () then (true, i + 1)
    else go (i + 1) (spent + 1 + max 0 (backoff i))
  in
  let ok, iters =
    if forced then (false, 0)
    else
      match !profile_hook with
      | None -> go 0 0
      | Some p -> Profile.span p ("poll:" ^ label) (fun () -> go 0 0)
  in
  (match !metrics_hook with
  | Some m ->
      Metrics.incr m "poll.runs";
      Metrics.incr m ~by:iters "poll.ticks";
      if not ok then Metrics.incr m "poll.timeouts";
      if forced then Metrics.incr m "poll.forced";
      Metrics.observe m "poll.iters" iters
  | None -> ());
  (match !trace_hook with
  | Some tr ->
      Trace.emit tr (Trace.Poll { label; iters; ok; rid = !request_hook })
  | None -> ());
  ok

let try_poll ?deadline ?backoff ?(label = "try_poll") cond =
  poll_core ?deadline ?backoff ~label cond

let poll_until ?deadline ?backoff ~label cond =
  if not (poll_core ?deadline ?backoff ~label cond) then fail (Timeout label)

let try_poll_for ?deadline ?backoff ?(label = "try_poll_for") f =
  let result = ref None in
  ignore
    (poll_core ?deadline ?backoff ~label (fun () ->
         match f () with
         | Some v ->
             result := Some v;
             true
         | None -> false));
  !result

let poll_for ?deadline ?backoff ~label f =
  match try_poll_for ?deadline ?backoff ~label f with
  | Some v -> v
  | None -> fail (Timeout label)

let guarded ~label f =
  try f () with
  | Driver_error _ as e -> raise e
  | Fault.Bus_fault m -> fail (Bus_fault (label ^ ": " ^ m))
  | Instance.Device_error m -> fail (Device_fault (label ^ ": " ^ m))
  | Failure m -> fail (Device_fault (label ^ ": " ^ m))
