(* The bounded exhaustive exploration engine (DESIGN.md §12).

   The engine is deliberately ignorant of buses, faults and drivers:
   it enumerates {e schedules} — sorted lists of (decision slot,
   choice) pairs — over an abstract choice alphabet, and delegates
   each run to a caller-supplied closure that executes the workload
   under that schedule and reports what happened. Everything domain
   specific (what a slot means per choice, how a run is judged, how a
   counterexample is reproduced) lives in the campaign layer
   (lib/explore).

   Enumeration is depth-first over schedule {e prefixes}: the empty
   schedule runs first, then every feasible 1-decision schedule, each
   immediately followed by its 2-decision extensions, and so on up to
   the fault budget. Because every extension appends a decision at a
   strictly later slot, the traversal is prefix-closed — iterative
   deepening without re-running shallow levels. Three prunes keep the
   space honest:

   - {e horizons}: each run reports, per choice, how many slots the
     workload actually offered (covered bus operations for an
     injection site, poll/retry branch points for a policy choice).
     Slots at or beyond the horizon cannot fire and are skipped, not
     run.
   - {e feasibility}: a run whose fired-decision count falls short of
     its schedule length behaved like some shorter schedule already
     explored; it is counted but not extended.
   - {e state-hash dedup}: runs are fingerprinted by the caller; a
     fingerprint already seen means the subtree re-converges with an
     explored one and is not extended.

   The horizon contract: a choice's horizon must not shrink when an
   unrelated later decision is added (schedules are explored in prefix
   order, so a prefix's horizon is used to bound its extensions). All
   built-in choice axes satisfy this — injecting a fault can only add
   recovery traffic, never remove already-counted operations. *)

type 'c decision = { slot : int; choice : 'c }
type 'c schedule = 'c decision list

type 'c outcome = {
  oc_ok : bool;  (* all invariants held *)
  oc_detail : string;  (* verdict / violation description *)
  oc_fired : int;  (* decisions that actually took effect *)
  oc_state : int;  (* caller's end-state fingerprint *)
  oc_horizon : 'c -> int;  (* per-choice slot bound observed *)
}

type 'c violation = { vx_schedule : 'c schedule; vx_detail : string }

type 'c report = {
  rp_runs : int;
  rp_infeasible : int;
  rp_deduped : int;
  rp_pruned : int;
  rp_distinct : int;
  rp_violations : 'c violation list;
  rp_last : 'c schedule option;
}

let pp_schedule pp_choice fmt (s : 'c schedule) =
  match s with
  | [] -> Format.pp_print_string fmt "<empty schedule>"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
        (fun fmt d -> Format.fprintf fmt "@%d %a" d.slot pp_choice d.choice)
        fmt s

(* Lexicographic order on schedules under a fixed choice alphabet: by
   decision list, each decision by (slot, choice index); a proper
   prefix sorts before its extensions. This is exactly the engine's
   visit order, which makes [resume_after] meaningful. *)
let compare_schedules ~choices a b =
  let idx c =
    let rec go i = function
      | [] -> invalid_arg "Explore: choice not in the alphabet"
      | c' :: rest -> if c' = c then i else go (i + 1) rest
    in
    go 0 choices
  in
  let cmp_d a b =
    match compare a.slot b.slot with
    | 0 -> compare (idx a.choice) (idx b.choice)
    | n -> n
  in
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: a', y :: b' -> ( match cmp_d x y with 0 -> go a' b' | n -> n)
  in
  go a b

let is_prefix ~choices a b =
  List.length a <= List.length b
  &&
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' ->
        compare_schedules ~choices [ x ] [ y ] = 0 && go a' b'
    | _, [] -> false
  in
  go a b

let explore ~depth ~budget ~choices ~run ?(max_violations = max_int)
    ?resume_after ?on_run () =
  if depth <= 0 then invalid_arg "Explore.explore: depth must be positive";
  if budget < 0 then invalid_arg "Explore.explore: negative budget";
  if choices = [] then invalid_arg "Explore.explore: empty choice alphabet";
  let seen = Hashtbl.create 1024 in
  let runs = ref 0
  and infeasible = ref 0
  and deduped = ref 0
  and pruned = ref 0 in
  let violations = ref [] in
  let last = ref None in
  (* What to do with a candidate schedule when resuming: schedules at
     or before the resume point were visited by the interrupted run.
     Prefixes of the resume point must still be re-run (their horizons
     and fingerprints steer the walk) but stay silent; everything else
     at or before it is skipped wholesale — its whole subtree was
     already explored. *)
  let disposition sched =
    match resume_after with
    | None -> `Run
    | Some r ->
        if compare_schedules ~choices sched r > 0 then `Run
        else if is_prefix ~choices sched r then `Run_quiet
        else `Skip
  in
  let record ~quiet sched (o : 'c outcome) =
    incr runs;
    last := Some sched;
    (match on_run with Some f -> f sched o | None -> ());
    if (not o.oc_ok) && not quiet then
      violations := { vx_schedule = sched; vx_detail = o.oc_detail } :: !violations
  in
  let stop () = List.length !violations >= max_violations in
  let rec dfs prefix (out : 'c outcome) =
    if List.length prefix < budget && not (stop ()) then begin
      let next_slot =
        match List.rev prefix with [] -> 0 | d :: _ -> d.slot + 1
      in
      for slot = next_slot to depth - 1 do
        List.iter
          (fun c ->
            if not (stop ()) then
              if slot >= min depth (out.oc_horizon c) then incr pruned
              else
                let sched = prefix @ [ { slot; choice = c } ] in
                match disposition sched with
                | `Skip -> ()
                | (`Run | `Run_quiet) as d ->
                    let o = run sched in
                    record ~quiet:(d = `Run_quiet) sched o;
                    if o.oc_fired < List.length sched then incr infeasible
                    else if Hashtbl.mem seen o.oc_state then incr deduped
                    else begin
                      Hashtbl.replace seen o.oc_state ();
                      dfs sched o
                    end)
          choices
      done
    end
  in
  let base = run [] in
  record ~quiet:(disposition [] = `Run_quiet) [] base;
  Hashtbl.replace seen base.oc_state ();
  dfs [] base;
  {
    rp_runs = !runs;
    rp_infeasible = !infeasible;
    rp_deduped = !deduped;
    rp_pruned = !pruned;
    rp_distinct = Hashtbl.length seen;
    rp_violations = List.rev !violations;
    rp_last = !last;
  }

(* {1 Shrinking}

   [shrink ~run sched] minimizes a failing schedule while preserving
   failure. Two passes:

   - {e greedy drop}: try removing each decision in turn; keep any
     removal after which the schedule still fails, restarting until no
     single removal survives — the result is 1-minimal (every decision
     is necessary).
   - {e slot binary search}: for each surviving decision (left to
     right), binary-search the smallest slot — at or after the
     previous decision's slot + 1, preserving sortedness — at which
     the schedule still fails. This finds the true trigger ordinal
     when a late fault and an early fault are interchangeable.

   A candidate counts as failing only when every decision actually
   fired: an infeasible candidate that "fails" would shrink to a
   schedule describing a different run. *)

let shrink ~run sched =
  let attempts = ref 0 in
  let fails s =
    incr attempts;
    let o = run s in
    (not o.oc_ok) && o.oc_fired = List.length s
  in
  if not (fails sched) then (sched, !attempts)
  else begin
    let rec drop s =
      let n = List.length s in
      let rec try_at i =
        if i >= n then s
        else
          let cand = List.filteri (fun j _ -> j <> i) s in
          if fails cand then drop cand else try_at (i + 1)
      in
      try_at 0
    in
    let s = drop sched in
    let arr = Array.of_list s in
    Array.iteri
      (fun i d ->
        let floor = if i = 0 then 0 else arr.(i - 1).slot + 1 in
        let with_slot v =
          Array.to_list
            (Array.mapi (fun j d' -> if j = i then { d' with slot = v } else d') arr)
        in
        let lo = ref floor and hi = ref d.slot in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fails (with_slot mid) then hi := mid else lo := mid + 1
        done;
        arr.(i) <- { d with slot = !hi })
      arr;
    (Array.to_list arr, !attempts)
  end
