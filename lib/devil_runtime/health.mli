(** The health/watchdog layer (DESIGN.md §15).

    A {!report} condenses the run's observability state — lifecycle
    aggregates from {!Lifecycle}, the [sched.*] and [retry.*] counters
    from {!Metrics}, ring evictions from {!Trace} — into one verdict
    with named, thresholded reasons:

    - {!Stalled} — requests are not completing: [request_timeouts]
      (a queued request hit its deadline), [orphaned_requests]
      (submitted but never completed);
    - {!Degraded} — everything completed but the run shows damage:
      [irq_storms], [unhandled_irqs], [irq_path_faults],
      [handler_errors], [retries_exhausted], [lost_interrupts],
      [spurious_completions], [trace_drops];
    - {!Ok} — none of the above fired.

    The overall verdict is the worst firing reason's. Thresholds
    default to 0 (any occurrence fires) and can be raised per code —
    e.g. a soak test that tolerates two retries raises
    [("retries_exhausted", 2)]. [fault.injections] is reported as an
    informational counter but is never a reason: an injection is the
    experiment, not the symptom.

    Campaign runners ({!Faultcamp}, {!Explorecamp}) evaluate a report
    per trial so campaigns surface health regressions, not just oracle
    violations; [tools/check.sh] gates on a clean run reporting
    {!Ok}. *)

type verdict = Ok | Degraded | Stalled

val verdict_label : verdict -> string
(** ["ok"], ["degraded"], ["stalled"]. *)

val verdict_severity : verdict -> int
(** [Ok] 0, [Degraded] 1, [Stalled] 2 — the ordering used to pick the
    overall verdict, exposed so exporters can render the verdict as a
    monotone gauge ({!Trace_export.to_openmetrics}'s [devil_health]). *)

type reason = {
  code : string;  (** Stable machine-readable name, e.g. ["request_timeouts"]. *)
  count : int;  (** The observed count that breached the threshold. *)
  detail : string;  (** One human sentence. *)
}

type report = {
  verdict : verdict;
  reasons : reason list;  (** Worst first; empty iff the verdict is {!Ok}. *)
  counters : (string * int) list;
      (** Every consulted counter (firing or not) plus informational
          ones ([fault.injections], [sched.submits],
          [sched.completions]). *)
}

val evaluate :
  ?thresholds:(string * int) list ->
  ?lifecycle:Lifecycle.t ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  unit ->
  report
(** Reads the given handles and produces a report. Any handle may be
    omitted: a reason whose source is absent simply reads 0 (so
    [evaluate ()] is vacuously {!Ok}). With a [lifecycle] handle the
    orphan/lost/spurious reasons use its live state; otherwise they
    fall back to the [lifecycle.*] metrics counters. [thresholds]
    overrides per-code thresholds (a reason fires when its count
    {e exceeds} the threshold). *)

val is_ok : report -> bool

val to_json : report -> string
(** [{"verdict":..., "reasons":[{"code","count","detail"},...],
    "counters":{...}}] — the shape campaign reports and
    [BENCH_latency.json] embed. *)

val summary : report -> string
(** One line: ["ok"] or e.g. ["stalled (request_timeouts=2, ...)"]. *)

val pp : Format.formatter -> report -> unit
