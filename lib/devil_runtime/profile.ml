(* The span profiler behind the observability layer (DESIGN.md §11).

   A profiler aggregates hierarchical wall-time spans online, into two
   structures at once:

   - a {e call-path trie}: one node per distinct stack of span keys,
     carrying call count, total (inclusive) and self (exclusive)
     nanoseconds — what the folded-stacks / speedscope exporters walk;
   - a flat {e site table} keyed by span key alone, carrying count,
     total/self time and a log-bucketed latency histogram (the same
     bucket layout as {!Metrics}) for p50/p95/p99 summaries.

   Span keys follow the {!Devil_ir.Sites.site_id} vocabulary prefixed
   with the instance label ("ide/var:sector_count:write",
   "gfx/action:Fill:pre"), plus the non-instance families "bus:read",
   "poll:<label>", "retry:<label>" and the caller-chosen roots
   ("driver:<workload>").

   Like the rest of the layer the profiler is strictly opt-in: every
   instrumented call site matches its [Profile.t option] first and the
   disabled path allocates nothing. Enter/exit themselves allocate only
   on the first visit to a call path or site (Hashtbl growth); the
   frame stack is preallocated and reused.

   Clock: CLOCK_MONOTONIC nanoseconds via bechamel's C stub (the same
   clock the benchmarks use), clamped monotonic defensively. Tests
   substitute a deterministic clock with {!set_clock}. *)

type node = {
  n_name : string;
  mutable n_count : int;
  mutable n_total_ns : int;
  mutable n_self_ns : int;
  n_children : (string, node) Hashtbl.t;
}

type frame = {
  mutable f_node : node;
  mutable f_start : int;
  mutable f_child_ns : int;  (* time attributed to direct children *)
}

type site = {
  mutable s_count : int;
  mutable s_total_ns : int;
  mutable s_self_ns : int;
  mutable s_min_ns : int;
  mutable s_max_ns : int;
  s_buckets : int array;
  s_metric : string;  (* "span.<key>.ns", precomputed once *)
}

type t = {
  root : node;
  sites : (string, site) Hashtbl.t;
  mutable stack : frame array;
  mutable depth : int;
  mutable clock : unit -> int;
  mutable last_ns : int;
      (* Last clock sample: the monotonic clamp, and the activity mark
         the trace-subscriber leaves measure gaps against. *)
  mutable metrics : Metrics.t option;
  mutable unbalanced : int;  (* exits that found their span already closed *)
}

let default_clock () = Int64.to_int (Monotonic_clock.now ())

let mk_node name =
  {
    n_name = name;
    n_count = 0;
    n_total_ns = 0;
    n_self_ns = 0;
    n_children = Hashtbl.create 4;
  }

let create ?metrics () =
  let root = mk_node "" in
  {
    root;
    sites = Hashtbl.create 64;
    stack =
      Array.init 16 (fun _ -> { f_node = root; f_start = 0; f_child_ns = 0 });
    depth = 0;
    clock = default_clock;
    last_ns = min_int;
    metrics;
    unbalanced = 0;
  }

let set_metrics t metrics = t.metrics <- metrics

let set_clock t clock =
  t.clock <- clock;
  t.last_ns <- min_int

let now t =
  let v = t.clock () in
  let v = if v < t.last_ns then t.last_ns else v in
  t.last_ns <- v;
  v

(* {1 Spans} *)

type span = int
(* The stack depth at [enter]; [exit] unwinds back to it, which also
   closes any nested spans an exception blew past. *)

let child_node parent key =
  match Hashtbl.find_opt parent.n_children key with
  | Some n -> n
  | None ->
      let n = mk_node key in
      Hashtbl.add parent.n_children key n;
      n

let grow t =
  let len = Array.length t.stack in
  t.stack <-
    Array.init (2 * len) (fun i ->
        if i < len then t.stack.(i)
        else { f_node = t.root; f_start = 0; f_child_ns = 0 })

let enter t key =
  if t.depth >= Array.length t.stack then grow t;
  let parent = if t.depth = 0 then t.root else t.stack.(t.depth - 1).f_node in
  let f = t.stack.(t.depth) in
  f.f_node <- child_node parent key;
  f.f_start <- now t;
  f.f_child_ns <- 0;
  t.depth <- t.depth + 1;
  t.depth - 1

let site_of t key =
  match Hashtbl.find_opt t.sites key with
  | Some s -> s
  | None ->
      let s =
        {
          s_count = 0;
          s_total_ns = 0;
          s_self_ns = 0;
          s_min_ns = max_int;
          s_max_ns = min_int;
          s_buckets = Array.make Metrics.bucket_count 0;
          s_metric = "span." ^ key ^ ".ns";
        }
      in
      Hashtbl.add t.sites key s;
      s

let record_site t key ~total ~self =
  let s = site_of t key in
  s.s_count <- s.s_count + 1;
  s.s_total_ns <- s.s_total_ns + total;
  s.s_self_ns <- s.s_self_ns + self;
  if total < s.s_min_ns then s.s_min_ns <- total;
  if total > s.s_max_ns then s.s_max_ns <- total;
  let b = Metrics.bucket_of total in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1;
  match t.metrics with
  | Some m -> Metrics.observe m s.s_metric total
  | None -> ()

let exit_top t =
  t.depth <- t.depth - 1;
  let f = t.stack.(t.depth) in
  let total = max 0 (now t - f.f_start) in
  let self = max 0 (total - f.f_child_ns) in
  let n = f.f_node in
  n.n_count <- n.n_count + 1;
  n.n_total_ns <- n.n_total_ns + total;
  n.n_self_ns <- n.n_self_ns + self;
  if t.depth > 0 then begin
    let p = t.stack.(t.depth - 1) in
    p.f_child_ns <- p.f_child_ns + total
  end;
  record_site t n.n_name ~total ~self

let exit t span =
  if span < t.depth then
    while t.depth > span do
      exit_top t
    done
  else t.unbalanced <- t.unbalanced + 1

let span t key f =
  let s = enter t key in
  match f () with
  | v ->
      exit t s;
      v
  | exception e ->
      exit t s;
      raise e

(* A leaf span of known duration under the current stack top — the
   trace-subscriber integration below uses it to attribute bus events
   it only learns about after the fact. *)
let leaf t key ns =
  let ns = max 0 ns in
  let parent = if t.depth = 0 then t.root else t.stack.(t.depth - 1).f_node in
  let n = child_node parent key in
  n.n_count <- n.n_count + 1;
  n.n_total_ns <- n.n_total_ns + ns;
  n.n_self_ns <- n.n_self_ns + ns;
  if t.depth > 0 then begin
    let f = t.stack.(t.depth - 1) in
    f.f_child_ns <- f.f_child_ns + ns
  end;
  record_site t key ~total:ns ~self:ns

let live_depth t = t.depth
let unbalanced_exits t = t.unbalanced

(* {1 Trace integration}

   For setups that cannot wrap their bus with [Bus.observed ?profile]
   (a pre-built machine, a replayed tape) the profiler can ride the
   trace stream instead: every bus event becomes a leaf span whose
   duration is the gap since the profiler last saw any activity (a
   span boundary or a previous event). The gap is an estimate — it
   includes whatever OCaml ran between the bus transfer and the
   subscriber — so a machine whose bus is already profile-wrapped must
   NOT also attach, or bus time would be counted twice. *)

let attach t trace =
  Trace.subscribe trace (fun (e : Trace.event) ->
      let mark = t.last_ns in
      let stop = now t in
      let gap = if mark = min_int then 0 else max 0 (stop - mark) in
      match e.kind with
      | Trace.Bus_read _ -> leaf t "bus:read" gap
      | Trace.Bus_write _ -> leaf t "bus:write" gap
      | Trace.Bus_block_read _ -> leaf t "bus:block_read" gap
      | Trace.Bus_block_write _ -> leaf t "bus:block_write" gap
      | _ -> ())

(* {1 Environment opt-in} *)

let parse_env_value = Env.parse_bool

let from_env ?metrics () =
  match
    Env.lookup ~var:"DEVIL_PROFILE" ~parse:parse_env_value
      ~accepted:Env.bool_forms ~fallback:true
      ~fallback_note:"profiling enabled"
  with
  | None | Some false -> None
  | Some true -> Some (create ?metrics ())

(* {1 Aggregates} *)

type site_stats = {
  calls : int;
  total_ns : int;
  self_ns : int;
  min_ns : int;
  max_ns : int;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
}

let site_stats_of s =
  if s.s_count = 0 then
    {
      calls = 0;
      total_ns = 0;
      self_ns = 0;
      min_ns = 0;
      max_ns = 0;
      p50_ns = 0;
      p95_ns = 0;
      p99_ns = 0;
    }
  else
    let pct q =
      Metrics.bucket_percentile ~count:s.s_count ~min_value:s.s_min_ns
        ~max_value:s.s_max_ns s.s_buckets q
    in
    {
      calls = s.s_count;
      total_ns = s.s_total_ns;
      self_ns = s.s_self_ns;
      min_ns = s.s_min_ns;
      max_ns = s.s_max_ns;
      p50_ns = pct 0.50;
      p95_ns = pct 0.95;
      p99_ns = pct 0.99;
    }

let sites t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k s acc -> (k, site_stats_of s) :: acc) t.sites [])

let site t key = Option.map site_stats_of (Hashtbl.find_opt t.sites key)

let node_name n = n.n_name
let node_count n = n.n_count
let node_total_ns n = n.n_total_ns
let node_self_ns n = n.n_self_ns

let node_children n =
  List.sort
    (fun a b -> String.compare a.n_name b.n_name)
    (Hashtbl.fold (fun _ c acc -> c :: acc) n.n_children [])

let roots t = node_children t.root

let total_ns t =
  List.fold_left (fun acc n -> acc + n.n_total_ns) 0 (roots t)

let attributed_ns t =
  let rec sum n =
    Hashtbl.fold (fun _ c acc -> acc + sum c) n.n_children n.n_self_ns
  in
  Hashtbl.fold (fun _ c acc -> acc + sum c) t.root.n_children 0

let reset t =
  Hashtbl.reset t.root.n_children;
  Hashtbl.reset t.sites;
  t.depth <- 0;
  t.last_ns <- min_int;
  t.unbalanced <- 0

(* {1 Folding}

   [merge a b] is a fresh quiescent profiler whose call-path trie is
   the recursive union of both tries (nodes matched by key path, their
   count/total/self summed) and whose site table is the pointwise sum
   of both tables. Summing self over the merged trie equals the sum of
   the inputs' attributed time, and the merged roots' total equals the
   sum of the inputs' totals — so the [attributed_ns = total_ns]
   identity survives the fold, as do the site percentiles (same bucket
   arithmetic as {!Metrics.merge}). Open spans are not merged: folding
   a profiler mid-span would split a span across shards, which has no
   meaning. *)

let rec merge_node_into dst src =
  dst.n_count <- dst.n_count + src.n_count;
  dst.n_total_ns <- dst.n_total_ns + src.n_total_ns;
  dst.n_self_ns <- dst.n_self_ns + src.n_self_ns;
  Hashtbl.iter
    (fun key child ->
      let into =
        match Hashtbl.find_opt dst.n_children key with
        | Some n -> n
        | None ->
            let n = mk_node key in
            Hashtbl.add dst.n_children key n;
            n
      in
      merge_node_into into child)
    src.n_children

let merge_site_into dst src =
  dst.s_count <- dst.s_count + src.s_count;
  dst.s_total_ns <- dst.s_total_ns + src.s_total_ns;
  dst.s_self_ns <- dst.s_self_ns + src.s_self_ns;
  if src.s_min_ns < dst.s_min_ns then dst.s_min_ns <- src.s_min_ns;
  if src.s_max_ns > dst.s_max_ns then dst.s_max_ns <- src.s_max_ns;
  Array.iteri
    (fun i v -> dst.s_buckets.(i) <- dst.s_buckets.(i) + v)
    src.s_buckets

let merge a b =
  let t = create () in
  let add src =
    merge_node_into t.root src.root;
    Hashtbl.iter
      (fun key s ->
        match Hashtbl.find_opt t.sites key with
        | Some dst -> merge_site_into dst s
        | None ->
            Hashtbl.add t.sites key
              {
                s_count = s.s_count;
                s_total_ns = s.s_total_ns;
                s_self_ns = s.s_self_ns;
                s_min_ns = s.s_min_ns;
                s_max_ns = s.s_max_ns;
                s_buckets = Array.copy s.s_buckets;
                s_metric = s.s_metric;
              })
      src.sites;
    t.unbalanced <- t.unbalanced + src.unbalanced
  in
  add a;
  add b;
  (* The roots carry per-input aggregates the trie walk never reads;
     zero them so the merged root stays a pure anchor. *)
  t.root.n_count <- 0;
  t.root.n_total_ns <- 0;
  t.root.n_self_ns <- 0;
  t
