(* Online reconstruction of queued-request lifecycles from the trace
   stream (DESIGN.md §15). One subscriber walks the flat event stream
   and, keyed by the request id {!Sched} threads through every event a
   request causes, rebuilds each request's causal arc:

     submitted --queue_wait--> started --service--> completed
                  (irq_raised --irq_delivery--> irq_delivered
                               --completion--> completed)

   Stage boundaries are stamped with a caller-supplied clock (the
   default is the monotonic wall clock in nanoseconds; offline
   replays feed a synthetic clock), and each completed stage feeds a
   [lifecycle.<dev>.<stage>.ns] histogram when a metrics registry is
   attached. *)

type record = {
  rid : int;
  dev : string;
  label : string;
  submitted_at : int;
  mutable started_at : int;  (* -1 until the stage boundary is seen *)
  mutable irq_raised_at : int;
  mutable irq_delivered_at : int;
  mutable completed_at : int;
  mutable ok : bool;
  mutable polls : int;
  mutable retries : int;
  mutable late_completion : bool;
}

type stage = Queue_wait | Service | Irq_delivery | Completion | Total

let stages = [ Queue_wait; Service; Irq_delivery; Completion; Total ]

let stage_label = function
  | Queue_wait -> "queue_wait"
  | Service -> "service"
  | Irq_delivery -> "irq_delivery"
  | Completion -> "completion"
  | Total -> "total"

(* A stage's duration, [None] while (or forever if) one of its
   boundaries was never observed. The service stage of a request whose
   completion needed no interrupt (or whose irq events were evicted)
   falls back to the completion timestamp. *)
let stage_ns r stage =
  let span a b = if a < 0 || b < 0 || b < a then None else Some (b - a) in
  match stage with
  | Queue_wait -> span r.submitted_at r.started_at
  | Service -> (
      match span r.started_at r.irq_delivered_at with
      | Some _ as s -> s
      | None -> span r.started_at r.completed_at)
  | Irq_delivery -> span r.irq_raised_at r.irq_delivered_at
  | Completion -> span r.irq_delivered_at r.completed_at
  | Total -> span r.submitted_at r.completed_at

let complete r = r.completed_at >= 0

type t = {
  clock : unit -> int;
  metrics : Metrics.t option;
  by_rid : (int, record) Hashtbl.t;
  mutable order : record list;  (* newest first; all requests ever seen *)
  mutable submitted : int;
  mutable completed : int;
  mutable lost_interrupts : int;
  mutable spurious_completions : int;
}

let default_clock () = Int64.to_int (Monotonic_clock.now ())

let feed_metrics t r =
  match t.metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun stage ->
          match stage_ns r stage with
          | None -> ()
          | Some ns ->
              Metrics.observe m
                (Printf.sprintf "lifecycle.%s.%s.ns" r.dev (stage_label stage))
                ns)
        stages

let on_event t (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Queue_submitted { dev; label; rid; _ } when rid > 0 ->
      let r =
        {
          rid;
          dev;
          label;
          submitted_at = t.clock ();
          started_at = -1;
          irq_raised_at = -1;
          irq_delivered_at = -1;
          completed_at = -1;
          ok = false;
          polls = 0;
          retries = 0;
          late_completion = false;
        }
      in
      Hashtbl.replace t.by_rid rid r;
      t.order <- r :: t.order;
      t.submitted <- t.submitted + 1;
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.incr m "lifecycle.submitted")
  | Trace.Queue_started { rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r when r.started_at < 0 -> r.started_at <- t.clock ()
      | _ -> ())
  | Trace.Irq_raised { rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r when r.irq_raised_at < 0 -> r.irq_raised_at <- t.clock ()
      | _ -> ())
  | Trace.Irq_delivered { rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r when r.irq_delivered_at < 0 -> r.irq_delivered_at <- t.clock ()
      | _ -> ())
  | Trace.Poll { rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r -> r.polls <- r.polls + 1
      | None -> ())
  | Trace.Retry { rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r -> r.retries <- r.retries + 1
      | None -> ())
  | Trace.Queue_completed { ok; rid; _ } when rid > 0 -> (
      match Hashtbl.find_opt t.by_rid rid with
      | Some r when r.completed_at < 0 ->
          r.completed_at <- t.clock ();
          r.ok <- ok;
          t.completed <- t.completed + 1;
          (match t.metrics with
          | None -> ()
          | Some m -> Metrics.incr m "lifecycle.completed");
          feed_metrics t r
      | _ -> ())
  | Trace.Queue_late { rid; _ } ->
      if rid > 0 then begin
        t.lost_interrupts <- t.lost_interrupts + 1;
        (match Hashtbl.find_opt t.by_rid rid with
        | Some r -> r.late_completion <- true
        | None -> ());
        match t.metrics with
        | None -> ()
        | Some m -> Metrics.incr m "lifecycle.lost_interrupts"
      end
      else begin
        t.spurious_completions <- t.spurious_completions + 1;
        match t.metrics with
        | None -> ()
        | Some m -> Metrics.incr m "lifecycle.spurious_completions"
      end
  | _ -> ()

let attach ?(clock = default_clock) ?metrics trace =
  let t =
    {
      clock;
      metrics;
      by_rid = Hashtbl.create 64;
      order = [];
      submitted = 0;
      completed = 0;
      lost_interrupts = 0;
      spurious_completions = 0;
    }
  in
  Trace.subscribe trace (fun e -> on_event t e);
  t

(* Offline replay: rebuild lifecycles from an already-recorded event
   list, using each event's sequence number as the clock (stage
   durations come out in trace-sequence ticks rather than
   nanoseconds). *)
let of_events ?metrics events =
  let now = ref 0 in
  let t =
    {
      clock = (fun () -> !now);
      metrics;
      by_rid = Hashtbl.create 64;
      order = [];
      submitted = 0;
      completed = 0;
      lost_interrupts = 0;
      spurious_completions = 0;
    }
  in
  List.iter
    (fun (e : Trace.event) ->
      now := e.Trace.seq;
      on_event t e)
    events;
  t

let requests t = List.rev t.order
let find t rid = Hashtbl.find_opt t.by_rid rid
let submitted t = t.submitted
let completed t = t.completed
let lost_interrupts t = t.lost_interrupts
let spurious_completions t = t.spurious_completions
let orphans t = List.rev (List.filter (fun r -> not (complete r)) t.order)

let pp_record fmt r =
  let pp_stage fmt stage =
    match stage_ns r stage with
    | None -> Format.fprintf fmt "%s=?" (stage_label stage)
    | Some ns -> Format.fprintf fmt "%s=%d" (stage_label stage) ns
  in
  Format.fprintf fmt "req #%d %s/%s %s" r.rid r.dev r.label
    (if not (complete r) then "ORPHAN"
     else if r.ok then "ok"
     else "failed");
  List.iter (fun s -> Format.fprintf fmt " %a" pp_stage s) stages
