(* The counter/histogram registry behind the observability layer. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;  (* power-of-two buckets: bucket i holds v with
                           2^(i-1) <= v < 2^i (bucket 0 holds v <= 0). *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; hists = Hashtbl.create 16 }

let parse_env_value = Env.parse_bool

let from_env () =
  match
    Env.lookup ~var:"DEVIL_METRICS" ~parse:parse_env_value
      ~accepted:Env.bool_forms ~fallback:true ~fallback_note:"metrics enabled"
  with
  | None | Some false -> None
  | Some true -> Some (create ())

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let count t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let bucket_count = 24

let bucket_of v =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  if v <= 0 then 0 else min (bucket_count - 1) (bits v 0)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
            buckets = Array.make bucket_count 0;
          }
        in
        Hashtbl.replace t.hists name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* {1 Percentiles}

   The buckets are power-of-two wide, so a quantile can only be located
   to its bucket; we report the bucket's upper bound (a conservative
   "no more than" estimate), clamped into the histogram's observed
   [min, max] so single-sample and narrow registries come out exact. *)

let bucket_upper i = if i <= 0 then 0 else (1 lsl i) - 1

let bucket_percentile ~count ~min_value ~max_value buckets q =
  if count <= 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let n = Array.length buckets in
    let rec locate i cum =
      if i >= n then n - 1
      else
        let cum = cum + buckets.(i) in
        if cum >= rank then i else locate (i + 1) cum
    in
    let est = bucket_upper (locate 0 0) in
    let est = if est < min_value then min_value else est in
    if est > max_value then max_value else est
  end

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

let snapshot h =
  if h.h_count = 0 then
    { count = 0; sum = 0; min = 0; max = 0; mean = 0.0; p50 = 0; p95 = 0;
      p99 = 0 }
  else
    let pct q =
      bucket_percentile ~count:h.h_count ~min_value:h.h_min ~max_value:h.h_max
        h.buckets q
    in
    {
      count = h.h_count;
      sum = h.h_sum;
      min = h.h_min;
      max = h.h_max;
      mean = float_of_int h.h_sum /. float_of_int h.h_count;
      p50 = pct 0.50;
      p95 = pct 0.95;
      p99 = pct 0.99;
    }

let histogram t name = Option.map snapshot (Hashtbl.find_opt t.hists name)

let hist_buckets t name =
  Option.map (fun h -> Array.copy h.buckets) (Hashtbl.find_opt t.hists name)

let percentile t name q =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h ->
      Some
        (bucket_percentile ~count:h.h_count ~min_value:h.h_min
           ~max_value:h.h_max h.buckets q)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)
let histograms t = List.map (fun (k, h) -> (k, snapshot h)) (sorted_bindings t.hists)

let ratio t ~hits ~misses =
  let h = count t hits and m = count t misses in
  if h + m = 0 then None else Some (float_of_int h /. float_of_int (h + m))

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.hists

(* {1 Folding}

   [merge a b] is a fresh registry holding the pointwise sum of two
   registries, as if one registry had seen both event streams: counters
   add, histograms add their counts, sums and buckets and take the
   min/max envelope. Because every derived statistic (percentiles,
   mean, the JSON export) is computed from exactly those fields, the
   fold is byte-identical to single-registry accounting — the property
   the per-shard design needs and test_telemetry's QCheck laws pin. *)

let copy_hist h =
  {
    h_count = h.h_count;
    h_sum = h.h_sum;
    h_min = h.h_min;
    h_max = h.h_max;
    buckets = Array.copy h.buckets;
  }

let merge_hist_into dst src =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum + src.h_sum;
  if src.h_min < dst.h_min then dst.h_min <- src.h_min;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max;
  Array.iteri (fun i v -> dst.buckets.(i) <- dst.buckets.(i) + v) src.buckets

let merge a b =
  let t = create () in
  let add_counters src =
    Hashtbl.iter
      (fun name r ->
        match Hashtbl.find_opt t.counters name with
        | Some dst -> dst := !dst + !r
        | None -> Hashtbl.replace t.counters name (ref !r))
      src.counters
  in
  let add_hists src =
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt t.hists name with
        | Some dst -> merge_hist_into dst h
        | None -> Hashtbl.replace t.hists name (copy_hist h))
      src.hists
  in
  add_counters a;
  add_counters b;
  add_hists a;
  add_hists b;
  t

(* {1 Rendering} *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
    (counters t);
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    \"%s\": { \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": \
            %d, \"mean\": %.3f, \"p50\": %d, \"p95\": %d, \"p99\": %d }"
           (json_escape name) s.count s.sum s.min s.max s.mean s.p50 s.p95
           s.p99))
    (histograms t);
  Buffer.add_string b "\n  }\n}";
  Buffer.contents b

let pp fmt t =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-40s %10d@." name v)
    (counters t);
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "%-40s count=%d sum=%d min=%d max=%d mean=%.1f@." name
        s.count s.sum s.min s.max s.mean)
    (histograms t)
