(** Compiled access plans: the fast-path execution engine behind
    {!Instance} (DESIGN.md §9).

    The paper's central performance argument (§3.2) is that Devil stubs
    are {e compiled}: masks, shifts and addresses are resolved once, at
    specification-compile time, so the per-access path contains only
    the I/O itself plus a handful of bit operations. The interpreting
    runtime in {!Instance} re-derives all of that on every access —
    string-keyed lookups of variables and registers, list traversals of
    chunks and siblings, mask re-scans.

    [compile] performs that resolution once, when the instance is
    created:

    - every register gets a cache {e slot index}, absolute read/write
      addresses and widths, and its mask folded to a
      [(covered, forced)] pair so the wire frame is two bit operations;
    - the trigger-neutral/cached-sibling composition of a register
      rewrite is folded to [(keep, neutral)] masks;
    - every variable gets pre-resolved gather/scatter bit plans over
      register slots, its distinct written registers in chunk order,
      and compiled pre/post/set action and serialization plans in which
      all names are array indices;
    - metric counter names are pre-concatenated per register.

    Semantics are {e identical} to the interpreter — same values, same
    [Device_error] messages, same bus transfers, same {!Trace} events
    in the same order, same {!Metrics} counters — which the
    differential property suite ([test/test_plan_diff.ml], alias
    [@plan]) checks over every bundled specification. The interpreter
    remains available through [Instance.create ~interpret:true] as the
    oracle. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

exception Device_error of string
(** The same exception as [Instance.Device_error] (the latter is a
    rebinding of this one, so handlers match either). *)

type t

val compile :
  ?debug:bool ->
  label:string ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?profile:Profile.t ->
  Ir.device ->
  bus:Bus.t ->
  bases:(string * int) list ->
  t
(** Resolves the whole device once. Raises {!Device_error} when a port
    has no base address (the same check {!Instance.create} performs).
    Resolution failures that the interpreter only reports on access
    (unknown names in malformed hand-built IR, unresolved wildcard
    operands) are preserved as failing thunks raised at the same access
    point with the same message.

    With [?profile], every access runs inside a span named after its
    site — ["<label>/var:<name>:read"], [":write"], [":block_read"],
    [":block_write"], ["<label>/struct:<name>:read"], [":write"],
    ["<label>/template:<tmpl>:read"], [":write"] — and every non-empty
    triggered action inside ["<label>/action:<owner>:<phase>"]. The
    span keys for variables and structures are precomputed at compile
    time; the disabled path costs one branch per access and allocates
    nothing. *)

val device : t -> Ir.device

(** {1 Pre-resolved variable handles}

    The string-keyed entry points below still pay one hashtable lookup
    per call to map the name to its compiled plan. A [handle] performs
    that lookup (and the public-interface check) once — the moral
    equivalent of the paper's generated C stub referring to its cache
    slot directly. *)

type handle

val handle : t -> string -> handle
(** Raises {!Device_error} for unknown or private variables. *)

val get_h : t -> handle -> Value.t
val set_h : t -> handle -> Value.t -> unit

(** {1 Entry points}

    Same contracts as the corresponding {!Instance} operations. *)

val get : t -> string -> Value.t
val set : t -> string -> Value.t -> unit
val get_struct : t -> string -> unit
val set_struct : t -> string -> (string * Value.t) list -> unit
val read_block : t -> string -> count:int -> int array
val write_block : t -> string -> int array -> unit
val read_wide : t -> string -> scale:int -> int
val write_wide : t -> string -> scale:int -> int -> unit
val read_block_wide : t -> string -> scale:int -> count:int -> int array
val write_block_wide : t -> string -> scale:int -> int array -> unit
val read_indexed : t -> template:string -> args:int list -> int
val write_indexed : t -> template:string -> args:int list -> int -> unit
val invalidate_cache : t -> unit
val cached_raw : t -> string -> int option
