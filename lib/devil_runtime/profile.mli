(** The hierarchical span profiler of the observability layer
    (DESIGN.md §11).

    A profiler turns nested [enter]/[exit] pairs — driver operation,
    variable/structure/block access, action, bus transfer — into two
    online aggregates:

    - a {b call-path trie} (one node per distinct key stack) carrying
      call counts plus total (inclusive) and self (exclusive)
      nanoseconds, walked by {!Trace_export.profile_to_folded} and
      {!Trace_export.profile_to_speedscope};
    - a flat {b site table} keyed by span key alone, with the same
      log-bucket layout as {!Metrics} histograms, summarised to
      p50/p95/p99 by {!sites}.

    Span keys extend the [Devil_ir.Sites.site_id] vocabulary with an
    instance-label prefix: ["ide/var:sector_count:write"],
    ["gfx/struct:FillRect:write"], ["uart/action:dlab:pre"], plus the
    non-instance families ["bus:read"], ["poll:<label>"],
    ["retry:<label>"] and caller-chosen roots (["driver:<workload>"]).

    The arithmetic guarantees [self = total - sum(children's total)]
    at every node (clamped at 0 against clock jitter), so self time
    summed over the whole trie equals the root spans' total time —
    the attribution identity [bench profile] reports.

    Strictly opt-in like {!Trace} and {!Metrics}: instrumented layers
    match their [t option] first, and the disabled path allocates
    nothing ({!Bus.observed} stays the identity). The clock is
    CLOCK_MONOTONIC in nanoseconds (bechamel's stub), substitutable for
    deterministic tests via {!set_clock}. *)

type t

val create : ?metrics:Metrics.t -> unit -> t
(** A fresh profiler. With [metrics], every completed span is also
    observed into the registry's [span.<key>.ns] histogram, giving the
    JSON export [span.<key>.ns.p95]-style summaries. *)

val from_env : ?metrics:Metrics.t -> unit -> t option
(** Reads [DEVIL_PROFILE]: unset or ["0"]/["off"] disable, ["1"]/["on"]
    enable. A malformed value warns on stderr and enables. *)

val parse_env_value : string -> (bool, string) result
(** The pure parser behind {!from_env} ({!Env.parse_bool}). *)

val set_metrics : t -> Metrics.t option -> unit

val set_clock : t -> (unit -> int) -> unit
(** Replace the nanosecond clock (tests use a deterministic counter).
    Samples are clamped monotonic: a clock that steps backwards reads
    as standing still. *)

(** {1 Spans} *)

type span
(** An open span, to be closed with {!exit}. Closing a span also closes
    any still-open spans nested inside it, so an exception that blows
    through nested [enter]s cannot corrupt the stack — which is why
    every instrumented site either uses {!span} or pairs
    {!enter}/{!exit} on both the return and the raise path. *)

val enter : t -> string -> span
val exit : t -> span -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t key f] runs [f] inside a [key] span, closing it whether [f]
    returns or raises. *)

val leaf : t -> string -> int -> unit
(** [leaf t key ns] records a completed child span of known duration
    under the currently open span (or at the root) without touching the
    stack — how externally-timed work (a bus transfer measured by
    {!Bus.observed}, a trace event) is attributed. *)

val attach : t -> Trace.t -> unit
(** Subscribe the profiler to a trace: every bus event becomes a
    {!leaf} (["bus:read"] etc.) whose duration is the gap since the
    profiler's last activity — an estimate for setups that cannot wrap
    their bus with [Bus.observed ?profile]. Do {b not} combine with a
    profile-wrapped bus on the same machine: bus time would be counted
    twice. *)

(** {1 Aggregates} *)

type site_stats = {
  calls : int;
  total_ns : int;
  self_ns : int;
  min_ns : int;
  max_ns : int;
  p50_ns : int;  (** Percentiles of per-call total time, estimated from
                     the log buckets exactly as {!Metrics.percentile}. *)
  p95_ns : int;
  p99_ns : int;
}

val sites : t -> (string * site_stats) list
(** The flat site table, sorted by key. *)

val site : t -> string -> site_stats option

(** The call-path trie. Children are sorted by key; a node's name is
    its span key (the same string can name nodes under different
    parents — that is the point). *)

type node

val roots : t -> node list
val node_name : node -> string
val node_count : node -> int
val node_total_ns : node -> int
val node_self_ns : node -> int
val node_children : node -> node list

val total_ns : t -> int
(** Total time under the root spans (sum of the roots' inclusive
    time). *)

val attributed_ns : t -> int
(** Self time summed over every node. Equal to {!total_ns} up to clock
    clamping — the "self sums to total" identity behind
    [bench profile]'s attribution column. *)

val live_depth : t -> int
(** Currently open spans (0 when quiescent). *)

val unbalanced_exits : t -> int
(** Exits that found their span already closed — always 0 unless
    enter/exit pairing is broken somewhere. *)

val reset : t -> unit
(** Drop all aggregates (not the clock, metrics link, or open-span
    bookkeeping of a quiescent profiler). *)

val merge : t -> t -> t
(** [merge a b] is a {e fresh} quiescent profiler: the call-path tries
    united by key path (count/total/self summed per node) and the site
    tables summed pointwise (min/max envelope, buckets added). Neither
    input is touched; both should be quiescent ({!live_depth} 0) —
    open spans are not carried over. The fold preserves the
    [attributed_ns = total_ns] identity and the site percentiles, is
    associative and commutative, and has [create ()] as identity —
    the per-shard folding discipline of ROADMAP item 2, pinned by
    test_telemetry's QCheck laws. The merged profiler has no metrics
    link and the default clock. *)
