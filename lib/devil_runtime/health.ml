(* The health/watchdog layer (DESIGN.md §15): turns lifecycle
   aggregates and the existing scheduler/policy/trace counters into a
   thresholded verdict with named reasons, so campaigns and gates can
   ask "is this run healthy?" without re-deriving the answer from raw
   counters each time. *)

type verdict = Ok | Degraded | Stalled

let verdict_label = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Stalled -> "stalled"

let severity = function Ok -> 0 | Degraded -> 1 | Stalled -> 2
let verdict_severity = severity

type reason = { code : string; count : int; detail : string }

type report = {
  verdict : verdict;
  reasons : reason list;
  counters : (string * int) list;
}

(* Each rule names a counter, the verdict its breach implies and a
   human sentence. A rule fires when the observed count exceeds its
   threshold (default 0: any occurrence). [fault.injections] is
   deliberately absent — an injection is the experiment, not the
   symptom; what it breaks shows up in the other counters. *)
type rule = {
  rl_code : string;
  rl_verdict : verdict;
  rl_threshold : int;
  rl_describe : int -> string;
}

let default_rules =
  let n fmt = Printf.sprintf fmt in
  [
    {
      rl_code = "request_timeouts";
      rl_verdict = Stalled;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d queued request(s) timed out" c);
    };
    {
      rl_code = "orphaned_requests";
      rl_verdict = Stalled;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d request(s) submitted but never completed" c);
    };
    {
      rl_code = "irq_storms";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d interrupt storm(s) hit the delivery bound" c);
    };
    {
      rl_code = "unhandled_irqs";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe =
        (fun c -> n "%d interrupt(s)/completion(s) had no taker" c);
    };
    {
      rl_code = "irq_path_faults";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d fault(s) on the acknowledge/EOI path" c);
    };
    {
      rl_code = "handler_errors";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d interrupt handler(s) failed" c);
    };
    {
      rl_code = "retries_exhausted";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe = (fun c -> n "%d retry budget(s) ran out" c);
    };
    {
      rl_code = "lost_interrupts";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe =
        (fun c -> n "%d completion(s) arrived after their request timed out" c);
    };
    {
      rl_code = "spurious_completions";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe =
        (fun c -> n "%d completion(s) matched no outstanding request" c);
    };
    {
      rl_code = "trace_drops";
      rl_verdict = Degraded;
      rl_threshold = 0;
      rl_describe =
        (fun c -> n "%d trace event(s) evicted by the ring bound" c);
    };
  ]

(* The counter each rule reads. Lifecycle-derived codes are also
   backed by metrics counters, but prefer the live lifecycle handle
   when one is given (it sees events even when metrics are off). *)
let observed ?lifecycle ?trace metrics code =
  let m name = match metrics with None -> 0 | Some m -> Metrics.count m name in
  match code with
  | "request_timeouts" -> m "sched.timeouts"
  | "orphaned_requests" -> (
      match lifecycle with
      | Some lc -> List.length (Lifecycle.orphans lc)
      | None -> max 0 (m "lifecycle.submitted" - m "lifecycle.completed"))
  | "irq_storms" -> m "sched.irqs.storms"
  | "unhandled_irqs" -> m "sched.irqs.unhandled"
  | "irq_path_faults" -> m "sched.irqs.faults"
  | "handler_errors" -> m "sched.handler_errors"
  | "retries_exhausted" -> m "retry.exhausted"
  | "lost_interrupts" -> (
      match lifecycle with
      | Some lc -> Lifecycle.lost_interrupts lc
      | None -> m "lifecycle.lost_interrupts")
  | "spurious_completions" -> (
      match lifecycle with
      | Some lc -> Lifecycle.spurious_completions lc
      | None -> m "lifecycle.spurious_completions")
  | "trace_drops" -> (
      match trace with
      | Some tr -> Trace.dropped tr
      | None -> m "trace.dropped_events")
  | _ -> 0

let informational = [ "fault.injections"; "sched.submits"; "sched.completions" ]

let evaluate ?(thresholds = []) ?lifecycle ?trace ?metrics () =
  let threshold_of rule =
    match List.assoc_opt rule.rl_code thresholds with
    | Some t -> t
    | None -> rule.rl_threshold
  in
  let reasons =
    List.filter_map
      (fun rule ->
        let count = observed ?lifecycle ?trace metrics rule.rl_code in
        if count > threshold_of rule then
          Some
            ( rule.rl_verdict,
              { code = rule.rl_code; count; detail = rule.rl_describe count } )
        else None)
      default_rules
  in
  let verdict =
    List.fold_left
      (fun acc (v, _) -> if severity v > severity acc then v else acc)
      Ok reasons
  in
  (* Stalled reasons first, then by rule order. *)
  let reasons =
    List.stable_sort
      (fun (a, _) (b, _) -> compare (severity b) (severity a))
      reasons
    |> List.map snd
  in
  let counters =
    List.map (fun rule -> (rule.rl_code, observed ?lifecycle ?trace metrics rule.rl_code))
      default_rules
    @ List.filter_map
        (fun name ->
          match metrics with
          | None -> None
          | Some m -> Some (name, Metrics.count m name))
        informational
  in
  { verdict; reasons; counters }

let is_ok r = r.verdict = Ok

(* {1 JSON} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"verdict\":\"%s\",\"reasons\":[" (verdict_label r.verdict));
  List.iteri
    (fun i reason ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"code\":\"%s\",\"count\":%d,\"detail\":\"%s\"}"
           (json_escape reason.code) reason.count (json_escape reason.detail)))
    r.reasons;
  Buffer.add_string b "],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    r.counters;
  Buffer.add_string b "}}";
  Buffer.contents b

let summary r =
  match r.reasons with
  | [] -> verdict_label r.verdict
  | reasons ->
      Printf.sprintf "%s (%s)" (verdict_label r.verdict)
        (String.concat ", "
           (List.map (fun x -> Printf.sprintf "%s=%d" x.code x.count) reasons))

let pp fmt r =
  Format.fprintf fmt "health: %s" (verdict_label r.verdict);
  List.iter
    (fun reason -> Format.fprintf fmt "@.  - %s: %s" reason.code reason.detail)
    r.reasons
