(** The counter/histogram registry of the observability layer
    (DESIGN.md §8).

    A registry holds named monotonic counters and named histograms.
    The instrumented layers use a dotted naming convention, so the
    registry doubles as documentation of what is measured:

    {e Bus traffic} (from {!Bus.observed}) — transactions, elements and
    bytes are counted {e separately}, which is the accounting the cost
    model needs (one bus transaction per block transfer, one element
    per word moved):
    - [bus.reads], [bus.writes] — single transfers;
    - [bus.block_reads], [bus.block_writes] — block {e transactions};
    - [bus.read_items], [bus.write_items] — block {e elements};
    - [bus.bytes_read], [bus.bytes_written] — bytes moved (width / 8
      per element);
    - histogram [bus.block_len] — elements per block transfer.

    {e Stub-level} (from {!Instance}, [<dev>] is the instance label):
    - [io.<dev>.reg_reads], [io.<dev>.reg_writes] — register-level I/O;
    - [reg.<dev>.<reg>.reads], [reg.<dev>.<reg>.writes] — per register;
    - [cache.<dev>.hits], [cache.<dev>.misses] — idempotent-register
      cache outcomes (the hit ratio via {!ratio}).

    {e Recovery} (from {!Policy}):
    - [poll.runs], [poll.ticks], [poll.timeouts]; histogram
      [poll.iters] — condition evaluations per poll;
    - [retry.attempts] — operations re-executed after a transient
      failure; [retry.exhausted] — retry budgets that ran out.

    {e Faults} (from {!Fault}): [fault.injections] and
    [fault.<plan>.injections].

    {e Spans} (from {!Profile}, when a registry is attached to the
    profiler): histogram [span.<key>.ns] — wall time per completed span
    at each profiling site, so the JSON export carries
    [span.<key>.ns.p95]-style summaries.

    Like tracing, metrics are strictly opt-in: no layer counts anything
    unless a registry was passed in (or created from the
    [DEVIL_METRICS] environment variable via {!from_env}). *)

type t

val create : unit -> t

val from_env : unit -> t option
(** Reads [DEVIL_METRICS]: unset or ["0"]/["off"] (and friends)
    disable, ["1"]/["on"] enable. A malformed value prints a one-line
    warning to stderr with the accepted forms and enables metrics. *)

val parse_env_value : string -> (bool, string) result
(** The pure parser behind {!from_env}: [Ok enabled] or [Error why]
    for a malformed value. Exposed for testing. *)

val incr : t -> ?by:int -> string -> unit
(** Adds [by] (default 1) to a counter, creating it at zero first. *)

val count : t -> string -> int
(** Current value; 0 for a counter never incremented. *)

val observe : t -> string -> int -> unit
(** Records a sample into a histogram, creating it first. *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;  (** Median estimate — see {!percentile}. *)
  p95 : int;
  p99 : int;
}

val histogram : t -> string -> hist_snapshot option

val percentile : t -> string -> float -> int option
(** [percentile t name q] estimates the [q]-quantile ([0 < q <= 1]) of
    a histogram from its power-of-two buckets: the estimate is the
    upper bound of the bucket holding the [ceil (q * count)]-th sample,
    clamped into the observed [min, max] (so a single-sample histogram
    reports that sample exactly). [None] when the histogram does not
    exist or is empty. *)

(** {2 Bucket layer}

    The histogram bucketing, exposed so {!Profile} aggregates its span
    latencies with the same layout and percentile semantics. *)

val bucket_count : int
(** Number of power-of-two buckets (24). *)

val bucket_of : int -> int
(** The bucket index for a sample: bucket 0 holds [v <= 0], bucket [i]
    holds [2^(i-1) <= v < 2^i], the last bucket everything above. *)

val bucket_upper : int -> int
(** The largest value bucket [i] can hold ([2^i - 1]; 0 for bucket 0).
    The last bucket is open-ended, which is why {!percentile} clamps to
    the observed maximum. *)

val bucket_percentile :
  count:int -> min_value:int -> max_value:int -> int array -> float -> int
(** The pure estimator behind {!percentile}, usable on any bucket array
    laid out by {!bucket_of}. *)

val hist_buckets : t -> string -> int array option
(** A copy of a histogram's raw bucket counts ({!bucket_count} wide) —
    what {!Telemetry} diffs between ticks for windowed percentiles and
    {!Trace_export.to_openmetrics} renders as Prometheus buckets. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> (string * hist_snapshot) list

val ratio : t -> hits:string -> misses:string -> float option
(** [hits / (hits + misses)], or [None] when both are zero — e.g.
    [ratio m ~hits:"cache.ide.hits" ~misses:"cache.ide.misses"]. *)

val reset : t -> unit

val merge : t -> t -> t
(** [merge a b] is a {e fresh} registry holding the pointwise sum of
    both: counters add; histograms add count/sum/buckets and take the
    min/max envelope. Neither input is touched. The fold is exact —
    every derived statistic (percentiles, mean, {!to_json}) of the
    merge equals what one registry fed the concatenated event stream
    would report — and is associative and commutative with
    [create ()] as identity, so per-shard registries can be folded in
    any order at snapshot time (ROADMAP item 2). *)

val to_json : t -> string
(** The whole registry as a JSON object
    [{ "counters": {..}, "histograms": {..} }] — the [obs] bench
    artifact. *)

val pp : Format.formatter -> t -> unit
