(** The counter/histogram registry of the observability layer
    (DESIGN.md §8).

    A registry holds named monotonic counters and named histograms.
    The instrumented layers use a dotted naming convention, so the
    registry doubles as documentation of what is measured:

    {e Bus traffic} (from {!Bus.observed}) — transactions, elements and
    bytes are counted {e separately}, which is the accounting the cost
    model needs (one bus transaction per block transfer, one element
    per word moved):
    - [bus.reads], [bus.writes] — single transfers;
    - [bus.block_reads], [bus.block_writes] — block {e transactions};
    - [bus.read_items], [bus.write_items] — block {e elements};
    - [bus.bytes_read], [bus.bytes_written] — bytes moved (width / 8
      per element);
    - histogram [bus.block_len] — elements per block transfer.

    {e Stub-level} (from {!Instance}, [<dev>] is the instance label):
    - [io.<dev>.reg_reads], [io.<dev>.reg_writes] — register-level I/O;
    - [reg.<dev>.<reg>.reads], [reg.<dev>.<reg>.writes] — per register;
    - [cache.<dev>.hits], [cache.<dev>.misses] — idempotent-register
      cache outcomes (the hit ratio via {!ratio}).

    {e Recovery} (from {!Policy}):
    - [poll.runs], [poll.ticks], [poll.timeouts]; histogram
      [poll.iters] — condition evaluations per poll;
    - [retry.attempts] — operations re-executed after a transient
      failure; [retry.exhausted] — retry budgets that ran out.

    {e Faults} (from {!Fault}): [fault.injections] and
    [fault.<plan>.injections].

    Like tracing, metrics are strictly opt-in: no layer counts anything
    unless a registry was passed in (or created from the
    [DEVIL_METRICS] environment variable via {!from_env}). *)

type t

val create : unit -> t

val from_env : unit -> t option
(** Reads [DEVIL_METRICS]: unset or ["0"]/["off"] (and friends)
    disable, ["1"]/["on"] enable. A malformed value prints a one-line
    warning to stderr with the accepted forms and enables metrics. *)

val parse_env_value : string -> (bool, string) result
(** The pure parser behind {!from_env}: [Ok enabled] or [Error why]
    for a malformed value. Exposed for testing. *)

val incr : t -> ?by:int -> string -> unit
(** Adds [by] (default 1) to a counter, creating it at zero first. *)

val count : t -> string -> int
(** Current value; 0 for a counter never incremented. *)

val observe : t -> string -> int -> unit
(** Records a sample into a histogram, creating it first. *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
}

val histogram : t -> string -> hist_snapshot option
val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> (string * hist_snapshot) list

val ratio : t -> hits:string -> misses:string -> float option
(** [hits / (hits + misses)], or [None] when both are zero — e.g.
    [ratio m ~hits:"cache.ide.hits" ~misses:"cache.ide.misses"]. *)

val reset : t -> unit

val to_json : t -> string
(** The whole registry as a JSON object
    [{ "counters": {..}, "histograms": {..} }] — the [obs] bench
    artifact. *)

val pp : Format.formatter -> t -> unit
