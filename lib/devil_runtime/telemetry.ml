(* The deterministic-tick time-series sampler (DESIGN.md §16).

   A telemetry handle watches one {!Metrics.t} and, on every explicit
   [tick], appends one sample per metric to a bounded per-metric ring:

   - counters: the cumulative total plus the delta since the previous
     tick — the windowed rate, [delta * hz] per second;
   - histograms: the bucket-array delta since the previous tick,
     summarised to windowed p50/p95/p99 with the same estimator as the
     lifetime percentiles — so "p99 over the last tick" and "p99 since
     boot" are both available and clearly distinct.

   The clock is the tick counter itself — the same discipline as
   {!Lifecycle.of_events} using trace sequence numbers — so a replayed
   run that ticks at the same points produces a byte-identical series;
   nothing here reads wall time. Rates are derived at display time
   from [hz] (ticks per second, default 1.0) and never stored.

   Rings evict oldest-first at constant space like {!Trace}'s;
   {!evictions} totals the drops across every series so dashboards can
   shout when the window is shorter than it looks.

   Strictly opt-in like the rest of the layer: a machine holds a
   [Telemetry.t option] and the disabled path is one option match —
   nothing is sampled, nothing allocates. *)

type counter_point = { at : int; total : int; delta : int }

type hist_point = {
  h_at : int;
  h_count : int;
  h_sum : int;
  h_p50 : int;
  h_p95 : int;
  h_p99 : int;
}

type health_point = { hp_at : int; hp_verdict : string; hp_summary : string }

type cseries = {
  c_ring : counter_point Trace.Ring.t;
  mutable c_last : int;
}

type hseries = {
  hs_ring : hist_point Trace.Ring.t;
  hs_prev : int array;
  mutable hs_prev_count : int;
  mutable hs_prev_sum : int;
}

type t = {
  metrics : Metrics.t;
  capacity : int;
  hz : float;
  mutable ticks : int;
  counters : (string, cseries) Hashtbl.t;
  hists : (string, hseries) Hashtbl.t;
  health_ring : health_point Trace.Ring.t;
}

let default_capacity = 64

let create ?(capacity = default_capacity) ?(hz = 1.0) metrics =
  let capacity = max 1 capacity in
  {
    metrics;
    capacity;
    hz;
    ticks = 0;
    counters = Hashtbl.create 64;
    hists = Hashtbl.create 16;
    health_ring = Trace.Ring.create ~capacity;
  }

let metrics t = t.metrics
let ticks t = t.ticks
let hz t = t.hz
let capacity t = t.capacity

(* Windowed percentiles come from the bucket delta alone, so the
   min/max clamp uses bucket bounds: the window's samples all lie
   between the lowest non-empty delta bucket's lower edge and the
   highest one's upper edge. *)
let window_percentile ~count deltas q =
  let n = Array.length deltas in
  let lo = ref (-1) and hi = ref (-1) in
  for i = 0 to n - 1 do
    if deltas.(i) > 0 then begin
      if !lo < 0 then lo := i;
      hi := i
    end
  done;
  if count <= 0 || !lo < 0 then 0
  else
    let min_value = if !lo = 0 then 0 else Metrics.bucket_upper (!lo - 1) + 1 in
    let max_value = Metrics.bucket_upper !hi in
    Metrics.bucket_percentile ~count ~min_value ~max_value deltas q

let tick ?health t =
  t.ticks <- t.ticks + 1;
  let at = t.ticks in
  List.iter
    (fun (name, total) ->
      let s =
        match Hashtbl.find_opt t.counters name with
        | Some s -> s
        | None ->
            let s =
              { c_ring = Trace.Ring.create ~capacity:t.capacity; c_last = 0 }
            in
            Hashtbl.replace t.counters name s;
            s
      in
      Trace.Ring.add s.c_ring { at; total; delta = total - s.c_last };
      s.c_last <- total)
    (Metrics.counters t.metrics);
  List.iter
    (fun (name, (snap : Metrics.hist_snapshot)) ->
      let s =
        match Hashtbl.find_opt t.hists name with
        | Some s -> s
        | None ->
            let s =
              {
                hs_ring = Trace.Ring.create ~capacity:t.capacity;
                hs_prev = Array.make Metrics.bucket_count 0;
                hs_prev_count = 0;
                hs_prev_sum = 0;
              }
            in
            Hashtbl.replace t.hists name s;
            s
      in
      let buckets =
        match Metrics.hist_buckets t.metrics name with
        | Some b -> b
        | None -> Array.make Metrics.bucket_count 0
      in
      let deltas =
        Array.init Metrics.bucket_count (fun i -> buckets.(i) - s.hs_prev.(i))
      in
      let count = snap.count - s.hs_prev_count in
      let sum = snap.sum - s.hs_prev_sum in
      Trace.Ring.add s.hs_ring
        {
          h_at = at;
          h_count = count;
          h_sum = sum;
          h_p50 = window_percentile ~count deltas 0.50;
          h_p95 = window_percentile ~count deltas 0.95;
          h_p99 = window_percentile ~count deltas 0.99;
        };
      Array.blit buckets 0 s.hs_prev 0 Metrics.bucket_count;
      s.hs_prev_count <- snap.count;
      s.hs_prev_sum <- snap.sum)
    (Metrics.histograms t.metrics);
  match health with
  | None -> ()
  | Some (report : Health.report) ->
      Trace.Ring.add t.health_ring
        {
          hp_at = at;
          hp_verdict = Health.verdict_label report.Health.verdict;
          hp_summary = Health.summary report;
        }

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let counter_names t = sorted_keys t.counters
let hist_names t = sorted_keys t.hists

let counter_series t name =
  match Hashtbl.find_opt t.counters name with
  | Some s -> Trace.Ring.to_list s.c_ring
  | None -> []

let hist_series t name =
  match Hashtbl.find_opt t.hists name with
  | Some s -> Trace.Ring.to_list s.hs_ring
  | None -> []

let health_series t = Trace.Ring.to_list t.health_ring

let last_rate t name =
  match Hashtbl.find_opt t.counters name with
  | None -> None
  | Some s -> (
      match List.rev (Trace.Ring.to_list s.c_ring) with
      | [] -> None
      | p :: _ -> Some (float_of_int p.delta *. t.hz))

let mean_rate t name =
  match Hashtbl.find_opt t.counters name with
  | None -> None
  | Some s -> (
      match Trace.Ring.to_list s.c_ring with
      | [] -> None
      | ps ->
          let sum = List.fold_left (fun acc p -> acc + p.delta) 0 ps in
          Some (float_of_int sum /. float_of_int (List.length ps) *. t.hz))

let evictions t =
  let series =
    Hashtbl.fold (fun _ s acc -> acc + Trace.Ring.dropped s.c_ring) t.counters 0
    + Hashtbl.fold
        (fun _ s acc -> acc + Trace.Ring.dropped s.hs_ring)
        t.hists 0
  in
  series + Trace.Ring.dropped t.health_ring

(* {1 Environment opt-in}

   The [DEVIL_TRACE] protocol, for the same reason: the interesting
   parameter is the ring depth. *)

let parse_env_value s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" | "false" | "no" -> Ok None
  | "1" | "on" | "true" | "yes" -> Ok (Some default_capacity)
  | v -> (
      match int_of_string_opt v with
      | Some n when n > 1 -> Ok (Some n)
      | Some n ->
          Error (Printf.sprintf "capacity %d is not a positive sample count" n)
      | None -> Error (Printf.sprintf "%S is not an integer or on/off" s))

let env_forms =
  "0/off to disable, 1/on for the default capacity, or an integer sample \
   capacity > 1"

let from_env metrics =
  match
    Env.lookup ~var:"DEVIL_TELEMETRY" ~parse:parse_env_value
      ~accepted:env_forms
      ~fallback:(Some default_capacity)
      ~fallback_note:
        (Printf.sprintf "telemetry with the default capacity %d"
           default_capacity)
  with
  | None | Some None -> None
  | Some (Some capacity) -> Some (create ~capacity metrics)
