(* The bounded event trace behind the runtime's observability layer. *)

module Ring = struct
  type 'a t = {
    buf : 'a option array;
    capacity : int;
    mutable total : int;  (* items ever added *)
  }

  let create ~capacity =
    let capacity = max 1 capacity in
    { buf = Array.make capacity None; capacity; total = 0 }

  let capacity t = t.capacity
  let total t = t.total
  let length t = min t.total t.capacity
  let dropped t = max 0 (t.total - t.capacity)

  let add t x =
    t.buf.(t.total mod t.capacity) <- Some x;
    t.total <- t.total + 1

  let clear t =
    Array.fill t.buf 0 t.capacity None;
    t.total <- 0

  let to_list t =
    let n = length t in
    let start = t.total - n in
    List.init n (fun i ->
        match t.buf.((start + i) mod t.capacity) with
        | Some x -> x
        | None -> assert false)

  (* Iterates the buffer in place, oldest first, without materialising
     a list — [pp] and other read-only consumers stay allocation-free
     even on large rings. *)
  let iter f t =
    let n = length t in
    let start = t.total - n in
    for i = 0 to n - 1 do
      match t.buf.((start + i) mod t.capacity) with
      | Some x -> f x
      | None -> assert false
    done
end

type phase = Pre | Post | Set

type kind =
  | Bus_read of { addr : int; width : int; value : int }
  | Bus_write of { addr : int; width : int; value : int }
  | Bus_block_read of { addr : int; width : int; count : int }
  | Bus_block_write of { addr : int; width : int; count : int }
  | Reg_read of { dev : string; reg : string; raw : int }
  | Reg_write of { dev : string; reg : string; raw : int }
  | Var_read of { dev : string; var : string }
  | Var_write of { dev : string; var : string; regs : string list }
  | Struct_write of {
      dev : string;
      strct : string;
      fields : string list;
      regs : string list;
    }
  | Cache_hit of { dev : string; reg : string }
  | Cache_miss of { dev : string; reg : string }
  | Cache_invalidated of { dev : string }
  | Action of { dev : string; owner : string; phase : phase; assignments : int }
  | Serialized of { dev : string; owner : string; order : string list }
  | Poll of { label : string; iters : int; ok : bool; rid : int }
  | Retry of { label : string; attempt : int; reason : string; rid : int }
  | Fault_injected of {
      plan : string;
      addr : int;
      width : int;
      detail : string;
    }
  | Irq_raised of { line : int; dev : string; rid : int }
  | Irq_delivered of { line : int; dev : string; rid : int }
  | Queue_submitted of { dev : string; label : string; depth : int; rid : int }
  | Queue_started of { dev : string; label : string; rid : int }
  | Queue_completed of {
      dev : string;
      label : string;
      depth : int;
      ok : bool;
      rid : int;
    }
  | Queue_late of { dev : string; rid : int }

type event = { seq : int; kind : kind }

type t = {
  ring : event Ring.t;
  mutable next_seq : int;
  mutable subscribers : (event -> unit) list;
  mutable on_drop : unit -> unit;
}

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  { ring = Ring.create ~capacity; next_seq = 0; subscribers = [];
    on_drop = ignore }

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let set_drop_hook t f = t.on_drop <- f

let emit t kind =
  let e = { seq = t.next_seq; kind } in
  let evicting = Ring.total t.ring >= Ring.capacity t.ring in
  Ring.add t.ring e;
  t.next_seq <- t.next_seq + 1;
  if evicting then t.on_drop ();
  match t.subscribers with
  | [] -> ()
  | subs -> List.iter (fun f -> f e) subs

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let recorded t = Ring.total t.ring
let capacity t = Ring.capacity t.ring

let clear t =
  Ring.clear t.ring;
  t.next_seq <- 0

(* {1 Folding}

   Per-shard traces number their events independently, so the merged
   stream interleaves the shards by sequence number — a stable merge:
   ties keep the left operand's events first, and each shard's own
   order is preserved exactly. *)

let merge_events a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
        if x.seq <= y.seq then go a' b (x :: acc) else go a b' (y :: acc)
  in
  go a b []

let merge ?capacity a b =
  let capacity =
    match capacity with
    | Some c -> c
    | None -> max (Ring.capacity a.ring) (Ring.capacity b.ring)
  in
  let t = create ~capacity () in
  List.iter (Ring.add t.ring) (merge_events (events a) (events b));
  (* The merged clock resumes past both shards, so further [emit]s
     cannot collide with either input's numbering. *)
  t.next_seq <- max a.next_seq b.next_seq;
  t

let parse_env_value s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" | "false" | "no" -> Ok None
  | "1" | "on" | "true" | "yes" -> Ok (Some default_capacity)
  | v -> (
      match int_of_string_opt v with
      | Some n when n > 1 -> Ok (Some n)
      | Some n ->
          Error (Printf.sprintf "capacity %d is not a positive event count" n)
      | None -> Error (Printf.sprintf "%S is not an integer or on/off" s))

let env_forms = "0/off to disable, 1/on for the default capacity, or an \
                 integer capacity > 1"

let from_env () =
  match
    Env.lookup ~var:"DEVIL_TRACE" ~parse:parse_env_value ~accepted:env_forms
      ~fallback:(Some default_capacity)
      ~fallback_note:
        (Printf.sprintf "tracing with the default capacity %d"
           default_capacity)
  with
  | None | Some None -> None
  | Some (Some capacity) -> Some (create ~capacity ())

let phase_label = function Pre -> "pre" | Post -> "post" | Set -> "set"

(* Request ids are only printed when present (rid 0 is "not on behalf
   of a queued request"), so pre-scheduler traces render unchanged. *)
let pp_rid fmt rid = if rid > 0 then Format.fprintf fmt " [req #%d]" rid

let pp_kind fmt = function
  | Bus_read { addr; width; value } ->
      Format.fprintf fmt "bus R%d [%#x] -> %#x" width addr value
  | Bus_write { addr; width; value } ->
      Format.fprintf fmt "bus W%d [%#x] <- %#x" width addr value
  | Bus_block_read { addr; width; count } ->
      Format.fprintf fmt "bus R%d block [%#x] x%d" width addr count
  | Bus_block_write { addr; width; count } ->
      Format.fprintf fmt "bus W%d block [%#x] x%d" width addr count
  | Reg_read { dev; reg; raw } ->
      Format.fprintf fmt "%s: reg %s -> %#x" dev reg raw
  | Reg_write { dev; reg; raw } ->
      Format.fprintf fmt "%s: reg %s <- %#x" dev reg raw
  | Var_read { dev; var } -> Format.fprintf fmt "%s: var %s read" dev var
  | Var_write { dev; var; regs } ->
      Format.fprintf fmt "%s: var %s write (regs: %s)" dev var
        (String.concat ", " regs)
  | Struct_write { dev; strct; fields; regs } ->
      Format.fprintf fmt "%s: struct %s write (fields: %s; regs: %s)" dev strct
        (String.concat ", " fields)
        (String.concat ", " regs)
  | Cache_hit { dev; reg } -> Format.fprintf fmt "%s: cache hit on %s" dev reg
  | Cache_miss { dev; reg } -> Format.fprintf fmt "%s: cache miss on %s" dev reg
  | Cache_invalidated { dev } ->
      Format.fprintf fmt "%s: register cache invalidated" dev
  | Action { dev; owner; phase; assignments } ->
      Format.fprintf fmt "%s: %s-action of %s (%d assignment%s)" dev
        (phase_label phase) owner assignments
        (if assignments = 1 then "" else "s")
  | Serialized { dev; owner; order } ->
      Format.fprintf fmt "%s: serialized write of %s: %s" dev owner
        (String.concat " -> " order)
  | Poll { label; iters; ok; rid } ->
      Format.fprintf fmt "poll %s: %d iteration%s, %s%a" label iters
        (if iters = 1 then "" else "s")
        (if ok then "satisfied" else "timed out")
        pp_rid rid
  | Retry { label; attempt; reason; rid } ->
      Format.fprintf fmt "retry %s: attempt %d failed (%s)%a" label attempt
        reason pp_rid rid
  | Fault_injected { plan; addr; width; detail } ->
      Format.fprintf fmt "fault %s: %d-bit access [%#x]: %s" plan width addr
        detail
  | Irq_raised { line; dev; rid } ->
      Format.fprintf fmt "irq %d raised (%s)%a" line dev pp_rid rid
  | Irq_delivered { line; dev; rid } ->
      Format.fprintf fmt "irq %d delivered to %s%a" line dev pp_rid rid
  | Queue_submitted { dev; label; depth; rid } ->
      Format.fprintf fmt "%s: queued %s (depth %d)%a" dev label depth pp_rid
        rid
  | Queue_started { dev; label; rid } ->
      Format.fprintf fmt "%s: started %s%a" dev label pp_rid rid
  | Queue_completed { dev; label; depth; ok; rid } ->
      Format.fprintf fmt "%s: %s %s (depth %d)%a" dev label
        (if ok then "completed" else "failed")
        depth pp_rid rid
  | Queue_late { dev; rid } ->
      if rid > 0 then
        Format.fprintf fmt "%s: late completion for timed-out request #%d" dev
          rid
      else Format.fprintf fmt "%s: spurious completion (no request)" dev

let pp_event fmt e = Format.fprintf fmt "#%d %a" e.seq pp_kind e.kind

let pp fmt t =
  Ring.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) t.ring

let summary t =
  Printf.sprintf "%d events (%d retained, %d evicted)" (recorded t) (length t)
    (dropped t)
