(* The bounded event trace behind the runtime's observability layer. *)

module Ring = struct
  type 'a t = {
    buf : 'a option array;
    capacity : int;
    mutable total : int;  (* items ever added *)
  }

  let create ~capacity =
    let capacity = max 1 capacity in
    { buf = Array.make capacity None; capacity; total = 0 }

  let capacity t = t.capacity
  let total t = t.total
  let length t = min t.total t.capacity
  let dropped t = max 0 (t.total - t.capacity)

  let add t x =
    t.buf.(t.total mod t.capacity) <- Some x;
    t.total <- t.total + 1

  let clear t =
    Array.fill t.buf 0 t.capacity None;
    t.total <- 0

  let to_list t =
    let n = length t in
    let start = t.total - n in
    List.init n (fun i ->
        match t.buf.((start + i) mod t.capacity) with
        | Some x -> x
        | None -> assert false)

  let iter f t = List.iter f (to_list t)
end

type phase = Pre | Post | Set

type kind =
  | Bus_read of { addr : int; width : int; value : int }
  | Bus_write of { addr : int; width : int; value : int }
  | Bus_block_read of { addr : int; width : int; count : int }
  | Bus_block_write of { addr : int; width : int; count : int }
  | Reg_read of { dev : string; reg : string; raw : int }
  | Reg_write of { dev : string; reg : string; raw : int }
  | Cache_hit of { dev : string; reg : string }
  | Cache_miss of { dev : string; reg : string }
  | Action of { dev : string; owner : string; phase : phase; assignments : int }
  | Serialized of { dev : string; owner : string; order : string list }
  | Poll of { label : string; iters : int; ok : bool }
  | Retry of { label : string; attempt : int; reason : string }
  | Fault_injected of {
      plan : string;
      addr : int;
      width : int;
      detail : string;
    }

type event = { seq : int; kind : kind }
type t = { ring : event Ring.t; mutable next_seq : int }

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  { ring = Ring.create ~capacity; next_seq = 0 }

let emit t kind =
  Ring.add t.ring { seq = t.next_seq; kind };
  t.next_seq <- t.next_seq + 1

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let recorded t = Ring.total t.ring
let capacity t = Ring.capacity t.ring

let clear t =
  Ring.clear t.ring;
  t.next_seq <- 0

let from_env () =
  match Sys.getenv_opt "DEVIL_TRACE" with
  | None | Some "" | Some "0" -> None
  | Some s ->
      let capacity =
        match int_of_string_opt s with
        | Some n when n > 1 -> n
        | _ -> default_capacity
      in
      Some (create ~capacity ())

let phase_label = function Pre -> "pre" | Post -> "post" | Set -> "set"

let pp_kind fmt = function
  | Bus_read { addr; width; value } ->
      Format.fprintf fmt "bus R%d [%#x] -> %#x" width addr value
  | Bus_write { addr; width; value } ->
      Format.fprintf fmt "bus W%d [%#x] <- %#x" width addr value
  | Bus_block_read { addr; width; count } ->
      Format.fprintf fmt "bus R%d block [%#x] x%d" width addr count
  | Bus_block_write { addr; width; count } ->
      Format.fprintf fmt "bus W%d block [%#x] x%d" width addr count
  | Reg_read { dev; reg; raw } ->
      Format.fprintf fmt "%s: reg %s -> %#x" dev reg raw
  | Reg_write { dev; reg; raw } ->
      Format.fprintf fmt "%s: reg %s <- %#x" dev reg raw
  | Cache_hit { dev; reg } -> Format.fprintf fmt "%s: cache hit on %s" dev reg
  | Cache_miss { dev; reg } -> Format.fprintf fmt "%s: cache miss on %s" dev reg
  | Action { dev; owner; phase; assignments } ->
      Format.fprintf fmt "%s: %s-action of %s (%d assignment%s)" dev
        (phase_label phase) owner assignments
        (if assignments = 1 then "" else "s")
  | Serialized { dev; owner; order } ->
      Format.fprintf fmt "%s: serialized write of %s: %s" dev owner
        (String.concat " -> " order)
  | Poll { label; iters; ok } ->
      Format.fprintf fmt "poll %s: %d iteration%s, %s" label iters
        (if iters = 1 then "" else "s")
        (if ok then "satisfied" else "timed out")
  | Retry { label; attempt; reason } ->
      Format.fprintf fmt "retry %s: attempt %d failed (%s)" label attempt reason
  | Fault_injected { plan; addr; width; detail } ->
      Format.fprintf fmt "fault %s: %d-bit access [%#x]: %s" plan width addr
        detail

let pp_event fmt e = Format.fprintf fmt "#%d %a" e.seq pp_kind e.kind

let pp fmt t =
  Ring.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) t.ring

let summary t =
  Printf.sprintf "%d events (%d retained, %d evicted)" (recorded t) (length t)
    (dropped t)
