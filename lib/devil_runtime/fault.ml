exception Bus_fault = Bus.Bus_fault

type op = Read | Write

type kind =
  | Stuck_bits of { and_mask : int; or_mask : int }
  | Flip_bits of { mask : int; probability : float }
  | Drop_write of { probability : float }
  | Duplicate_write of { probability : float }
  | Transient of { probability : float }

type plan = {
  label : string;
  first : int;
  last : int;
  ops : op list;
  kind : kind;
  budget : int option;
}

let plan ?(ops = [ Read; Write ]) ?budget ~label ~first ~last kind =
  if last < first then invalid_arg "Fault.plan: empty address range";
  { label; first; last; ops; kind; budget }

type event = {
  seq : int;
  plan_label : string;
  op : op;
  addr : int;
  width : int;
  detail : string;
}

type pstate = { p : plan; mutable left : int option; mutable fired : int }

(* {1 Scheduled injections}

   The deterministic counterpart of a plan: instead of a probability
   draw, an injection names the exact covered operation — the [at]-th
   access (0-based) matching its direction and address window — that
   must fault. Probability fields inside [kind] are ignored; a
   scheduled decision always takes effect when its ordinal is
   reached. This is what the exploration engine enumerates. *)

type injection = {
  sx_label : string;
  sx_op : op;
  sx_at : int;
  sx_first : int;
  sx_last : int;
  sx_kind : kind;
}

type sstate = { sx : injection; mutable seen : int; mutable hit : bool }

type t = {
  underlying : Bus.t;
  plans : pstate list;
  sched : sstate list;
  rng0 : int;  (* initial PRNG state, so reset rewinds *)
  mutable rng : int;
  mutable seq : int;
  trace : event Trace.Ring.t;  (* bounded: oldest injections evicted *)
  sink : Trace.t option;  (* the unified observability stream *)
  metrics : Metrics.t option;
}

(* The 48-bit drand48 linear congruential generator: cheap, portable,
   and fully determined by the seed, which is all reproducibility
   needs. *)
let rand t =
  t.rng <- ((t.rng * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
  float_of_int (t.rng lsr 16) /. float_of_int (1 lsl 32)

let draw t probability = probability > 0.0 && rand t < probability

let armed ps ~op ~addr =
  (match ps.left with Some 0 -> false | Some _ | None -> true)
  && List.mem op ps.p.ops
  && addr >= ps.p.first
  && addr <= ps.p.last

let emit_fired t ~label ~op ~addr ~width ~detail =
  Trace.Ring.add t.trace
    { seq = t.seq; plan_label = label; op; addr; width; detail };
  (match t.sink with
  | Some tr ->
      Trace.emit tr (Trace.Fault_injected { plan = label; addr; width; detail })
  | None -> ());
  match t.metrics with
  | Some m ->
      Metrics.incr m "fault.injections";
      Metrics.incr m ("fault." ^ label ^ ".injections")
  | None -> ()

let fire t ps ~op ~addr ~width ~detail =
  (match ps.left with Some n -> ps.left <- Some (n - 1) | None -> ());
  ps.fired <- ps.fired + 1;
  emit_fired t ~label:ps.p.label ~op ~addr ~width ~detail

(* Transient plans are evaluated before the device is touched, so a
   raised fault leaves the device state exactly as the driver last saw
   it and a retry starts clean. *)
let check_transient t ~op ~addr ~width =
  List.iter
    (fun ps ->
      match ps.p.kind with
      | Transient { probability } when armed ps ~op ~addr ->
          if draw t probability then begin
            fire t ps ~op ~addr ~width ~detail:"transient bus fault";
            raise
              (Bus_fault
                 (Printf.sprintf "%s: transient fault on %s [%#x]"
                    ps.p.label
                    (match op with Read -> "read" | Write -> "write")
                    addr))
          end
      | _ -> ())
    t.plans

(* Value mutations shared by the read and write paths. *)
let mutate_value t ~op ~addr ~width v =
  List.fold_left
    (fun v ps ->
      if not (armed ps ~op ~addr) then v
      else
        match ps.p.kind with
        | Stuck_bits { and_mask; or_mask } ->
            let v' = v land and_mask lor or_mask in
            if v' <> v then begin
              fire t ps ~op ~addr ~width
                ~detail:(Printf.sprintf "stuck bits %#x -> %#x" v v');
              v'
            end
            else v
        | Flip_bits { mask; probability } ->
            if mask <> 0 && draw t probability then begin
              let v' = v lxor mask in
              fire t ps ~op ~addr ~width
                ~detail:(Printf.sprintf "flipped %#x: %#x -> %#x" mask v v');
              v'
            end
            else v
        | Drop_write _ | Duplicate_write _ | Transient _ -> v)
    v t.plans

let dropped t ~addr ~width =
  List.exists
    (fun ps ->
      match ps.p.kind with
      | Drop_write { probability } when armed ps ~op:Write ~addr ->
          if draw t probability then begin
            fire t ps ~op:Write ~addr ~width ~detail:"write dropped";
            true
          end
          else false
      | _ -> false)
    t.plans

let duplicated t ~addr ~width =
  List.exists
    (fun ps ->
      match ps.p.kind with
      | Duplicate_write { probability } when armed ps ~op:Write ~addr ->
          if draw t probability then begin
            fire t ps ~op:Write ~addr ~width ~detail:"write duplicated";
            true
          end
          else false
      | _ -> false)
    t.plans

(* Advance every scheduled injection's covered-operation counter by
   [count] accesses of this direction and address, and return the
   activations — the decisions whose ordinal lands inside this burst,
   paired with the element index they apply to. *)
let sched_step t ~op ~addr ~count =
  List.filter_map
    (fun ss ->
      let sx = ss.sx in
      if sx.sx_op = op && addr >= sx.sx_first && addr <= sx.sx_last then begin
        let base = ss.seen in
        ss.seen <- base + count;
        if sx.sx_at >= base && sx.sx_at < base + count then
          Some (sx.sx_at - base, ss)
        else None
      end
      else None)
    t.sched

let sched_fire t ss ~op ~addr ~width ~detail =
  ss.hit <- true;
  emit_fired t ~label:ss.sx.sx_label ~op ~addr ~width ~detail

(* Scheduled transients keep the seeded semantics: the whole access —
   a block transfer included — aborts before the device is touched,
   so a retry starts from clean device state. *)
let sched_transients t acts ~op ~addr ~width =
  List.iter
    (fun (_, ss) ->
      match ss.sx.sx_kind with
      | Transient _ ->
          sched_fire t ss ~op ~addr ~width ~detail:"transient bus fault";
          raise
            (Bus_fault
               (Printf.sprintf "%s: transient fault on %s [%#x]" ss.sx.sx_label
                  (match op with Read -> "read" | Write -> "write")
                  addr))
      | _ -> ())
    acts

(* Value mutation for the scheduled activations of element [i]. The
   decision is unconditional: a stuck/flip injection rewrites the
   value even when the rewrite happens to be a no-op, so the schedule
   feasibility accounting ([hit]) stays deterministic. *)
let sched_mutate t acts ~i ~op ~addr ~width v =
  List.fold_left
    (fun v (j, ss) ->
      if j <> i then v
      else
        match ss.sx.sx_kind with
        | Stuck_bits { and_mask; or_mask } ->
            let v' = v land and_mask lor or_mask in
            sched_fire t ss ~op ~addr ~width
              ~detail:(Printf.sprintf "stuck bits %#x -> %#x" v v');
            v'
        | Flip_bits { mask; _ } ->
            let v' = v lxor mask in
            sched_fire t ss ~op ~addr ~width
              ~detail:(Printf.sprintf "flipped %#x: %#x -> %#x" mask v v');
            v'
        | Drop_write _ | Duplicate_write _ | Transient _ -> v)
    v acts

let sched_dropped t acts ~i ~addr ~width =
  List.exists
    (fun (j, ss) ->
      j = i
      &&
      match ss.sx.sx_kind with
      | Drop_write _ ->
          sched_fire t ss ~op:Write ~addr ~width ~detail:"write dropped";
          true
      | _ -> false)
    acts

let sched_duplicated t acts ~i ~addr ~width =
  List.exists
    (fun (j, ss) ->
      j = i
      &&
      match ss.sx.sx_kind with
      | Duplicate_write _ ->
          sched_fire t ss ~op:Write ~addr ~width ~detail:"write duplicated";
          true
      | _ -> false)
    acts

let read t ~width ~addr =
  t.seq <- t.seq + 1;
  check_transient t ~op:Read ~addr ~width;
  let acts = sched_step t ~op:Read ~addr ~count:1 in
  sched_transients t acts ~op:Read ~addr ~width;
  let v = t.underlying.Bus.read ~width ~addr in
  let v = mutate_value t ~op:Read ~addr ~width v in
  sched_mutate t acts ~i:0 ~op:Read ~addr ~width v

let write t ~width ~addr ~value =
  t.seq <- t.seq + 1;
  check_transient t ~op:Write ~addr ~width;
  let acts = sched_step t ~op:Write ~addr ~count:1 in
  sched_transients t acts ~op:Write ~addr ~width;
  if not (dropped t ~addr ~width || sched_dropped t acts ~i:0 ~addr ~width)
  then begin
    let value = mutate_value t ~op:Write ~addr ~width value in
    let value = sched_mutate t acts ~i:0 ~op:Write ~addr ~width value in
    t.underlying.Bus.write ~width ~addr ~value;
    if duplicated t ~addr ~width || sched_duplicated t acts ~i:0 ~addr ~width
    then t.underlying.Bus.write ~width ~addr ~value
  end

(* Block transfers: one transient decision for the whole burst (the
   fault aborts the transfer before it starts), value faults per
   element (each element is its own electrical event). Scheduled
   ordinals count elements, so an injection can target the k-th word
   of a burst precisely. *)
let read_block t ~width ~addr ~into =
  t.seq <- t.seq + Array.length into;
  check_transient t ~op:Read ~addr ~width;
  let acts = sched_step t ~op:Read ~addr ~count:(Array.length into) in
  sched_transients t acts ~op:Read ~addr ~width;
  t.underlying.Bus.read_block ~width ~addr ~into;
  Array.iteri
    (fun i v ->
      let v = mutate_value t ~op:Read ~addr ~width v in
      into.(i) <- sched_mutate t acts ~i ~op:Read ~addr ~width v)
    into

let write_block t ~width ~addr ~from =
  t.seq <- t.seq + Array.length from;
  check_transient t ~op:Write ~addr ~width;
  let acts = sched_step t ~op:Write ~addr ~count:(Array.length from) in
  sched_transients t acts ~op:Write ~addr ~width;
  let out = ref [] in
  Array.iteri
    (fun i v ->
      if not (dropped t ~addr ~width || sched_dropped t acts ~i ~addr ~width)
      then begin
        let v = mutate_value t ~op:Write ~addr ~width v in
        let v = sched_mutate t acts ~i ~op:Write ~addr ~width v in
        out := v :: !out;
        if duplicated t ~addr ~width || sched_duplicated t acts ~i ~addr ~width
        then out := v :: !out
      end)
    from;
  let adjusted = Array.of_list (List.rev !out) in
  if Array.length adjusted > 0 || Array.length from = 0 then
    t.underlying.Bus.write_block ~width ~addr ~from:adjusted

let wrap ?(seed = 0) ?(trace_capacity = Trace.default_capacity) ?sink ?metrics
    ~plans underlying =
  (* Mix the seed so that seeds 0 and 1 do not share a prefix. *)
  let rng0 = (((seed + 1) * 0x5DEECE66D) + 3037000493) land 0xFFFF_FFFF_FFFF in
  {
    underlying;
    plans =
      List.map (fun p -> { p; left = p.budget; fired = 0 }) plans;
    sched = [];
    rng0;
    rng = rng0;
    seq = 0;
    trace = Trace.Ring.create ~capacity:trace_capacity;
    sink;
    metrics;
  }

let injection ?label ~op ~at ~first ~last kind =
  if last < first then invalid_arg "Fault.injection: empty address range";
  if at < 0 then invalid_arg "Fault.injection: negative ordinal";
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "sched:%s%#x@%d"
          (match op with Read -> "r" | Write -> "w")
          first at
  in
  { sx_label = label; sx_op = op; sx_at = at; sx_first = first; sx_last = last;
    sx_kind = kind }

let scheduled ?(trace_capacity = Trace.default_capacity) ?sink ?metrics
    ~injections underlying =
  {
    underlying;
    plans = [];
    sched = List.map (fun sx -> { sx; seen = 0; hit = false }) injections;
    rng0 = 0;
    rng = 0;
    seq = 0;
    trace = Trace.Ring.create ~capacity:trace_capacity;
    sink;
    metrics;
  }

let bus t =
  {
    Bus.read = (fun ~width ~addr -> read t ~width ~addr);
    write = (fun ~width ~addr ~value -> write t ~width ~addr ~value);
    read_block = (fun ~width ~addr ~into -> read_block t ~width ~addr ~into);
    write_block = (fun ~width ~addr ~from -> write_block t ~width ~addr ~from);
  }

let operations t = t.seq

let injection_count t =
  List.fold_left (fun n ps -> n + ps.fired) 0 t.plans
  + List.fold_left (fun n ss -> n + if ss.hit then 1 else 0) 0 t.sched

let injections_for t label =
  List.fold_left
    (fun n ps -> if ps.p.label = label then n + ps.fired else n)
    0 t.plans
  + List.fold_left
      (fun n ss -> if ss.sx.sx_label = label && ss.hit then n + 1 else n)
      0 t.sched

let scheduled_hits t =
  List.fold_left (fun n ss -> n + if ss.hit then 1 else 0) 0 t.sched

let scheduled_misses t =
  List.filter_map (fun ss -> if ss.hit then None else Some ss.sx) t.sched

let seen_for t label =
  List.fold_left
    (fun n ss -> if ss.sx.sx_label = label then max n ss.seen else n)
    0 t.sched

let events t = Trace.Ring.to_list t.trace
let dropped_events t = Trace.Ring.dropped t.trace

let reset t =
  Trace.Ring.clear t.trace;
  t.seq <- 0;
  t.rng <- t.rng0;
  List.iter
    (fun ps ->
      ps.fired <- 0;
      ps.left <- ps.p.budget)
    t.plans;
  List.iter
    (fun ss ->
      ss.seen <- 0;
      ss.hit <- false)
    t.sched

type snapshot = {
  sn_rng : int;
  sn_seq : int;
  sn_plans : (int option * int) list;  (* left, fired — in plan order *)
  sn_sched : (int * bool) list;  (* seen, hit — in injection order *)
}

let snapshot t =
  {
    sn_rng = t.rng;
    sn_seq = t.seq;
    sn_plans = List.map (fun ps -> (ps.left, ps.fired)) t.plans;
    sn_sched = List.map (fun ss -> (ss.seen, ss.hit)) t.sched;
  }

let restore t sn =
  if
    List.length sn.sn_plans <> List.length t.plans
    || List.length sn.sn_sched <> List.length t.sched
  then invalid_arg "Fault.restore: snapshot from a different injector shape";
  Trace.Ring.clear t.trace;
  t.rng <- sn.sn_rng;
  t.seq <- sn.sn_seq;
  List.iter2
    (fun ps (left, fired) ->
      ps.left <- left;
      ps.fired <- fired)
    t.plans sn.sn_plans;
  List.iter2
    (fun ss (seen, hit) ->
      ss.seen <- seen;
      ss.hit <- hit)
    t.sched sn.sn_sched

let pp_event fmt (e : event) =
  Format.fprintf fmt "#%d %s: %s%d [%#x] %s" e.seq e.plan_label
    (match e.op with Read -> "R" | Write -> "W")
    e.width e.addr e.detail
