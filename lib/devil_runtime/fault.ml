exception Bus_fault = Bus.Bus_fault

type op = Read | Write

type kind =
  | Stuck_bits of { and_mask : int; or_mask : int }
  | Flip_bits of { mask : int; probability : float }
  | Drop_write of { probability : float }
  | Duplicate_write of { probability : float }
  | Transient of { probability : float }

type plan = {
  label : string;
  first : int;
  last : int;
  ops : op list;
  kind : kind;
  budget : int option;
}

let plan ?(ops = [ Read; Write ]) ?budget ~label ~first ~last kind =
  if last < first then invalid_arg "Fault.plan: empty address range";
  { label; first; last; ops; kind; budget }

type event = {
  seq : int;
  plan_label : string;
  op : op;
  addr : int;
  width : int;
  detail : string;
}

type pstate = { p : plan; mutable left : int option; mutable fired : int }

type t = {
  underlying : Bus.t;
  plans : pstate list;
  mutable rng : int;
  mutable seq : int;
  trace : event Trace.Ring.t;  (* bounded: oldest injections evicted *)
  sink : Trace.t option;  (* the unified observability stream *)
  metrics : Metrics.t option;
}

(* The 48-bit drand48 linear congruential generator: cheap, portable,
   and fully determined by the seed, which is all reproducibility
   needs. *)
let rand t =
  t.rng <- ((t.rng * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
  float_of_int (t.rng lsr 16) /. float_of_int (1 lsl 32)

let draw t probability = probability > 0.0 && rand t < probability

let armed ps ~op ~addr =
  (match ps.left with Some 0 -> false | Some _ | None -> true)
  && List.mem op ps.p.ops
  && addr >= ps.p.first
  && addr <= ps.p.last

let fire t ps ~op ~addr ~width ~detail =
  (match ps.left with Some n -> ps.left <- Some (n - 1) | None -> ());
  ps.fired <- ps.fired + 1;
  Trace.Ring.add t.trace
    { seq = t.seq; plan_label = ps.p.label; op; addr; width; detail };
  (match t.sink with
  | Some tr ->
      Trace.emit tr
        (Trace.Fault_injected { plan = ps.p.label; addr; width; detail })
  | None -> ());
  match t.metrics with
  | Some m ->
      Metrics.incr m "fault.injections";
      Metrics.incr m ("fault." ^ ps.p.label ^ ".injections")
  | None -> ()

(* Transient plans are evaluated before the device is touched, so a
   raised fault leaves the device state exactly as the driver last saw
   it and a retry starts clean. *)
let check_transient t ~op ~addr ~width =
  List.iter
    (fun ps ->
      match ps.p.kind with
      | Transient { probability } when armed ps ~op ~addr ->
          if draw t probability then begin
            fire t ps ~op ~addr ~width ~detail:"transient bus fault";
            raise
              (Bus_fault
                 (Printf.sprintf "%s: transient fault on %s [%#x]"
                    ps.p.label
                    (match op with Read -> "read" | Write -> "write")
                    addr))
          end
      | _ -> ())
    t.plans

(* Value mutations shared by the read and write paths. *)
let mutate_value t ~op ~addr ~width v =
  List.fold_left
    (fun v ps ->
      if not (armed ps ~op ~addr) then v
      else
        match ps.p.kind with
        | Stuck_bits { and_mask; or_mask } ->
            let v' = v land and_mask lor or_mask in
            if v' <> v then begin
              fire t ps ~op ~addr ~width
                ~detail:(Printf.sprintf "stuck bits %#x -> %#x" v v');
              v'
            end
            else v
        | Flip_bits { mask; probability } ->
            if mask <> 0 && draw t probability then begin
              let v' = v lxor mask in
              fire t ps ~op ~addr ~width
                ~detail:(Printf.sprintf "flipped %#x: %#x -> %#x" mask v v');
              v'
            end
            else v
        | Drop_write _ | Duplicate_write _ | Transient _ -> v)
    v t.plans

let dropped t ~addr ~width =
  List.exists
    (fun ps ->
      match ps.p.kind with
      | Drop_write { probability } when armed ps ~op:Write ~addr ->
          if draw t probability then begin
            fire t ps ~op:Write ~addr ~width ~detail:"write dropped";
            true
          end
          else false
      | _ -> false)
    t.plans

let duplicated t ~addr ~width =
  List.exists
    (fun ps ->
      match ps.p.kind with
      | Duplicate_write { probability } when armed ps ~op:Write ~addr ->
          if draw t probability then begin
            fire t ps ~op:Write ~addr ~width ~detail:"write duplicated";
            true
          end
          else false
      | _ -> false)
    t.plans

let read t ~width ~addr =
  t.seq <- t.seq + 1;
  check_transient t ~op:Read ~addr ~width;
  let v = t.underlying.Bus.read ~width ~addr in
  mutate_value t ~op:Read ~addr ~width v

let write t ~width ~addr ~value =
  t.seq <- t.seq + 1;
  check_transient t ~op:Write ~addr ~width;
  if not (dropped t ~addr ~width) then begin
    let value = mutate_value t ~op:Write ~addr ~width value in
    t.underlying.Bus.write ~width ~addr ~value;
    if duplicated t ~addr ~width then
      t.underlying.Bus.write ~width ~addr ~value
  end

(* Block transfers: one transient decision for the whole burst (the
   fault aborts the transfer before it starts), value faults per
   element (each element is its own electrical event). *)
let read_block t ~width ~addr ~into =
  t.seq <- t.seq + Array.length into;
  check_transient t ~op:Read ~addr ~width;
  t.underlying.Bus.read_block ~width ~addr ~into;
  Array.iteri
    (fun i v -> into.(i) <- mutate_value t ~op:Read ~addr ~width v)
    into

let write_block t ~width ~addr ~from =
  t.seq <- t.seq + Array.length from;
  check_transient t ~op:Write ~addr ~width;
  let out = ref [] in
  Array.iter
    (fun v ->
      if not (dropped t ~addr ~width) then begin
        let v = mutate_value t ~op:Write ~addr ~width v in
        out := v :: !out;
        if duplicated t ~addr ~width then out := v :: !out
      end)
    from;
  let adjusted = Array.of_list (List.rev !out) in
  if Array.length adjusted > 0 || Array.length from = 0 then
    t.underlying.Bus.write_block ~width ~addr ~from:adjusted

let wrap ?(seed = 0) ?(trace_capacity = Trace.default_capacity) ?sink ?metrics
    ~plans underlying =
  {
    underlying;
    plans =
      List.map (fun p -> { p; left = p.budget; fired = 0 }) plans;
    (* Mix the seed so that seeds 0 and 1 do not share a prefix. *)
    rng = (((seed + 1) * 0x5DEECE66D) + 3037000493) land 0xFFFF_FFFF_FFFF;
    seq = 0;
    trace = Trace.Ring.create ~capacity:trace_capacity;
    sink;
    metrics;
  }

let bus t =
  {
    Bus.read = (fun ~width ~addr -> read t ~width ~addr);
    write = (fun ~width ~addr ~value -> write t ~width ~addr ~value);
    read_block = (fun ~width ~addr ~into -> read_block t ~width ~addr ~into);
    write_block = (fun ~width ~addr ~from -> write_block t ~width ~addr ~from);
  }

let operations t = t.seq
let injection_count t = List.fold_left (fun n ps -> n + ps.fired) 0 t.plans

let injections_for t label =
  List.fold_left
    (fun n ps -> if ps.p.label = label then n + ps.fired else n)
    0 t.plans

let events t = Trace.Ring.to_list t.trace
let dropped_events t = Trace.Ring.dropped t.trace

let reset t =
  Trace.Ring.clear t.trace;
  t.seq <- 0;
  List.iter
    (fun ps ->
      ps.fired <- 0;
      ps.left <- ps.p.budget)
    t.plans

let pp_event fmt (e : event) =
  Format.fprintf fmt "#%d %s: %s%d [%#x] %s" e.seq e.plan_label
    (match e.op with Read -> "R" | Write -> "W")
    e.width e.addr e.detail
