(* The online protocol monitor: a trace-stream checker that asserts,
   as events arrive, the interface disciplines the compiler is supposed
   to uphold — serialization orderings, trigger-neutral rewrites of
   shared registers, and volatile-cache refreshes. It re-derives each
   rule from the IR independently of both engines, so it serves as a
   third oracle in the differential tests. *)

module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Bitops = Devil_bits.Bitops

type violation = {
  vl_seq : int;
  vl_dev : string;
  vl_rule : string;  (* "serialization" | "trigger-neutral" | "volatile-refresh" *)
  vl_detail : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "#%d %s: %s violation: %s" v.vl_seq v.vl_dev v.vl_rule
    v.vl_detail

(* The bits variable [v] occupies in register [reg] when carrying the
   var-wide raw value [raw], plus the mask of those positions — the
   scatter of Instance restricted to one register. *)
let bits_in_reg (v : Ir.var) ~reg ~raw =
  let total = Ir.var_width v in
  let consumed = ref 0 in
  let img = ref 0 and mask = ref 0 in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          let field =
            Bitops.extract ~hi:(total - !consumed - 1)
              ~lo:(total - !consumed - w) raw
          in
          if String.equal c.c_reg reg then begin
            img := Bitops.insert ~hi ~lo ~field !img;
            mask := Bitops.insert ~hi ~lo ~field:(Bitops.width_mask w) !mask
          end;
          consumed := !consumed + w)
        c.c_ranges)
    v.v_chunks;
  (!img, !mask)

(* What a write-trigger sibling demands of a register rewrite. *)
type trig = {
  tg_var : string;
  tg_mask : int;  (* the sibling's bit positions in this register *)
  tg_check : [ `Neutral of int | `Only of int ];
      (* [`Neutral bits]: the written image must carry exactly [bits]
         at [tg_mask]. [`Only bits]: it must NOT carry [bits] (the
         firing pattern) at [tg_mask]. *)
}

type dev_state = {
  ds_dev : string;
  (* reg name -> write-trigger demands on that register *)
  ds_triggers : (string, trig list) Hashtbl.t;
  (* reg name -> volatile siblings forcing a refresh before rewrite *)
  ds_refresh : (string, string list) Hashtbl.t;
  (* reg name -> writers announced by the innermost Var/Struct_write *)
  ds_pending : (string, string list) Hashtbl.t;
  (* regs read since their last write *)
  ds_fresh : (string, unit) Hashtbl.t;
  (* remaining queues of active serialization expectations *)
  mutable ds_serials : (string * string list) list;  (* owner, remaining *)
}

type t = {
  devs : (string, dev_state) Hashtbl.t;
  mutable violations_rev : violation list;
  mutable count : int;
  (* custom per-event invariants, run after the built-in rules *)
  mutable customs : (string * (seq:int -> Trace.kind -> string option)) list;
  (* end-of-run invariants, run by [finalize] *)
  mutable finals : (string * (unit -> string option)) list;
}

let encode_bits (v : Ir.var) value ~reg =
  match Dtype.encode v.v_type value with
  | Ok raw -> Some (bits_in_reg v ~reg ~raw)
  | Error _ -> None

let compile_device dev (d : Ir.device) =
  let triggers = Hashtbl.create 8 in
  let refresh = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.reg) ->
      let siblings = Ir.vars_of_reg d r.r_name in
      (* Trigger-neutral demands: a write-trigger sibling with a
         declared exempt value constrains every rewrite of the
         register that is not on the sibling's own behalf. *)
      let trigs =
        List.filter_map
          (fun (v : Ir.var) ->
            match v.v_behaviour.b_trigger with
            | Some { tr_write = true; tr_exempt = Some exempt; _ } -> (
                match exempt with
                | Ir.Neutral value -> (
                    match encode_bits v value ~reg:r.r_name with
                    | Some (bits, mask) when mask <> 0 ->
                        Some
                          { tg_var = v.v_name; tg_mask = mask;
                            tg_check = `Neutral bits }
                    | _ -> None)
                | Ir.Only value -> (
                    match encode_bits v value ~reg:r.r_name with
                    | Some (bits, mask) when mask <> 0 ->
                        Some
                          { tg_var = v.v_name; tg_mask = mask;
                            tg_check = `Only bits }
                    | _ -> None))
            | _ -> None)
          siblings
      in
      if trigs <> [] then Hashtbl.replace triggers r.r_name trigs;
      (* Volatile-refresh demand: mirrors Instance.compose_base — a
         rewrite must re-read first when the register is readable, a
         sibling is volatile (and not itself being rewritten), and no
         sibling has a read trigger making the re-read unsafe. *)
      let read_trigger =
        List.exists
          (fun (v : Ir.var) ->
            match v.v_behaviour.b_trigger with
            | Some { tr_read = true; _ } -> true
            | _ -> false)
          siblings
      in
      if Ir.reg_readable r && not read_trigger then begin
        let vols =
          List.filter_map
            (fun (v : Ir.var) ->
              if v.v_behaviour.b_volatile then Some v.v_name else None)
            siblings
        in
        if vols <> [] then Hashtbl.replace refresh r.r_name vols
      end)
    d.d_regs;
  {
    ds_dev = dev;
    ds_triggers = triggers;
    ds_refresh = refresh;
    ds_pending = Hashtbl.create 16;
    ds_fresh = Hashtbl.create 16;
    ds_serials = [];
  }

let create ~devices =
  let devs = Hashtbl.create 8 in
  List.iter
    (fun (dev, device) -> Hashtbl.replace devs dev (compile_device dev device))
    devices;
  { devs; violations_rev = []; count = 0; customs = []; finals = [] }

let violations t = List.rev t.violations_rev
let violation_count t = t.count

(* Registrations survive [clear]: an explorer registers its recovery
   invariants once and clears the monitor between schedules. *)
let clear t =
  t.violations_rev <- [];
  t.count <- 0;
  Hashtbl.iter
    (fun _ ds ->
      Hashtbl.reset ds.ds_pending;
      Hashtbl.reset ds.ds_fresh;
      ds.ds_serials <- [])
    t.devs

let report t ~seq ~dev ~rule fmt =
  Format.kasprintf
    (fun detail ->
      t.violations_rev <-
        { vl_seq = seq; vl_dev = dev; vl_rule = rule; vl_detail = detail }
        :: t.violations_rev;
      t.count <- t.count + 1)
    fmt

let writers_of ds reg =
  Option.value (Hashtbl.find_opt ds.ds_pending reg) ~default:[]

let on_reg_write t ds ~seq ~reg ~raw =
  let writers = writers_of ds reg in
  (* Rule: serialization order. A write to a register still owed by an
     active serialization expectation must be the next one owed. *)
  ds.ds_serials <-
    List.filter_map
      (fun (owner, remaining) ->
        match remaining with
        | [] -> None
        | next :: rest when String.equal next reg ->
            if rest = [] then None else Some (owner, rest)
        | _ ->
            if List.mem reg remaining then begin
              report t ~seq ~dev:ds.ds_dev ~rule:"serialization"
                "write of %s arrived before %s in the serialized order of %s"
                reg
                (String.concat " -> " remaining)
                owner;
              None (* retire the broken expectation; no cascades *)
            end
            else Some (owner, remaining))
      ds.ds_serials;
  (* Rule: trigger-neutral writes. Rewriting a register that carries a
     write-trigger sibling must place the sibling's neutral bits unless
     the write is on the sibling's own behalf. *)
  (match Hashtbl.find_opt ds.ds_triggers reg with
  | None -> ()
  | Some trigs ->
      List.iter
        (fun tg ->
          if not (List.mem tg.tg_var writers) then
            match tg.tg_check with
            | `Neutral bits ->
                if raw land tg.tg_mask <> bits then
                  report t ~seq ~dev:ds.ds_dev ~rule:"trigger-neutral"
                    "write of %s carries %#x at the bits of trigger \
                     variable %s (mask %#x); its neutral value is %#x"
                    reg (raw land tg.tg_mask) tg.tg_var tg.tg_mask bits
            | `Only bits ->
                if raw land tg.tg_mask = bits then
                  report t ~seq ~dev:ds.ds_dev ~rule:"trigger-neutral"
                    "write of %s carries the firing value %#x of trigger \
                     variable %s (mask %#x)"
                    reg bits tg.tg_var tg.tg_mask)
        trigs);
  (* Rule: volatile refresh. Rewriting a register with a (not itself
     rewritten) volatile sibling must be preceded by a re-read, or the
     stale cached bits of the sibling get written back. *)
  (match Hashtbl.find_opt ds.ds_refresh reg with
  | None -> ()
  | Some vols ->
      let needs = List.exists (fun v -> not (List.mem v writers)) vols in
      if needs && not (Hashtbl.mem ds.ds_fresh reg) then
        report t ~seq ~dev:ds.ds_dev ~rule:"volatile-refresh"
          "write of %s without a fresh read: volatile sibling%s %s may \
           have changed behind the cache"
          reg
          (if List.length vols = 1 then "" else "s")
          (String.concat ", " vols));
  Hashtbl.remove ds.ds_fresh reg

let register t ~name rule = t.customs <- t.customs @ [ (name, rule) ]
let register_final t ~name rule = t.finals <- t.finals @ [ (name, rule) ]

let run_customs t (e : Trace.event) =
  List.iter
    (fun (name, rule) ->
      match rule ~seq:e.seq e.kind with
      | Some detail -> report t ~seq:e.seq ~dev:"-" ~rule:name "%s" detail
      | None -> ())
    t.customs

let finalize t =
  List.iter
    (fun (name, rule) ->
      match rule () with
      | Some detail -> report t ~seq:(-1) ~dev:"-" ~rule:name "%s" detail
      | None -> ())
    t.finals

let feed t (e : Trace.event) =
  run_customs t e;
  let state dev = Hashtbl.find_opt t.devs dev in
  match e.kind with
  | Reg_read { dev; reg; _ } -> (
      match state dev with
      | Some ds -> Hashtbl.replace ds.ds_fresh reg ()
      | None -> ())
  | Reg_write { dev; reg; raw } -> (
      match state dev with
      | Some ds -> on_reg_write t ds ~seq:e.seq ~reg ~raw
      | None -> ())
  | Var_write { dev; regs; var } -> (
      match state dev with
      | Some ds ->
          List.iter (fun reg -> Hashtbl.replace ds.ds_pending reg [ var ]) regs
      | None -> ())
  | Struct_write { dev; fields; regs; _ } -> (
      match state dev with
      | Some ds ->
          List.iter (fun reg -> Hashtbl.replace ds.ds_pending reg fields) regs
      | None -> ())
  | Serialized { dev; owner; order } -> (
      match state dev with
      | Some ds ->
          if order <> [] then ds.ds_serials <- ds.ds_serials @ [ (owner, order) ]
      | None -> ())
  | Cache_invalidated { dev } -> (
      match state dev with
      | Some ds ->
          Hashtbl.reset ds.ds_fresh;
          Hashtbl.reset ds.ds_pending
      | None -> ())
  | _ -> ()

let feed_all t events = List.iter (feed t) events
let attach t trace = Trace.subscribe trace (feed t)
