module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Bitops = Devil_bits.Bitops
module Mask = Devil_bits.Mask

exception Device_error = Plan.Device_error
(* One exception serves both engines, so existing handlers that match
   [Instance.Device_error] also catch errors raised by compiled plans. *)

let fail fmt = Format.kasprintf (fun s -> raise (Device_error s)) fmt

(* The interpreting engine: re-derives addresses, masks and bit
   patterns from the IR on every access. Slower than {!Plan}, but its
   simplicity makes it the differential oracle ([test/test_plan_diff]):
   the compiled engine must be observationally identical to this
   module. *)
module Interp = struct
type t = {
  device : Ir.device;
  bus : Bus.t;
  bases : (string * int) list;
  debug : bool;
  label : string;  (* names the instance in traces and metrics *)
  trace : Trace.t option;
  metrics : Metrics.t option;
  profile : Profile.t option;
  reg_cache : (string, int) Hashtbl.t;
  struct_cache : (string, (string, int) Hashtbl.t) Hashtbl.t;
  mem : (string, Value.t) Hashtbl.t;  (* memory-cell variables *)
  mutable depth : int;  (* action recursion guard *)
}

let device t = t.device

let create ?(debug = false) ?label ?trace ?metrics ?profile device ~bus ~bases =
  List.iter
    (fun (p : Ir.port) ->
      if not (List.mem_assoc p.p_name bases) then
        fail "port %s has no base address" p.p_name)
    device.Ir.d_ports;
  {
    device;
    bus;
    bases;
    debug;
    label = (match label with Some l -> l | None -> device.Ir.d_name);
    trace;
    metrics;
    profile;
    reg_cache = Hashtbl.create 17;
    struct_cache = Hashtbl.create 7;
    mem = Hashtbl.create 7;
    depth = 0;
  }

(* {1 Observability hooks}

   Every hook matches on the option handles first, so with
   observability disabled the cost is the option match itself —
   nothing is allocated, no name is concatenated. *)

let note_reg_io t (r : Ir.reg) ~write raw =
  (match t.metrics with
  | Some m ->
      let dir = if write then "writes" else "reads" in
      Metrics.incr m ("io." ^ t.label ^ ".reg_" ^ dir);
      Metrics.incr m ("reg." ^ t.label ^ "." ^ r.Ir.r_name ^ "." ^ dir)
  | None -> ());
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (if write then Trace.Reg_write { dev = t.label; reg = r.Ir.r_name; raw }
         else Trace.Reg_read { dev = t.label; reg = r.Ir.r_name; raw })
  | None -> ()

let note_cache t reg_name ~hit =
  (match t.metrics with
  | Some m ->
      Metrics.incr m
        ("cache." ^ t.label ^ "." ^ if hit then "hits" else "misses")
  | None -> ());
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (if hit then Trace.Cache_hit { dev = t.label; reg = reg_name }
         else Trace.Cache_miss { dev = t.label; reg = reg_name })
  | None -> ()

let note_serialized t ~owner order =
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (Trace.Serialized
           {
             dev = t.label;
             owner;
             order = List.map (fun (r : Ir.reg) -> r.Ir.r_name) order;
           })
  | None -> ()

let note_var_read t name =
  match t.trace with
  | Some tr -> Trace.emit tr (Trace.Var_read { dev = t.label; var = name })
  | None -> ()

let note_var_write t name regs =
  match t.trace with
  | Some tr ->
      Trace.emit tr (Trace.Var_write { dev = t.label; var = name; regs })
  | None -> ()

let note_struct_write t name fields regs =
  match t.trace with
  | Some tr ->
      Trace.emit tr
        (Trace.Struct_write { dev = t.label; strct = name; fields; regs })
  | None -> ()

let invalidate_cache t =
  Hashtbl.reset t.reg_cache;
  Hashtbl.reset t.struct_cache;
  match t.trace with
  | Some tr -> Trace.emit tr (Trace.Cache_invalidated { dev = t.label })
  | None -> ()

let cached_raw t reg = Hashtbl.find_opt t.reg_cache reg

(* {1 Lookups} *)

let the_var t name =
  match Ir.find_var t.device name with
  | Some v -> v
  | None -> fail "unknown device variable %s" name

let the_reg t name =
  match Ir.find_reg t.device name with
  | Some r -> r
  | None -> fail "unknown register %s" name

let the_struct t name =
  match Ir.find_struct t.device name with
  | Some s -> s
  | None -> fail "unknown structure %s" name

let point_addr t (lp : Ir.located_port) =
  match List.assoc_opt lp.lp_port t.bases with
  | Some base -> base + lp.lp_offset
  | None -> fail "port %s has no base address" lp.lp_port

let point_width t (lp : Ir.located_port) =
  match Ir.find_port t.device lp.lp_port with
  | Some p -> p.p_width
  | None -> fail "unknown port %s" lp.lp_port

(* {1 Bit plumbing} *)

(* Extract a variable's raw value from per-register raw images,
   MSB-first across chunks and ranges. *)
let gather_bits (v : Ir.var) ~(image : string -> int) =
  List.fold_left
    (fun acc (c : Ir.chunk) ->
      let reg_raw = image c.c_reg in
      List.fold_left
        (fun acc (hi, lo) ->
          let w = hi - lo + 1 in
          (acc lsl w) lor Bitops.extract ~hi ~lo reg_raw)
        acc c.c_ranges)
    0 v.v_chunks

(* Distribute a variable's raw value into per-register images. *)
let scatter_bits (v : Ir.var) ~raw ~(update : string -> (int -> int) -> unit) =
  let total = Ir.var_width v in
  let consumed = ref 0 in
  List.iter
    (fun (c : Ir.chunk) ->
      List.iter
        (fun (hi, lo) ->
          let w = hi - lo + 1 in
          let field = Bitops.extract ~hi:(total - !consumed - 1)
              ~lo:(total - !consumed - w) raw
          in
          update c.c_reg (fun img -> Bitops.insert ~hi ~lo ~field img);
          consumed := !consumed + w)
        c.c_ranges)
    v.v_chunks

(* The raw bits a trigger variable's neutral value contributes when a
   sibling write must rebuild the register. *)
let neutral_raw t (v : Ir.var) =
  let encode value =
    match Dtype.encode v.v_type value with
    | Ok raw -> Some raw
    | Error _ -> None
  in
  match v.v_behaviour.b_trigger with
  | Some { tr_write = true; tr_exempt = Some (Ir.Neutral value); _ } ->
      encode value
  | Some { tr_write = true; tr_exempt = Some (Ir.Only value); _ } ->
      (* Any value other than the firing one is neutral. *)
      (match encode value with
      | Some raw -> Some (if raw = 0 then 1 land Bitops.width_mask (Ir.var_width v) else 0)
      | None -> Some 0)
  | Some _ | None ->
      ignore t;
      None

(* {1 Register I/O (with pre/post/set actions)} *)

let max_action_depth = 32

let rec with_depth t f =
  if t.depth > max_action_depth then
    fail "action recursion exceeds %d levels (cyclic pre-actions?)"
      max_action_depth
  else begin
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match f () with
    | result ->
        finally ();
        result
    | exception e ->
        finally ();
        raise e
  end

and read_reg_io t (r : Ir.reg) =
  match r.r_read with
  | None -> fail "register %s is not readable" r.r_name
  | Some lp ->
      run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
      let raw =
        t.bus.Bus.read ~width:(point_width t lp) ~addr:(point_addr t lp)
      in
      run_action ~what:(Trace.Post, r.r_name) t r.r_post;
      Hashtbl.replace t.reg_cache r.r_name raw;
      note_reg_io t r ~write:false raw;
      raw

and write_reg_io t (r : Ir.reg) raw =
  match r.r_write with
  | None -> fail "register %s is not writable" r.r_name
  | Some lp ->
      run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
      let frame = Mask.writable_frame r.r_mask ~value:raw in
      t.bus.Bus.write ~width:(point_width t lp) ~addr:(point_addr t lp)
        ~value:frame;
      run_action ~what:(Trace.Post, r.r_name) t r.r_post;
      run_action ~what:(Trace.Set, r.r_name) t r.r_set;
      Hashtbl.replace t.reg_cache r.r_name raw;
      note_reg_io t r ~write:true raw

(* Base image for rewriting a register: idempotent siblings keep their
   cached bits (zero if never written); a write-trigger sibling's side
   effect cannot be replayed, so its bits are always rebuilt from its
   neutral value (paper §2.1). A [volatile] sibling's cached bits may be
   stale — the device changes them behind the cache — so when the
   register can be re-read without side effects (readable, no read
   trigger on any sibling) it is refreshed first. [exclude] names the
   variables being rewritten, whose bits are about to be overwritten
   anyway and so never force the refresh. *)
and compose_base ?(exclude = []) t (r : Ir.reg) =
  let siblings = Ir.vars_of_reg t.device r.r_name in
  let refresh =
    Ir.reg_readable r
    && List.exists
         (fun (v : Ir.var) ->
           v.v_behaviour.b_volatile && not (List.mem v.v_name exclude))
         siblings
    && not
         (List.exists
            (fun (v : Ir.var) ->
              match v.v_behaviour.b_trigger with
              | Some { tr_read = true; _ } -> true
              | Some _ | None -> false)
            siblings)
  in
  if refresh then ignore (read_reg_io t r);
  let image =
    ref (Option.value (Hashtbl.find_opt t.reg_cache r.r_name) ~default:0)
  in
  List.iter
    (fun (v : Ir.var) ->
      match neutral_raw t v with
      | None -> ()
      | Some raw ->
          scatter_bits v ~raw ~update:(fun reg f ->
              if String.equal reg r.r_name then image := f !image))
    siblings;
  !image

(* {1 Actions} *)

and operand_value t ?self (o : Ir.operand) ~(target : Ir.var) : Value.t =
  match o with
  | Ir.O_int n -> Value.Int n
  | Ir.O_bool b -> Value.Bool b
  | Ir.O_enum name -> Value.Enum name
  | Ir.O_any -> (
      (* "Any value": materialize the cheapest member of the type. *)
      match target.v_type with
      | Dtype.Bool -> Value.Bool false
      | Dtype.Int _ -> Value.Int 0
      | Dtype.Int_set { values; _ } ->
          Value.Int (match values with v :: _ -> v | [] -> 0)
      | Dtype.Enum cases -> (
          match List.find_opt (fun c -> Dtype.writable_case c.Dtype.dir) cases with
          | Some c -> Value.Enum c.case_name
          | None -> fail "no writable case for wildcard value"))
  | Ir.O_var src -> (
      match self with
      | Some (name, value) when String.equal name src -> value
      | _ -> get_internal t src)
  | Ir.O_param p -> fail "unsubstituted register parameter %s" p

and run_action ?self ?what t (a : Ir.action) =
  match a with
  | [] -> ()
  | _ -> (
      (* Span keys mirror the compiled engine's; the interpreter builds
         them on the fly (it re-derives everything else per access
         too), but only after matching the handle, so the disabled path
         still allocates nothing. *)
      match (t.profile, what) with
      | Some p, Some (phase, owner) ->
          let s =
            Profile.enter p
              (t.label ^ "/action:" ^ owner ^ ":" ^ Trace.phase_label phase)
          in
          (match run_action_body ?self ?what t a with
          | () -> Profile.exit p s
          | exception e ->
              Profile.exit p s;
              raise e)
      | _ -> run_action_body ?self ?what t a)

and run_action_body ?self ?what t (a : Ir.action) =
  match a with
  | [] -> ()
  | _ ->
      (match (t.trace, what) with
      | Some tr, Some (phase, owner) ->
          Trace.emit tr
            (Trace.Action
               { dev = t.label; owner; phase; assignments = List.length a })
      | _ -> ());
      (* The depth guard lives here: actions are the only way accesses
         nest, and a self-referencing pre-action would otherwise loop. *)
      if t.depth > max_action_depth then
        fail "action recursion exceeds %d levels (cyclic pre-actions?)"
          max_action_depth;
      t.depth <- t.depth + 1;
      Fun.protect
        ~finally:(fun () -> t.depth <- t.depth - 1)
        (fun () ->
          List.iter
            (fun (assignment : Ir.assignment) ->
              match assignment with
              | Ir.Set_var { target; value } ->
                  let tv = the_var t target in
                  let v = operand_value t ?self value ~target:tv in
                  set_internal t target v
              | Ir.Set_struct { target; fields } ->
                  let values =
                    List.map
                      (fun (f, o) ->
                        let fv = the_var t f in
                        (f, operand_value t ?self o ~target:fv))
                      fields
                  in
                  set_struct_internal t target values)
            a)

(* {1 Variable reads} *)

and get_internal t name : Value.t =
  match t.profile with
  | None -> get_internal_body t name
  | Some p ->
      let s = Profile.enter p (t.label ^ "/var:" ^ name ^ ":read") in
      (match get_internal_body t name with
      | v ->
          Profile.exit p s;
          v
      | exception e ->
          Profile.exit p s;
          raise e)

and get_internal_body t name : Value.t =
  let v = the_var t name in
  note_var_read t name;
  if v.v_chunks = [] then
    (* Memory cell. *)
    match Hashtbl.find_opt t.mem name with
    | Some value -> value
    | None -> (
        match v.v_type with
        | Dtype.Bool -> Value.Bool false
        | Dtype.Int _ -> Value.Int 0
        | Dtype.Int_set { values; _ } ->
            Value.Int (match values with x :: _ -> x | [] -> 0)
        | Dtype.Enum _ -> fail "memory variable %s was never assigned" name)
  else
    match v.v_struct with
    | Some sname -> get_field t v sname
    | None -> get_standalone t v

and get_field t (v : Ir.var) sname =
  (* Field stubs consult the structure cache filled by [get_struct]
     (paper §2.1); fall back to the register cache for fields of
     write-through structures. *)
  let image reg =
    match Hashtbl.find_opt t.struct_cache sname with
    | Some images when Hashtbl.mem images reg -> Hashtbl.find images reg
    | _ -> (
        match Hashtbl.find_opt t.reg_cache reg with
        | Some raw -> raw
        | None ->
            fail
              "field %s of structure %s read before the structure (call \
               get_struct first)"
              v.v_name sname)
  in
  let raw = gather_bits v ~image in
  decode_checked t v raw

and get_standalone t (v : Ir.var) =
  run_action ~what:(Trace.Pre, v.v_name) t v.v_pre;
  let must_io =
    v.v_behaviour.b_volatile
    || (match v.v_behaviour.b_trigger with
       | Some { tr_read = true; _ } -> true
       | Some _ | None -> false)
  in
  let image reg_name =
    let r = the_reg t reg_name in
    if must_io then read_reg_io t r
    else
      match Hashtbl.find_opt t.reg_cache reg_name with
      | Some raw ->
          note_cache t reg_name ~hit:true;
          raw
      | None ->
          if Ir.reg_readable r then begin
            note_cache t reg_name ~hit:false;
            read_reg_io t r
          end
          else
            fail "variable %s is write-only and has no cached value" v.v_name
  in
  let raw = gather_bits v ~image in
  run_action ~what:(Trace.Post, v.v_name) t v.v_post;
  decode_checked t v raw

and decode_checked t (v : Ir.var) raw =
  if t.debug then begin
    match Dtype.validate_read_raw v.v_type raw with
    | Ok () -> ()
    | Error msg -> fail "variable %s: %s" v.v_name msg
  end;
  match Dtype.decode v.v_type raw with
  | Ok value -> value
  | Error msg -> fail "variable %s: %s" v.v_name msg

(* {1 Variable writes} *)

and encode_checked (v : Ir.var) value =
  match Dtype.encode v.v_type value with
  | Ok raw -> raw
  | Error msg -> fail "variable %s: %s" v.v_name msg

and regs_in_chunk_order t (v : Ir.var) =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (c : Ir.chunk) ->
      if Hashtbl.mem seen c.c_reg then None
      else begin
        Hashtbl.add seen c.c_reg ();
        Some (the_reg t c.c_reg)
      end)
    v.v_chunks

and eval_serial_cond t ?self (c : Ir.serial_cond) =
  let actual =
    match self with
    | Some values -> (
        match List.assoc_opt c.sc_var values with
        | Some v -> v
        | None -> get_internal t c.sc_var)
    | None -> get_internal t c.sc_var
  in
  let var = the_var t c.sc_var in
  let expected = operand_value t c.sc_value ~target:var in
  let eq = Value.equal actual expected in
  if c.sc_negated then not eq else eq

and ordered_regs t ?self ~(serial : Ir.serial_item list option) ~default () =
  match serial with
  | None -> default
  | Some items ->
      List.filter_map
        (fun (item : Ir.serial_item) ->
          let enabled =
            match item.si_cond with
            | None -> true
            | Some c -> eval_serial_cond t ?self c
          in
          if enabled then Some (the_reg t item.si_reg) else None)
        items

and set_internal t name value =
  match t.profile with
  | None -> set_internal_body t name value
  | Some p ->
      let s = Profile.enter p (t.label ^ "/var:" ^ name ^ ":write") in
      (match set_internal_body t name value with
      | () -> Profile.exit p s
      | exception e ->
          Profile.exit p s;
          raise e)

and set_internal_body t name value =
  let v = the_var t name in
  if v.v_chunks = [] then begin
    (* Memory cell: validate against the type, then store. *)
    (match Dtype.validate_write v.v_type value with
    | Ok () -> ()
    | Error msg -> fail "variable %s: %s" name msg);
    Hashtbl.replace t.mem name value;
    note_var_write t name []
  end
  else begin
    let raw = encode_checked v value in
    run_action ~what:(Trace.Pre, v.v_name) t v.v_pre;
    let images = Hashtbl.create 4 in
    let regs = regs_in_chunk_order t v in
    List.iter
      (fun (r : Ir.reg) ->
        Hashtbl.replace images r.Ir.r_name (compose_base ~exclude:[ name ] t r))
      regs;
    scatter_bits v ~raw ~update:(fun reg f ->
        match Hashtbl.find_opt images reg with
        | Some img -> Hashtbl.replace images reg (f img)
        | None -> ());
    let order =
      ordered_regs t ~self:[ (name, value) ] ~serial:v.v_serial ~default:regs
        ()
    in
    (match v.v_serial with
    | Some _ -> note_serialized t ~owner:name order
    | None -> ());
    (* Emitted after compose/scatter — refresh reads and nested
       pre-action writes have already happened — and right before the
       register writes it announces. *)
    note_var_write t name (List.map (fun (r : Ir.reg) -> r.Ir.r_name) order);
    List.iter
      (fun (r : Ir.reg) -> write_reg_io t r (Hashtbl.find images r.Ir.r_name))
      order;
    (* Keep the owning structure's cache coherent. *)
    (match v.v_struct with
    | Some sname -> (
        match Hashtbl.find_opt t.struct_cache sname with
        | Some simages ->
            Hashtbl.iter (fun reg img -> Hashtbl.replace simages reg img) images
        | None -> ())
    | None -> ());
    run_action ~self:(name, value) ~what:(Trace.Set, v.v_name) t v.v_set;
    run_action ~what:(Trace.Post, v.v_name) t v.v_post
  end

(* {1 Structures} *)

and struct_regs t (s : Ir.strct) =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun fname ->
      let v = the_var t fname in
      List.filter_map
        (fun (c : Ir.chunk) ->
          if Hashtbl.mem seen c.c_reg then None
          else begin
            Hashtbl.add seen c.c_reg ();
            Some (the_reg t c.c_reg)
          end)
        v.v_chunks)
    s.s_fields

and set_struct_internal t name fields =
  match t.profile with
  | None -> set_struct_internal_body t name fields
  | Some p ->
      let sp = Profile.enter p (t.label ^ "/struct:" ^ name ^ ":write") in
      (match set_struct_internal_body t name fields with
      | () -> Profile.exit p sp
      | exception e ->
          Profile.exit p sp;
          raise e)

and set_struct_internal_body t name fields =
  let s = the_struct t name in
  List.iter
    (fun (f, _) ->
      if not (List.mem f s.s_fields) then
        fail "%s is not a field of structure %s" f name)
    fields;
  let regs = struct_regs t s in
  let images = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.reg) ->
      Hashtbl.replace images r.Ir.r_name (compose_base ~exclude:s.s_fields t r))
    regs;
  (* Encode every field: supplied values first, cached values for the
     rest (a field never written and not supplied is an error). *)
  let field_values =
    List.map
      (fun fname ->
        let v = the_var t fname in
        match List.assoc_opt fname fields with
        | Some value ->
            ignore (encode_checked v value);
            (fname, value)
        | None -> (
            match get_cached_field t v with
            | Some value -> (fname, value)
            | None ->
                fail
                  "structure %s: field %s has no supplied or cached value"
                  name fname))
      s.s_fields
  in
  List.iter
    (fun (fname, value) ->
      let v = the_var t fname in
      let raw = encode_checked v value in
      scatter_bits v ~raw ~update:(fun reg f ->
          match Hashtbl.find_opt images reg with
          | Some img -> Hashtbl.replace images reg (f img)
          | None -> ()))
    field_values;
  let order =
    ordered_regs t ~self:field_values ~serial:s.s_serial ~default:regs ()
  in
  (match s.s_serial with
  | Some _ -> note_serialized t ~owner:name order
  | None -> ());
  note_struct_write t name s.s_fields
    (List.map (fun (r : Ir.reg) -> r.Ir.r_name) order);
  List.iter
    (fun (r : Ir.reg) ->
      let image =
        match Hashtbl.find_opt images r.Ir.r_name with
        | Some img -> img
        | None ->
            (* A serialized register carrying no field of this
               structure: rebuild it from cache and neutrals. *)
            compose_base t r
      in
      write_reg_io t r image)
    order;
  (* Run per-field set actions with the new values in scope. *)
  List.iter
    (fun (fname, value) ->
      let v = the_var t fname in
      if List.exists (fun (f, _) -> String.equal f fname) fields then
        run_action ~self:(fname, value) ~what:(Trace.Set, fname) t v.v_set)
    field_values;
  let simages =
    match Hashtbl.find_opt t.struct_cache name with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 8 in
        Hashtbl.replace t.struct_cache name m;
        m
  in
  Hashtbl.iter (fun reg img -> Hashtbl.replace simages reg img) images

and get_cached_field t (v : Ir.var) : Value.t option =
  let image reg =
    match v.v_struct with
    | Some sname -> (
        match Hashtbl.find_opt t.struct_cache sname with
        | Some images when Hashtbl.mem images reg -> Some (Hashtbl.find images reg)
        | _ -> Hashtbl.find_opt t.reg_cache reg)
    | None -> Hashtbl.find_opt t.reg_cache reg
  in
  let complete =
    List.for_all
      (fun (c : Ir.chunk) -> Option.is_some (image c.c_reg))
      v.v_chunks
  in
  if not complete then None
  else
    let raw =
      gather_bits v ~image:(fun reg ->
          match image reg with Some x -> x | None -> 0)
    in
    match Dtype.decode v.v_type raw with Ok v -> Some v | Error _ -> None

let get_struct_body t name (s : Ir.strct) =
  let images = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.reg) ->
      Hashtbl.replace images r.Ir.r_name (read_reg_io t r))
    (struct_regs t s);
  Hashtbl.replace t.struct_cache name images

let get_struct t name =
  let s = the_struct t name in
  if s.s_private then fail "structure %s is private" name;
  match t.profile with
  | None -> get_struct_body t name s
  | Some p ->
      Profile.span p
        (t.label ^ "/struct:" ^ name ^ ":read")
        (fun () -> get_struct_body t name s)

(* {1 Public entry points} *)

let check_public t name =
  let v = the_var t name in
  if v.v_private then
    fail "variable %s is private and not part of the device interface" name;
  v

let get t name =
  ignore (check_public t name);
  with_depth t (fun () -> get_internal t name)

let set t name value =
  ignore (check_public t name);
  with_depth t (fun () -> set_internal t name value)

let set_struct t name fields =
  let s = the_struct t name in
  if s.s_private then fail "structure %s is private" name;
  with_depth t (fun () -> set_struct_internal t name fields)

(* {1 Block transfers} *)

let block_reg t name =
  let v = the_var t name in
  if not v.v_behaviour.b_block then
    fail "variable %s has no block behaviour" name;
  match v.v_chunks with
  | [ { c_reg; c_ranges = [ (hi, lo) ] } ] ->
      let r = the_reg t c_reg in
      if lo <> 0 || hi <> r.r_size - 1 then
        fail "block variable %s must span its whole register" name;
      r
  | _ -> fail "block variable %s must map to a single register" name

let read_block t name ~count =
  let r = block_reg t name in
  match r.r_read with
  | None -> fail "register %s is not readable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_read t name;
            let into = Array.make count 0 in
            t.bus.Bus.read_block ~width:(point_width t lp)
              ~addr:(point_addr t lp) ~into;
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            into)
      in
      (match t.profile with
      | None -> body ()
      | Some p ->
          Profile.span p (t.label ^ "/var:" ^ name ^ ":block_read") body)

let write_block t name data =
  let r = block_reg t name in
  match r.r_write with
  | None -> fail "register %s is not writable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_write t name [ r.r_name ];
            t.bus.Bus.write_block ~width:(point_width t lp)
              ~addr:(point_addr t lp) ~from:data;
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            run_action ~what:(Trace.Set, r.r_name) t r.r_set)
      in
      (match t.profile with
      | None -> body ()
      | Some p ->
          Profile.span p (t.label ^ "/var:" ^ name ^ ":block_write") body)

let read_wide t name ~scale =
  let r = block_reg t name in
  match r.r_read with
  | None -> fail "register %s is not readable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_read t name;
            let v =
              t.bus.Bus.read ~width:(scale * point_width t lp)
                ~addr:(point_addr t lp)
            in
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            v)
      in
      (match t.profile with
      | None -> body ()
      | Some p -> Profile.span p (t.label ^ "/var:" ^ name ^ ":read") body)

let write_wide t name ~scale value =
  let r = block_reg t name in
  match r.r_write with
  | None -> fail "register %s is not writable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_write t name [ r.r_name ];
            t.bus.Bus.write ~width:(scale * point_width t lp)
              ~addr:(point_addr t lp) ~value;
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            run_action ~what:(Trace.Set, r.r_name) t r.r_set)
      in
      (match t.profile with
      | None -> body ()
      | Some p -> Profile.span p (t.label ^ "/var:" ^ name ^ ":write") body)

let read_block_wide t name ~scale ~count =
  let r = block_reg t name in
  match r.r_read with
  | None -> fail "register %s is not readable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_read t name;
            let into = Array.make count 0 in
            t.bus.Bus.read_block ~width:(scale * point_width t lp)
              ~addr:(point_addr t lp) ~into;
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            into)
      in
      (match t.profile with
      | None -> body ()
      | Some p ->
          Profile.span p (t.label ^ "/var:" ^ name ^ ":block_read") body)

let write_block_wide t name ~scale data =
  let r = block_reg t name in
  match r.r_write with
  | None -> fail "register %s is not writable" r.r_name
  | Some lp ->
      let body () =
        with_depth t (fun () ->
            run_action ~what:(Trace.Pre, r.r_name) t r.r_pre;
            note_var_write t name [ r.r_name ];
            t.bus.Bus.write_block ~width:(scale * point_width t lp)
              ~addr:(point_addr t lp) ~from:data;
            run_action ~what:(Trace.Post, r.r_name) t r.r_post;
            run_action ~what:(Trace.Set, r.r_name) t r.r_set)
      in
      (match t.profile with
      | None -> body ()
      | Some p ->
          Profile.span p (t.label ^ "/var:" ^ name ^ ":block_write") body)

(* {1 Indexed (parameterized) register access} *)

let instantiate_template t ~template ~args : Ir.reg =
  match Ir.find_template t.device template with
  | None -> fail "unknown register template %s" template
  | Some tp ->
      if List.length args <> List.length tp.t_params then
        fail "template %s expects %d argument(s)" template
          (List.length tp.t_params);
      List.iter2
        (fun (pname, legal) arg ->
          if not (List.mem arg legal) then
            fail "argument %d is outside the range of parameter %s of %s" arg
              pname template)
        tp.t_params args;
      let bindings = List.combine (List.map fst tp.t_params) args in
      let subst (a : Ir.action) : Ir.action =
        List.map
          (fun (assignment : Ir.assignment) ->
            let subst_op (o : Ir.operand) =
              match o with
              | Ir.O_param p -> (
                  match List.assoc_opt p bindings with
                  | Some v -> Ir.O_int v
                  | None -> o)
              | _ -> o
            in
            match assignment with
            | Ir.Set_var { target; value } ->
                Ir.Set_var { target; value = subst_op value }
            | Ir.Set_struct { target; fields } ->
                Ir.Set_struct
                  {
                    target;
                    fields = List.map (fun (f, o) -> (f, subst_op o)) fields;
                  })
          a
      in
      {
        Ir.r_name =
          Printf.sprintf "%s(%s)" template
            (String.concat "," (List.map string_of_int args));
        r_size = tp.t_size;
        r_read = tp.t_read;
        r_write = tp.t_write;
        r_mask = tp.t_mask;
        r_pre = subst tp.t_pre;
        r_post = subst tp.t_post;
        r_set = subst tp.t_set;
        r_from_template = Some (template, args);
        r_loc = tp.t_loc;
      }

let read_indexed t ~template ~args =
  let r = instantiate_template t ~template ~args in
  match t.profile with
  | None -> with_depth t (fun () -> read_reg_io t r)
  | Some p ->
      Profile.span p
        (t.label ^ "/template:" ^ template ^ ":read")
        (fun () -> with_depth t (fun () -> read_reg_io t r))

let write_indexed t ~template ~args raw =
  let r = instantiate_template t ~template ~args in
  match t.profile with
  | None -> with_depth t (fun () -> write_reg_io t r raw)
  | Some p ->
      Profile.span p
        (t.label ^ "/template:" ^ template ^ ":write")
        (fun () -> with_depth t (fun () -> write_reg_io t r raw))
end

(* {1 Engine dispatch}

   The compiled engine is the default — the paper's stubs are compiled,
   and so is our hot path. [~interpret:true] keeps the interpreter
   available as the differential oracle and as a debugging aid. *)

type t = Compiled of Plan.t | Interpreted of Interp.t

let create ?(debug = false) ?label ?trace ?metrics ?profile
    ?(interpret = false) device ~bus ~bases =
  if interpret then
    Interpreted
      (Interp.create ~debug ?label ?trace ?metrics ?profile device ~bus ~bases)
  else
    let label = match label with Some l -> l | None -> device.Ir.d_name in
    Compiled
      (Plan.compile ~debug ~label ?trace ?metrics ?profile device ~bus ~bases)

let device = function
  | Compiled p -> Plan.device p
  | Interpreted i -> Interp.device i

let get t name =
  match t with
  | Compiled p -> Plan.get p name
  | Interpreted i -> Interp.get i name

let set t name value =
  match t with
  | Compiled p -> Plan.set p name value
  | Interpreted i -> Interp.set i name value

let get_struct t name =
  match t with
  | Compiled p -> Plan.get_struct p name
  | Interpreted i -> Interp.get_struct i name

let set_struct t name fields =
  match t with
  | Compiled p -> Plan.set_struct p name fields
  | Interpreted i -> Interp.set_struct i name fields

let read_block t name ~count =
  match t with
  | Compiled p -> Plan.read_block p name ~count
  | Interpreted i -> Interp.read_block i name ~count

let write_block t name data =
  match t with
  | Compiled p -> Plan.write_block p name data
  | Interpreted i -> Interp.write_block i name data

let read_wide t name ~scale =
  match t with
  | Compiled p -> Plan.read_wide p name ~scale
  | Interpreted i -> Interp.read_wide i name ~scale

let write_wide t name ~scale value =
  match t with
  | Compiled p -> Plan.write_wide p name ~scale value
  | Interpreted i -> Interp.write_wide i name ~scale value

let read_block_wide t name ~scale ~count =
  match t with
  | Compiled p -> Plan.read_block_wide p name ~scale ~count
  | Interpreted i -> Interp.read_block_wide i name ~scale ~count

let write_block_wide t name ~scale data =
  match t with
  | Compiled p -> Plan.write_block_wide p name ~scale data
  | Interpreted i -> Interp.write_block_wide i name ~scale data

let read_indexed t ~template ~args =
  match t with
  | Compiled p -> Plan.read_indexed p ~template ~args
  | Interpreted i -> Interp.read_indexed i ~template ~args

let write_indexed t ~template ~args raw =
  match t with
  | Compiled p -> Plan.write_indexed p ~template ~args raw
  | Interpreted i -> Interp.write_indexed i ~template ~args raw

let invalidate_cache = function
  | Compiled p -> Plan.invalidate_cache p
  | Interpreted i -> Interp.invalidate_cache i

let cached_raw t reg =
  match t with
  | Compiled p -> Plan.cached_raw p reg
  | Interpreted i -> Interp.cached_raw i reg

(* {1 Pre-resolved handles} *)

type handle = H_plan of Plan.handle | H_interp of string

let handle t name =
  match t with
  | Compiled p -> H_plan (Plan.handle p name)
  | Interpreted i ->
      ignore (Interp.check_public i name);
      H_interp name

let get_h t h =
  match (t, h) with
  | Compiled p, H_plan h -> Plan.get_h p h
  | Interpreted i, H_interp name ->
      Interp.with_depth i (fun () -> Interp.get_internal i name)
  | Compiled _, H_interp _ | Interpreted _, H_plan _ ->
      fail "handle was created by a different engine"

let set_h t h value =
  match (t, h) with
  | Compiled p, H_plan h -> Plan.set_h p h value
  | Interpreted i, H_interp name ->
      Interp.with_depth i (fun () -> Interp.set_internal i name value)
  | Compiled _, H_interp _ | Interpreted _, H_plan _ ->
      fail "handle was created by a different engine"
