(** The bounded event trace of the observability layer (DESIGN.md §8).

    A trace is a ring buffer of timestamped (sequence-numbered) events
    into which every instrumented layer of the runtime feeds: the
    {!Bus.observed} wrapper records raw transfers, {!Instance} records
    stub-level events (register access, idempotent-cache hits and
    misses, pre/post/set actions, serialization ordering), {!Policy}
    records poll outcomes and retries, and {!Fault} mirrors its
    injections — one stream, in the order things happened.

    The buffer is bounded: once [capacity] events have been recorded
    the oldest are evicted, so a trace attached to an arbitrarily long
    campaign retains the most recent window at constant space. Eviction
    is observable through {!dropped}.

    Tracing is strictly opt-in. Nothing in the runtime allocates or
    records unless a trace handle was passed in explicitly (or created
    from the [DEVIL_TRACE] environment variable via {!from_env}); the
    disabled path is a single [option] match per hook. *)

(** A generic bounded ring buffer — also used by {!Fault} for its
    injection trace. *)
module Ring : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** Capacities below 1 are clamped to 1. *)

  val add : 'a t -> 'a -> unit
  (** Appends, evicting the oldest item when full. *)

  val to_list : 'a t -> 'a list
  (** Retained items, oldest first. *)

  val iter : ('a -> unit) -> 'a t -> unit
  (** Applies to every retained item, oldest first, in place — no
      intermediate list is built. *)

  val length : 'a t -> int
  val capacity : 'a t -> int

  val total : 'a t -> int
  (** Items ever added, including evicted ones. *)

  val dropped : 'a t -> int
  (** [total - length]: items evicted so far. *)

  val clear : 'a t -> unit
end

type phase = Pre | Post | Set  (** Which action of a register or variable. *)

(** The event vocabulary. [dev] names the instance (the driver label
    given to {!Instance.create}); [owner] names the register or
    variable whose action or serialization clause ran. *)
type kind =
  | Bus_read of { addr : int; width : int; value : int }
  | Bus_write of { addr : int; width : int; value : int }
  | Bus_block_read of { addr : int; width : int; count : int }
  | Bus_block_write of { addr : int; width : int; count : int }
  | Reg_read of { dev : string; reg : string; raw : int }
  | Reg_write of { dev : string; reg : string; raw : int }
      (** Register-level I/O performed by an {!Instance} (the raw value
          cached, i.e. before masking for the wire). *)
  | Var_read of { dev : string; var : string }
      (** A device variable was read through the public API. Emitted
          before the register reads it induces. *)
  | Var_write of { dev : string; var : string; regs : string list }
      (** A device variable write is about to issue its register
          writes; [regs] lists the registers the scatter will touch, in
          issue order. Emitted after the variable's pre-action and the
          compose/scatter phase (so refresh reads and nested
          action-driven writes precede it) and immediately before the
          register-write loop. *)
  | Struct_write of {
      dev : string;
      strct : string;
      fields : string list;
      regs : string list;
    }
      (** The structure analogue of [Var_write]: [fields] are the
          structure's field variables (all of which the rebuilt
          registers may carry), [regs] the registers about to be
          written. *)
  | Cache_hit of { dev : string; reg : string }
  | Cache_miss of { dev : string; reg : string }
      (** Idempotent-register cache outcome on a variable read. *)
  | Cache_invalidated of { dev : string }
      (** {!Instance.invalidate_cache} dropped every cached raw. *)
  | Action of { dev : string; owner : string; phase : phase; assignments : int }
  | Serialized of { dev : string; owner : string; order : string list }
      (** A serialization clause ordered a multi-register write. *)
  | Poll of { label : string; iters : int; ok : bool; rid : int }
      (** A {!Policy} poll completed: how many condition evaluations it
          took and whether it was satisfied ([ok = false] is a
          timeout). [rid] is the queued request the poll ran on behalf
          of (see {!Queue_submitted}), 0 when none. *)
  | Retry of { label : string; attempt : int; reason : string; rid : int }
  | Fault_injected of {
      plan : string;
      addr : int;
      width : int;
      detail : string;
    }
  | Irq_raised of { line : int; dev : string; rid : int }
      (** A device's INT pin asserted PIC line [line] — the {!Sched}
          loop saw the line's source go high (edge, not level: one
          event per assertion, however many ticks it stays high).
          [rid] is [dev]'s in-flight request when the edge was seen
          (the request this interrupt most plausibly answers), 0 when
          the queue was idle. *)
  | Irq_delivered of { line : int; dev : string; rid : int }
      (** The scheduler acknowledged [line] at the interrupt controller
          and is about to run the handler registered for [dev]. *)
  | Queue_submitted of { dev : string; label : string; depth : int; rid : int }
      (** A request entered [dev]'s queue; [depth] counts queued plus
          in-flight requests after the submit. [rid] is the request id
          {!Sched.submit} minted — monotonically increasing per
          scheduler, never reused, and threaded through every event
          this request causes, which is what lets {!Lifecycle}
          reconstruct the request's causal arc end to end. *)
  | Queue_started of { dev : string; label : string; rid : int }
      (** The request left the pending FIFO and its start thunk is
          about to issue the command — queue wait ends, service
          begins. *)
  | Queue_completed of {
      dev : string;
      label : string;
      depth : int;
      ok : bool;
      rid : int;
    }
      (** A request left [dev]'s queue: [ok = true] is a completion
          reported by the driver's interrupt handler, [ok = false] a
          classified failure (timeout or handler-reported error). *)
  | Queue_late of { dev : string; rid : int }
      (** A completion arrived with nothing in flight. [rid > 0] names
          the most recent timed-out request on [dev] — the lost
          interrupt finally showing up; [rid = 0] means no timed-out
          predecessor exists, i.e. the completion is spurious. *)

type event = { seq : int; kind : kind }
(** [seq] increases by one per recorded event and is never reused, so
    gaps at the front of {!events} reveal eviction. *)

type t

val default_capacity : int
(** 1024. *)

val create : ?capacity:int -> unit -> t

val from_env : unit -> t option
(** Reads [DEVIL_TRACE]: unset, ["0"]/["off"] (and friends) disable;
    ["1"]/["on"] enable with {!default_capacity}; an integer > 1 is
    used as the capacity. A malformed value prints a one-line warning
    to stderr listing the accepted forms and enables tracing with the
    default capacity. *)

val parse_env_value : string -> (int option, string) result
(** The pure parser behind {!from_env}: [Ok None] means disabled,
    [Ok (Some capacity)] enabled, [Error why] malformed (in which case
    {!from_env} warns and falls back to {!default_capacity}). Exposed
    for testing. *)

val emit : t -> kind -> unit

val subscribe : t -> (event -> unit) -> unit
(** Registers a callback invoked synchronously from {!emit} with each
    event as it is recorded, in subscription order. This is the O(1)
    way to consume a live stream — e.g. the {!Monitor} attaches here —
    as opposed to polling {!events}, which snapshots the whole ring
    (O(capacity)) on every call and misses evicted events between
    polls. Subscribers survive {!clear} and cannot be removed; create
    a fresh trace to drop them. *)

val set_drop_hook : t -> (unit -> unit) -> unit
(** Installs a callback invoked from {!emit} each time recording the
    event evicted the oldest retained one — the O(1) way to surface
    ring evictions as a live counter (the machine layer wires it to
    the [trace.dropped_events] metric) instead of polling {!dropped}.
    One hook per trace (the last installation wins); the default is a
    no-op, so an unhooked trace behaves exactly as before. *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
val capacity : t -> int

val recorded : t -> int
(** Events ever emitted, including evicted ones. *)

val dropped : t -> int
(** Events evicted by the bound. *)

val clear : t -> unit
(** Empties the buffer and rewinds the sequence counter. *)

val merge_events : event list -> event list -> event list
(** Stable seq-ordered merge of two event streams (each already
    ascending by [seq], as {!events} yields them): the interleaving by
    sequence number, ties keeping the first operand's events first and
    each stream's internal order intact. *)

val merge : ?capacity:int -> t -> t -> t
(** [merge a b] is a {e fresh} trace holding
    [merge_events (events a) (events b)] in a ring of [capacity]
    (default: the larger of the two inputs'), with its sequence clock
    advanced past both so later {!emit}s cannot collide. Neither input
    is touched; subscribers and drop hooks are not carried over. The
    per-shard fold companion to {!Metrics.merge} / {!Profile.merge}. *)

val summary : t -> string
(** One-line [recorded/retained/evicted] digest, e.g. for tagging a
    fault-campaign trial. *)

val phase_label : phase -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** Every retained event, one per line. *)
