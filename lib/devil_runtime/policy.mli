(** Recovery policies for drivers.

    Every driver above the Devil runtime used to carry its own ad-hoc
    spin loop and its own [failwith] strings. This module centralises
    the error vocabulary ({!error}) and the three recovery shapes a
    polled device driver needs:

    - {!poll_until} — a bounded busy-wait with an optional backoff,
      replacing hand-rolled [let rec go n = ...] loops;
    - {!with_retries} — bounded re-execution of an idempotent operation
      when it fails transiently (a {!Fault.Bus_fault} or a structured
      transient error);
    - {!guarded} — a watchdog boundary that converts raw exceptions
      ([Fault.Bus_fault], [Instance.Device_error], [Failure]) into
      structured {!Driver_error}s so callers match on one type.

    Time is simulated: deadlines and backoffs are measured in {e
    ticks}, where one tick is one condition evaluation (one status
    poll). The default bounds are uniform across drivers and
    configurable through the [DEVIL_POLL_DEADLINE] and
    [DEVIL_RETRY_ATTEMPTS] environment variables or the setters
    below. *)

type error =
  | Timeout of string  (** A deadline expired while polling. *)
  | Device_fault of string
      (** The device reported an error or returned nonsense. *)
  | Bus_fault of string  (** A transient bus fault surfaced to the driver. *)
  | Degraded of string
      (** Recovery was attempted and exhausted; the operation is
          abandoned. *)

exception Driver_error of error
(** The single exception drivers raise for runtime failures. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val fail : error -> 'a
(** [fail e] raises [Driver_error e]. *)

val default_deadline : unit -> int
(** Ticks a poll may consume before timing out. Initialised from
    [DEVIL_POLL_DEADLINE] (default 1_000_000). *)

val set_default_deadline : int -> unit

val default_attempts : unit -> int
(** Total attempts {!with_retries} makes. Initialised from
    [DEVIL_RETRY_ATTEMPTS] (default 3). *)

val set_default_attempts : int -> unit

val is_transient : exn -> bool
(** True for {!Fault.Bus_fault} and for [Driver_error] carrying
    [Bus_fault] or [Device_fault] — the failures a retry can plausibly
    clear. [Timeout] and [Degraded] are not transient: retrying them
    multiplies already-exhausted budgets. *)

val with_retries :
  ?attempts:int ->
  ?retry_on:(exn -> bool) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  label:string ->
  (unit -> 'a) ->
  'a
(** [with_retries ~label f] runs [f]; when it raises an exception
    accepted by [retry_on] (default {!is_transient}) it is re-run, up
    to [attempts] total executions. When the budget is exhausted the
    last failure is wrapped in [Driver_error (Degraded _)]. [f] must be
    safe to re-execute from the top (command-level idempotence). *)

val poll_until :
  ?deadline:int -> ?backoff:(int -> int) -> label:string ->
  (unit -> bool) -> unit
(** [poll_until ~label cond] evaluates [cond] until it returns [true].
    Iteration [i] costs [1 + backoff i] ticks against [deadline]
    (default {!default_deadline}; backoff defaults to constant 0), so
    [cond] is evaluated at most [deadline] times and the poll always
    terminates. Raises [Driver_error (Timeout label)] on expiry. *)

val poll_for :
  ?deadline:int -> ?backoff:(int -> int) -> label:string ->
  (unit -> 'a option) -> 'a
(** Like {!poll_until} for condition functions that produce a value. *)

val try_poll :
  ?deadline:int -> ?backoff:(int -> int) -> ?label:string ->
  (unit -> bool) -> bool
(** {!poll_until} that reports expiry as [false] instead of raising —
    for protocols where a missing answer is an answer. [label] (default
    ["try_poll"]) only names the poll in traces. *)

val try_poll_for :
  ?deadline:int -> ?backoff:(int -> int) -> ?label:string ->
  (unit -> 'a option) -> 'a option

val linear_backoff : int -> int -> int
(** [linear_backoff step] charges [step * i] extra ticks at iteration
    [i]. *)

val exponential_backoff : ?base:int -> ?cap:int -> int -> int
(** [exponential_backoff ~base ~cap] charges [min cap (base * 2^i)]
    extra ticks at iteration [i] (defaults: base 1, cap 1024). *)

val guarded : label:string -> (unit -> 'a) -> 'a
(** Watchdog boundary: runs [f], passing [Driver_error] through and
    converting [Fault.Bus_fault], [Instance.Device_error] and [Failure]
    into structured errors tagged with [label]. *)

(** {1 Observability}

    The combinators are stateless module-level functions called from
    driver code, so their observability hook is a module-level
    observer rather than a per-call argument. {!observe} installs
    trace/metrics handles; until then (and after {!unobserve}) the
    instrumented paths cost two ref reads and allocate nothing.

    Counters maintained when a metrics registry is installed:
    [poll.runs], [poll.ticks] (condition evaluations), [poll.timeouts],
    the [poll.iters] histogram, [retry.attempts] and
    [retry.exhausted]. With a trace installed each completed poll
    emits a {!Trace.Poll} event and each retry a {!Trace.Retry}
    event. *)

val observe :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?profile:Profile.t -> unit -> unit
(** Install (or replace) the module-level observer. Omitted handles are
    cleared, so [observe ()] is equivalent to {!unobserve}. With a
    profiler installed every poll runs inside a ["poll:<label>"] span
    and every {!with_retries} body inside a ["retry:<label>"] span, so
    the condition's bus traffic is attributed to the poll that issued
    it. *)

val unobserve : unit -> unit
(** Remove the observer. Owners of short-lived handles (tests,
    campaign trials) must call this before discarding them. *)

(** {1 Request attribution}

    {!Sched} parks the id of the queued request it is currently
    serving here — around the request's start thunk, its interrupt
    handler and its timeout abort — so the {!Trace.Poll} and
    {!Trace.Retry} events emitted on that request's behalf carry the
    request id and {!Lifecycle} can attribute them to the request's
    causal arc. Synchronous (non-queued) drivers always run with the
    id at 0. *)

val set_current_request : int -> unit
(** Set the request id subsequent poll/retry trace events are tagged
    with; values [<= 0] clear it. A bare store — the disabled path
    allocates nothing. *)

val current_request : unit -> int
(** The currently parked request id, 0 when none. *)

(** {1 Exploration decision points}

    Every poll completion and every retry is a branch point the
    exploration engine ({!Explore}) can force down its failure edge: a
    poll can be made to time out even though the device would have
    answered, a retry can be denied even though attempts remain. The
    installed decider sees each branch point with a per-kind 0-based
    ordinal and returns [true] to force the adverse outcome. Forced
    outcomes stay inside the classified error vocabulary — a forced
    poll is an ordinary [Timeout] (or [false] from {!try_poll}), a
    denied retry fails [Degraded] with a [retry.denied] counter — so
    exploration only schedules failure paths drivers already have.

    Like the observer, the decider is module-level state: one at a
    time, installed around a run and removed with {!clear_decider}. *)

type decision =
  | Poll_decision of { label : string; ordinal : int }
      (** About to run the poll named [label]; [true] forces an
          immediate timeout (0 condition evaluations). *)
  | Retry_decision of { label : string; attempt : int; ordinal : int }
      (** A transient failure at [attempt] would normally be retried;
          [true] denies the retry and fails [Degraded]. *)

val set_decider : (decision -> bool) -> unit
(** Install the decider and reset both ordinal counters. *)

val clear_decider : unit -> unit
(** Remove the decider; the ordinal counters keep their values so a
    finished run can still read them. *)

val reset_decision_points : unit -> unit
(** Reset the poll/retry ordinal counters to 0 without touching the
    decider. *)

val poll_points : unit -> int
(** Poll decision points encountered since the counters were last
    reset — the poll-axis horizon of the run just finished. *)

val retry_points : unit -> int
(** Retry decision points encountered since the counters were last
    reset. *)
