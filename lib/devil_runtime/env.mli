(** Shared parsing for the observability opt-in environment variables
    ([DEVIL_TRACE], [DEVIL_METRICS], [DEVIL_PROFILE]).

    All three follow the same protocol: unset means disabled, a
    well-formed value is obeyed, and a malformed value prints a
    one-line warning naming the variable, the reason and the accepted
    forms — then falls back to {e enabled} with defaults, on the theory
    that someone who set the variable at all wanted the feature. The
    protocol lives here so {!Trace.from_env}, {!Metrics.from_env} and
    {!Profile.from_env} cannot drift apart. *)

val parse_bool : string -> (bool, string) result
(** ["0"]/["off"]/["false"]/["no"]/[""] are [Ok false];
    ["1"]/["on"]/["true"]/["yes"] are [Ok true] (case-insensitive,
    trimmed); anything else is [Error why]. *)

val bool_forms : string
(** The accepted-forms phrase for boolean variables, for warnings. *)

val lookup :
  var:string ->
  parse:(string -> ('a, string) result) ->
  accepted:string ->
  fallback:'a ->
  fallback_note:string ->
  'a option
(** [lookup ~var ~parse ~accepted ~fallback ~fallback_note] reads
    [var] from the environment: [None] when unset, [Some v] when
    [parse] accepts the value, and [Some fallback] (after warning on
    stderr with [accepted] and [fallback_note]) when it does not. *)
