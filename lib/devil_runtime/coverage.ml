(* Spec coverage: marks the coverable sites of one device (see
   Devil_ir.Sites) covered as trace events for its instance arrive. *)

module Ir = Devil_ir.Ir
module Sites = Devil_ir.Sites

type t = {
  dev : string;  (* instance label events are filtered on *)
  device : Ir.device;
  universe : Sites.site list;
  covered : (string, unit) Hashtbl.t;  (* site ids *)
}

let create ~dev device =
  {
    dev;
    device;
    universe = Sites.universe device;
    covered = Hashtbl.create 64;
  }

let dev t = t.dev
let mark t site = Hashtbl.replace t.covered (Sites.site_id site) ()
let is_covered t site = Hashtbl.mem t.covered (Sites.site_id site)

(* A runtime register name is either a declared register or a
   synthesized template instance like [I(23)]. *)
let mark_reg t access name =
  match Ir.find_reg t.device name with
  | Some _ -> mark t (S_reg { reg = name; access })
  | None -> (
      match String.index_opt name '(' with
      | Some i ->
          let template = String.sub name 0 i in
          if Ir.find_template t.device template <> None then
            mark t (S_template { template; access })
      | None -> ())

let mark_var t access name =
  mark t (S_var { var = name; access });
  match Ir.find_var t.device name with
  | None -> ()
  | Some v ->
      List.iter
        (fun (c : Ir.chunk) ->
          mark t (S_bits { reg = c.c_reg; var = name; ranges = c.c_ranges }))
        v.v_chunks;
      let b = v.v_behaviour in
      if b.b_block then begin
        mark t (S_behaviour { var = name; behaviour = "block" });
        (* Block transfers go straight to the bus, so no Reg_read /
           Reg_write events fire for the port register; the Var event
           is the only witness that the register was exercised. *)
        if access = Ir.Read then
          List.iter (fun (c : Ir.chunk) -> mark_reg t Ir.Read c.c_reg) v.v_chunks
      end;
      (match (access, b.b_volatile) with
      | Ir.Read, true ->
          mark t (S_behaviour { var = name; behaviour = "volatile" })
      | _ -> ());
      match b.b_trigger with
      | Some tr ->
          if access = Ir.Read && tr.tr_read then
            mark t (S_behaviour { var = name; behaviour = "trigger.read" });
          if access = Ir.Write && tr.tr_write then
            mark t (S_behaviour { var = name; behaviour = "trigger.write" })
      | None -> ()

let feed t (e : Trace.event) =
  match e.kind with
  | Reg_read { dev; reg; _ } when dev = t.dev -> mark_reg t Ir.Read reg
  | Cache_hit { dev; reg } when dev = t.dev ->
      (* A cache hit exercises the read path of the register even
         though no transfer happens. *)
      mark_reg t Ir.Read reg
  | Reg_write { dev; reg; _ } when dev = t.dev -> mark_reg t Ir.Write reg
  | Var_read { dev; var } when dev = t.dev -> mark_var t Ir.Read var
  | Var_write { dev; var; regs } when dev = t.dev ->
      mark_var t Ir.Write var;
      List.iter (mark_reg t Ir.Write) regs
  | Struct_write { dev; fields; regs; _ } when dev = t.dev ->
      List.iter (mark_var t Ir.Write) fields;
      List.iter (mark_reg t Ir.Write) regs
  | Action { dev; owner; phase; _ } when dev = t.dev ->
      mark t (S_action { owner; phase = Trace.phase_label phase })
  | Serialized { dev; owner; _ } when dev = t.dev ->
      mark t (S_serial { owner })
  | _ -> ()

let feed_all t events = List.iter (feed t) events
let attach t trace = Trace.subscribe trace (feed t)

type report = {
  rp_dev : string;
  rp_total : int;
  rp_covered : int;
  rp_reg_total : int;
  rp_reg_covered : int;
  rp_read_total : int;
  rp_read_covered : int;
  rp_write_total : int;
  rp_write_covered : int;
  rp_missed : Sites.site list;
}

let report t =
  let covered_sites, missed =
    List.partition (is_covered t) t.universe
  in
  let regs = List.filter Sites.is_reg_site t.universe in
  let regs_covered = List.filter (is_covered t) regs in
  let direction access l =
    List.filter (fun s -> Sites.is_reg_site s && Sites.site_access s = Some access) l
  in
  let reads = direction Ir.Read regs and writes = direction Ir.Write regs in
  {
    rp_dev = t.dev;
    rp_total = List.length t.universe;
    rp_covered = List.length covered_sites;
    rp_reg_total = List.length regs;
    rp_reg_covered = List.length regs_covered;
    rp_read_total = List.length reads;
    rp_read_covered = List.length (List.filter (is_covered t) reads);
    rp_write_total = List.length writes;
    rp_write_covered = List.length (List.filter (is_covered t) writes);
    rp_missed = missed;
  }

let percent ~covered ~total =
  if total = 0 then 100.0
  else 100.0 *. float_of_int covered /. float_of_int total

let reg_percent r = percent ~covered:r.rp_reg_covered ~total:r.rp_reg_total
let site_percent r = percent ~covered:r.rp_covered ~total:r.rp_total
let read_percent r = percent ~covered:r.rp_read_covered ~total:r.rp_read_total
let write_percent r = percent ~covered:r.rp_write_covered ~total:r.rp_write_total

let pp_report fmt r =
  Format.fprintf fmt
    "%-10s sites %3d/%3d (%5.1f%%)  registers %3d/%3d (%5.1f%%)  read %d/%d  \
     write %d/%d"
    r.rp_dev r.rp_covered r.rp_total (site_percent r) r.rp_reg_covered
    r.rp_reg_total (reg_percent r) r.rp_read_covered r.rp_read_total
    r.rp_write_covered r.rp_write_total

let pp_missed fmt r =
  List.iter
    (fun s -> Format.fprintf fmt "  missed %a@." Sites.pp_site s)
    r.rp_missed
