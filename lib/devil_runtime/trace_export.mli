(** Persistence for traces and bus tapes (DESIGN.md §10).

    Two line-oriented, versioned formats plus one visualization export:

    - {b Trace JSONL}: header line [{"devil_trace_version":1}] followed
      by one JSON object per event ([seq] plus a ["kind"] tag naming
      one of the {!Trace.kind} constructors and its fields).
    - {b Tape JSONL}: header line [{"devil_tape_version":1}] followed
      by one JSON object per {!Bus.transfer}, for {!Bus.replaying}.
    - {b Chrome trace JSON}: the [about://tracing] / Perfetto event
      array — one thread per instance label, sequence numbers as
      timestamps, polls/retries/block transfers as duration spans.

    Parsing is total: malformed input yields [Error] with a position
    and reason, never an exception. A file whose version is newer than
    this build is rejected rather than misread. *)

(** The minimal JSON tree both formats share. Numbers are OCaml [int]s
    — the runtime never traces anything wider. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

val version : int
(** The schema version written by this build (1). *)

val json_to_string : json -> string
val json_of_string : string -> (json, string) result

(** {1 Events} *)

val event_to_json : Trace.event -> json
val event_of_json : json -> (Trace.event, string) result

val events_to_jsonl : Trace.event list -> string
(** Header line plus one event per line. *)

val to_jsonl : Trace.t -> string
(** [events_to_jsonl (Trace.events t)]. *)

val events_of_jsonl : string -> (Trace.event list, string) result

val to_chrome : Trace.event list -> string
(** The [{"traceEvents": [...]}] JSON Chrome's [about://tracing] and
    Perfetto load directly. *)

(** {1 Profiles}

    Visualization exports for {!Profile}'s call-path trie (DESIGN.md
    §11). Both walk the trie and emit one entry per node with self
    time, so the rendered flame widths sum to the profiler's
    {!Profile.attributed_ns}. *)

val profile_to_folded : Profile.t -> string
(** Folded-stack lines (["root;child;leaf self_ns\n"]) —
    flamegraph.pl's input format, also accepted by speedscope. *)

val profile_to_speedscope : ?name:string -> Profile.t -> string
(** A speedscope JSON document (schema
    [https://www.speedscope.app/file-format-schema.json]): one
    ["sampled"] profile in nanoseconds whose samples are the trie
    paths weighted by self time. [name] titles the profile in the
    speedscope UI. *)

(** {1 Tapes} *)

val transfer_to_json : Bus.transfer -> json
val transfer_of_json : json -> (Bus.transfer, string) result
val tape_to_jsonl : Bus.tape -> string
val tape_of_jsonl : string -> (Bus.tape, string) result

(** {1 OpenMetrics}

    The Prometheus text exposition format, so a registry snapshot can
    be scraped or diffed by standard tooling. *)

val to_openmetrics :
  ?health:Health.report -> ?telemetry:Telemetry.t -> Metrics.t -> string
(** Renders the registry: every counter as [devil_<name>_total] (dots
    flattened to underscores) with a [# TYPE] line, every histogram as
    cumulative [devil_<name>_bucket{le="..."}] samples over the
    power-of-two bucket uppers plus [le="+Inf"], [_sum] and [_count].
    [devil_trace_dropped_events_total] is always present (0 when no
    trace fed the registry) so eviction alerts never miss their
    sample. With [telemetry], adds [devil_telemetry_ticks] and
    [devil_telemetry_series_evictions_total]; with [health], a
    [devil_health] gauge (0 ok / 1 degraded / 2 stalled — see
    {!Health.verdict_severity}) plus one
    [devil_health_reason{code="..."}] sample per firing reason. The
    output ends with the [# EOF] terminator. *)

(** {1 Telemetry series JSONL}

    Header line [{"devil_series_version":1, "hz":..., "ticks":...,
    "capacity":..., "series_evictions":...}] followed by one JSON
    object per retained sample point, flat across all series
    (counters first, then histograms, then health, each grouped by
    metric name in sorted order, points oldest first). [hz] travels as
    a ["%g"] string because the JSON layer is integer-only. *)

type series_point =
  | S_counter of { sp_tick : int; sp_metric : string; sp_total : int;
                   sp_delta : int }
  | S_hist of { sh_tick : int; sh_metric : string; sh_count : int;
                sh_sum : int; sh_p50 : int; sh_p95 : int; sh_p99 : int }
  | S_health of { sl_tick : int; sl_verdict : string; sl_summary : string }

type series_file = {
  sf_hz : float;
  sf_ticks : int;
  sf_capacity : int;
  sf_evictions : int;
  sf_points : series_point list;  (** In file order. *)
}

val series_to_jsonl : Telemetry.t -> string
val series_of_jsonl : string -> (series_file, string) result

(** {1 Files} *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain [open_out]/[output_string]. *)

val events_of_file : string -> (Trace.event list, string) result
val tape_of_file : string -> (Bus.tape, string) result
val series_of_file : string -> (series_file, string) result
