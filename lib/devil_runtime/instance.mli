(** Executable device interface compiled from a verified specification.

    An instance binds a device's IR to a {!Bus.t} and absolute base
    addresses, and provides the operations the Devil compiler would
    generate as C stubs: per-variable get/set, structure read/write,
    block transfers, and indexed access to parameterized registers.

    Semantics (paper §2.1):
    - idempotent (default) variables are cached per register; writing
      one variable of a shared register re-uses the cached bits of its
      siblings, or a trigger sibling's neutral value;
    - [volatile] variables are re-read on every access;
    - structure reads perform the I/O once per distinct register and
      fill a cache that field accesses then consult;
    - serialization clauses order multi-register writes, evaluating
      their conditions against the values being written;
    - [pre]/[post]/[set] actions run around each register access;
      [set] runs after writes and updates memory-cell variables.

    Dynamic checks (paper §3.2): value/range validation on writes is
    always performed (it is needed to encode the value); with
    [~debug:true], read results are additionally validated against the
    variable's type, and reading a structure field without a prior
    structure read is an error. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

type t

exception Device_error of string
(** Raised by every usage error and failed dynamic check. *)

val create :
  ?debug:bool ->
  ?label:string ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?profile:Profile.t ->
  ?interpret:bool ->
  Ir.device ->
  bus:Bus.t ->
  bases:(string * int) list ->
  t
(** [create device ~bus ~bases] binds each port parameter to an
    absolute base address. Every port of the device must be bound.

    By default the device is compiled once into pre-resolved access
    plans ({!Plan}, DESIGN.md §9): absolute addresses, folded masks,
    flattened gather/scatter bit plans, index-resolved actions — the
    per-access path performs no string lookup and no re-derivation.
    [~interpret:true] selects the original IR interpreter instead,
    which re-resolves everything on each access; the two are
    observationally identical (checked by [test/test_plan_diff.ml]),
    making the interpreter the differential oracle for the compiled
    fast path.

    [label] names the instance in observability output (default: the
    device's name); it prefixes the [io.<label>.*], [reg.<label>.*]
    and [cache.<label>.*] counters and tags every stub-level trace
    event. When [trace]/[metrics] are given the instance records
    register-level I/O, idempotent-cache hits and misses, pre/post/set
    action runs and serialization orderings; when omitted (the
    default) no instrumentation runs and nothing is allocated.

    With [profile] every access runs inside a hierarchical {!Profile}
    span keyed by its site (["<label>/var:<name>:read"],
    ["<label>/struct:<name>:write"],
    ["<label>/action:<owner>:<phase>"], ... — see {!Plan.compile}),
    in both engines, so nested accesses made by actions are attributed
    to their own site under their parent's. *)

val device : t -> Ir.device

val get : t -> string -> Value.t
(** Reads a public device variable. *)

val set : t -> string -> Value.t -> unit
(** Writes a public device variable. *)

val get_struct : t -> string -> unit
(** Reads all registers of a structure (each once) into the structure
    cache; field variables are then read with {!get}. *)

val set_struct : t -> string -> (string * Value.t) list -> unit
(** Writes a structure. Fields omitted from the list keep their cached
    value; it is an error to omit a field that was never written. *)

val read_block : t -> string -> count:int -> int array
(** Block input through a [block] variable: raw values, one bus block
    transfer. *)

val write_block : t -> string -> int array -> unit

val read_wide : t -> string -> scale:int -> int
(** Single transfer on a [block] variable's port at [scale] times the
    port width — the processor-specific wide access stub backing
    hdparm-style 32-bit I/O over a 16-bit data register. *)

val write_wide : t -> string -> scale:int -> int -> unit

val read_block_wide : t -> string -> scale:int -> count:int -> int array
(** Block transfer at [scale] times the port width; [count] is in wide
    units. *)

val write_block_wide : t -> string -> scale:int -> int array -> unit

val read_indexed : t -> template:string -> args:int list -> int
(** Raw read of an instance of a parameterized register (e.g. the
    CS4236B's [I(i)]); runs the instantiated pre/post actions. *)

val write_indexed : t -> template:string -> args:int list -> int -> unit

val invalidate_cache : t -> unit
(** Drops every cached register and structure value (e.g. after a
    device reset performed behind the interface's back). *)

val cached_raw : t -> string -> int option
(** Last known raw value of a register, for tests and debugging. *)

type handle
(** A pre-resolved reference to a public variable: the name lookup and
    public-interface check are paid once, at {!handle} time — the moral
    equivalent of the paper's generated C stub referring directly to
    its cache slot. A handle is only valid with the instance that
    created it. *)

val handle : t -> string -> handle
(** Raises {!Device_error} for unknown or private variables. *)

val get_h : t -> handle -> Value.t
val set_h : t -> handle -> Value.t -> unit
