(* The event-driven driver scheduler (DESIGN.md §13): level-triggered
   source sampling, controller acknowledge/dispatch/EOI, per-device
   request queues and a timer wheel over the virtual clock. *)

type controller = {
  ctl_raise : line:int -> unit;
  ctl_ack : unit -> int option;
  ctl_eoi : line:int -> unit;
}

type timer = {
  tm_deadline : int;
  tm_id : int;  (* creation order breaks deadline ties deterministically *)
  tm_fire : unit -> unit;
  mutable tm_cancelled : bool;
}

type request = {
  rq_id : int;  (* minted at submit, monotonically increasing, never reused *)
  rq_dev : string;
  rq_label : string;
  rq_timeout : int;
  rq_start : unit -> unit;
  rq_abort : unit -> unit;
  rq_on_done : (unit, Policy.error) result -> unit;
  rq_submitted : int;
  mutable rq_outcome : (unit, Policy.error) result option;
  mutable rq_timer : timer option;
}

type queue = {
  pending : request Queue.t;
  mutable inflight : request option;
  (* The most recent request on this queue that finished by timeout and
     has not yet been matched to a late completion — one timeout
     explains (at most) one late interrupt, so tagging clears it. *)
  mutable last_timeout_rid : int;
}

type source = {
  src_line : int;
  src_dev : string;
  src_asserted : unit -> bool;
  mutable src_high : bool;  (* last sampled level, for edge-only trace events *)
}

(* The wheel: a bucket per [now mod wheel_size]; deadlines further out
   than one revolution just stay in their bucket until their turn
   comes round again — each revisit is one comparison. *)
let wheel_size = 256
let max_deliveries_per_dispatch = 16

type t = {
  ctl : controller;
  trace : Trace.t option;
  metrics : Metrics.t option;
  profile : Profile.t option;
  mutable sources : source list;  (* registration order *)
  handlers : (int, string * (unit -> unit)) Hashtbl.t;
  queues : (string, queue) Hashtbl.t;
  mutable tickers : (unit -> unit) list;
  wheel : timer list array;  (* newest first within a bucket *)
  mutable clock : int;
  mutable next_timer_id : int;
  mutable next_rid : int;
  mutable int_high : bool;
}

let create ?trace ?metrics ?profile ctl =
  {
    ctl;
    trace;
    metrics;
    profile;
    sources = [];
    handlers = Hashtbl.create 8;
    queues = Hashtbl.create 8;
    tickers = [];
    wheel = Array.make wheel_size [];
    clock = 0;
    next_timer_id = 0;
    next_rid = 1;
    int_high = false;
  }

let incr t name = match t.metrics with None -> () | Some m -> Metrics.incr m name

let observe t name v =
  match t.metrics with None -> () | Some m -> Metrics.observe m name v

let emit t kind = match t.trace with None -> () | Some tr -> Trace.emit tr kind
let now t = t.clock

let add_source t ~line ~dev asserted =
  t.sources <-
    t.sources
    @ [ { src_line = line; src_dev = dev; src_asserted = asserted; src_high = false } ]

let set_handler t ~line ~dev handler = Hashtbl.replace t.handlers line (dev, handler)
let note_int t high = t.int_high <- high
let add_ticker t f = t.tickers <- t.tickers @ [ f ]

(* {1 Timers} *)

let after t ~ticks fire =
  let deadline = t.clock + max 1 ticks in
  let tm =
    {
      tm_deadline = deadline;
      tm_id = t.next_timer_id;
      tm_fire = fire;
      tm_cancelled = false;
    }
  in
  t.next_timer_id <- t.next_timer_id + 1;
  let bucket = deadline mod wheel_size in
  t.wheel.(bucket) <- tm :: t.wheel.(bucket);
  tm

let cancel tm = tm.tm_cancelled <- true

let run_due_timers t =
  let bucket = t.clock mod wheel_size in
  let due, later =
    List.partition (fun tm -> tm.tm_deadline <= t.clock) t.wheel.(bucket)
  in
  t.wheel.(bucket) <- later;
  List.sort (fun a b ->
      match compare a.tm_deadline b.tm_deadline with
      | 0 -> compare a.tm_id b.tm_id
      | c -> c)
    due
  |> List.iter (fun tm -> if not tm.tm_cancelled then tm.tm_fire ())

(* {1 Queues} *)

let queue_of t dev =
  match Hashtbl.find_opt t.queues dev with
  | Some q -> q
  | None ->
      let q =
        { pending = Queue.create (); inflight = None; last_timeout_rid = 0 }
      in
      Hashtbl.add t.queues dev q;
      q

(* The id of [dev]'s in-flight request, 0 when its queue is idle — the
   request an interrupt on [dev]'s line most plausibly answers. *)
let inflight_rid t dev =
  match Hashtbl.find_opt t.queues dev with
  | Some { inflight = Some rq; _ } -> rq.rq_id
  | _ -> 0

let depth t ~dev =
  match Hashtbl.find_opt t.queues dev with
  | None -> 0
  | Some q -> Queue.length q.pending + if q.inflight = None then 0 else 1

let outstanding t =
  Hashtbl.fold
    (fun _ q acc ->
      acc + Queue.length q.pending + if q.inflight = None then 0 else 1)
    t.queues 0

(* Finishing a request and starting the next are one loop step: the
   queue never sits idle between a completion and the next command's
   setup, which is the overlap a queued driver buys. *)
let rec finish t q (rq : request) outcome =
  (match rq.rq_timer with Some tm -> cancel tm | None -> ());
  rq.rq_timer <- None;
  rq.rq_outcome <- Some outcome;
  q.inflight <- None;
  let ok = match outcome with Ok () -> true | Error _ -> false in
  incr t "sched.completions";
  (* Queue-scoped alias of the same count: the name telemetry rates
     and the soak gate key on (sched.queue.completions/s). *)
  incr t "sched.queue.completions";
  (match outcome with
  | Error (Policy.Timeout _) ->
      incr t "sched.timeouts";
      q.last_timeout_rid <- rq.rq_id
  | _ -> ());
  observe t "sched.queue.wait_ticks" (t.clock - rq.rq_submitted);
  emit t
    (Trace.Queue_completed
       {
         dev = rq.rq_dev;
         label = rq.rq_label;
         depth = depth t ~dev:rq.rq_dev;
         ok;
         rid = rq.rq_id;
       });
  Policy.set_current_request rq.rq_id;
  (try rq.rq_on_done outcome
   with e ->
     Policy.set_current_request 0;
     raise e);
  Policy.set_current_request 0;
  start_next t q

and start_next t q =
  if q.inflight = None then
    match Queue.take_opt q.pending with
    | None -> ()
    | Some rq ->
        q.inflight <- Some rq;
        rq.rq_timer <-
          Some
            (after t ~ticks:rq.rq_timeout (fun () ->
                 match q.inflight with
                 | Some r when r == rq && r.rq_outcome = None ->
                     Policy.set_current_request rq.rq_id;
                     (try rq.rq_abort () with _ -> ());
                     Policy.set_current_request 0;
                     finish t q rq (Error (Policy.Timeout rq.rq_label))
                 | _ -> ()));
        emit t
          (Trace.Queue_started
             { dev = rq.rq_dev; label = rq.rq_label; rid = rq.rq_id });
        Policy.set_current_request rq.rq_id;
        let started =
          try
            Policy.guarded ~label:rq.rq_label rq.rq_start;
            Policy.set_current_request 0;
            true
          with
          | Policy.Driver_error e ->
              Policy.set_current_request 0;
              finish t q rq (Error e);
              false
          | e ->
              Policy.set_current_request 0;
              raise e
        in
        ignore started

let submit t ~dev ~label ?timeout ~start ?(abort = Fun.id) ?(on_done = ignore)
    () =
  let timeout =
    match timeout with Some n -> max 1 n | None -> Policy.default_deadline ()
  in
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let rq =
    {
      rq_id = rid;
      rq_dev = dev;
      rq_label = label;
      rq_timeout = timeout;
      rq_start = start;
      rq_abort = abort;
      rq_on_done = on_done;
      rq_submitted = t.clock;
      rq_outcome = None;
      rq_timer = None;
    }
  in
  let q = queue_of t dev in
  Queue.add rq q.pending;
  incr t "sched.submits";
  let d = depth t ~dev in
  observe t "sched.queue.depth" d;
  emit t (Trace.Queue_submitted { dev; label; depth = d; rid });
  start_next t q;
  rq

let request_id rq = rq.rq_id

let complete t ~dev outcome =
  match Hashtbl.find_opt t.queues dev with
  | Some ({ inflight = Some rq; _ } as q) -> finish t q rq outcome
  | Some q ->
      incr t "sched.irqs.unhandled";
      emit t (Trace.Queue_late { dev; rid = q.last_timeout_rid });
      q.last_timeout_rid <- 0
  | None ->
      incr t "sched.irqs.unhandled";
      emit t (Trace.Queue_late { dev; rid = 0 })

(* {1 The loop} *)

let sample_sources t =
  List.iter
    (fun src ->
      let high = src.src_asserted () in
      if high then begin
        if not src.src_high then begin
          incr t "sched.irqs.raised";
          match t.trace with
          | None -> ()
          | Some tr ->
              Trace.emit tr
                (Trace.Irq_raised
                   {
                     line = src.src_line;
                     dev = src.src_dev;
                     rid = inflight_rid t src.src_dev;
                   })
        end;
        t.ctl.ctl_raise ~line:src.src_line
      end;
      src.src_high <- high)
    t.sources

(* One acknowledge/dispatch/EOI exchange. The acknowledge and the EOI
   are (typically) bus traffic, so a fault plan can corrupt or abort
   them: a classified failure on this path fails the device's
   in-flight request; a flipped line number lands in the unhandled
   counter and the level-triggered source re-raises next tick. *)
let deliver_one t =
  match t.ctl.ctl_ack () with
  | None ->
      t.int_high <- false;
      false
  | Some line ->
      incr t "sched.irqs.delivered";
      (match Hashtbl.find_opt t.handlers line with
      | None ->
          incr t "sched.irqs.unhandled";
          emit t (Trace.Irq_delivered { line; dev = "?"; rid = 0 })
      | Some (dev, handler) ->
          let rid = inflight_rid t dev in
          (match t.trace with
          | None -> ()
          | Some tr -> Trace.emit tr (Trace.Irq_delivered { line; dev; rid }));
          let run () =
            match t.profile with
            | None -> Policy.guarded ~label:("irq: " ^ dev) handler
            | Some p ->
                Profile.span p ("irq:" ^ dev) (fun () ->
                    Policy.guarded ~label:("irq: " ^ dev) handler)
          in
          Policy.set_current_request rid;
          (try run () with
          | Policy.Driver_error e -> (
              Policy.set_current_request 0;
              incr t "sched.handler_errors";
              match Hashtbl.find_opt t.queues dev with
              | Some ({ inflight = Some rq; _ } as q) -> finish t q rq (Error e)
              | _ -> ())
          | e ->
              Policy.set_current_request 0;
              raise e);
          Policy.set_current_request 0);
      t.ctl.ctl_eoi ~line;
      true

let dispatch t =
  sample_sources t;
  let delivered = ref 0 in
  (try
     while
       t.int_high
       && !delivered < max_deliveries_per_dispatch
       &&
       if deliver_one t then begin
         Stdlib.incr delivered;
         true
       end
       else false
     do
       ()
     done;
     if t.int_high && !delivered >= max_deliveries_per_dispatch then
       incr t "sched.irqs.storms"
   with
  | Policy.Driver_error _ | Fault.Bus_fault _ ->
      (* The acknowledge or EOI itself faulted: delivery is lost this
         pass; the level-triggered sources re-raise on the next tick,
         or the pending request's timer classifies the loss. *)
      incr t "sched.irqs.faults");
  !delivered

let tick t =
  incr t "sched.ticks";
  ignore (dispatch t);
  t.clock <- t.clock + 1;
  run_due_timers t;
  List.iter (fun f -> f ()) t.tickers

let peek rq = rq.rq_outcome

let await t rq =
  while rq.rq_outcome = None do
    tick t
  done;
  match rq.rq_outcome with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Policy.fail e
  | None -> assert false

let drain t =
  while outstanding t > 0 do
    tick t
  done
