(** The event-driven driver scheduler (DESIGN.md §13).

    One deterministic event loop replaces per-driver spin loops for
    completion-signalled operations: devices assert interrupt lines,
    the loop acknowledges the controller, dispatches the registered
    handler, and handlers complete queued requests. Time is the same
    simulated currency {!Policy} uses — {e ticks} — advanced by
    {!tick}; a timer wheel bounds every queued request, and a request
    whose interrupt never arrives fails through exactly the classified
    error path a timed-out poll takes: [Driver_error (Timeout label)].

    The scheduler knows nothing about any concrete interrupt
    controller: it drives an abstract {!controller} of three closures
    (assert a line, acknowledge, end-of-interrupt). The machine layer
    wires these to the simulated 8259A — acknowledge and EOI as real
    bus traffic (the OCW3 poll-command handshake), so interrupt
    delivery itself is traced, counted, fault-injectable and
    replayable like any other I/O the driver performs.

    Interrupt line {e sources} are level-triggered: every tick samples
    each registered source and re-asserts its line while the device
    holds its INT output high. A delivery lost to a transient fault on
    the acknowledge path is therefore re-raised on the next tick —
    drivers recover from lost interrupts without any driver-visible
    retry — while a persistently lost interrupt surfaces as the
    request's classified timeout.

    Metrics vocabulary (when a registry is attached):
    [sched.ticks], [sched.irqs.raised], [sched.irqs.delivered],
    [sched.irqs.unhandled], [sched.irqs.faults], [sched.irqs.storms],
    [sched.submits], [sched.completions] (with its queue-scoped alias
    [sched.queue.completions], the name telemetry windowed rates key
    on), [sched.timeouts],
    [sched.handler_errors]; histograms [sched.queue.depth] (sampled at
    each submit) and [sched.queue.wait_ticks] (virtual ticks from
    submit to completion). Trace events: {!Trace.Irq_raised},
    {!Trace.Irq_delivered}, {!Trace.Queue_submitted},
    {!Trace.Queue_started}, {!Trace.Queue_completed},
    {!Trace.Queue_late}.

    Every submitted request is minted a {e request id} — monotonically
    increasing per scheduler, starting at 1, never reused — threaded
    through each trace event the request causes (submit, start, the
    irq that answers it, completion, and the {!Policy} poll/retry
    events its thunks run, via {!Policy.set_current_request}). The id
    is what lets {!Lifecycle} reconstruct a request's causal arc from
    the flat event stream. *)

type controller = {
  ctl_raise : line:int -> unit;
      (** Assert interrupt request [line] at the controller (a wire,
          not bus traffic). *)
  ctl_ack : unit -> int option;
      (** Acknowledge: the highest-priority pending unmasked line, now
          moved into service — [None] when nothing is pending (a
          spurious check). Typically the 8259A OCW3 poll-command
          sequence, i.e. real bus traffic. *)
  ctl_eoi : line:int -> unit;
      (** End-of-interrupt for [line] (specific EOI). *)
}

type t

val create :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?profile:Profile.t ->
  controller ->
  t

(** {1 Interrupt wiring} *)

val add_source : t -> line:int -> dev:string -> (unit -> bool) -> unit
(** [add_source t ~line ~dev asserted] registers a level-triggered INT
    pin: every tick samples [asserted ()] and raises [line] at the
    controller while it holds. Several sources may share a line
    (wire-OR). [dev] labels the source in traces. *)

val set_handler : t -> line:int -> dev:string -> (unit -> unit) -> unit
(** Registers the interrupt service routine dispatched when [line] is
    acknowledged. One handler per line (the last registration wins).
    The handler runs inside {!Policy.guarded}, so raw faults escaping
    it are classified; a classified error fails [dev]'s in-flight
    request (if any) rather than escaping the loop. *)

val note_int : t -> bool -> unit
(** The controller's INT-output edge: the machine wires the 8259A
    model's INT callback here so the loop only spends acknowledge bus
    cycles when the line is actually high — and re-dispatches
    immediately when an EOI uncovers a queued lower-priority request
    (the hardware re-evaluates; so must we). *)

(** {1 The clock} *)

val now : t -> int
(** The virtual clock, in ticks. *)

type timer

val after : t -> ticks:int -> (unit -> unit) -> timer
(** Arms a one-shot timer [ticks] ticks from now ([ticks] is clamped
    to at least 1). Callbacks run during {!tick}, after interrupt
    dispatch, in (deadline, creation) order. *)

val cancel : timer -> unit

val add_ticker : t -> (unit -> unit) -> unit
(** Registers a per-tick hook — how device models that complete work
    over time (e.g. a DMA engine with latency) advance while the
    driver waits for an interrupt instead of polling. *)

val dispatch : t -> int
(** Samples every source, then — while the controller INT output is
    high — acknowledges, dispatches and EOIs, returning the number of
    interrupts delivered. Bounded per call (an interrupt storm cannot
    hang the loop; see [sched.irqs.storms]). Does not advance the
    clock. *)

val tick : t -> unit
(** One loop iteration: {!dispatch}, advance the clock one tick, fire
    expired timers, run tickers. *)

(** {1 Request queues} *)

type request

val submit :
  t ->
  dev:string ->
  label:string ->
  ?timeout:int ->
  start:(unit -> unit) ->
  ?abort:(unit -> unit) ->
  ?on_done:((unit, Policy.error) result -> unit) ->
  unit ->
  request
(** Enqueues a request on [dev]'s FIFO. The head of the queue is {e in
    flight}: its [start] thunk has been run (issuing the command to
    the hardware) and a timer of [timeout] ticks (default
    {!Policy.default_deadline} — the same budget a poll gets) has been
    armed. When the driver's interrupt handler calls {!complete}, the
    head finishes and the next request starts within the same loop
    iteration — command [k+1]'s setup overlaps the completion
    processing of command [k], which is where the queued driver's
    throughput comes from.

    On timeout the [abort] thunk runs (stop the hardware; its own
    failures are swallowed) and the request fails with
    [Timeout label]. If [start] itself raises, the error is classified
    by {!Policy.guarded}'s rules and the request fails immediately.
    [on_done] is invoked exactly once with the outcome. *)

val complete : t -> dev:string -> (unit, Policy.error) result -> unit
(** Reports the in-flight request of [dev] finished — called from the
    interrupt handler. A completion with no request in flight counts
    as [sched.irqs.unhandled] and emits {!Trace.Queue_late} tagged
    with the id of [dev]'s most recent still-unmatched timed-out
    request (a lost interrupt finally arriving) or 0 when no such
    request exists (a spurious completion); each timeout explains at
    most one late completion. *)

val request_id : request -> int
(** The id minted at {!submit} — monotonically increasing per
    scheduler, starting at 1, never reused. 0 is never a valid id (it
    marks "no request" in trace events). *)

val depth : t -> dev:string -> int
(** Queued plus in-flight requests on [dev]. *)

val outstanding : t -> int
(** Total over all devices — 0 means every submitted request reached
    its [on_done] (the queue-leak invariant the async gate checks). *)

val peek : request -> (unit, Policy.error) result option
(** The request's outcome, or [None] while pending. *)

val await : t -> request -> unit
(** Runs {!tick} until the request finishes; re-raises a failed
    outcome as [Driver_error] — the synchronous rendezvous with the
    same failure taxonomy as a poll. Termination is guaranteed by the
    request's timeout. *)

val drain : t -> unit
(** Runs {!tick} until no request is outstanding. *)
