(** Bounded exhaustive exploration of a workload's decision space
    (DESIGN.md §12).

    The engine enumerates {e schedules} — sorted lists of
    [(slot, choice)] decisions over an abstract choice alphabet — and
    runs a caller-supplied closure under each one, depth-first over
    schedule prefixes up to a fault [budget] and a slot [depth]. The
    traversal is prefix-closed (iterative deepening: every schedule
    runs before any of its extensions), fully deterministic, and
    resumable from any schedule in visit order ([resume_after]).

    Three prunes bound the walk without sacrificing exhaustiveness
    within the stated bound:

    - {e horizons}: slots a choice's workload traffic never reaches
      are skipped, not run;
    - {e feasibility}: a run in which not every decision fired behaved
      like an already-explored shorter schedule and is not extended;
    - {e state-hash dedup}: subtrees whose end-state fingerprint was
      already seen are not re-extended.

    The domain lives entirely in the [run] closure — see the
    [Excamp] campaign layer for the bus/fault/policy instantiation. *)

type 'c decision = { slot : int; choice : 'c }
(** One scheduled decision: take [choice] at its [slot]-th opportunity
    (0-based; the slot's meaning — covered bus operation, poll
    ordinal — is per-choice and defined by the campaign layer). *)

type 'c schedule = 'c decision list
(** Sorted by strictly increasing slot. *)

type 'c outcome = {
  oc_ok : bool;  (** All invariants held. *)
  oc_detail : string;  (** Verdict or violation description. *)
  oc_fired : int;  (** Decisions that actually took effect. *)
  oc_state : int;  (** End-state fingerprint for subtree dedup. *)
  oc_horizon : 'c -> int;
      (** Slots this run offered per choice. Must not shrink when an
          unrelated later decision is added (prefix horizons bound
          extension slots). *)
}

type 'c violation = { vx_schedule : 'c schedule; vx_detail : string }

type 'c report = {
  rp_runs : int;  (** Workload executions performed. *)
  rp_infeasible : int;  (** Runs where some decision never fired. *)
  rp_deduped : int;  (** Runs not extended: fingerprint already seen. *)
  rp_pruned : int;  (** Candidate schedules skipped by horizons. *)
  rp_distinct : int;  (** Distinct end-state fingerprints. *)
  rp_violations : 'c violation list;  (** In discovery order. *)
  rp_last : 'c schedule option;
      (** Last schedule run — the [resume_after] for a continuation. *)
}

val explore :
  depth:int ->
  budget:int ->
  choices:'c list ->
  run:('c schedule -> 'c outcome) ->
  ?max_violations:int ->
  ?resume_after:'c schedule ->
  ?on_run:('c schedule -> 'c outcome -> unit) ->
  unit ->
  'c report
(** [explore ~depth ~budget ~choices ~run ()] runs the empty schedule,
    then every feasible, non-deduped schedule of up to [budget]
    decisions over slots [0 .. depth-1], in deterministic prefix
    order. Stops early after [max_violations] violations. With
    [resume_after] (a schedule in visit order, e.g. [rp_last] of an
    interrupted exploration) the walk re-runs only that schedule's
    prefixes (silently, to rebuild horizons and fingerprints) and
    resumes reporting strictly after it. [on_run] observes every
    execution — progress meters, schedules/s. *)

val shrink :
  run:('c schedule -> 'c outcome) -> 'c schedule -> 'c schedule * int
(** [shrink ~run sched] minimizes a failing schedule while preserving
    failure (with every decision firing): greedy decision dropping to
    a 1-minimal core, then per-decision binary search for the earliest
    failing slot. Returns the minimized schedule and the number of
    candidate runs spent. A schedule that does not fail (or whose
    decisions do not all fire) is returned unchanged. *)

val compare_schedules : choices:'c list -> 'c schedule -> 'c schedule -> int
(** The engine's visit order: lexicographic by decision, each decision
    by (slot, index of choice in [choices]). *)

val pp_schedule :
  (Format.formatter -> 'c -> unit) -> Format.formatter -> 'c schedule -> unit
