(** The online protocol monitor (DESIGN.md §10).

    A trace-stream checker that re-derives, from the IR alone, the
    interface disciplines the stub compiler is supposed to uphold, and
    asserts them as events arrive:

    - {b serialization}: after a [Serialized] event announces a write
      order, the writes to the listed registers must occur in that
      relative order (writes to other registers may interleave);
    - {b trigger-neutral}: a register carrying a write-trigger sibling
      with a declared exempt value must be rewritten with the
      sibling's neutral bits — unless the preceding [Var_write] /
      [Struct_write] announced the trigger variable itself as a
      writer;
    - {b volatile-refresh}: rewriting a register with a volatile
      sibling (readable, no read-trigger sibling, sibling not itself
      rewritten) requires a fresh [Reg_read] since the register's last
      write, or stale cached bits get written back.

    Because the rules are derived independently of both runtime
    engines, the monitor serves as a third oracle in the differential
    tests: clean runs must produce zero violations on every spec.

    The monitor is a pure consumer: it never touches the bus and can
    check a live trace ({!attach}, O(1) per event via
    {!Trace.subscribe}) or a persisted one ({!feed_all}). *)

type violation = {
  vl_seq : int;  (** sequence number of the offending event *)
  vl_dev : string;
  vl_rule : string;
      (** ["serialization"], ["trigger-neutral"] or
          ["volatile-refresh"] *)
  vl_detail : string;
}

type t

val create : devices:(string * Devil_ir.Ir.device) list -> t
(** [create ~devices] — one [(label, device)] pair per instance whose
    events should be checked; events for unknown labels (and for
    runtime template instances absent from [d_regs]) are ignored. *)

val feed : t -> Trace.event -> unit
val feed_all : t -> Trace.event list -> unit

val attach : t -> Trace.t -> unit
(** Subscribes {!feed} to a live trace. *)

val violations : t -> violation list
(** Violations so far, in detection order. *)

val violation_count : t -> int

val clear : t -> unit
(** Forgets violations and all per-device stream state (pending
    writers, freshness, serialization expectations). Invariants added
    with {!register} / {!register_final} are kept, so one monitor can
    be cleared and reused across many explored schedules. *)

(** {1 Custom invariants}

    Beyond the three IR-derived rules, callers — the exploration
    engine in particular — can register their own invariants. A
    per-event invariant sees every fed event and returns [Some detail]
    to record a violation under its registered rule name; an
    end-of-run invariant is evaluated once by {!finalize} (with
    sequence number [-1], there being no offending event). *)

val register : t -> name:string -> (seq:int -> Trace.kind -> string option) -> unit
(** Add a per-event invariant, run (in registration order) on every
    event before the built-in rules. *)

val register_final : t -> name:string -> (unit -> string option) -> unit
(** Add an end-of-run invariant. *)

val finalize : t -> unit
(** Evaluate the end-of-run invariants, recording any violations. Call
    once per run, after the workload completes. *)

val pp_violation : Format.formatter -> violation -> unit
