(** Deterministic fault injection under the bus abstraction.

    A fault injector wraps a {!Bus.t} and perturbs the traffic that
    flows through it according to a set of address-scoped {e plans}.
    Everything is driven by a seedable splittable PRNG, so a campaign
    run is exactly reproducible from its seed: the same driver workload
    over the same plans always sees the same faults at the same
    operations.

    The injector models the hardware-side failure modes the Devil
    runtime's software checks cannot see on a perfect simulator:
    - {e stuck-at} bits (a pin shorted high or low),
    - {e bit flips} on read data (bus noise, marginal timing),
    - {e dropped} and {e duplicated} writes (posted-write bridges
      misbehaving),
    - {e transient bus faults} surfaced as a {!Bus_fault} exception
      (master abort / target abort).

    Every fired fault is counted per plan and appended to an
    inspectable injection trace — a bounded ring buffer
    ({!Trace.Ring}), so arbitrarily long campaigns retain the most
    recent injections at constant space; tests and the fault campaign
    can still distinguish "nothing fired" from "fired and the driver
    coped" through the per-plan counters, which are never evicted. *)

exception Bus_fault of string
(** A transient bus-level failure ({!Bus.Bus_fault} re-exported: the
    injector and the bus raise the same exception). Drivers recover
    from these with the {!Policy} combinators; an escaped [Bus_fault]
    means the driver has no error path for the access that raised
    it. *)

type op = Read | Write

type kind =
  | Stuck_bits of { and_mask : int; or_mask : int }
      (** Values are rewritten to [(v land and_mask) lor or_mask] —
          stuck-at-0 via a cleared [and_mask] bit, stuck-at-1 via a set
          [or_mask] bit. Fires (and counts) only when the rewrite
          changes the value. Deterministic: no probability draw. *)
  | Flip_bits of { mask : int; probability : float }
      (** XORs [mask] into the value with the given per-operation
          probability. *)
  | Drop_write of { probability : float }
      (** The write never reaches the device; the caller cannot tell. *)
  | Duplicate_write of { probability : float }
      (** The write is performed twice — harmless on idempotent
          registers, destructive on triggers and data FIFOs. *)
  | Transient of { probability : float }
      (** The operation raises {!Bus_fault} {e before} touching the
          device, so a retry observes a clean device state. *)

type plan = {
  label : string;  (** Names the plan in traces and counters. *)
  first : int;  (** First address covered (inclusive). *)
  last : int;  (** Last address covered (inclusive). *)
  ops : op list;  (** Which directions the plan applies to. *)
  kind : kind;
  budget : int option;
      (** Maximum number of injections; [None] is unlimited. A budget
          turns a plan into a burst — e.g. "the first two transfers
          fault, then the device behaves" — which is how recovery is
          demonstrated deterministically. *)
}

val plan :
  ?ops:op list -> ?budget:int -> label:string -> first:int -> last:int ->
  kind -> plan
(** Plan constructor; [ops] defaults to both directions. *)

type event = {
  seq : int;  (** Global operation sequence number when the fault fired. *)
  plan_label : string;
  op : op;
  addr : int;
  width : int;
  detail : string;  (** Human-readable description of the mutation. *)
}

type t

val wrap :
  ?seed:int ->
  ?trace_capacity:int ->
  ?sink:Trace.t ->
  ?metrics:Metrics.t ->
  plans:plan list ->
  Bus.t ->
  t
(** [wrap ~seed ~plans bus] builds an injector over [bus]. With an
    empty plan list the wrapped bus is observationally identical to
    [bus]. The default seed is 0. The injection trace retains the last
    [trace_capacity] events (default {!Trace.default_capacity}). When
    [sink] is given every injection is also mirrored into that unified
    trace as a {!Trace.Fault_injected} event; when [metrics] is given
    the [fault.injections] and [fault.<plan>.injections] counters are
    maintained. *)

(** {1 Scheduled (exhaustive-exploration) mode}

    The deterministic counterpart of a plan: instead of a probability
    draw, an {!injection} names the exact covered operation — the
    [at]-th access (0-based) matching its direction and address window
    — that must fault. Probability fields inside the {!kind} are
    ignored; a scheduled decision always takes effect when its ordinal
    is reached. Block transfers count one covered operation per
    element, and a scheduled [Transient] aborts the whole burst before
    the device is touched, exactly like the seeded mode. This is the
    injection surface {!Explore} enumerates. *)

type injection = {
  sx_label : string;  (** Names the decision in traces and counters. *)
  sx_op : op;
  sx_at : int;  (** 0-based ordinal among the covered operations. *)
  sx_first : int;  (** First address covered (inclusive). *)
  sx_last : int;  (** Last address covered (inclusive). *)
  sx_kind : kind;
}

val injection :
  ?label:string -> op:op -> at:int -> first:int -> last:int -> kind ->
  injection
(** Constructor; the default label encodes direction, first address
    and ordinal. Raises [Invalid_argument] on an empty window or a
    negative ordinal. *)

val scheduled :
  ?trace_capacity:int ->
  ?sink:Trace.t ->
  ?metrics:Metrics.t ->
  injections:injection list ->
  Bus.t ->
  t
(** [scheduled ~injections bus] builds a schedule-driven injector: no
    PRNG, no plans — every listed decision fires exactly once when (and
    only when) its ordinal is reached. An injection whose ordinal lies
    beyond the traffic the workload generates simply never fires
    ({!scheduled_misses}); the explorer uses that, plus {!seen_for}, to
    bound its search to feasible schedules. *)

val scheduled_hits : t -> int
(** Scheduled decisions that took effect so far. *)

val scheduled_misses : t -> injection list
(** Scheduled decisions whose ordinal was never reached. *)

val seen_for : t -> string -> int
(** Covered operations counted so far by the injection(s) with the
    given label (the maximum across duplicates) — the per-site traffic
    horizon: an ordinal at or beyond it can never fire on this
    workload. An injection with [at = max_int] is a pure probe that
    counts without ever firing. *)

val bus : t -> Bus.t
(** The faulty bus to hand to drivers and instances. *)

val operations : t -> int
(** Total bus operations (block elements counted individually) that
    flowed through the injector. *)

val injection_count : t -> int
(** Total faults fired across all plans and scheduled injections. *)

val injections_for : t -> string -> int
(** Faults fired by the plans or injections with the given label. *)

val events : t -> event list
(** The retained injection trace, oldest first. At most the trace
    capacity given to {!wrap}; older events are evicted, never the
    counters. *)

val dropped_events : t -> int
(** Injection events evicted by the trace bound. *)

val reset : t -> unit
(** Rewinds the injector to its initial state: counters and the trace
    are cleared, plan budgets restored to their initial allowance,
    scheduled decisions re-armed, and the PRNG rewound to the seed — so
    one injector can be reused across thousands of explored schedules
    and a reset run reproduces the original exactly. *)

type snapshot
(** A point-in-time capture of the injector's mutable state: PRNG
    position, operation count, per-plan budgets and counters, and
    per-injection progress. The injection trace ring is {e not}
    captured. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewinds the injector to a {!snapshot} taken from the same injector
    (same plans, same injections — [Invalid_argument] otherwise). The
    injection trace ring is cleared, since events after the snapshot
    cannot be un-evicted. *)

val pp_event : Format.formatter -> event -> unit
