(* Persistence for traces and bus tapes: versioned JSONL, Chrome
   about://tracing JSON, and the minimal JSON reader/writer they share
   (no external dependency carries one). *)

let version = 1

(* {1 A minimal JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec render b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          render b x)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          render b v)
        fields;
      Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 256 in
  render b j;
  Buffer.contents b

exception Parse_error of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               (* Only the codepoints our own escaper emits need to
                  round-trip; others are stored as '?'. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else Buffer.add_char b '?';
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "number out of range"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "at %d: trailing input" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* {1 Typed accessors over parsed JSON} *)

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error (Printf.sprintf "expected an object with field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let as_int name j =
  let* v = field name j in
  match v with
  | Int n -> Ok n
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let as_string name j =
  let* v = field name j in
  match v with
  | String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let as_bool name j =
  let* v = field name j in
  match v with
  | Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a boolean" name)

let as_string_list name j =
  let* v = field name j in
  match v with
  | List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | String s -> Ok (s :: acc)
          | _ -> Error (Printf.sprintf "field %S holds a non-string" name))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "field %S is not an array" name)

let as_int_list name j =
  let* v = field name j in
  match v with
  | List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Int n -> Ok (n :: acc)
          | _ -> Error (Printf.sprintf "field %S holds a non-integer" name))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "field %S is not an array" name)

(* {1 Trace events <-> JSON} *)

let kind_to_json (k : Trace.kind) =
  let tag t rest = Obj (("kind", String t) :: rest) in
  (* The request id is only written when present, so traces recorded
     before the scheduler existed (and events not on behalf of any
     queued request) serialize byte-identically to format version 1
     files from older builds. *)
  let with_rid rid fields = if rid > 0 then fields @ [ ("rid", Int rid) ] else fields in
  match k with
  | Bus_read { addr; width; value } ->
      tag "bus_read" [ ("addr", Int addr); ("width", Int width); ("value", Int value) ]
  | Bus_write { addr; width; value } ->
      tag "bus_write" [ ("addr", Int addr); ("width", Int width); ("value", Int value) ]
  | Bus_block_read { addr; width; count } ->
      tag "bus_block_read" [ ("addr", Int addr); ("width", Int width); ("count", Int count) ]
  | Bus_block_write { addr; width; count } ->
      tag "bus_block_write" [ ("addr", Int addr); ("width", Int width); ("count", Int count) ]
  | Reg_read { dev; reg; raw } ->
      tag "reg_read" [ ("dev", String dev); ("reg", String reg); ("raw", Int raw) ]
  | Reg_write { dev; reg; raw } ->
      tag "reg_write" [ ("dev", String dev); ("reg", String reg); ("raw", Int raw) ]
  | Var_read { dev; var } -> tag "var_read" [ ("dev", String dev); ("var", String var) ]
  | Var_write { dev; var; regs } ->
      tag "var_write"
        [ ("dev", String dev); ("var", String var);
          ("regs", List (List.map (fun r -> String r) regs)) ]
  | Struct_write { dev; strct; fields; regs } ->
      tag "struct_write"
        [ ("dev", String dev); ("struct", String strct);
          ("fields", List (List.map (fun f -> String f) fields));
          ("regs", List (List.map (fun r -> String r) regs)) ]
  | Cache_hit { dev; reg } -> tag "cache_hit" [ ("dev", String dev); ("reg", String reg) ]
  | Cache_miss { dev; reg } -> tag "cache_miss" [ ("dev", String dev); ("reg", String reg) ]
  | Cache_invalidated { dev } -> tag "cache_invalidated" [ ("dev", String dev) ]
  | Action { dev; owner; phase; assignments } ->
      tag "action"
        [ ("dev", String dev); ("owner", String owner);
          ("phase", String (Trace.phase_label phase));
          ("assignments", Int assignments) ]
  | Serialized { dev; owner; order } ->
      tag "serialized"
        [ ("dev", String dev); ("owner", String owner);
          ("order", List (List.map (fun r -> String r) order)) ]
  | Poll { label; iters; ok; rid } ->
      tag "poll"
        (with_rid rid
           [ ("label", String label); ("iters", Int iters); ("ok", Bool ok) ])
  | Retry { label; attempt; reason; rid } ->
      tag "retry"
        (with_rid rid
           [ ("label", String label); ("attempt", Int attempt);
             ("reason", String reason) ])
  | Fault_injected { plan; addr; width; detail } ->
      tag "fault_injected"
        [ ("plan", String plan); ("addr", Int addr); ("width", Int width);
          ("detail", String detail) ]
  | Irq_raised { line; dev; rid } ->
      tag "irq_raised" (with_rid rid [ ("line", Int line); ("dev", String dev) ])
  | Irq_delivered { line; dev; rid } ->
      tag "irq_delivered"
        (with_rid rid [ ("line", Int line); ("dev", String dev) ])
  | Queue_submitted { dev; label; depth; rid } ->
      tag "queue_submitted"
        (with_rid rid
           [ ("dev", String dev); ("label", String label); ("depth", Int depth) ])
  | Queue_started { dev; label; rid } ->
      tag "queue_started"
        (with_rid rid [ ("dev", String dev); ("label", String label) ])
  | Queue_completed { dev; label; depth; ok; rid } ->
      tag "queue_completed"
        (with_rid rid
           [ ("dev", String dev); ("label", String label); ("depth", Int depth);
             ("ok", Bool ok) ])
  | Queue_late { dev; rid } ->
      tag "queue_late" (with_rid rid [ ("dev", String dev) ])

let event_to_json (e : Trace.event) =
  match kind_to_json e.kind with
  | Obj fields -> Obj (("seq", Int e.seq) :: fields)
  | _ -> assert false

let kind_of_json j : (Trace.kind, string) result =
  let* tag = as_string "kind" j in
  (* Absent on events recorded before request ids existed (and on
     events with no request attribution), so default to 0 rather than
     bumping the format version. *)
  let rid = match as_int "rid" j with Ok n when n > 0 -> n | _ -> 0 in
  match tag with
  | "bus_read" ->
      let* addr = as_int "addr" j in
      let* width = as_int "width" j in
      let* value = as_int "value" j in
      Ok (Trace.Bus_read { addr; width; value })
  | "bus_write" ->
      let* addr = as_int "addr" j in
      let* width = as_int "width" j in
      let* value = as_int "value" j in
      Ok (Trace.Bus_write { addr; width; value })
  | "bus_block_read" ->
      let* addr = as_int "addr" j in
      let* width = as_int "width" j in
      let* count = as_int "count" j in
      Ok (Trace.Bus_block_read { addr; width; count })
  | "bus_block_write" ->
      let* addr = as_int "addr" j in
      let* width = as_int "width" j in
      let* count = as_int "count" j in
      Ok (Trace.Bus_block_write { addr; width; count })
  | "reg_read" ->
      let* dev = as_string "dev" j in
      let* reg = as_string "reg" j in
      let* raw = as_int "raw" j in
      Ok (Trace.Reg_read { dev; reg; raw })
  | "reg_write" ->
      let* dev = as_string "dev" j in
      let* reg = as_string "reg" j in
      let* raw = as_int "raw" j in
      Ok (Trace.Reg_write { dev; reg; raw })
  | "var_read" ->
      let* dev = as_string "dev" j in
      let* var = as_string "var" j in
      Ok (Trace.Var_read { dev; var })
  | "var_write" ->
      let* dev = as_string "dev" j in
      let* var = as_string "var" j in
      let* regs = as_string_list "regs" j in
      Ok (Trace.Var_write { dev; var; regs })
  | "struct_write" ->
      let* dev = as_string "dev" j in
      let* strct = as_string "struct" j in
      let* fields = as_string_list "fields" j in
      let* regs = as_string_list "regs" j in
      Ok (Trace.Struct_write { dev; strct; fields; regs })
  | "cache_hit" ->
      let* dev = as_string "dev" j in
      let* reg = as_string "reg" j in
      Ok (Trace.Cache_hit { dev; reg })
  | "cache_miss" ->
      let* dev = as_string "dev" j in
      let* reg = as_string "reg" j in
      Ok (Trace.Cache_miss { dev; reg })
  | "cache_invalidated" ->
      let* dev = as_string "dev" j in
      Ok (Trace.Cache_invalidated { dev })
  | "action" ->
      let* dev = as_string "dev" j in
      let* owner = as_string "owner" j in
      let* phase_s = as_string "phase" j in
      let* assignments = as_int "assignments" j in
      let* phase =
        match phase_s with
        | "pre" -> Ok Trace.Pre
        | "post" -> Ok Trace.Post
        | "set" -> Ok Trace.Set
        | p -> Error (Printf.sprintf "unknown action phase %S" p)
      in
      Ok (Trace.Action { dev; owner; phase; assignments })
  | "serialized" ->
      let* dev = as_string "dev" j in
      let* owner = as_string "owner" j in
      let* order = as_string_list "order" j in
      Ok (Trace.Serialized { dev; owner; order })
  | "poll" ->
      let* label = as_string "label" j in
      let* iters = as_int "iters" j in
      let* ok = as_bool "ok" j in
      Ok (Trace.Poll { label; iters; ok; rid })
  | "retry" ->
      let* label = as_string "label" j in
      let* attempt = as_int "attempt" j in
      let* reason = as_string "reason" j in
      Ok (Trace.Retry { label; attempt; reason; rid })
  | "fault_injected" ->
      let* plan = as_string "plan" j in
      let* addr = as_int "addr" j in
      let* width = as_int "width" j in
      let* detail = as_string "detail" j in
      Ok (Trace.Fault_injected { plan; addr; width; detail })
  | "irq_raised" ->
      let* line = as_int "line" j in
      let* dev = as_string "dev" j in
      Ok (Trace.Irq_raised { line; dev; rid })
  | "irq_delivered" ->
      let* line = as_int "line" j in
      let* dev = as_string "dev" j in
      Ok (Trace.Irq_delivered { line; dev; rid })
  | "queue_submitted" ->
      let* dev = as_string "dev" j in
      let* label = as_string "label" j in
      let* depth = as_int "depth" j in
      Ok (Trace.Queue_submitted { dev; label; depth; rid })
  | "queue_started" ->
      let* dev = as_string "dev" j in
      let* label = as_string "label" j in
      Ok (Trace.Queue_started { dev; label; rid })
  | "queue_completed" ->
      let* dev = as_string "dev" j in
      let* label = as_string "label" j in
      let* depth = as_int "depth" j in
      let* ok = as_bool "ok" j in
      Ok (Trace.Queue_completed { dev; label; depth; ok; rid })
  | "queue_late" ->
      let* dev = as_string "dev" j in
      Ok (Trace.Queue_late { dev; rid })
  | t -> Error (Printf.sprintf "unknown event kind %S" t)

let event_of_json j : (Trace.event, string) result =
  let* seq = as_int "seq" j in
  let* kind = kind_of_json j in
  Ok { Trace.seq; kind }

(* {1 The JSONL trace file} *)

let header = Obj [ ("devil_trace_version", Int version) ]

let events_to_jsonl events =
  let b = Buffer.create 4096 in
  Buffer.add_string b (json_to_string header);
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (json_to_string (event_to_json e));
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let to_jsonl trace = events_to_jsonl (Trace.events trace)

let lines_of s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")

let check_header ~key lines =
  match lines with
  | [] -> Error "empty file"
  | first :: rest -> (
      let* j = json_of_string first in
      match as_int key j with
      | Ok v when v = version -> Ok rest
      | Ok v ->
          Error
            (Printf.sprintf "unsupported %s %d (this build reads version %d)"
               key v version)
      | Error _ ->
          Error (Printf.sprintf "first line is not a %s header" key))

let events_of_jsonl s =
  let* body = check_header ~key:"devil_trace_version" (lines_of s) in
  List.fold_left
    (fun acc line ->
      let* acc = acc in
      let* j = json_of_string line in
      let* e = event_of_json j in
      Ok (e :: acc))
    (Ok []) body
  |> Result.map List.rev

(* {1 Chrome about://tracing JSON} *)

(* Events become a Chrome trace: one pid, one tid per instance label
   (bus/policy/fault events land on a shared "bus" thread), sequence
   numbers as microsecond timestamps. Polls, retries and block
   transfers render as duration spans ("X" phase: a poll spans its
   iteration count, a block its element count) so waiting and bulk
   movement are visible as width; everything else is an instant.

   Events carrying a request id additionally emit a flow event (the
   "s"/"t"/"f" phases, id = the request id) on the same thread and
   timestamp, so Chrome draws an arrow chain following each queued
   request from its submit through start/irq/poll steps to its
   completion — across the device and scheduler tracks. *)
let to_chrome events =
  let tids = Hashtbl.create 8 in
  let names = ref [] in
  let tid_of label =
    match Hashtbl.find_opt tids label with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tids + 1 in
        Hashtbl.add tids label t;
        names := (label, t) :: !names;
        t
  in
  let entry ?(ph = "i") ?dur ~name ~cat ~ts ~tid args =
    let base =
      [ ("name", String name); ("cat", String cat); ("ph", String ph);
        ("ts", Int ts); ("pid", Int 1); ("tid", Int tid) ]
    in
    let base = match dur with Some d -> base @ [ ("dur", Int d) ] | None -> base in
    let base = if ph = "i" then base @ [ ("s", String "t") ] else base in
    Obj (base @ [ ("args", Obj args) ])
  in
  let flow ~ph ~ts ~tid rid =
    let base =
      [ ("name", String (Printf.sprintf "req #%d" rid));
        ("cat", String "lifecycle"); ("ph", String ph); ("id", Int rid);
        ("ts", Int ts); ("pid", Int 1); ("tid", Int tid) ]
    in
    (* "bp":"e" binds the flow end to the enclosing slice. *)
    Obj (if ph = "f" then base @ [ ("bp", String "e") ] else base)
  in
  (* Which flow phase (if any) an event contributes to its request's
     arc: the submit starts the flow, the completion ends it,
     everything in between is a step. The flow id is the request id —
     unique per request by construction. *)
  let flow_of (k : Trace.kind) =
    match k with
    | Queue_submitted { rid; dev; _ } when rid > 0 -> Some ("s", dev, rid)
    | Queue_started { rid; dev; _ } when rid > 0 -> Some ("t", dev, rid)
    | Queue_late { rid; dev } when rid > 0 -> Some ("t", dev, rid)
    | Irq_raised { rid; _ } when rid > 0 -> Some ("t", "sched", rid)
    | Irq_delivered { rid; _ } when rid > 0 -> Some ("t", "sched", rid)
    | Poll { rid; _ } when rid > 0 -> Some ("t", "policy", rid)
    | Retry { rid; _ } when rid > 0 -> Some ("t", "policy", rid)
    | Queue_completed { rid; dev; _ } when rid > 0 -> Some ("f", dev, rid)
    | _ -> None
  in
  let rows =
    List.concat_map
      (fun (e : Trace.event) ->
        let ts = e.seq in
        let main =
          match e.kind with
        | Bus_read { addr; width; value } ->
            entry ~name:(Printf.sprintf "R%d [%#x]" width addr) ~cat:"bus"
              ~ts ~tid:(tid_of "bus") [ ("value", Int value) ]
        | Bus_write { addr; width; value } ->
            entry ~name:(Printf.sprintf "W%d [%#x]" width addr) ~cat:"bus"
              ~ts ~tid:(tid_of "bus") [ ("value", Int value) ]
        | Bus_block_read { addr; width; count } ->
            entry ~ph:"X" ~dur:(max 1 count)
              ~name:(Printf.sprintf "R%d block [%#x]" width addr) ~cat:"bus"
              ~ts ~tid:(tid_of "bus") [ ("count", Int count) ]
        | Bus_block_write { addr; width; count } ->
            entry ~ph:"X" ~dur:(max 1 count)
              ~name:(Printf.sprintf "W%d block [%#x]" width addr) ~cat:"bus"
              ~ts ~tid:(tid_of "bus") [ ("count", Int count) ]
        | Reg_read { dev; reg; raw } ->
            entry ~name:("read " ^ reg) ~cat:"reg" ~ts ~tid:(tid_of dev)
              [ ("raw", Int raw) ]
        | Reg_write { dev; reg; raw } ->
            entry ~name:("write " ^ reg) ~cat:"reg" ~ts ~tid:(tid_of dev)
              [ ("raw", Int raw) ]
        | Var_read { dev; var } ->
            entry ~name:("get " ^ var) ~cat:"var" ~ts ~tid:(tid_of dev) []
        | Var_write { dev; var; regs } ->
            entry ~name:("set " ^ var) ~cat:"var" ~ts ~tid:(tid_of dev)
              [ ("regs", List (List.map (fun r -> String r) regs)) ]
        | Struct_write { dev; strct; fields; regs } ->
            entry ~name:("set struct " ^ strct) ~cat:"var" ~ts ~tid:(tid_of dev)
              [ ("fields", List (List.map (fun f -> String f) fields));
                ("regs", List (List.map (fun r -> String r) regs)) ]
        | Cache_hit { dev; reg } ->
            entry ~name:("cache hit " ^ reg) ~cat:"cache" ~ts ~tid:(tid_of dev) []
        | Cache_miss { dev; reg } ->
            entry ~name:("cache miss " ^ reg) ~cat:"cache" ~ts ~tid:(tid_of dev) []
        | Cache_invalidated { dev } ->
            entry ~name:"cache invalidated" ~cat:"cache" ~ts ~tid:(tid_of dev) []
        | Action { dev; owner; phase; assignments } ->
            entry
              ~name:(Printf.sprintf "%s-action %s" (Trace.phase_label phase) owner)
              ~cat:"action" ~ts ~tid:(tid_of dev)
              [ ("assignments", Int assignments) ]
        | Serialized { dev; owner; order } ->
            entry ~name:("serialized " ^ owner) ~cat:"action" ~ts ~tid:(tid_of dev)
              [ ("order", List (List.map (fun r -> String r) order)) ]
        | Poll { label; iters; ok; rid = _ } ->
            entry ~ph:"X" ~dur:(max 1 iters) ~name:("poll " ^ label)
              ~cat:"policy" ~ts ~tid:(tid_of "policy")
              [ ("iters", Int iters); ("ok", Bool ok) ]
        | Retry { label; attempt; reason; rid = _ } ->
            entry ~ph:"X" ~dur:1 ~name:("retry " ^ label) ~cat:"policy" ~ts
              ~tid:(tid_of "policy")
              [ ("attempt", Int attempt); ("reason", String reason) ]
        | Fault_injected { plan; addr; width; detail } ->
            entry ~name:("fault " ^ plan) ~cat:"fault" ~ts ~tid:(tid_of "fault")
              [ ("addr", Int addr); ("width", Int width); ("detail", String detail) ]
        | Irq_raised { line; dev; rid = _ } ->
            entry ~name:(Printf.sprintf "irq %d raised" line) ~cat:"irq" ~ts
              ~tid:(tid_of "sched") [ ("dev", String dev) ]
        | Irq_delivered { line; dev; rid = _ } ->
            entry ~name:(Printf.sprintf "irq %d -> %s" line dev) ~cat:"irq"
              ~ts ~tid:(tid_of "sched") [ ("dev", String dev) ]
        | Queue_submitted { dev; label; depth; rid = _ } ->
            entry ~name:("submit " ^ label) ~cat:"queue" ~ts ~tid:(tid_of dev)
              [ ("depth", Int depth) ]
        | Queue_started { dev; label; rid = _ } ->
            entry ~name:("start " ^ label) ~cat:"queue" ~ts ~tid:(tid_of dev) []
        | Queue_completed { dev; label; depth; ok; rid = _ } ->
            entry ~ph:"X" ~dur:1 ~name:("complete " ^ label) ~cat:"queue" ~ts
              ~tid:(tid_of dev)
              [ ("depth", Int depth); ("ok", Bool ok) ]
        | Queue_late { dev; rid } ->
            entry
              ~name:
                (if rid > 0 then Printf.sprintf "late completion (req #%d)" rid
                 else "spurious completion")
              ~cat:"queue" ~ts ~tid:(tid_of dev)
              [ ("rid", Int rid) ]
        in
        match flow_of e.kind with
        | None -> [ main ]
        | Some (ph, tlabel, rid) ->
            [ main; flow ~ph ~ts ~tid:(tid_of tlabel) rid ])
      events
  in
  let metadata =
    List.rev_map
      (fun (label, tid) ->
        Obj
          [ ("name", String "thread_name"); ("ph", String "M"); ("pid", Int 1);
            ("tid", Int tid); ("args", Obj [ ("name", String label) ]) ])
      !names
  in
  json_to_string (Obj [ ("traceEvents", List (metadata @ rows)) ])

(* {1 Bus tapes <-> JSONL} *)

let transfer_to_json (tr : Bus.transfer) =
  match tr with
  | T_read { width; addr; value } ->
      Obj [ ("op", String "read"); ("width", Int width); ("addr", Int addr);
            ("value", Int value) ]
  | T_write { width; addr; value } ->
      Obj [ ("op", String "write"); ("width", Int width); ("addr", Int addr);
            ("value", Int value) ]
  | T_read_block { width; addr; values } ->
      Obj [ ("op", String "read_block"); ("width", Int width); ("addr", Int addr);
            ("values", List (List.map (fun v -> Int v) (Array.to_list values))) ]
  | T_write_block { width; addr; values } ->
      Obj [ ("op", String "write_block"); ("width", Int width); ("addr", Int addr);
            ("values", List (List.map (fun v -> Int v) (Array.to_list values))) ]
  | T_fault { op; width; addr; message } ->
      Obj [ ("op", String "fault"); ("on", String op); ("width", Int width);
            ("addr", Int addr); ("message", String message) ]

let transfer_of_json j : (Bus.transfer, string) result =
  let* op = as_string "op" j in
  let* width = as_int "width" j in
  let* addr = as_int "addr" j in
  match op with
  | "read" ->
      let* value = as_int "value" j in
      Ok (Bus.T_read { width; addr; value })
  | "write" ->
      let* value = as_int "value" j in
      Ok (Bus.T_write { width; addr; value })
  | "read_block" ->
      let* values = as_int_list "values" j in
      Ok (Bus.T_read_block { width; addr; values = Array.of_list values })
  | "write_block" ->
      let* values = as_int_list "values" j in
      Ok (Bus.T_write_block { width; addr; values = Array.of_list values })
  | "fault" ->
      let* on = as_string "on" j in
      let* message = as_string "message" j in
      Ok (Bus.T_fault { op = on; width; addr; message })
  | op -> Error (Printf.sprintf "unknown transfer op %S" op)

let tape_header = Obj [ ("devil_tape_version", Int version) ]

let tape_to_jsonl tape =
  let b = Buffer.create 4096 in
  Buffer.add_string b (json_to_string tape_header);
  Buffer.add_char b '\n';
  List.iter
    (fun tr ->
      Buffer.add_string b (json_to_string (transfer_to_json tr));
      Buffer.add_char b '\n')
    (Bus.tape_transfers tape);
  Buffer.contents b

let tape_of_jsonl s =
  let* body = check_header ~key:"devil_tape_version" (lines_of s) in
  List.fold_left
    (fun acc line ->
      let* acc = acc in
      let* j = json_of_string line in
      let* tr = transfer_of_json j in
      Ok (tr :: acc))
    (Ok []) body
  |> Result.map (fun rev -> Bus.tape_of_transfers (List.rev rev))

(* {1 Profile exporters} *)

(* Folded stacks, one "root;child;leaf self_ns" line per trie node with
   self time — the input format of flamegraph.pl and of speedscope's
   importer. Span keys contain no ';' (they use '/' and ':'), so no
   quoting is needed. *)
let profile_to_folded profile =
  let b = Buffer.create 1024 in
  let rec walk stack node =
    let stack = Profile.node_name node :: stack in
    let self = Profile.node_self_ns node in
    if self > 0 then begin
      Buffer.add_string b (String.concat ";" (List.rev stack));
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int self);
      Buffer.add_char b '\n'
    end;
    List.iter (walk stack) (Profile.node_children node)
  in
  List.iter (walk []) (Profile.roots profile);
  Buffer.contents b

(* Speedscope's "sampled" profile: every trie node with self time
   becomes one weighted sample whose stack is the node's path. Frames
   are interned by name (the same key under two parents shares a
   frame, which is what makes speedscope's left-heavy view merge
   them). *)
let profile_to_speedscope ?(name = "devil profile") profile =
  let frames = Hashtbl.create 64 in
  let frame_names = ref [] in
  let frame_of key =
    match Hashtbl.find_opt frames key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frames in
        Hashtbl.add frames key i;
        frame_names := key :: !frame_names;
        i
  in
  let samples = ref [] and weights = ref [] in
  let rec walk stack node =
    let stack = frame_of (Profile.node_name node) :: stack in
    let self = Profile.node_self_ns node in
    if self > 0 then begin
      samples := List (List.rev_map (fun i -> Int i) stack) :: !samples;
      weights := Int self :: !weights
    end;
    List.iter (walk stack) (Profile.node_children node)
  in
  List.iter (walk []) (Profile.roots profile);
  let total = List.fold_left (fun a -> function Int w -> a + w | _ -> a) 0 !weights in
  json_to_string
    (Obj
       [
         ( "$schema",
           String "https://www.speedscope.app/file-format-schema.json" );
         ( "shared",
           Obj
             [
               ( "frames",
                 List
                   (List.rev_map
                      (fun key -> Obj [ ("name", String key) ])
                      !frame_names) );
             ] );
         ( "profiles",
           List
             [
               Obj
                 [
                   ("type", String "sampled");
                   ("name", String name);
                   ("unit", String "nanoseconds");
                   ("startValue", Int 0);
                   ("endValue", Int total);
                   ("samples", List (List.rev !samples));
                   ("weights", List (List.rev !weights));
                 ];
             ] );
         ("exporter", String "devil");
         ("name", String name);
       ])

(* {1 OpenMetrics / Prometheus text exposition} *)

(* Metric names: the registry's dotted names with every non
   [A-Za-z0-9_] byte flattened to '_' and a "devil_" prefix, so
   "sched.queue.completions" scrapes as
   devil_sched_queue_completions_total. *)
let om_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "devil_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let om_label_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_openmetrics ?health ?telemetry metrics =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                   Buffer.add_char b '\n') fmt in
  let counters = Metrics.counters metrics in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      line "# TYPE %s counter" n;
      line "%s_total %d" n v)
    counters;
  (* The eviction counter is part of the contract even when the ring
     never dropped (or no trace fed this registry): a scraper alerting
     on it must always find the sample. *)
  if not (List.mem_assoc "trace.dropped_events" counters) then begin
    line "# TYPE devil_trace_dropped_events counter";
    line "devil_trace_dropped_events_total 0"
  end;
  List.iter
    (fun (name, (snap : Metrics.hist_snapshot)) ->
      let n = om_name name in
      let buckets =
        match Metrics.hist_buckets metrics name with
        | Some bs -> bs
        | None -> Array.make Metrics.bucket_count 0
      in
      line "# TYPE %s histogram" n;
      (* Cumulative buckets up to the last occupied one; the open-ended
         tail collapses into +Inf. *)
      let last =
        let r = ref (-1) in
        Array.iteri (fun i v -> if v > 0 then r := i) buckets;
        !r
      in
      let cum = ref 0 in
      for i = 0 to last do
        cum := !cum + buckets.(i);
        line "%s_bucket{le=\"%d\"} %d" n (Metrics.bucket_upper i) !cum
      done;
      line "%s_bucket{le=\"+Inf\"} %d" n snap.count;
      line "%s_sum %d" n snap.sum;
      line "%s_count %d" n snap.count)
    (Metrics.histograms metrics);
  (match telemetry with
  | None -> ()
  | Some tel ->
      line "# TYPE devil_telemetry_ticks gauge";
      line "devil_telemetry_ticks %d" (Telemetry.ticks tel);
      line "# TYPE devil_telemetry_series_evictions counter";
      line "devil_telemetry_series_evictions_total %d" (Telemetry.evictions tel));
  (match health with
  | None -> ()
  | Some (report : Health.report) ->
      line "# TYPE devil_health gauge";
      line "# HELP devil_health 0 ok, 1 degraded, 2 stalled";
      line "devil_health %d" (Health.verdict_severity report.Health.verdict);
      List.iter
        (fun (r : Health.reason) ->
          line "devil_health_reason{code=\"%s\"} %d"
            (om_label_escape r.Health.code) r.Health.count)
        report.Health.reasons);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* {1 Telemetry series <-> JSONL} *)

type series_point =
  | S_counter of { sp_tick : int; sp_metric : string; sp_total : int;
                   sp_delta : int }
  | S_hist of { sh_tick : int; sh_metric : string; sh_count : int;
                sh_sum : int; sh_p50 : int; sh_p95 : int; sh_p99 : int }
  | S_health of { sl_tick : int; sl_verdict : string; sl_summary : string }

type series_file = {
  sf_hz : float;
  sf_ticks : int;
  sf_capacity : int;
  sf_evictions : int;
  sf_points : series_point list;
}

(* The JSON layer is integer-only, so hz travels as a string
   ("%g"-rendered) and is re-parsed on read. *)
let series_to_jsonl telemetry =
  let b = Buffer.create 4096 in
  let add j =
    Buffer.add_string b (json_to_string j);
    Buffer.add_char b '\n'
  in
  add
    (Obj
       [
         ("devil_series_version", Int version);
         ("hz", String (Printf.sprintf "%g" (Telemetry.hz telemetry)));
         ("ticks", Int (Telemetry.ticks telemetry));
         ("capacity", Int (Telemetry.capacity telemetry));
         ("series_evictions", Int (Telemetry.evictions telemetry));
       ]);
  List.iter
    (fun name ->
      List.iter
        (fun (p : Telemetry.counter_point) ->
          add
            (Obj
               [
                 ("tick", Int p.Telemetry.at);
                 ("metric", String name);
                 ("kind", String "counter");
                 ("total", Int p.Telemetry.total);
                 ("delta", Int p.Telemetry.delta);
               ]))
        (Telemetry.counter_series telemetry name))
    (Telemetry.counter_names telemetry);
  List.iter
    (fun name ->
      List.iter
        (fun (p : Telemetry.hist_point) ->
          add
            (Obj
               [
                 ("tick", Int p.Telemetry.h_at);
                 ("metric", String name);
                 ("kind", String "hist");
                 ("count", Int p.Telemetry.h_count);
                 ("sum", Int p.Telemetry.h_sum);
                 ("p50", Int p.Telemetry.h_p50);
                 ("p95", Int p.Telemetry.h_p95);
                 ("p99", Int p.Telemetry.h_p99);
               ]))
        (Telemetry.hist_series telemetry name))
    (Telemetry.hist_names telemetry);
  List.iter
    (fun (p : Telemetry.health_point) ->
      add
        (Obj
           [
             ("tick", Int p.Telemetry.hp_at);
             ("kind", String "health");
             ("verdict", String p.Telemetry.hp_verdict);
             ("summary", String p.Telemetry.hp_summary);
           ]))
    (Telemetry.health_series telemetry);
  Buffer.contents b

let series_point_of_json j =
  let* kind = as_string "kind" j in
  match kind with
  | "counter" ->
      let* sp_tick = as_int "tick" j in
      let* sp_metric = as_string "metric" j in
      let* sp_total = as_int "total" j in
      let* sp_delta = as_int "delta" j in
      Ok (S_counter { sp_tick; sp_metric; sp_total; sp_delta })
  | "hist" ->
      let* sh_tick = as_int "tick" j in
      let* sh_metric = as_string "metric" j in
      let* sh_count = as_int "count" j in
      let* sh_sum = as_int "sum" j in
      let* sh_p50 = as_int "p50" j in
      let* sh_p95 = as_int "p95" j in
      let* sh_p99 = as_int "p99" j in
      Ok (S_hist { sh_tick; sh_metric; sh_count; sh_sum; sh_p50; sh_p95;
                   sh_p99 })
  | "health" ->
      let* sl_tick = as_int "tick" j in
      let* sl_verdict = as_string "verdict" j in
      let* sl_summary = as_string "summary" j in
      Ok (S_health { sl_tick; sl_verdict; sl_summary })
  | k -> Error (Printf.sprintf "unknown series point kind %S" k)

let series_of_jsonl s =
  match lines_of s with
  | [] -> Error "empty file"
  | first :: body ->
      let* hdr = json_of_string first in
      let* v = Result.map_error
          (fun _ -> "first line is not a devil_series_version header")
          (as_int "devil_series_version" hdr)
      in
      let* () =
        if v = version then Ok ()
        else
          Error
            (Printf.sprintf
               "unsupported devil_series_version %d (this build reads version \
                %d)" v version)
      in
      let* hz_s = as_string "hz" hdr in
      let* sf_hz =
        match float_of_string_opt hz_s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "hz %S is not a number" hz_s)
      in
      let* sf_ticks = as_int "ticks" hdr in
      let* sf_capacity = as_int "capacity" hdr in
      let* sf_evictions = as_int "series_evictions" hdr in
      let* sf_points =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = json_of_string line in
            let* p = series_point_of_json j in
            Ok (p :: acc))
          (Ok []) body
        |> Result.map List.rev
      in
      Ok { sf_hz; sf_ticks; sf_capacity; sf_evictions; sf_points }

(* {1 Files} *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let events_of_file path =
  let* s = read_file path in
  events_of_jsonl s

let tape_of_file path =
  let* s = read_file path in
  tape_of_jsonl s

let series_of_file path =
  let* s = read_file path in
  series_of_jsonl s
