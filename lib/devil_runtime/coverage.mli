(** Spec coverage from traces (DESIGN.md §10).

    Maps the runtime's trace events back onto the IR: given the device
    model and the instance label its events carry, marks which of the
    spec's coverable sites ({!Devil_ir.Sites.universe}) the traced
    workload exercised — which registers (per direction), variable bit
    ranges, behaviours, actions and serialization clauses actually
    ran. Faultcamp and the bench workloads report this per spec, and
    the mutation analysis uses it to ask whether a workload could even
    have detected a given mutation. *)

type t
(** Mutable coverage state for one instance of one device. *)

val create : dev:string -> Devil_ir.Ir.device -> t
(** [create ~dev device] — [dev] is the instance label (the [?label]
    given to {!Instance.create}) whose events to attribute. *)

val feed : t -> Trace.event -> unit
(** Marks whatever sites one event covers; events for other instances
    are ignored. *)

val feed_all : t -> Trace.event list -> unit

val attach : t -> Trace.t -> unit
(** Subscribes {!feed} to a live trace (see {!Trace.subscribe}), so
    coverage accumulates as events are emitted and is immune to ring
    eviction. *)

val is_covered : t -> Devil_ir.Sites.site -> bool
val dev : t -> string

type report = {
  rp_dev : string;
  rp_total : int;  (** coverable sites in the universe *)
  rp_covered : int;
  rp_reg_total : int;  (** register-direction sites only *)
  rp_reg_covered : int;
  rp_read_total : int;  (** read-direction register sites *)
  rp_read_covered : int;
  rp_write_total : int;  (** write-direction register sites *)
  rp_write_covered : int;
  rp_missed : Devil_ir.Sites.site list;  (** uncovered, declaration order *)
}
(** The register tallies are additionally broken out per access
    direction ([rp_reg_total = rp_read_total + rp_write_total]), so a
    generated obligation can tell a write-only trigger register it can
    never read back from readable state it simply failed to visit. *)

val report : t -> report
val reg_percent : report -> float
(** Covered percentage over register sites alone — the figure the
    [tools/check.sh] coverage gate thresholds. 100.0 for an empty
    universe. *)

val site_percent : report -> float

val read_percent : report -> float
(** Covered percentage over read-direction register sites alone. *)

val write_percent : report -> float
val pp_report : Format.formatter -> report -> unit
(** One line: covered/total for all sites and for registers. *)

val pp_missed : Format.formatter -> report -> unit
(** The uncovered sites, one [missed <site-id>] line each. *)
