(** Online reconstruction of queued-request lifecycles (DESIGN.md §15).

    {!Sched} mints a request id at {!Sched.submit} and threads it
    through every trace event the request causes. This module
    subscribes to a {!Trace} and rebuilds, per request, the causal arc

    {v
    submitted --queue_wait--> started --service--> irq_delivered
              --completion--> completed
    v}

    stamping each stage boundary with a caller-supplied clock. The
    five stages are:

    - [queue_wait] — submit to start (time spent behind other requests
      in the device FIFO);
    - [service] — start to interrupt delivery (the hardware doing the
      work); falls back to start-to-completion when the request
      completed without an observed interrupt;
    - [irq_delivery] — interrupt raised to acknowledged and dispatched
      (scheduler latency);
    - [completion] — handler dispatch to the request leaving the queue
      (driver completion-path cost);
    - [total] — submit to completion.

    With a metrics registry attached, each completed request feeds
    [lifecycle.<dev>.<stage>.ns] histograms (p50/p95/p99 via
    {!Metrics.histogram}) plus the counters [lifecycle.submitted],
    [lifecycle.completed], [lifecycle.lost_interrupts] and
    [lifecycle.spurious_completions]. Requests that never complete are
    {e orphans} — the stall signal {!Health} and the async gates
    check. *)

type record = {
  rid : int;  (** The request id (see {!Sched.request_id}). *)
  dev : string;
  label : string;
  submitted_at : int;
  mutable started_at : int;  (** -1 until the boundary is observed. *)
  mutable irq_raised_at : int;
  mutable irq_delivered_at : int;
  mutable completed_at : int;
  mutable ok : bool;  (** Meaningful once completed. *)
  mutable polls : int;  (** Polls run on the request's behalf. *)
  mutable retries : int;
  mutable late_completion : bool;
      (** A {!Trace.Queue_late} was matched to this (timed-out)
          request: its interrupt was lost, not absent. *)
}

type stage = Queue_wait | Service | Irq_delivery | Completion | Total

val stages : stage list
(** All five, in pipeline order. *)

val stage_label : stage -> string
(** The metric-vocabulary name: ["queue_wait"], ["service"],
    ["irq_delivery"], ["completion"], ["total"]. *)

val stage_ns : record -> stage -> int option
(** The stage's duration in clock units, [None] when either boundary
    was never observed (an orphan, or an arc truncated by ring
    eviction). *)

val complete : record -> bool

type t

val attach : ?clock:(unit -> int) -> ?metrics:Metrics.t -> Trace.t -> t
(** Subscribes to the trace and reconstructs lifecycles live. [clock]
    defaults to the monotonic wall clock in nanoseconds — the same
    clock {!Profile} stamps spans with. Subscribers cannot be removed
    (see {!Trace.subscribe}); attach to traces you own. *)

val of_events : ?metrics:Metrics.t -> Trace.event list -> t
(** Offline replay over a recorded event list (e.g. a JSONL trace file
    loaded by tracetool), using each event's sequence number as the
    clock — stage durations come out in trace-sequence ticks. *)

val requests : t -> record list
(** Every request observed, in submit order. Records are live: an
    in-flight request's record fills in as its events arrive. *)

val orphans : t -> record list
(** Requests submitted but (not yet) completed — after a drain, the
    requests whose completions were lost. *)

val find : t -> int -> record option
val submitted : t -> int
val completed : t -> int

val lost_interrupts : t -> int
(** Late completions matched to a timed-out request. *)

val spurious_completions : t -> int
(** Late completions with no timed-out predecessor. *)

val pp_record : Format.formatter -> record -> unit
(** One-line digest: id, device, label, outcome, per-stage durations
    (["?"] for unobserved stages). *)
