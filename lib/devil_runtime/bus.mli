(** The abstract bus the generated accessors drive.

    A bus knows how to perform single I/O transfers of a given width at
    an absolute address, and block (string / [rep]-style) transfers
    that repeat a transfer at one address. The hardware simulator
    provides the real implementation; {!memory} provides a trivial
    RAM-backed bus for unit tests. *)

exception Bus_fault of string
(** A structured bus-level failure: an access that no device (or cell)
    can answer — the master/target abort of real buses. Re-exported as
    {!Fault.Bus_fault} (they are the same exception), which is also
    what the fault injector raises for transient faults, so
    {!Policy.guarded} classifies both identically. *)

type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
      (** Repeated input from one address, filling [into] in order —
          the Pentium [rep insw] idiom of paper §2.2. *)
  write_block : width:int -> addr:int -> from:int array -> unit;
}

val memory : ?size:int -> unit -> t
(** A bus backed by a flat array of 32-bit cells, one cell per address;
    widths only clip the stored value. Reads of untouched cells return
    0. Block transfers loop over the single-transfer operations.
    Accesses outside [\[0, size)] raise {!Bus_fault} — a structured
    error a recovery policy can classify, not a bare
    [Invalid_argument] escaping from [Array]. *)

val observed : ?trace:Trace.t -> ?metrics:Metrics.t -> t -> t
(** [observed ?trace ?metrics bus] wraps a bus so that every transfer
    is recorded into the trace and counted in the registry (see
    {!Metrics} for the counter vocabulary: single transfers, block
    transactions, block elements and bytes are all counted
    separately). With neither handle supplied the wrapper is the
    identity — the very same closure record is returned, so the
    disabled path costs nothing and is trivially transparent. Faults
    raised by the underlying bus propagate before anything is
    recorded: the trace holds only transfers that completed. *)
