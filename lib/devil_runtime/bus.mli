(** The abstract bus the generated accessors drive.

    A bus knows how to perform single I/O transfers of a given width at
    an absolute address, and block (string / [rep]-style) transfers
    that repeat a transfer at one address. The hardware simulator
    provides the real implementation; {!memory} provides a trivial
    RAM-backed bus for unit tests. *)

exception Bus_fault of string
(** A structured bus-level failure: an access that no device (or cell)
    can answer — the master/target abort of real buses. Re-exported as
    {!Fault.Bus_fault} (they are the same exception), which is also
    what the fault injector raises for transient faults, so
    {!Policy.guarded} classifies both identically. *)

type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
      (** Repeated input from one address, filling [into] in order —
          the Pentium [rep insw] idiom of paper §2.2. *)
  write_block : width:int -> addr:int -> from:int array -> unit;
}

val memory : ?size:int -> unit -> t
(** A bus backed by a flat array of 32-bit cells, one cell per address;
    widths only clip the stored value. Reads of untouched cells return
    0. Block transfers loop over the single-transfer operations.
    Accesses outside [\[0, size)] raise {!Bus_fault} — a structured
    error a recovery policy can classify, not a bare
    [Invalid_argument] escaping from [Array]. *)

(** {1 Deterministic record/replay (DESIGN.md §10)}

    [recording] captures every transfer a driver issues together with
    the response the device gave (including raised {!Bus_fault}s), so
    a failing run — a faultcamp trial, a differential-test mismatch —
    becomes a self-contained artifact. [replaying] serves the taped
    responses back without any device behind it, re-raising taped
    faults, and fails loudly with {!Replay_divergence} the moment the
    re-executed driver deviates from the recorded interaction. *)

(** One taped bus transfer: the request plus the response the driver
    observed. [T_fault] is a transfer that raised {!Bus_fault} with
    the given message. *)
type transfer =
  | T_read of { width : int; addr : int; value : int }
  | T_write of { width : int; addr : int; value : int }
  | T_read_block of { width : int; addr : int; values : int array }
  | T_write_block of { width : int; addr : int; values : int array }
  | T_fault of { op : string; width : int; addr : int; message : string }

type tape
(** An ordered recording of transfers. Grows while the bus returned by
    {!recording} is driven; immutable from {!replaying}'s side (a tape
    can be replayed any number of times). *)

exception Replay_divergence of string
(** Raised by a replaying bus when the live run's next request does not
    match the tape: wrong operation, width, address, written value, or
    block length — or the tape is exhausted. The message names the
    transfer index and both sides. *)

val recording : t -> tape * t
(** [recording bus] returns a fresh tape and a wrapper that performs
    each transfer on [bus] and appends it (with its response) to the
    tape. Faulted transfers are taped as [T_fault] before the
    exception propagates. *)

val replaying : tape -> t
(** A bus serving the taped responses back in order, checking each
    request against the tape and raising {!Replay_divergence} on any
    mismatch. Needs no underlying device. *)

val tape_length : tape -> int
val tape_transfers : tape -> transfer list

val tape_of_transfers : transfer list -> tape
(** Rebuilds a tape, e.g. from a file parsed by {!Trace_export}. *)

val pp_transfer : Format.formatter -> transfer -> unit

val observed : ?trace:Trace.t -> ?metrics:Metrics.t -> ?profile:Profile.t -> t -> t
(** [observed ?trace ?metrics ?profile bus] wraps a bus so that every
    transfer is recorded into the trace, counted in the registry (see
    {!Metrics} for the counter vocabulary: single transfers, block
    transactions, block elements and bytes are all counted separately)
    and, with a profiler, timed as a leaf span (["bus:read"],
    ["bus:write"], ["bus:block_read"], ["bus:block_write"]) under
    whatever span is open — the precise alternative to
    {!Profile.attach}'s gap estimate. With no handle supplied the
    wrapper is the identity — the very same closure record is
    returned, so the disabled path costs nothing and is trivially
    transparent. Faults raised by the underlying bus propagate before
    anything is recorded: the trace holds only transfers that
    completed. *)
