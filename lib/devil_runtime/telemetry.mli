(** The deterministic-tick time-series sampler (DESIGN.md §16).

    A telemetry handle watches one {!Metrics.t} registry and, on every
    explicit {!tick}, snapshots each metric into a bounded per-metric
    ring:

    - every counter gets a {!counter_point} — the cumulative total and
      the {e delta} since the previous tick, from which windowed rates
      like [sched.queue.completions/s] are derived as [delta * hz];
    - every histogram gets a {!hist_point} — the count/sum delta plus
      {e windowed} p50/p95/p99 computed from the bucket-array delta
      with the same estimator as {!Metrics.percentile}, so per-window
      tail latency is available alongside (and clearly distinct from)
      the lifetime percentiles;
    - optionally a {!health_point} per tick records the {!Health}
      verdict trajectory.

    The clock is the tick counter itself — the same explicit-clock
    discipline as {!Lifecycle.of_events} driving lifecycle off trace
    sequence numbers — so replaying a trace and ticking at the same
    points produces a {e byte-identical} series; nothing here reads
    wall time. [hz] (ticks per second, default 1.0) only scales rates
    at display time and is never stored in points.

    Rings evict oldest-first at constant space like {!Trace}'s ring;
    {!evictions} totals drops across all series so dashboards
    ([tracetool top]) can warn loudly when the window has been
    shortened. Strictly opt-in like the rest of the layer: the machine
    holds a [Telemetry.t option] and the disabled path is one [option]
    match — it neither samples nor allocates. *)

type t

type counter_point = {
  at : int;  (** The tick (1-based) this sample was taken on. *)
  total : int;  (** Cumulative counter value at the tick. *)
  delta : int;  (** Increase since the previous tick (whole value on
                    the first tick a counter is seen). *)
}

type hist_point = {
  h_at : int;
  h_count : int;  (** Samples observed within the window. *)
  h_sum : int;
  h_p50 : int;
      (** Windowed percentiles, estimated from the bucket delta exactly
          as {!Metrics.percentile} estimates lifetime ones; 0 when the
          window saw no samples. *)
  h_p95 : int;
  h_p99 : int;
}

type health_point = {
  hp_at : int;
  hp_verdict : string;  (** {!Health.verdict_label} of the report. *)
  hp_summary : string;  (** {!Health.summary} — verdict plus reasons. *)
}

val default_capacity : int
(** 64 samples per series. *)

val create : ?capacity:int -> ?hz:float -> Metrics.t -> t
(** A sampler over [metrics]. [capacity] bounds every per-metric ring
    (clamped to at least 1); [hz] declares how many ticks make a
    second, purely for rate display. *)

val from_env : Metrics.t -> t option
(** Reads [DEVIL_TELEMETRY]: unset, ["0"]/["off"] disable; ["1"]/["on"]
    enable with {!default_capacity}; an integer > 1 is used as the
    ring capacity. A malformed value warns on stderr and enables with
    the default capacity — the {!Trace.from_env} protocol. *)

val parse_env_value : string -> (int option, string) result
(** The pure parser behind {!from_env}. Exposed for testing. *)

val tick : ?health:Health.report -> t -> unit
(** Advance the tick clock and sample every metric currently in the
    registry. With [health], also record the verdict for this tick. *)

val ticks : t -> int
(** Ticks taken so far (the [at] of the newest points). *)

val hz : t -> float
val capacity : t -> int
val metrics : t -> Metrics.t

val counter_names : t -> string list
(** Counters that have been sampled at least once, sorted. *)

val hist_names : t -> string list

val counter_series : t -> string -> counter_point list
(** Retained points, oldest first; [[]] for an unknown metric. *)

val hist_series : t -> string -> hist_point list
val health_series : t -> health_point list

val last_rate : t -> string -> float option
(** Newest point's [delta * hz] — the instantaneous per-second rate. *)

val mean_rate : t -> string -> float option
(** Mean [delta * hz] over the retained window. *)

val evictions : t -> int
(** Points evicted by the ring bound, summed over every series
    (counter, histogram and health) — nonzero means the visible window
    is shorter than the run, which [tracetool top] banners loudly. *)
