exception Bus_fault of string

type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
  write_block : width:int -> addr:int -> from:int array -> unit;
}

let memory ?(size = 65536) () =
  let cells = Array.make size 0 in
  let clip ~width v = v land Devil_bits.Bitops.width_mask width in
  let check addr =
    if addr < 0 || addr >= size then
      raise
        (Bus_fault
           (Printf.sprintf "memory bus: address %#x outside [0, %#x)" addr size))
  in
  let read ~width ~addr =
    check addr;
    clip ~width cells.(addr)
  in
  let write ~width ~addr ~value =
    check addr;
    cells.(addr) <- clip ~width value
  in
  let read_block ~width ~addr ~into =
    Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into
  in
  let write_block ~width ~addr ~from =
    Array.iter (fun value -> write ~width ~addr ~value) from
  in
  { read; write; read_block; write_block }

(* {1 Deterministic record/replay} *)

type transfer =
  | T_read of { width : int; addr : int; value : int }
  | T_write of { width : int; addr : int; value : int }
  | T_read_block of { width : int; addr : int; values : int array }
  | T_write_block of { width : int; addr : int; values : int array }
  | T_fault of { op : string; width : int; addr : int; message : string }

type tape = { mutable rev : transfer list; mutable count : int }

exception Replay_divergence of string

let tape_length t = t.count
let tape_transfers t = List.rev t.rev

let tape_of_transfers transfers =
  { rev = List.rev transfers; count = List.length transfers }

let pp_transfer fmt = function
  | T_read { width; addr; value } ->
      Format.fprintf fmt "R%d [%#x] -> %#x" width addr value
  | T_write { width; addr; value } ->
      Format.fprintf fmt "W%d [%#x] <- %#x" width addr value
  | T_read_block { width; addr; values } ->
      Format.fprintf fmt "R%d block [%#x] x%d" width addr (Array.length values)
  | T_write_block { width; addr; values } ->
      Format.fprintf fmt "W%d block [%#x] x%d" width addr (Array.length values)
  | T_fault { op; width; addr; message } ->
      Format.fprintf fmt "fault on %s%d [%#x]: %s" op width addr message

let transfer_to_string tr = Format.asprintf "%a" pp_transfer tr

let recording bus =
  let tape = { rev = []; count = 0 } in
  let push tr =
    tape.rev <- tr :: tape.rev;
    tape.count <- tape.count + 1
  in
  (* A faulted transfer is part of the interaction the driver saw — the
     recovery path it provokes must replay too — so the raised
     [Bus_fault] is taped before it propagates. *)
  let faulting op ~width ~addr f =
    try f ()
    with Bus_fault message ->
      push (T_fault { op; width; addr; message });
      raise (Bus_fault message)
  in
  let wrapped =
    {
      read =
        (fun ~width ~addr ->
          faulting "read" ~width ~addr (fun () ->
              let value = bus.read ~width ~addr in
              push (T_read { width; addr; value });
              value));
      write =
        (fun ~width ~addr ~value ->
          faulting "write" ~width ~addr (fun () ->
              bus.write ~width ~addr ~value;
              push (T_write { width; addr; value })));
      read_block =
        (fun ~width ~addr ~into ->
          faulting "read_block" ~width ~addr (fun () ->
              bus.read_block ~width ~addr ~into;
              push (T_read_block { width; addr; values = Array.copy into })));
      write_block =
        (fun ~width ~addr ~from ->
          faulting "write_block" ~width ~addr (fun () ->
              bus.write_block ~width ~addr ~from;
              push (T_write_block { width; addr; values = Array.copy from })));
    }
  in
  (tape, wrapped)

let replaying tape =
  let items = Array.of_list (List.rev tape.rev) in
  let pos = ref 0 in
  let diverge fmt =
    Format.kasprintf (fun s -> raise (Replay_divergence s)) fmt
  in
  let next ~requested =
    if !pos >= Array.length items then
      diverge "tape exhausted after %d transfers; live run issued %s"
        (Array.length items) requested;
    let i = !pos in
    incr pos;
    (i, items.(i))
  in
  let mismatch i taped requested =
    diverge "transfer %d diverged: tape has %s, live run issued %s" i
      (transfer_to_string taped) requested
  in
  {
    read =
      (fun ~width ~addr ->
        let requested = Printf.sprintf "R%d [%#x]" width addr in
        match next ~requested with
        | _, T_read { width = w; addr = a; value } when w = width && a = addr
          ->
            value
        | _, T_fault { op = "read"; width = w; addr = a; message }
          when w = width && a = addr ->
            raise (Bus_fault message)
        | i, taped -> mismatch i taped requested);
    write =
      (fun ~width ~addr ~value ->
        let requested = Printf.sprintf "W%d [%#x] <- %#x" width addr value in
        match next ~requested with
        | _, T_write { width = w; addr = a; value = v }
          when w = width && a = addr && v = value ->
            ()
        | _, T_fault { op = "write"; width = w; addr = a; message }
          when w = width && a = addr ->
            raise (Bus_fault message)
        | i, taped -> mismatch i taped requested);
    read_block =
      (fun ~width ~addr ~into ->
        let requested =
          Printf.sprintf "R%d block [%#x] x%d" width addr (Array.length into)
        in
        match next ~requested with
        | _, T_read_block { width = w; addr = a; values }
          when w = width && a = addr && Array.length values = Array.length into
          ->
            Array.blit values 0 into 0 (Array.length values)
        | _, T_fault { op = "read_block"; width = w; addr = a; message }
          when w = width && a = addr ->
            raise (Bus_fault message)
        | i, taped -> mismatch i taped requested);
    write_block =
      (fun ~width ~addr ~from ->
        let requested =
          Printf.sprintf "W%d block [%#x] x%d" width addr (Array.length from)
        in
        match next ~requested with
        | _, T_write_block { width = w; addr = a; values }
          when w = width && a = addr && values = from ->
            ()
        | _, T_fault { op = "write_block"; width = w; addr = a; message }
          when w = width && a = addr ->
            raise (Bus_fault message)
        | i, taped -> mismatch i taped requested);
  }

let bytes_of ~width n = n * ((width + 7) / 8)

let observed ?trace ?metrics ?profile bus =
  match (trace, metrics, profile) with
  | None, None, None -> bus
  | _ ->
      (* The bus transfer is the leaf of the span hierarchy: the
         wrapper times the underlying call precisely and records it as
         a child of whatever span is open. Faults propagate before
         anything is recorded — the trace and the profile hold only
         transfers that completed. *)
      let timed key f =
        match profile with
        | None -> f ()
        | Some p ->
            let s = Profile.enter p key in
            (match f () with
            | v ->
                Profile.exit p s;
                v
            | exception e ->
                Profile.exit p s;
                raise e)
      in
      {
        read =
          (fun ~width ~addr ->
            let value = timed "bus:read" (fun () -> bus.read ~width ~addr) in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.reads";
                Metrics.incr m ~by:(bytes_of ~width 1) "bus.bytes_read"
            | None -> ());
            (match trace with
            | Some tr -> Trace.emit tr (Trace.Bus_read { addr; width; value })
            | None -> ());
            value);
        write =
          (fun ~width ~addr ~value ->
            timed "bus:write" (fun () -> bus.write ~width ~addr ~value);
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.writes";
                Metrics.incr m ~by:(bytes_of ~width 1) "bus.bytes_written"
            | None -> ());
            match trace with
            | Some tr -> Trace.emit tr (Trace.Bus_write { addr; width; value })
            | None -> ());
        read_block =
          (fun ~width ~addr ~into ->
            timed "bus:block_read" (fun () ->
                bus.read_block ~width ~addr ~into);
            let count = Array.length into in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.block_reads";
                Metrics.incr m ~by:count "bus.read_items";
                Metrics.incr m ~by:(bytes_of ~width count) "bus.bytes_read";
                Metrics.observe m "bus.block_len" count
            | None -> ());
            match trace with
            | Some tr ->
                Trace.emit tr (Trace.Bus_block_read { addr; width; count })
            | None -> ());
        write_block =
          (fun ~width ~addr ~from ->
            timed "bus:block_write" (fun () ->
                bus.write_block ~width ~addr ~from);
            let count = Array.length from in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.block_writes";
                Metrics.incr m ~by:count "bus.write_items";
                Metrics.incr m ~by:(bytes_of ~width count) "bus.bytes_written";
                Metrics.observe m "bus.block_len" count
            | None -> ());
            match trace with
            | Some tr ->
                Trace.emit tr (Trace.Bus_block_write { addr; width; count })
            | None -> ());
      }
