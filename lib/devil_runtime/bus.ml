exception Bus_fault of string

type t = {
  read : width:int -> addr:int -> int;
  write : width:int -> addr:int -> value:int -> unit;
  read_block : width:int -> addr:int -> into:int array -> unit;
  write_block : width:int -> addr:int -> from:int array -> unit;
}

let memory ?(size = 65536) () =
  let cells = Array.make size 0 in
  let clip ~width v = v land Devil_bits.Bitops.width_mask width in
  let check addr =
    if addr < 0 || addr >= size then
      raise
        (Bus_fault
           (Printf.sprintf "memory bus: address %#x outside [0, %#x)" addr size))
  in
  let read ~width ~addr =
    check addr;
    clip ~width cells.(addr)
  in
  let write ~width ~addr ~value =
    check addr;
    cells.(addr) <- clip ~width value
  in
  let read_block ~width ~addr ~into =
    Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into
  in
  let write_block ~width ~addr ~from =
    Array.iter (fun value -> write ~width ~addr ~value) from
  in
  { read; write; read_block; write_block }

let bytes_of ~width n = n * ((width + 7) / 8)

let observed ?trace ?metrics bus =
  match (trace, metrics) with
  | None, None -> bus
  | _ ->
      {
        read =
          (fun ~width ~addr ->
            let value = bus.read ~width ~addr in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.reads";
                Metrics.incr m ~by:(bytes_of ~width 1) "bus.bytes_read"
            | None -> ());
            (match trace with
            | Some tr -> Trace.emit tr (Trace.Bus_read { addr; width; value })
            | None -> ());
            value);
        write =
          (fun ~width ~addr ~value ->
            bus.write ~width ~addr ~value;
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.writes";
                Metrics.incr m ~by:(bytes_of ~width 1) "bus.bytes_written"
            | None -> ());
            match trace with
            | Some tr -> Trace.emit tr (Trace.Bus_write { addr; width; value })
            | None -> ());
        read_block =
          (fun ~width ~addr ~into ->
            bus.read_block ~width ~addr ~into;
            let count = Array.length into in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.block_reads";
                Metrics.incr m ~by:count "bus.read_items";
                Metrics.incr m ~by:(bytes_of ~width count) "bus.bytes_read";
                Metrics.observe m "bus.block_len" count
            | None -> ());
            match trace with
            | Some tr ->
                Trace.emit tr (Trace.Bus_block_read { addr; width; count })
            | None -> ());
        write_block =
          (fun ~width ~addr ~from ->
            bus.write_block ~width ~addr ~from;
            let count = Array.length from in
            (match metrics with
            | Some m ->
                Metrics.incr m "bus.block_writes";
                Metrics.incr m ~by:count "bus.write_items";
                Metrics.incr m ~by:(bytes_of ~width count) "bus.bytes_written";
                Metrics.observe m "bus.block_len" count
            | None -> ());
            match trace with
            | Some tr ->
                Trace.emit tr (Trace.Bus_block_write { addr; width; count })
            | None -> ());
      }
