(** The driver fault-tolerance campaign.

    A campaign runs each driver workload on a fresh {!Drivers.Machine}
    whose bus is wrapped by a {!Devil_runtime.Fault} injector, once per
    (driver workload × fault class × seed) cell, and classifies every
    trial by comparing what the driver {e reported} with what actually
    {e happened} to the device:

    - {e detected}: the driver (or its recovery policy) surfaced a
      structured error, or reported the operation as failed;
    - {e recovered}: faults fired, the driver retried, and the
      workload's end-to-end data check passed;
    - {e silent}: the driver reported success but the data is wrong —
      the outcome a fault campaign exists to expose;
    - {e clean}: the probabilistic plan happened to fire nothing.

    Runs are deterministic: the injector PRNG is seeded per trial, so
    the same seeds always reproduce the same table. *)

type outcome = Clean | Recovered | Detected | Silent

val outcome_label : outcome -> string

type trial = {
  driver : string;  (** Workload name, e.g. ["ide-read"]. *)
  fault : string;  (** Fault-class name, e.g. ["transient"]. *)
  seed : int;
  injections : int;  (** Faults fired during the trial. *)
  outcome : outcome;
  detail : string;  (** Error text, mismatch description, or summary. *)
  trace_summary : string;
      (** One-line observability digest of the trial: bus traffic,
          poll/retry activity and injection counts from the trial's
          {!Devil_runtime.Metrics} registry plus the
          {!Devil_runtime.Trace} retention stats. *)
  health : Devil_runtime.Health.report;
      (** The watchdog's verdict over the trial's lifecycle/metrics
          state — a separate axis from {!field-outcome}: a trial can
          fail safe yet leave the async path stalled (timed-out
          requests), storming, or losing interrupts. *)
}

type report = {
  trials : trial list;
  coverage : Devil_runtime.Coverage.report list;
      (** Spec coverage aggregated across the whole matrix (every
          workload, fault class and seed), one report per instrumented
          device: [ide], [piix4], [uart], [ne2000], [gfx]. *)
}

val fault_classes : string list
(** ["stuck-bits"; "read-flip"; "dropped-write"; "dup-write";
    "transient"]. *)

val driver_workloads : string list
(** ["ide-read"; "ide-write"; "serial"; "net"; "gfx"; "ide-dma-async";
    "net-async"] — the last two drive the interrupt-driven queued
    drivers ({!Drivers.Ide.Async}, {!Drivers.Net.Async}) through the
    machine's {!Drivers.Machine.sched} event loop under the same fault
    matrix as their polling counterparts. *)

val replayable_workloads : string list
(** The polling subset of {!driver_workloads}, whose trials replay
    from a bus tape alone. The interrupt-driven workloads are excluded
    by construction: a tape carries bus transfers, not interrupt
    wires, so under {!Devil_runtime.Bus.replaying} a source sampling a
    device model's INT pin never asserts. *)

val default_seeds : int list
(** [[1; 2; 3]]. *)

(** {1 Workloads as values}

    The exploration layer ([Excamp]) re-runs the campaign's workloads
    under exhaustively enumerated fault schedules, so the workload
    table and its verdict vocabulary are exposed. *)

type verdict =
  | Verified  (** Driver reported success and the data checks out. *)
  | Corrupt of string  (** Driver reported success but the data is wrong. *)
  | Reported of string  (** Driver surfaced a failure. *)

val workloads :
  (string * (int * int) * (Drivers.Machine.t -> verdict)) list
(** [(name, (first, last), workload)] — the fault window is the
    device's register range; each workload checks its result against
    simulator back-door ground truth, so [Corrupt] means silent
    corruption. *)

val run_workload : Drivers.Machine.t -> (Drivers.Machine.t -> verdict) -> verdict
(** Runs a workload, converting anything it raises ([Driver_error],
    [Bus_fault], [Replay_divergence], [Device_error], [Failure]) into
    [Reported] — an escaped structured failure counts as detected. *)

val with_campaign_policy : (unit -> 'a) -> 'a
(** Runs [f] under the campaign's shortened poll deadline (20k ticks,
    so forced-timeout runs stay fast), restoring the deadline and
    removing the global {!Devil_runtime.Policy} observer on exit. *)

val run :
  ?seeds:int list -> ?profile:Devil_runtime.Profile.t -> unit -> report
(** Runs the full matrix: every workload under every fault class, once
    per seed. Poll deadlines are temporarily shortened (and restored on
    exit) so timeout trials complete quickly. With [profile], every
    trial's machine feeds the same span profiler, so a whole campaign
    can be attributed (e.g. how much time recovery polls consume). Note
    the per-trial machines each re-install the {!Devil_runtime.Policy}
    observer; the last trial's handles win until
    {!Devil_runtime.Policy.unobserve}.

    With the {!export_env} environment variable set to a directory,
    every failing (detected or silent) trial is re-recorded and its
    artifacts written there — see {!export_trial}. *)

val count : report -> driver:string -> fault:string -> outcome -> int

val silent_trials : report -> trial list
(** All trials classified {!Silent}, across the whole matrix. *)

val unhealthy_trials : report -> trial list
(** All trials whose watchdog verdict is not
    {!Devil_runtime.Health.Ok}, across the whole matrix — the health
    axis of the campaign. *)

val pp_report : Format.formatter -> report -> unit
(** The Table-1-style matrix: one row per driver × fault class, with
    detected / recovered / silent / clean tallies and a verdict
    column, then a [health: n/m trials non-ok] block listing each
    non-ok trial's verdict and reasons, followed by the aggregated
    spec-coverage lines
    ([coverage <dev> registers a/b (p%) sites c/d (q%)] — the format
    the check.sh coverage gate parses). *)

(** {1 Deterministic record / replay of trials (DESIGN.md §10)}

    A trial re-run with {!Devil_runtime.Bus.recording} interposed
    between the fault injector and the observability wrapper tapes
    every transfer with the response the drivers saw — injected
    faults included. Replaying the tape with
    {!Devil_runtime.Bus.replaying} re-runs the same workload with no
    simulated hardware and no injector, and must reproduce the
    driver-visible outcome and the event stream exactly (modulo the
    injector's own [Fault_injected] bookkeeping events, which have no
    counterpart under replay; back-door device state is not compared —
    a replaying bus never touches the device models). *)

type replay_check = {
  rc_driver : string;
  rc_fault : string option;  (** [None]: recorded without an injector. *)
  rc_seed : int;
  rc_tape_length : int;
  rc_live : string;  (** Driver-visible outcome of the recorded run. *)
  rc_replayed : string;  (** Driver-visible outcome of the replay. *)
  rc_outcome_match : bool;
  rc_trace_match : bool;
  rc_mismatch : string option;
      (** First event-stream divergence, when [rc_trace_match] is
          false. *)
}

val record_replay :
  ?fault:string -> driver:string -> seed:int -> unit -> replay_check
(** Records one trial of [driver] (under fault class [fault], when
    given) and immediately replays its tape. *)

val pp_replay_check : Format.formatter -> replay_check -> unit

val export_env : string
(** ["DEVIL_FAULTCAMP_EXPORT"]. *)

val export_trial :
  dir:string -> ?fault:string -> driver:string -> seed:int -> unit ->
  string list
(** Re-records the given trial and writes
    [<driver>-<fault>-seed<n>.trace.jsonl] (the event trace),
    [....tape.jsonl] (the bus tape, a {!Devil_runtime.Bus.replaying}
    input) and [....chrome.json] (the [about://tracing] view) under
    [dir], returning the paths written. *)

val export_replay_smoke :
  dir:string -> driver:string -> seed:int -> string * string
(** Records one fault-free trial, replays its tape, and writes both
    event streams as trace JSONL under [dir], returning
    [(recorded_path, replayed_path)]. With no injector involved the
    two files are byte-identical on a deterministic runtime — the
    check.sh gate diffs them with tracetool. *)
