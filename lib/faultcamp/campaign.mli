(** The driver fault-tolerance campaign.

    A campaign runs each driver workload on a fresh {!Drivers.Machine}
    whose bus is wrapped by a {!Devil_runtime.Fault} injector, once per
    (driver workload × fault class × seed) cell, and classifies every
    trial by comparing what the driver {e reported} with what actually
    {e happened} to the device:

    - {e detected}: the driver (or its recovery policy) surfaced a
      structured error, or reported the operation as failed;
    - {e recovered}: faults fired, the driver retried, and the
      workload's end-to-end data check passed;
    - {e silent}: the driver reported success but the data is wrong —
      the outcome a fault campaign exists to expose;
    - {e clean}: the probabilistic plan happened to fire nothing.

    Runs are deterministic: the injector PRNG is seeded per trial, so
    the same seeds always reproduce the same table. *)

type outcome = Clean | Recovered | Detected | Silent

val outcome_label : outcome -> string

type trial = {
  driver : string;  (** Workload name, e.g. ["ide-read"]. *)
  fault : string;  (** Fault-class name, e.g. ["transient"]. *)
  seed : int;
  injections : int;  (** Faults fired during the trial. *)
  outcome : outcome;
  detail : string;  (** Error text, mismatch description, or summary. *)
  trace_summary : string;
      (** One-line observability digest of the trial: bus traffic,
          poll/retry activity and injection counts from the trial's
          {!Devil_runtime.Metrics} registry plus the
          {!Devil_runtime.Trace} retention stats. *)
}

type report = { trials : trial list }

val fault_classes : string list
(** ["stuck-bits"; "read-flip"; "dropped-write"; "dup-write";
    "transient"]. *)

val driver_workloads : string list
(** ["ide-read"; "ide-write"; "serial"; "net"]. *)

val default_seeds : int list
(** [[1; 2; 3]]. *)

val run : ?seeds:int list -> unit -> report
(** Runs the full matrix: every workload under every fault class, once
    per seed. Poll deadlines are temporarily shortened (and restored on
    exit) so timeout trials complete quickly. *)

val count : report -> driver:string -> fault:string -> outcome -> int

val silent_trials : report -> trial list
(** All trials classified {!Silent}, across the whole matrix. *)

val pp_report : Format.formatter -> report -> unit
(** The Table-1-style matrix: one row per driver × fault class, with
    detected / recovered / silent / clean tallies and a verdict
    column. *)
