module Machine = Drivers.Machine
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics

type outcome = Clean | Recovered | Detected | Silent

let outcome_label = function
  | Clean -> "clean"
  | Recovered -> "recovered"
  | Detected -> "detected"
  | Silent -> "silent"

type trial = {
  driver : string;
  fault : string;
  seed : int;
  injections : int;
  outcome : outcome;
  detail : string;
  trace_summary : string;
}

type report = { trials : trial list }

(* {1 Fault classes}

   Each class is instantiated over the target driver's register window
   so a trial only perturbs the device under test. Probabilities are
   per-operation; the budgeted transient plan is a deterministic burst
   (the first two covered accesses abort), sized below the retry
   allowance so a recovering driver demonstrably recovers. *)

let fault_classes =
  [ "stuck-bits"; "read-flip"; "dropped-write"; "dup-write"; "transient" ]

let plans_for ~fault ~first ~last =
  match fault with
  | "stuck-bits" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Read ] ~first ~last
          (Fault.Stuck_bits { and_mask = -1; or_mask = 0x01 });
      ]
  | "read-flip" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Read ] ~first ~last
          (Fault.Flip_bits { mask = 0x04; probability = 0.25 });
      ]
  | "dropped-write" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Write ] ~first ~last
          (Fault.Drop_write { probability = 0.2 });
      ]
  | "dup-write" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Write ] ~first ~last
          (Fault.Duplicate_write { probability = 0.2 });
      ]
  | "transient" ->
      [
        Fault.plan ~label:fault ~budget:2 ~first ~last
          (Fault.Transient { probability = 1.0 });
      ]
  | f -> invalid_arg ("Campaign.plans_for: unknown fault class " ^ f)

(* {1 Driver workloads}

   Each workload drives a device end to end and then checks the result
   against ground truth obtained through the simulator's back door
   (which bypasses the faulty bus), so silent corruption is
   observable. *)

type verdict =
  | Verified  (** Driver reported success and the data checks out. *)
  | Corrupt of string  (** Driver reported success but the data is wrong. *)
  | Reported of string  (** Driver surfaced a failure. *)

let sector_bytes = Hwsim.Ide_disk.sector_bytes

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7 + 13) land 0xff))

let ide_read (m : Machine.t) =
  let count = 4 in
  let expected = pattern (count * sector_bytes) in
  for s = 0 to count - 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba:(100 + s)
      (Bytes.sub expected (s * sector_bytes) sector_bytes)
  done;
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let got =
    Drivers.Ide.Devil_driver.read_sectors d ~lba:100 ~count ~mult:1
      ~path:`Loop ~width:`W16
  in
  if Bytes.equal got expected then Verified
  else Corrupt "read data differs from disk contents"

let ide_write (m : Machine.t) =
  let count = 4 in
  let data = pattern (count * sector_bytes) in
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  Drivers.Ide.Devil_driver.write_sectors d ~lba:200 ~count ~mult:1 ~path:`Loop
    ~width:`W16 data;
  let ok = ref true in
  for s = 0 to count - 1 do
    let sect = Hwsim.Ide_disk.read_sector m.disk ~lba:(200 + s) in
    if not (Bytes.equal sect (Bytes.sub data (s * sector_bytes) sector_bytes))
    then ok := false
  done;
  if !ok then Verified else Corrupt "disk contents differ from data written"

let serial_self_test (m : Machine.t) =
  let u = Drivers.Serial.Devil_driver.create m.uart_dev in
  Drivers.Serial.Devil_driver.init u ~baud:115200;
  if Drivers.Serial.Devil_driver.self_test u then Verified
  else Reported "loopback self-test reported failure"

let net_loopback (m : Machine.t) =
  let n = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init_loopback n ~mac:"\x02\x00\x00\x00\x00\x01";
  let frame = "devil fault campaign loopback frame" in
  Drivers.Net.Devil_driver.send n frame;
  match Drivers.Net.Devil_driver.receive n with
  | Some got when got = frame -> Verified
  | Some _ -> Corrupt "received frame differs from the one sent"
  | None -> Reported "no frame in the receive ring after send"

let driver_workloads = [ "ide-read"; "ide-write"; "serial"; "net" ]

let workloads =
  [
    ("ide-read", (Machine.ide_base, Machine.ide_base + 7), ide_read);
    ("ide-write", (Machine.ide_base, Machine.ide_base + 7), ide_write);
    ("serial", (Machine.uart_base, Machine.uart_base + 7), serial_self_test);
    ("net", (Machine.ne2000_base, Machine.ne2000_base + 31), net_loopback);
  ]

(* {1 Trial runner} *)

(* A trial's observability digest: what the bus, the policies and the
   injector did, condensed to one line for the report. The trial trace
   is deliberately small — the interesting window is the tail where
   the fault and the recovery happened. *)
let summarize ~(metrics : Metrics.t) ~(trace : Trace.t) =
  let c = Metrics.count metrics in
  Printf.sprintf
    "bus %dR/%dW (+%d blk), polls %d (%d ticks, %d timeouts), retries %d, \
     faults %d; %s"
    (c "bus.reads") (c "bus.writes")
    (c "bus.block_reads" + c "bus.block_writes")
    (c "poll.runs") (c "poll.ticks") (c "poll.timeouts") (c "retry.attempts")
    (c "fault.injections") (Trace.summary trace)

let run_trial ~driver ~range:(first, last) ~workload ~fault ~seed =
  let plans = plans_for ~fault ~first ~last in
  let metrics = Metrics.create () in
  let trace = Trace.create ~capacity:128 () in
  let m = Machine.create ~faults:plans ~fault_seed:seed ~metrics ~trace () in
  let verdict =
    (* Anything the driver raises counts as detected: the failure is
       visible to the caller, which is the property under test. *)
    try workload m with
    | Policy.Driver_error e -> Reported (Policy.error_to_string e)
    | Fault.Bus_fault msg -> Reported ("unhandled bus fault: " ^ msg)
    | Devil_runtime.Instance.Device_error msg ->
        Reported ("device error: " ^ msg)
    | Failure msg -> Reported msg
  in
  let injections =
    match m.injector with Some i -> Fault.injection_count i | None -> 0
  in
  let outcome, detail =
    match verdict with
    | Verified when injections = 0 -> (Clean, "no faults fired")
    | Verified ->
        ( Recovered,
          Printf.sprintf "verified end to end despite %d injections"
            injections )
    | Corrupt d -> ((if injections = 0 then Clean else Silent), d)
    | Reported d -> (Detected, d)
  in
  let trace_summary = summarize ~metrics ~trace in
  { driver; fault; seed; injections; outcome; detail; trace_summary }

let default_seeds = [ 1; 2; 3 ]

let run ?(seeds = default_seeds) () =
  (* Timeout trials would otherwise spin the full default deadline;
     20k status polls keep the whole matrix under a second. *)
  let saved = Policy.default_deadline () in
  Policy.set_default_deadline 20_000;
  Fun.protect
    ~finally:(fun () ->
      Policy.set_default_deadline saved;
      (* Each trial installed its own short-lived observer. *)
      Policy.unobserve ())
    (fun () ->
      let trials =
        List.concat_map
          (fun (driver, range, workload) ->
            List.concat_map
              (fun fault ->
                List.map
                  (fun seed -> run_trial ~driver ~range ~workload ~fault ~seed)
                  seeds)
              fault_classes)
          workloads
      in
      { trials })

(* {1 Reporting} *)

let count report ~driver ~fault outcome =
  List.length
    (List.filter
       (fun t -> t.driver = driver && t.fault = fault && t.outcome = outcome)
       report.trials)

let silent_trials report =
  List.filter (fun t -> t.outcome = Silent) report.trials

let pp_report fmt report =
  Format.fprintf fmt "%-10s %-14s %7s %9s %10s %7s %6s  %s@." "driver"
    "fault class" "trials" "detected" "recovered" "silent" "clean" "verdict";
  List.iter
    (fun (driver, _, _) ->
      List.iter
        (fun fault ->
          let c o = count report ~driver ~fault o in
          let detected = c Detected
          and recovered = c Recovered
          and silent = c Silent
          and clean = c Clean in
          let trials = detected + recovered + silent + clean in
          let verdict =
            if silent > 0 then "SILENT CORRUPTION"
            else if recovered > 0 then "recovers"
            else if detected > 0 then "fails safe"
            else "unexercised"
          in
          Format.fprintf fmt "%-10s %-14s %7d %9d %10d %7d %6d  %s@." driver
            fault trials detected recovered silent clean verdict)
        fault_classes)
    workloads;
  let silent = silent_trials report in
  let injected =
    List.fold_left (fun acc t -> acc + t.injections) 0 report.trials
  in
  Format.fprintf fmt
    "@.%d trials, %d faults injected, %d silent corruption%s@."
    (List.length report.trials)
    injected (List.length silent)
    (if List.length silent = 1 then "" else "s");
  List.iter
    (fun t ->
      Format.fprintf fmt "  silent: %s / %s seed %d (%d injections): %s@."
        t.driver t.fault t.seed t.injections t.detail;
      Format.fprintf fmt "    observed: %s@." t.trace_summary)
    silent
