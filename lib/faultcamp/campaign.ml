module Machine = Drivers.Machine
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Bus = Devil_runtime.Bus
module Coverage = Devil_runtime.Coverage
module Trace_export = Devil_runtime.Trace_export
module Health = Devil_runtime.Health

type outcome = Clean | Recovered | Detected | Silent

let outcome_label = function
  | Clean -> "clean"
  | Recovered -> "recovered"
  | Detected -> "detected"
  | Silent -> "silent"

type trial = {
  driver : string;
  fault : string;
  seed : int;
  injections : int;
  outcome : outcome;
  detail : string;
  trace_summary : string;
  health : Health.report;
}

type report = {
  trials : trial list;
  coverage : Coverage.report list;
      (* Spec coverage aggregated across the whole matrix, one report
         per instrumented device. *)
}

(* {1 Fault classes}

   Each class is instantiated over the target driver's register window
   so a trial only perturbs the device under test. Probabilities are
   per-operation; the budgeted transient plan is a deterministic burst
   (the first two covered accesses abort), sized below the retry
   allowance so a recovering driver demonstrably recovers. *)

let fault_classes =
  [ "stuck-bits"; "read-flip"; "dropped-write"; "dup-write"; "transient" ]

let plans_for ~fault ~first ~last =
  match fault with
  | "stuck-bits" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Read ] ~first ~last
          (Fault.Stuck_bits { and_mask = -1; or_mask = 0x01 });
      ]
  | "read-flip" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Read ] ~first ~last
          (Fault.Flip_bits { mask = 0x04; probability = 0.25 });
      ]
  | "dropped-write" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Write ] ~first ~last
          (Fault.Drop_write { probability = 0.2 });
      ]
  | "dup-write" ->
      [
        Fault.plan ~label:fault ~ops:[ Fault.Write ] ~first ~last
          (Fault.Duplicate_write { probability = 0.2 });
      ]
  | "transient" ->
      [
        Fault.plan ~label:fault ~budget:2 ~first ~last
          (Fault.Transient { probability = 1.0 });
      ]
  | f -> invalid_arg ("Campaign.plans_for: unknown fault class " ^ f)

(* {1 Driver workloads}

   Each workload drives a device end to end and then checks the result
   against ground truth obtained through the simulator's back door
   (which bypasses the faulty bus), so silent corruption is
   observable. *)

type verdict =
  | Verified  (** Driver reported success and the data checks out. *)
  | Corrupt of string  (** Driver reported success but the data is wrong. *)
  | Reported of string  (** Driver surfaced a failure. *)

let sector_bytes = Hwsim.Ide_disk.sector_bytes

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7 + 13) land 0xff))

let ide_read (m : Machine.t) =
  let count = 4 in
  let expected = pattern (count * sector_bytes) in
  for s = 0 to count - 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba:(100 + s)
      (Bytes.sub expected (s * sector_bytes) sector_bytes)
  done;
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let got =
    Drivers.Ide.Devil_driver.read_sectors d ~lba:100 ~count ~mult:1
      ~path:`Loop ~width:`W16
  in
  (* Post-transfer probe: the error-locate readback real drivers run
     when a command stops early (exercised here unconditionally so the
     campaign covers the task-file read path). The task file must
     still address the command we issued — the device never rewrites
     it during PIO — so a mismatch means the probe the driver would
     lean on after a real failure is itself untrustworthy, and the
     driver reports that rather than ignoring the readback. *)
  let tf_count, tf_lba = Drivers.Ide.Devil_driver.read_task_file d in
  if tf_count <> count || tf_lba <> 100 then
    Policy.fail
      (Policy.Device_fault
         (Printf.sprintf
            "ide: task file reads back (count=%d, lba=%d), not the issued \
             (count=%d, lba=100)"
            tf_count tf_lba count));
  if Bytes.equal got expected then Verified
  else Corrupt "read data differs from disk contents"

let ide_write (m : Machine.t) =
  let count = 4 in
  let data = pattern (count * sector_bytes) in
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  Drivers.Ide.Devil_driver.set_features d 0;
  Drivers.Ide.Devil_driver.write_sectors d ~lba:200 ~count ~mult:1 ~path:`Loop
    ~width:`W16 data;
  let ok = ref true in
  for s = 0 to count - 1 do
    let sect = Hwsim.Ide_disk.read_sector m.disk ~lba:(200 + s) in
    if not (Bytes.equal sect (Bytes.sub data (s * sector_bytes) sector_bytes))
    then ok := false
  done;
  if !ok then Verified else Corrupt "disk contents differ from data written"

let serial_self_test (m : Machine.t) =
  let u = Drivers.Serial.Devil_driver.create m.uart_dev in
  Drivers.Serial.Devil_driver.init u ~baud:115200;
  if Drivers.Serial.Devil_driver.self_test u then Verified
  else Reported "loopback self-test reported failure"

let net_loopback (m : Machine.t) =
  let n = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init_loopback n ~mac:"\x02\x00\x00\x00\x00\x01";
  let frame = "devil fault campaign loopback frame" in
  Drivers.Net.Devil_driver.send n frame;
  match Drivers.Net.Devil_driver.receive n with
  | Some got when got = frame -> Verified
  | Some _ -> Corrupt "received frame differs from the one sent"
  | None -> Reported "no frame in the receive ring after send"

(* The Permedia2 render workload exercises every path of the gfx
   driver: the software framebuffer aperture (block stubs, both
   directions), an engine fill through the independent-variable path
   (8 bpp) and an engine copy through the grouped-structure path
   (24 bpp). Back-door checks are accumulated — never branched on —
   so the driver issues the same bus traffic whatever the device
   state, which record/replay relies on. *)
let gfx_render (m : Machine.t) =
  let module G = Drivers.Gfx.Devil_driver in
  let module P = Hwsim.Permedia2 in
  let g = G.create m.gfx_dev in
  let bad = ref [] in
  let check what ok = if not ok then bad := what :: !bad in
  (* Software path: the aperture cursor starts at pixel (0, 0). *)
  let ramp = Array.init 8 (fun i -> 0x30 + i) in
  Devil_runtime.Instance.write_block m.gfx_dev "fb_data" ramp;
  check "software fill through the fb aperture"
    (Array.for_all Fun.id
       (Array.mapi (fun i v -> P.pixel m.gfx ~x:i ~y:0 = v) ramp));
  for i = 0 to 3 do
    P.set_pixel m.gfx ~x:(8 + i) ~y:0 (0x60 + i)
  done;
  let back = Devil_runtime.Instance.read_block m.gfx_dev "fb_data" ~count:4 in
  check "software read-back through the fb aperture"
    (back = Array.init 4 (fun i -> 0x60 + i));
  (* Engine fill, 8 bpp: one write per coordinate variable. *)
  let rx = 2 and ry = 4 and rw = 6 and rh = 3 in
  G.set_depth g 8;
  G.fill_rect g { Drivers.Gfx.x = rx; y = ry; w = rw; h = rh } ~color:0x5a;
  G.sync g;
  let rect_filled x y color =
    let ok = ref true in
    for py = y to y + rh - 1 do
      for px = x to x + rw - 1 do
        if P.pixel m.gfx ~x:px ~y:py <> color then ok := false
      done
    done;
    !ok
  in
  check "engine fill" (rect_filled rx ry 0x5a);
  check "engine fill clipped to the rectangle"
    (P.pixel m.gfx ~x:(rx + rw) ~y:ry = 0);
  (* Engine copy, 24 bpp: grouped structure stubs, destination
     displaced from the filled rectangle by (dx, dy). *)
  G.set_depth g 24;
  G.copy_rect g
    { Drivers.Gfx.x = rx + 10; y = ry; w = rw; h = rh }
    ~dx:10 ~dy:0;
  G.sync g;
  check "engine copy" (rect_filled (rx + 10) ry 0x5a);
  check "no FIFO overflow" (P.overflows m.gfx = 0);
  match List.rev !bad with
  | [] -> Verified
  | faults -> Corrupt (String.concat "; " faults)

(* {2 Asynchronous (interrupt-driven) workloads}

   The queued drivers under the same adversarial bus as their polling
   counterparts. Interrupt delivery itself — the 8259A poll-command
   acknowledge and the EOI — runs as bus traffic outside the faulted
   range, mirroring real boards where the interrupt controller does
   not share the device's bus segment. *)

let ide_dma_async (m : Machine.t) =
  let count = 2 and lba0 = 300 and commands = 2 in
  let total = commands * count in
  let expected = pattern (total * sector_bytes) in
  for s = 0 to total - 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba:(lba0 + s)
      (Bytes.sub expected (s * sector_bytes) sector_bytes)
  done;
  Hwsim.Piix4.set_latency m.busmaster 4;
  let sched = Machine.sched m in
  let d =
    Drivers.Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev
      ~piix4:m.piix4_dev
  in
  let got = Bytes.make (total * sector_bytes) '\000' in
  let rqs =
    List.init commands (fun i ->
        Drivers.Ide.Async.read_dma d ~lba:(lba0 + (i * count)) ~count
          ~on_data:(fun b ->
            Bytes.blit b 0 got (i * count * sector_bytes) (Bytes.length b))
          ())
  in
  List.iter (fun rq -> Drivers.Ide.Async.await d rq) rqs;
  (* The same error-locate probe as the synchronous workload: the task
     file must still address the last command the queue issued. *)
  let last_lba = lba0 + ((commands - 1) * count) in
  let ide_drv = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let tf_count, tf_lba = Drivers.Ide.Devil_driver.read_task_file ide_drv in
  if tf_count <> count || tf_lba <> last_lba then
    Policy.fail
      (Policy.Device_fault
         (Printf.sprintf
            "ide: task file reads back (count=%d, lba=%d), not the issued \
             (count=%d, lba=%d)"
            tf_count tf_lba count last_lba));
  if Bytes.equal got expected then Verified
  else Corrupt "DMA data differs from disk contents"

let net_async (m : Machine.t) =
  let sched = Machine.sched m in
  let inst = m.ne2000_dev in
  let sync = Drivers.Net.Devil_driver.create inst in
  let a = Drivers.Net.Async.create ~sched ~line:Machine.irq_net inst in
  Drivers.Net.Devil_driver.init sync ~mac:"\x02\x00\x00\x00\x00\x02";
  let got = ref [] in
  Drivers.Net.Async.on_frame a (fun f -> got := f :: !got);
  let frames =
    List.init 3 (fun i ->
        String.init 40 (fun j -> Char.chr (((i * 40) + (j * 3) + 5) land 0xff)))
  in
  List.iter
    (fun f ->
      if not (Hwsim.Ne2000.inject_frame m.nic f) then
        failwith "net async: receive ring rejected an injected frame")
    frames;
  let budget = ref 64 in
  while List.length !got < List.length frames && !budget > 0 do
    Devil_runtime.Sched.tick sched;
    decr budget
  done;
  if List.length !got < List.length frames then
    Policy.fail
      (Policy.Device_fault
         (Printf.sprintf "net: %d of %d frames drained before the deadline"
            (List.length !got) (List.length frames)));
  (* One transmission through the queue, completed by the PTX irq. *)
  let tx = "devil fault campaign async tx frame" in
  Drivers.Net.Async.await a (Drivers.Net.Async.send a tx);
  if List.rev !got <> frames then
    Corrupt "drained frames differ from the ones injected"
  else
    match Hwsim.Ne2000.take_transmitted m.nic with
    | [ sent ] when sent = tx -> Verified
    | [ _ ] -> Corrupt "transmitted frame differs from the one sent"
    | l ->
        Reported
          (Printf.sprintf "expected 1 transmitted frame, found %d"
             (List.length l))

let driver_workloads =
  [ "ide-read"; "ide-write"; "serial"; "net"; "gfx"; "ide-dma-async"; "net-async" ]

(* A bus tape carries transfers, not interrupt wires: under
   [Bus.replaying] the device models see no traffic, so a source
   sampling a model's INT pin never asserts and an interrupt-driven
   workload can only time out. Replay guarantees therefore cover the
   polling workloads, where everything the driver observed IS on the
   tape. *)
let replayable_workloads = [ "ide-read"; "ide-write"; "serial"; "net"; "gfx" ]

let workloads =
  [
    ("ide-read", (Machine.ide_base, Machine.ide_base + 7), ide_read);
    ("ide-write", (Machine.ide_base, Machine.ide_base + 7), ide_write);
    ("serial", (Machine.uart_base, Machine.uart_base + 7), serial_self_test);
    ("net", (Machine.ne2000_base, Machine.ne2000_base + 31), net_loopback);
    ("gfx", (Machine.gfx_mmio_base, Machine.gfx_mmio_base + 15), gfx_render);
    ( "ide-dma-async",
      (Machine.ide_base, Machine.ide_base + 7),
      ide_dma_async );
    ( "net-async",
      (Machine.ne2000_base, Machine.ne2000_base + 31),
      net_async );
  ]

(* The devices whose spec coverage the campaign aggregates: one
   (instance label, compiled spec) pair per device the workloads
   drive. *)
let coverage_devices () =
  [
    ("ide", Devil_specs.Specs.ide ());
    ("piix4", Devil_specs.Specs.piix4_ide ());
    ("uart", Devil_specs.Specs.uart16550 ());
    ("ne2000", Devil_specs.Specs.ne2000 ());
    ("gfx", Devil_specs.Specs.permedia2 ());
  ]

(* {1 Trial runner} *)

(* A trial's observability digest: what the bus, the policies and the
   injector did, condensed to one line for the report. The trial trace
   is deliberately small — the interesting window is the tail where
   the fault and the recovery happened. *)
let summarize ~(metrics : Metrics.t) ~(trace : Trace.t) =
  let c = Metrics.count metrics in
  Printf.sprintf
    "bus %dR/%dW (+%d blk), polls %d (%d ticks, %d timeouts), retries %d, \
     faults %d; %s"
    (c "bus.reads") (c "bus.writes")
    (c "bus.block_reads" + c "bus.block_writes")
    (c "poll.runs") (c "poll.ticks") (c "poll.timeouts") (c "retry.attempts")
    (c "fault.injections") (Trace.summary trace)

(* Anything the driver raises counts as detected: the failure is
   visible to the caller, which is the property under test. *)
let run_workload m workload =
  try workload m with
  | Policy.Driver_error e -> Reported (Policy.error_to_string e)
  | Fault.Bus_fault msg -> Reported ("unhandled bus fault: " ^ msg)
  | Bus.Replay_divergence msg -> Reported ("replay divergence: " ^ msg)
  | Devil_runtime.Instance.Device_error msg -> Reported ("device error: " ^ msg)
  | Failure msg -> Reported msg

let run_trial ?(covs = []) ?profile ~driver ~range:(first, last) ~workload
    ~fault ~seed () =
  let plans = plans_for ~fault ~first ~last in
  let metrics = Metrics.create () in
  let trace = Trace.create ~capacity:128 () in
  (* Coverage observers hook the live stream (O(1) per event), so the
     small retention ring above does not bound what they see. *)
  List.iter (fun cov -> Coverage.attach cov trace) covs;
  let m =
    Machine.create ~faults:plans ~fault_seed:seed ~metrics ~trace ?profile
      ~lifecycle:true ()
  in
  let verdict = run_workload m workload in
  let injections =
    match m.injector with Some i -> Fault.injection_count i | None -> 0
  in
  (* The watchdog's view of the same trial: did the run merely fail
     loudly, or did the async path stall, storm or lose interrupts?
     Ring evictions are expected here — the 128-entry retention ring
     above is deliberately small (coverage observes the live stream) —
     so [trace_drops] alone must not mark a trial unhealthy. *)
  let health = Machine.health ~thresholds:[ ("trace_drops", max_int) ] m in
  let outcome, detail =
    match verdict with
    | Verified when injections = 0 -> (Clean, "no faults fired")
    | Verified ->
        ( Recovered,
          Printf.sprintf "verified end to end despite %d injections"
            injections )
    | Corrupt d -> ((if injections = 0 then Clean else Silent), d)
    | Reported d -> (Detected, d)
  in
  let trace_summary = summarize ~metrics ~trace in
  { driver; fault; seed; injections; outcome; detail; trace_summary; health }

let default_seeds = [ 1; 2; 3 ]

(* Runs [f] with the short poll deadline every campaign entry point
   uses, restoring it (and the global policy observer each trial
   installs) on the way out. *)
let with_campaign_policy f =
  (* Timeout trials would otherwise spin the full default deadline;
     20k status polls keep the whole matrix under a second. *)
  let saved = Policy.default_deadline () in
  Policy.set_default_deadline 20_000;
  Fun.protect
    ~finally:(fun () ->
      Policy.set_default_deadline saved;
      Policy.unobserve ())
    f

(* {1 Record / replay}

   A trial re-run with [Bus.recording] interposed (inside the
   observability wrapper, outside the fault injector) yields a tape of
   every transfer the drivers issued with the response — including
   injected faults — they observed. [record_replay] then re-runs the
   same workload against [Bus.replaying tape]: no simulated hardware,
   no injector, just the taped responses. The driver-visible outcome
   and the event stream must come out identical.

   Two normalizations when comparing the streams: [Fault_injected]
   events are the injector's own bookkeeping (the replay has no
   injector; the faults' effects are on the tape), so they are
   dropped; and sequence numbers are ignored since dropping shifts
   them. Back-door data checks (disk contents, framebuffer pixels) are
   NOT compared — a replaying bus never touches the device models, so
   only what the driver itself observed is meaningful. *)

type replay_check = {
  rc_driver : string;
  rc_fault : string option;
  rc_seed : int;
  rc_tape_length : int;
  rc_live : string;
  rc_replayed : string;
  rc_outcome_match : bool;
  rc_trace_match : bool;
  rc_mismatch : string option;
}

let driver_visible = function
  | Verified | Corrupt _ -> "completed"
  | Reported d -> "failed: " ^ d

let comparable_kinds trace =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.kind with Trace.Fault_injected _ -> None | k -> Some k)
    (Trace.events trace)

let find_workload driver =
  match List.find_opt (fun (d, _, _) -> d = driver) workloads with
  | Some w -> w
  | None -> invalid_arg ("Campaign: unknown driver workload " ^ driver)

let first_kind_mismatch ka kb =
  let rec go i = function
    | [], [] -> None
    | k :: _, [] ->
        Some
          (Format.asprintf "event %d only in live run: %a" i Trace.pp_kind k)
    | [], k :: _ ->
        Some (Format.asprintf "event %d only in replay: %a" i Trace.pp_kind k)
    | a :: ra, b :: rb ->
        if a = b then go (i + 1) (ra, rb)
        else
          Some
            (Format.asprintf "event %d differs: live %a, replay %a" i
               Trace.pp_kind a Trace.pp_kind b)
  in
  go 0 (ka, kb)

let record_trial ?fault ~driver ~seed () =
  let _, (first, last), workload = find_workload driver in
  let faults = Option.map (fun f -> plans_for ~fault:f ~first ~last) fault in
  let trace = Trace.create ~capacity:262_144 () in
  let metrics = Metrics.create () in
  let tape = ref None in
  let wrap_bus b =
    let t, b' = Bus.recording b in
    tape := Some t;
    b'
  in
  let m =
    Machine.create ?faults ~fault_seed:seed ~trace ~metrics ~wrap_bus ()
  in
  let verdict = run_workload m workload in
  (Option.get !tape, trace, verdict)

let replay_trial ~driver ~tape () =
  let _, _, workload = find_workload driver in
  let trace = Trace.create ~capacity:262_144 () in
  let metrics = Metrics.create () in
  let m =
    Machine.create ~trace ~metrics
      ~wrap_bus:(fun _ -> Bus.replaying tape)
      ()
  in
  let verdict = run_workload m workload in
  (trace, verdict)

let record_replay ?fault ~driver ~seed () =
  with_campaign_policy (fun () ->
      let tape, live_trace, live = record_trial ?fault ~driver ~seed () in
      Policy.unobserve ();
      let replay_trace, replayed = replay_trial ~driver ~tape () in
      let live_v = driver_visible live
      and replayed_v = driver_visible replayed in
      let ka = comparable_kinds live_trace
      and kb = comparable_kinds replay_trace in
      let mismatch = first_kind_mismatch ka kb in
      {
        rc_driver = driver;
        rc_fault = fault;
        rc_seed = seed;
        rc_tape_length = Bus.tape_length tape;
        rc_live = live_v;
        rc_replayed = replayed_v;
        rc_outcome_match = live_v = replayed_v;
        rc_trace_match = mismatch = None;
        rc_mismatch = mismatch;
      })

(* {1 Export}

   With [DEVIL_FAULTCAMP_EXPORT] set to a directory, [run] re-records
   every failing (detected or silent) trial and writes its artifacts
   there: the event trace and the bus tape as versioned JSONL (the
   tracetool / [Bus.replaying] inputs) plus the Chrome-viewable trace
   JSON. *)

let export_env = "DEVIL_FAULTCAMP_EXPORT"

let export_trial ~dir ?fault ~driver ~seed () =
  with_campaign_policy (fun () ->
      let tape, trace, _ = record_trial ?fault ~driver ~seed () in
      let base =
        Filename.concat dir
          (Printf.sprintf "%s-%s-seed%d" driver
             (Option.value fault ~default:"clean")
             seed)
      in
      let files =
        [
          (base ^ ".trace.jsonl", Trace_export.to_jsonl trace);
          (base ^ ".tape.jsonl", Trace_export.tape_to_jsonl tape);
          (base ^ ".chrome.json", Trace_export.to_chrome (Trace.events trace));
        ]
      in
      List.iter (fun (path, data) -> Trace_export.write_file path data) files;
      List.map fst files)

(* For the check.sh replay gate: record a fault-free trial, replay its
   tape, and persist both event streams. With no injector in the
   picture the two JSONL files must be byte-identical — an empty
   [tracetool diff]. *)
let export_replay_smoke ~dir ~driver ~seed =
  with_campaign_policy (fun () ->
      let tape, live_trace, _ = record_trial ~driver ~seed () in
      Policy.unobserve ();
      let replay_trace, _ = replay_trial ~driver ~tape () in
      let recorded =
        Filename.concat dir (Printf.sprintf "%s-smoke.recorded.jsonl" driver)
      in
      let replayed =
        Filename.concat dir (Printf.sprintf "%s-smoke.replayed.jsonl" driver)
      in
      Trace_export.write_file recorded (Trace_export.to_jsonl live_trace);
      Trace_export.write_file replayed (Trace_export.to_jsonl replay_trace);
      (recorded, replayed))

let run ?(seeds = default_seeds) ?profile () =
  with_campaign_policy (fun () ->
      let covs =
        List.map (fun (dev, device) -> Coverage.create ~dev device)
          (coverage_devices ())
      in
      let trials =
        List.concat_map
          (fun (driver, range, workload) ->
            List.concat_map
              (fun fault ->
                List.map
                  (fun seed ->
                    run_trial ~covs ?profile ~driver ~range ~workload ~fault
                      ~seed ())
                  seeds)
              fault_classes)
          workloads
      in
      (match Sys.getenv_opt export_env with
      | None | Some "" -> ()
      | Some dir ->
          List.iter
            (fun t ->
              match t.outcome with
              | Detected | Silent ->
                  ignore
                    (export_trial ~dir ~fault:t.fault ~driver:t.driver
                       ~seed:t.seed ())
              | Clean | Recovered -> ())
            trials);
      { trials; coverage = List.map Coverage.report covs })

(* {1 Reporting} *)

let count report ~driver ~fault outcome =
  List.length
    (List.filter
       (fun t -> t.driver = driver && t.fault = fault && t.outcome = outcome)
       report.trials)

let silent_trials report =
  List.filter (fun t -> t.outcome = Silent) report.trials

let unhealthy_trials report =
  List.filter (fun t -> not (Health.is_ok t.health)) report.trials

let pp_report fmt report =
  Format.fprintf fmt "%-10s %-14s %7s %9s %10s %7s %6s  %s@." "driver"
    "fault class" "trials" "detected" "recovered" "silent" "clean" "verdict";
  List.iter
    (fun (driver, _, _) ->
      List.iter
        (fun fault ->
          let c o = count report ~driver ~fault o in
          let detected = c Detected
          and recovered = c Recovered
          and silent = c Silent
          and clean = c Clean in
          let trials = detected + recovered + silent + clean in
          let verdict =
            if silent > 0 then "SILENT CORRUPTION"
            else if recovered > 0 then "recovers"
            else if detected > 0 then "fails safe"
            else "unexercised"
          in
          Format.fprintf fmt "%-10s %-14s %7d %9d %10d %7d %6d  %s@." driver
            fault trials detected recovered silent clean verdict)
        fault_classes)
    workloads;
  let silent = silent_trials report in
  let injected =
    List.fold_left (fun acc t -> acc + t.injections) 0 report.trials
  in
  Format.fprintf fmt
    "@.%d trials, %d faults injected, %d silent corruption%s@."
    (List.length report.trials)
    injected (List.length silent)
    (if List.length silent = 1 then "" else "s");
  List.iter
    (fun t ->
      Format.fprintf fmt "  silent: %s / %s seed %d (%d injections): %s@."
        t.driver t.fault t.seed t.injections t.detail;
      Format.fprintf fmt "    observed: %s@." t.trace_summary)
    silent;
  (* Health regressions are a separate axis from the oracle verdicts: a
     trial can fail safe (detected) yet leave the async path stalled or
     storming, which is what the watchdog flags. *)
  let unhealthy = unhealthy_trials report in
  let stalled =
    List.length
      (List.filter (fun t -> t.health.Health.verdict = Health.Stalled) unhealthy)
  in
  Format.fprintf fmt "health: %d/%d trials non-ok (%d stalled, %d degraded)@."
    (List.length unhealthy)
    (List.length report.trials)
    stalled
    (List.length unhealthy - stalled);
  List.iter
    (fun t ->
      Format.fprintf fmt "  health: %s / %s seed %d: %s@." t.driver t.fault
        t.seed (Health.summary t.health))
    unhealthy;
  if report.coverage <> [] then begin
    Format.fprintf fmt "@.spec coverage across the matrix:@.";
    List.iter
      (fun (r : Coverage.report) ->
        Format.fprintf fmt
          "coverage %-8s registers %d/%d (%.1f%%)  sites %d/%d (%.1f%%)  \
           read %d/%d  write %d/%d@."
          r.rp_dev r.rp_reg_covered r.rp_reg_total (Coverage.reg_percent r)
          r.rp_covered r.rp_total (Coverage.site_percent r) r.rp_read_covered
          r.rp_read_total r.rp_write_covered r.rp_write_total)
      report.coverage
  end

let pp_replay_check fmt rc =
  Format.fprintf fmt
    "%s%s seed %d: tape %d transfers; live %s, replay %s; outcomes %s, \
     traces %s%s"
    rc.rc_driver
    (match rc.rc_fault with Some f -> " / " ^ f | None -> " (no faults)")
    rc.rc_seed rc.rc_tape_length rc.rc_live rc.rc_replayed
    (if rc.rc_outcome_match then "match" else "DIVERGE")
    (if rc.rc_trace_match then "match" else "DIVERGE")
    (match rc.rc_mismatch with Some m -> ": " ^ m | None -> "")
