module Instance = Devil_runtime.Instance
module Io_space = Hwsim.Io_space

type t = {
  space : Io_space.t;
  bus : Devil_runtime.Bus.t;
  injector : Devil_runtime.Fault.t option;
  trace : Devil_runtime.Trace.t option;
  metrics : Devil_runtime.Metrics.t option;
  profile : Devil_runtime.Profile.t option;
  mouse : Hwsim.Busmouse.t;
  disk : Hwsim.Ide_disk.t;
  busmaster : Hwsim.Piix4.t;
  nic : Hwsim.Ne2000.t;
  dma : Hwsim.Dma8237.t;
  pic : Hwsim.Pic8259.t;
  sound : Hwsim.Cs4236b.t;
  gfx : Hwsim.Permedia2.t;
  uart : Hwsim.Uart16550.t;
  rtc : Hwsim.Mc146818.t;
  kbd : Hwsim.I8042.t;
  mouse_dev : Instance.t;
  ide_dev : Instance.t;
  piix4_dev : Instance.t;
  ne2000_dev : Instance.t;
  dma_dev : Instance.t;
  pic_dev : Instance.t;
  sound_dev : Instance.t;
  gfx_dev : Instance.t;
  uart_dev : Instance.t;
  rtc_dev : Instance.t;
  kbd_dev : Instance.t;
  lifecycle : Devil_runtime.Lifecycle.t option;
  telemetry : Devil_runtime.Telemetry.t option;
  mutable sched_ : Devil_runtime.Sched.t option;
}

let mouse_base = 0x23c
let ide_base = 0x1f0
let ide_ctrl_base = 0x3f6
let piix4_base = 0xc000
let piix4_prd_base = 0xc004
let ne2000_base = 0x300
let dma_base = 0x00
let pic_base = 0x20
let sound_base = 0x530
let gfx_mmio_base = 0xd000_0000
let gfx_fb_base = 0xd100_0000
let uart_base = 0x3f8
let rtc_index_base = 0x70
let rtc_data_base = 0x71
let kbd_data_base = 0x60
let kbd_ctl_base = 0x64

(* Interrupt request lines at the (single, master) 8259A — the classic
   assignments folded onto lines 1..7 (line 0 stays free for a timer). *)
let irq_kbd = 1
let irq_gfx = 2
let irq_net = 3
let irq_uart = 4
let irq_sound = 5
let irq_ide = 6
let irq_mouse = 7

let irq_line = function
  | "kbd" -> Some irq_kbd
  | "gfx" -> Some irq_gfx
  | "ne2000" -> Some irq_net
  | "uart" -> Some irq_uart
  | "sound" -> Some irq_sound
  | "ide" -> Some irq_ide
  | "mouse" -> Some irq_mouse
  | _ -> None

let create ?(debug = false) ?faults ?fault_seed ?trace ?metrics ?profile
    ?telemetry ?interpret ?(wrap_bus = Fun.id) ?(lifecycle = false)
    ?lifecycle_clock () =
  (* Handles not given explicitly can still be enabled from the
     environment (DEVIL_TRACE / DEVIL_METRICS / DEVIL_PROFILE). *)
  let trace =
    match trace with Some _ -> trace | None -> Devil_runtime.Trace.from_env ()
  in
  let metrics =
    match metrics with
    | Some _ -> metrics
    | None -> Devil_runtime.Metrics.from_env ()
  in
  (* After metrics, so an env-enabled profiler feeds span.<key>.ns
     histograms into an env-enabled registry. *)
  let profile =
    match profile with
    | Some _ -> profile
    | None -> Devil_runtime.Profile.from_env ?metrics ()
  in
  (* Telemetry samples the registry, so it only exists when one does
     (explicit or env-enabled). *)
  let telemetry =
    match (telemetry, metrics) with
    | (Some _ as t), _ -> t
    | None, Some m -> Devil_runtime.Telemetry.from_env m
    | None, None -> None
  in
  let space = Io_space.create () in
  let mouse = Hwsim.Busmouse.create () in
  let disk = Hwsim.Ide_disk.create () in
  let busmaster = Hwsim.Piix4.create ~disk ~memory_size:(1 lsl 20) in
  let nic = Hwsim.Ne2000.create () in
  let dma = Hwsim.Dma8237.create ~memory_size:(1 lsl 16) in
  let pic = Hwsim.Pic8259.create () in
  let sound = Hwsim.Cs4236b.create () in
  let gfx = Hwsim.Permedia2.create () in
  let uart = Hwsim.Uart16550.create () in
  let rtc = Hwsim.Mc146818.create () in
  let kbd = Hwsim.I8042.create () in
  Io_space.attach space ~base:mouse_base ~size:4 (Hwsim.Busmouse.model mouse);
  Io_space.attach space ~base:ide_base ~size:8
    (Hwsim.Ide_disk.command_model disk);
  Io_space.attach space ~base:ide_ctrl_base ~size:1
    (Hwsim.Ide_disk.control_model disk);
  Io_space.attach space ~base:piix4_base ~size:4
    (Hwsim.Piix4.bm_model busmaster);
  Io_space.attach space ~base:piix4_prd_base ~size:1
    (Hwsim.Piix4.prd_model busmaster);
  Io_space.attach space ~base:ne2000_base ~size:32 (Hwsim.Ne2000.model nic);
  Io_space.attach space ~base:dma_base ~size:16 (Hwsim.Dma8237.model dma);
  Io_space.attach space ~base:pic_base ~size:2 (Hwsim.Pic8259.model pic);
  Io_space.attach space ~base:sound_base ~size:4 (Hwsim.Cs4236b.model sound);
  Io_space.attach space ~base:gfx_mmio_base ~size:16
    (Hwsim.Permedia2.mmio_model gfx);
  Io_space.attach space ~base:gfx_fb_base ~size:1
    (Hwsim.Permedia2.fb_model gfx);
  Io_space.attach space ~base:uart_base ~size:8 (Hwsim.Uart16550.model uart);
  Io_space.attach space ~base:rtc_index_base ~size:1
    (Hwsim.Mc146818.index_model rtc);
  Io_space.attach space ~base:rtc_data_base ~size:1
    (Hwsim.Mc146818.data_model rtc);
  Io_space.attach space ~base:kbd_data_base ~size:1
    (Hwsim.I8042.data_model kbd);
  Io_space.attach space ~base:kbd_ctl_base ~size:1
    (Hwsim.I8042.control_model kbd);
  (* The injector wraps the raw bus, so Devil instances and handcrafted
     drivers alike see the same injected faults. *)
  let raw_bus = Io_space.bus space in
  let injector =
    Option.map
      (fun plans ->
        Devil_runtime.Fault.wrap ?seed:fault_seed ?sink:trace ?metrics ~plans
          raw_bus)
      faults
  in
  (* The observer wraps outside the injector, so the bus events in the
     trace carry the post-fault values the drivers actually saw. *)
  let bus =
    Devil_runtime.Bus.observed ?trace ?metrics ?profile
      (wrap_bus
         (match injector with
         | None -> raw_bus
         | Some inj -> Devil_runtime.Fault.bus inj))
  in
  if Option.is_some trace || Option.is_some metrics || Option.is_some profile
  then Devil_runtime.Policy.observe ?trace ?metrics ?profile ();
  (* Ring evictions become a live counter instead of a value you have
     to remember to poll off the ring. *)
  (match (trace, metrics) with
  | Some tr, Some m ->
      Devil_runtime.Trace.set_drop_hook tr (fun () ->
          Devil_runtime.Metrics.incr m "trace.dropped_events")
  | _ -> ());
  let lifecycle =
    match trace with
    | Some tr when lifecycle ->
        Some
          (Devil_runtime.Lifecycle.attach ?clock:lifecycle_clock ?metrics tr)
    | _ -> None
  in
  let mk label device bases =
    Instance.create ~debug ~label ?trace ?metrics ?profile ?interpret device
      ~bus ~bases
  in
  {
    space;
    bus;
    injector;
    trace;
    metrics;
    profile;
    mouse;
    disk;
    busmaster;
    nic;
    dma;
    pic;
    sound;
    gfx;
    uart;
    rtc;
    kbd;
    mouse_dev =
      mk "mouse" (Devil_specs.Specs.busmouse ()) [ ("base", mouse_base) ];
    ide_dev =
      mk "ide" (Devil_specs.Specs.ide ())
        [ ("data", ide_base); ("cmd", ide_base); ("ctrl", ide_ctrl_base) ];
    piix4_dev =
      mk "piix4" (Devil_specs.Specs.piix4_ide ())
        [ ("bm", piix4_base); ("prd", piix4_prd_base) ];
    ne2000_dev =
      mk "ne2000" (Devil_specs.Specs.ne2000 ()) [ ("base", ne2000_base) ];
    dma_dev = mk "dma" (Devil_specs.Specs.dma8237 ()) [ ("base", dma_base) ];
    pic_dev =
      mk "pic" (Devil_specs.Specs.pic8259 ~master:true ())
        [ ("base", pic_base) ];
    sound_dev =
      mk "sound" (Devil_specs.Specs.cs4236b ()) [ ("base", sound_base) ];
    gfx_dev =
      mk "gfx" (Devil_specs.Specs.permedia2 ())
        [ ("mmio", gfx_mmio_base); ("fb", gfx_fb_base) ];
    uart_dev =
      mk "uart" (Devil_specs.Specs.uart16550 ()) [ ("base", uart_base) ];
    rtc_dev =
      mk "rtc" (Devil_specs.Specs.mc146818 ())
        [ ("idx", rtc_index_base); ("data", rtc_data_base) ];
    kbd_dev =
      mk "kbd" (Devil_specs.Specs.i8042 ())
        [ ("data", kbd_data_base); ("ctl", kbd_ctl_base) ];
    lifecycle;
    telemetry;
    sched_ = None;
  }

(* The event loop over this machine, built on first use.

   The controller closures split along the hardware's own seam: raising
   a line is a wire from the device's INT pin (no bus traffic), while
   acknowledge and EOI are programmed I/O against the 8259A — the OCW3
   poll-command handshake and a specific-EOI OCW2 — so interrupt
   delivery goes through the same observed, fault-injectable bus as
   every other access the driver makes. *)
let sched t =
  match t.sched_ with
  | Some s -> s
  | None ->
      let module Sched = Devil_runtime.Sched in
      let ctl_raise ~line = Hwsim.Pic8259.raise_irq t.pic ~line in
      let ctl_ack () =
        (* OCW3 with the poll bit: the next read acts as INTA. *)
        t.bus.write ~width:1 ~addr:pic_base ~value:0x0c;
        let v = t.bus.read ~width:1 ~addr:pic_base in
        if v land 0x80 <> 0 then Some (v land 0x7) else None
      in
      let ctl_eoi ~line =
        t.bus.write ~width:1 ~addr:pic_base ~value:(0x60 lor (line land 0x7))
      in
      let s =
        Sched.create ?trace:t.trace ?metrics:t.metrics ?profile:t.profile
          { Sched.ctl_raise; ctl_ack; ctl_eoi }
      in
      (* Program the controller the way a kernel would: ICW1..ICW4
         (edge-triggered, single, 8086 mode, vectors at 0x20), then
         unmask every line. *)
      if not (Hwsim.Pic8259.initialized t.pic) then begin
        t.bus.write ~width:1 ~addr:pic_base ~value:0x11;
        t.bus.write ~width:1 ~addr:(pic_base + 1) ~value:0x20;
        t.bus.write ~width:1 ~addr:(pic_base + 1) ~value:0x04;
        t.bus.write ~width:1 ~addr:(pic_base + 1) ~value:0x01;
        t.bus.write ~width:1 ~addr:(pic_base + 1) ~value:0x00
      end;
      Hwsim.Pic8259.set_int_callback t.pic (fun level -> Sched.note_int s level);
      (* The IDE line wire-ORs the disk's own INTRQ with the busmaster's
         transfer-complete status, as on a PIIX4 board. *)
      Sched.add_source s ~line:irq_ide ~dev:"ide" (fun () ->
          Hwsim.Ide_disk.irq_pending t.disk || Hwsim.Piix4.irq_seen t.busmaster);
      Sched.add_source s ~line:irq_net ~dev:"ne2000" (fun () ->
          Hwsim.Ne2000.irq_asserted t.nic);
      (* The busmaster's deferred DMA engine advances with virtual time. *)
      Sched.add_ticker s (fun () -> Hwsim.Piix4.tick t.busmaster);
      t.sched_ <- Some s;
      s

let health ?thresholds t =
  Devil_runtime.Health.evaluate ?thresholds ?lifecycle:t.lifecycle
    ?trace:t.trace ?metrics:t.metrics ()

(* The one-call sampling point workloads drop into their outer loop:
   a no-op (and allocation-free) unless the machine carries a
   telemetry handle. *)
let telemetry_tick ?thresholds t =
  match t.telemetry with
  | None -> ()
  | Some tel -> Devil_runtime.Telemetry.tick ~health:(health ?thresholds t) tel

let reset_io_stats t = Io_space.reset_stats t.space
let io_ops t = Io_space.io_ops t.space
let single_ops t = Io_space.single_ops t.space
let stats t = Io_space.stats t.space
