module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let set_volume t ~left ~right =
    Instance.set t "left_attenuation" (Value.Int (left land 0x3f));
    Instance.set t "left_mute" (Value.Bool false);
    Instance.set t "right_attenuation" (Value.Int (right land 0x3f));
    Instance.set t "right_mute" (Value.Bool false)

  let mute t on =
    Instance.set t "left_mute" (Value.Bool on);
    Instance.set t "right_mute" (Value.Bool on)

  let chip_version t =
    match Instance.get t "chip_version" with
    | Value.Int v -> v
    | v ->
        Policy.fail
          (Policy.Device_fault
             ("chip_version: expected int, got " ^ Value.to_string v))

  let line_gain t gain =
    Instance.set t "line_left_gain" (Value.Int (gain land 0x3f));
    Instance.set t "line_left_mute" (Value.Bool false);
    Instance.set t "line_left_boost" (Value.Bool false)

  (* A transient fault aborts the burst before any sample reaches the
     FIFO, so the whole block write can be retried as a unit. *)
  let play t samples =
    Policy.with_retries ~label:"sound: play" (fun () ->
        Instance.write_block t "pcm_data" (Array.of_list samples))

  (* Recording consumes the capture FIFO, so a blind retry would skip
     samples; we only normalize failures into structured errors. *)
  let record t n =
    Policy.guarded ~label:"sound: record" (fun () ->
        Array.to_list (Instance.read_block t "pcm_data" ~count:n))
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + off) ~value:v

  let inb t off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + off)

  let write_indexed t idx v =
    outb t 0 idx;
    outb t 1 v

  let read_indexed t idx =
    outb t 0 idx;
    inb t 1

  let set_volume t ~left ~right =
    write_indexed t 6 (left land 0x3f);
    write_indexed t 7 (right land 0x3f)

  let mute t on =
    let m = if on then 0x80 else 0x00 in
    write_indexed t 6 (read_indexed t 6 land 0x3f lor m);
    write_indexed t 7 (read_indexed t 7 land 0x3f lor m)

  (* The extended-register dance: write I23 with XRAE and the target
     index, access the data at offset 1, then restore normal mode by
     rewriting the control register. *)
  let xa_encode j =
    (* XA bit layout in I23: bit 2 is index bit 4; bits 7..4 are index
       bits 3..0; bit 3 is XRAE. *)
    let bit v n = (v lsr n) land 1 in
    (bit j 4 lsl 2)
    lor (bit j 3 lsl 7)
    lor (bit j 2 lsl 6)
    lor (bit j 1 lsl 5)
    lor (bit j 0 lsl 4)

  let read_extended t j =
    write_indexed t 23 (xa_encode j lor 0x08);
    let v = inb t 1 in
    outb t 0 0;  (* leave extended mode *)
    v

  let write_extended t j v =
    write_indexed t 23 (xa_encode j lor 0x08);
    outb t 1 v;
    outb t 0 0

  let chip_version t = read_extended t 25

  let line_gain t gain = write_extended t 2 (gain land 0x3f)

  let play t samples = List.iter (fun s -> outb t 3 s) samples

  let record t n = List.init n (fun _ -> inb t 3)
end
