(** IDE disk drivers over the task file and the PIIX4 busmaster.

    Transfer modes mirror the paper's Table 2 matrix:
    - PIO with per-word C loops ([`Loop]) or [rep]-style block stubs
      ([`Block]), at 16-bit or 32-bit I/O width;
    - Ultra-DMA through the busmaster engine.

    The hand-crafted driver always moves data with block (string)
    instructions, like the original Linux driver; the Devil driver can
    do either, which is exactly the comparison of paper §4.3. *)

type data_path = [ `Loop | `Block ]
type io_width = [ `W16 | `W32 ]

module Devil_driver : sig
  type t

  val create :
    ide:Devil_runtime.Instance.t -> piix4:Devil_runtime.Instance.t -> t

  val identify : t -> string
  (** Model name from the IDENTIFY data. *)

  val set_features : t -> int -> unit
  (** Programs the features register (the pre-command parameter byte;
      0 is the don't-care value for plain PIO transfers). *)

  val read_task_file : t -> int * int
  (** [(sector_count, lba)] read back from the task file — the
      error-locate path: after a failed command the task file still
      addresses the block the device stopped at. *)

  val read_sectors :
    t ->
    lba:int ->
    count:int ->
    mult:int ->
    path:data_path ->
    width:io_width ->
    Bytes.t
  (** [mult] is the device's sectors-per-interrupt setting (hdparm -m);
      the driver services one interrupt per DRQ block of [mult]
      sectors. The caller must have configured the device model with
      the same multiple. *)

  val write_sectors :
    t ->
    lba:int ->
    count:int ->
    mult:int ->
    path:data_path ->
    width:io_width ->
    Bytes.t ->
    unit

  val read_dma : t -> memory:Bytes.t -> lba:int -> count:int -> Bytes.t
  (** [memory] is the busmaster's system memory (the DMA target). *)

  val write_dma : t -> memory:Bytes.t -> lba:int -> count:int -> Bytes.t -> unit
end

module Handcrafted : sig
  type t

  val create :
    Devil_runtime.Bus.t -> cmd_base:int -> ctrl_base:int -> bm_base:int ->
    prd_base:int -> t

  val read_sectors :
    t ->
    lba:int ->
    count:int ->
    mult:int ->
    path:data_path ->
    width:io_width ->
    Bytes.t

  val write_sectors :
    t ->
    lba:int ->
    count:int ->
    mult:int ->
    path:data_path ->
    width:io_width ->
    Bytes.t ->
    unit

  val read_dma : t -> memory:Bytes.t -> lba:int -> count:int -> Bytes.t
  val write_dma : t -> memory:Bytes.t -> lba:int -> count:int -> Bytes.t -> unit
end

(** The queued, interrupt-driven DMA driver over a
    {!Devil_runtime.Sched} loop. Commands are submitted to a per-device
    FIFO; the busmaster-complete interrupt — not a status poll —
    finishes each one, and the next command's setup overlaps the
    completion processing of the previous. The synchronous driver's
    failure taxonomy carries over: transient faults re-issue the
    command up to {!Devil_runtime.Policy.default_attempts} (exhaustion
    is [Degraded]), and a lost interrupt is the same classified
    [Timeout] a poll would raise. *)
module Async : sig
  type t

  val create :
    sched:Devil_runtime.Sched.t ->
    line:int ->
    memory:Bytes.t ->
    ide:Devil_runtime.Instance.t ->
    piix4:Devil_runtime.Instance.t ->
    t
  (** Registers the interrupt handler for [line] on [sched]. [memory]
      is the busmaster's system memory (the DMA target). *)

  val read_dma :
    t ->
    lba:int ->
    count:int ->
    ?on_data:(Bytes.t -> unit) ->
    unit ->
    Devil_runtime.Sched.request
  (** Queues a multi-sector DMA read; [on_data] receives the sectors
      from inside the completion handler. *)

  val write_dma : t -> lba:int -> count:int -> Bytes.t -> Devil_runtime.Sched.request
  (** Queues a multi-sector DMA write; the payload is copied to DMA
      memory when the command reaches the head of the queue (so queued
      writes may overlap safely). *)

  val await : t -> Devil_runtime.Sched.request -> unit
  (** {!Devil_runtime.Sched.await} on this driver's loop. *)

  val drain : t -> unit
  (** Ticks the loop until no request is outstanding. *)

  val request_id : Devil_runtime.Sched.request -> int
  (** The id threading this request's trace events (see
      {!Devil_runtime.Sched.request_id}) — the key for looking its
      lifecycle up in {!Devil_runtime.Lifecycle}. *)
end
