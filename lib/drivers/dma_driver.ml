module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

type transfer = Read_memory | Write_memory | Verify
type mode = Demand | Single | Block | Cascade

let transfer_bits = function Verify -> 0 | Write_memory -> 1 | Read_memory -> 2
let mode_bits = function Demand -> 0 | Single -> 1 | Block -> 2 | Cascade -> 3

let transfer_sym = function
  | Verify -> "VERIFY"
  | Write_memory -> "WRITE_MEM"
  | Read_memory -> "READ_MEM"

let mode_sym = function
  | Demand -> "DEMAND"
  | Single -> "SINGLE"
  | Block -> "BLOCK_MODE"
  | Cascade -> "CASCADE"

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let master_clear t = Instance.set t "master_clear" (Value.Int 0)

  let set_mask t channel state =
    Instance.set_struct t "channel_mask"
      [
        ("mask_channel", Value.Int channel);
        ("mask_state", Value.Enum (if state then "MASK_SET" else "MASK_CLEAR"));
      ]

  let mask_channel t channel = set_mask t channel true
  let unmask_channel t channel = set_mask t channel false

  let program_channel t ~channel ~address ~count ~transfer ~mode ~auto_init =
    set_mask t channel true;
    Instance.set_struct t "channel_mode"
      [
        ("mode_channel", Value.Int channel);
        ("transfer_type", Value.Enum (transfer_sym transfer));
        ("auto_init", Value.Bool auto_init);
        ("down", Value.Bool false);
        ("transfer_mode", Value.Enum (mode_sym mode));
      ];
    (* The serialized 16-bit writes: flip-flop reset, low, high. *)
    Instance.set t (Printf.sprintf "address%d" channel) (Value.Int address);
    Instance.set t (Printf.sprintf "count%d" channel) (Value.Int count);
    set_mask t channel false

  let terminal_count_reached t channel =
    Instance.get_struct t "dma_status";
    match Instance.get t "terminal_count" with
    | Value.Int tc -> tc land (1 lsl channel) <> 0
    | v ->
        Policy.fail
          (Policy.Device_fault
             ("terminal_count: expected int, got " ^ Value.to_string v))

  let readback_address t channel =
    match Instance.get t (Printf.sprintf "address%d" channel) with
    | Value.Int v -> v
    | v ->
        Policy.fail
          (Policy.Device_fault
             (Printf.sprintf "address%d: expected int, got %s" channel
                (Value.to_string v)))
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + off) ~value:v

  let inb t off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + off)

  let master_clear t = outb t 13 0

  let mask_channel t channel = outb t 10 (0x4 lor channel)
  let unmask_channel t channel = outb t 10 channel

  let program_channel t ~channel ~address ~count ~transfer ~mode ~auto_init =
    mask_channel t channel;
    outb t 11
      (channel
      lor (transfer_bits transfer lsl 2)
      lor (if auto_init then 0x10 else 0)
      lor (mode_bits mode lsl 6));
    outb t 12 0;  (* clear flip-flop *)
    outb t (2 * channel) (address land 0xff);
    outb t (2 * channel) ((address lsr 8) land 0xff);
    outb t 12 0;
    outb t ((2 * channel) + 1) (count land 0xff);
    outb t ((2 * channel) + 1) ((count lsr 8) land 0xff);
    unmask_channel t channel

  let terminal_count_reached t channel =
    inb t 8 land (1 lsl channel) <> 0

  let readback_address t channel =
    outb t 12 0;
    let lo = inb t (2 * channel) in
    let hi = inb t (2 * channel) in
    lo lor (hi lsl 8)
end
