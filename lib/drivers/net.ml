module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

let tx_page = 0x40
let rx_start = 0x46
let rx_stop = 0x80

(* Copy the body of the frame whose ring header sits at page [bnry]
   out of the receive ring: the body starts 4 bytes past the header
   and, when it reaches [rx_stop], wraps to [rx_start]. [read] is the
   driver's remote-DMA read. Both drivers reassemble through this one
   helper, so a frame that straddles the ring end comes back
   byte-identical whichever driver drained it. *)
let ring_copy ~read ~bnry ~body_len =
  let start = (bnry * 256) + 4 in
  let ring_end = rx_stop * 256 in
  if start + body_len <= ring_end then read ~addr:start ~len:body_len
  else begin
    let first = ring_end - start in
    let a = read ~addr:start ~len:first in
    let b = read ~addr:(rx_start * 256) ~len:(body_len - first) in
    Bytes.cat a b
  end

let get_int inst name =
  match Instance.get inst name with
  | Value.Int v -> v
  | v ->
      Policy.fail
        (Policy.Device_fault (name ^ ": expected int, got " ^ Value.to_string v))

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let remote_setup t ~addr ~len ~op =
    Instance.set t "remote_start" (Value.Int addr);
    Instance.set t "remote_count" (Value.Int len);
    Instance.set t "rd" (Value.Enum op)

  let remote_read t ~addr ~len =
    remote_setup t ~addr ~len ~op:"REMOTE_READ";
    let bytes = Instance.read_block t "remote_data" ~count:len in
    Bytes.init len (fun i -> Char.chr (bytes.(i) land 0xff))

  let remote_write t ~addr data =
    let len = String.length data in
    remote_setup t ~addr ~len ~op:"REMOTE_WRITE";
    Instance.write_block t "remote_data"
      (Array.init len (fun i -> Char.code data.[i]))

  let ack_interrupts t =
    Instance.set_struct t "interrupt_status"
      [
        ("prx", Value.Enum "CLEAR_PRX");
        ("ptx", Value.Enum "CLEAR_PTX");
        ("rxe", Value.Enum "CLEAR_RXE");
        ("txe", Value.Enum "CLEAR_TXE");
        ("ovw", Value.Enum "CLEAR_OVW");
        ("cnt", Value.Enum "CLEAR_CNT");
        ("rdc", Value.Enum "CLEAR_RDC");
        ("rst", Value.Enum "CLEAR_RST");
      ]

  let init_common t ~mac ~loopback =
    if String.length mac <> 6 then invalid_arg "NE2000 MAC must be 6 bytes";
    Instance.set t "st" (Value.Enum "STOP");
    Instance.set t "word_transfer" (Value.Enum "BYTE_WIDE");
    Instance.set t "byte_order" (Value.Bool false);
    Instance.set t "long_address" (Value.Bool false);
    Instance.set t "loopback_select" (Value.Enum "NORMAL_OP");
    Instance.set t "auto_init" (Value.Bool false);
    Instance.set t "fifo_threshold" (Value.Int 2);
    Instance.set t "remote_count" (Value.Int 0);
    Instance.set t "accept_broadcast" (Value.Bool true);
    Instance.set t "accept_errors" (Value.Bool false);
    Instance.set t "accept_runts" (Value.Bool false);
    Instance.set t "accept_multicast" (Value.Bool false);
    Instance.set t "promiscuous" (Value.Bool false);
    Instance.set t "monitor" (Value.Bool false);
    Instance.set t "inhibit_crc" (Value.Bool false);
    Instance.set t "loopback_mode" (Value.Int (if loopback then 1 else 0));
    Instance.set t "auto_transmit" (Value.Bool false);
    Instance.set t "collision_offset" (Value.Bool false);
    Instance.set t "page_start" (Value.Int rx_start);
    Instance.set t "page_stop" (Value.Int rx_stop);
    Instance.set t "boundary" (Value.Int rx_start);
    (* Station address and CURR live in page 1; the pre-actions switch
       pages transparently. *)
    String.iteri
      (fun i c ->
        Instance.set t (Printf.sprintf "mac%d" i) (Value.Int (Char.code c)))
      mac;
    Instance.set t "current_page" (Value.Int rx_start);
    ack_interrupts t;
    Instance.set t "irq_mask" (Value.Int 0x3f);
    Instance.set t "st" (Value.Enum "START")

  (* Bring-up is pure configuration plus STOP/START, so the whole
     sequence is idempotent and retried as one unit when the bus
     faults transiently. *)
  let init t ~mac =
    Policy.with_retries ~label:"net: init" (fun () ->
        init_common t ~mac ~loopback:false)

  let init_loopback t ~mac =
    Policy.with_retries ~label:"net: init" (fun () ->
        init_common t ~mac ~loopback:true)

  let station_address t =
    String.init 6 (fun i -> Char.chr (get_int t (Printf.sprintf "mac%d" i)))

  let send t frame =
    (* A transient fault aborts the access before it reaches the NIC,
       so no partial frame has been committed when we start over; the
       TRANSMIT trigger is the last write of the sequence. *)
    Policy.with_retries ~label:"net: send" (fun () ->
        remote_write t ~addr:(tx_page * 256) frame;
        Instance.set t "tx_page_start" (Value.Int tx_page);
        Instance.set t "tx_byte_count" (Value.Int (String.length frame));
        Instance.set t "txp" (Value.Enum "TRANSMIT"))

  let receive t =
    Policy.with_retries ~label:"net: receive" @@ fun () ->
    let curr = get_int t "current_page" in
    let bnry = get_int t "boundary" in
    if curr = bnry then None
    else begin
      let header = remote_read t ~addr:(bnry * 256) ~len:4 in
      let next = Char.code (Bytes.get header 1) in
      let len =
        Char.code (Bytes.get header 2)
        lor (Char.code (Bytes.get header 3) lsl 8)
      in
      let body_len = max 0 (len - 4) in
      let frame = ring_copy ~read:(remote_read t) ~bnry ~body_len in
      Instance.set t "boundary" (Value.Int next);
      Instance.set t "prx" (Value.Enum "CLEAR_PRX");
      Some (Bytes.to_string frame)
    end
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + off) ~value:v

  let inb t off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + off)

  (* Command register values, macro style. *)
  let e8390_stop = 0x21 (* page 0, NODMA, stop *)
  let e8390_start = 0x22
  let e8390_rread = 0x0a (* remote read + start *)
  let e8390_rwrite = 0x12
  let e8390_trans = 0x26
  let e8390_page1 = 0x62

  let remote_setup t ~addr ~len =
    outb t 8 (addr land 0xff);
    outb t 9 ((addr lsr 8) land 0xff);
    outb t 10 (len land 0xff);
    outb t 11 ((len lsr 8) land 0xff)

  let remote_read t ~addr ~len =
    remote_setup t ~addr ~len;
    outb t 0 e8390_rread;
    Bytes.init len (fun _ -> Char.chr (inb t 16))

  let remote_write t ~addr data =
    remote_setup t ~addr ~len:(String.length data);
    outb t 0 e8390_rwrite;
    String.iter (fun c -> outb t 16 (Char.code c)) data

  let init_common t ~mac ~loopback =
    if String.length mac <> 6 then invalid_arg "NE2000 MAC must be 6 bytes";
    outb t 0 e8390_stop;
    outb t 14 0x48;  (* DCR: byte-wide, normal operation, fifo 2 *)
    outb t 10 0;
    outb t 11 0;
    outb t 12 0x04;  (* RCR: accept broadcast *)
    outb t 13 (if loopback then 0x02 else 0x00);
    outb t 1 rx_start;
    outb t 2 rx_stop;
    outb t 3 rx_start;
    outb t 0 e8390_page1;
    String.iteri (fun i c -> outb t (1 + i) (Char.code c)) mac;
    outb t 7 rx_start;
    outb t 0 e8390_stop;
    outb t 7 0xff;  (* ack ISR *)
    outb t 15 0x3f;  (* IMR *)
    outb t 0 e8390_start

  let init t ~mac = init_common t ~mac ~loopback:false
  let init_loopback t ~mac = init_common t ~mac ~loopback:true

  let station_address t =
    outb t 0 e8390_page1;
    let mac = String.init 6 (fun i -> Char.chr (inb t (1 + i))) in
    outb t 0 e8390_start;
    mac

  let send t frame =
    remote_write t ~addr:(tx_page * 256) frame;
    outb t 4 tx_page;
    outb t 5 (String.length frame land 0xff);
    outb t 6 ((String.length frame lsr 8) land 0xff);
    outb t 0 e8390_trans

  let receive t =
    outb t 0 e8390_page1;
    let curr = inb t 7 in
    outb t 0 e8390_start;
    let bnry = inb t 3 in
    if curr = bnry then None
    else begin
      let header = remote_read t ~addr:(bnry * 256) ~len:4 in
      let next = Char.code (Bytes.get header 1) in
      let len =
        Char.code (Bytes.get header 2)
        lor (Char.code (Bytes.get header 3) lsl 8)
      in
      let body_len = max 0 (len - 4) in
      let frame = ring_copy ~read:(remote_read t) ~bnry ~body_len in
      outb t 3 next;
      outb t 7 0x01;  (* ack PRX *)
      Some (Bytes.to_string frame)
    end
end

(* The interrupt-driven NE2000 driver: the receive ring is drained in
   a burst when the PRX interrupt fires, and transmissions are queued
   requests completed by the PTX interrupt — the driver never polls
   CURR/BNRY while idle. *)
module Async = struct
  module Sched = Devil_runtime.Sched

  let dev = "ne2000"

  type t = {
    drv : Devil_driver.t;
    sched : Sched.t;
    mutable on_frame : string -> unit;
    mutable tx_inflight : bool;
  }

  let handle t () =
    let raised name tag =
      match Instance.get t.drv name with
      | Value.Enum e -> e = tag
      | _ -> false
    in
    let prx = raised "prx" "RAISED_PRX" in
    let ptx = raised "ptx" "RAISED_PTX" in
    (if prx then
       (* Burst drain: one interrupt services every frame the ring
          holds, however many arrived since the last one. *)
       let rec drain () =
         match Devil_driver.receive t.drv with
         | Some frame ->
             t.on_frame frame;
             drain ()
         | None -> ()
       in
       drain ());
    Devil_driver.ack_interrupts t.drv;
    if ptx && t.tx_inflight then begin
      t.tx_inflight <- false;
      Sched.complete t.sched ~dev (Ok ())
    end

  let create ~sched ~line inst =
    let t =
      {
        drv = Devil_driver.create inst;
        sched;
        on_frame = ignore;
        tx_inflight = false;
      }
    in
    Sched.set_handler sched ~line ~dev (handle t);
    t

  let on_frame t f = t.on_frame <- f

  let send t frame =
    Sched.submit t.sched ~dev ~label:"net: send"
      ~start:(fun () ->
        Devil_driver.send t.drv frame;
        t.tx_inflight <- true)
      ~on_done:(fun _ -> t.tx_inflight <- false)
      ()

  let await t rq = Sched.await t.sched rq
  let drain t = Sched.drain t.sched
  let request_id = Sched.request_id
end
