module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

type state = { dx : int; dy : int; buttons : int }

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let probe t =
    Instance.set t "signature" (Value.Int 0xa5);
    match Instance.get t "signature" with
    | Value.Int v -> v = 0xa5
    | _ -> false

  let init t =
    Instance.set t "config" (Value.Enum "DEFAULT_MODE");
    Instance.set t "interrupt" (Value.Enum "ENABLE")

  let set_interrupts t on =
    Instance.set t "interrupt"
      (Value.Enum (if on then "ENABLE" else "DISABLE"))

  let read_state t =
    Instance.get_struct t "mouse_state";
    let int_of name =
      match Instance.get t name with
      | Value.Int v -> v
      | v ->
          Policy.fail
            (Policy.Device_fault
               ("unexpected value for " ^ name ^ ": " ^ Value.to_string v))
    in
    { dx = int_of "dx"; dy = int_of "dy"; buttons = int_of "buttons" }
end

module Handcrafted = struct
  (* Mirrors the original driver's macro bank (paper Figure 2). *)
  let mse_data_port = 0
  let mse_control_port = 2
  let mse_config_port = 3
  let mse_signature_port = 1
  let mse_read_x_low = 0x80
  let mse_read_x_high = 0xa0
  let mse_read_y_low = 0xc0
  let mse_read_y_high = 0xe0
  let mse_int_on = 0x00
  let mse_int_off = 0x10
  let mse_default_mode = 0x90

  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t v port =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + port) ~value:v

  let inb t port = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + port)

  let probe t =
    outb t 0x5a mse_signature_port;
    inb t mse_signature_port = 0x5a

  let init t =
    outb t mse_default_mode mse_config_port;
    outb t mse_int_on mse_control_port

  let set_interrupts t on =
    outb t (if on then mse_int_on else mse_int_off) mse_control_port

  let sign_extend_8 v = if v land 0x80 <> 0 then v - 256 else v

  let read_state t =
    outb t mse_read_x_high mse_control_port;
    let dx = (inb t mse_data_port land 0xf) lsl 4 in
    outb t mse_read_x_low mse_control_port;
    let dx = dx lor (inb t mse_data_port land 0xf) in
    outb t mse_read_y_high mse_control_port;
    let buttons = inb t mse_data_port in
    let dy = (buttons land 0xf) lsl 4 in
    outb t mse_read_y_low mse_control_port;
    let dy = dy lor (inb t mse_data_port land 0xf) in
    let buttons = (buttons lsr 5) land 0x07 in
    { dx = sign_extend_8 dx; dy = sign_extend_8 dy; buttons }
end
