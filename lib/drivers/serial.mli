(** 16550 UART drivers: line configuration through the DLAB overlay,
    polled transmit/receive, and the modem loopback self-test. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init : t -> baud:int -> unit
  (** 8N1 at the given rate: programs the divisor through the DLAB
      overlay, restores normal access, enables the FIFOs. *)

  val configured_baud : t -> int

  val send : t -> string -> unit

  val recv : t -> max:int -> string
  (** Non-blocking drain: stops at the first empty-FIFO status. *)

  val recv_blocking : ?deadline:int -> t -> max:int -> string
  (** Waits for each byte under a {!Devil_runtime.Policy} poll deadline
      (in ticks; default {!Devil_runtime.Policy.default_deadline});
      returns what arrived when the deadline expires. *)

  val data_ready : t -> bool
  val set_loopback : t -> bool -> unit

  val reset_fifos : t -> unit
  (** Flushes both FIFOs — the per-attempt recovery step of
      {!self_test}. *)

  val self_test : t -> bool
  (** Loopback self-test: a pattern written comes back verbatim.
      Transient bus faults are retried with bounded attempts, each
      attempt starting from clean FIFOs. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val init : t -> baud:int -> unit
  val send : t -> string -> unit
  val recv : t -> max:int -> string
  val recv_blocking : ?deadline:int -> t -> max:int -> string
  val data_ready : t -> bool
  val set_loopback : t -> bool -> unit
  val self_test : t -> bool
end
