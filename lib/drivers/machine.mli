(** A simulated PC: every modelled device attached to one I/O space at
    its conventional address, with a verified Devil instance bound to
    each. Drivers, examples, tests and benchmarks all start here. *)

module Instance = Devil_runtime.Instance

type t = {
  space : Hwsim.Io_space.t;
  bus : Devil_runtime.Bus.t;
  injector : Devil_runtime.Fault.t option;
      (** Present when the machine was built with [?faults]; exposes
          the injection trace and counters. *)
  trace : Devil_runtime.Trace.t option;
      (** The unified event trace, when observability is on. *)
  metrics : Devil_runtime.Metrics.t option;
      (** The counter/histogram registry, when observability is on. *)
  profile : Devil_runtime.Profile.t option;
      (** The hierarchical span profiler, when profiling is on. *)
  (* device models *)
  mouse : Hwsim.Busmouse.t;
  disk : Hwsim.Ide_disk.t;
  busmaster : Hwsim.Piix4.t;
  nic : Hwsim.Ne2000.t;
  dma : Hwsim.Dma8237.t;
  pic : Hwsim.Pic8259.t;
  sound : Hwsim.Cs4236b.t;
  gfx : Hwsim.Permedia2.t;
  uart : Hwsim.Uart16550.t;
  rtc : Hwsim.Mc146818.t;
  kbd : Hwsim.I8042.t;
  (* Devil instances over the same bus *)
  mouse_dev : Instance.t;
  ide_dev : Instance.t;
  piix4_dev : Instance.t;
  ne2000_dev : Instance.t;
  dma_dev : Instance.t;
  pic_dev : Instance.t;
  sound_dev : Instance.t;
  gfx_dev : Instance.t;
  uart_dev : Instance.t;
  rtc_dev : Instance.t;
  kbd_dev : Instance.t;
  lifecycle : Devil_runtime.Lifecycle.t option;
      (** Live request-lifecycle reconstruction, when the machine was
          built with [~lifecycle:true] and a trace. *)
  telemetry : Devil_runtime.Telemetry.t option;
      (** The deterministic-tick time-series sampler over
          {!field-metrics}, when telemetry is on — advanced by
          {!telemetry_tick}. *)
  mutable sched_ : Devil_runtime.Sched.t option;
      (** Lazily-built event loop; use {!sched}, not this field. *)
}

val mouse_base : int  (** 0x23c *)

val ide_base : int  (** 0x1f0 *)

val ide_ctrl_base : int  (** 0x3f6 *)

val piix4_base : int  (** 0xc000 *)

val piix4_prd_base : int  (** 0xc004 *)

val ne2000_base : int  (** 0x300 *)

val dma_base : int  (** 0x00 *)

val pic_base : int  (** 0x20 *)

val sound_base : int  (** 0x530 *)

val gfx_mmio_base : int  (** 0xd000_0000 *)

val gfx_fb_base : int  (** 0xd100_0000 *)

val uart_base : int  (** 0x3f8 *)

val rtc_index_base : int  (** 0x70 *)

val rtc_data_base : int  (** 0x71 *)

val kbd_data_base : int  (** 0x60 *)

val kbd_ctl_base : int  (** 0x64 *)

(** {1 Interrupt lines}

    The classic single-PIC assignments, folded onto lines 1..7 of the
    machine's master 8259A (line 0 stays free for a timer). *)

val irq_kbd : int  (** 1 *)

val irq_gfx : int  (** 2 *)

val irq_net : int  (** 3 *)

val irq_uart : int  (** 4 *)

val irq_sound : int  (** 5 *)

val irq_ide : int  (** 6 *)

val irq_mouse : int  (** 7 *)

val irq_line : string -> int option
(** The line of an instance label ([ide], [ne2000], …), if it has one. *)

val sched : t -> Devil_runtime.Sched.t
(** The machine's event loop (DESIGN.md §13), built on first call.
    Building it programs the 8259A through the bus (ICW1..ICW4,
    vectors at 0x20, all lines unmasked), wires the controller's INT
    output to the loop, and registers the interrupt sources: the IDE
    line ({!irq_ide}) wire-ORs the disk INTRQ with the PIIX4
    transfer-complete status, the network line ({!irq_net}) follows
    the NE2000's masked ISR. Acknowledge and EOI run as real bus
    traffic (8259A poll-command and specific EOI), so they are traced,
    profiled and fault-injectable like any driver I/O. A ticker
    advances the PIIX4's deferred DMA engine with virtual time. *)

val create :
  ?debug:bool ->
  ?faults:Devil_runtime.Fault.plan list ->
  ?fault_seed:int ->
  ?trace:Devil_runtime.Trace.t ->
  ?metrics:Devil_runtime.Metrics.t ->
  ?profile:Devil_runtime.Profile.t ->
  ?telemetry:Devil_runtime.Telemetry.t ->
  ?interpret:bool ->
  ?wrap_bus:(Devil_runtime.Bus.t -> Devil_runtime.Bus.t) ->
  ?lifecycle:bool ->
  ?lifecycle_clock:(unit -> int) ->
  unit ->
  t
(** Builds the machine. [debug] enables the §3.2 dynamic checks in
    every Devil instance. [interpret] selects the interpreting runtime
    engine for every instance instead of the default compiled access
    plans (see {!Devil_runtime.Instance.create}). [faults] interposes a deterministic fault
    injector (seeded by [fault_seed]) between every driver — Devil or
    handcrafted — and the device models; the resulting injector is
    exposed as {!field-injector}.

    [wrap_bus] interposes one more layer between the (possibly
    fault-injected) device bus and the observability wrapper — the
    record/replay hook: pass [Devil_runtime.Bus.recording] to tape a
    run, or [fun _ -> Devil_runtime.Bus.replaying tape] to re-run the
    machine against a tape instead of the simulated hardware (the
    device models then see no traffic at all, so back-door state
    checks are meaningless under replay).

    [trace]/[metrics] switch on the observability layer: the bus is
    wrapped with {!Devil_runtime.Bus.observed} (outside the fault
    injector, so trace events carry post-fault values), every instance
    is instrumented under a short driver label ([mouse], [ide], …),
    the injector mirrors into the same stream, and the
    {!Devil_runtime.Policy} observer is installed — callers owning
    short-lived handles should {!Devil_runtime.Policy.unobserve} when
    done. [profile] additionally times every layer as hierarchical
    {!Devil_runtime.Profile} spans: stub accesses and actions in both
    engines, polls and retries in the policy layer, and each bus
    transfer as a leaf (via [Bus.observed ?profile] — precise timing,
    not {!Devil_runtime.Profile.attach}'s gap estimate). Handles not
    supplied are taken from the [DEVIL_TRACE], [DEVIL_METRICS] and
    [DEVIL_PROFILE] environment variables; with none of them, the
    machine is exactly the uninstrumented one.

    [telemetry] attaches a {!Devil_runtime.Telemetry} sampler over the
    registry; when omitted but a registry exists, [DEVIL_TELEMETRY]
    can enable one from the environment. The machine never ticks it on
    its own — workloads call {!telemetry_tick} at their own cadence,
    keeping the series deterministic.

    [lifecycle] (with a trace present) attaches a
    {!Devil_runtime.Lifecycle} reconstructor to the trace, so queued
    requests get per-stage latency accounting as they run;
    [lifecycle_clock] overrides its clock (tests use the scheduler's
    virtual tick counter, the latency bench the default monotonic
    nanoseconds). With both trace and metrics present, ring evictions
    are additionally surfaced live as the [trace.dropped_events]
    counter. *)

val health :
  ?thresholds:(string * int) list -> t -> Devil_runtime.Health.report
(** The machine's current health verdict, evaluated over its
    lifecycle/trace/metrics handles (vacuously [Ok] when
    uninstrumented) — see {!Devil_runtime.Health.evaluate}.
    [thresholds] raises per-code tolerances, e.g. to ignore
    [trace_drops] on a machine whose retention ring is deliberately
    small. *)

val telemetry_tick : ?thresholds:(string * int) list -> t -> unit
(** Advance the machine's telemetry sampler one tick (sampling every
    metric and the {!health} verdict). A no-op — and allocation-free —
    on a machine without a telemetry handle, so workloads can call it
    unconditionally in their outer loop. *)

val reset_io_stats : t -> unit
val io_ops : t -> int
val single_ops : t -> int
val stats : t -> Hwsim.Io_space.stats
