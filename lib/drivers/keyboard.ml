module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

(* Protocol answers arrive quickly or not at all; a missing answer is
   part of the protocol (the caller reports [false]), so the bound is
   local and much shorter than the global poll deadline. *)
let answer_deadline = 1000

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let output_full t =
    Instance.get_struct t "kbd_status";
    match Instance.get t "output_full" with
    | Value.Bool b -> b
    | _ -> false

  let read_data t =
    match Instance.get t "kbd_data" with Value.Int v -> v | _ -> 0

  let wait_data t =
    Policy.try_poll_for ~deadline:answer_deadline (fun () ->
        if output_full t then Some (read_data t) else None)

  let init t =
    Instance.set t "controller_command" (Value.Enum "SELF_TEST");
    let self = wait_data t = Some 0x55 in
    Instance.set t "controller_command" (Value.Enum "IFACE_TEST");
    let iface = wait_data t = Some 0x00 in
    Instance.set t "controller_command" (Value.Enum "ENABLE_KBD");
    self && iface

  let poll_scancode t = if output_full t then Some (read_data t) else None

  let set_leds t mask =
    Instance.set t "kbd_data" (Value.Int 0xed);
    let ack1 = wait_data t = Some 0xfa in
    Instance.set t "kbd_data" (Value.Int (mask land 0x7));
    let ack2 = wait_data t = Some 0xfa in
    ack1 && ack2

  let read_config t =
    Instance.set t "controller_command" (Value.Enum "READ_CONFIG");
    Option.value (wait_data t) ~default:0

  let write_config t v =
    Instance.set t "controller_command" (Value.Enum "WRITE_CONFIG");
    Instance.set t "kbd_data" (Value.Int (v land 0xff))
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; data_base : int; ctl_base : int }

  let create bus ~data_base ~ctl_base = { bus; data_base; ctl_base }

  let inb t addr = t.bus.Devil_runtime.Bus.read ~width:8 ~addr
  let outb t addr v = t.bus.Devil_runtime.Bus.write ~width:8 ~addr ~value:v

  let output_full t = inb t t.ctl_base land 0x01 <> 0
  let read_data t = inb t t.data_base

  let wait_data t =
    Policy.try_poll_for ~deadline:answer_deadline (fun () ->
        if output_full t then Some (read_data t) else None)

  let init t =
    outb t t.ctl_base 0xaa;
    let self = wait_data t = Some 0x55 in
    outb t t.ctl_base 0xab;
    let iface = wait_data t = Some 0x00 in
    outb t t.ctl_base 0xae;
    self && iface

  let poll_scancode t = if output_full t then Some (read_data t) else None

  let set_leds t mask =
    outb t t.data_base 0xed;
    let ack1 = wait_data t = Some 0xfa in
    outb t t.data_base (mask land 0x7);
    let ack2 = wait_data t = Some 0xfa in
    ack1 && ack2

  let read_config t =
    outb t t.ctl_base 0x20;
    Option.value (wait_data t) ~default:0

  let write_config t v =
    outb t t.ctl_base 0x60;
    outb t t.data_base (v land 0xff)
end
