module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

type data_path = [ `Loop | `Block ]
type io_width = [ `W16 | `W32 ]

let sector_bytes = 512
let words_per_sector = sector_bytes / 2

let words_to_bytes words =
  let b = Bytes.create (2 * Array.length words) in
  Array.iteri
    (fun i w ->
      Bytes.set b (2 * i) (Char.chr (w land 0xff));
      Bytes.set b ((2 * i) + 1) (Char.chr ((w lsr 8) land 0xff)))
    words;
  b

let bytes_to_words b =
  Array.init
    (Bytes.length b / 2)
    (fun i ->
      Char.code (Bytes.get b (2 * i))
      lor (Char.code (Bytes.get b ((2 * i) + 1)) lsl 8))

let dwords_of_words words =
  Array.init
    (Array.length words / 2)
    (fun i -> words.(2 * i) lor (words.((2 * i) + 1) lsl 16))

let words_of_dwords dwords =
  Array.init
    (2 * Array.length dwords)
    (fun i ->
      let d = dwords.(i / 2) in
      if i mod 2 = 0 then d land 0xffff else (d lsr 16) land 0xffff)

module Devil_driver = struct
  type t = { ide : Instance.t; piix4 : Instance.t }

  let create ~ide ~piix4 = { ide; piix4 }

  let get_bool t name =
    match Instance.get t.ide name with
    | Value.Bool b -> b
    | v ->
        Policy.fail
          (Policy.Device_fault
             (name ^ ": expected bool, got " ^ Value.to_string v))

  (* One status poll through the generated struct interface. *)
  let poll_status t =
    Instance.get_struct t.ide "ide_status";
    (get_bool t "bsy", get_bool t "drq")

  let wait_not_busy t =
    Policy.poll_until ~label:"ide: BSY clear" (fun () ->
        let bsy, _ = poll_status t in
        not bsy)

  let wait_drq t =
    (* The per-interrupt service path of the Devil driver: the status
       structure, the error variable and the alternate status are
       distinct interface entities, each costing one I/O operation
       (paper §4.3: "2 additional operations for each interrupt"). *)
    Policy.poll_until ~label:"ide: DRQ" (fun () ->
        let bsy, drq = poll_status t in
        (not bsy) && drq);
    (match Instance.get t.ide "error_flags" with
    | Value.Int 0 -> ()
    | Value.Int e ->
        Policy.fail
          (Policy.Device_fault (Printf.sprintf "ide: device error %#x" e))
    | _ -> ());
    ignore (Instance.get t.ide "alt_status")

  let setup_command t ~lba ~count ~cmd =
    wait_not_busy t;
    Instance.set t.ide "sector_count" (Value.Int (count land 0xff));
    Instance.set t.ide "lba_low" (Value.Int (lba land 0xff));
    Instance.set t.ide "lba_mid" (Value.Int ((lba lsr 8) land 0xff));
    Instance.set t.ide "lba_high" (Value.Int ((lba lsr 16) land 0xff));
    Instance.set t.ide "lba_enable" (Value.Enum "LBA_MODE");
    Instance.set t.ide "drive_select" (Value.Enum "MASTER");
    Instance.set t.ide "head" (Value.Int ((lba lsr 24) land 0xf));
    Instance.set t.ide "irq_enable" (Value.Enum "IRQ_ON");
    Instance.set t.ide "command" (Value.Enum cmd)

  let read_data_words t ~path ~width ~words =
    match (path, width) with
    | `Block, `W16 -> Instance.read_block t.ide "Ide_data" ~count:words
    | `Block, `W32 ->
        words_of_dwords
          (Instance.read_block_wide t.ide "Ide_data" ~scale:2
             ~count:(words / 2))
    | `Loop, `W16 ->
        Array.init words (fun _ ->
            match Instance.get t.ide "Ide_data" with
            | Value.Int w -> w
            | _ -> 0)
    | `Loop, `W32 ->
        words_of_dwords
          (Array.init (words / 2) (fun _ ->
               Instance.read_wide t.ide "Ide_data" ~scale:2))

  let write_data_words t ~path ~width words =
    match (path, width) with
    | `Block, `W16 -> Instance.write_block t.ide "Ide_data" words
    | `Block, `W32 ->
        Instance.write_block_wide t.ide "Ide_data" ~scale:2
          (dwords_of_words words)
    | `Loop, `W16 ->
        Array.iter
          (fun w -> Instance.set t.ide "Ide_data" (Value.Int w))
          words
    | `Loop, `W32 ->
        Array.iter
          (fun d -> Instance.write_wide t.ide "Ide_data" ~scale:2 d)
          (dwords_of_words words)

  let set_features t v =
    Instance.set t.ide "features" (Value.Int (v land 0xff))

  (* The error-locate path of a real driver: the task file still
     addresses the block a command stopped at, so reading it back
     after a failure names the failing sector. *)
  let read_task_file t =
    let geti name =
      match Instance.get t.ide name with Value.Int n -> n | _ -> 0
    in
    ignore (Instance.get t.ide "drive_select");
    let count = geti "sector_count" in
    let lba =
      geti "lba_low"
      lor (geti "lba_mid" lsl 8)
      lor (geti "lba_high" lsl 16)
      lor (geti "head" lsl 24)
    in
    (count, lba)

  let identify t =
    wait_not_busy t;
    Instance.set t.ide "command" (Value.Enum "IDENTIFY");
    wait_drq t;
    let words = read_data_words t ~path:`Block ~width:`W16 ~words:words_per_sector in
    let b = Buffer.create 40 in
    for w = 27 to 46 do
      let add c = if c >= 0x20 && c < 0x7f then Buffer.add_char b (Char.chr c) in
      add ((words.(w) lsr 8) land 0xff);
      add (words.(w) land 0xff)
    done;
    String.trim (Buffer.contents b)

  (* Sectors arrive in DRQ blocks of [mult] sectors (hdparm -m); the
     driver services one interrupt per block.

     The whole command is the retry unit: issuing a fresh READ/WRITE
     SECTORS resets the device's transfer state, so a transient bus
     fault anywhere in the exchange — status poll, task-file write or
     data burst — is recovered by starting over with bounded
     attempts. *)
  let read_sectors t ~lba ~count ~mult ~path ~width =
    Policy.with_retries ~label:"ide: read_sectors" (fun () ->
        setup_command t ~lba ~count ~cmd:"READ_SECTORS";
        let out = Buffer.create (count * sector_bytes) in
        let remaining = ref count in
        while !remaining > 0 do
          let n = min mult !remaining in
          wait_drq t;
          let words =
            read_data_words t ~path ~width ~words:(n * words_per_sector)
          in
          Buffer.add_bytes out (words_to_bytes words);
          remaining := !remaining - n
        done;
        Buffer.to_bytes out)

  let write_sectors t ~lba ~count ~mult ~path ~width data =
    if Bytes.length data <> count * sector_bytes then
      invalid_arg "ide write: data size mismatch";
    Policy.with_retries ~label:"ide: write_sectors" (fun () ->
        setup_command t ~lba ~count ~cmd:"WRITE_SECTORS";
        let remaining = ref count and s = ref 0 in
        while !remaining > 0 do
          let n = min mult !remaining in
          wait_drq t;
          let chunk = Bytes.sub data (!s * sector_bytes) (n * sector_bytes) in
          write_data_words t ~path ~width (bytes_to_words chunk);
          remaining := !remaining - n;
          s := !s + n
        done)

  let bm_wait_irq t =
    Policy.poll_until ~label:"ide dma: IRQ" (fun () ->
        match Instance.get t.piix4 "bm_irq" with
        | Value.Enum "RAISED" -> true
        | _ -> false)

  let dma_common t ~lba ~count ~to_memory ~cmd =
    setup_command t ~lba ~count ~cmd;
    Instance.set t.piix4 "prd_address" (Value.Int 0);
    Instance.set t.piix4 "bm_direction"
      (Value.Enum (if to_memory then "BM_TO_MEMORY" else "BM_FROM_MEMORY"));
    Instance.set t.piix4 "bm_engine" (Value.Enum "BM_START");
    bm_wait_irq t;
    Instance.set t.piix4 "bm_irq" (Value.Enum "CLEAR_IRQ");
    Instance.set t.piix4 "bm_engine" (Value.Enum "BM_STOP")

  let read_dma t ~memory ~lba ~count =
    Policy.with_retries ~label:"ide: read_dma" (fun () ->
        dma_common t ~lba ~count ~to_memory:true ~cmd:"READ_DMA");
    Bytes.sub memory 0 (count * sector_bytes)

  let write_dma t ~memory ~lba ~count data =
    if Bytes.length data <> count * sector_bytes then
      invalid_arg "ide dma write: data size mismatch";
    Bytes.blit data 0 memory 0 (Bytes.length data);
    Policy.with_retries ~label:"ide: write_dma" (fun () ->
        dma_common t ~lba ~count ~to_memory:false ~cmd:"WRITE_DMA")
end

module Handcrafted = struct
  type t = {
    bus : Devil_runtime.Bus.t;
    cmd_base : int;
    ctrl_base : int;
    bm_base : int;
    prd_base : int;
  }

  let create bus ~cmd_base ~ctrl_base ~bm_base ~prd_base =
    { bus; cmd_base; ctrl_base; bm_base; prd_base }

  let outb t base off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(base + off) ~value:v

  let inb t base off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(base + off)

  let wait_not_busy t =
    Policy.poll_until ~label:"ide: BSY clear" (fun () ->
        inb t t.cmd_base 7 land 0x80 = 0)

  (* The original driver's interrupt service: one status read. *)
  let wait_drq t =
    Policy.poll_until ~label:"ide: DRQ" (fun () ->
        let st = inb t t.cmd_base 7 in
        if st land 0x01 <> 0 then
          Policy.fail (Policy.Device_fault "ide: device error");
        st land 0x88 = 0x08)

  let setup_command t ~lba ~count ~cmd =
    wait_not_busy t;
    outb t t.cmd_base 2 (count land 0xff);
    outb t t.cmd_base 3 (lba land 0xff);
    outb t t.cmd_base 4 ((lba lsr 8) land 0xff);
    outb t t.cmd_base 5 ((lba lsr 16) land 0xff);
    outb t t.cmd_base 6 (0xe0 lor ((lba lsr 24) land 0xf));
    outb t t.cmd_base 7 cmd

  let read_data_words t ~path ~width ~words =
    let addr = t.cmd_base in
    match (path, width) with
    | `Block, `W16 ->
        let into = Array.make words 0 in
        t.bus.Devil_runtime.Bus.read_block ~width:16 ~addr ~into;
        into
    | `Block, `W32 ->
        let into = Array.make (words / 2) 0 in
        t.bus.Devil_runtime.Bus.read_block ~width:32 ~addr ~into;
        words_of_dwords into
    | `Loop, `W16 ->
        Array.init words (fun _ ->
            t.bus.Devil_runtime.Bus.read ~width:16 ~addr)
    | `Loop, `W32 ->
        words_of_dwords
          (Array.init (words / 2) (fun _ ->
               t.bus.Devil_runtime.Bus.read ~width:32 ~addr))

  let write_data_words t ~path ~width words =
    let addr = t.cmd_base in
    match (path, width) with
    | `Block, `W16 -> t.bus.Devil_runtime.Bus.write_block ~width:16 ~addr ~from:words
    | `Block, `W32 ->
        t.bus.Devil_runtime.Bus.write_block ~width:32 ~addr
          ~from:(dwords_of_words words)
    | `Loop, `W16 ->
        Array.iter
          (fun value -> t.bus.Devil_runtime.Bus.write ~width:16 ~addr ~value)
          words
    | `Loop, `W32 ->
        Array.iter
          (fun value -> t.bus.Devil_runtime.Bus.write ~width:32 ~addr ~value)
          (dwords_of_words words)

  let read_sectors t ~lba ~count ~mult ~path ~width =
    Policy.with_retries ~label:"ide: read_sectors" (fun () ->
        setup_command t ~lba ~count ~cmd:0x20;
        let out = Buffer.create (count * sector_bytes) in
        let remaining = ref count in
        while !remaining > 0 do
          let n = min mult !remaining in
          wait_drq t;
          let words =
            read_data_words t ~path ~width ~words:(n * words_per_sector)
          in
          Buffer.add_bytes out (words_to_bytes words);
          remaining := !remaining - n
        done;
        Buffer.to_bytes out)

  let write_sectors t ~lba ~count ~mult ~path ~width data =
    if Bytes.length data <> count * sector_bytes then
      invalid_arg "ide write: data size mismatch";
    Policy.with_retries ~label:"ide: write_sectors" (fun () ->
        setup_command t ~lba ~count ~cmd:0x30;
        let remaining = ref count and s = ref 0 in
        while !remaining > 0 do
          let n = min mult !remaining in
          wait_drq t;
          write_data_words t ~path ~width
            (bytes_to_words
               (Bytes.sub data (!s * sector_bytes) (n * sector_bytes)));
          remaining := !remaining - n;
          s := !s + n
        done)

  let bm_wait_irq t =
    Policy.poll_until ~label:"ide dma: IRQ" (fun () ->
        inb t t.bm_base 2 land 0x04 <> 0)

  let dma_common t ~lba ~count ~to_memory ~cmd =
    setup_command t ~lba ~count ~cmd;
    t.bus.Devil_runtime.Bus.write ~width:32 ~addr:t.prd_base ~value:0;
    outb t t.bm_base 0 (if to_memory then 0x08 else 0x00);
    outb t t.bm_base 0 (if to_memory then 0x09 else 0x01);
    bm_wait_irq t;
    outb t t.bm_base 2 0x04;
    outb t t.bm_base 0 0x00

  let read_dma t ~memory ~lba ~count =
    Policy.with_retries ~label:"ide: read_dma" (fun () ->
        dma_common t ~lba ~count ~to_memory:true ~cmd:0xc8);
    Bytes.sub memory 0 (count * sector_bytes)

  let write_dma t ~memory ~lba ~count data =
    if Bytes.length data <> count * sector_bytes then
      invalid_arg "ide dma write: data size mismatch";
    Bytes.blit data 0 memory 0 (Bytes.length data);
    Policy.with_retries ~label:"ide: write_dma" (fun () ->
        dma_common t ~lba ~count ~to_memory:false ~cmd:0xca)
end

(* The queued, interrupt-driven DMA driver: commands are submitted to
   a Devil_runtime.Sched FIFO and the busmaster-complete interrupt —
   not a status poll — finishes each one, so while a transfer is on
   the wire the only I/O the driver performs is the interrupt
   acknowledge path. The synchronous driver's failure taxonomy is
   preserved: a transient engine fault re-issues the command up to
   Policy.default_attempts (exhaustion degrades), and a lost interrupt
   surfaces as the same classified [Timeout] a poll would raise. *)
module Async = struct
  module Sched = Devil_runtime.Sched

  let dev = "ide"

  type op = {
    op_lba : int;
    op_count : int;
    op_to_memory : bool;
    op_data : Bytes.t option;  (* write payload, re-blitted on re-issue *)
    op_on_data : (Bytes.t -> unit) option;
    mutable op_attempts : int;  (* command re-issues consumed so far *)
  }

  type t = {
    drv : Devil_driver.t;
    memory : Bytes.t;
    sched : Sched.t;
    ops : op Queue.t;  (* mirrors the scheduler's FIFO for this device *)
  }

  (* Issuing is the retry unit, exactly as in the synchronous driver:
     a fresh command resets the device's transfer state. *)
  let issue t op =
    (match op.op_data with
    | Some data -> Bytes.blit data 0 t.memory 0 (Bytes.length data)
    | None -> ());
    Devil_driver.setup_command t.drv ~lba:op.op_lba ~count:op.op_count
      ~cmd:(if op.op_to_memory then "READ_DMA" else "WRITE_DMA");
    let p = t.drv.Devil_driver.piix4 in
    Instance.set p "prd_address" (Value.Int 0);
    Instance.set p "bm_direction"
      (Value.Enum (if op.op_to_memory then "BM_TO_MEMORY" else "BM_FROM_MEMORY"));
    Instance.set p "bm_engine" (Value.Enum "BM_START")

  let stop_engine t =
    Instance.set t.drv.Devil_driver.piix4 "bm_engine" (Value.Enum "BM_STOP")

  (* The interrupt service routine: check the engine, clear both
     interrupt sources (the busmaster status bit and, via the status
     read, the disk's INTRQ), then complete — or re-issue — the
     in-flight command. *)
  let handle t () =
    let p = t.drv.Devil_driver.piix4 in
    let irq_raised =
      match Instance.get p "bm_irq" with Value.Enum "RAISED" -> true | _ -> false
    in
    ignore (Devil_driver.poll_status t.drv);
    if irq_raised then begin
      let engine_fault =
        match Instance.get p "bm_error" with
        | Value.Enum "FAULT" -> true
        | _ -> false
      in
      Instance.set p "bm_irq" (Value.Enum "CLEAR_IRQ");
      Instance.set p "bm_engine" (Value.Enum "BM_STOP");
      match Queue.peek_opt t.ops with
      | None ->
          (* A late interrupt whose request already timed out: complete
             into the empty queue so the loop accounts it as unhandled. *)
          Sched.complete t.sched ~dev (Ok ())
      | Some op ->
          if engine_fault then
            if op.op_attempts + 1 < Policy.default_attempts () then begin
              op.op_attempts <- op.op_attempts + 1;
              issue t op
            end
            else
              Sched.complete t.sched ~dev
                (Error
                   (Policy.Degraded
                      "ide dma: engine fault, attempts exhausted"))
          else begin
            (match op.op_on_data with
            | Some f -> f (Bytes.sub t.memory 0 (op.op_count * sector_bytes))
            | None -> ());
            Sched.complete t.sched ~dev (Ok ())
          end
    end

  let create ~sched ~line ~memory ~ide ~piix4 =
    let t =
      {
        drv = Devil_driver.create ~ide ~piix4;
        memory;
        sched;
        ops = Queue.create ();
      }
    in
    Sched.set_handler sched ~line ~dev (handle t);
    t

  let submit t ~label op =
    Queue.add op t.ops;
    Sched.submit t.sched ~dev ~label
      ~start:(fun () -> Policy.with_retries ~label (fun () -> issue t op))
      ~abort:(fun () -> stop_engine t)
      ~on_done:(fun _ -> ignore (Queue.take_opt t.ops))
      ()

  let read_dma t ~lba ~count ?on_data () =
    submit t ~label:"ide: read_dma"
      {
        op_lba = lba;
        op_count = count;
        op_to_memory = true;
        op_data = None;
        op_on_data = on_data;
        op_attempts = 0;
      }

  let write_dma t ~lba ~count data =
    if Bytes.length data <> count * sector_bytes then
      invalid_arg "ide dma write: data size mismatch";
    submit t ~label:"ide: write_dma"
      {
        op_lba = lba;
        op_count = count;
        op_to_memory = false;
        op_data = Some data;
        op_on_data = None;
        op_attempts = 0;
      }

  let await t rq = Sched.await t.sched rq
  let drain t = Sched.drain t.sched
  let request_id = Sched.request_id
end
