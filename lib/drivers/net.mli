(** NE2000 Ethernet drivers: initialization, packet transmission and
    receive-ring service through the remote-DMA engine. *)

val ring_copy :
  read:(addr:int -> len:int -> Bytes.t) -> bnry:int -> body_len:int -> Bytes.t
(** Reassembles the frame body whose ring header sits at page [bnry]:
    [body_len] bytes starting 4 past the header, wrapping from the ring
    end back to the ring start when the frame straddles it. [read] is
    the driver's remote-DMA read. Shared by both drivers so wrapped
    frames reassemble byte-identically. *)

module Devil_driver : sig
  type t

  val create : Devil_runtime.Instance.t -> t

  val init : t -> mac:string -> unit
  (** Full DP8390 bring-up: stop, configure DCR/RCR/TCR, program the
      receive ring, load the station address, clear and unmask
      interrupts, start. [mac] is 6 bytes. *)

  val init_loopback : t -> mac:string -> unit
  (** Same, but leaves the transmitter in internal-loopback mode. *)

  val station_address : t -> string
  (** Reads back the 6-byte station address (page 1). *)

  val send : t -> string -> unit
  (** Copies the frame into transmit memory via remote DMA and fires
      the transmit command. *)

  val receive : t -> string option
  (** Services the receive ring: returns the next frame, advancing
      BNRY, or [None] when the ring is empty. *)

  val ack_interrupts : t -> unit
  (** Acknowledges all pending ISR bits through the structure stubs. *)
end

module Handcrafted : sig
  type t

  val create : Devil_runtime.Bus.t -> base:int -> t
  val init : t -> mac:string -> unit
  val init_loopback : t -> mac:string -> unit
  val station_address : t -> string
  val send : t -> string -> unit
  val receive : t -> string option
end

(** The interrupt-driven driver over {!Devil_driver} and a
    {!Devil_runtime.Sched} loop: the receive ring is drained in a
    burst when the PRX interrupt fires (one interrupt, however many
    frames), transmissions are queued requests completed by PTX, and
    the driver never polls CURR/BNRY while idle. *)
module Async : sig
  type t

  val create :
    sched:Devil_runtime.Sched.t -> line:int -> Devil_runtime.Instance.t -> t
  (** Registers the interrupt handler for [line] on [sched]. The
      underlying device should be initialized with
      {!Devil_driver.init} (same instance) before frames flow. *)

  val on_frame : t -> (string -> unit) -> unit
  (** Sets the receive callback, invoked once per drained frame from
      inside the interrupt handler. *)

  val send : t -> string -> Devil_runtime.Sched.request
  (** Queues a transmission; the request completes when the PTX
      interrupt is serviced, or times out through the classified
      {!Devil_runtime.Policy} path like any queued request. *)

  val await : t -> Devil_runtime.Sched.request -> unit
  val drain : t -> unit

  val request_id : Devil_runtime.Sched.request -> int
  (** The id threading this request's trace events (see
      {!Devil_runtime.Sched.request_id}). *)
end
