module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

type time = { hours : int; minutes : int; seconds : int }

(* The update flag clears within one RTC cycle; an expiry is tolerated
   because the double-sample in [read_time] catches torn reads. *)
let update_deadline = 10_000

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  let get_int t name =
    match Instance.get t name with Value.Int v -> v | _ -> 0

  let wait_update_window t =
    ignore
      (Policy.try_poll ~deadline:update_deadline (fun () ->
           match Instance.get t "update_in_progress" with
           | Value.Bool true -> false
           | _ -> true))

  let sample t =
    {
      hours = get_int t "hours";
      minutes = get_int t "minutes";
      seconds = get_int t "seconds";
    }

  let read_time t =
    wait_update_window t;
    let rec stable n =
      let a = sample t in
      let b = sample t in
      if a = b || n = 0 then a else stable (n - 1)
    in
    stable 8

  let set_time t { hours; minutes; seconds } =
    (* The first status-B write composes the unwritten siblings as
       zero, so the driver pins the format bits explicitly instead of
       inheriting whatever the firmware left. *)
    Instance.set t "set_mode" (Value.Enum "HALT_UPDATES");
    Instance.set t "binary_mode" (Value.Enum "BINARY");
    Instance.set t "format_24h" (Value.Bool true);
    Instance.set t "hours" (Value.Int hours);
    Instance.set t "minutes" (Value.Int minutes);
    Instance.set t "seconds" (Value.Int seconds);
    Instance.set t "set_mode" (Value.Enum "RUN")

  let set_alarm t { hours; minutes; seconds } =
    Instance.set t "hours_alarm" (Value.Int hours);
    Instance.set t "minutes_alarm" (Value.Int minutes);
    Instance.set t "seconds_alarm" (Value.Int seconds)

  let enable_alarm_irq t on = Instance.set t "alarm_irq" (Value.Bool on)

  let pending_interrupts t = get_int t "irq_flags"
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; index_base : int; data_base : int }

  let create bus ~index_base ~data_base = { bus; index_base; data_base }

  let read_reg t i =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:t.index_base ~value:i;
    t.bus.Devil_runtime.Bus.read ~width:8 ~addr:t.data_base

  let write_reg t i v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:t.index_base ~value:i;
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:t.data_base ~value:v

  let wait_update_window t =
    ignore
      (Policy.try_poll ~deadline:update_deadline (fun () ->
           read_reg t 10 land 0x80 = 0))

  let sample t =
    { hours = read_reg t 4; minutes = read_reg t 2; seconds = read_reg t 0 }

  let read_time t =
    wait_update_window t;
    let rec stable n =
      let a = sample t in
      let b = sample t in
      if a = b || n = 0 then a else stable (n - 1)
    in
    stable 8

  let set_time t { hours; minutes; seconds } =
    let b = read_reg t 11 in
    write_reg t 11 (b lor 0x80);
    write_reg t 4 hours;
    write_reg t 2 minutes;
    write_reg t 0 seconds;
    write_reg t 11 (b land lnot 0x80)

  let set_alarm t { hours; minutes; seconds } =
    write_reg t 5 hours;
    write_reg t 3 minutes;
    write_reg t 1 seconds

  let enable_alarm_irq t on =
    let b = read_reg t 11 in
    write_reg t 11 (if on then b lor 0x20 else b land lnot 0x20)

  let pending_interrupts t = (read_reg t 12 lsr 4) land 0xf
end
