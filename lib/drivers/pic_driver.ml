module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  (* One structure write: the serialization clause emits ICW1, ICW2,
     then ICW3/ICW4 only when the configured values require them. *)
  let init t ~vector_base ~single ~with_icw4 ~cascade_map =
    Instance.set_struct t "init"
      [
        ("ic4", Value.Bool with_icw4);
        ("sngl", Value.Enum (if single then "SINGLE" else "CASCADED"));
        ("adi", Value.Bool false);
        ("ltim", Value.Enum "EDGE");
        ("vector_base", Value.Int ((vector_base lsr 3) land 0x1f));
        ("cascade_map", Value.Int cascade_map);
        ("microprocessor", Value.Enum "X8086");
        ("auto_eoi", Value.Bool false);
        ("buffer_master", Value.Bool false);
        ("buffered", Value.Bool false);
        ("nested", Value.Bool false);
      ]

  let set_mask t mask = Instance.set t "irq_mask" (Value.Int (mask land 0xff))

  let expect_int name = function
    | Value.Int v -> v
    | v ->
        Policy.fail
          (Policy.Device_fault
             (name ^ ": expected int, got " ^ Value.to_string v))

  let read_mask t = expect_int "irq_mask" (Instance.get t "irq_mask")
  let mask_line t line = set_mask t (read_mask t lor (1 lsl line))
  let unmask_line t line = set_mask t (read_mask t land lnot (1 lsl line))

  let pending_requests t =
    Instance.set t "read_select" (Value.Enum "READ_IRR");
    expect_int "irq_request" (Instance.get t "irq_request")

  let in_service t =
    Instance.set t "read_select" (Value.Enum "READ_ISR");
    expect_int "in_service" (Instance.get t "in_service")

  let eoi t = Instance.set t "eoi_command" (Value.Enum "NON_SPECIFIC_EOI")

  let specific_eoi t ~line =
    Instance.set t "eoi_level" (Value.Int (line land 0x7));
    Instance.set t "eoi_command" (Value.Enum "SPECIFIC_EOI")
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + off) ~value:v

  let inb t off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + off)

  let init t ~vector_base ~single ~with_icw4 ~cascade_map =
    let icw1 =
      0x10 lor (if single then 0x02 else 0x00)
      lor if with_icw4 then 0x01 else 0x00
    in
    outb t 0 icw1;
    outb t 1 (vector_base land 0xf8);
    if not single then outb t 1 cascade_map;
    if with_icw4 then outb t 1 0x01 (* 8086 mode *)

  let set_mask t mask = outb t 1 (mask land 0xff)
  let read_mask t = inb t 1

  let pending_requests t =
    outb t 0 0x0a;  (* OCW3: read IRR *)
    inb t 0

  let in_service t =
    outb t 0 0x0b;  (* OCW3: read ISR *)
    inb t 0

  let eoi t = outb t 0 0x20
  let specific_eoi t ~line = outb t 0 (0x60 lor (line land 0x7))
end
