module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

let clock = 115200

module Devil_driver = struct
  type t = Instance.t

  let create inst = inst

  (* Pure configuration, so the whole sequence is idempotent and can
     be retried as one unit when the bus faults transiently. *)
  let init t ~baud =
    Policy.with_retries ~label:"serial: init" @@ fun () ->
    (* The divisor variable's serialization writes DLL then DLM; its
       pre-actions raise DLAB around the access transparently. *)
    Instance.set t "divisor" (Value.Int (clock / baud));
    Instance.set t "word_length" (Value.Enum "BITS8");
    Instance.set t "two_stop_bits" (Value.Bool false);
    Instance.set t "parity_mode" (Value.Int 0);
    Instance.set t "break_control" (Value.Bool false);
    Instance.set t "fifo_enable" (Value.Bool true);
    Instance.set t "rx_fifo_reset" (Value.Bool true);
    Instance.set t "tx_fifo_reset" (Value.Bool true);
    Instance.set t "rx_trigger_level" (Value.Int 2);
    Instance.set t "dtr" (Value.Bool true);
    Instance.set t "rts" (Value.Bool true)

  let configured_baud t =
    match Instance.get t "divisor" with
    | Value.Int d when d > 0 -> clock / d
    | _ -> 0

  let send t s =
    Instance.write_block t "tx_data"
      (Array.init (String.length s) (fun i -> Char.code s.[i]))

  let data_ready t =
    Instance.get_struct t "line_status";
    match Instance.get t "data_ready" with
    | Value.Bool b -> b
    | _ -> false

  let recv t ~max =
    let buf = Buffer.create max in
    let rec go n =
      if n > 0 && data_ready t then begin
        (match Instance.get t "rx_data" with
        | Value.Int c -> Buffer.add_char buf (Char.chr (c land 0xff))
        | _ -> ());
        go (n - 1)
      end
    in
    go max;
    Buffer.contents buf

  (* Like {!recv}, but waits for each byte under a uniform poll
     deadline instead of giving up on the first empty FIFO read. *)
  let recv_blocking ?deadline t ~max =
    let buf = Buffer.create max in
    (try
       for _ = 1 to max do
         Policy.poll_until ?deadline ~label:"serial: RX data" (fun () ->
             data_ready t);
         match Instance.get t "rx_data" with
         | Value.Int c -> Buffer.add_char buf (Char.chr (c land 0xff))
         | _ -> ()
       done
     with Policy.Driver_error (Policy.Timeout _) -> ());
    Buffer.contents buf

  let set_loopback t on = Instance.set t "loopback" (Value.Bool on)

  let reset_fifos t =
    Instance.set t "rx_fifo_reset" (Value.Bool true);
    Instance.set t "tx_fifo_reset" (Value.Bool true)

  let self_test t =
    (* Each attempt starts from clean FIFOs, so a retry after a
       transient fault does not read a stale partial pattern. *)
    Policy.with_retries ~label:"serial: self-test" (fun () ->
        reset_fifos t;
        set_loopback t true;
        let pattern = "\x55\xaa\x5a\xa5devil" in
        send t pattern;
        let back = recv_blocking ~deadline:64 t ~max:(String.length pattern) in
        set_loopback t false;
        String.equal back pattern)
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; base : int }

  let create bus ~base = { bus; base }

  let outb t off v =
    t.bus.Devil_runtime.Bus.write ~width:8 ~addr:(t.base + off) ~value:v

  let inb t off = t.bus.Devil_runtime.Bus.read ~width:8 ~addr:(t.base + off)

  let init t ~baud =
    let divisor = clock / baud in
    outb t 3 0x80;  (* DLAB on *)
    outb t 0 (divisor land 0xff);
    outb t 1 ((divisor lsr 8) land 0xff);
    outb t 3 0x03;  (* 8N1, DLAB off *)
    outb t 2 0x87;  (* FIFO enable + reset, trigger 8 *)
    outb t 4 0x03  (* DTR | RTS *)

  let send t s = String.iter (fun c -> outb t 0 (Char.code c)) s

  let data_ready t = inb t 5 land 0x01 <> 0

  let recv t ~max =
    let buf = Buffer.create max in
    let rec go n =
      if n > 0 && data_ready t then begin
        Buffer.add_char buf (Char.chr (inb t 0));
        go (n - 1)
      end
    in
    go max;
    Buffer.contents buf

  let recv_blocking ?deadline t ~max =
    let buf = Buffer.create max in
    (try
       for _ = 1 to max do
         Policy.poll_until ?deadline ~label:"serial: RX data" (fun () ->
             data_ready t);
         Buffer.add_char buf (Char.chr (inb t 0))
       done
     with Policy.Driver_error (Policy.Timeout _) -> ());
    Buffer.contents buf

  let set_loopback t on =
    let mcr = inb t 4 in
    outb t 4 (if on then mcr lor 0x10 else mcr land lnot 0x10)

  let self_test t =
    Policy.with_retries ~label:"serial: self-test" (fun () ->
        outb t 2 0x87;  (* FIFO enable + reset before each attempt *)
        set_loopback t true;
        let pattern = "\x55\xaa\x5a\xa5devil" in
        send t pattern;
        let back = recv_blocking ~deadline:64 t ~max:(String.length pattern) in
        set_loopback t false;
        String.equal back pattern)
end
