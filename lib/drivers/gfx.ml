module Instance = Devil_runtime.Instance
module Policy = Devil_runtime.Policy
module Value = Devil_ir.Value

type rect = { x : int; y : int; w : int; h : int }

(* The server re-sends the raster state (raster op, window base, clip)
   with every primitive, then programs the primitive's own parameters;
   each group is preceded by a FIFO wait loop — "2 or 3 wait loops are
   performed per primitive call" (paper §4.3). *)
let state_entries = 4  (* raster op, window base, clip, color *)
let param_entries = 2  (* position, size *)
let copy_param_entries = 3  (* position, size, offset *)

module Devil_driver = struct
  type t = { inst : Instance.t; mutable depth : int }

  let create inst = { inst; depth = 8 }

  (* Every public operation runs inside a guarded retry boundary: a
     transient bus fault anywhere in the sequence — a FIFO-space poll
     read included — is retried from the top (the sequences only
     buffer state until the final trigger write, and a transient
     aborts before the device is touched, so re-sending is safe), and
     whatever survives retrying surfaces as a classified
     [Policy.Driver_error], never a raw [Bus_fault]. *)
  let protected label f =
    Policy.guarded ~label (fun () -> Policy.with_retries ~label f)

  let free_entries t =
    match Instance.get t.inst "free_entries" with
    | Value.Int n -> n
    | _ -> 0

  let wait_fifo t n =
    Policy.poll_until ~label:"gfx: FIFO space" (fun () -> free_entries t >= n)

  let set_depth t depth =
    protected "gfx: set_depth" (fun () ->
        wait_fifo t 1;
        Instance.set t.inst "pixel_depth" (Value.Int depth));
    t.depth <- depth

  let sync t =
    protected "gfx: sync" (fun () ->
        Policy.poll_until ~label:"gfx: engine idle" (fun () ->
            match Instance.get t.inst "engine_busy" with
            | Value.Bool true -> false
            | _ -> true))

  let send_state t ~color =
    Instance.set t.inst "raster_op" (Value.Int 0x3);
    Instance.set t.inst "window_base" (Value.Int 0);
    Instance.set t.inst "clip_rect" (Value.Int 0x03ff03ff);
    Instance.set t.inst "fill_color" (Value.Int color)

  let send_rect t { x; y; w; h } =
    if t.depth = 24 then begin
      (* Grouped structure stubs: one transfer per packed register. *)
      Instance.set_struct t.inst "rect_position"
        [ ("rect_x", Value.Int x); ("rect_y", Value.Int y) ];
      Instance.set_struct t.inst "rect_size"
        [ ("rect_width", Value.Int w); ("rect_height", Value.Int h) ]
    end
    else begin
      (* Independent variables: one interface call (and one I/O
         operation) each — the paper's §4.3 penalty. *)
      Instance.set t.inst "rect_x" (Value.Int x);
      Instance.set t.inst "rect_y" (Value.Int y);
      Instance.set t.inst "rect_width" (Value.Int w);
      Instance.set t.inst "rect_height" (Value.Int h)
    end

  let fill_rect t r ~color =
    protected "gfx: fill_rect" (fun () ->
        wait_fifo t state_entries;
        send_state t ~color;
        wait_fifo t param_entries;
        send_rect t r;
        wait_fifo t 1;
        Instance.set t.inst "render_op" (Value.Enum "OP_FILL"))

  let copy_rect t r ~dx ~dy =
    protected "gfx: copy_rect" (fun () ->
        wait_fifo t state_entries;
        send_state t ~color:0;
        wait_fifo t copy_param_entries;
        send_rect t r;
        Instance.set_struct t.inst "copy_vector"
          [ ("copy_dx", Value.Int dx); ("copy_dy", Value.Int dy) ];
        wait_fifo t 1;
        Instance.set t.inst "render_op" (Value.Enum "OP_COPY"))
end

module Handcrafted = struct
  type t = { bus : Devil_runtime.Bus.t; mmio_base : int }

  let create bus ~mmio_base = { bus; mmio_base }

  let rd t off =
    t.bus.Devil_runtime.Bus.read ~width:32 ~addr:(t.mmio_base + off)

  let wr t off v =
    t.bus.Devil_runtime.Bus.write ~width:32 ~addr:(t.mmio_base + off) ~value:v

  let wait_fifo t n =
    Policy.poll_until ~label:"gfx: FIFO space" (fun () -> rd t 0 >= n)

  let set_depth t depth =
    wait_fifo t 1;
    wr t 6 depth

  let sync t =
    Policy.poll_until ~label:"gfx: engine idle" (fun () -> rd t 7 = 0)

  let send_state t ~color =
    wr t 10 0x3;
    wr t 9 0;
    wr t 8 0x03ff03ff;
    wr t 1 color

  let fill_rect t { x; y; w; h } ~color =
    wait_fifo t state_entries;
    send_state t ~color;
    wait_fifo t param_entries;
    wr t 2 (x lor (y lsl 16));
    wr t 3 (w lor (h lsl 16));
    wait_fifo t 1;
    wr t 5 0x1

  let copy_rect t { x; y; w; h } ~dx ~dy =
    let u16 v = v land 0xffff in
    wait_fifo t state_entries;
    send_state t ~color:0;
    wait_fifo t copy_param_entries;
    wr t 2 (x lor (y lsl 16));
    wr t 3 (w lor (h lsl 16));
    wr t 4 (u16 dx lor (u16 dy lsl 16));
    wait_fifo t 1;
    wr t 5 0x2
end
