(* The generated fault campaign: derive the busiest bus addresses of a
   deterministic workload, then explore single (or multi, via ~budget)
   scheduled injections over them with Explore, holding the recovery
   invariant: a transient fault that fired must leave the policy-wrapped
   workload with exactly the clean run's outcomes, and no raw exception
   may ever escape the Policy boundary. Value-corrupting kinds (stuck
   bits, flips, dropped/duplicated writes) are allowed to change
   outcomes — a memory bus gives the driver nothing to detect them
   with — but still must not leak exceptions. Any violation found is
   minimized with Explore.shrink before being reported. *)

module Ir = Devil_ir.Ir
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Instance = Devil_runtime.Instance
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Explore = Devil_runtime.Explore
module Coverage = Devil_runtime.Coverage

type choice = {
  c_op : Fault.op;
  c_addr : int;
  c_kind : Fault.kind;
  c_label : string;
}

let kind_tag = function
  | Fault.Stuck_bits _ -> "stuck"
  | Fault.Flip_bits _ -> "flip"
  | Fault.Drop_write _ -> "drop"
  | Fault.Duplicate_write _ -> "dup"
  | Fault.Transient _ -> "transient"

let choice ~op ~addr kind =
  {
    c_op = op;
    c_addr = addr;
    c_kind = kind;
    c_label =
      Printf.sprintf "%s@0x%x:%s"
        (match op with Fault.Read -> "read" | Fault.Write -> "write")
        addr (kind_tag kind);
  }

let pp_choice fmt c = Format.pp_print_string fmt c.c_label

let read_kinds =
  [
    Fault.Transient { probability = 1.0 };
    Fault.Flip_bits { mask = 0xff; probability = 1.0 };
    Fault.Stuck_bits { and_mask = 0x0f; or_mask = 0x01 };
  ]

let write_kinds =
  [
    Fault.Transient { probability = 1.0 };
    Fault.Drop_write { probability = 1.0 };
    Fault.Duplicate_write { probability = 1.0 };
  ]

let is_transient_kind = function Fault.Transient _ -> true | _ -> false

(* Busiest addresses per direction, from the clean run's bus events
   (block transfers count one covered operation per element, matching
   the injector's ordinal space). *)
let busiest ~per_dir (events : Trace.event list) =
  let h = Hashtbl.create 32 in
  let bump op addr n =
    let k = (op, addr) in
    Hashtbl.replace h k (n + Option.value ~default:0 (Hashtbl.find_opt h k))
  in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Bus_read { addr; _ } -> bump Fault.Read addr 1
      | Bus_write { addr; _ } -> bump Fault.Write addr 1
      | Bus_block_read { addr; count; _ } -> bump Fault.Read addr count
      | Bus_block_write { addr; count; _ } -> bump Fault.Write addr count
      | _ -> ())
    events;
  let top op =
    Hashtbl.fold (fun (o, addr) n acc -> if o = op then (addr, n) :: acc else acc) h []
    |> List.sort (fun (a1, n1) (a2, n2) ->
           match compare n2 n1 with 0 -> compare a1 a2 | c -> c)
    |> List.filteri (fun i _ -> i < per_dir)
    |> List.map fst
  in
  (top Fault.Read, top Fault.Write)

(* {1 Executing the workload under the recovery policy} *)

(* Every operation runs inside the full policy stack; the only
   exception allowed out is Driver_error, which we classify. *)
let exec ?attempts inst op =
  let l = "harness:" ^ Opgen.pp_op op in
  try
    Opgen.pp_outcome
      (Policy.with_retries ?attempts ~label:l (fun () ->
           Policy.guarded ~label:l (fun () -> Opgen.run_op_raw inst op)))
  with Policy.Driver_error e -> "driver error: " ^ Policy.error_to_string e

let is_driver_error s =
  String.length s >= 12 && String.sub s 0 12 = "driver error"

(* {1 The campaign} *)

type violation = {
  fv_detail : string;
  fv_schedule : string;  (** minimized, replayable: choice\@slot list *)
  fv_shrink_runs : int;
}

type report = {
  fb_ops : int;  (** workload length, in operations *)
  fb_choices : int;  (** (site, kind) decisions explored *)
  fb_runs : int;
  fb_recovered : int;  (** fired and outcomes identical to clean *)
  fb_detected : int;  (** fired, divergent, surfaced as a classified error *)
  fb_corrupt : int;  (** fired, silently divergent, corrupting kind *)
  fb_infeasible : int;  (** scheduled ordinal beyond the traffic *)
  fb_violations : violation list;
}

let campaign ?coverage ?(depth = 3) ?(budget = 1) ?(sites_per_dir = 2)
    ?attempts ?(seed = 7) ?(length = 10) (device : Ir.device) : report =
  let ops = Opgen.workload device ~seed ~length in
  let bases = Diffbat.bases_for device in
  let build injections =
    let raw = Bus.memory ~size:4096 () in
    Diffbat.seed_bus ~seed raw;
    let trace = Trace.create ~capacity:200_000 () in
    let inj = Fault.scheduled ~injections raw in
    let bus = Bus.observed ~trace (Fault.bus inj) in
    let inst =
      Instance.create ~label:Diffbat.label ~trace ~interpret:false device ~bus
        ~bases
    in
    (inst, inj, trace)
  in
  (* Pass A: the clean baseline — same engine stack, no decisions.
     Its outcomes are the recovery invariant's right-hand side, its bus
     traffic selects the injection sites, and its trace feeds the
     shared coverage accumulator. *)
  let clean_inst, _, clean_trace = build [] in
  Option.iter (fun cov -> Coverage.attach cov clean_trace) coverage;
  let clean = List.map (exec ?attempts clean_inst) ops in
  let reads, writes = busiest ~per_dir:sites_per_dir (Trace.events clean_trace) in
  let choices =
    List.concat_map
      (fun addr -> List.map (fun k -> choice ~op:Fault.Read ~addr k) read_kinds)
      reads
    @ List.concat_map
        (fun addr ->
          List.map (fun k -> choice ~op:Fault.Write ~addr k) write_kinds)
        writes
  in
  (* Probes make every choice's traffic horizon observable on every
     run, including the empty schedule Explore starts from. *)
  let probes =
    List.map
      (fun c ->
        Fault.injection ~label:c.c_label ~op:c.c_op ~at:max_int ~first:c.c_addr
          ~last:c.c_addr c.c_kind)
      choices
  in
  let run_sched (sched : choice Explore.schedule) : choice Explore.outcome =
    let injections =
      probes
      @ List.map
          (fun (d : choice Explore.decision) ->
            let c = d.choice in
            Fault.injection ~label:c.c_label ~op:c.c_op ~at:d.slot
              ~first:c.c_addr ~last:c.c_addr c.c_kind)
          sched
    in
    let inst, inj, _ = build injections in
    let escaped = ref None in
    let outcomes =
      List.map
        (fun op ->
          match !escaped with
          | Some _ -> "skipped"
          | None -> (
              try exec ?attempts inst op
              with e ->
                escaped := Some (Opgen.pp_op op ^ ": " ^ Printexc.to_string e);
                "escaped"))
        ops
    in
    let fired = Fault.scheduled_hits inj in
    let ok, detail =
      match !escaped with
      | Some e -> (false, "exception escaped the policy boundary: " ^ e)
      | None ->
          if fired < List.length sched then (true, "infeasible")
          else if sched = [] then (true, "clean")
          else if outcomes = clean then (true, "recovered")
          else if List.for_all (fun (d : choice Explore.decision) ->
                      is_transient_kind d.choice.c_kind)
                    sched
          then
            ( false,
              "recovery invariant: outcomes diverged from the clean run \
               after transient fault(s) "
              ^ String.concat ", "
                  (List.map
                     (fun (d : choice Explore.decision) ->
                       Printf.sprintf "%s@%d" d.choice.c_label d.slot)
                     sched) )
          else
            let new_error =
              List.exists2
                (fun c o -> c <> o && is_driver_error o)
                clean outcomes
            in
            (true, if new_error then "detected" else "corrupt")
    in
    {
      Explore.oc_ok = ok;
      oc_detail = detail;
      oc_fired = fired;
      oc_state = Hashtbl.hash outcomes;
      oc_horizon = (fun c -> Fault.seen_for inj c.c_label);
    }
  in
  let recovered = ref 0 and detected = ref 0 and corrupt = ref 0 in
  let tally _sched (o : choice Explore.outcome) =
    match o.oc_detail with
    | "recovered" -> incr recovered
    | "detected" -> incr detected
    | "corrupt" -> incr corrupt
    | _ -> ()
  in
  let rp =
    Explore.explore ~depth ~budget ~choices ~run:run_sched ~on_run:tally ()
  in
  let violations =
    List.map
      (fun (v : choice Explore.violation) ->
        let minimized, runs = Explore.shrink ~run:run_sched v.vx_schedule in
        {
          fv_detail = v.vx_detail;
          fv_schedule =
            Format.asprintf "%a" (Explore.pp_schedule pp_choice) minimized;
          fv_shrink_runs = runs;
        })
      rp.rp_violations
  in
  {
    fb_ops = List.length ops;
    fb_choices = List.length choices;
    fb_runs = rp.rp_runs;
    fb_recovered = !recovered;
    fb_detected = !detected;
    fb_corrupt = !corrupt;
    fb_infeasible = rp.rp_infeasible;
    fb_violations = violations;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "ops %d  choices %d  runs %d  recovered %d  detected %d  corrupt %d  \
     infeasible %d  violations %d"
    r.fb_ops r.fb_choices r.fb_runs r.fb_recovered r.fb_detected r.fb_corrupt
    r.fb_infeasible
    (List.length r.fb_violations)
