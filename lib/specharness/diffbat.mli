(** The generated differential battery (DESIGN.md §14).

    Runs {!Opgen} operation sequences on two instances of the same
    device — the compiled plan engine and the IR interpreter — over
    identically seeded memory buses, and demands identical per-op
    outcomes, identical trace streams, identical cached raws and zero
    {!Devil_runtime.Monitor} violations. This is the harness-generated
    counterpart of [test/test_plan_diff.ml]: same oracles, but the
    workload comes from the site-aware valid-operation generators, so
    it exercises protocol paths rather than dynamic-check errors. *)

module Ir = Devil_ir.Ir

val label : string
(** Instance label used by every engine the battery builds
    (["harness"]) — the [~dev] to give a {!Devil_runtime.Coverage}. *)

val bases_for : Ir.device -> (string * int) list
(** Non-overlapping base addresses for every port of the device. *)

val seed_bus : seed:int -> Devil_runtime.Bus.t -> unit
(** Pre-seeds a memory bus's low cells from a deterministic PRNG, so
    two engines (or a clean and a faulted run) start from identical
    device state. *)

type divergence = { dv_detail : string; dv_op : int option }

val run_diff :
  ?coverage:Devil_runtime.Coverage.t ->
  Ir.device ->
  seed:int ->
  Opgen.op list ->
  divergence option
(** Runs one sequence on both engines; [None] means all four oracles
    agreed. [coverage] observes the compiled engine's live trace. *)

val qcheck_test : ?count:int -> name:string -> Ir.device -> QCheck.Test.t
(** The property: for random (seed, generated sequence), {!run_diff}
    finds no divergence. *)

val covered_run :
  ?coverage:Devil_runtime.Coverage.t ->
  Ir.device ->
  seed:int ->
  Opgen.op list ->
  Opgen.outcome list
(** Drives the compiled engine alone (no oracle), feeding [coverage]
    from its live trace — how obligations and bulk sequences accumulate
    register coverage. *)
