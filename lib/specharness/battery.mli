(** The per-spec generated test battery (DESIGN.md §14).

    Composes the three generated layers over one shared coverage
    accumulator: deterministic {!Opgen.obligations}, random
    differential sequences ({!Diffbat}), and the generated fault
    campaign ({!Faultbat}). Zero per-spec code — {!all_devices}
    enumerates every bundled specification, so a spec added to
    {!Devil_specs.Specs.all} automatically joins the battery, the
    [bench harness] table and the [tools/check.sh] coverage gate. *)

module Ir = Devil_ir.Ir

val all_devices : unit -> (string * Ir.device) list
(** Every bundled spec, compiled (pic8259 configured as master — the
    only spec with a mandatory configuration parameter). *)

type report = {
  bt_name : string;
  bt_obligations : int;
  bt_obligation_errors : (string * string) list;
      (** Obligations whose outcome was an error (informational: e.g. a
          seeded raw that decodes to no enum case); coverage still
          accumulates from the register traffic. *)
  bt_sequences : int;
  bt_ops : int;
  bt_divergences : string list;
      (** Compiled/interpreter/monitor disagreements — must be empty. *)
  bt_fault : Faultbat.report;
  bt_coverage : Devil_runtime.Coverage.report;
}

val run : ?qcount:int -> ?seed:int -> name:string -> Ir.device -> report
(** Runs the full battery for one spec. [qcount] scales the number of
    random differential sequences (default 10). *)

val run_all : ?qcount:int -> ?seed:int -> unit -> report list

val pp_report : Format.formatter -> report -> unit

val gate : ?threshold:float -> report -> (unit, string) result
(** The acceptance verdict: generated register coverage at or above
    [threshold] percent (default 90), zero differential divergences,
    zero fault violations. *)
