(* The per-spec battery: obligations + random differential sequences +
   the generated fault campaign, all feeding one coverage accumulator.
   Everything is derived from the compiled IR — a new spec added to
   Devil_specs gets its battery for free. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Coverage = Devil_runtime.Coverage
module Specs = Devil_specs.Specs

let all_devices () =
  List.map
    (fun (name, source) ->
      let config =
        (* The one spec with a mandatory configuration parameter. *)
        if name = "pic8259" then [ ("is_master", Value.Bool true) ] else []
      in
      (name, Specs.compile_exn ~config ~name source))
    Specs.all

type report = {
  bt_name : string;
  bt_obligations : int;
  bt_obligation_errors : (string * string) list;
      (* obligation label, error outcome *)
  bt_sequences : int;
  bt_ops : int;  (* operations across the random sequences *)
  bt_divergences : string list;  (* from the bulk differential runs *)
  bt_fault : Faultbat.report;
  bt_coverage : Coverage.report;
}

let run ?(qcount = 10) ?(seed = 0) ~name (device : Ir.device) : report =
  let cov = Coverage.create ~dev:Diffbat.label device in
  (* 1. Deterministic coverage obligations, one burst per site the
     universe says a workload can reach. *)
  let obligations = Opgen.obligations device in
  let obligation_errors =
    List.concat_map
      (fun (label, ops) ->
        let outcomes = Diffbat.covered_run ~coverage:cov device ~seed ops in
        List.filter_map
          (function
            | Opgen.O_error m -> Some (label, m) | _ -> None)
          outcomes)
      obligations
  in
  (* 2. Random valid sequences, run differentially (compiled vs
     interpreter vs monitor) with coverage observing the compiled
     engine. *)
  let divergences = ref [] in
  let total_ops = ref 0 in
  for i = 0 to qcount - 1 do
    let s = (seed * 1000) + i in
    let rand = Random.State.make [| 0xba77e47; s |] in
    let ops = QCheck.Gen.generate1 ~rand (Opgen.gen_ops device) in
    total_ops := !total_ops + List.length ops;
    match Diffbat.run_diff ~coverage:cov device ~seed:s ops with
    | None -> ()
    | Some d ->
        divergences :=
          Printf.sprintf "sequence %d: %s" i d.Diffbat.dv_detail :: !divergences
  done;
  (* 3. The generated fault campaign; its clean baseline also feeds the
     coverage accumulator. *)
  let fault = Faultbat.campaign ~coverage:cov ~seed:(seed + 7) device in
  {
    bt_name = name;
    bt_obligations = List.length obligations;
    bt_obligation_errors = obligation_errors;
    bt_sequences = qcount;
    bt_ops = !total_ops;
    bt_divergences = List.rev !divergences;
    bt_fault = fault;
    bt_coverage = Coverage.report cov;
  }

let run_all ?qcount ?seed () =
  List.map (fun (name, device) -> run ?qcount ?seed ~name device)
    (all_devices ())

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "harness %-10s obligations %3d (%d error outcome(s))  sequences %d (%d \
     ops, %d divergence(s))@.        fault: %a@.        %a"
    r.bt_name r.bt_obligations
    (List.length r.bt_obligation_errors)
    r.bt_sequences r.bt_ops
    (List.length r.bt_divergences)
    Faultbat.pp_report r.bt_fault Coverage.pp_report r.bt_coverage

(* The pass/fail verdict the check.sh harness gate and `bench harness`
   apply: full register coverage gate plus zero violations. *)
let gate ?(threshold = 90.0) (r : report) : (unit, string) result =
  let pct = Coverage.reg_percent r.bt_coverage in
  if pct < threshold then
    Error
      (Printf.sprintf "%s: generated register coverage %.1f%% < %.1f%%"
         r.bt_name pct threshold)
  else if r.bt_divergences <> [] then
    Error
      (Printf.sprintf "%s: %d differential divergence(s): %s" r.bt_name
         (List.length r.bt_divergences)
         (List.hd r.bt_divergences))
  else if r.bt_fault.Faultbat.fb_violations <> [] then
    Error
      (Printf.sprintf "%s: %d fault violation(s): %s" r.bt_name
         (List.length r.bt_fault.Faultbat.fb_violations)
         (List.hd r.bt_fault.Faultbat.fb_violations).Faultbat.fv_detail)
  else Ok ()
