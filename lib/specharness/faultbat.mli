(** The generated fault campaign (DESIGN.md §14).

    For any compiled device, derives a deterministic {!Opgen.workload},
    finds its busiest bus addresses per direction, and explores
    scheduled fault injections over them ({!Devil_runtime.Fault.scheduled}
    enumerated by {!Devil_runtime.Explore}) with the workload running
    inside the full {!Devil_runtime.Policy} stack. The invariant pair:

    - a {e transient} fault that fired must be fully absorbed — the
      policy-wrapped workload's outcomes must equal the clean run's;
    - no raw exception may escape the policy boundary, for any kind.

    Value-corrupting kinds (stuck bits, flips, dropped and duplicated
    writes) may legitimately change outcomes on a protocol-less memory
    bus; they are tallied as [detected] (a classified error surfaced)
    or [corrupt], not as violations. Violations are minimized with
    {!Devil_runtime.Explore.shrink} before reporting. *)

module Ir = Devil_ir.Ir
module Fault = Devil_runtime.Fault

type choice = {
  c_op : Fault.op;
  c_addr : int;
  c_kind : Fault.kind;
  c_label : string;
}
(** One injectable decision: a fault kind at one address in one
    direction; the slot of a schedule decision picks the covered
    ordinal. *)

val pp_choice : Format.formatter -> choice -> unit

type violation = {
  fv_detail : string;
  fv_schedule : string;  (** minimized, replayable decision list *)
  fv_shrink_runs : int;  (** candidate runs the minimizer spent *)
}

type report = {
  fb_ops : int;
  fb_choices : int;
  fb_runs : int;
  fb_recovered : int;
  fb_detected : int;
  fb_corrupt : int;
  fb_infeasible : int;
  fb_violations : violation list;
}

val campaign :
  ?coverage:Devil_runtime.Coverage.t ->
  ?depth:int ->
  ?budget:int ->
  ?sites_per_dir:int ->
  ?attempts:int ->
  ?seed:int ->
  ?length:int ->
  Ir.device ->
  report
(** [campaign device] runs the generated campaign. [depth] bounds the
    injection ordinal (default 3), [budget] the decisions per schedule
    (default 1 — every single-injection schedule), [sites_per_dir] the
    busiest addresses kept per direction (default 2). [attempts]
    overrides the retry budget of the policy stack; [attempts:1]
    disables retries and is the self-test knob that turns every fired
    transient into a reportable, shrinkable violation. The clean
    baseline's trace feeds [coverage]. *)

val pp_report : Format.formatter -> report -> unit
