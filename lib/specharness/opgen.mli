(** Site-aware operation generation (DESIGN.md §14).

    Derives, from a compiled device's IR and site universe alone, the
    vocabulary of driver operations a harness can perform on it:
    what can legally be read, what can legally be written and with
    which values, and which access shapes (volatile re-reads, block
    gather/scatter, wide transfers, indexed templates) the spec
    declares. Zero per-spec code: every generator and obligation below
    is computed from {!Devil_ir.Sites} metadata. *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

(** The operation alphabet — one constructor per public entry point of
    {!Devil_runtime.Instance}. *)
type op =
  | Get of string
  | Set of string * Value.t
  | Get_struct of string
  | Set_struct of string * (string * Value.t) list
  | Read_block of string * int
  | Write_block of string * int array
  | Read_wide of string * int
  | Write_wide of string * int * int
  | Read_indexed of string * int list
  | Write_indexed of string * int list * int
  | Invalidate

val pp_op : op -> string

type outcome =
  | O_unit
  | O_value of Value.t
  | O_int of int
  | O_array of int array
  | O_error of string

val pp_outcome : outcome -> string

val run_op_raw : Devil_runtime.Instance.t -> op -> outcome
(** Executes one operation; device/bus exceptions propagate, so a
    {!Devil_runtime.Policy} boundary above can classify them — the
    execution mode of the fault battery. *)

val run_op : Devil_runtime.Instance.t -> op -> outcome
(** Executes one operation, catching [Device_error], [Bus_fault],
    [Not_found] and [Invalid_argument] into [O_error] — the execution
    mode of the differential battery, where both engines must fail
    identically. *)

val readable : Ir.device -> Ir.var -> bool
val writable : Ir.device -> Ir.var -> bool

val obligations : Ir.device -> (string * op list) list
(** Deterministic coverage obligations: one labelled operation burst
    per thing the site universe says a workload can exercise — every
    readable variable (volatile ones read twice to witness the
    re-read), every fully readable structure, every writable variable
    (with read-back when legal), every fully writable structure, block
    and wide transfers on [block] variables, and the first legal
    instance of each register template. Ordered reads-first so caches
    warm before sibling writes consult them. Running them all against a
    coverage-attached instance is the generated analogue of a
    hand-curated per-driver campaign workload. *)

val gen_ops : ?min_len:int -> ?max_len:int -> Ir.device -> op list QCheck.Gen.t
(** Random {e valid} operation sequences: direction-filtered (reads
    only of readable variables, writes only of writable ones),
    type-correct write values biased towards {!Devil_ir.Sites.canonical_writes},
    volatile variables emitted as paired reads, block variables as
    gather/scatter bursts of varying count and width, templates with
    legal argument vectors only. Unlike the error-path differential
    suite, a generated sequence exercises the protocol, not the dynamic
    checks. *)

val workload : Ir.device -> seed:int -> length:int -> op list
(** A deterministic workload: the same (device, seed, length) always
    yields the same list — the replayable substrate the fault battery
    explores schedules against. Ends with a sweep of scalar reads so
    late injections remain observable. *)
