(* Site-aware operation generation (DESIGN.md §14).

   Everything here is derived from the IR and the site universe alone:
   which variables can be read or written, which values are legal to
   write, which access shapes (volatile re-reads, block gather/scatter,
   indexed templates) the spec declares. No per-spec code — a new spec
   dropped into the library gets its operation vocabulary for free. *)

module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Value = Devil_ir.Value
module Sites = Devil_ir.Sites
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus

type op =
  | Get of string
  | Set of string * Value.t
  | Get_struct of string
  | Set_struct of string * (string * Value.t) list
  | Read_block of string * int
  | Write_block of string * int array
  | Read_wide of string * int
  | Write_wide of string * int * int
  | Read_indexed of string * int list
  | Write_indexed of string * int list * int
  | Invalidate

let pp_op = function
  | Get n -> "get " ^ n
  | Set (n, v) -> Printf.sprintf "set %s := %s" n (Value.to_string v)
  | Get_struct n -> "get_struct " ^ n
  | Set_struct (n, fs) ->
      Printf.sprintf "set_struct %s {%s}" n
        (String.concat "; "
           (List.map (fun (f, v) -> f ^ " = " ^ Value.to_string v) fs))
  | Read_block (n, c) -> Printf.sprintf "read_block %s count:%d" n c
  | Write_block (n, d) ->
      Printf.sprintf "write_block %s [%s]" n
        (String.concat ";" (Array.to_list (Array.map string_of_int d)))
  | Read_wide (n, s) -> Printf.sprintf "read_wide %s scale:%d" n s
  | Write_wide (n, s, v) -> Printf.sprintf "write_wide %s scale:%d %d" n s v
  | Read_indexed (t, a) ->
      Printf.sprintf "read_indexed %s(%s)" t
        (String.concat "," (List.map string_of_int a))
  | Write_indexed (t, a, v) ->
      Printf.sprintf "write_indexed %s(%s) := %d" t
        (String.concat "," (List.map string_of_int a))
        v
  | Invalidate -> "invalidate_cache"

(* {1 Executing operations} *)

type outcome =
  | O_unit
  | O_value of Value.t
  | O_int of int
  | O_array of int array
  | O_error of string

let pp_outcome = function
  | O_unit -> "()"
  | O_value v -> Value.to_string v
  | O_int n -> string_of_int n
  | O_array a ->
      "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]"
  | O_error m -> "error: " ^ m

(* Raw execution: usage and device errors propagate as exceptions, so a
   policy boundary above us can classify them. *)
let run_op_raw inst op : outcome =
  match op with
  | Get n -> O_value (Instance.get inst n)
  | Set (n, v) ->
      Instance.set inst n v;
      O_unit
  | Get_struct n ->
      Instance.get_struct inst n;
      O_unit
  | Set_struct (n, fs) ->
      Instance.set_struct inst n fs;
      O_unit
  | Read_block (n, count) -> O_array (Instance.read_block inst n ~count)
  | Write_block (n, data) ->
      Instance.write_block inst n data;
      O_unit
  | Read_wide (n, scale) -> O_int (Instance.read_wide inst n ~scale)
  | Write_wide (n, scale, v) ->
      Instance.write_wide inst n ~scale v;
      O_unit
  | Read_indexed (template, args) ->
      O_int (Instance.read_indexed inst ~template ~args)
  | Write_indexed (template, args, v) ->
      Instance.write_indexed inst ~template ~args v;
      O_unit
  | Invalidate ->
      Instance.invalidate_cache inst;
      O_unit

(* Caught execution, for the differential battery: both engines must
   produce the same outcome, errors included. *)
let run_op inst op : outcome =
  try run_op_raw inst op with
  | Instance.Device_error m -> O_error ("device: " ^ m)
  | Bus.Bus_fault m -> O_error ("bus: " ^ m)
  | Not_found -> O_error "Not_found"
  | Invalid_argument m -> O_error ("invalid: " ^ m)

(* {1 The per-device generation universe}

   Derived facts the generators and the obligations share. *)

let readable d v = List.mem Ir.Read (Sites.var_accesses d v)
let writable d v = List.mem Ir.Write (Sites.var_accesses d v)
let is_volatile (v : Ir.var) = v.Ir.v_behaviour.Ir.b_volatile
let is_block (v : Ir.var) = v.Ir.v_behaviour.Ir.b_block

let struct_fields d (s : Ir.strct) =
  List.filter_map (fun f -> Ir.find_var d f) s.Ir.s_fields

(* First legal argument vector of a template, when every parameter has
   at least one legal value. *)
let template_args (tp : Ir.template) =
  let legal = List.map (fun (_, vals) -> vals) tp.Ir.t_params in
  if List.exists (fun vals -> vals = []) legal then None
  else Some (List.map List.hd legal)

let first_write (v : Ir.var) =
  match Sites.canonical_writes v with w :: _ -> Some w | [] -> None

(* {1 Deterministic coverage obligations}

   One (label, ops) pair per thing the universe says a workload can
   exercise, ordered reads-first so idempotent caches are warm before
   sibling writes need them. Running them all and feeding the trace to
   a Coverage accumulator is the generated analogue of the hand-curated
   per-driver campaign workloads. *)

let obligations (d : Ir.device) : (string * op list) list =
  let pub = Ir.public_vars d in
  let structs = Ir.public_structs d in
  let reads =
    List.filter_map
      (fun (v : Ir.var) ->
        if not (readable d v) then None
        else if is_volatile v then
          (* A volatile variable must reach the bus on every read: the
             pair proves the re-read. *)
          Some ("get2:" ^ v.v_name, [ Get v.v_name; Get v.v_name ])
        else Some ("get:" ^ v.v_name, [ Get v.v_name ]))
      pub
  in
  let struct_reads =
    List.filter_map
      (fun (s : Ir.strct) ->
        if List.for_all (readable d) (struct_fields d s) then
          Some ("get_struct:" ^ s.s_name, [ Get_struct s.s_name ])
        else None)
      structs
  in
  let writes =
    List.filter_map
      (fun (v : Ir.var) ->
        if not (writable d v) then None
        else
          match first_write v with
          | None -> None
          | Some value ->
              let readback = if readable d v then [ Get v.v_name ] else [] in
              Some ("set:" ^ v.v_name, Set (v.v_name, value) :: readback))
      pub
  in
  let struct_writes =
    List.filter_map
      (fun (s : Ir.strct) ->
        let fields = struct_fields d s in
        if fields = [] || not (List.for_all (writable d) fields) then None
        else
          let assigns =
            List.filter_map
              (fun (v : Ir.var) ->
                Option.map (fun w -> (v.Ir.v_name, w)) (first_write v))
              fields
          in
          if List.length assigns <> List.length fields then None
          else Some ("set_struct:" ^ s.s_name, [ Set_struct (s.s_name, assigns) ]))
      structs
  in
  let blocks =
    List.concat_map
      (fun (v : Ir.var) ->
        if not (is_block v) then []
        else
          (if readable d v then
             [
               ("read_block:" ^ v.v_name, [ Read_block (v.v_name, 4) ]);
               ("read_wide:" ^ v.v_name, [ Read_wide (v.v_name, 2) ]);
             ]
           else [])
          @
          if writable d v then
            [
              ( "write_block:" ^ v.v_name,
                [ Write_block (v.v_name, [| 1; 2; 3; 4 |]) ] );
              ("write_wide:" ^ v.v_name, [ Write_wide (v.v_name, 2, 0x1234) ]);
            ]
          else [])
      pub
  in
  let indexed =
    List.concat_map
      (fun (tp : Ir.template) ->
        match template_args tp with
        | None -> []
        | Some args ->
            (if tp.t_read <> None then
               [ ("read_indexed:" ^ tp.t_name, [ Read_indexed (tp.t_name, args) ]) ]
             else [])
            @
            if tp.t_write <> None then
              [
                ( "write_indexed:" ^ tp.t_name,
                  [ Write_indexed (tp.t_name, args, 0) ] );
              ]
            else [])
      d.d_templates
  in
  reads @ struct_reads @ writes @ struct_writes @ blocks @ indexed
  @ [ ("invalidate", [ Invalidate ]) ]

(* {1 Site-aware random generation}

   Unlike the error-path differential suite (test_plan_diff), every
   generated operation is direction- and type-correct: writes draw from
   the writable-case corpus, reads only target readable variables, so a
   sequence exercises the protocol rather than the dynamic checks.
   Volatile variables generate paired reads; block variables generate
   gather/scatter shapes of varying counts and widths. *)

let gen_write_value (v : Ir.var) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  let corpus = Sites.canonical_writes v in
  let uniform =
    match v.Ir.v_type with
    | Dtype.Int { signed; bits } ->
        let bits = min bits 16 in
        let hi = (1 lsl bits) - 1 in
        if signed then
          Some (map (fun n -> Value.Int n) (int_range (-((hi + 1) / 2)) (hi / 2)))
        else Some (map (fun n -> Value.Int n) (int_range 0 hi))
    | _ -> None
  in
  match (corpus, uniform) with
  | [], Some u -> u
  | [], None -> return (Value.Int 0) (* unreachable for writable vars *)
  | corpus, Some u -> frequency [ (1, oneofl corpus); (2, u) ]
  | corpus, None -> oneofl corpus

(* A snippet is a short burst of related operations; sequences are
   concatenations of snippets. *)
let gen_snippets (d : Ir.device) : (int * op list QCheck.Gen.t) list =
  let open QCheck.Gen in
  let pub = Ir.public_vars d in
  let var_snippets =
    List.concat_map
      (fun (v : Ir.var) ->
        let n = v.Ir.v_name in
        (if readable d v then
           if is_volatile v then
             (* volatile-aware: re-reads must hit the device again *)
             [ (2, return [ Get n ]); (2, return [ Get n; Get n ]) ]
           else [ (3, return [ Get n ]) ]
         else [])
        @
        if writable d v then
          let set = map (fun w -> Set (n, w)) (gen_write_value v) in
          (3, map (fun s -> [ s ]) set)
          ::
          (if readable d v then
             (* write-then-read-back exercises cache refresh rules *)
             [ (1, map (fun s -> [ s; Get n ]) set) ]
           else [])
        else [])
      pub
  in
  let struct_snippets =
    List.concat_map
      (fun (s : Ir.strct) ->
        let fields = struct_fields d s in
        (if fields <> [] && List.for_all (readable d) fields then
           [ (2, return [ Get_struct s.Ir.s_name ]) ]
         else [])
        @
        if fields <> [] && List.for_all (writable d) fields then
          let gen_assigns =
            flatten_l
              (List.map
                 (fun (v : Ir.var) ->
                   map (fun w -> (v.Ir.v_name, w)) (gen_write_value v))
                 fields)
          in
          [ (2, map (fun fs -> [ Set_struct (s.Ir.s_name, fs) ]) gen_assigns) ]
        else [])
      (Ir.public_structs d)
  in
  let block_snippets =
    List.concat_map
      (fun (v : Ir.var) ->
        if not (is_block v) then []
        else
          let n = v.Ir.v_name in
          (if readable d v then
             [
               (1, map (fun c -> [ Read_block (n, c) ]) (int_range 1 6));
               (1, map (fun s -> [ Read_wide (n, s) ]) (oneofl [ 1; 2; 4 ]));
             ]
           else [])
          @
          if writable d v then
            [
              ( 1,
                map
                  (fun l -> [ Write_block (n, Array.of_list l) ])
                  (list_size (int_range 1 6) (int_range 0 0xffff)) );
              ( 1,
                map
                  (fun (s, value) -> [ Write_wide (n, s, value) ])
                  (pair (oneofl [ 1; 2; 4 ]) (int_range 0 0xffff)) );
            ]
          else [])
      pub
  in
  let indexed_snippets =
    List.concat_map
      (fun (tp : Ir.template) ->
        let gen_args =
          flatten_l (List.map (fun (_, legal) -> oneofl legal) tp.Ir.t_params)
        in
        match template_args tp with
        | None -> []
        | Some _ ->
            (if tp.t_read <> None then
               [ (1, map (fun args -> [ Read_indexed (tp.t_name, args) ]) gen_args) ]
             else [])
            @
            if tp.t_write <> None then
              [
                ( 1,
                  map
                    (fun (args, v) -> [ Write_indexed (tp.t_name, args, v) ])
                    (pair gen_args (int_range 0 0xff)) );
              ]
            else [])
      d.d_templates
  in
  var_snippets @ struct_snippets @ block_snippets @ indexed_snippets
  @ [ (1, return [ Invalidate ]) ]

let gen_ops ?(min_len = 1) ?(max_len = 30) (d : Ir.device) :
    op list QCheck.Gen.t =
  let open QCheck.Gen in
  let snippets = gen_snippets d in
  map List.concat (list_size (int_range min_len max_len) (frequency snippets))

(* A deterministic workload: the same (device, seed, length) always
   produces the same operation list — the fault battery explores fault
   schedules against it. *)
let workload (d : Ir.device) ~seed ~length : op list =
  let rand = Random.State.make [| 0x5eed; seed |] in
  let ops =
    QCheck.Gen.generate1 ~rand (gen_ops ~min_len:length ~max_len:length d)
  in
  (* Invalidate snippets add noise without traffic; keep them, but make
     sure the workload ends with reads so late faults stay visible. *)
  ops
  @ List.filter_map
      (fun (v : Ir.var) ->
        if readable d v && not (is_block v) then Some (Get v.Ir.v_name) else None)
      (Ir.public_vars d)
