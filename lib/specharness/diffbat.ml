(* The differential battery: generated valid operation sequences run on
   the compiled engine against the interpreter, with the protocol
   monitor as a third oracle. The engine plumbing is the same as
   test/test_plan_diff.ml — two identically seeded memory buses, each
   observed by its own trace — but the operation stream comes from the
   site-aware generators of Opgen instead of an error-path-heavy
   grammar. *)

module Ir = Devil_ir.Ir
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Trace = Devil_runtime.Trace
module Monitor = Devil_runtime.Monitor
module Coverage = Devil_runtime.Coverage

let label = "harness"

let bases_for (device : Ir.device) =
  let next = ref 16 in
  List.map
    (fun (p : Ir.port) ->
      let maxoff = List.fold_left max 0 p.p_offsets in
      let b = !next in
      next := !next + maxoff + 16;
      (p.p_name, b))
    device.Ir.d_ports

let seed_bus ~seed (raw : Bus.t) =
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  for addr = 0 to 2047 do
    raw.Bus.write ~width:32 ~addr ~value:(Random.State.int rng 0x10000)
  done

let build_engine ~interpret ~seed (device : Ir.device) bases =
  let raw = Bus.memory ~size:4096 () in
  seed_bus ~seed raw;
  let trace = Trace.create ~capacity:200_000 () in
  let bus = Bus.observed ~trace raw in
  let inst = Instance.create ~label ~trace ~interpret device ~bus ~bases in
  (inst, trace)

type divergence = {
  dv_detail : string;  (* what differed *)
  dv_op : int option;  (* operation index, when per-op *)
}

let explain_trace_divergence ta tb =
  let ea = Trace.events ta and eb = Trace.events tb in
  let rec first_diff i = function
    | [], [] -> "traces equal?"
    | a :: _, [] ->
        Format.asprintf "event %d only in compiled: %a" i Trace.pp_event a
    | [], b :: _ ->
        Format.asprintf "event %d only in interpreter: %a" i Trace.pp_event b
    | a :: ra, b :: rb ->
        if a = b then first_diff (i + 1) (ra, rb)
        else
          Format.asprintf
            "event %d differs:@.  compiled:    %a@.  interpreter: %a" i
            Trace.pp_event a Trace.pp_event b
  in
  first_diff 0 (ea, eb)

(* Run one generated sequence on both engines. Returns the first
   divergence, or None when compiled = interpreter = monitor-clean. *)
let run_diff ?coverage (device : Ir.device) ~seed (ops : Opgen.op list) :
    divergence option =
  let bases = bases_for device in
  let compiled, tc = build_engine ~interpret:false ~seed device bases in
  let interp, ti = build_engine ~interpret:true ~seed device bases in
  Option.iter (fun cov -> Coverage.attach cov tc) coverage;
  let exception Diverged of divergence in
  try
    List.iteri
      (fun i op ->
        let oc = Opgen.run_op compiled op in
        let oi = Opgen.run_op interp op in
        if oc <> oi then
          raise
            (Diverged
               {
                 dv_op = Some i;
                 dv_detail =
                   Printf.sprintf "op %d (%s): compiled %s, interpreter %s" i
                     (Opgen.pp_op op) (Opgen.pp_outcome oc)
                     (Opgen.pp_outcome oi);
               }))
      ops;
    let ec = Trace.events tc and ei = Trace.events ti in
    if ec <> ei then
      raise
        (Diverged
           {
             dv_op = None;
             dv_detail =
               "trace divergence: " ^ explain_trace_divergence tc ti;
           });
    let mon = Monitor.create ~devices:[ (label, device) ] in
    Monitor.feed_all mon ec;
    (match Monitor.violations mon with
    | [] -> ()
    | v :: _ ->
        raise
          (Diverged
             {
               dv_op = None;
               dv_detail =
                 Format.asprintf "monitor: %a (of %d violation(s))"
                   Monitor.pp_violation v
                   (Monitor.violation_count mon);
             }));
    List.iter
      (fun (r : Ir.reg) ->
        let c = Instance.cached_raw compiled r.r_name in
        let i = Instance.cached_raw interp r.r_name in
        if c <> i then
          raise
            (Diverged
               {
                 dv_op = None;
                 dv_detail =
                   Printf.sprintf "cached_raw %s: compiled %s, interpreter %s"
                     r.r_name
                     (match c with Some x -> string_of_int x | None -> "-")
                     (match i with Some x -> string_of_int x | None -> "-");
               }))
      device.Ir.d_regs;
    None
  with Diverged d -> Some d

let qcheck_test ?(count = 40) ~name (device : Ir.device) : QCheck.Test.t =
  let gen = QCheck.Gen.(pair (int_bound 0xffff) (Opgen.gen_ops device)) in
  let print (seed, ops) =
    Printf.sprintf "seed:%d\n%s" seed
      (String.concat "\n" (List.map Opgen.pp_op ops))
  in
  let shrink (seed, ops) =
    QCheck.Iter.map (fun ops -> (seed, ops)) (QCheck.Shrink.list ops)
  in
  let arb = QCheck.make ~print ~shrink gen in
  QCheck.Test.make
    ~name:(Printf.sprintf "generated battery: compiled = interpreter on %s" name)
    ~count arb
    (fun (seed, ops) ->
      match run_diff device ~seed ops with
      | None -> true
      | Some d -> QCheck.Test.fail_report d.dv_detail)

(* {1 Single-engine covered execution}

   The obligations and the random sequences also have to feed one
   Coverage accumulator; this runner drives the compiled engine alone
   (no oracle) with the coverage observer attached to its live
   trace. *)

let covered_run ?coverage (device : Ir.device) ~seed (ops : Opgen.op list) :
    Opgen.outcome list =
  let bases = bases_for device in
  let inst, trace = build_engine ~interpret:false ~seed device bases in
  Option.iter (fun cov -> Coverage.attach cov trace) coverage;
  List.map (Opgen.run_op inst) ops
