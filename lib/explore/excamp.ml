(* The exploration campaign: Devil_runtime.Explore instantiated over
   real driver workloads (DESIGN.md §12).

   This layer defines the concrete choice alphabet (fault injections
   at discovered bus sites, forced poll timeouts, denied retries),
   discovers each workload's injection sites from an unfaulted run,
   executes one workload run per schedule on a fresh Machine with a
   schedule-driven Fault injector and a Policy decider, judges every
   run with the Monitor oracle plus the recovery invariants, and turns
   violations into minimized, replayable counterexample tapes. *)

module Explore = Devil_runtime.Explore
module Fault = Devil_runtime.Fault
module Policy = Devil_runtime.Policy
module Trace = Devil_runtime.Trace
module Metrics = Devil_runtime.Metrics
module Bus = Devil_runtime.Bus
module Monitor = Devil_runtime.Monitor
module Trace_export = Devil_runtime.Trace_export
module Instance = Devil_runtime.Instance
module Machine = Drivers.Machine
module Campaign = Faultcamp.Campaign

(* {1 The choice alphabet} *)

type choice =
  | Inject of { addr : int; op : Fault.op; kind : Fault.kind; tag : string }
      (* fault the [slot]-th covered access of (op, addr) *)
  | Poll_timeout  (* force the [slot]-th poll to time out *)
  | Retry_deny  (* deny the [slot]-th retry (fails Degraded) *)

let op_letter = function Fault.Read -> 'r' | Fault.Write -> 'w'

let pp_choice fmt = function
  | Inject { addr; op; tag; _ } ->
      Format.fprintf fmt "%s:%c[%#x]" tag (op_letter op) addr
  | Poll_timeout -> Format.pp_print_string fmt "poll-timeout"
  | Retry_deny -> Format.pp_print_string fmt "retry-deny"

let choice_to_string c = Format.asprintf "%a" pp_choice c

(* The kind tag names the decision in traces and schedule printouts;
   probabilities inside scheduled kinds are ignored by the injector. *)
let kind_tag = function
  | Fault.Transient _ -> "transient"
  | Fault.Flip_bits _ -> "flip"
  | Fault.Stuck_bits _ -> "stuck"
  | Fault.Drop_write _ -> "drop"
  | Fault.Duplicate_write _ -> "dup"

(* Value-corruption kinds can defeat any checksum-free driver, so
   silent data corruption under them is the fault campaign's business
   (its Silent column), not an exploration violation. The invariants
   below demand detection only for adverse decisions — transient
   faults and forced policy outcomes, which drivers are contractually
   able to observe. *)
let kind_adverse = function
  | Fault.Transient _ -> true
  | Fault.Flip_bits _ | Fault.Stuck_bits _ | Fault.Drop_write _
  | Fault.Duplicate_write _ ->
      false

(* {1 Workloads} *)

type workload = {
  w_name : string;
  w_range : int * int;  (* injection window: the device's registers *)
  w_devices : (string * Devil_ir.Ir.device) list;  (* monitor oracle *)
  w_run : Machine.t -> Campaign.verdict;
}

let spec_of = function
  | "ide" -> Devil_specs.Specs.ide ()
  | "piix4" -> Devil_specs.Specs.piix4_ide ()
  | "uart" -> Devil_specs.Specs.uart16550 ()
  | "ne2000" -> Devil_specs.Specs.ne2000 ()
  | "gfx" -> Devil_specs.Specs.permedia2 ()
  | d -> invalid_arg ("Excamp.spec_of: unknown device " ^ d)

let monitor_devices = function
  | "ide-read" | "ide-write" -> [ "ide"; "piix4" ]
  | "serial" -> [ "uart" ]
  | "net" -> [ "ne2000" ]
  | "gfx" -> [ "gfx" ]
  | _ -> []

let builtin name =
  match List.find_opt (fun (n, _, _) -> n = name) Campaign.workloads with
  | None ->
      invalid_arg
        ("Excamp.builtin: unknown workload " ^ name ^ " (have: "
        ^ String.concat ", " (List.map (fun (n, _, _) -> n) Campaign.workloads)
        ^ ")")
  | Some (_, range, run) ->
      {
        w_name = name;
        w_range = range;
        w_devices =
          List.map (fun d -> (d, spec_of d)) (monitor_devices name);
        w_run = run;
      }

(* The seeded regression: a serial transmit loop whose author wrapped
   each write in a blanket exception swallow — the deliberately
   weakened policy of ISSUE 6's acceptance criteria. A transient fault
   on the THR write silently loses a byte; the back-door wire check
   sees it, the driver never does. *)
let seeded_bug_message = "DEVIL-EXPLORE"

let seeded_bug =
  {
    w_name = "uart-swallow";
    w_range = (Machine.uart_base, Machine.uart_base + 7);
    w_devices = [ ("uart", spec_of "uart") ];
    w_run =
      (fun m ->
        String.iter
          (fun ch ->
            (* the bug: a classified fault on the data write is
               swallowed instead of retried or surfaced *)
            try Instance.write_block m.uart_dev "tx_data" [| Char.code ch |]
            with Policy.Driver_error _ | Fault.Bus_fault _ -> ())
          seeded_bug_message;
        let got = Hwsim.Uart16550.take_transmitted m.uart in
        if got = seeded_bug_message then Campaign.Verified
        else
          Campaign.Corrupt
            (Printf.sprintf "wire carried %d of %d bytes" (String.length got)
               (String.length seeded_bug_message)));
  }

(* {1 Bounds} *)

type bound = {
  b_depth : int;  (* covered-access ordinals 0 .. depth-1 per site *)
  b_budget : int;  (* maximum simultaneous decisions *)
  b_sites : int;  (* busiest (op, addr) sites kept per workload *)
  b_kinds : Fault.kind list;
  b_policy_axes : bool;  (* include Poll_timeout / Retry_deny *)
}

let default_bound =
  {
    b_depth = 6;
    b_budget = 2;
    b_sites = 3;
    b_kinds = [ Fault.Transient { probability = 1.0 } ];
    b_policy_axes = true;
  }

let pp_bound fmt b =
  Format.fprintf fmt "depth %d, budget %d, %d sites x {%s}%s" b.b_depth
    b.b_budget b.b_sites
    (String.concat ", " (List.map kind_tag b.b_kinds))
    (if b.b_policy_axes then " + policy axes" else "")

(* {1 Site discovery}

   One unfaulted run under a counting bus wrapper yields the
   (direction, address) traffic histogram; the busiest addresses
   inside the workload's register window become the injection sites.
   Deterministic: ties break on address then direction. *)

let discover_sites w ~max_sites =
  let counts : (Fault.op * int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump op addr n =
    let k = (op, addr) in
    Hashtbl.replace counts k (n + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let counting (bus : Bus.t) =
    {
      Bus.read =
        (fun ~width ~addr ->
          bump Fault.Read addr 1;
          bus.Bus.read ~width ~addr);
      write =
        (fun ~width ~addr ~value ->
          bump Fault.Write addr 1;
          bus.Bus.write ~width ~addr ~value);
      read_block =
        (fun ~width ~addr ~into ->
          bump Fault.Read addr (Array.length into);
          bus.Bus.read_block ~width ~addr ~into);
      write_block =
        (fun ~width ~addr ~from ->
          bump Fault.Write addr (Array.length from);
          bus.Bus.write_block ~width ~addr ~from);
    }
  in
  let m = Machine.create ~wrap_bus:counting () in
  let verdict = Campaign.run_workload m w.w_run in
  let first, last = w.w_range in
  let sites =
    Hashtbl.fold
      (fun (op, addr) n acc ->
        if addr >= first && addr <= last then (op, addr, n) :: acc else acc)
      counts []
  in
  let sites =
    List.sort
      (fun (o1, a1, n1) (o2, a2, n2) ->
        match compare n2 n1 with
        | 0 -> ( match compare a1 a2 with 0 -> compare o1 o2 | c -> c)
        | c -> c)
      sites
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  (verdict, take max_sites sites)

let choices_of_sites ~bound sites =
  let injects =
    List.concat_map
      (fun (op, addr, _) ->
        List.filter_map
          (fun kind ->
            let applicable =
              match kind with
              | Fault.Drop_write _ | Fault.Duplicate_write _ ->
                  op = Fault.Write
              | _ -> true
            in
            if applicable then
              Some (Inject { addr; op; kind; tag = kind_tag kind })
            else None)
          bound.b_kinds)
      sites
  in
  if bound.b_policy_axes then injects @ [ Poll_timeout; Retry_deny ]
  else injects

(* {1 The per-schedule runner} *)

let probe_label op addr = Printf.sprintf "probe:%c%#x" (op_letter op) addr

let inject_label op addr kind =
  Printf.sprintf "%s:%c%#x" (kind_tag kind) (op_letter op) addr

(* Everything one run produces; the Explore outcome is a projection. *)
type exec = {
  e_ok : bool;
  e_detail : string;
  e_fired : int;
  e_adverse_fired : int;
  e_state : int;
  e_horizon : choice -> int;
  e_monitor : Monitor.violation list;
  e_events : Trace.event list;
  e_tape : Bus.tape option;
  e_health : Devil_runtime.Health.report;
}

let state_fingerprint ~verdict ~trace ~monitor_violations =
  let h = ref (Hashtbl.hash verdict) in
  let mix x = h := ((!h * 131) + Hashtbl.hash_param 64 256 x) land max_int in
  List.iter (fun (e : Trace.event) -> mix e.kind) (Trace.events trace);
  mix (Trace.recorded trace);
  mix monitor_violations;
  !h

(* Run [w] once under [sched]. The bus stack, innermost first:
   raw io-space -> scheduled Fault injector -> recording (when asked)
   -> Bus.observed (trace/metrics), so the trace and tape both carry
   the post-fault values the driver saw. Policy decisions are forced
   by ordinal through the module-level decider. *)
let run_schedule ?(record = false) ?monitor w choices
    (sched : choice Explore.schedule) =
  let injections =
    List.filter_map
      (fun (d : choice Explore.decision) ->
        match d.choice with
        | Inject { addr; op; kind; _ } ->
            Some
              (Fault.injection ~label:(inject_label op addr kind) ~op
                 ~at:d.slot ~first:addr ~last:addr kind)
        | Poll_timeout | Retry_deny -> None)
      sched
  in
  (* Horizon probes: one never-firing injection per distinct site in
     the alphabet, so every run reports each site's traffic count. *)
  let probes =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Inject { addr; op; _ } -> Some (op, addr)
           | Poll_timeout | Retry_deny -> None)
         choices)
    |> List.map (fun (op, addr) ->
           Fault.injection ~label:(probe_label op addr) ~op ~at:max_int
             ~first:addr ~last:addr
             (Fault.Transient { probability = 0.0 }))
  in
  let armed kind =
    List.filter_map
      (fun (d : choice Explore.decision) ->
        if d.choice = kind then Some d.slot else None)
      sched
  in
  let armed_polls = armed Poll_timeout
  and armed_retries = armed Retry_deny in
  let forced_polls = ref 0
  and denied_retries = ref 0 in
  let trace = Trace.create ~capacity:512 () in
  let metrics = Metrics.create () in
  (match monitor with
  | Some mon ->
      Monitor.clear mon;
      Monitor.attach mon trace
  | None -> ());
  let injector = ref None in
  let tape = ref None in
  let wrap_bus raw =
    let inj =
      Fault.scheduled ~sink:trace ~metrics ~injections:(probes @ injections)
        raw
    in
    injector := Some inj;
    let b = Fault.bus inj in
    if record then begin
      let t, b = Bus.recording b in
      tape := Some t;
      b
    end
    else b
  in
  Policy.set_decider (fun d ->
      match d with
      | Policy.Poll_decision { ordinal; _ } ->
          if List.mem ordinal armed_polls then begin
            incr forced_polls;
            true
          end
          else false
      | Policy.Retry_decision { ordinal; _ } ->
          if List.mem ordinal armed_retries then begin
            incr denied_retries;
            true
          end
          else false);
  let finish () =
    let polls = Policy.poll_points () and retries = Policy.retry_points () in
    Policy.clear_decider ();
    Policy.unobserve ();
    (polls, retries)
  in
  let machine = Machine.create ~trace ~metrics ~wrap_bus ~lifecycle:true () in
  let result =
    try `Verdict (w.w_run machine)
    with
    | Policy.Driver_error e -> `Verdict (Campaign.Reported (Policy.error_to_string e))
    | Bus.Replay_divergence msg ->
        `Verdict (Campaign.Reported ("replay divergence: " ^ msg))
    | Instance.Device_error msg ->
        `Verdict (Campaign.Reported ("device error: " ^ msg))
    | Failure msg -> `Verdict (Campaign.Reported msg)
    | Fault.Bus_fault msg ->
        (* [Bus_fault] deliberately not funneled into [Reported]: an
           injected fault no policy classified is itself a violation. *)
        `Escape msg
  in
  let polls, retries = finish () in
  (match monitor with Some mon -> Monitor.finalize mon | None -> ());
  let inj = Option.get !injector in
  let inj_fired = Fault.scheduled_hits inj in
  let fired = inj_fired + !forced_polls + !denied_retries in
  let adverse_fired =
    !forced_polls + !denied_retries
    + List.length
        (List.filter
           (fun (d : choice Explore.decision) ->
             match d.choice with
             | Inject { addr; op; kind; _ } ->
                 kind_adverse kind
                 && Fault.injections_for inj (inject_label op addr kind) > 0
             | Poll_timeout | Retry_deny -> false)
           sched)
  in
  let monitor_violations =
    match monitor with Some mon -> Monitor.violations mon | None -> []
  in
  let verdict_text =
    match result with
    | `Escape msg -> "escape: " ^ msg
    | `Verdict Campaign.Verified -> "verified"
    | `Verdict (Campaign.Corrupt d) -> "corrupt: " ^ d
    | `Verdict (Campaign.Reported d) -> "detected: " ^ d
  in
  let ok, detail =
    match result with
    | `Escape msg ->
        (false, "unclassified Bus_fault escaped the driver: " ^ msg)
    | `Verdict v -> (
        match monitor_violations with
        | mv :: _ ->
            ( false,
              Format.asprintf "%d monitor violation(s), first: %a"
                (List.length monitor_violations) Monitor.pp_violation mv )
        | [] -> (
            match v with
            | Campaign.Verified -> (true, "verified")
            | Campaign.Reported d -> (true, "detected: " ^ d)
            | Campaign.Corrupt d ->
                if fired = 0 then
                  (false, "corrupt on the unfaulted schedule: " ^ d)
                else if adverse_fired > 0 then
                  (false, "silent corruption under an adverse schedule: " ^ d)
                else
                  (* value-fault corruption: the campaign's Silent
                     column, not an exploration violation *)
                  (true, "corrupt under value faults only: " ^ d)))
  in
  let horizon = function
    | Inject { addr; op; _ } -> Fault.seen_for inj (probe_label op addr)
    | Poll_timeout -> polls
    | Retry_deny -> retries
  in
  {
    e_ok = ok;
    e_detail = detail;
    e_fired = fired;
    e_adverse_fired = adverse_fired;
    e_state = state_fingerprint ~verdict:verdict_text ~trace
        ~monitor_violations:(List.length monitor_violations);
    e_horizon = horizon;
    e_monitor = monitor_violations;
    e_events = Trace.events trace;
    e_tape = !tape;
    e_health = Machine.health machine;
  }

let outcome_of_exec (e : exec) : choice Explore.outcome =
  {
    Explore.oc_ok = e.e_ok;
    oc_detail = e.e_detail;
    oc_fired = e.e_fired;
    oc_state = e.e_state;
    oc_horizon = e.e_horizon;
  }

(* {1 Campaign driver} *)

type counterexample = {
  cx_workload : string;
  cx_detail : string;
  cx_found : choice Explore.schedule;  (* as discovered *)
  cx_schedule : choice Explore.schedule;  (* minimized *)
  cx_shrink_runs : int;
  cx_tape : Bus.tape;  (* tape of the minimized schedule *)
  cx_events : Trace.event list;
  cx_health : Devil_runtime.Health.report;  (* of the minimized run *)
}

type result = {
  r_workload : string;
  r_bound : bound;
  r_sites : (Fault.op * int * int) list;  (* op, addr, unfaulted traffic *)
  r_choices : choice list;
  r_base_verdict : Campaign.verdict;
  r_report : choice Explore.report;
  r_counterexamples : counterexample list;
}

let explore_workload ?(bound = default_bound) ?(max_violations = 4) ?on_run w =
  Campaign.with_campaign_policy (fun () ->
      let base_verdict, sites = discover_sites w ~max_sites:bound.b_sites in
      let choices = choices_of_sites ~bound sites in
      let monitor = Monitor.create ~devices:w.w_devices in
      let run sched =
        outcome_of_exec (run_schedule ~monitor w choices sched)
      in
      let report =
        if choices = [] then
          (* nothing to explore: run the base schedule alone *)
          Explore.explore ~depth:1 ~budget:0 ~choices:[ Poll_timeout ] ~run
            ?on_run ()
        else
          Explore.explore ~depth:bound.b_depth ~budget:bound.b_budget ~choices
            ~run ~max_violations ?on_run ()
      in
      let counterexamples =
        List.map
          (fun (v : choice Explore.violation) ->
            let shrunk, attempts = Explore.shrink ~run v.vx_schedule in
            let final = run_schedule ~record:true ~monitor w choices shrunk in
            {
              cx_workload = w.w_name;
              cx_detail = final.e_detail;
              cx_found = v.vx_schedule;
              cx_schedule = shrunk;
              cx_shrink_runs = attempts;
              cx_tape = Option.get final.e_tape;
              cx_events = final.e_events;
              cx_health = final.e_health;
            })
          report.Explore.rp_violations
      in
      {
        r_workload = w.w_name;
        r_bound = bound;
        r_sites = sites;
        r_choices = choices;
        r_base_verdict = base_verdict;
        r_report = report;
        r_counterexamples = counterexamples;
      })

(* {1 Counterexample replay}

   A counterexample must reproduce without simulated hardware and
   without an injector: the tape carries every response including the
   faults. Only the policy decisions must be re-armed (a forced
   timeout changes the driver's subsequent traffic, which the tape
   then expects). The replay re-records the replayed bus, so byte
   equality of the two tapes is the reproduction criterion. *)

type replay = {
  rr_verdict : string;  (* driver-visible outcome under replay *)
  rr_tape_identical : bool;  (* re-recorded tape = original, byte for byte *)
  rr_divergence : string option;
}

let replay_counterexample w (cx : counterexample) =
  Campaign.with_campaign_policy (fun () ->
      let armed kind =
        List.filter_map
          (fun (d : choice Explore.decision) ->
            if d.choice = kind then Some d.slot else None)
          cx.cx_schedule
      in
      let armed_polls = armed Poll_timeout
      and armed_retries = armed Retry_deny in
      Policy.set_decider (fun d ->
          match d with
          | Policy.Poll_decision { ordinal; _ } -> List.mem ordinal armed_polls
          | Policy.Retry_decision { ordinal; _ } ->
              List.mem ordinal armed_retries);
      let tape2 = ref None in
      let wrap_bus _raw =
        let t, b = Bus.recording (Bus.replaying cx.cx_tape) in
        tape2 := Some t;
        b
      in
      let divergence = ref None in
      let verdict =
        try
          match w.w_run (Machine.create ~wrap_bus ()) with
          | Campaign.Verified -> "verified"
          | Campaign.Corrupt d -> "corrupt: " ^ d
          | Campaign.Reported d -> "detected: " ^ d
        with
        | Policy.Driver_error e -> "detected: " ^ Policy.error_to_string e
        | Fault.Bus_fault msg -> "escape: " ^ msg
        | Bus.Replay_divergence msg ->
            divergence := Some msg;
            "replay divergence"
        | Instance.Device_error msg -> "detected: device error: " ^ msg
        | Failure msg -> "detected: " ^ msg
      in
      Policy.clear_decider ();
      let identical =
        match !tape2 with
        | None -> false
        | Some t2 ->
            Trace_export.tape_to_jsonl t2
            = Trace_export.tape_to_jsonl cx.cx_tape
      in
      {
        rr_verdict = verdict;
        rr_tape_identical = identical && !divergence = None;
        rr_divergence = !divergence;
      })

(* Re-run a schedule live (simulator + scheduled injector) from a tape
   fixture's point of view: given a workload and a schedule, produce
   the tape it records. Used by tests to regenerate fixtures. *)
let record_schedule ?(bound = default_bound) w sched =
  Campaign.with_campaign_policy (fun () ->
      let _, sites = discover_sites w ~max_sites:bound.b_sites in
      let choices = choices_of_sites ~bound sites in
      run_schedule ~record:true w choices sched)

(* {1 Reporting} *)

let pp_site fmt (op, addr, n) =
  Format.fprintf fmt "%c[%#x] x%d" (op_letter op) addr n

let pp_result fmt r =
  let rep = r.r_report in
  Format.fprintf fmt
    "@[<v>explore %s: %a@,sites: %a@,runs %d (%d infeasible, %d deduped, %d \
     pruned), %d distinct states@,violations: %d@]"
    r.r_workload pp_bound r.r_bound
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_site)
    r.r_sites rep.Explore.rp_runs rep.Explore.rp_infeasible
    rep.Explore.rp_deduped rep.Explore.rp_pruned rep.Explore.rp_distinct
    (List.length rep.Explore.rp_violations)

let pp_counterexample fmt cx =
  Format.fprintf fmt
    "@[<v>counterexample (%s): %s@,found as: %a@,minimized to: %a (%d shrink \
     runs)@,tape: %d transfers@,health: %s@]"
    cx.cx_workload cx.cx_detail (Explore.pp_schedule pp_choice) cx.cx_found
    (Explore.pp_schedule pp_choice) cx.cx_schedule cx.cx_shrink_runs
    (Bus.tape_length cx.cx_tape)
    (Devil_runtime.Health.summary cx.cx_health)
