(** The exploration campaign: {!Devil_runtime.Explore} instantiated
    over real driver workloads (DESIGN.md §12).

    This layer turns the abstract engine into a verification harness:

    - the {b choice alphabet} crosses fault kinds with injection
      {e sites} (the busiest (direction, address) pairs inside the
      device's register window, discovered from one unfaulted run)
      and, optionally, the two policy axes (forced poll timeouts,
      denied retries);
    - a {b slot} means: for an injection, the 0-based ordinal of the
      covered access at that site; for a policy axis, the 0-based
      poll/retry branch-point ordinal of the run;
    - each schedule runs the workload on a fresh {!Drivers.Machine}
      whose bus is wrapped by a schedule-driven {!Devil_runtime.Fault}
      injector, judged by the {!Devil_runtime.Monitor} oracle plus the
      recovery invariants: a run must end {e Verified}, {e detected}
      (a classified failure) or — under value-corruption kinds only —
      campaign-visible corruption; silent corruption under an adverse
      decision (transient fault, forced policy outcome), corruption on
      the unfaulted schedule, a monitor violation, or an unclassified
      escaped [Bus_fault] is a violation;
    - every violation is shrunk ({!Devil_runtime.Explore.shrink}) and
      re-recorded as a {!Devil_runtime.Bus} tape, replayable without
      hardware or injector ({!replay_counterexample}). *)

module Explore = Devil_runtime.Explore

type choice =
  | Inject of {
      addr : int;
      op : Devil_runtime.Fault.op;
      kind : Devil_runtime.Fault.kind;
      tag : string;
    }
  | Poll_timeout
  | Retry_deny

val pp_choice : Format.formatter -> choice -> unit
val choice_to_string : choice -> string

type workload = {
  w_name : string;
  w_range : int * int;  (** Injection window (device registers). *)
  w_devices : (string * Devil_ir.Ir.device) list;
      (** Instance labels and compiled specs for the monitor oracle. *)
  w_run : Drivers.Machine.t -> Faultcamp.Campaign.verdict;
}

val builtin : string -> workload
(** A campaign workload by name ([ide-read], [ide-write], [serial],
    [net], [gfx]) with its monitor devices. *)

val seeded_bug : workload
(** The seeded regression of ISSUE 6's acceptance criteria: a serial
    transmit loop that swallows classified faults instead of retrying
    or surfacing them, so a transient fault on the THR write silently
    loses a byte. Exploration must find it, shrink it to one decision,
    and reproduce it from its tape. *)

val seeded_bug_message : string
(** The bytes {!seeded_bug} transmits. *)

type bound = {
  b_depth : int;  (** Slots 0 .. depth-1 per choice. *)
  b_budget : int;  (** Maximum simultaneous decisions per schedule. *)
  b_sites : int;  (** Busiest sites kept per workload. *)
  b_kinds : Devil_runtime.Fault.kind list;
      (** Fault kinds crossed with the sites (probability fields are
          ignored in scheduled mode). *)
  b_policy_axes : bool;  (** Include [Poll_timeout] / [Retry_deny]. *)
}

val default_bound : bound
(** depth 6, budget 2, 3 sites, transient faults, policy axes on. *)

val pp_bound : Format.formatter -> bound -> unit

type exec = {
  e_ok : bool;
  e_detail : string;
  e_fired : int;
  e_adverse_fired : int;
  e_state : int;
  e_horizon : choice -> int;
  e_monitor : Devil_runtime.Monitor.violation list;
  e_events : Devil_runtime.Trace.event list;
  e_tape : Devil_runtime.Bus.tape option;
  e_health : Devil_runtime.Health.report;
      (** The watchdog verdict over the run's lifecycle/metrics state
          (see {!Devil_runtime.Health.evaluate}) — surfaced so the
          campaign reports health regressions, not just oracle
          violations. *)
}
(** Everything one schedule run produces; the engine outcome is a
    projection ({!outcome_of_exec}). *)

val run_schedule :
  ?record:bool ->
  ?monitor:Devil_runtime.Monitor.t ->
  workload ->
  choice list ->
  choice Explore.schedule ->
  exec
(** One workload execution under one schedule. [choices] supplies the
    horizon probes (every site in the alphabet is counted even when
    not scheduled). With [record] the bus is taped between the
    injector and the observability wrapper. The caller's [monitor] is
    cleared, attached to the run's trace and finalized. Installs and
    removes the global {!Devil_runtime.Policy} decider. *)

val outcome_of_exec : exec -> choice Explore.outcome

type counterexample = {
  cx_workload : string;
  cx_detail : string;
  cx_found : choice Explore.schedule;  (** As discovered. *)
  cx_schedule : choice Explore.schedule;  (** Minimized. *)
  cx_shrink_runs : int;
  cx_tape : Devil_runtime.Bus.tape;  (** Tape of the minimized run. *)
  cx_events : Devil_runtime.Trace.event list;
  cx_health : Devil_runtime.Health.report;
      (** Watchdog verdict of the minimized run — how the violation
          left the async path (stalled, degraded, …). *)
}

type result = {
  r_workload : string;
  r_bound : bound;
  r_sites : (Devil_runtime.Fault.op * int * int) list;
      (** (direction, address, unfaulted traffic count). *)
  r_choices : choice list;
  r_base_verdict : Faultcamp.Campaign.verdict;
  r_report : choice Explore.report;
  r_counterexamples : counterexample list;
}

val explore_workload :
  ?bound:bound ->
  ?max_violations:int ->
  ?on_run:(choice Explore.schedule -> choice Explore.outcome -> unit) ->
  workload ->
  result
(** The campaign: discover sites, build the alphabet, exhaustively
    explore within [bound] (under the campaign's shortened poll
    deadline), shrink and re-record every violation (up to
    [max_violations], default 4). Deterministic end to end. *)

type replay = {
  rr_verdict : string;  (** Driver-visible outcome under replay. *)
  rr_tape_identical : bool;
      (** The re-recorded replay tape equals the counterexample tape
          byte for byte — the reproduction criterion. *)
  rr_divergence : string option;
}

val replay_counterexample : workload -> counterexample -> replay
(** Re-runs the workload against {!Devil_runtime.Bus.replaying} on the
    counterexample's tape — no simulated hardware, no injector; only
    the schedule's policy decisions are re-armed — re-recording the
    replayed bus to check byte-identical reproduction. *)

val record_schedule :
  ?bound:bound -> workload -> choice Explore.schedule -> exec
(** Run one schedule live with recording on — how tape fixtures are
    (re)generated. *)

val pp_result : Format.formatter -> result -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit
