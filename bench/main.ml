(* The reproduction harness: regenerates every table of the paper's
   evaluation (section 4) from the simulated machine, plus the section
   4.3 micro-analysis and the introduction's bit-operation census, and
   runs a bechamel micro-benchmark suite over the same workloads.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # one artifact
     (table1 | table2 | table3 | table4 | census | micro | ablation |
      faultcamp | obs | obs-json | bechamel | benchjson)
     dune exec bench/main.exe -- profile [--json] [--iters N] [--out DIR] \
       [workload ...]                      # span-profiler attribution
     dune exec bench/main.exe -- explore [--driver D]... [--depth N] \
       [--budget N] [--sites N] [--no-policy] [--out DIR]
                                          # bounded exhaustive exploration
     dune exec bench/main.exe -- explore --seeded-bug [--pin | --fixture F]
                                          # the seeded-regression pipeline
     dune exec bench/main.exe -- async [--out FILE]
                                          # queued/interrupt-driven vs polling
     dune exec bench/main.exe -- latency [--out FILE] [--trace-dir DIR]
                                          # per-stage request-latency accounting

   Paper-vs-measured commentary lives in EXPERIMENTS.md. *)

module Machine = Drivers.Machine
module Analysis = Mutation.Analysis
module Ide_bench = Perfmodel.Ide_bench
module Permedia_bench = Perfmodel.Permedia_bench

let section title =
  Format.printf "@.=== %s ===@.@." title

(* {1 Table 1: mutation analysis} *)

let table1 () =
  section "Table 1: Language error-detection coverage (mutation analysis)";
  let reports = Analysis.table1 () in
  Format.printf "%a@." Analysis.pp_table1 reports;
  Format.printf
    "paper's shape: Devil mutants nearly always detected; undetected errors \
     3.2-5.9x more@.likely in C than in CDevil and 1.6-5.2x more likely than \
     in Devil+CDevil.@.";
  Format.printf
    "@.Extension row (beyond the paper): the 16550 UART specification and \
     its re-created C driver.@.";
  Format.printf "%a@." Analysis.pp_table1 [ Analysis.uart_report () ]

(* {1 Table 2: IDE driver throughput} *)

let table2 () =
  section "Table 2: IDE driver comparative performance";
  Format.printf "Devil driver using per-word C loops (the paper's rows):@.";
  Format.printf "%a@." Ide_bench.pp_table (Ide_bench.table2 ());
  Format.printf
    "Devil driver using block-transfer (rep) stubs — \"we did not observe an \
     impact\":@.";
  Format.printf "%a@." Ide_bench.pp_table (Ide_bench.block_stub_lines ())

(* {1 Tables 3 and 4: Permedia2 X server} *)

let table3 () =
  section "Table 3: Permedia2 Xfree86 driver, rectangle fill";
  Format.printf "%a@." Permedia_bench.pp_table
    (Permedia_bench.table Permedia_bench.Fill)

let table4 () =
  section "Table 4: Permedia2 Xfree86 driver, screen copy";
  Format.printf "%a@." Permedia_bench.pp_table
    (Permedia_bench.table Permedia_bench.Copy)

(* {1 The introduction's claim: bit operations in driver code} *)

let census () =
  section "Census: bit operations in hardware operating code (paper section 1)";
  let bit_ops = [ "&"; "|"; "^"; "~"; "<<"; ">>"; "&="; "|="; "^="; "<<="; ">>=" ] in
  let corpus =
    [
      ("busmouse", Mutation.Corpus.busmouse_c);
      ("ide", Mutation.Corpus.ide_c);
      ("ne2000", Mutation.Corpus.ne2000_c);
      ("uart", Mutation.Corpus.uart_c);
    ]
  in
  Format.printf "%-10s %14s %14s %8s@." "driver" "bit-op tokens" "code lines"
    "lines w/ bit ops";
  List.iter
    (fun (name, src) ->
      match Mutation.C_lang.tokenize src with
      | Error _ -> ()
      | Ok toks ->
          let ops =
            List.filter
              (fun (t : Mutation.C_lang.loc_token) ->
                match t.tok with
                | Mutation.C_lang.OP o -> List.mem o bit_ops
                | _ -> false)
              toks
          in
          let op_lines =
            List.sort_uniq compare
              (List.map (fun (t : Mutation.C_lang.loc_token) -> t.line) ops)
          in
          let lines =
            List.length
              (List.filter
                 (fun l -> String.trim l <> "")
                 (String.split_on_char '\n' src))
          in
          Format.printf "%-10s %14d %14d %7.0f%%@." name (List.length ops)
            lines
            (100.0 *. float_of_int (List.length op_lines) /. float_of_int lines))
    corpus;
  Format.printf
    "@.paper: \"bit operations can represent up to 30%% of driver code\"@."

(* {1 Section 4.3 micro-analysis: stub cost vs hand-crafted access} *)

let micro () =
  section "Micro-analysis: generated stub vs hand-crafted access (section 4.3)";
  let m = Machine.create () in
  let devil = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  let hand = Drivers.Mouse.Handcrafted.create m.bus ~base:Machine.mouse_base in
  let ops f =
    Machine.reset_io_stats m;
    f ();
    Machine.io_ops m
  in
  let devil_ops = ops (fun () -> ignore (Drivers.Mouse.Devil_driver.read_state devil)) in
  let hand_ops = ops (fun () -> ignore (Drivers.Mouse.Handcrafted.read_state hand)) in
  Format.printf "mouse_state read: devil = %d I/O ops, hand-crafted = %d I/O ops@."
    devil_ops hand_ops;
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let h =
    Drivers.Ide.Handcrafted.create m.bus ~cmd_base:Machine.ide_base
      ~ctrl_base:Machine.ide_ctrl_base ~bm_base:Machine.piix4_base
      ~prd_base:Machine.piix4_prd_base
  in
  let devil_setup =
    ops (fun () ->
        ignore
          (Drivers.Ide.Devil_driver.read_sectors d ~lba:0 ~count:1 ~mult:1
             ~path:`Block ~width:`W16))
  in
  let hand_setup =
    ops (fun () ->
        ignore
          (Drivers.Ide.Handcrafted.read_sectors h ~lba:0 ~count:1 ~mult:1
             ~path:`Block ~width:`W16))
  in
  Format.printf
    "one-sector PIO read: devil = %d ops, hand-crafted = %d ops (paper: +3 \
     setup, +2 per interrupt)@."
    devil_setup hand_setup

(* {1 Ablations: the design choices behind the generated interface} *)

let ablation () =
  section "Ablations: what each interface mechanism buys (I/O operations)";

  (* (a) Structure grouping. Reading the busmouse state through the
     mouse_state structure touches each register once; an interface
     without structures reads each variable independently, re-reading
     shared registers. *)
  let grouped =
    let m = Machine.create () in
    Machine.reset_io_stats m;
    Devil_runtime.Instance.get_struct m.mouse_dev "mouse_state";
    ignore (Devil_runtime.Instance.get m.mouse_dev "dx");
    ignore (Devil_runtime.Instance.get m.mouse_dev "dy");
    ignore (Devil_runtime.Instance.get m.mouse_dev "buttons");
    Machine.io_ops m
  in
  let ungrouped_src =
    (* The same device with the structure dissolved into standalone
       volatile variables. *)
    {|
device busmouse_ungrouped (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];
  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
|}
  in
  let ungrouped =
    match Devil_check.Check.compile ungrouped_src with
    | Error _ -> -1
    | Ok device ->
        let space = Hwsim.Io_space.create () in
        let mouse = Hwsim.Busmouse.create () in
        Hwsim.Io_space.attach space ~base:0x23c ~size:4
          (Hwsim.Busmouse.model mouse);
        let inst =
          Devil_runtime.Instance.create device ~bus:(Hwsim.Io_space.bus space)
            ~bases:[ ("base", 0x23c) ]
        in
        ignore (Devil_runtime.Instance.get inst "dx");
        Hwsim.Io_space.reset_stats space;
        ignore (Devil_runtime.Instance.get inst "dx");
        ignore (Devil_runtime.Instance.get inst "dy");
        ignore (Devil_runtime.Instance.get inst "buttons");
        Hwsim.Io_space.io_ops space
  in
  Format.printf
    "structure grouping: mouse state via structure = %d ops, via standalone \
     volatile variables = %d ops@."
    grouped ungrouped;

  (* (b) Register caching. Writing the six NE2000 receive-configuration
     bits one variable at a time costs one I/O write each thanks to the
     cache; without a cache every write would need the full register
     rebuilt from device state (here: re-reads are impossible, the
     register is write-only — the cacheless interface simply could not
     exist, which is the point; we emulate it by invalidating between
     writes and counting the failures as full rewrites). *)
  let with_cache =
    let m = Machine.create () in
    let set n v =
      Devil_runtime.Instance.set m.ne2000_dev n (Devil_ir.Value.Bool v)
    in
    Machine.reset_io_stats m;
    set "accept_errors" false;
    set "accept_runts" false;
    set "accept_broadcast" true;
    set "accept_multicast" false;
    set "promiscuous" false;
    set "monitor" false;
    Machine.io_ops m
  in
  Format.printf
    "register caching: six sibling parameter writes = %d ops with the cache \
     (each write also re-selects page 0); without caching, composing a \
     write-only register is impossible@."
    with_cache;

  (* (c) Block stubs vs loops: the Table 2 mechanism, one row. *)
  let line =
    Ide_bench.run_line ~sectors:16
      (Ide_bench.Pio { sectors_per_irq = 16; width = `W16 })
      ~devil_path:`Loop
  in
  let line_block =
    Ide_bench.run_line ~sectors:16
      (Ide_bench.Pio { sectors_per_irq = 16; width = `W16 })
      ~devil_path:`Block
  in
  Format.printf
    "block stubs: PIO 16/16 throughput ratio %.0f %% with per-word loops vs \
     %.0f %% with rep stubs@."
    (100.0 *. line.ratio)
    (100.0 *. line_block.ratio);

  (* (d) Trigger neutrals: writing a parameter that shares the NE2000
     command register must not re-fire the start/stop/dma triggers. *)
  let m = Machine.create () in
  let net = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net ~mac:"\x02\x00\x00\x00\x00\x01";
  let before = Hwsim.Ne2000.take_transmitted m.nic in
  (* Rewriting the private page variable composes st/txp/rd from their
     neutral values; a cache-replay interface would re-issue START and
     could re-trigger a transmit. *)
  ignore (Devil_runtime.Instance.get m.ne2000_dev "current_page");
  let after = Hwsim.Ne2000.take_transmitted m.nic in
  Format.printf
    "trigger neutrals: a page flip around the command register re-fired %d \
     transmissions (must be 0)@."
    (List.length before + List.length after)

(* {1 Fault-tolerance campaign: drivers under an adversarial bus} *)

let faultcamp () =
  section "Fault campaign: driver workloads under injected bus faults";
  let report = Faultcamp.Campaign.run () in
  Format.printf "%a@." Faultcamp.Campaign.pp_report report;
  Format.printf
    "Transient faults (aborted accesses) must never corrupt silently: the \
     recovery@.policies retry them with bounded attempts. Silent rows mark \
     data-path faults no@.driver-level check can see — the residue a \
     language-level approach leaves to@.end-to-end integrity checks.@.";
  (* Record/replay spot checks: every faultcamp failure must be
     reproducible from its bus tape alone. One cell per workload,
     under the nastiest fault class, plus the fault-free smoke pair
     the check.sh gate diffs with tracetool. *)
  Format.printf "@.record/replay spot checks (bus-tape determinism):@.";
  List.iter
    (fun driver ->
      let rc =
        Faultcamp.Campaign.record_replay ~fault:"stuck-bits" ~driver ~seed:1 ()
      in
      Format.printf "  %a@." Faultcamp.Campaign.pp_replay_check rc)
    Faultcamp.Campaign.replayable_workloads;
  match Sys.getenv_opt Faultcamp.Campaign.export_env with
  | None -> ()
  | Some dir ->
      let recorded, replayed =
        Faultcamp.Campaign.export_replay_smoke ~dir ~driver:"ide-read" ~seed:1
      in
      Format.printf "@.wrote replay smoke pair: %s / %s@." recorded replayed

(* {1 Observability: trace + metrics over a mixed driver workload} *)

let obs_workload (m : Machine.t) =
  let mouse = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  ignore (Drivers.Mouse.Devil_driver.read_state mouse);
  let ide = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  ignore
    (Drivers.Ide.Devil_driver.read_sectors ide ~lba:0 ~count:1 ~mult:1
       ~path:`Block ~width:`W16);
  let g = Drivers.Gfx.Devil_driver.create m.gfx_dev in
  Drivers.Gfx.Devil_driver.set_depth g 8;
  Drivers.Gfx.Devil_driver.fill_rect g
    { Drivers.Gfx.x = 0; y = 0; w = 10; h = 10 }
    ~color:1;
  let u = Drivers.Serial.Devil_driver.create m.uart_dev in
  Drivers.Serial.Devil_driver.init u ~baud:115200;
  ignore (Drivers.Serial.Devil_driver.self_test u)

(* The spec instances the obs workload touches, paired with the
   instance labels Machine.create hands them. *)
let obs_coverage_devices () =
  [
    ("mouse", Devil_specs.Specs.busmouse ());
    ("ide", Devil_specs.Specs.ide ());
    ("piix4", Devil_specs.Specs.piix4_ide ());
    ("gfx", Devil_specs.Specs.permedia2 ());
    ("uart", Devil_specs.Specs.uart16550 ());
  ]

let obs () =
  section "Observability: metrics and trace over a mixed driver workload";
  let trace = Devil_runtime.Trace.create ~capacity:64 () in
  let metrics = Devil_runtime.Metrics.create () in
  let covs =
    List.map
      (fun (dev, device) ->
        let c = Devil_runtime.Coverage.create ~dev device in
        Devil_runtime.Coverage.attach c trace;
        c)
      (obs_coverage_devices ())
  in
  let m = Machine.create ~trace ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve (fun () ->
      obs_workload m);
  Format.printf "%s@." (Devil_runtime.Metrics.to_json metrics);
  Format.printf "@.spec coverage of the workload:@.";
  List.iter
    (fun c ->
      Format.printf "  %a@." Devil_runtime.Coverage.pp_report
        (Devil_runtime.Coverage.report c))
    covs;
  let sample = Perfmodel.Cost.sample_of_metrics metrics in
  Format.printf
    "@.modeled PIO time for the workload: %.1f us (%d single transfers, %d \
     block elements)@."
    (Perfmodel.Cost.pio_time sample *. 1e6)
    sample.Perfmodel.Cost.singles sample.Perfmodel.Cost.block_items;
  Format.printf "@.trace: %s; last events:@."
    (Devil_runtime.Trace.summary trace);
  let events = Devil_runtime.Trace.events trace in
  let tail =
    let n = List.length events in
    List.filteri (fun i _ -> i >= n - 10) events
  in
  List.iter
    (fun e -> Format.printf "  %a@." Devil_runtime.Trace.pp_event e)
    tail

(* The obs workload's metrics registry as bare JSON on stdout —
   counters and histograms sorted by key, so the output is
   byte-deterministic and pinned as test/golden/obs_metrics.json.
   Any change to what the runtime counts (or to what the drivers do)
   shows up as a reviewable golden diff; accept with `dune promote`. *)
let obs_json () =
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve (fun () ->
      obs_workload m);
  print_string (Devil_runtime.Metrics.to_json metrics);
  print_newline ()

(* {1 Bechamel micro-benchmarks: one workload per table} *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one workload per table)";
  let open Bechamel in
  let open Toolkit in
  (* Table 1 workload: verify one mutant of the busmouse spec. *)
  let mutant =
    let src = Devil_specs.Specs.busmouse_source in
    String.concat "index_rag" (String.split_on_char '\t' src) ^ " "
  in
  let t1 =
    Test.make ~name:"table1: check one Devil mutant"
      (Staged.stage (fun () ->
           ignore (Devil_check.Check.compile mutant)))
  in
  (* Table 2 workload: one-sector PIO read through the Devil stubs. *)
  let m = Machine.create () in
  let ide = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let t2 =
    Test.make ~name:"table2: 1-sector PIO read (Devil stubs)"
      (Staged.stage (fun () ->
           ignore
             (Drivers.Ide.Devil_driver.read_sectors ide ~lba:0 ~count:1
                ~mult:1 ~path:`Loop ~width:`W16)))
  in
  (* Table 3 workload: one rectangle fill through the Devil stubs. *)
  let g = Drivers.Gfx.Devil_driver.create m.gfx_dev in
  Drivers.Gfx.Devil_driver.set_depth g 8;
  let t3 =
    Test.make ~name:"table3: 10x10 fill (Devil stubs)"
      (Staged.stage (fun () ->
           Drivers.Gfx.Devil_driver.fill_rect g
             { Drivers.Gfx.x = 0; y = 0; w = 10; h = 10 }
             ~color:1))
  in
  let t4 =
    Test.make ~name:"table4: 10x10 copy (Devil stubs)"
      (Staged.stage (fun () ->
           Drivers.Gfx.Devil_driver.copy_rect g
             { Drivers.Gfx.x = 0; y = 0; w = 10; h = 10 }
             ~dx:16 ~dy:0))
  in
  (* The section 4.3 micro-comparison pair. *)
  let mouse_devil = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  let mouse_hand = Drivers.Mouse.Handcrafted.create m.bus ~base:Machine.mouse_base in
  let t5a =
    Test.make ~name:"micro: mouse state via Devil stubs"
      (Staged.stage (fun () ->
           ignore (Drivers.Mouse.Devil_driver.read_state mouse_devil)))
  in
  let t5b =
    Test.make ~name:"micro: mouse state hand-crafted"
      (Staged.stage (fun () ->
           ignore (Drivers.Mouse.Handcrafted.read_state mouse_hand)))
  in
  let tests = [ t1; t2; t3; t4; t5a; t5b ] in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.printf "%-42s %12.1f ns/run@." name est
          | _ -> Format.printf "%-42s (no estimate)@." name)
        results)
    tests

(* {1 PR-3 benchmark trajectory: compiled plans vs the interpreter}

   [benchjson] runs a fixed set of runtime workloads under bechamel on
   BOTH engines — the default compiled access plans and the
   [~interpret:true] oracle — and persists the ns/op estimates,
   together with the cost-model time for one operation of each
   workload, as machine-readable JSON (DESIGN.md §9 documents the
   schema; tools/benchcheck validates it). Environment knobs, used by
   the check.sh "bench smoke" step:

     DEVIL_BENCH_QUOTA   seconds of sampling per workload (default 0.25)
     DEVIL_BENCH_LIMIT   max bechamel runs per workload (default 2000)
     DEVIL_BENCH_OUT     output path (default BENCH_pr3.json)
     DEVIL_BENCH_SUITE   suite name stamped into the JSON
                         (default devil_pr3_access_plans; committed
                         trajectory files use devil_pr5_span_profiler
                         from BENCH_pr5.json on) *)

let pr3_workloads : (string * (Machine.t -> unit -> unit)) list =
  [
    (* A standalone int variable on a cached read/write register: the
       purest register-get / register-set pair. *)
    ( "reg_get",
      fun m () -> ignore (Machine.Instance.get m.uart_dev "parity_mode") );
    ( "reg_set",
      fun m ->
        let v = Devil_ir.Value.Int 5 in
        fun () -> Machine.Instance.set m.uart_dev "parity_mode" v );
    (* The same pair through pre-resolved handles: the name lookup at
       the public API boundary — which both engines pay equally — is
       hoisted out, leaving the bare per-access path. *)
    ( "reg_get_h",
      fun m ->
        let h = Machine.Instance.handle m.uart_dev "parity_mode" in
        fun () -> ignore (Machine.Instance.get_h m.uart_dev h) );
    ( "reg_set_h",
      fun m ->
        let h = Machine.Instance.handle m.uart_dev "parity_mode" in
        let v = Devil_ir.Value.Int 5 in
        fun () -> Machine.Instance.set_h m.uart_dev h v );
    (* One volatile structure read: eight fields off a single LSR
       fetch. *)
    ( "struct_read",
      fun m () -> Machine.Instance.get_struct m.uart_dev "line_status" );
    (* A 64-element block transfer through a write-trigger block
       variable (the drained wire keeps the device buffer bounded). *)
    ( "block_write",
      fun m ->
        let data = Array.make 64 0x55 in
        fun () ->
          Machine.Instance.write_block m.uart_dev "tx_data" data;
          ignore (Hwsim.Uart16550.take_transmitted m.uart) );
    (* The Table 2 data path: a one-sector PIO read end to end. *)
    ( "ide_read",
      fun m ->
        let ide =
          Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev
        in
        fun () ->
          ignore
            (Drivers.Ide.Devil_driver.read_sectors ide ~lba:0 ~count:1 ~mult:1
               ~path:`Block ~width:`W16) );
    (* The Table 3 data path: a 10x10 rectangle fill. *)
    ( "gfx_fill",
      fun m ->
        let g = Drivers.Gfx.Devil_driver.create m.gfx_dev in
        Drivers.Gfx.Devil_driver.set_depth g 8;
        fun () ->
          Drivers.Gfx.Devil_driver.fill_rect g
            { Drivers.Gfx.x = 0; y = 0; w = 10; h = 10 }
            ~color:1 );
  ]

let estimate_ns ~quota ~limit test =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~stabilize:true ()
  in
  (* Smoke runs use a tiny quota/limit; when OLS cannot produce an
     estimate from so few samples we report null rather than fail. *)
  try
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold
      (fun _ ols acc ->
        match acc with
        | Some _ -> acc
        | None -> (
            match Analyze.OLS.estimates ols with
            | Some [ est ] when Float.is_finite est && est >= 0.0 -> Some est
            | _ -> None))
      results None
  with _ -> None

let modeled_us_per_op workload =
  (* Count the bus traffic of one hot-loop operation on a
     metrics-instrumented machine and convert it with the calibrated
     §4 cost model. The counts are engine-independent — the
     differential suite proves both engines issue identical traffic —
     so each workload carries a single modeled time. *)
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve (fun () ->
      let run = workload m in
      run ();
      (* warm the idempotent caches: measure the steady state *)
      let before = Perfmodel.Cost.sample_of_metrics metrics in
      run ();
      let after = Perfmodel.Cost.sample_of_metrics metrics in
      let delta =
        {
          Perfmodel.Cost.singles =
            after.Perfmodel.Cost.singles - before.Perfmodel.Cost.singles;
          block_items =
            after.Perfmodel.Cost.block_items - before.Perfmodel.Cost.block_items;
          irqs = 0;
        }
      in
      Perfmodel.Cost.pio_time delta *. 1e6)

let benchjson () =
  section "PR-3 benchmark trajectory: compiled plans vs the interpreter";
  let env_float name default =
    match Sys.getenv_opt name with
    | Some s -> ( try float_of_string s with _ -> default)
    | None -> default
  in
  let env_int name default =
    match Sys.getenv_opt name with
    | Some s -> ( try int_of_string s with _ -> default)
    | None -> default
  in
  let quota = env_float "DEVIL_BENCH_QUOTA" 0.25 in
  let limit = env_int "DEVIL_BENCH_LIMIT" 2000 in
  let out =
    Option.value (Sys.getenv_opt "DEVIL_BENCH_OUT") ~default:"BENCH_pr3.json"
  in
  let suite =
    Option.value
      (Sys.getenv_opt "DEVIL_BENCH_SUITE")
      ~default:"devil_pr3_access_plans"
  in
  let modeled =
    List.map (fun (name, wl) -> (name, modeled_us_per_op wl)) pr3_workloads
  in
  let rows =
    List.concat_map
      (fun (engine, interpret) ->
        let m = Machine.create ~interpret () in
        List.map
          (fun (name, wl) ->
            let run = wl m in
            run ();
            (* warm caches before sampling *)
            let label = name ^ "/" ^ engine in
            let test =
              Bechamel.Test.make ~name:label (Bechamel.Staged.stage run)
            in
            let ns = estimate_ns ~quota ~limit test in
            Format.printf "%-28s %s@." label
              (match ns with
              | Some v -> Printf.sprintf "%12.1f ns/op" v
              | None -> "   (no estimate)");
            (name, engine, ns))
          pr3_workloads)
      [ ("compiled", false); ("interpreted", true) ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf (Printf.sprintf "  \"suite\": %S,\n" suite);
  Buffer.add_string buf (Printf.sprintf "  \"quota_s\": %.4f,\n" quota);
  Buffer.add_string buf (Printf.sprintf "  \"limit\": %d,\n" limit);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i (name, engine, ns) ->
      let modeled_us = List.assoc name modeled in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"engine\": %S, \"ns_per_op\": %s, \
            \"modeled_us\": %.4f }%s\n"
           name engine
           (match ns with Some v -> Printf.sprintf "%.3f" v | None -> "null")
           modeled_us
           (if i = List.length rows - 1 then "" else ","))
      )
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s (%d workloads x 2 engines)@." out
    (List.length pr3_workloads)

(* {1 bench async: queued/interrupt-driven drivers vs synchronous polling}

   The ISSUE-7 Table-2-style suite (DESIGN.md §13). Four rows, each a
   fresh metrics-instrumented machine:

   - ide-sync-poll    one-command-at-a-time DMA reads, completion by
                      busmaster status polling (each status read costs
                      a real ISA transfer and advances the deferred
                      engine one unit);
   - ide-queued-dma   the same reads through Ide.Async: a FIFO of
                      commands completed by the IRQ, windowed at depth
                      4;
   - net-poll-rx      frames drained by calling receive in a poll
                      loop, paying ring-state reads for every empty
                      poll between bursts;
   - net-burst-rx     Net.Async: one PRX interrupt drains a whole
                      burst; idle gaps cost scheduler ticks, not bus
                      reads.

   The table reports CPU us per operation under the calibrated §4 cost
   model: singles and block elements at their ISA price, serviced
   interrupts at [t_irq], and — for the event-driven rows — one
   [t_loop] per scheduler tick (the loop iteration that replaces a
   poll's bus read). Media/engine time is excluded: it is [latency]
   virtual ticks in BOTH columns and overlaps the queue's completion
   processing, which is exactly why the queued driver's sustainable
   command rate is CPU-bound. "p99 wait" is the 99th-percentile
   virtual-tick latency from submit (or frame injection) to
   completion — queueing behind a saturated engine is visible there.

   In-process invariants (exit 1): every transferred byte verified
   against ground truth, and zero outstanding requests after each
   event-driven row (the queue-leak check). tools/benchcheck `async`
   validates the JSON artifact and gates ide-queued-dma at >= 2x the
   polling row's throughput. *)

let async_dma_latency = 128
let async_ide_ops = 32
let async_ide_count = 2 (* sectors per command *)
let async_ide_window = 4 (* queued commands in flight *)
let async_net_bursts = 8
let async_net_burst = 8 (* frames per burst *)
let async_net_gap = 32 (* idle ticks (or empty polls) between bursts *)

type async_row = {
  ar_name : string;
  ar_ops : int;
  ar_singles_per_op : float;
  ar_block_per_op : float;
  ar_irqs_per_op : float;
  ar_wait_ticks_per_op : float;
  ar_cpu_us_per_op : float;
  ar_p99_wait : int;
}

let async_failures : string list ref = ref []
let async_fail fmt = Printf.ksprintf (fun m -> async_failures := m :: !async_failures) fmt

let async_verify ~row ~what expected got =
  if not (Bytes.equal expected got) then
    async_fail "%s: %s differs from ground truth" row what

let percentile_of_array a p =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0 else a.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* CPU time of one row under the cost model. [sched_ticks] is 0 for
   the polling rows: their loop iterations are the status reads
   already counted as singles. *)
let async_cpu_us ~(delta : Perfmodel.Cost.io_sample) ~sched_ticks =
  (Perfmodel.Cost.pio_time delta
  +. (float_of_int sched_ticks *. Perfmodel.Cost.t_loop))
  *. 1e6

let async_sector_pattern i =
  Bytes.init
    (async_ide_count * 512)
    (fun j -> Char.chr (((i * 7) + (j * 13) + 3) land 0xff))

let async_fill_disk (m : Machine.t) =
  for i = 0 to async_ide_ops - 1 do
    let b = async_sector_pattern i in
    for s = 0 to async_ide_count - 1 do
      Hwsim.Ide_disk.write_sector m.disk
        ~lba:(1000 + (i * async_ide_count) + s)
        (Bytes.sub b (s * 512) 512)
    done
  done

let async_row_ide_sync () =
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  async_fill_disk m;
  Hwsim.Piix4.set_latency m.busmaster async_dma_latency;
  let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let memory = Hwsim.Piix4.memory m.busmaster in
  let before = Perfmodel.Cost.sample_of_metrics metrics in
  let waits = Array.make async_ide_ops 0 in
  for i = 0 to async_ide_ops - 1 do
    let t0 = Devil_runtime.Metrics.count metrics "poll.ticks" in
    let got =
      Drivers.Ide.Devil_driver.read_dma d ~memory
        ~lba:(1000 + (i * async_ide_count))
        ~count:async_ide_count
    in
    async_verify ~row:"ide-sync-poll" ~what:(Printf.sprintf "command %d" i)
      (async_sector_pattern i) got;
    waits.(i) <- Devil_runtime.Metrics.count metrics "poll.ticks" - t0
  done;
  let after = Perfmodel.Cost.sample_of_metrics metrics in
  let delta =
    {
      Perfmodel.Cost.singles = after.Perfmodel.Cost.singles - before.Perfmodel.Cost.singles;
      block_items = after.Perfmodel.Cost.block_items - before.Perfmodel.Cost.block_items;
      irqs = 0;
    }
  in
  let ops = float_of_int async_ide_ops in
  {
    ar_name = "ide-sync-poll";
    ar_ops = async_ide_ops;
    ar_singles_per_op = float_of_int delta.Perfmodel.Cost.singles /. ops;
    ar_block_per_op = float_of_int delta.Perfmodel.Cost.block_items /. ops;
    ar_irqs_per_op = 0.0;
    ar_wait_ticks_per_op =
      float_of_int (Array.fold_left ( + ) 0 waits) /. ops;
    ar_cpu_us_per_op = async_cpu_us ~delta ~sched_ticks:0 /. ops;
    ar_p99_wait = percentile_of_array waits 0.99;
  }

let async_row_ide_queued () =
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  async_fill_disk m;
  Hwsim.Piix4.set_latency m.busmaster async_dma_latency;
  let sched = Machine.sched m in
  let d =
    Drivers.Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev ~piix4:m.piix4_dev
  in
  let before = Perfmodel.Cost.sample_of_metrics metrics in
  let pending = ref [] in
  for i = 0 to async_ide_ops - 1 do
    let rq =
      Drivers.Ide.Async.read_dma d
        ~lba:(1000 + (i * async_ide_count))
        ~count:async_ide_count
        ~on_data:(fun got ->
          async_verify ~row:"ide-queued-dma"
            ~what:(Printf.sprintf "command %d" i)
            (async_sector_pattern i) got)
        ()
    in
    pending := rq :: !pending;
    if List.length !pending >= async_ide_window then begin
      List.iter (Drivers.Ide.Async.await d) !pending;
      pending := []
    end
  done;
  List.iter (Drivers.Ide.Async.await d) !pending;
  Drivers.Ide.Async.drain d;
  if Devil_runtime.Sched.outstanding sched <> 0 then
    async_fail "ide-queued-dma: %d request(s) leaked on the queue"
      (Devil_runtime.Sched.outstanding sched);
  let after = Perfmodel.Cost.sample_of_metrics metrics in
  let irqs = Devil_runtime.Metrics.count metrics "sched.irqs.delivered" in
  let ticks = Devil_runtime.Metrics.count metrics "sched.ticks" in
  if irqs <> async_ide_ops then
    async_fail "ide-queued-dma: %d interrupts delivered for %d commands" irqs
      async_ide_ops;
  let delta =
    {
      Perfmodel.Cost.singles = after.Perfmodel.Cost.singles - before.Perfmodel.Cost.singles;
      block_items = after.Perfmodel.Cost.block_items - before.Perfmodel.Cost.block_items;
      irqs;
    }
  in
  let ops = float_of_int async_ide_ops in
  {
    ar_name = "ide-queued-dma";
    ar_ops = async_ide_ops;
    ar_singles_per_op = float_of_int delta.Perfmodel.Cost.singles /. ops;
    ar_block_per_op = float_of_int delta.Perfmodel.Cost.block_items /. ops;
    ar_irqs_per_op = float_of_int irqs /. ops;
    ar_wait_ticks_per_op = float_of_int ticks /. ops;
    ar_cpu_us_per_op = async_cpu_us ~delta ~sched_ticks:ticks /. ops;
    ar_p99_wait =
      Option.value
        (Devil_runtime.Metrics.percentile metrics "sched.queue.wait_ticks" 0.99)
        ~default:0;
  }

let async_net_frame b k =
  String.init 64 (fun j ->
      Char.chr (((b * async_net_burst) + k + (j * 5) + 1) land 0xff))

let async_row_net_poll () =
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  let net = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net ~mac:"\x02\x00\x00\x00\x00\x21";
  let before = Perfmodel.Cost.sample_of_metrics metrics in
  let frames = ref 0 in
  for b = 0 to async_net_bursts - 1 do
    for k = 0 to async_net_burst - 1 do
      if not (Hwsim.Ne2000.inject_frame m.nic (async_net_frame b k)) then
        async_fail "net-poll-rx: ring rejected frame %d/%d" b k
    done;
    for k = 0 to async_net_burst - 1 do
      match Drivers.Net.Devil_driver.receive net with
      | Some f ->
          incr frames;
          async_verify ~row:"net-poll-rx" ~what:(Printf.sprintf "frame %d/%d" b k)
            (Bytes.of_string (async_net_frame b k))
            (Bytes.of_string f)
      | None -> async_fail "net-poll-rx: frame %d/%d not received" b k
    done;
    (* The inter-burst gap: a poll-driven driver pays ring-state reads
       for every empty check. *)
    for _ = 1 to async_net_gap do
      match Drivers.Net.Devil_driver.receive net with
      | Some _ -> async_fail "net-poll-rx: unexpected frame in the gap"
      | None -> ()
    done
  done;
  let after = Perfmodel.Cost.sample_of_metrics metrics in
  let delta =
    {
      Perfmodel.Cost.singles = after.Perfmodel.Cost.singles - before.Perfmodel.Cost.singles;
      block_items = after.Perfmodel.Cost.block_items - before.Perfmodel.Cost.block_items;
      irqs = 0;
    }
  in
  let total = async_net_bursts * async_net_burst in
  let ops = float_of_int total in
  if !frames <> total then
    async_fail "net-poll-rx: drained %d of %d frames" !frames total;
  {
    ar_name = "net-poll-rx";
    ar_ops = total;
    ar_singles_per_op = float_of_int delta.Perfmodel.Cost.singles /. ops;
    ar_block_per_op = float_of_int delta.Perfmodel.Cost.block_items /. ops;
    ar_irqs_per_op = 0.0;
    ar_wait_ticks_per_op = 0.0;
    ar_cpu_us_per_op = async_cpu_us ~delta ~sched_ticks:0 /. ops;
    ar_p99_wait = 0;
  }

let async_row_net_burst () =
  let metrics = Devil_runtime.Metrics.create () in
  let m = Machine.create ~metrics () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  let net = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net ~mac:"\x02\x00\x00\x00\x00\x22";
  let sched = Machine.sched m in
  let a = Drivers.Net.Async.create ~sched ~line:Machine.irq_net m.ne2000_dev in
  let total = async_net_bursts * async_net_burst in
  let got = ref 0 in
  let injected_at = ref 0 in
  let waits = Array.make total 0 in
  Drivers.Net.Async.on_frame a (fun f ->
      let i = !got in
      if i < total then begin
        let b = i / async_net_burst and k = i mod async_net_burst in
        async_verify ~row:"net-burst-rx" ~what:(Printf.sprintf "frame %d/%d" b k)
          (Bytes.of_string (async_net_frame b k))
          (Bytes.of_string f);
        waits.(i) <- Devil_runtime.Sched.now sched - !injected_at
      end;
      incr got);
  let before = Perfmodel.Cost.sample_of_metrics metrics in
  for b = 0 to async_net_bursts - 1 do
    for k = 0 to async_net_burst - 1 do
      if not (Hwsim.Ne2000.inject_frame m.nic (async_net_frame b k)) then
        async_fail "net-burst-rx: ring rejected frame %d/%d" b k
    done;
    injected_at := Devil_runtime.Sched.now sched;
    let target = (b + 1) * async_net_burst in
    let budget = ref (async_net_gap * 4) in
    while !got < target && !budget > 0 do
      Devil_runtime.Sched.tick sched;
      decr budget
    done;
    if !got < target then
      async_fail "net-burst-rx: burst %d drained %d of %d frames" b !got target;
    (* The same inter-burst gap: idle loop iterations, no bus traffic. *)
    for _ = 1 to async_net_gap do
      Devil_runtime.Sched.tick sched
    done
  done;
  if Devil_runtime.Sched.outstanding sched <> 0 then
    async_fail "net-burst-rx: %d request(s) leaked on the queue"
      (Devil_runtime.Sched.outstanding sched);
  let after = Perfmodel.Cost.sample_of_metrics metrics in
  let irqs = Devil_runtime.Metrics.count metrics "sched.irqs.delivered" in
  let ticks = Devil_runtime.Metrics.count metrics "sched.ticks" in
  let delta =
    {
      Perfmodel.Cost.singles = after.Perfmodel.Cost.singles - before.Perfmodel.Cost.singles;
      block_items = after.Perfmodel.Cost.block_items - before.Perfmodel.Cost.block_items;
      irqs;
    }
  in
  let ops = float_of_int total in
  {
    ar_name = "net-burst-rx";
    ar_ops = total;
    ar_singles_per_op = float_of_int delta.Perfmodel.Cost.singles /. ops;
    ar_block_per_op = float_of_int delta.Perfmodel.Cost.block_items /. ops;
    ar_irqs_per_op = float_of_int irqs /. ops;
    ar_wait_ticks_per_op = float_of_int ticks /. ops;
    ar_cpu_us_per_op = async_cpu_us ~delta ~sched_ticks:ticks /. ops;
    ar_p99_wait = percentile_of_array waits 0.99;
  }

let async_ratio ~sync ~queued = sync.ar_cpu_us_per_op /. queued.ar_cpu_us_per_op

let async_json ~out rows =
  let ratio_of name =
    match name with
    | "ide-queued-dma" ->
        Some
          (async_ratio
             ~sync:(List.find (fun r -> r.ar_name = "ide-sync-poll") rows)
             ~queued:(List.find (fun r -> r.ar_name = "ide-queued-dma") rows))
    | "net-burst-rx" ->
        Some
          (async_ratio
             ~sync:(List.find (fun r -> r.ar_name = "net-poll-rx") rows)
             ~queued:(List.find (fun r -> r.ar_name = "net-burst-rx") rows))
    | _ -> None
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf "  \"suite\": \"devil_pr7_async\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"dma_latency\": %d,\n" async_dma_latency);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"ops\": %d, \"singles_per_op\": %.2f, \
            \"block_per_op\": %.2f, \"irqs_per_op\": %.3f, \
            \"wait_ticks_per_op\": %.1f, \"cpu_us_per_op\": %.3f, \
            \"ops_per_s\": %.0f, \"p99_wait_ticks\": %d, \"ratio_vs_sync\": \
            %s }%s\n"
           r.ar_name r.ar_ops r.ar_singles_per_op r.ar_block_per_op
           r.ar_irqs_per_op r.ar_wait_ticks_per_op r.ar_cpu_us_per_op
           (1e6 /. r.ar_cpu_us_per_op)
           r.ar_p99_wait
           (match ratio_of r.ar_name with
           | Some x -> Printf.sprintf "%.3f" x
           | None -> "null")
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc

let async_usage () =
  Format.eprintf "usage: bench async [--out FILE]@.";
  exit 2

let async_cmd args =
  let out = ref "BENCH_async.json" in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | _ -> async_usage ()
  in
  parse args;
  async_failures := [];
  section
    "Async drivers: queued/interrupt-driven vs synchronous polling (Table 2 \
     style)";
  let rows =
    [
      async_row_ide_sync ();
      async_row_ide_queued ();
      async_row_net_poll ();
      async_row_net_burst ();
    ]
  in
  Format.printf "engine latency %d ticks; queue window %d; %d-frame bursts, \
                 %d-tick gaps@.@."
    async_dma_latency async_ide_window async_net_burst async_net_gap;
  Format.printf "%-16s %5s %11s %8s %8s %9s %10s %10s %9s %8s@." "row" "ops"
    "singles/op" "blk/op" "irqs/op" "ticks/op" "cpu us/op" "cpu ops/s"
    "p99 wait" "vs sync";
  List.iter
    (fun r ->
      Format.printf "%-16s %5d %11.1f %8.1f %8.2f %9.1f %10.2f %10.0f %9d %8s@."
        r.ar_name r.ar_ops r.ar_singles_per_op r.ar_block_per_op
        r.ar_irqs_per_op r.ar_wait_ticks_per_op r.ar_cpu_us_per_op
        (1e6 /. r.ar_cpu_us_per_op)
        r.ar_p99_wait
        (match
           ( r.ar_name,
             List.find_opt (fun s -> s.ar_name = "ide-sync-poll") rows,
             List.find_opt (fun s -> s.ar_name = "net-poll-rx") rows )
         with
        | "ide-queued-dma", Some s, _ ->
            Printf.sprintf "%.2fx" (async_ratio ~sync:s ~queued:r)
        | "net-burst-rx", _, Some s ->
            Printf.sprintf "%.2fx" (async_ratio ~sync:s ~queued:r)
        | _ -> "-"))
    rows;
  Format.printf
    "@.CPU us/op under the calibrated cost model: polls pay a bus read per \
     engine unit,@.the event loop pays one t_loop tick — media time is \
     identical in both columns and@.overlaps the queue's completion \
     processing. p99 wait is virtual ticks to completion.@.";
  async_json ~out:!out rows;
  Format.printf "@.wrote %s (4 rows)@." !out;
  match !async_failures with
  | [] -> ()
  | fs ->
      List.iter (Format.eprintf "async invariant violated: %s@.") (List.rev fs);
      exit 1

(* {1 bench latency: per-stage request-latency accounting (DESIGN.md §15)}

   Runs the two queued workloads (the async suite's shapes) on a
   lifecycle-instrumented machine — trace + metrics + the
   {!Devil_runtime.Lifecycle} reconstructor on its default monotonic
   nanosecond clock — and reports, per workload, the
   [lifecycle.<dev>.<stage>.ns] histograms: where a request's wall
   time goes between submit and completion (queue wait, device
   service, interrupt delivery, completion handler).

   In-process invariants (exit 1): every byte verified against ground
   truth, every submitted request completed (zero orphans), no late
   completions, and the machine's {!Devil_runtime.Health} verdict Ok
   at the end of each workload. The JSON artifact (devil_pr9_latency)
   embeds the health reports; tools/benchcheck `latency` validates it
   and re-checks the gates offline, so the committed
   BENCH_latency.json keeps a healthy run on record. *)

let latency_net_frames = 24
let latency_net_window = 4

type latency_wl = {
  lw_name : string;
  lw_dev : string;
  lw_requests : int;
  lw_completed : int;
  lw_orphans : int;
  lw_lost : int;
  lw_spurious : int;
  lw_stages : (string * Devil_runtime.Metrics.hist_snapshot) list;
  lw_health : Devil_runtime.Health.report;
}

let latency_machine () =
  let trace = Devil_runtime.Trace.create ~capacity:8192 () in
  let metrics = Devil_runtime.Metrics.create () in
  (Machine.create ~trace ~metrics ~lifecycle:true (), metrics, trace)

let latency_result ~name ~dev (m : Machine.t) metrics =
  let lc =
    match m.Machine.lifecycle with
    | Some lc -> lc
    | None -> failwith "latency: machine built without a lifecycle handle"
  in
  let stages =
    List.filter_map
      (fun st ->
        let label = Devil_runtime.Lifecycle.stage_label st in
        Option.map
          (fun h -> (label, h))
          (Devil_runtime.Metrics.histogram metrics
             (Printf.sprintf "lifecycle.%s.%s.ns" dev label)))
      Devil_runtime.Lifecycle.stages
  in
  let r =
    {
      lw_name = name;
      lw_dev = dev;
      lw_requests = Devil_runtime.Lifecycle.submitted lc;
      lw_completed = Devil_runtime.Lifecycle.completed lc;
      lw_orphans = List.length (Devil_runtime.Lifecycle.orphans lc);
      lw_lost = Devil_runtime.Lifecycle.lost_interrupts lc;
      lw_spurious = Devil_runtime.Lifecycle.spurious_completions lc;
      lw_stages = stages;
      lw_health = Machine.health m;
    }
  in
  if r.lw_requests = 0 then async_fail "%s: no requests were submitted" name;
  if r.lw_completed <> r.lw_requests then
    async_fail "%s: %d of %d requests completed" name r.lw_completed
      r.lw_requests;
  if r.lw_orphans > 0 then
    async_fail "%s: %d orphaned request(s)" name r.lw_orphans;
  if r.lw_lost > 0 || r.lw_spurious > 0 then
    async_fail "%s: late completions on a clean run (%d lost, %d spurious)"
      name r.lw_lost r.lw_spurious;
  if not (Devil_runtime.Health.is_ok r.lw_health) then
    async_fail "%s: health verdict %s" name
      (Devil_runtime.Health.summary r.lw_health);
  r

let latency_wl_ide () =
  let m, metrics, trace = latency_machine () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  async_fill_disk m;
  Hwsim.Piix4.set_latency m.busmaster async_dma_latency;
  let sched = Machine.sched m in
  let d =
    Drivers.Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev
      ~piix4:m.piix4_dev
  in
  let pending = ref [] in
  for i = 0 to async_ide_ops - 1 do
    let rq =
      Drivers.Ide.Async.read_dma d
        ~lba:(1000 + (i * async_ide_count))
        ~count:async_ide_count
        ~on_data:(fun got ->
          async_verify ~row:"ide-dma-async"
            ~what:(Printf.sprintf "command %d" i)
            (async_sector_pattern i) got)
        ()
    in
    pending := rq :: !pending;
    if List.length !pending >= async_ide_window then begin
      List.iter (Drivers.Ide.Async.await d) !pending;
      pending := []
    end
  done;
  List.iter (Drivers.Ide.Async.await d) !pending;
  Drivers.Ide.Async.drain d;
  (latency_result ~name:"ide-dma-async" ~dev:"ide" m metrics, trace)

let latency_net_frame i =
  String.init 48 (fun j -> Char.chr (((i * 11) + (j * 3) + 7) land 0xff))

let latency_wl_net () =
  let m, metrics, trace = latency_machine () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  let sync = Drivers.Net.Devil_driver.create m.ne2000_dev in
  let sched = Machine.sched m in
  let a = Drivers.Net.Async.create ~sched ~line:Machine.irq_net m.ne2000_dev in
  Drivers.Net.Devil_driver.init sync ~mac:"\x02\x00\x00\x00\x00\x23";
  let pending = ref [] in
  for i = 0 to latency_net_frames - 1 do
    let rq = Drivers.Net.Async.send a (latency_net_frame i) in
    pending := rq :: !pending;
    if List.length !pending >= latency_net_window then begin
      List.iter (Drivers.Net.Async.await a) !pending;
      pending := []
    end
  done;
  List.iter (Drivers.Net.Async.await a) !pending;
  Drivers.Net.Async.drain a;
  let sent = Hwsim.Ne2000.take_transmitted m.nic in
  if List.length sent <> latency_net_frames then
    async_fail "net-async: %d of %d frames transmitted" (List.length sent)
      latency_net_frames
  else
    List.iteri
      (fun i f ->
        async_verify ~row:"net-async" ~what:(Printf.sprintf "frame %d" i)
          (Bytes.of_string (latency_net_frame i))
          (Bytes.of_string f))
      sent;
  (latency_result ~name:"net-async" ~dev:"ne2000" m metrics, trace)

let latency_json ~out wls =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf "  \"suite\": \"devil_pr9_latency\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"dma_latency\": %d,\n" async_dma_latency);
  Buffer.add_string buf "  \"workloads\": [\n";
  let n = List.length wls in
  List.iteri
    (fun i w ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"dev\": %S, \"requests\": %d, \
            \"completed\": %d, \"orphans\": %d, \"lost_interrupts\": %d, \
            \"spurious_completions\": %d,\n"
           w.lw_name w.lw_dev w.lw_requests w.lw_completed w.lw_orphans
           w.lw_lost w.lw_spurious);
      Buffer.add_string buf "      \"stages\": [\n";
      let ns = List.length w.lw_stages in
      List.iteri
        (fun j (label, (h : Devil_runtime.Metrics.hist_snapshot)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"stage\": %S, \"count\": %d, \"p50_ns\": %d, \
                \"p95_ns\": %d, \"p99_ns\": %d, \"mean_ns\": %.1f }%s\n"
               label h.count h.p50 h.p95 h.p99 h.mean
               (if j = ns - 1 then "" else ",")))
        w.lw_stages;
      Buffer.add_string buf "      ],\n";
      Buffer.add_string buf
        (Printf.sprintf "      \"health\": %s }%s\n"
           (Devil_runtime.Health.to_json w.lw_health)
           (if i = n - 1 then "" else ",")))
    wls;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc

let latency_usage () =
  Format.eprintf "usage: bench latency [--out FILE] [--trace-dir DIR]@.";
  exit 2

let latency_cmd args =
  let out = ref "BENCH_latency.json" in
  let trace_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--trace-dir" :: v :: rest ->
        trace_dir := Some v;
        parse rest
    | _ -> latency_usage ()
  in
  parse args;
  async_failures := [];
  section "Request latency: per-stage accounting over the queued drivers";
  let runs = [ latency_wl_ide (); latency_wl_net () ] in
  (* The event streams behind the table, replayable through
     `tracetool lifecycle` / `tracetool convert` — the offline half of
     the straggler-chasing workflow (README). *)
  (match !trace_dir with
  | None -> ()
  | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      List.iter
        (fun (w, trace) ->
          let path = Filename.concat dir (w.lw_name ^ ".trace.jsonl") in
          Devil_runtime.Trace_export.write_file path
            (Devil_runtime.Trace_export.events_to_jsonl
               (Devil_runtime.Trace.events trace));
          Format.printf "wrote %s@." path)
        runs);
  let wls = List.map fst runs in
  List.iter
    (fun w ->
      Format.printf
        "%s (dev %s): %d requests, %d completed, %d orphaned; health %s@."
        w.lw_name w.lw_dev w.lw_requests w.lw_completed w.lw_orphans
        (Devil_runtime.Health.summary w.lw_health);
      Format.printf "  %-14s %7s %12s %12s %12s %12s@." "stage" "count"
        "p50 ns" "p95 ns" "p99 ns" "mean ns";
      List.iter
        (fun (label, (h : Devil_runtime.Metrics.hist_snapshot)) ->
          Format.printf "  %-14s %7d %12d %12d %12d %12.1f@." label h.count
            h.p50 h.p95 h.p99 h.mean)
        w.lw_stages;
      Format.printf "@.")
    wls;
  Format.printf
    "Stage vocabulary (DESIGN.md §15): queue_wait (submit->start), service \
     (start->irq),@.irq_delivery (raise->dispatch), completion \
     (dispatch->done), total (submit->done).@.";
  latency_json ~out:!out wls;
  Format.printf "@.wrote %s (%d workloads)@." !out (List.length wls);
  match !async_failures with
  | [] -> ()
  | fs ->
      List.iter
        (Format.eprintf "latency invariant violated: %s@.")
        (List.rev fs);
      exit 1

(* {1 bench soak: the telemetry acceptance workload (DESIGN.md §16)}

   A mixed sync/async workload under a ticking telemetry sampler: every
   virtual "second" issues queued IDE DMA reads, async NE2000 sends and
   a burst of synchronous UART register traffic, then takes one
   telemetry tick (sampling every counter/histogram plus the health
   verdict). Every clock in the run is deterministic — the lifecycle
   clock counts trace events, the telemetry clock counts ticks — so
   BENCH_telemetry.json and the series dump are byte-stable across
   runs, which is what lets check.sh gate on the committed artifact.

   In-process invariants (exit 1): every DMA'd byte and transmitted
   frame verified against ground truth, health ok at the end, and a
   nonzero completion rate in every tick's window. *)

let soak_ide_per_tick = 4
let soak_net_per_tick = 4
let soak_uart_per_tick = 8

let soak_usage () =
  Format.eprintf
    "usage: bench soak [--ticks N] [--out FILE] [--series FILE] \
     [--openmetrics FILE]@.";
  exit 2

let soak_cmd args =
  let ticks = ref 6 in
  let out = ref "BENCH_telemetry.json" in
  let series_out = ref None in
  let om_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--ticks" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> ticks := n
        | _ -> soak_usage ());
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--series" :: v :: rest ->
        series_out := Some v;
        parse rest
    | "--openmetrics" :: v :: rest ->
        om_out := Some v;
        parse rest
    | _ -> soak_usage ()
  in
  parse args;
  async_failures := [];
  section "Telemetry soak: mixed sync/async workload under a ticking sampler";
  let trace = Devil_runtime.Trace.create ~capacity:65536 () in
  let metrics = Devil_runtime.Metrics.create () in
  let telemetry = Devil_runtime.Telemetry.create ~capacity:256 metrics in
  let event_clock =
    let n = ref 0 in
    fun () ->
      incr n;
      !n
  in
  let m =
    Machine.create ~trace ~metrics ~telemetry ~lifecycle:true
      ~lifecycle_clock:event_clock ()
  in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve @@ fun () ->
  async_fill_disk m;
  Hwsim.Piix4.set_latency m.busmaster async_dma_latency;
  let sched = Machine.sched m in
  let ide =
    Drivers.Ide.Async.create ~sched ~line:Machine.irq_ide
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~ide:m.ide_dev
      ~piix4:m.piix4_dev
  in
  let net_sync = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net_sync ~mac:"\x02\x00\x00\x00\x00\x42";
  let net = Drivers.Net.Async.create ~sched ~line:Machine.irq_net m.ne2000_dev in
  let frames_sent = ref 0 in
  for t = 0 to !ticks - 1 do
    let completions_before =
      Devil_runtime.Metrics.count metrics "sched.queue.completions"
    in
    (* Async IDE: a window of queued DMA reads over the pre-filled
       sectors (command indices wrap, so any tick count replays the
       same ground truth). *)
    let pending = ref [] in
    for k = 0 to soak_ide_per_tick - 1 do
      let cmd = ((t * soak_ide_per_tick) + k) mod async_ide_ops in
      let rq =
        Drivers.Ide.Async.read_dma ide
          ~lba:(1000 + (cmd * async_ide_count))
          ~count:async_ide_count
          ~on_data:(fun got ->
            async_verify ~row:"soak-ide"
              ~what:(Printf.sprintf "tick %d command %d" t cmd)
              (async_sector_pattern cmd) got)
          ()
      in
      pending := rq :: !pending;
      if List.length !pending >= 2 then begin
        List.iter (Drivers.Ide.Async.await ide) !pending;
        pending := []
      end
    done;
    List.iter (Drivers.Ide.Async.await ide) !pending;
    Drivers.Ide.Async.drain ide;
    (* Async net: a burst of sends, verified against the NIC's
       transmit log. *)
    let rqs =
      List.init soak_net_per_tick (fun k ->
          Drivers.Net.Async.send net (latency_net_frame (!frames_sent + k)))
    in
    List.iter (Drivers.Net.Async.await net) rqs;
    Drivers.Net.Async.drain net;
    let sent = Hwsim.Ne2000.take_transmitted m.nic in
    if List.length sent <> soak_net_per_tick then
      async_fail "soak-net: tick %d transmitted %d of %d frames" t
        (List.length sent) soak_net_per_tick
    else
      List.iteri
        (fun k f ->
          async_verify ~row:"soak-net"
            ~what:(Printf.sprintf "tick %d frame %d" t k)
            (Bytes.of_string (latency_net_frame (!frames_sent + k)))
            (Bytes.of_string f))
        sent;
    frames_sent := !frames_sent + soak_net_per_tick;
    (* Sync foreground traffic: UART variable and structure reads. *)
    for _ = 1 to soak_uart_per_tick do
      ignore (Machine.Instance.get m.uart_dev "parity_mode")
    done;
    Machine.Instance.get_struct m.uart_dev "line_status";
    (* One telemetry tick closes the window. *)
    Machine.telemetry_tick m;
    let completions_after =
      Devil_runtime.Metrics.count metrics "sched.queue.completions"
    in
    if completions_after <= completions_before then
      async_fail "soak: tick %d completed no queued requests" t
  done;
  let report = Machine.health m in
  if not (Devil_runtime.Health.is_ok report) then
    async_fail "soak: health verdict %s"
      (Devil_runtime.Health.summary report);
  let openmetrics =
    Devil_runtime.Trace_export.to_openmetrics ~health:report ~telemetry
      metrics
  in
  (* The artifact keeps the scheduler/bus/IO aggregate rates; the
     per-register counters stay in the series dump, where the full
     registry belongs. *)
  let rate_prefixes = [ "sched."; "bus."; "io."; "trace."; "cache." ] in
  let rates =
    List.filter
      (fun name ->
        List.exists
          (fun p ->
            String.length name >= String.length p
            && String.sub name 0 (String.length p) = p)
          rate_prefixes)
      (Devil_runtime.Telemetry.counter_names telemetry)
    |> List.map (fun name ->
           let points = Devil_runtime.Telemetry.counter_series telemetry name in
           let total, last_delta =
             match List.rev points with
             | (p : Devil_runtime.Telemetry.counter_point) :: _ ->
                 (p.total, p.delta)
             | [] -> (0, 0)
           in
           (name, total, last_delta, float_of_int total /. float_of_int !ticks))
  in
  let windows =
    List.map
      (fun name ->
        let last =
          match
            List.rev (Devil_runtime.Telemetry.hist_series telemetry name)
          with
          | (p : Devil_runtime.Telemetry.hist_point) :: _ -> p
          | [] ->
              {
                Devil_runtime.Telemetry.h_at = 0;
                h_count = 0;
                h_sum = 0;
                h_p50 = 0;
                h_p95 = 0;
                h_p99 = 0;
              }
        in
        (name, last))
      (Devil_runtime.Telemetry.hist_names telemetry)
  in
  let evictions = Devil_runtime.Telemetry.evictions telemetry in
  (* Console summary: the dashboard's numbers, once. *)
  Format.printf "%d tick(s), %d counter series, %d histogram series@." !ticks
    (List.length (Devil_runtime.Telemetry.counter_names telemetry))
    (List.length windows);
  Format.printf "  %-36s %10s %12s %14s@." "counter" "total" "last delta"
    "mean per tick";
  List.iter
    (fun (name, total, last_delta, mean) ->
      Format.printf "  %-36s %10d %12d %14.3f@." name total last_delta mean)
    rates;
  Format.printf "  %-36s %8s %10s %10s %10s@." "histogram (last window)"
    "count" "p50" "p95" "p99";
  List.iter
    (fun (name, (p : Devil_runtime.Telemetry.hist_point)) ->
      Format.printf "  %-36s %8d %10d %10d %10d@." name p.h_count p.h_p50
        p.h_p95 p.h_p99)
    windows;
  Format.printf "health: %s; series evictions: %d@."
    (Devil_runtime.Health.summary report)
    evictions;
  (* The JSON artifact benchcheck telemetry validates. *)
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf "  \"suite\": \"devil_pr10_telemetry\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"ticks\": %d,\n" !ticks);
  Buffer.add_string buf
    (Printf.sprintf "  \"ring_capacity\": %d,\n"
       (Devil_runtime.Telemetry.capacity telemetry));
  Buffer.add_string buf
    (Printf.sprintf "  \"series_evictions\": %d,\n" evictions);
  Buffer.add_string buf "  \"rates\": [\n";
  let nr = List.length rates in
  List.iteri
    (fun i (name, total, last_delta, mean) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"metric\": %S, \"total\": %d, \"last_delta\": %d, \
            \"mean_per_tick\": %.3f }%s\n"
           name total last_delta mean
           (if i = nr - 1 then "" else ",")))
    rates;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"windows\": [\n";
  let nw = List.length windows in
  List.iteri
    (fun i (name, (p : Devil_runtime.Telemetry.hist_point)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"metric\": %S, \"count\": %d, \"sum\": %d, \"p50\": %d, \
            \"p95\": %d, \"p99\": %d }%s\n"
           name p.h_count p.h_sum p.h_p50 p.h_p95 p.h_p99
           (if i = nw - 1 then "" else ",")))
    windows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"health\": %s,\n"
       (Devil_runtime.Health.to_json report));
  Buffer.add_string buf
    (Printf.sprintf "  \"openmetrics\": %S\n" openmetrics);
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." !out;
  (match !series_out with
  | None -> ()
  | Some path ->
      Devil_runtime.Trace_export.write_file path
        (Devil_runtime.Trace_export.series_to_jsonl telemetry);
      Format.printf "wrote %s@." path);
  (match !om_out with
  | None -> ()
  | Some path ->
      Devil_runtime.Trace_export.write_file path openmetrics;
      Format.printf "wrote %s@." path);
  match !async_failures with
  | [] -> ()
  | fs ->
      List.iter (Format.eprintf "soak invariant violated: %s@.") (List.rev fs);
      exit 1

(* {1 bench profile: per-workload span attribution (DESIGN.md §11)}

   Runs each PR-3 workload on a profiler-instrumented machine and
   reports where the time went: measured ns/op from the monotonic span
   clock vs the calibrated §4 cost model, the share of wall time
   attributed to spans (self time summed over the call-path trie equals
   the root total by construction — the column guards the aggregation),
   and the top self-time sites with their latency percentiles.

     --json      deterministic counts-only JSON (sorted site keys and
                 call counts, no timings) — pinned as
                 test/golden/bench_profile.json
     --iters N   hot-loop iterations per workload (default 100)
     --out DIR   also write DIR/<workload>.folded (flamegraph.pl) and
                 DIR/<workload>.speedscope.json (speedscope.app) *)

let profile_usage () =
  Format.eprintf
    "usage: bench profile [--json] [--iters N] [--out DIR] [workload ...]@.";
  Format.eprintf "workloads: %s@."
    (String.concat ", " (List.map fst pr3_workloads))

let profile_workload ~iters name wl =
  let profile = Devil_runtime.Profile.create () in
  let m = Machine.create ~profile () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve (fun () ->
      let run = wl m in
      (* warm the idempotent caches: attribute the steady state only *)
      run ();
      Devil_runtime.Profile.reset profile;
      Devil_runtime.Profile.span profile ("driver:" ^ name) (fun () ->
          for _ = 1 to iters do
            run ()
          done);
      profile)

let profile_export ~dir name p =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    path
  in
  let folded =
    write
      (Filename.concat dir (name ^ ".folded"))
      (Devil_runtime.Trace_export.profile_to_folded p)
  in
  let speedscope =
    write
      (Filename.concat dir (name ^ ".speedscope.json"))
      (Devil_runtime.Trace_export.profile_to_speedscope ~name:("devil " ^ name)
         p)
  in
  [ folded; speedscope ]

let profile_json ~iters selected =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"suite\": \"devil_pr5_span_profiler\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"iters\": %d,\n" iters);
  Buffer.add_string buf "  \"workloads\": [\n";
  let n_wl = List.length selected in
  List.iteri
    (fun i (name, wl) ->
      let p = profile_workload ~iters name wl in
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": %S, \"root\": %S, \"sites\": [\n" name
           ("driver:" ^ name));
      let sites = Devil_runtime.Profile.sites p in
      let n_sites = List.length sites in
      List.iteri
        (fun j (key, (s : Devil_runtime.Profile.site_stats)) ->
          Buffer.add_string buf
            (Printf.sprintf "      { \"key\": %S, \"calls\": %d }%s\n" key
               s.calls
               (if j = n_sites - 1 then "" else ",")))
        sites;
      Buffer.add_string buf
        (Printf.sprintf "    ] }%s\n" (if i = n_wl - 1 then "" else ","))
      )
    selected;
  Buffer.add_string buf "  ]\n}\n";
  print_string (Buffer.contents buf)

let profile_table ~iters ~out_dir selected =
  section "Span profile: hierarchical latency attribution";
  Format.printf "%-12s %8s %15s %15s %11s@." "workload" "iters" "measured ns/op"
    "modeled ns/op" "attributed";
  List.iter
    (fun (name, wl) ->
      let modeled_ns = modeled_us_per_op wl *. 1e3 in
      let p = profile_workload ~iters name wl in
      let total = Devil_runtime.Profile.total_ns p in
      let attributed = Devil_runtime.Profile.attributed_ns p in
      let pct =
        if total > 0 then 100.0 *. float_of_int attributed /. float_of_int total
        else 100.0
      in
      Format.printf "%-12s %8d %15.1f %15.1f %10.1f%%@." name iters
        (float_of_int total /. float_of_int iters)
        modeled_ns pct;
      let top =
        Devil_runtime.Profile.sites p
        |> List.filter (fun (_, s) -> s.Devil_runtime.Profile.self_ns > 0)
        |> List.sort (fun (_, a) (_, b) ->
               compare b.Devil_runtime.Profile.self_ns
                 a.Devil_runtime.Profile.self_ns)
        |> List.filteri (fun i _ -> i < 8)
      in
      Format.printf "  %-42s %9s %12s %8s %8s %8s@." "top self-time sites"
        "calls" "self ns" "p50" "p95" "p99";
      List.iter
        (fun (key, (s : Devil_runtime.Profile.site_stats)) ->
          Format.printf "  %-42s %9d %12d %8d %8d %8d@." key s.calls s.self_ns
            s.p50_ns s.p95_ns s.p99_ns)
        top;
      (match out_dir with
      | None -> ()
      | Some dir ->
          List.iter (Format.printf "  wrote %s@.") (profile_export ~dir name p));
      Format.printf "@.")
    selected

let profile_cmd args =
  let json = ref false in
  let iters = ref 100 in
  let out_dir = ref None in
  let names = ref [] in
  let bad fmt =
    Format.kasprintf
      (fun s ->
        Format.eprintf "bench profile: %s@." s;
        profile_usage ();
        exit 1)
      fmt
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | [ "--iters" ] -> bad "--iters needs a value"
    | "--iters" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> iters := n
        | _ -> bad "bad --iters value %S" v);
        parse rest
    | [ "--out" ] -> bad "--out needs a value"
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        bad "unknown option %s" arg
    | arg :: rest ->
        names := arg :: !names;
        parse rest
  in
  parse args;
  let selected =
    match List.rev !names with
    | [] -> pr3_workloads
    | picks ->
        List.map
          (fun n ->
            match List.assoc_opt n pr3_workloads with
            | Some wl -> (n, wl)
            | None -> bad "unknown workload %s" n)
          picks
  in
  if !json then profile_json ~iters:!iters selected
  else profile_table ~iters:!iters ~out_dir:!out_dir selected

(* {1 bench explore: bounded exhaustive exploration (ISSUE 6)}

   Enumerates every fault/policy schedule of each selected workload
   within the bound, reporting schedules/s and violations (exit 1 on
   any). [--seeded-bug] runs the deliberately weakened serial workload
   through the full find -> shrink -> tape pipeline instead:
   [--pin] prints the minimized counterexample tape JSONL (the fixture
   generator), [--fixture F] checks the pipeline still reproduces the
   committed fixture byte for byte and that the fixture replays. *)

module Excamp = Explorecamp.Excamp

let explore_usage () =
  Format.eprintf
    "usage: bench explore [--driver D]... [--depth N] [--budget N] [--sites \
     N]@.                     [--no-policy] [--max-violations N] [--out \
     DIR]@.       bench explore --seeded-bug [--pin | --fixture FILE]@.  \
     drivers: %s (default: ide-read gfx)@."
    (String.concat " " Faultcamp.Campaign.driver_workloads)

let write_counterexample ~out name i cx =
  match out with
  | None -> ()
  | Some dir ->
      let base = Filename.concat dir (Printf.sprintf "%s-cx%d" name i) in
      let tape_path = base ^ ".tape.jsonl" in
      Devil_runtime.Trace_export.write_file tape_path
        (Devil_runtime.Trace_export.tape_to_jsonl cx.Excamp.cx_tape);
      Devil_runtime.Trace_export.write_file (base ^ ".trace.jsonl")
        (Devil_runtime.Trace_export.events_to_jsonl cx.Excamp.cx_events);
      Format.printf "  wrote %s@." tape_path

let explore_one ~bound ~max_violations ~out name =
  let w = Excamp.builtin name in
  let t0 = Sys.time () in
  let r = Excamp.explore_workload ~bound ~max_violations w in
  let dt = Sys.time () -. t0 in
  let runs = r.Excamp.r_report.Devil_runtime.Explore.rp_runs in
  Format.printf "%a@." Excamp.pp_result r;
  Format.printf "  %d schedules in %.2fs (%.0f schedules/s)@." runs dt
    (if dt > 0. then float_of_int runs /. dt else 0.);
  List.iteri
    (fun i cx ->
      Format.printf "%a@." Excamp.pp_counterexample cx;
      write_counterexample ~out name i cx)
    r.Excamp.r_counterexamples;
  Format.printf "@.";
  List.length r.Excamp.r_counterexamples

(* The seeded-bug bound: one site (the THR), transient faults only —
   the schedule space the acceptance criteria name. *)
let seeded_bound =
  {
    Excamp.default_bound with
    Excamp.b_depth = 8;
    b_budget = 2;
    b_sites = 1;
    b_policy_axes = false;
  }

let seeded_bug_cx () =
  let r = Excamp.explore_workload ~bound:seeded_bound ~max_violations:1
      Excamp.seeded_bug
  in
  match r.Excamp.r_counterexamples with
  | cx :: _ -> (r, cx)
  | [] ->
      Format.eprintf
        "bench explore: the seeded regression was NOT found within %a@."
        Excamp.pp_bound seeded_bound;
      exit 1

let explore_seeded ~pin ~fixture ~out =
  let r, cx = seeded_bug_cx () in
  let jsonl = Devil_runtime.Trace_export.tape_to_jsonl cx.Excamp.cx_tape in
  if pin then begin
    (* fixture generator: nothing but the tape on stdout *)
    print_string jsonl;
    0
  end
  else begin
    Format.printf "%a@.%a@." Excamp.pp_result r Excamp.pp_counterexample cx;
    write_counterexample ~out "seeded-bug" 0 cx;
    let failed = ref false in
    (match fixture with
    | None -> ()
    | Some path -> (
        match Devil_runtime.Trace_export.tape_of_file path with
        | Error why ->
            Format.printf "FAIL: fixture %s unreadable: %s@." path why;
            failed := true
        | Ok tape ->
            if Devil_runtime.Trace_export.tape_to_jsonl tape <> jsonl then begin
              Format.printf
                "FAIL: minimized tape differs from the committed fixture %s@."
                path;
              failed := true
            end
            else
              Format.printf "ok: minimized tape matches the fixture %s@." path));
    let rr = Excamp.replay_counterexample Excamp.seeded_bug cx in
    if rr.Excamp.rr_tape_identical then
      Format.printf "ok: replayed byte-identically (replay verdict: %s)@."
        rr.Excamp.rr_verdict
    else begin
      Format.printf "FAIL: replay diverged: %s@."
        (Option.value ~default:"re-recorded tape differs"
           rr.Excamp.rr_divergence);
      failed := true
    end;
    if !failed then 1 else 0
  end

let explore_cmd args =
  let drivers = ref [] in
  let bound = ref Excamp.default_bound in
  let max_violations = ref 4 in
  let out = ref None in
  let seeded = ref false in
  let pin = ref false in
  let fixture = ref None in
  let bad fmt =
    Format.kasprintf
      (fun s ->
        Format.eprintf "bench explore: %s@." s;
        explore_usage ();
        exit 1)
      fmt
  in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some n when n > 0 -> k n
    | _ -> bad "bad %s value %S" name v
  in
  let rec parse = function
    | [] -> ()
    | [ ("--driver" | "--depth" | "--budget" | "--sites" | "--max-violations"
        | "--out" | "--fixture" as o) ] ->
        bad "option %s needs a value" o
    | "--driver" :: d :: rest ->
        if not (List.mem d Faultcamp.Campaign.driver_workloads) then
          bad "unknown driver %s" d;
        drivers := d :: !drivers;
        parse rest
    | "--depth" :: v :: rest ->
        int_arg "--depth" v (fun n -> bound := { !bound with Excamp.b_depth = n });
        parse rest
    | "--budget" :: v :: rest ->
        int_arg "--budget" v (fun n -> bound := { !bound with Excamp.b_budget = n });
        parse rest
    | "--sites" :: v :: rest ->
        int_arg "--sites" v (fun n -> bound := { !bound with Excamp.b_sites = n });
        parse rest
    | "--max-violations" :: v :: rest ->
        int_arg "--max-violations" v (fun n -> max_violations := n);
        parse rest
    | "--no-policy" :: rest ->
        bound := { !bound with Excamp.b_policy_axes = false };
        parse rest
    | "--out" :: dir :: rest ->
        out := Some dir;
        parse rest
    | "--seeded-bug" :: rest ->
        seeded := true;
        parse rest
    | "--pin" :: rest ->
        pin := true;
        parse rest
    | "--fixture" :: f :: rest ->
        fixture := Some f;
        parse rest
    | arg :: _ -> bad "unknown argument %s" arg
  in
  parse args;
  (match !out with
  | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  | None -> ());
  let code =
    if !seeded then explore_seeded ~pin:!pin ~fixture:!fixture ~out:!out
    else begin
      let drivers =
        match List.rev !drivers with [] -> [ "ide-read"; "gfx" ] | ds -> ds
      in
      let violations =
        List.fold_left
          (fun n d ->
            n
            + explore_one ~bound:!bound ~max_violations:!max_violations
                ~out:!out d)
          0 drivers
      in
      if violations = 0 then begin
        Format.printf "explore: zero violations within the stated bound@.";
        0
      end
      else begin
        Format.printf "explore: %d violation(s) found@." violations;
        1
      end
    end
  in
  exit code

(* {1 The generated harness battery (DESIGN.md §14)} *)

let harness_usage () =
  Format.eprintf
    "usage: bench harness [--qcount N] [--threshold PCT] [--missed]@.";
  exit 1

let harness_cmd args =
  let qcount = ref 10 in
  let threshold = ref 90.0 in
  let missed = ref false in
  let bad fmt =
    Format.kasprintf
      (fun s ->
        Format.eprintf "bench harness: %s@." s;
        harness_usage ())
      fmt
  in
  let rec parse = function
    | [] -> ()
    | [ ("--qcount" | "--threshold") as o ] -> bad "option %s needs a value" o
    | "--qcount" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 ->
            qcount := n;
            parse rest
        | _ -> bad "bad --qcount value %S" v)
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 100.0 ->
            threshold := p;
            parse rest
        | _ -> bad "bad --threshold value %S" v)
    | "--missed" :: rest ->
        missed := true;
        parse rest
    | arg :: _ -> bad "unknown argument %s" arg
  in
  parse args;
  section "Generated per-spec harness battery";
  Format.printf
    "Every battery below is derived from the compiled IR and its site \
     universe@.(Devil_ir.Sites) — zero per-spec harness code.@.@.";
  let reports = Specharness.Battery.run_all ~qcount:!qcount () in
  let failures =
    List.filter_map
      (fun r ->
        Format.printf "%a@." Specharness.Battery.pp_report r;
        if !missed then
          Format.printf "%a"
            Devil_runtime.Coverage.pp_missed
            r.Specharness.Battery.bt_coverage;
        match Specharness.Battery.gate ~threshold:!threshold r with
        | Ok () -> None
        | Error e -> Some e)
      reports
  in
  Format.printf "@.";
  if failures = [] then begin
    Format.printf
      "harness: %d specs, all register-coverage gates >= %.1f%%, zero \
       divergences, zero fault violations@."
      (List.length reports) !threshold;
    exit 0
  end
  else begin
    List.iter (fun e -> Format.printf "harness FAIL: %s@." e) failures;
    exit 1
  end

let () =
  let artifacts =
    [
      ("table1", table1);
      ("table2", table2);
      ("table3", table3);
      ("table4", table4);
      ("census", census);
      ("micro", micro);
      ("ablation", ablation);
      ("faultcamp", faultcamp);
      ("obs", obs);
      ("obs-json", obs_json);
      ("bechamel", bechamel_suite);
      ("benchjson", benchjson);
    ]
  in
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | "profile" :: rest -> profile_cmd rest
  | "explore" :: rest -> explore_cmd rest
  | "async" :: rest -> async_cmd rest
  | "latency" :: rest -> latency_cmd rest
  | "soak" :: rest -> soak_cmd rest
  | "harness" :: rest -> harness_cmd rest
  | [] ->
      Format.printf
        "Devil (OSDI 2000) reproduction: regenerating every evaluation \
         artifact.@.";
      List.iter (fun (_, f) -> f ()) artifacts
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f -> f ()
          | None ->
              Format.eprintf "unknown artifact %s (have: %s)@." name
                (String.concat ", " (List.map fst artifacts));
              exit 1)
        names
