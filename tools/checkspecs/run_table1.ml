let () =
  (* [--pin] prints the table alone, with no timing line, so the output
     is byte-for-byte deterministic — the golden regression under
     test/golden/ diffs it against table1.expected on every runtest. *)
  let pin = Array.exists (String.equal "--pin") Sys.argv in
  let t0 = Unix.gettimeofday () in
  let reports = Mutation.Analysis.table1 () in
  Format.printf "%a" Mutation.Analysis.pp_table1 reports;
  if not pin then
    Printf.printf "elapsed: %.1fs\n" (Unix.gettimeofday () -. t0)
