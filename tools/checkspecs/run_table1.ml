let () =
  (* [--pin] prints the table alone, with no timing line, so the output
     is byte-for-byte deterministic — the golden regression under
     test/golden/ diffs it against table1.expected on every runtest. *)
  let pin = Array.exists (String.equal "--pin") Sys.argv in
  let t0 = Unix.gettimeofday () in
  let reports = Mutation.Analysis.table1 () in
  Format.printf "%a" Mutation.Analysis.pp_table1 reports;
  (* Runtime reach of the mutated specifications: Table 1 counts what
     the static checkers catch; the coverage lines below bound what a
     runtime detector could add. A standard driver workload is traced
     against each spec of the table and mapped onto its coverable
     sites (Devil_ir.Sites.universe) — a mutation at a site the
     workload never exercises is invisible to any amount of runtime
     checking, so the covered fraction is the ceiling on dynamic
     detection. Deterministic, hence part of the pinned golden
     output. *)
  let module Trace = Devil_runtime.Trace in
  let module Coverage = Devil_runtime.Coverage in
  let module Machine = Drivers.Machine in
  let trace = Trace.create ~capacity:64 () in
  let covs =
    List.map
      (fun (dev, device) ->
        let c = Coverage.create ~dev device in
        Coverage.attach c trace;
        c)
      [
        ("mouse", Devil_specs.Specs.busmouse ());
        ("ide", Devil_specs.Specs.ide ());
        ("ne2000", Devil_specs.Specs.ne2000 ());
        ("uart", Devil_specs.Specs.uart16550 ());
      ]
  in
  let m = Machine.create ~trace () in
  Fun.protect ~finally:Devil_runtime.Policy.unobserve (fun () ->
      let mouse = Drivers.Mouse.Devil_driver.create m.mouse_dev in
      ignore (Drivers.Mouse.Devil_driver.read_state mouse);
      let ide =
        Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev
      in
      Drivers.Ide.Devil_driver.set_features ide 0;
      let data =
        Drivers.Ide.Devil_driver.read_sectors ide ~lba:0 ~count:2 ~mult:1
          ~path:`Block ~width:`W16
      in
      ignore (Drivers.Ide.Devil_driver.read_task_file ide);
      Drivers.Ide.Devil_driver.write_sectors ide ~lba:8 ~count:2 ~mult:1
        ~path:`Block ~width:`W16 data;
      let n = Drivers.Net.Devil_driver.create m.ne2000_dev in
      Drivers.Net.Devil_driver.init_loopback n ~mac:"\x02\x00\x00\x00\x00\x01";
      Drivers.Net.Devil_driver.send n (String.make 64 'x');
      ignore (Drivers.Net.Devil_driver.receive n);
      let u = Drivers.Serial.Devil_driver.create m.uart_dev in
      Drivers.Serial.Devil_driver.init u ~baud:115200;
      ignore (Drivers.Serial.Devil_driver.self_test u));
  Format.printf "@.workload reach over the mutated specifications:@.";
  List.iter
    (fun c -> Format.printf "  %a@." Coverage.pp_report (Coverage.report c))
    covs;
  if not pin then
    Printf.printf "elapsed: %.1fs\n" (Unix.gettimeofday () -. t0)
