(* Schema validator and regression gate for the benchmark artifacts
   (BENCH_pr3.json, BENCH_pr5.json, ...).

   Usage:
     benchcheck FILE [--require-speedup]
     benchcheck compare OLD.json NEW.json [--max-regression PCT]
     benchcheck speedscope FILE
     benchcheck async FILE
     benchcheck latency FILE
     benchcheck latency OLD.json NEW.json [--max-regression PCT]

   The first form checks that FILE is well-formed JSON matching the
   DESIGN.md §9 schema: a schema_version-1 object whose "workloads"
   array carries every expected (workload, engine) pair with a
   numeric-or-null ns_per_op and a non-negative modeled_us. With
   [--require-speedup] it additionally asserts the acceptance
   criterion — the compiled engine strictly faster than the
   interpreter on the register get and set workloads (so it needs real
   estimates, not a smoke run's nulls).

   [compare] is the perf-regression gate (DESIGN.md §11): for every
   (workload, engine) pair with a real estimate in BOTH files, fail
   (exit 1) when NEW's ns/op exceeds OLD's by more than PCT percent
   (default 10). Null estimates are skipped; at least one comparable
   pair is required.

   [async] validates a `bench async` artifact (suite devil_pr7_async)
   and gates the queued-driver acceptance: ide-queued-dma at >= 2.0x
   the polling row's sustainable command rate, net-burst-rx no slower
   than its polling counterpart.

   [latency] validates a `bench latency` artifact (suite
   devil_pr9_latency) and gates the lifecycle acceptance: every
   submitted request completed, zero orphans, zero late completions,
   an "ok" embedded health verdict, and monotone per-stage
   percentiles (p50 <= p95 <= p99). The two-file form is the latency
   regression gate: fail (exit 1) when a (workload, stage) p99
   grows by more than PCT percent (default 25 — wall-clock
   nanoseconds are noisier than the modeled ns/op `compare` gates).

   [speedscope] validates a Trace_export.profile_to_speedscope file
   against the speedscope JSON expectations: the $schema URL, interned
   frames, and per-profile type/unit plus samples/weights arrays of
   equal length whose frame indices are in range.

   Exit codes: 0 ok, 1 failed check or malformed artifact, 2 usage.

   The parser below is a deliberately small recursive-descent JSON
   reader — the toolchain has no JSON library baked in, and the
   checker needs only enough JSON to falsify a malformed artifact. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

module Parse = struct
  type st = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | Some c' -> bad "offset %d: expected '%c', found '%c'" st.pos c c'
    | None -> bad "offset %d: expected '%c', found end of input" st.pos c

  let literal st word value =
    String.iter (fun c -> expect st c) word;
    value

  let string_body st =
    (* Called after the opening quote. The artifact writer only emits
       %S-escaped strings, so the escapes handled here cover it. *)
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> bad "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
          advance st;
          match peek st with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char b c;
              advance st;
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance st;
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance st;
              go ()
          | Some c -> bad "unsupported escape '\\%c'" c
          | None -> bad "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance st;
          go ()
    in
    go ();
    Buffer.contents b

  let number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec go () =
      match peek st with
      | Some c when is_num_char c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub st.s start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> bad "offset %d: bad number %S" start text

  let rec value st =
    skip_ws st;
    match peek st with
    | Some '{' -> obj st
    | Some '[' -> arr st
    | Some '"' ->
        advance st;
        Str (string_body st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('-' | '0' .. '9') -> number st
    | Some c -> bad "offset %d: unexpected '%c'" st.pos c
    | None -> bad "unexpected end of input"

  and obj st =
    expect st '{';
    skip_ws st;
    match peek st with
    | Some '}' ->
        advance st;
        Obj []
    | _ ->
        let rec members acc =
          skip_ws st;
          expect st '"';
          let key = string_body st in
          skip_ws st;
          expect st ':';
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((key, v) :: acc))
          | _ -> bad "offset %d: expected ',' or '}'" st.pos
        in
        members []

  and arr st =
    expect st '[';
    skip_ws st;
    match peek st with
    | Some ']' ->
        advance st;
        Arr []
    | _ ->
        let rec elements acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> bad "offset %d: expected ',' or ']'" st.pos
        in
        elements []

  let document s =
    let st = { s; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length s then bad "trailing garbage at offset %d" st.pos;
    v
end

(* {1 Schema checks} *)

let field name = function
  | Obj members -> (
      match List.assoc_opt name members with
      | Some v -> v
      | None -> bad "missing field %S" name)
  | _ -> bad "expected an object around field %S" name

let num name v =
  match field name v with
  | Num f -> f
  | _ -> bad "field %S must be a number" name

let str name v =
  match field name v with
  | Str s -> s
  | _ -> bad "field %S must be a string" name

let expected_workloads =
  [
    "reg_get";
    "reg_set";
    "reg_get_h";
    "reg_set_h";
    "struct_read";
    "block_write";
    "ide_read";
    "gfx_fill";
  ]

let engines = [ "compiled"; "interpreted" ]

let suites = [ "devil_pr3_access_plans"; "devil_pr5_span_profiler" ]

let validate ~require_speedup doc =
  if num "schema_version" doc <> 1.0 then bad "schema_version must be 1";
  if not (List.mem (str "suite" doc) suites) then
    bad "suite must be one of: %s" (String.concat ", " suites);
  if num "quota_s" doc <= 0.0 then bad "quota_s must be positive";
  if num "limit" doc < 1.0 then bad "limit must be at least 1";
  let rows =
    match field "workloads" doc with
    | Arr rows -> rows
    | _ -> bad "field \"workloads\" must be an array"
  in
  (* ns_per_op per (workload, engine); None for a smoke run's null. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let name = str "name" row and engine = str "engine" row in
      if not (List.mem name expected_workloads) then
        bad "unknown workload %S" name;
      if not (List.mem engine engines) then bad "unknown engine %S" engine;
      if Hashtbl.mem seen (name, engine) then
        bad "duplicate row for %s/%s" name engine;
      let ns =
        match field "ns_per_op" row with
        | Null -> None
        | Num f when f >= 0.0 -> Some f
        | Num _ -> bad "%s/%s: ns_per_op must be non-negative" name engine
        | _ -> bad "%s/%s: ns_per_op must be a number or null" name engine
      in
      if num "modeled_us" row < 0.0 then
        bad "%s/%s: modeled_us must be non-negative" name engine;
      Hashtbl.add seen (name, engine) ns)
    rows;
  List.iter
    (fun name ->
      List.iter
        (fun engine ->
          if not (Hashtbl.mem seen (name, engine)) then
            bad "missing row for %s/%s" name engine)
        engines)
    expected_workloads;
  if require_speedup then
    List.iter
      (fun name ->
        match
          (Hashtbl.find seen (name, "compiled"),
           Hashtbl.find seen (name, "interpreted"))
        with
        | Some c, Some i when c < i -> ()
        | Some c, Some i ->
            bad "%s: compiled (%.1f ns) not faster than interpreter (%.1f ns)"
              name c i
        | _ -> bad "%s: --require-speedup needs real estimates, found null" name)
      [ "reg_get"; "reg_set"; "reg_get_h"; "reg_set_h" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* {1 compare: the perf-regression gate} *)

let ns_rows doc =
  let rows =
    match field "workloads" doc with
    | Arr rows -> rows
    | _ -> bad "field \"workloads\" must be an array"
  in
  List.filter_map
    (fun row ->
      let name = str "name" row and engine = str "engine" row in
      match field "ns_per_op" row with
      | Num f when f >= 0.0 -> Some ((name, engine), f)
      | Null -> None
      | Num _ -> bad "%s/%s: ns_per_op must be non-negative" name engine
      | _ -> bad "%s/%s: ns_per_op must be a number or null" name engine)
    rows

let compare_cmd ~old_path ~new_path ~max_pct =
  let olds = ns_rows (Parse.document (read_file old_path)) in
  let news = ns_rows (Parse.document (read_file new_path)) in
  let shared =
    List.filter_map
      (fun (key, old_ns) ->
        Option.map (fun new_ns -> (key, old_ns, new_ns)) (List.assoc_opt key news))
      olds
  in
  if shared = [] then
    bad "no (workload, engine) pair has a real estimate in both files";
  Printf.printf "%-14s %-12s %12s %12s %9s\n" "workload" "engine" "old ns/op"
    "new ns/op" "delta";
  let regressions =
    List.fold_left
      (fun acc ((name, engine), old_ns, new_ns) ->
        let delta_pct = 100.0 *. (new_ns -. old_ns) /. old_ns in
        let regressed = new_ns > old_ns *. (1.0 +. (max_pct /. 100.0)) in
        Printf.printf "%-14s %-12s %12.1f %12.1f %+8.1f%%%s\n" name engine
          old_ns new_ns delta_pct
          (if regressed then "  REGRESSED" else "");
        if regressed then acc + 1 else acc)
      0 shared
  in
  if regressions > 0 then (
    Printf.eprintf
      "%d workload(s) regressed by more than %.1f%% (%s -> %s)\n" regressions
      max_pct old_path new_path;
    exit 1);
  Printf.printf "ok: %d pair(s) within %.1f%% of %s\n" (List.length shared)
    max_pct old_path

(* {1 async: the queued-driver acceptance gate (DESIGN.md §13)} *)

let async_expected_rows =
  [ "ide-sync-poll"; "ide-queued-dma"; "net-poll-rx"; "net-burst-rx" ]

let async_cmd path =
  let doc = Parse.document (read_file path) in
  if num "schema_version" doc <> 1.0 then bad "schema_version must be 1";
  if str "suite" doc <> "devil_pr7_async" then
    bad "suite must be \"devil_pr7_async\"";
  if num "dma_latency" doc < 1.0 then bad "dma_latency must be at least 1";
  let rows =
    match field "rows" doc with
    | Arr rows -> rows
    | _ -> bad "field \"rows\" must be an array"
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let name = str "name" row in
      if not (List.mem name async_expected_rows) then
        bad "unknown row %S" name;
      if Hashtbl.mem seen name then bad "duplicate row %S" name;
      if num "ops" row < 1.0 then bad "%s: ops must be at least 1" name;
      List.iter
        (fun f ->
          if num f row < 0.0 then bad "%s: %s must be non-negative" name f)
        [
          "singles_per_op"; "block_per_op"; "irqs_per_op"; "wait_ticks_per_op";
          "p99_wait_ticks";
        ];
      if num "cpu_us_per_op" row <= 0.0 then
        bad "%s: cpu_us_per_op must be positive" name;
      if num "ops_per_s" row <= 0.0 then bad "%s: ops_per_s must be positive" name;
      let ratio =
        match field "ratio_vs_sync" row with
        | Null -> None
        | Num f when f > 0.0 -> Some f
        | Num _ -> bad "%s: ratio_vs_sync must be positive" name
        | _ -> bad "%s: ratio_vs_sync must be a number or null" name
      in
      Hashtbl.add seen name ratio)
    rows;
  List.iter
    (fun name ->
      if not (Hashtbl.mem seen name) then bad "missing row %S" name)
    async_expected_rows;
  (* The acceptance criterion: queued DMA sustains at least twice the
     polling driver's command rate under the same cost model. *)
  (match Hashtbl.find seen "ide-queued-dma" with
  | Some r when r >= 2.0 -> ()
  | Some r ->
      bad "ide-queued-dma: %.2fx vs ide-sync-poll, acceptance needs >= 2.0x" r
  | None -> bad "ide-queued-dma: ratio_vs_sync must be a real number");
  (match Hashtbl.find seen "net-burst-rx" with
  | Some r when r >= 1.0 -> ()
  | Some r ->
      bad "net-burst-rx: %.2fx vs net-poll-rx, must not be slower than polling"
        r
  | None -> bad "net-burst-rx: ratio_vs_sync must be a real number");
  let ide_ratio = Option.get (Hashtbl.find seen "ide-queued-dma") in
  Printf.printf "%s: ok (ide-queued-dma %.2fx vs sync poll)\n" path ide_ratio

(* {1 latency: the request-lifecycle acceptance gate (DESIGN.md §15)} *)

let latency_workloads = [ ("ide-dma-async", "ide"); ("net-async", "ne2000") ]
let latency_stages = [ "queue_wait"; "service"; "irq_delivery"; "completion"; "total" ]

(* [irq_delivery] is optional: coalesced interrupts (one raise
   covering several completions) leave some requests without both
   boundaries, and a histogram only exists once fed. *)
let latency_required_stages = [ "queue_wait"; "service"; "completion"; "total" ]

(* Validates the artifact and returns every ((workload, stage), p99)
   pair — the comparison key of the two-file regression gate. *)
let latency_rows doc =
  if num "schema_version" doc <> 1.0 then bad "schema_version must be 1";
  if str "suite" doc <> "devil_pr9_latency" then
    bad "suite must be \"devil_pr9_latency\"";
  if num "dma_latency" doc < 1.0 then bad "dma_latency must be at least 1";
  let wls =
    match field "workloads" doc with
    | Arr wls -> wls
    | _ -> bad "field \"workloads\" must be an array"
  in
  let seen = Hashtbl.create 4 in
  let p99s = ref [] in
  List.iter
    (fun w ->
      let name = str "name" w in
      (match List.assoc_opt name latency_workloads with
      | None -> bad "unknown workload %S" name
      | Some dev ->
          if str "dev" w <> dev then bad "%s: dev must be %S" name dev);
      if Hashtbl.mem seen name then bad "duplicate workload %S" name;
      Hashtbl.add seen name ();
      let requests = num "requests" w and completed = num "completed" w in
      if requests < 1.0 then bad "%s: requests must be at least 1" name;
      if completed <> requests then
        bad "%s: only %g of %g requests completed" name completed requests;
      List.iter
        (fun f ->
          if num f w <> 0.0 then
            bad "%s: %s must be 0 on a committed run (found %g)" name f
              (num f w))
        [ "orphans"; "lost_interrupts"; "spurious_completions" ];
      let verdict = str "verdict" (field "health" w) in
      if verdict <> "ok" then
        bad "%s: health verdict %S, a committed run must be \"ok\"" name
          verdict;
      let stages =
        match field "stages" w with
        | Arr stages -> stages
        | _ -> bad "%s: field \"stages\" must be an array" name
      in
      let seen_stages = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let stage = str "stage" s in
          if not (List.mem stage latency_stages) then
            bad "%s: unknown stage %S" name stage;
          if Hashtbl.mem seen_stages stage then
            bad "%s: duplicate stage %S" name stage;
          Hashtbl.add seen_stages stage ();
          if num "count" s < 1.0 then
            bad "%s/%s: count must be at least 1" name stage;
          let p50 = num "p50_ns" s
          and p95 = num "p95_ns" s
          and p99 = num "p99_ns" s in
          if p50 < 0.0 then bad "%s/%s: p50_ns must be non-negative" name stage;
          if not (p50 <= p95 && p95 <= p99) then
            bad "%s/%s: percentiles not monotone (p50 %g, p95 %g, p99 %g)"
              name stage p50 p95 p99;
          if num "mean_ns" s < 0.0 then
            bad "%s/%s: mean_ns must be non-negative" name stage;
          p99s := ((name, stage), p99) :: !p99s)
        stages;
      List.iter
        (fun stage ->
          if not (Hashtbl.mem seen_stages stage) then
            bad "%s: missing stage %S" name stage)
        latency_required_stages)
    wls;
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem seen name) then bad "missing workload %S" name)
    latency_workloads;
  List.rev !p99s

let latency_cmd path =
  let rows = latency_rows (Parse.document (read_file path)) in
  Printf.printf
    "%s: ok (%d workloads, %d stage histograms; all requests completed, \
     zero orphans, health ok)\n"
    path
    (List.length latency_workloads)
    (List.length rows)

let latency_compare_cmd ~old_path ~new_path ~max_pct =
  let olds = latency_rows (Parse.document (read_file old_path)) in
  let news = latency_rows (Parse.document (read_file new_path)) in
  let shared =
    List.filter_map
      (fun (key, old_p99) ->
        match List.assoc_opt key news with
        (* A zero p99 carries no baseline to regress against. *)
        | Some new_p99 when old_p99 > 0.0 -> Some (key, old_p99, new_p99)
        | _ -> None)
      olds
  in
  if shared = [] then
    bad "no (workload, stage) pair has a comparable p99 in both files";
  Printf.printf "%-14s %-13s %12s %12s %9s\n" "workload" "stage" "old p99 ns"
    "new p99 ns" "delta";
  let regressions =
    List.fold_left
      (fun acc ((name, stage), old_p99, new_p99) ->
        let delta_pct = 100.0 *. (new_p99 -. old_p99) /. old_p99 in
        let regressed = new_p99 > old_p99 *. (1.0 +. (max_pct /. 100.0)) in
        Printf.printf "%-14s %-13s %12.0f %12.0f %+8.1f%%%s\n" name stage
          old_p99 new_p99 delta_pct
          (if regressed then "  REGRESSED" else "");
        if regressed then acc + 1 else acc)
      0 shared
  in
  if regressions > 0 then (
    Printf.eprintf
      "%d (workload, stage) p99(s) regressed by more than %.1f%% (%s -> %s)\n"
      regressions max_pct old_path new_path;
    exit 1);
  Printf.printf "ok: %d pair(s) within %.1f%% of %s\n" (List.length shared)
    max_pct old_path

(* {1 speedscope: exporter-format validation} *)

let speedscope_cmd path =
  let doc = Parse.document (read_file path) in
  if str "$schema" doc <> "https://www.speedscope.app/file-format-schema.json"
  then bad "$schema must be the speedscope file-format-schema URL";
  let frames =
    match field "frames" (field "shared" doc) with
    | Arr frames -> frames
    | _ -> bad "shared.frames must be an array"
  in
  List.iteri
    (fun i f ->
      if str "name" f = "" then bad "shared.frames[%d]: empty frame name" i)
    frames;
  let n_frames = List.length frames in
  let profiles =
    match field "profiles" doc with
    | Arr (_ :: _ as ps) -> ps
    | Arr [] -> bad "profiles must be non-empty"
    | _ -> bad "field \"profiles\" must be an array"
  in
  List.iteri
    (fun i p ->
      if str "type" p <> "sampled" then bad "profiles[%d]: type must be \"sampled\"" i;
      if str "unit" p <> "nanoseconds" then
        bad "profiles[%d]: unit must be \"nanoseconds\"" i;
      let start_v = num "startValue" p and end_v = num "endValue" p in
      if end_v < start_v then bad "profiles[%d]: endValue < startValue" i;
      let samples =
        match field "samples" p with
        | Arr s -> s
        | _ -> bad "profiles[%d]: samples must be an array" i
      in
      let weights =
        match field "weights" p with
        | Arr w -> w
        | _ -> bad "profiles[%d]: weights must be an array" i
      in
      if List.length samples <> List.length weights then
        bad "profiles[%d]: %d samples but %d weights" i (List.length samples)
          (List.length weights);
      List.iteri
        (fun j s ->
          match s with
          | Arr stack ->
              if stack = [] then bad "profiles[%d].samples[%d]: empty stack" i j;
              List.iter
                (fun frame ->
                  match frame with
                  | Num f
                    when Float.is_integer f && f >= 0.0
                         && int_of_float f < n_frames ->
                      ()
                  | Num f ->
                      bad
                        "profiles[%d].samples[%d]: frame index %g out of range \
                         (%d frames)"
                        i j f n_frames
                  | _ ->
                      bad "profiles[%d].samples[%d]: frame index must be a number"
                        i j)
                stack
          | _ -> bad "profiles[%d].samples[%d]: must be a stack array" i j)
        samples;
      List.iteri
        (fun j w ->
          match w with
          | Num f when f >= 0.0 -> ()
          | _ -> bad "profiles[%d].weights[%d]: must be a non-negative number" i j)
        weights)
    profiles;
  Printf.printf "%s: ok (%d frames, %d profile(s))\n" path n_frames
    (List.length profiles)

(* {1 telemetry: the soak-series gate (DESIGN.md §16)} *)

let om_valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
       s

(* A syntax pass over the embedded Prometheus text exposition: every
   line must be a [# TYPE]/[# HELP]/[# EOF] comment or a
   [name{labels} value] sample, the terminator must be last. Not a
   full OpenMetrics parser — enough to catch an exporter emitting
   malformed names, missing values or a truncated document. *)
let check_openmetrics text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  if lines = [] then bad "openmetrics: empty document";
  let n = List.length lines in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | [ "#"; "EOF" ] ->
            if i <> n - 1 then
              bad "openmetrics line %d: \"# EOF\" before end of document"
                lineno
        | [ "#"; "TYPE"; name; kind ] ->
            if not (om_valid_name name) then
              bad "openmetrics line %d: bad metric name %S" lineno name;
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              bad "openmetrics line %d: unknown type %S" lineno kind
        | "#" :: "HELP" :: name :: _ :: _ ->
            if not (om_valid_name name) then
              bad "openmetrics line %d: bad metric name %S" lineno name
        | _ -> bad "openmetrics line %d: malformed comment %S" lineno line)
      else
        match String.rindex_opt line ' ' with
        | None -> bad "openmetrics line %d: sample has no value" lineno
        | Some sp ->
            let series = String.sub line 0 sp in
            let value =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            if float_of_string_opt value = None then
              bad "openmetrics line %d: value %S is not a number" lineno value;
            let name =
              match String.index_opt series '{' with
              | None -> series
              | Some b ->
                  if series.[String.length series - 1] <> '}' then
                    bad "openmetrics line %d: unterminated label set" lineno;
                  String.sub series 0 b
            in
            if not (om_valid_name name) then
              bad "openmetrics line %d: bad metric name %S" lineno name)
    lines;
  match List.rev lines with
  | last :: _ when last = "# EOF" -> ()
  | _ -> bad "openmetrics: document must end with \"# EOF\""

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let telemetry_cmd path =
  let doc = Parse.document (read_file path) in
  if num "schema_version" doc <> 1.0 then bad "schema_version must be 1";
  if str "suite" doc <> "devil_pr10_telemetry" then
    bad "suite must be \"devil_pr10_telemetry\"";
  let ticks = num "ticks" doc in
  if ticks < 1.0 then bad "ticks must be at least 1";
  if num "series_evictions" doc < 0.0 then
    bad "series_evictions must be non-negative";
  let rates =
    match field "rates" doc with
    | Arr r -> r
    | _ -> bad "field \"rates\" must be an array"
  in
  if rates = [] then bad "rates must be non-empty";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let metric = str "metric" r in
      if Hashtbl.mem seen metric then bad "duplicate rate for %S" metric;
      Hashtbl.add seen metric ();
      let total = num "total" r
      and last = num "last_delta" r
      and mean = num "mean_per_tick" r in
      if total < 0.0 then bad "%s: total must be non-negative" metric;
      if last < 0.0 then bad "%s: last_delta must be non-negative" metric;
      if mean < 0.0 then bad "%s: mean_per_tick must be non-negative" metric;
      if last > total then bad "%s: last_delta exceeds total" metric)
    rates;
  (* The point of a soak: the queue keeps completing work at a nonzero
     steady-state rate. *)
  (match
     List.find_opt (fun r -> str "metric" r = "sched.queue.completions") rates
   with
  | None -> bad "missing rate for \"sched.queue.completions\""
  | Some r ->
      if num "mean_per_tick" r <= 0.0 then
        bad
          "sched.queue.completions: steady-state completion rate must be \
           nonzero");
  let windows =
    match field "windows" doc with
    | Arr w -> w
    | _ -> bad "field \"windows\" must be an array"
  in
  List.iter
    (fun w ->
      let metric = str "metric" w in
      let p50 = num "p50" w and p95 = num "p95" w and p99 = num "p99" w in
      if not (p50 <= p95 && p95 <= p99) then
        bad "%s: windowed percentiles not monotone (p50 %g, p95 %g, p99 %g)"
          metric p50 p95 p99)
    windows;
  let verdict = str "verdict" (field "health" doc) in
  if verdict <> "ok" then
    bad "health verdict %S, a committed soak must be \"ok\"" verdict;
  let om = str "openmetrics" doc in
  check_openmetrics om;
  List.iter
    (fun needle ->
      if not (contains_substring om needle) then
        bad "openmetrics: missing expected sample %S" needle)
    [
      "devil_sched_queue_completions_total";
      "devil_trace_dropped_events_total";
      "devil_health ";
      "devil_telemetry_series_evictions_total";
    ];
  Printf.printf
    "%s: ok (%g ticks, %d counter rates, %d windowed histograms; health ok, \
     openmetrics well-formed)\n"
    path ticks (List.length rates) (List.length windows)

(* {1 Entry point} *)

let usage () =
  prerr_endline "usage: benchcheck FILE [--require-speedup]";
  prerr_endline
    "       benchcheck compare OLD.json NEW.json [--max-regression PCT]";
  prerr_endline "       benchcheck speedscope FILE";
  prerr_endline "       benchcheck async FILE";
  prerr_endline "       benchcheck latency FILE";
  prerr_endline
    "       benchcheck latency OLD.json NEW.json [--max-regression PCT]";
  prerr_endline "       benchcheck telemetry FILE";
  exit 2

let checked path f =
  try f () with
  | Bad m ->
      Printf.eprintf "%s: invalid benchmark artifact: %s\n" path m;
      exit 1
  | Sys_error m ->
      Printf.eprintf "%s\n" m;
      exit 1

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "compare" :: rest ->
      let max_pct = ref 10.0 in
      let files = ref [] in
      let rec go = function
        | [] -> ()
        | "--max-regression" :: v :: tl ->
            (match float_of_string_opt v with
            | Some p when p >= 0.0 -> max_pct := p
            | _ ->
                Printf.eprintf "benchcheck compare: bad --max-regression %S\n" v;
                usage ());
            go tl
        | [ "--max-regression" ] ->
            prerr_endline "benchcheck compare: --max-regression needs a value";
            usage ()
        | a :: _ when String.length a > 0 && a.[0] = '-' ->
            Printf.eprintf "benchcheck compare: unknown option %s\n" a;
            usage ()
        | a :: tl ->
            files := a :: !files;
            go tl
      in
      go rest;
      (match List.rev !files with
      | [ old_path; new_path ] ->
          checked new_path (fun () ->
              compare_cmd ~old_path ~new_path ~max_pct:!max_pct)
      | _ -> usage ())
  | [ "speedscope"; path ] -> checked path (fun () -> speedscope_cmd path)
  | "speedscope" :: _ -> usage ()
  | [ "async"; path ] -> checked path (fun () -> async_cmd path)
  | "async" :: _ -> usage ()
  | [ "telemetry"; path ] -> checked path (fun () -> telemetry_cmd path)
  | "telemetry" :: _ -> usage ()
  | "latency" :: rest -> (
      let max_pct = ref 25.0 in
      let files = ref [] in
      let rec go = function
        | [] -> ()
        | "--max-regression" :: v :: tl ->
            (match float_of_string_opt v with
            | Some p when p >= 0.0 -> max_pct := p
            | _ ->
                Printf.eprintf "benchcheck latency: bad --max-regression %S\n" v;
                usage ());
            go tl
        | [ "--max-regression" ] ->
            prerr_endline "benchcheck latency: --max-regression needs a value";
            usage ()
        | a :: _ when String.length a > 0 && a.[0] = '-' ->
            Printf.eprintf "benchcheck latency: unknown option %s\n" a;
            usage ()
        | a :: tl ->
            files := a :: !files;
            go tl
      in
      go rest;
      match List.rev !files with
      | [ path ] -> checked path (fun () -> latency_cmd path)
      | [ old_path; new_path ] ->
          checked new_path (fun () ->
              latency_compare_cmd ~old_path ~new_path ~max_pct:!max_pct)
      | _ -> usage ())
  | args -> (
      let require_speedup = List.mem "--require-speedup" args in
      match List.filter (fun a -> a <> "--require-speedup") args with
      | [ path ] ->
          checked path (fun () ->
              validate ~require_speedup (Parse.document (read_file path));
              Printf.printf "%s: ok\n" path)
      | _ -> usage ())
