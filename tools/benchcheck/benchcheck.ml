(* Schema validator for the PR-3 benchmark artifact (BENCH_pr3.json).

   Usage:
     benchcheck FILE [--require-speedup]

   Checks that FILE is well-formed JSON matching the DESIGN.md §9
   schema: a schema_version-1 object whose "workloads" array carries
   every expected (workload, engine) pair with a numeric-or-null
   ns_per_op and a non-negative modeled_us. With [--require-speedup]
   it additionally asserts the acceptance criterion — the compiled
   engine strictly faster than the interpreter on the register get and
   set workloads (so it needs real estimates, not a smoke run's
   nulls).

   The parser below is a deliberately small recursive-descent JSON
   reader — the toolchain has no JSON library baked in, and the
   checker needs only enough JSON to falsify a malformed artifact. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

module Parse = struct
  type st = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | Some c' -> bad "offset %d: expected '%c', found '%c'" st.pos c c'
    | None -> bad "offset %d: expected '%c', found end of input" st.pos c

  let literal st word value =
    String.iter (fun c -> expect st c) word;
    value

  let string_body st =
    (* Called after the opening quote. The artifact writer only emits
       %S-escaped strings, so the escapes handled here cover it. *)
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> bad "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
          advance st;
          match peek st with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char b c;
              advance st;
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance st;
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance st;
              go ()
          | Some c -> bad "unsupported escape '\\%c'" c
          | None -> bad "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance st;
          go ()
    in
    go ();
    Buffer.contents b

  let number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec go () =
      match peek st with
      | Some c when is_num_char c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub st.s start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> bad "offset %d: bad number %S" start text

  let rec value st =
    skip_ws st;
    match peek st with
    | Some '{' -> obj st
    | Some '[' -> arr st
    | Some '"' ->
        advance st;
        Str (string_body st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('-' | '0' .. '9') -> number st
    | Some c -> bad "offset %d: unexpected '%c'" st.pos c
    | None -> bad "unexpected end of input"

  and obj st =
    expect st '{';
    skip_ws st;
    match peek st with
    | Some '}' ->
        advance st;
        Obj []
    | _ ->
        let rec members acc =
          skip_ws st;
          expect st '"';
          let key = string_body st in
          skip_ws st;
          expect st ':';
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((key, v) :: acc))
          | _ -> bad "offset %d: expected ',' or '}'" st.pos
        in
        members []

  and arr st =
    expect st '[';
    skip_ws st;
    match peek st with
    | Some ']' ->
        advance st;
        Arr []
    | _ ->
        let rec elements acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> bad "offset %d: expected ',' or ']'" st.pos
        in
        elements []

  let document s =
    let st = { s; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length s then bad "trailing garbage at offset %d" st.pos;
    v
end

(* {1 Schema checks} *)

let field name = function
  | Obj members -> (
      match List.assoc_opt name members with
      | Some v -> v
      | None -> bad "missing field %S" name)
  | _ -> bad "expected an object around field %S" name

let num name v =
  match field name v with
  | Num f -> f
  | _ -> bad "field %S must be a number" name

let str name v =
  match field name v with
  | Str s -> s
  | _ -> bad "field %S must be a string" name

let expected_workloads =
  [
    "reg_get";
    "reg_set";
    "reg_get_h";
    "reg_set_h";
    "struct_read";
    "block_write";
    "ide_read";
    "gfx_fill";
  ]

let engines = [ "compiled"; "interpreted" ]

let validate ~require_speedup doc =
  if num "schema_version" doc <> 1.0 then bad "schema_version must be 1";
  if str "suite" doc <> "devil_pr3_access_plans" then
    bad "suite must be \"devil_pr3_access_plans\"";
  if num "quota_s" doc <= 0.0 then bad "quota_s must be positive";
  if num "limit" doc < 1.0 then bad "limit must be at least 1";
  let rows =
    match field "workloads" doc with
    | Arr rows -> rows
    | _ -> bad "field \"workloads\" must be an array"
  in
  (* ns_per_op per (workload, engine); None for a smoke run's null. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let name = str "name" row and engine = str "engine" row in
      if not (List.mem name expected_workloads) then
        bad "unknown workload %S" name;
      if not (List.mem engine engines) then bad "unknown engine %S" engine;
      if Hashtbl.mem seen (name, engine) then
        bad "duplicate row for %s/%s" name engine;
      let ns =
        match field "ns_per_op" row with
        | Null -> None
        | Num f when f >= 0.0 -> Some f
        | Num _ -> bad "%s/%s: ns_per_op must be non-negative" name engine
        | _ -> bad "%s/%s: ns_per_op must be a number or null" name engine
      in
      if num "modeled_us" row < 0.0 then
        bad "%s/%s: modeled_us must be non-negative" name engine;
      Hashtbl.add seen (name, engine) ns)
    rows;
  List.iter
    (fun name ->
      List.iter
        (fun engine ->
          if not (Hashtbl.mem seen (name, engine)) then
            bad "missing row for %s/%s" name engine)
        engines)
    expected_workloads;
  if require_speedup then
    List.iter
      (fun name ->
        match
          (Hashtbl.find seen (name, "compiled"),
           Hashtbl.find seen (name, "interpreted"))
        with
        | Some c, Some i when c < i -> ()
        | Some c, Some i ->
            bad "%s: compiled (%.1f ns) not faster than interpreter (%.1f ns)"
              name c i
        | _ -> bad "%s: --require-speedup needs real estimates, found null" name)
      [ "reg_get"; "reg_set"; "reg_get_h"; "reg_set_h" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let require_speedup = List.mem "--require-speedup" args in
  match List.filter (fun a -> a <> "--require-speedup") args with
  | [ path ] -> (
      try
        validate ~require_speedup (Parse.document (read_file path));
        Printf.printf "%s: ok\n" path
      with
      | Bad m ->
          Printf.eprintf "%s: invalid benchmark artifact: %s\n" path m;
          exit 1
      | Sys_error m ->
          Printf.eprintf "%s\n" m;
          exit 1)
  | _ ->
      prerr_endline "usage: benchcheck FILE [--require-speedup]";
      exit 2
