#!/bin/sh
# The one-command local CI gate: build, run every test suite, and (when
# the tool and a profile are available) check formatting.
#
#   tools/check.sh
#
# DEVIL_QCHECK_COUNT can be exported first to deepen the QCheck soaks.
set -e

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# A fast end-to-end pass over the PR-3 benchmark pipeline: run every
# bechamel workload once on both engines (1-run quota) and validate
# the JSON artifact against the DESIGN.md §9 schema. The committed
# BENCH_pr3.json (real numbers) is schema-checked too when present.
echo "== bench smoke =="
DEVIL_BENCH_QUOTA=0.001 DEVIL_BENCH_LIMIT=1 \
  DEVIL_BENCH_OUT=_build/bench_smoke.json \
  dune exec bench/main.exe -- benchjson > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- _build/bench_smoke.json
if [ -f BENCH_pr3.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- BENCH_pr3.json
fi

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== ocamlformat check =="
  dune build @fmt
else
  echo "== ocamlformat check skipped (no ocamlformat binary or .ocamlformat profile) =="
fi

echo "== all checks passed =="
