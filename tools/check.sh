#!/bin/sh
# The one-command local CI gate: build, run every test suite, and (when
# the tool and a profile are available) check formatting.
#
#   tools/check.sh
#
# DEVIL_QCHECK_COUNT can be exported first to deepen the QCheck soaks.
set -e

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== ocamlformat check =="
  dune build @fmt
else
  echo "== ocamlformat check skipped (no ocamlformat binary or .ocamlformat profile) =="
fi

echo "== all checks passed =="
