#!/bin/sh
# The one-command local CI gate: build, run every test suite, and (when
# the tool and a profile are available) check formatting.
#
#   tools/check.sh
#
# DEVIL_QCHECK_COUNT can be exported first to deepen the QCheck soaks.
set -e

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# A fast end-to-end pass over the PR-3 benchmark pipeline: run every
# bechamel workload once on both engines (1-run quota) and validate
# the JSON artifact against the DESIGN.md §9 schema. The committed
# BENCH_pr3.json (real numbers) is schema-checked too when present.
echo "== bench smoke =="
DEVIL_BENCH_QUOTA=0.001 DEVIL_BENCH_LIMIT=1 \
  DEVIL_BENCH_OUT=_build/bench_smoke.json \
  dune exec bench/main.exe -- benchjson > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- _build/bench_smoke.json
if [ -f BENCH_pr3.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- BENCH_pr3.json
fi

# Observability gates (ISSUE 4): the fault campaign's aggregated spec
# coverage must stay high on the two drivers whose workloads claim
# full register reach, and a recorded fault-free trial must replay to
# a byte-identical trace (an empty tracetool diff).
echo "== coverage + replay gates =="
EXPORT_DIR=_build/faultcamp_export
rm -rf "$EXPORT_DIR" && mkdir -p "$EXPORT_DIR"
DEVIL_FAULTCAMP_EXPORT="$EXPORT_DIR" \
  dune exec bench/main.exe -- faultcamp > _build/faultcamp_smoke.out
for dev in ide gfx; do
  line=$(grep "^coverage $dev " _build/faultcamp_smoke.out)
  pct=$(printf '%s\n' "$line" | sed -n 's/.*registers [0-9]*\/[0-9]* (\([0-9]*\)\(\.[0-9]*\)\?%).*/\1/p')
  if [ -z "$pct" ] || [ "$pct" -lt 90 ]; then
    echo "FAIL: $dev register coverage below 90%: $line"
    exit 1
  fi
  echo "ok: $line"
done
dune exec tools/tracetool/tracetool.exe -- diff \
  "$EXPORT_DIR/ide-read-smoke.recorded.jsonl" \
  "$EXPORT_DIR/ide-read-smoke.replayed.jsonl"
echo "ok: recorded and replayed smoke traces are identical"

# Span-profiler gates (ISSUE 5): the disabled profiler must be
# invisible (the dedicated test suite checks Bus.observed identity and
# the QCheck transparency property), the perf-regression gate must
# pass on the committed trajectory and fail on the synthetic regressed
# fixture, and an exported speedscope profile must validate.
echo "== profile gates =="
dune build @profile
if [ -f BENCH_pr3.json ] && [ -f BENCH_pr5.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- compare \
    BENCH_pr3.json BENCH_pr5.json --max-regression 10
fi
if dune exec tools/benchcheck/benchcheck.exe -- compare \
    BENCH_pr3.json test/golden/bench_regressed.json --max-regression 10 \
    > /dev/null 2>&1; then
  echo "FAIL: compare accepted the synthetic regressed artifact"
  exit 1
fi
echo "ok: compare rejects the synthetic regressed artifact"
rm -rf _build/profile_export
dune exec bench/main.exe -- profile --iters 5 --out _build/profile_export \
  ide_read > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- speedscope \
  _build/profile_export/ide_read.speedscope.json

# Exploration gates (ISSUE 6): the bounded exhaustive fault/policy
# exploration must finish its stated bound on the ide and gfx
# workloads with zero violations (exit 0 is the gate), the seeded
# regression must still be found, shrunk and reproduced byte-for-byte
# from the committed tape fixture, and the dedicated test suite (the
# engine, the decider, the campaign, the seeded acceptance) must pass.
echo "== explore gates =="
dune exec bench/main.exe -- explore --depth 4 --budget 2 --sites 3 \
  > _build/explore_smoke.out
tail -1 _build/explore_smoke.out
dune exec bench/main.exe -- explore --seeded-bug \
  --fixture test/golden/explore_counterexample.tape.jsonl > /dev/null
echo "ok: seeded regression found, shrunk and reproduced from the fixture"
dune build @explore

# Async-driver gates (ISSUE 7): the scheduler / interrupt-driven
# driver suite must pass (queues, timers, dispatch, the 8259A EOI
# regression, the rx-ring straddle, the sync/async failure-taxonomy
# equivalence, the IRQ-path fault cases, the Monitor oracle), and a
# fresh `bench async` run must validate against the devil_pr7_async
# schema with queued DMA at >= 2x the polling driver's command rate.
# The committed BENCH_async.json is gated too when present.
echo "== async gates =="
dune build @async
dune exec bench/main.exe -- async --out _build/bench_async.json > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- async _build/bench_async.json
if [ -f BENCH_async.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- async BENCH_async.json
fi

# Lifecycle gates (ISSUE 9): the request-lifecycle suite must pass
# (rid threading, stage accounting, lost-vs-spurious classification,
# Chrome flow events, the health watchdog), a fresh `bench latency`
# run must complete 100% of its queued requests with zero orphans and
# an ok health verdict on both async workloads (the run itself exits 1
# otherwise, benchcheck re-validates the artifact offline), and the
# dumped event traces must reconstruct to the same verdict through
# tracetool's --min-complete gate. The committed BENCH_latency.json is
# gated too when present.
echo "== lifecycle gates =="
dune build @lifecycle
rm -rf _build/latency_traces
dune exec bench/main.exe -- latency --out _build/bench_latency.json \
  --trace-dir _build/latency_traces > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- latency _build/bench_latency.json
for w in ide-dma-async net-async; do
  dune exec tools/tracetool/tracetool.exe -- lifecycle \
    "_build/latency_traces/$w.trace.jsonl" --min-complete 100 > /dev/null
  echo "ok: $w lifecycles 100% complete, zero orphans"
done
if [ -f BENCH_latency.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- latency BENCH_latency.json
fi

# Harness gates (ISSUE 8): the generated per-spec battery — site-aware
# differential sequences, coverage obligations and the generated fault
# campaign, all derived from the IR with zero per-spec harness code —
# must pass its suite, and `bench harness` must reach >= 90% generated
# register coverage on every bundled spec (all 11, including the
# extension devices) with zero divergences and zero fault violations
# (exit 1 is the gate).
echo "== harness gates =="
DEVIL_QCHECK_COUNT=5 dune build @harness
dune exec bench/main.exe -- harness --qcount 5 > _build/harness_smoke.out
tail -1 _build/harness_smoke.out

# Telemetry gates (ISSUE 10): the mergeable-telemetry suite must pass
# (the tick sampler, the Metrics/Profile/Trace merge laws, the
# OpenMetrics and series exporters, the allocation-free disabled
# path), a 1-tick `bench soak` smoke must produce an artifact that
# validates against the devil_pr10_telemetry schema (well-formed
# OpenMetrics, nonzero steady-state completion rate, ok health), and
# the dumped series must replay through both tracetool telemetry
# commands. The committed BENCH_telemetry.json is gated too when
# present.
echo "== telemetry gates =="
dune build @telemetry
dune exec bench/main.exe -- soak --ticks 1 \
  --out _build/bench_telemetry.json \
  --series _build/telemetry_series.jsonl > /dev/null
dune exec tools/benchcheck/benchcheck.exe -- telemetry \
  _build/bench_telemetry.json
dune exec tools/tracetool/tracetool.exe -- series \
  _build/telemetry_series.jsonl > /dev/null
dune exec tools/tracetool/tracetool.exe -- top \
  _build/telemetry_series.jsonl --once > /dev/null
echo "ok: dumped series replays through tracetool series and top"
if [ -f BENCH_telemetry.json ]; then
  dune exec tools/benchcheck/benchcheck.exe -- telemetry BENCH_telemetry.json
fi

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== ocamlformat check =="
  dune build @fmt
else
  echo "== ocamlformat check skipped (no ocamlformat binary or .ocamlformat profile) =="
fi

echo "== all checks passed =="
