(* Offline trace toolkit for the Devil runtime's JSONL trace format
   (DESIGN.md §10).

   Usage:
     tracetool print    FILE
     tracetool convert  FILE [-o OUT]             JSONL -> Chrome JSON
     tracetool filter   FILE [--dev D] [--reg R] [-o OUT]
     tracetool diff     A B                       exit 1 on divergence
     tracetool coverage FILE --spec NAME [--dev LABEL]
                        [--min-reg PCT] [--missed]

   [print] renders a trace the way the runtime's pretty-printer does.
   [convert] emits the about://tracing / Perfetto event array.
   [filter] keeps the events belonging to one instance and/or touching
   one register and re-emits trace JSONL (bus-level events carry no
   instance and are dropped by --dev).
   [diff] compares two trace JSONL files — or two tape JSONL files —
   record by record and reports the first divergence with its line
   number. Exit codes form a contract the gates rely on: 0 means the
   files are identical, 1 means they are both readable but diverge
   (the record/replay gate: a recorded trial and its replay must diff
   empty), and 2 means a file was unreadable or the two files are not
   the same format. Counterexample tapes from [bench explore] diff the
   same way as traces.
   [coverage] maps a trace back onto a bundled specification and
   reports which of its coverable sites the trace exercised;
   [--min-reg] turns it into a gate (exit 1 below the threshold) and
   [--missed] lists every uncovered site.
   [lifecycle] rebuilds the queued-request arcs the scheduler threads
   through the trace (DESIGN.md §15): a per-request timeline table
   with stage durations in trace-sequence ticks, the top stragglers
   by total latency, every orphan, and the lost-vs-spurious
   classification of late completions; [--min-complete] turns it into
   a gate (exit 1 when fewer than PCT% of submitted requests
   completed).

   Any command that analyzes a trace file warns loudly on stderr when
   the file was truncated by ring eviction (its first event's sequence
   number tells how many events were lost): lifecycle arcs, diffs and
   coverage over a truncated trace are all suspect. *)

module Trace = Devil_runtime.Trace
module Trace_export = Devil_runtime.Trace_export
module Coverage = Devil_runtime.Coverage
module Lifecycle = Devil_runtime.Lifecycle
module Specs = Devil_specs.Specs

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("tracetool: " ^ m); exit 2) fmt

let usage_text =
  "usage: tracetool COMMAND FILE... [flags]\n\
   commands:\n\
  \  help                                        print this and exit 0\n\
  \  print    FILE                               render a JSONL trace\n\
  \  convert  FILE [-o OUT]                      JSONL -> Chrome JSON\n\
  \  filter   FILE [--dev D] [--reg R] [--kind K] [-o OUT]\n\
  \                                              keep matching events\n\
  \  diff     A B                                trace or tape JSONL\n\
  \  coverage FILE --spec NAME [--dev LABEL] [--min-reg PCT] [--missed]\n\
  \  lifecycle FILE [--top N] [--min-complete PCT]\n\
  \                                              queued-request arcs\n\
  \  top      FILE [--once] [--interval SEC] [--top N]\n\
  \                                              live series dashboard\n\
  \  series   FILE                               validate + summarize a\n\
  \                                              telemetry series dump\n\
   flags:\n\
  \  -o OUT          write output to OUT instead of stdout\n\
  \  --dev D         keep events of instance label D\n\
  \  --reg R         keep events touching register R\n\
  \  --kind K        keep one event family: bus, reg, var, cache,\n\
  \                  action, policy, fault, irq, queue\n\
  \  --spec NAME     bundled specification to cover\n\
  \  --min-reg PCT   fail (exit 1) below PCT register coverage\n\
  \  --missed        list every uncovered site\n\
  \  --top N         stragglers listed by [lifecycle], rows shown by\n\
  \                  [top] (default 5 / 10)\n\
  \  --min-complete PCT  fail (exit 1) below PCT completed requests\n\
  \  --once          render the [top] dashboard once and exit\n\
  \  --interval SEC  [top] refresh period (default 1.0)\n\
   diff exit codes:\n\
  \  0  the files are identical\n\
  \  1  both readable, but they diverge (the diverging line is printed)\n\
  \  2  a file is unreadable, or the two files are not the same format"

(* Usage errors print the accepted commands and flags; like [die] they
   exit 2, leaving exit 1 to the gates (diff divergence, coverage below
   threshold). *)
let usage_die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("tracetool: " ^ m);
      prerr_endline usage_text;
      exit 2)
    fmt

(* The runtime's ring numbers events from 0 and evicts oldest-first,
   so a trace whose first surviving event has sequence [n > 0] lost
   exactly [n] events before export. Every analysis command warns: a
   truncated trace silently understates coverage and breaks lifecycle
   arcs (submits evicted from under their completions). *)
let warn_truncation path (evs : Trace.event list) =
  match evs with
  | { seq; _ } :: _ when seq > 0 ->
      Printf.eprintf
        "tracetool: WARNING: %s is TRUNCATED by ring eviction: %d event%s \
         lost before the first surviving record (seq %d).\n\
         tracetool: WARNING: results below may be incomplete; re-record \
         with a larger trace capacity.\n"
        path seq (if seq = 1 then "" else "s") seq
  | _ -> ()

let events_of_file path =
  match Trace_export.events_of_file path with
  | Ok evs ->
      warn_truncation path evs;
      evs
  | Error why -> die "%s: %s" path why

let output ~out data =
  match out with
  | None -> print_string data
  | Some path -> Trace_export.write_file path data

(* {1 Event classification for --dev / --reg} *)

let event_dev (k : Trace.kind) =
  match k with
  | Bus_read _ | Bus_write _ | Bus_block_read _ | Bus_block_write _ -> None
  | Reg_read { dev; _ } | Reg_write { dev; _ }
  | Var_read { dev; _ } | Var_write { dev; _ }
  | Struct_write { dev; _ }
  | Cache_hit { dev; _ } | Cache_miss { dev; _ }
  | Cache_invalidated { dev }
  | Action { dev; _ } | Serialized { dev; _ } ->
      Some dev
  | Poll { label; _ } | Retry { label; _ } ->
      (* Policy labels are "<dev>: <condition>". *)
      (match String.index_opt label ':' with
      | Some i -> Some (String.sub label 0 i)
      | None -> None)
  | Fault_injected _ -> None
  | Irq_raised { dev; _ } | Irq_delivered { dev; _ }
  | Queue_submitted { dev; _ } | Queue_started { dev; _ }
  | Queue_completed { dev; _ } | Queue_late { dev; _ } ->
      Some dev

(* The coarse families [--kind] selects between; scheduler events get
   their own families so an interrupt-delivery or queue-depth question
   doesn't have to wade through register traffic. *)
let event_kind (k : Trace.kind) =
  match k with
  | Bus_read _ | Bus_write _ | Bus_block_read _ | Bus_block_write _ -> "bus"
  | Reg_read _ | Reg_write _ -> "reg"
  | Var_read _ | Var_write _ | Struct_write _ -> "var"
  | Cache_hit _ | Cache_miss _ | Cache_invalidated _ -> "cache"
  | Action _ | Serialized _ -> "action"
  | Poll _ | Retry _ -> "policy"
  | Fault_injected _ -> "fault"
  | Irq_raised _ | Irq_delivered _ -> "irq"
  | Queue_submitted _ | Queue_started _ | Queue_completed _ | Queue_late _ ->
      "queue"

let kind_families =
  [ "bus"; "reg"; "var"; "cache"; "action"; "policy"; "fault"; "irq"; "queue" ]

let event_regs (k : Trace.kind) =
  match k with
  | Reg_read { reg; _ } | Reg_write { reg; _ }
  | Cache_hit { reg; _ } | Cache_miss { reg; _ } ->
      [ reg ]
  | Var_write { regs; _ } | Struct_write { regs; _ } -> regs
  | _ -> []

let matches ~dev ~reg ~kind (e : Trace.event) =
  (match dev with None -> true | Some d -> event_dev e.kind = Some d)
  && (match reg with None -> true | Some r -> List.mem r (event_regs e.kind))
  && match kind with None -> true | Some k -> event_kind e.kind = k

(* {1 Commands} *)

let cmd_print file =
  List.iter
    (fun e -> Format.printf "%a@." Trace.pp_event e)
    (events_of_file file)

let cmd_convert file ~out =
  output ~out (Trace_export.to_chrome (events_of_file file))

let cmd_filter file ~dev ~reg ~kind ~out =
  (match kind with
  | Some k when not (List.mem k kind_families) ->
      usage_die "--kind %s: unknown family (have: %s)" k
        (String.concat ", " kind_families)
  | _ -> ());
  let kept = List.filter (matches ~dev ~reg ~kind) (events_of_file file) in
  output ~out (Trace_export.events_to_jsonl kept)

(* A diff operand is either trace JSONL or tape JSONL; the header line
   disambiguates. Unreadable-in-both-formats is a [die] (exit 2), as is
   mixing one of each — a divergence verdict only makes sense between
   records of the same kind. *)
type diffable =
  | D_trace of Trace.event list
  | D_tape of Devil_runtime.Bus.transfer list

let diffable_of_file path =
  match Trace_export.events_of_file path with
  | Ok evs ->
      warn_truncation path evs;
      D_trace evs
  | Error trace_why -> (
      match Trace_export.tape_of_file path with
      | Ok tape -> D_tape (Devil_runtime.Bus.tape_transfers tape)
      | Error tape_why ->
          die "%s: not a readable trace (%s) nor tape (%s)" path trace_why
            tape_why)

(* Both JSONL formats put record [i] on line [i + 2]: line 1 is the
   version header. *)
let line_of_record i = i + 2

let diff_records ~what ~pp a b xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | x :: _, [] ->
        Format.printf "%s %d (line %d) only in %s: %a@." what i
          (line_of_record i) a pp x;
        1
    | [], y :: _ ->
        Format.printf "%s %d (line %d) only in %s: %a@." what i
          (line_of_record i) b pp y;
        1
    | x :: xs', y :: ys' ->
        if x = y then go (i + 1) xs' ys'
        else begin
          Format.printf "%s %d (line %d) differs:@.  %s: %a@.  %s: %a@." what
            i (line_of_record i) a pp x b pp y;
          1
        end
  in
  go 0 xs ys

let cmd_diff a b =
  let pp_ev fmt (e : Trace.event) =
    Format.fprintf fmt "#%d %a" e.seq Trace.pp_kind e.kind
  in
  match (diffable_of_file a, diffable_of_file b) with
  | D_trace ea, D_trace eb -> diff_records ~what:"event" ~pp:pp_ev a b ea eb
  | D_tape ta, D_tape tb ->
      diff_records ~what:"transfer" ~pp:Devil_runtime.Bus.pp_transfer a b ta
        tb
  | D_trace _, D_tape _ -> die "%s is a trace but %s is a tape" a b
  | D_tape _, D_trace _ -> die "%s is a tape but %s is a trace" a b

let spec_device name =
  (* pic8259 carries a configuration parameter; everything else
     compiles as-is from the bundled source. *)
  if name = "pic8259" then Specs.pic8259 ()
  else
    match List.assoc_opt name Specs.all with
    | Some src -> Specs.compile_exn ~name src
    | None ->
        die "unknown spec %s (have: %s)" name
          (String.concat ", " (List.map fst Specs.all))

let cmd_coverage file ~spec ~dev ~min_reg ~missed =
  let spec =
    match spec with Some s -> s | None -> die "coverage needs --spec NAME"
  in
  let dev = Option.value dev ~default:spec in
  let cov = Coverage.create ~dev (spec_device spec) in
  Coverage.feed_all cov (events_of_file file);
  let r = Coverage.report cov in
  Format.printf "%a@." Coverage.pp_report r;
  if missed then Format.printf "%a" Coverage.pp_missed r;
  match min_reg with
  | Some threshold when Coverage.reg_percent r < threshold ->
      Format.printf "FAIL: register coverage %.1f%% below threshold %.1f%%@."
        (Coverage.reg_percent r) threshold;
      1
  | _ -> 0

(* Offline reconstruction uses trace sequence numbers as the clock, so
   every duration below is in {e ticks} (events elapsed), not time —
   the right unit for a recorded file, where wall-clock gaps between
   events are an artifact of when the recorder ran. *)
let cmd_lifecycle file ~top ~min_complete =
  let lc = Lifecycle.of_events (events_of_file file) in
  let requests = Lifecycle.requests lc in
  let submitted = Lifecycle.submitted lc in
  let completed = Lifecycle.completed lc in
  if submitted = 0 then begin
    Format.printf "no queued requests in %s@." file;
    0
  end
  else begin
    let cell r st =
      match Lifecycle.stage_ns r st with
      | Some n -> string_of_int n
      | None -> "?"
    in
    let outcome (r : Lifecycle.record) =
      if not (Lifecycle.complete r) then "ORPHAN"
      else if r.late_completion then "lost-irq"
      else if r.ok then "ok"
      else "failed"
    in
    let print_row (r : Lifecycle.record) =
      Format.printf "  %-5d %-8s %-22s %-8s %10s %10s %10s %10s %10s@."
        r.rid r.dev
        (if String.length r.label > 22 then String.sub r.label 0 22
         else r.label)
        (outcome r) (cell r Queue_wait) (cell r Service)
        (cell r Irq_delivery) (cell r Completion) (cell r Total)
    in
    Format.printf "request lifecycles (%s; durations in trace ticks)@." file;
    Format.printf "  %-5s %-8s %-22s %-8s %10s %10s %10s %10s %10s@." "req"
      "dev" "label" "outcome" "queue" "service" "irq" "complete" "total";
    List.iter print_row requests;
    let pct =
      if submitted = 0 then 100.0
      else 100.0 *. float_of_int completed /. float_of_int submitted
    in
    Format.printf
      "summary: %d submitted, %d completed (%.1f%%), %d orphaned@." submitted
      completed pct
      (List.length (Lifecycle.orphans lc));
    let lost = Lifecycle.lost_interrupts lc in
    let spurious = Lifecycle.spurious_completions lc in
    if lost > 0 then
      Format.printf
        "late completions: %d LOST interrupt%s (completion arrived after \
         its request timed out)@."
        lost
        (if lost = 1 then "" else "s");
    if spurious > 0 then
      Format.printf
        "late completions: %d SPURIOUS (no timed-out request to blame)@."
        spurious;
    (* Stragglers: completed requests by total latency, worst first. *)
    let stragglers =
      List.filter Lifecycle.complete requests
      |> List.filter_map (fun r ->
             Option.map (fun t -> (t, r)) (Lifecycle.stage_ns r Total))
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    (match stragglers with
    | [] -> ()
    | _ ->
        let n = min top (List.length stragglers) in
        Format.printf "top %d straggler%s by total latency:@." n
          (if n = 1 then "" else "s");
        List.iteri
          (fun i (t, (r : Lifecycle.record)) ->
            if i < n then
              Format.printf "  #%d req %d %s \"%s\": %d ticks@." (i + 1)
                r.rid r.dev r.label t)
          stragglers);
    let orphans = Lifecycle.orphans lc in
    if orphans <> [] then begin
      Format.printf "orphans (submitted, never completed):@.";
      List.iter
        (fun r -> Format.printf "  %a@." Lifecycle.pp_record r)
        orphans
    end;
    match min_complete with
    | Some threshold when pct < threshold ->
        Format.printf
          "FAIL: %.1f%% of requests completed, below threshold %.1f%%@." pct
          threshold;
        1
    | _ -> 0
  end

(* {1 Telemetry series commands} *)

(* A parsed series file regrouped per metric: the dump is flat (one
   point per line), the dashboard wants columns. *)
type series_tables = {
  st : Trace_export.series_file;
  st_counters : (string * Trace_export.series_point list) list;
      (* sorted by name; points in file order (oldest first) *)
  st_hists : (string * Trace_export.series_point list) list;
  st_health : Trace_export.series_point list;
}

let series_tables_of_file path =
  match Trace_export.series_of_file path with
  | Error why -> die "%s: %s" path why
  | Ok st ->
      let counters = Hashtbl.create 32 and hists = Hashtbl.create 8 in
      let health = ref [] in
      List.iter
        (fun (p : Trace_export.series_point) ->
          match p with
          | S_counter { sp_metric; _ } ->
              Hashtbl.replace counters sp_metric
                (p :: (Option.value ~default:[]
                         (Hashtbl.find_opt counters sp_metric)))
          | S_hist { sh_metric; _ } ->
              Hashtbl.replace hists sh_metric
                (p :: (Option.value ~default:[]
                         (Hashtbl.find_opt hists sh_metric)))
          | S_health _ -> health := p :: !health)
        st.sf_points;
      let table tbl =
        Hashtbl.fold (fun k ps acc -> (k, List.rev ps) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      {
        st;
        st_counters = table counters;
        st_hists = table hists;
        st_health = List.rev !health;
      }

let last xs = match List.rev xs with [] -> None | x :: _ -> Some x

(* The dashboard's eviction warning has to be loud: a ring that
   evicted means every "windowed" number below covers less history
   than the tick span suggests. *)
let dropped_total tables =
  match List.assoc_opt "trace.dropped_events" tables.st_counters with
  | Some ps -> (
      match last ps with
      | Some (Trace_export.S_counter { sp_total; _ }) -> sp_total
      | _ -> 0)
  | None -> 0

let render_top tables ~file ~rows =
  let b = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n')
      fmt
  in
  let st = tables.st in
  let verdict =
    match last tables.st_health with
    | Some (Trace_export.S_health { sl_verdict; _ }) -> sl_verdict
    | _ -> "-"
  in
  line "tracetool top — %s | tick %d | %g tick/s | health %s" file st.sf_ticks
    st.sf_hz verdict;
  let dropped = dropped_total tables in
  if st.sf_evictions > 0 || dropped > 0 then begin
    line "!!! RING EVICTION: %d series point(s) evicted, %d trace event(s) \
          dropped !!!" st.sf_evictions dropped;
    line "!!! the window below is SHORTER than the run — raise the ring \
          capacity !!!"
  end;
  let rate_rows =
    List.filter_map
      (fun (name, ps) ->
        match last ps with
        | Some (Trace_export.S_counter { sp_tick; sp_total; sp_delta; _ }) ->
            Some (name, sp_tick, sp_total, sp_delta)
        | _ -> None)
      tables.st_counters
    |> List.sort (fun (na, _, ta, da) (nb, _, tb, db) ->
           match compare (db, tb) (da, ta) with
           | 0 -> String.compare na nb
           | c -> c)
  in
  line "";
  line "hottest counters (by last-window delta):";
  line "  %-40s %12s %12s %12s" "counter" "rate/s" "delta" "total";
  List.iteri
    (fun i (name, _, total, delta) ->
      if i < rows then
        line "  %-40s %12.1f %12d %12d" name
          (float_of_int delta *. st.sf_hz)
          delta total)
    rate_rows;
  let hist_rows =
    List.filter_map
      (fun (name, ps) ->
        match last ps with
        | Some (Trace_export.S_hist { sh_count; sh_p50; sh_p95; sh_p99; _ })
          ->
            Some (name, sh_count, sh_p50, sh_p95, sh_p99)
        | _ -> None)
      tables.st_hists
  in
  if hist_rows <> [] then begin
    line "";
    line "windowed latencies (last tick):";
    line "  %-40s %8s %10s %10s %10s" "histogram" "count" "p50" "p95" "p99";
    List.iter
      (fun (name, count, p50, p95, p99) ->
        line "  %-40s %8d %10d %10d %10d" name count p50 p95 p99)
      hist_rows
  end;
  (match last tables.st_health with
  | Some (Trace_export.S_health { sl_summary; _ }) ->
      line "";
      line "health: %s" sl_summary
  | _ -> ());
  Buffer.contents b

let cmd_top file ~once ~interval ~rows =
  if once then begin
    print_string (render_top (series_tables_of_file file) ~file ~rows);
    0
  end
  else
    (* Refresh until interrupted: clear, render, sleep, re-read. *)
    let rec loop () =
      let tables = series_tables_of_file file in
      print_string "\027[2J\027[H";
      print_string (render_top tables ~file ~rows);
      flush stdout;
      Unix.sleepf interval;
      loop ()
    in
    loop ()

let cmd_series file =
  let tables = series_tables_of_file file in
  let st = tables.st in
  Format.printf
    "telemetry series %s: %d tick(s), %g tick/s, ring capacity %d, %d \
     eviction(s)@."
    file st.sf_ticks st.sf_hz st.sf_capacity st.sf_evictions;
  List.iter
    (fun (name, ps) ->
      match (ps, last ps) with
      | ( Trace_export.S_counter { sp_tick = first; _ } :: _,
          Some (Trace_export.S_counter { sp_tick; sp_total; sp_delta; _ }) ) ->
          Format.printf
            "  counter %-40s %3d point(s), ticks %d..%d, total %d, last \
             delta %d@."
            name (List.length ps) first sp_tick sp_total sp_delta
      | _ -> ())
    tables.st_counters;
  List.iter
    (fun (name, ps) ->
      match (ps, last ps) with
      | ( Trace_export.S_hist { sh_tick = first; _ } :: _,
          Some
            (Trace_export.S_hist
               { sh_tick; sh_count; sh_p50; sh_p95; sh_p99; _ }) ) ->
          Format.printf
            "  hist    %-40s %3d point(s), ticks %d..%d, last window: \
             count %d p50 %d p95 %d p99 %d@."
            name (List.length ps) first sh_tick sh_count sh_p50 sh_p95 sh_p99
      | _ -> ())
    tables.st_hists;
  (match last tables.st_health with
  | Some (Trace_export.S_health { sl_verdict; sl_summary; _ }) ->
      Format.printf "  health  %d point(s), last verdict %s (%s)@."
        (List.length tables.st_health)
        sl_verdict sl_summary
  | _ -> ());
  0

(* {1 Argument parsing} *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Asking for help is not a usage error: print the same text on
     stdout and exit 0, so `tracetool help | less` works and gates can
     smoke-test the binary without tripping the exit-2 contract. *)
  (match args with
  | "help" :: _ | "--help" :: _ | "-h" :: _ ->
      print_endline usage_text;
      exit 0
  | _ -> ());
  (* collect --opt value pairs and positionals *)
  let opts = Hashtbl.create 8 in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | (("--missed" | "--once") as o) :: rest ->
        Hashtbl.replace opts o "";
        parse rest
    | (("--dev" | "--reg" | "--kind" | "--spec" | "--min-reg" | "--top"
       | "--min-complete" | "--interval" | "-o") as o)
      :: v :: rest ->
        Hashtbl.replace opts o v;
        parse rest
    | [ (("--dev" | "--reg" | "--kind" | "--spec" | "--min-reg" | "--top"
         | "--min-complete" | "--interval" | "-o") as o) ] ->
        usage_die "option %s needs a value" o
    | o :: _ when String.length o > 1 && o.[0] = '-' ->
        usage_die "unknown option %s" o
    | f :: rest ->
        positional := f :: !positional;
        parse rest
  in
  (match args with [] -> usage_die "no command" | _ :: rest -> parse rest);
  let positional = List.rev !positional in
  let opt name = Hashtbl.find_opt opts name in
  let code =
    try
      match (List.hd args, positional) with
      | "print", [ f ] ->
          cmd_print f;
          0
      | "convert", [ f ] ->
          cmd_convert f ~out:(opt "-o");
          0
      | "filter", [ f ] ->
          cmd_filter f ~dev:(opt "--dev") ~reg:(opt "--reg")
            ~kind:(opt "--kind") ~out:(opt "-o");
          0
      | "diff", [ a; b ] -> cmd_diff a b
      | "coverage", [ f ] ->
          cmd_coverage f ~spec:(opt "--spec") ~dev:(opt "--dev")
            ~min_reg:
              (Option.map
                 (fun s ->
                   try float_of_string s
                   with _ -> usage_die "--min-reg %s: not a number" s)
                 (opt "--min-reg"))
            ~missed:(Hashtbl.mem opts "--missed")
      | "lifecycle", [ f ] ->
          cmd_lifecycle f
            ~top:
              (match opt "--top" with
              | None -> 5
              | Some s -> (
                  match int_of_string_opt s with
                  | Some n when n > 0 -> n
                  | _ -> usage_die "--top %s: not a positive integer" s))
            ~min_complete:
              (Option.map
                 (fun s ->
                   try float_of_string s
                   with _ -> usage_die "--min-complete %s: not a number" s)
                 (opt "--min-complete"))
      | "top", [ f ] ->
          cmd_top f
            ~once:(Hashtbl.mem opts "--once")
            ~interval:
              (match opt "--interval" with
              | None -> 1.0
              | Some s -> (
                  match float_of_string_opt s with
                  | Some x when x > 0.0 -> x
                  | _ -> usage_die "--interval %s: not a positive number" s))
            ~rows:
              (match opt "--top" with
              | None -> 10
              | Some s -> (
                  match int_of_string_opt s with
                  | Some n when n > 0 -> n
                  | _ -> usage_die "--top %s: not a positive integer" s))
      | "series", [ f ] -> cmd_series f
      | ( (("print" | "convert" | "filter" | "diff" | "coverage" | "lifecycle"
           | "top" | "series")
          as cmd),
          _ ) ->
          usage_die "%s: wrong number of file arguments (%d)" cmd
            (List.length positional)
      | cmd, _ -> usage_die "unknown command %s" cmd
    with Sys_error m -> die "%s" m
  in
  exit code
