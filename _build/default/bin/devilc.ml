(* devilc: the Devil compiler command-line driver.

   Subcommands:
   - check:      parse, elaborate and verify a specification;
   - emit-c:     generate the C stub header (the paper's output);
   - emit-ocaml: generate an OCaml stub module (functor over a bus);
   - doc:        render the specification as a data sheet;
   - dump:       pretty-print the parsed specification;
   - list:       show the bundled specification library.

   Input is a .dil file, or a bundled specification selected with
   --builtin NAME. *)

module Specs = Devil_specs.Specs
module Check = Devil_check.Check
module Value = Devil_ir.Value
module Diagnostics = Devil_syntax.Diagnostics

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~builtin ~file =
  match (builtin, file) with
  | Some name, None -> (
      match List.assoc_opt name Specs.all with
      | Some src -> Ok (name ^ ".dil", src)
      | None ->
          Error
            (Printf.sprintf "unknown builtin %s (try: %s)" name
               (String.concat ", " (List.map fst Specs.all))))
  | None, Some path -> (
      match read_file path with
      | src -> Ok (path, src)
      | exception Sys_error msg -> Error msg)
  | Some _, Some _ -> Error "give either --builtin or a file, not both"
  | None, None -> Error "no input: give a .dil file or --builtin NAME"

let parse_config specs =
  (* --config name=true|false|int *)
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith ("malformed --config binding: " ^ spec)
      | Some i ->
          let name = String.sub spec 0 i in
          let v = String.sub spec (i + 1) (String.length spec - i - 1) in
          let value =
            match v with
            | "true" -> Value.Bool true
            | "false" -> Value.Bool false
            | _ -> (
                match int_of_string_opt v with
                | Some n -> Value.Int n
                | None -> Value.Enum v)
          in
          (name, value))
    specs

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "builtin" ] ~docv:"NAME"
        ~doc:"Use a specification bundled with the compiler.")

let file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Devil specification to process.")

let config_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "config" ] ~docv:"NAME=VALUE"
        ~doc:
          "Configuration value for a device parameter (needed by \
           specifications with conditional declarations). Repeatable.")

let with_input builtin file config k =
  match load ~builtin ~file with
  | Error msg ->
      Format.eprintf "devilc: %s@." msg;
      1
  | Ok (name, src) -> (
      match parse_config config with
      | exception Failure msg ->
          Format.eprintf "devilc: %s@." msg;
          1
      | config -> k ~name ~src ~config)

let compile ~name ~src ~config =
  Check.compile ~config ~file:name src

let check_cmd =
  let run builtin file config =
    with_input builtin file config (fun ~name ~src ~config ->
        match compile ~name ~src ~config with
        | Ok device ->
            Format.printf
              "%s: specification verified (%d port(s), %d register(s), %d \
               variable(s), %d structure(s))@."
              name
              (List.length device.Devil_ir.Ir.d_ports)
              (List.length device.Devil_ir.Ir.d_regs)
              (List.length device.Devil_ir.Ir.d_vars)
              (List.length device.Devil_ir.Ir.d_structs);
            0
        | Error diags ->
            Format.eprintf "%a@." Diagnostics.pp diags;
            1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a Devil specification (paper section 3.1).")
    Term.(const run $ builtin_arg $ file_arg $ config_arg)

let emit_c_cmd =
  let prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "prefix" ] ~docv:"PREFIX"
          ~doc:"Accessor prefix of the generated stubs (default: device name).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the header to $(docv) instead of standard output.")
  in
  let run builtin file config prefix output =
    with_input builtin file config (fun ~name ~src ~config ->
        match compile ~name ~src ~config with
        | Error diags ->
            Format.eprintf "%a@." Diagnostics.pp diags;
            1
        | Ok device -> (
            let header = Devil_codegen.C_backend.generate ?prefix device in
            match output with
            | None ->
                print_string header;
                0
            | Some path ->
                let oc = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc header);
                0))
  in
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Generate the C stub header for a verified specification.")
    Term.(
      const run $ builtin_arg $ file_arg $ config_arg $ prefix_arg $ out_arg)

let emit_ocaml_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the module to $(docv) instead of standard output.")
  in
  let run builtin file config output =
    with_input builtin file config (fun ~name ~src ~config ->
        match compile ~name ~src ~config with
        | Error diags ->
            Format.eprintf "%a@." Diagnostics.pp diags;
            1
        | Ok device -> (
            let text = Devil_codegen.Ocaml_backend.generate device in
            match output with
            | None ->
                print_string text;
                0
            | Some path ->
                let oc = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc text);
                0))
  in
  Cmd.v
    (Cmd.info "emit-ocaml"
       ~doc:
         "Generate an OCaml stub module (a functor over a bus environment) \
          for a verified specification.")
    Term.(const run $ builtin_arg $ file_arg $ config_arg $ out_arg)

let doc_cmd =
  let markdown_arg =
    Arg.(
      value & flag
      & info [ "m"; "markdown" ] ~doc:"Emit Markdown instead of plain text.")
  in
  let run builtin file config markdown =
    with_input builtin file config (fun ~name ~src ~config ->
        match compile ~name ~src ~config with
        | Error diags ->
            Format.eprintf "%a@." Diagnostics.pp diags;
            1
        | Ok device ->
            print_string
              (if markdown then Devil_codegen.Doc_backend.generate_markdown device
               else Devil_codegen.Doc_backend.generate device);
            0)
  in
  Cmd.v
    (Cmd.info "doc"
       ~doc:
         "Render a verified specification as a data sheet (register map, \
          functional interface).")
    Term.(const run $ builtin_arg $ file_arg $ config_arg $ markdown_arg)

let dump_cmd =
  let run builtin file config =
    with_input builtin file config (fun ~name ~src ~config:_ ->
        match Devil_syntax.Parser.parse_device_result ~file:name src with
        | Ok ast ->
            Format.printf "%a@." Devil_syntax.Pretty.pp_device ast;
            0
        | Error item ->
            Format.eprintf "%a@." Diagnostics.pp_item item;
            1)
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Parse and pretty-print a specification.")
    Term.(const run $ builtin_arg $ file_arg $ config_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (name, src) ->
        Format.printf "%-20s %4d lines@." name
          (List.length (String.split_on_char '\n' src)))
      Specs.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled device specifications.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "devilc" ~version:"1.0"
       ~doc:
         "Compiler for Devil, the IDL for hardware programming (OSDI 2000).")
    [ check_cmd; emit_c_cmd; emit_ocaml_cmd; doc_cmd; dump_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
