(* Tests for the extension devices (16550 UART, MC146818 RTC, i8042
   keyboard controller): models, Devil drivers, hand-crafted baselines,
   and their agreement. *)

module Machine = Drivers.Machine
module Serial = Drivers.Serial
module Rtc = Drivers.Rtc

let case name f = Alcotest.test_case name `Quick f

(* {1 UART model} *)

let uart_setup () =
  let u = Hwsim.Uart16550.create () in
  let m = Hwsim.Uart16550.model u in
  ( u,
    (fun off -> m.Hwsim.Model.read ~width:8 ~offset:off),
    fun off v -> m.Hwsim.Model.write ~width:8 ~offset:off ~value:v )

let test_uart_dlab_overlay () =
  let u, rd, wr = uart_setup () in
  wr 3 0x80;  (* DLAB on *)
  wr 0 0x34;
  wr 1 0x12;
  Alcotest.(check int) "divisor" 0x1234 (Hwsim.Uart16550.divisor u);
  Alcotest.(check int) "dll readback" 0x34 (rd 0);
  wr 3 0x03;  (* DLAB off *)
  wr 0 (Char.code 'A');
  Alcotest.(check string) "wire" "A" (Hwsim.Uart16550.take_transmitted u);
  Alcotest.(check int) "divisor untouched" 0x1234 (Hwsim.Uart16550.divisor u)

let test_uart_rx_and_overrun () =
  let u, rd, wr = uart_setup () in
  wr 3 0x03;
  Hwsim.Uart16550.inject u "ok";
  Alcotest.(check bool) "data ready" true (rd 5 land 0x01 <> 0);
  Alcotest.(check int) "first" (Char.code 'o') (rd 0);
  Alcotest.(check int) "second" (Char.code 'k') (rd 0);
  Alcotest.(check bool) "drained" true (rd 5 land 0x01 = 0);
  Hwsim.Uart16550.inject u (String.make 40 'x');
  Alcotest.(check bool) "overrun flagged" true (rd 5 land 0x02 <> 0);
  (* LSR read cleared the sticky error. *)
  Alcotest.(check bool) "cleared on read" true (rd 5 land 0x02 = 0)

let test_uart_loopback_model () =
  let u, rd, wr = uart_setup () in
  wr 3 0x03;
  wr 4 0x10;  (* loopback *)
  wr 0 0x42;
  Alcotest.(check int) "folded back" 0x42 (rd 0);
  Alcotest.(check string) "nothing on the wire" ""
    (Hwsim.Uart16550.take_transmitted u)

(* {1 UART drivers} *)

let test_serial_drivers_agree () =
  let devil () =
    let m = Machine.create ~debug:true () in
    let d = Serial.Devil_driver.create m.uart_dev in
    Serial.Devil_driver.init d ~baud:9600;
    Serial.Devil_driver.send d "hello";
    ( Hwsim.Uart16550.divisor m.uart,
      Hwsim.Uart16550.line_control m.uart land 0x7f,
      Hwsim.Uart16550.take_transmitted m.uart )
  in
  let hand () =
    let m = Machine.create () in
    let h = Serial.Handcrafted.create m.bus ~base:Machine.uart_base in
    Serial.Handcrafted.init h ~baud:9600;
    Serial.Handcrafted.send h "hello";
    ( Hwsim.Uart16550.divisor m.uart,
      Hwsim.Uart16550.line_control m.uart land 0x7f,
      Hwsim.Uart16550.take_transmitted m.uart )
  in
  let d1, l1, w1 = devil () and d2, l2, w2 = hand () in
  Alcotest.(check int) "divisor" d2 d1;
  Alcotest.(check int) "line control" l2 l1;
  Alcotest.(check string) "wire" w2 w1;
  Alcotest.(check int) "divisor value" (115200 / 9600) d1

let test_serial_self_test () =
  let m = Machine.create ~debug:true () in
  let d = Serial.Devil_driver.create m.uart_dev in
  Serial.Devil_driver.init d ~baud:38400;
  Alcotest.(check int) "baud readback" 38400
    (Serial.Devil_driver.configured_baud d);
  Alcotest.(check bool) "devil self-test" true (Serial.Devil_driver.self_test d);
  let h = Serial.Handcrafted.create m.bus ~base:Machine.uart_base in
  Serial.Handcrafted.init h ~baud:38400;
  Alcotest.(check bool) "hand self-test" true (Serial.Handcrafted.self_test h)

let test_serial_receive () =
  let m = Machine.create ~debug:true () in
  let d = Serial.Devil_driver.create m.uart_dev in
  Serial.Devil_driver.init d ~baud:9600;
  Hwsim.Uart16550.inject m.uart "incoming bytes";
  Alcotest.(check string) "recv" "incoming bytes"
    (Serial.Devil_driver.recv d ~max:32);
  Alcotest.(check string) "drained" "" (Serial.Devil_driver.recv d ~max:4)

(* {1 RTC model} *)

let test_rtc_ticking () =
  let r = Hwsim.Mc146818.create () in
  Hwsim.Mc146818.set_time r ~hours:23 ~minutes:59 ~seconds:58;
  Hwsim.Mc146818.tick_seconds r 3;
  Alcotest.(check (triple int int int)) "midnight wrap" (0, 0, 1)
    (Hwsim.Mc146818.time r)

let test_rtc_bcd () =
  let r = Hwsim.Mc146818.create () in
  let dm = Hwsim.Mc146818.data_model r in
  let im = Hwsim.Mc146818.index_model r in
  let select i = im.Hwsim.Model.write ~width:8 ~offset:0 ~value:i in
  let rd () = dm.Hwsim.Model.read ~width:8 ~offset:0 in
  let wr v = dm.Hwsim.Model.write ~width:8 ~offset:0 ~value:v in
  Hwsim.Mc146818.set_time r ~hours:12 ~minutes:34 ~seconds:56;
  (* Default configuration is binary. *)
  select 0;
  Alcotest.(check int) "binary seconds" 56 (rd ());
  (* Switch status B to BCD. *)
  select 11;
  wr 0x02;
  select 0;
  Alcotest.(check int) "bcd seconds" 0x56 (rd ());
  select 2;
  Alcotest.(check int) "bcd minutes" 0x34 (rd ())

(* {1 RTC drivers} *)

let test_rtc_read_set () =
  let m = Machine.create ~debug:true () in
  let d = Rtc.Devil_driver.create m.rtc_dev in
  Rtc.Devil_driver.set_time d { Rtc.hours = 9; minutes = 41; seconds = 0 };
  let t = Rtc.Devil_driver.read_time d in
  Alcotest.(check int) "hours" 9 t.Rtc.hours;
  Alcotest.(check int) "minutes" 41 t.Rtc.minutes;
  Hwsim.Mc146818.tick_seconds m.rtc 75;
  let t2 = Rtc.Devil_driver.read_time d in
  Alcotest.(check int) "after tick minutes" 42 t2.Rtc.minutes;
  Alcotest.(check int) "after tick seconds" 15 t2.Rtc.seconds

let test_rtc_alarm_flags () =
  let m = Machine.create ~debug:true () in
  let d = Rtc.Devil_driver.create m.rtc_dev in
  Rtc.Devil_driver.set_time d { Rtc.hours = 1; minutes = 0; seconds = 0 };
  Rtc.Devil_driver.set_alarm d { Rtc.hours = 1; minutes = 0; seconds = 5 };
  Rtc.Devil_driver.enable_alarm_irq d true;
  Hwsim.Mc146818.tick_seconds m.rtc 5;
  Alcotest.(check bool) "irq line" true (Hwsim.Mc146818.irq_asserted m.rtc);
  let flags = Rtc.Devil_driver.pending_interrupts d in
  Alcotest.(check bool) "alarm flag (bit 1 of the 4-bit field)" true
    (flags land 0x2 <> 0);
  (* The read acknowledged everything. *)
  Alcotest.(check bool) "acked" false (Hwsim.Mc146818.irq_asserted m.rtc);
  Alcotest.(check int) "no flags left" 0 (Rtc.Devil_driver.pending_interrupts d)

let test_rtc_drivers_agree () =
  let m = Machine.create () in
  let d = Rtc.Devil_driver.create m.rtc_dev in
  let h =
    Rtc.Handcrafted.create m.bus ~index_base:Machine.rtc_index_base
      ~data_base:Machine.rtc_data_base
  in
  Rtc.Handcrafted.set_time h { Rtc.hours = 15; minutes = 30; seconds = 45 };
  let t = Rtc.Devil_driver.read_time d in
  Alcotest.(check bool) "devil reads what hand wrote" true
    (t = { Rtc.hours = 15; minutes = 30; seconds = 45 });
  Rtc.Devil_driver.set_alarm d { Rtc.hours = 15; minutes = 31; seconds = 0 };
  Hwsim.Mc146818.tick_seconds m.rtc 15;
  Rtc.Handcrafted.enable_alarm_irq h true;
  Alcotest.(check bool) "hand sees the alarm flag" true
    (Rtc.Handcrafted.pending_interrupts h land 0x2 <> 0)

(* {1 i8042 keyboard} *)

let test_i8042_model () =
  let k = Hwsim.I8042.create () in
  let dm = Hwsim.I8042.data_model k in
  let cm = Hwsim.I8042.control_model k in
  let data_rd () = dm.Hwsim.Model.read ~width:8 ~offset:0 in
  let data_wr v = dm.Hwsim.Model.write ~width:8 ~offset:0 ~value:v in
  let ctl_rd () = cm.Hwsim.Model.read ~width:8 ~offset:0 in
  let ctl_wr v = cm.Hwsim.Model.write ~width:8 ~offset:0 ~value:v in
  (* self test *)
  ctl_wr 0xaa;
  Alcotest.(check bool) "output full" true (ctl_rd () land 1 = 1);
  Alcotest.(check int) "self-test response" 0x55 (data_rd ());
  (* scancodes queue in order *)
  Alcotest.(check bool) "press accepted" true (Hwsim.I8042.press k 0x1c);
  Alcotest.(check bool) "press accepted" true (Hwsim.I8042.press k 0x9c);
  Alcotest.(check int) "make" 0x1c (data_rd ());
  Alcotest.(check int) "break" 0x9c (data_rd ());
  (* disable: keys are dropped *)
  ctl_wr 0xad;
  Alcotest.(check bool) "rejected while disabled" false (Hwsim.I8042.press k 1);
  ctl_wr 0xae;
  (* LED command *)
  data_wr 0xed;
  Alcotest.(check int) "ack" 0xfa (data_rd ());
  data_wr 0x5;
  Alcotest.(check int) "ack 2" 0xfa (data_rd ());
  Alcotest.(check int) "leds latched" 0x5 (Hwsim.I8042.leds k)

let test_keyboard_drivers_agree () =
  let run_devil () =
    let m = Machine.create ~debug:true () in
    let d = Drivers.Keyboard.Devil_driver.create m.kbd_dev in
    let ok = Drivers.Keyboard.Devil_driver.init d in
    ignore (Hwsim.I8042.press m.kbd 0x2a);
    ignore (Hwsim.I8042.press m.kbd 0x10);
    let s1 = Drivers.Keyboard.Devil_driver.poll_scancode d in
    let s2 = Drivers.Keyboard.Devil_driver.poll_scancode d in
    let s3 = Drivers.Keyboard.Devil_driver.poll_scancode d in
    let leds = Drivers.Keyboard.Devil_driver.set_leds d 0x2 in
    (ok, s1, s2, s3, leds, Hwsim.I8042.leds m.kbd)
  in
  let run_hand () =
    let m = Machine.create () in
    let h =
      Drivers.Keyboard.Handcrafted.create m.bus
        ~data_base:Machine.kbd_data_base ~ctl_base:Machine.kbd_ctl_base
    in
    let ok = Drivers.Keyboard.Handcrafted.init h in
    ignore (Hwsim.I8042.press m.kbd 0x2a);
    ignore (Hwsim.I8042.press m.kbd 0x10);
    let s1 = Drivers.Keyboard.Handcrafted.poll_scancode h in
    let s2 = Drivers.Keyboard.Handcrafted.poll_scancode h in
    let s3 = Drivers.Keyboard.Handcrafted.poll_scancode h in
    let leds = Drivers.Keyboard.Handcrafted.set_leds h 0x2 in
    (ok, s1, s2, s3, leds, Hwsim.I8042.leds m.kbd)
  in
  let d = run_devil () and h = run_hand () in
  Alcotest.(check bool) "same behaviour" true (d = h);
  let ok, s1, s2, s3, leds, led_state = d in
  Alcotest.(check bool) "init ok" true ok;
  Alcotest.(check (option int)) "first scancode" (Some 0x2a) s1;
  Alcotest.(check (option int)) "second scancode" (Some 0x10) s2;
  Alcotest.(check (option int)) "empty" None s3;
  Alcotest.(check bool) "leds acked" true leds;
  Alcotest.(check int) "led state" 0x2 led_state

let test_keyboard_config_roundtrip () =
  let m = Machine.create ~debug:true () in
  let d = Drivers.Keyboard.Devil_driver.create m.kbd_dev in
  Drivers.Keyboard.Devil_driver.write_config d 0x61;
  Alcotest.(check int) "device config" 0x61 (Hwsim.I8042.config_byte m.kbd);
  Alcotest.(check int) "readback" 0x61 (Drivers.Keyboard.Devil_driver.read_config d)

let () =
  Alcotest.run "extensions"
    [
      ( "uart model",
        [
          case "dlab overlay" test_uart_dlab_overlay;
          case "rx fifo and overrun" test_uart_rx_and_overrun;
          case "loopback" test_uart_loopback_model;
        ] );
      ( "uart drivers",
        [
          case "drivers agree" test_serial_drivers_agree;
          case "self test" test_serial_self_test;
          case "receive" test_serial_receive;
        ] );
      ( "rtc model",
        [ case "ticking" test_rtc_ticking; case "bcd" test_rtc_bcd ] );
      ( "rtc drivers",
        [
          case "read and set" test_rtc_read_set;
          case "alarm flags" test_rtc_alarm_flags;
          case "drivers agree" test_rtc_drivers_agree;
        ] );
      ( "keyboard",
        [
          case "i8042 model" test_i8042_model;
          case "drivers agree" test_keyboard_drivers_agree;
          case "config roundtrip" test_keyboard_config_roundtrip;
        ] );
    ]

