(* Unit and property tests for Devil_bits.Bitops. *)

module Bitops = Devil_bits.Bitops

let check_int = Alcotest.(check int)

let test_width_mask () =
  check_int "w0" 0 (Bitops.width_mask 0);
  check_int "w1" 1 (Bitops.width_mask 1);
  check_int "w8" 255 (Bitops.width_mask 8);
  check_int "w16" 65535 (Bitops.width_mask 16);
  check_int "w32" 0xffffffff (Bitops.width_mask 32);
  Alcotest.check_raises "negative" (Invalid_argument "Bitops.width_mask")
    (fun () -> ignore (Bitops.width_mask (-1)));
  Alcotest.check_raises "too wide" (Invalid_argument "Bitops.width_mask")
    (fun () -> ignore (Bitops.width_mask 57))

let test_fits () =
  Alcotest.(check bool) "255 fits 8" true (Bitops.fits ~width:8 255);
  Alcotest.(check bool) "256 not 8" false (Bitops.fits ~width:8 256);
  Alcotest.(check bool) "0 fits 1" true (Bitops.fits ~width:1 0);
  Alcotest.(check bool) "neg not" false (Bitops.fits ~width:8 (-1))

let test_extract () =
  check_int "low nibble" 0xc (Bitops.extract ~hi:3 ~lo:0 0xac);
  check_int "high nibble" 0xa (Bitops.extract ~hi:7 ~lo:4 0xac);
  check_int "single bit" 1 (Bitops.extract ~hi:5 ~lo:5 0x20);
  check_int "whole byte" 0xac (Bitops.extract ~hi:7 ~lo:0 0xac);
  Alcotest.check_raises "inverted" (Invalid_argument "Bitops.extract")
    (fun () -> ignore (Bitops.extract ~hi:0 ~lo:1 0))

let test_insert () =
  check_int "replace low" 0xa5 (Bitops.insert ~hi:3 ~lo:0 ~field:0x5 0xac);
  check_int "replace high" 0x5c (Bitops.insert ~hi:7 ~lo:4 ~field:0x5 0xac);
  check_int "field clipped" 0x10 (Bitops.insert ~hi:4 ~lo:4 ~field:0x3 0x00);
  check_int "untouched bits" 0xf0
    (Bitops.insert ~hi:3 ~lo:0 ~field:0 0xf0)

let test_bits () =
  Alcotest.(check bool) "get set bit" true (Bitops.get_bit 0x10 ~pos:4);
  Alcotest.(check bool) "get clear bit" false (Bitops.get_bit 0x10 ~pos:3);
  check_int "set true" 0x14 (Bitops.set_bit 0x10 ~pos:2 true);
  check_int "set false" 0x00 (Bitops.set_bit 0x10 ~pos:4 false)

let test_sign_extend () =
  check_int "positive" 5 (Bitops.sign_extend ~width:8 5);
  check_int "negative" (-1) (Bitops.sign_extend ~width:8 0xff);
  check_int "-128" (-128) (Bitops.sign_extend ~width:8 0x80);
  check_int "127" 127 (Bitops.sign_extend ~width:8 0x7f);
  check_int "4-bit -3" (-3) (Bitops.sign_extend ~width:4 0xd);
  check_int "masks upper junk" (-1) (Bitops.sign_extend ~width:4 0xff)

let test_to_unsigned () =
  check_int "-1 to 8 bits" 0xff (Bitops.to_unsigned ~width:8 (-1));
  check_int "-128" 0x80 (Bitops.to_unsigned ~width:8 (-128));
  check_int "identity" 42 (Bitops.to_unsigned ~width:8 42)

let test_popcount () =
  check_int "zero" 0 (Bitops.popcount 0);
  check_int "ff" 8 (Bitops.popcount 0xff);
  check_int "a5" 4 (Bitops.popcount 0xa5)

let test_pp_binary () =
  Alcotest.(check string)
    "8 bits" "10100101"
    (Format.asprintf "%a" (Bitops.pp_binary ~width:8) 0xa5);
  Alcotest.(check string)
    "3 bits" "101"
    (Format.asprintf "%a" (Bitops.pp_binary ~width:3) 0x5)

(* Properties *)

let prop_extract_insert =
  QCheck.Test.make ~name:"insert then extract returns the field" ~count:500
    QCheck.(triple (int_bound 55) (int_bound 55) (int_bound 0xffff))
    (fun (a, b, v) ->
      let hi = max a b and lo = min a b in
      let field = v land Bitops.width_mask (min 16 (hi - lo + 1)) in
      Bitops.extract ~hi ~lo (Bitops.insert ~hi ~lo ~field 0)
      = field land Bitops.width_mask (hi - lo + 1))

let prop_insert_preserves =
  QCheck.Test.make ~name:"insert leaves other bits alone" ~count:500
    QCheck.(triple (int_bound 15) (int_bound 0xffff) (int_bound 0xffff))
    (fun (lo, field, image) ->
      let hi = min 55 (lo + 3) in
      let m = Bitops.width_mask (hi - lo + 1) lsl lo in
      Bitops.insert ~hi ~lo ~field image land lnot m = image land lnot m)

let prop_sign_roundtrip =
  QCheck.Test.make ~name:"to_unsigned inverts sign_extend" ~count:500
    QCheck.(pair (int_range 1 30) (int_bound 0x3fffffff))
    (fun (width, v) ->
      let v = v land Bitops.width_mask width in
      Bitops.to_unsigned ~width (Bitops.sign_extend ~width v) = v)

let () =
  Alcotest.run "bitops"
    [
      ( "unit",
        [
          Alcotest.test_case "width_mask" `Quick test_width_mask;
          Alcotest.test_case "fits" `Quick test_fits;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "get/set bit" `Quick test_bits;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "to_unsigned" `Quick test_to_unsigned;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "pp_binary" `Quick test_pp_binary;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_extract_insert; prop_insert_preserves; prop_sign_roundtrip ]
      );
    ]
