(* Tests for the static verifier (Devil_check.Check) — one test per
   property family of paper section 3.1, plus the trigger-sharing and
   serialization rules. *)

module Check = Devil_check.Check
module Value = Devil_ir.Value
module Diagnostics = Devil_syntax.Diagnostics

let wrap body = "device d (base : bit[8] port @ {0..1}) {" ^ body ^ "}"

let accepts ?config body =
  match Check.compile ?config (wrap body) with
  | Ok _ -> ()
  | Error diags ->
      Alcotest.fail (Format.asprintf "rejected:@.%a" Diagnostics.pp diags)

let rejects ?config ~matching body =
  match Check.compile ?config (wrap body) with
  | Ok _ -> Alcotest.fail ("accepted: " ^ body)
  | Error diags ->
      let messages =
        List.map (fun i -> i.Diagnostics.message) (Diagnostics.items diags)
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      if not (List.exists (fun m -> contains m matching) messages) then
        Alcotest.fail
          (Format.asprintf "expected a diagnostic containing %S, got:@.%a"
             matching Diagnostics.pp diags)

(* A minimal valid body to build variations from. *)
let ok_body =
  "register a = base @ 0 : bit[8]; variable va = a : int(8);
   register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_baseline () = accepts ok_body

(* {1 Strong typing} *)

let test_width_mismatch () =
  rejects ~matching:"does not match"
    "register a = base @ 0 : bit[8]; variable va = a : int(4);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_bool_width () =
  rejects ~matching:"bool requires 1 bit"
    "register a = base @ 0 : bit[8]; variable va = a[1..0] : bool;
     variable rest = a[7..2] : int(6);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_enum_pattern_width () =
  rejects ~matching:"bits wide"
    "register a = base @ 0 : bit[8];
     variable va = a[0] : { ON => '11', OFF => '00' };
     variable rest = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_enum_not_exhaustive () =
  rejects ~matching:"not exhaustive"
    "register a = base @ 0 : bit[8];
     variable va = a[1..0] : { X <=> '00', Y <=> '01' };
     variable rest = a[7..2] : int(6);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_enum_duplicate_symbol () =
  rejects ~matching:"defined twice"
    "register a = base @ 0 : bit[8];
     variable va = a[0] : { X => '0', X => '1' };
     variable rest = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_enum_duplicate_pattern () =
  rejects ~matching:"share the bit pattern"
    "register a = base @ 0 : bit[8];
     variable va = a[0] : { X => '1', Y => '1', OFF => '0' };
     variable rest = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_read_mapping_on_writeonly () =
  rejects ~matching:"read mappings"
    "register a = write base @ 0 : bit[8];
     variable va = a[0] : { ON <=> '1', OFF <=> '0' };
     variable rest = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_forced_bit_use () =
  rejects ~matching:"forces"
    "register a = base @ 0, mask '0.......' : bit[8]; variable va = a : int(8);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_action_type_error () =
  rejects ~matching:"does not fit"
    "register idx = write base @ 0 : bit[8];
     private variable i = idx[1..0] : int(2);
     variable rest = idx[7..2] : int(6);
     register b = base @ 1, pre {i = 7} : bit[8]; variable vb = b : int(8);"

let test_register_size_vs_port () =
  rejects ~matching:"transfers"
    "register a = base @ 0 : bit[16]; variable va = a : int(16);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

(* {1 No omission} *)

let test_unused_port_offset () =
  rejects ~matching:"never used"
    "register a = base @ 0 : bit[8]; variable va = a : int(8);"

let test_unused_register_bit () =
  rejects ~matching:"never used"
    "register a = base @ 0 : bit[8]; variable va = a[6..0] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_register_without_variable () =
  rejects ~matching:"defines no variable"
    "register a = base @ 0 : bit[8]; variable va = a : int(8);
     register b = base @ 1 : bit[8];"

(* {1 No overlapping definitions} *)

let test_overlapping_bits () =
  rejects ~matching:"two different variables"
    "register a = base @ 0 : bit[8];
     variable va = a : int(8); variable w = a[0] : bool;
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_overlapping_registers () =
  rejects ~matching:"overlap"
    "register a = base @ 0 : bit[8]; variable va = a : int(8);
     register a2 = read base @ 0 : bit[8]; variable va2 = a2 : int(8);
     register b = write base @ 1 : bit[8]; variable vb = b : int(8);"

let test_disjoint_pre_actions_allowed () =
  accepts
    "register idx = write base @ 1, mask '000000..' : bit[8];
     private variable i = idx[1..0] : int(2);
     register x = read base @ 0, pre {i = 0} : bit[8];
     variable vx = x, volatile : int(8);
     register y = read base @ 0, pre {i = 1} : bit[8];
     variable vy = y, volatile : int(8);
     register w = write base @ 0 : bit[8];
     variable vw = w : int(8);"

let test_distinguishing_masks_allowed () =
  (* Bit 7 forced to different values decodes the destination, like the
     8259's ICW1 vs OCW bit 4. *)
  accepts
    "register a = write base @ 0, mask '1.......' : bit[8];
     variable va = a[6..0] : int(7);
     register c = write base @ 0, mask '0.......' : bit[8];
     variable vc = c[6..0] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);
     register r = read base @ 0 : bit[8]; variable vr = r, volatile : int(8);"

let test_serialization_exempts_overlap () =
  accepts
    "register ffr = write base @ 1 : bit[8];
     private variable ff = ffr, write trigger : int(8);
     register lo = base @ 0, pre {ff = *} : bit[8];
     register hi = base @ 0 : bit[8];
     variable x = hi # lo : int(16) serialized as { lo; hi };"

(* {1 Trigger sharing} *)

let test_trigger_needs_neutral () =
  rejects ~matching:"neutral"
    "register a = base @ 0 : bit[8];
     variable go = a[0], write trigger : bool;
     variable param = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_trigger_with_neutral_ok () =
  accepts
    "register a = base @ 0 : bit[8];
     variable go = a[0], write trigger except STAY :
       { FIRE => '1', STAY => '0', BUSY <= '1', QUIET <= '0' };
     variable param = a[7..1] : int(7);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

let test_lone_trigger_ok () =
  accepts
    "register a = base @ 0 : bit[8];
     variable go = a, volatile, write trigger : int(8);
     register b = base @ 1 : bit[8]; variable vb = b : int(8);"

(* {1 Serialization consistency} *)

let test_serial_must_cover () =
  rejects ~matching:"not covered"
    "register lo = base @ 0 : bit[8];
     register hi = base @ 1 : bit[8];
     variable x = hi # lo : int(16) serialized as { lo; };"

let test_serial_duplicate () =
  rejects ~matching:"serialized twice"
    "register lo = base @ 0 : bit[8];
     register hi = base @ 1 : bit[8];
     variable x = hi # lo : int(16) serialized as { lo; lo; hi; };"

let test_struct_serial_condition_scope () =
  rejects ~matching:"not a field"
    "register a = base @ 0 : bit[8];
     register b = base @ 1 : bit[8];
     variable outside = b[7] : bool;
     variable vb = b[6..0] : int(7);
     structure s = { variable f = a : int(8); }
       serialized as { if (outside == true) a; };"

(* {1 The bundled specifications are clean} *)

let test_bundled_specs () =
  List.iter
    (fun (name, src) ->
      let config =
        if name = "pic8259" then [ ("is_master", Value.Bool true) ] else []
      in
      match Check.compile ~config ~file:name src with
      | Ok _ -> ()
      | Error diags ->
          Alcotest.fail (Format.asprintf "%s:@.%a" name Diagnostics.pp diags))
    Devil_specs.Specs.all

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "check"
    [
      ("baseline", [ case "minimal device" test_baseline ]);
      ( "strong typing",
        [
          case "width mismatch" test_width_mismatch;
          case "bool width" test_bool_width;
          case "enum pattern width" test_enum_pattern_width;
          case "read exhaustiveness" test_enum_not_exhaustive;
          case "duplicate symbol" test_enum_duplicate_symbol;
          case "duplicate pattern" test_enum_duplicate_pattern;
          case "read mapping needs readable" test_read_mapping_on_writeonly;
          case "forced bit use" test_forced_bit_use;
          case "action value typing" test_action_type_error;
          case "register size vs port" test_register_size_vs_port;
        ] );
      ( "no omission",
        [
          case "unused port offset" test_unused_port_offset;
          case "unused register bit" test_unused_register_bit;
          case "register without variable" test_register_without_variable;
        ] );
      ( "no overlap",
        [
          case "overlapping bits" test_overlapping_bits;
          case "overlapping registers" test_overlapping_registers;
          case "disjoint pre-actions allowed" test_disjoint_pre_actions_allowed;
          case "distinguishing masks allowed" test_distinguishing_masks_allowed;
          case "serialization exempts overlap" test_serialization_exempts_overlap;
        ] );
      ( "triggers",
        [
          case "shared trigger needs neutral" test_trigger_needs_neutral;
          case "neutral provided" test_trigger_with_neutral_ok;
          case "lone trigger" test_lone_trigger_ok;
        ] );
      ( "serialization",
        [
          case "must cover registers" test_serial_must_cover;
          case "no duplicates" test_serial_duplicate;
          case "condition scope" test_struct_serial_condition_scope;
        ] );
      ("library", [ case "bundled specs verify" test_bundled_specs ]);
    ]
