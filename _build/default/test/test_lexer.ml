(* Tests for the Devil lexer. *)

module Lexer = Devil_syntax.Lexer
module Token = Devil_syntax.Token
module Diagnostics = Devil_syntax.Diagnostics

let toks src = List.map (fun t -> t.Token.token) (Lexer.tokenize src)

let token = Alcotest.testable Token.pp Token.equal

let check_tokens msg expected src =
  Alcotest.(check (list token)) msg (expected @ [ Token.EOF ]) (toks src)

let test_idents_keywords () =
  check_tokens "mix"
    [
      Token.KW Token.Kregister;
      Token.IDENT "sig_reg";
      Token.EQ;
      Token.IDENT "base";
      Token.AT;
      Token.INT 1;
      Token.COLON;
      Token.KW Token.Kbit;
      Token.LBRACKET;
      Token.INT 8;
      Token.RBRACKET;
      Token.SEMI;
    ]
    "register sig_reg = base @ 1 : bit[8];";
  check_tokens "uident" [ Token.UIDENT "CONFIGURATION" ] "CONFIGURATION";
  check_tokens "underscore ident" [ Token.IDENT "_x9" ] "_x9"

let test_numbers () =
  check_tokens "decimal" [ Token.INT 123 ] "123";
  check_tokens "hex" [ Token.INT 0x1f ] "0x1f";
  check_tokens "hex upper" [ Token.INT 0xAB ] "0XAB";
  check_tokens "zero" [ Token.INT 0 ] "0"

let test_bitlits () =
  check_tokens "mask" [ Token.BITLIT "1001000." ] "'1001000.'";
  check_tokens "wild" [ Token.BITLIT "****...." ] "'****....'";
  check_tokens "dash" [ Token.BITLIT "-01*" ] "'-01*'"

let test_operators () =
  check_tokens "arrows"
    [ Token.MAPSTO; Token.MAPSFROM; Token.MAPSBOTH ]
    "=> <= <=>";
  check_tokens "eqs" [ Token.EQ; Token.EQEQ; Token.NEQ ] "= == !=";
  check_tokens "misc"
    [ Token.DOTDOT; Token.STAR; Token.HASH; Token.AT; Token.COMMA ]
    ".. * # @ ,"

let test_comments () =
  check_tokens "line comment" [ Token.INT 1; Token.INT 2 ] "1 // comment\n2";
  check_tokens "block comment" [ Token.INT 1; Token.INT 2 ] "1 /* x\ny */ 2";
  check_tokens "empty" [] "  // only\n/* comments */ "

let expect_error src =
  match Lexer.tokenize_result src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("lexed: " ^ src)

let test_errors () =
  expect_error "'10Z0'";
  expect_error "'unterminated";
  expect_error "''";
  expect_error "/* unterminated";
  expect_error "12ab";
  expect_error "0x";
  expect_error "!";
  expect_error "<";
  expect_error ". x";
  expect_error "$"

let test_locations () =
  let ts = Lexer.tokenize ~file:"f.dil" "ab\n  cd" in
  match ts with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "line 1" 1 a.Token.loc.start_pos.line;
      Alcotest.(check int) "col 1" 1 a.Token.loc.start_pos.col;
      Alcotest.(check int) "line 2" 2 b.Token.loc.start_pos.line;
      Alcotest.(check int) "col 3" 3 b.Token.loc.start_pos.col;
      Alcotest.(check string) "text" "cd" b.Token.text
  | _ -> Alcotest.fail "unexpected token count"

let prop_token_text_roundtrip =
  (* Lexing the canonical text of any token yields the token back. *)
  let token_gen =
    QCheck.Gen.oneofl
      [
        Token.IDENT "foo"; Token.UIDENT "BAR"; Token.INT 42;
        Token.BITLIT "10*."; Token.KW Token.Kregister; Token.KW Token.Kmask;
        Token.LBRACE; Token.RBRACE; Token.LPAREN; Token.RPAREN;
        Token.LBRACKET; Token.RBRACKET; Token.AT; Token.COLON; Token.SEMI;
        Token.COMMA; Token.HASH; Token.EQ; Token.EQEQ; Token.NEQ;
        Token.MAPSTO; Token.MAPSFROM; Token.MAPSBOTH; Token.DOTDOT;
        Token.STAR;
      ]
  in
  QCheck.Test.make ~name:"token text relexes to the same token" ~count:200
    (QCheck.make token_gen)
    (fun t ->
      match toks (Token.to_string t) with
      | [ t'; Token.EOF ] -> Token.equal t t'
      | _ -> false)

let prop_sequence_roundtrip =
  let token_list_gen =
    QCheck.Gen.(
      list_size (int_bound 20)
        (oneofl
           [
             Token.IDENT "reg"; Token.INT 7; Token.BITLIT "01*";
             Token.KW Token.Kvariable; Token.AT; Token.COLON; Token.SEMI;
             Token.MAPSTO; Token.DOTDOT; Token.EQEQ;
           ]))
  in
  QCheck.Test.make ~name:"space-joined tokens relex to the same stream"
    ~count:200 (QCheck.make token_list_gen)
    (fun ts ->
      let src = String.concat " " (List.map Token.to_string ts) in
      List.map (fun x -> x) (toks src) = ts @ [ Token.EOF ])

let () =
  Alcotest.run "lexer"
    [
      ( "unit",
        [
          Alcotest.test_case "identifiers and keywords" `Quick
            test_idents_keywords;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "bit literals" `Quick test_bitlits;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "locations" `Quick test_locations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_token_text_roundtrip; prop_sequence_roundtrip ] );
    ]
