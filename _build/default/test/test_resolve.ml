(* Tests for AST -> IR elaboration (Devil_ir.Resolve). *)

module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Resolve = Devil_ir.Resolve
module Mask = Devil_bits.Mask

let wrap body = "device d (base : bit[8] port @ {0..7}) {" ^ body ^ "}"

let elab ?config body =
  match Resolve.elaborate_string ?config (wrap body) with
  | Ok d -> d
  | Error diags ->
      Alcotest.fail
        (Format.asprintf "elaboration failed:@.%a" Devil_syntax.Diagnostics.pp
           diags)

let elab_err ?config body =
  match Resolve.elaborate_string ?config (wrap body) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("elaborated: " ^ body)

let the = function Some x -> x | None -> Alcotest.fail "missing entity"

let test_ports_and_registers () =
  let d = elab "register r = read base @ 0 write base @ 1, mask '10..00..' : bit[8];
                variable v = r[5..4] # r[1..0] : int(4);" in
  let p = the (Ir.find_port d "base") in
  Alcotest.(check int) "width" 8 p.p_width;
  Alcotest.(check (list int)) "offsets" [ 0; 1; 2; 3; 4; 5; 6; 7 ] p.p_offsets;
  let r = the (Ir.find_reg d "r") in
  Alcotest.(check int) "read offset" 0 (the r.r_read).lp_offset;
  Alcotest.(check int) "write offset" 1 (the r.r_write).lp_offset;
  Alcotest.(check int) "forced" 0x80 (Mask.forced_value r.r_mask)

let test_variable_resolution () =
  let d = elab "register h = base @ 0 : bit[8];
                register l = base @ 1 : bit[8];
                variable x = h[3..0] # l[7..6], volatile : int(6);" in
  let v = the (Ir.find_var d "x") in
  Alcotest.(check int) "width" 6 (Ir.var_width v);
  Alcotest.(check bool) "volatile" true v.v_behaviour.b_volatile;
  match v.v_chunks with
  | [ { c_reg = "h"; c_ranges = [ (3, 0) ] }; { c_reg = "l"; c_ranges = [ (7, 6) ] } ] -> ()
  | _ -> Alcotest.fail "chunks"

let test_whole_register_chunk () =
  let d = elab "register r = base @ 0 : bit[8]; variable v = r : int(8);" in
  match (the (Ir.find_var d "v")).v_chunks with
  | [ { c_ranges = [ (7, 0) ]; _ } ] -> ()
  | _ -> Alcotest.fail "whole-register chunk"

let test_template_instantiation () =
  let d =
    elab
      "register idx = write base @ 0 : bit[8];
       private variable ia = idx : int(8);
       register T(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];
       register T5 = T(5), mask '......0.';
       variable v = T5[7..2] : int(6);
       variable w = T5[0] : bool;"
  in
  let r = the (Ir.find_reg d "T5") in
  Alcotest.(check bool) "provenance" true (r.r_from_template = Some ("T", [ 5 ]));
  (match r.r_pre with
  | [ Ir.Set_var { target = "ia"; value = Ir.O_int 5 } ] -> ()
  | _ -> Alcotest.fail "substituted pre-action");
  match Mask.bit r.r_mask 1 with
  | Mask.Forced false -> ()
  | _ -> Alcotest.fail "mask override"

let test_trigger_merge () =
  let d =
    elab
      "register r = base @ 0 : bit[8];
       variable v = r, read trigger, write trigger except OFF :
         { OFF <=> '00000000', ON => '00000001', RUNNING <= '*******1' };"
  in
  match (the (Ir.find_var d "v")).v_behaviour.b_trigger with
  | Some { tr_read = true; tr_write = true; tr_exempt = Some (Ir.Neutral (Value.Enum "OFF")) } -> ()
  | _ -> Alcotest.fail "merged trigger"

let test_conditionals () =
  let body =
    "register r = base @ 0 : bit[8];
     if (wide == true) { variable v = r : int(8); }
     else { variable v = r[3..0] : int(4); variable w = r[7..4] : int(4); }"
  in
  let full = "device d (base : bit[8] port @ {0..7}, wide : bool) {" ^ body ^ "}" in
  (match Resolve.elaborate_string ~config:[ ("wide", Value.Bool true) ] full with
  | Ok d -> Alcotest.(check int) "then branch" 1 (List.length d.d_vars)
  | Error _ -> Alcotest.fail "config true");
  (match Resolve.elaborate_string ~config:[ ("wide", Value.Bool false) ] full with
  | Ok d -> Alcotest.(check int) "else branch" 2 (List.length d.d_vars)
  | Error _ -> Alcotest.fail "config false");
  match Resolve.elaborate_string full with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing config accepted"

let test_structure_fields () =
  let d =
    elab
      "register r = base @ 0 : bit[8];
       structure s = { variable a = r[3..0], volatile : int(4);
                       variable b = r[7..4], volatile : int(4); };"
  in
  let s = the (Ir.find_struct d "s") in
  Alcotest.(check (list string)) "fields" [ "a"; "b" ] s.s_fields;
  Alcotest.(check (option string))
    "owner" (Some "s")
    (the (Ir.find_var d "a")).v_struct

let test_self_referencing_set () =
  (* set {xm = v} on v itself, as in the CS4236B XRAE variable. *)
  let d =
    elab
      "private variable xm : bool;
       register r = base @ 0 : bit[8];
       variable v = r[0], set {xm = v}, write trigger for true : bool;
       variable rest = r[7..1] : int(7);"
  in
  match (the (Ir.find_var d "v")).v_set with
  | [ Ir.Set_var { target = "xm"; value = Ir.O_var "v" } ] -> ()
  | _ -> Alcotest.fail "self-referencing set action"

let test_errors () =
  elab_err "register r = nosuch @ 0 : bit[8];";
  elab_err "register r = base @ 9 : bit[8];";
  elab_err "register r = base @ 0 : bit[8]; register r = base @ 1 : bit[8];";
  elab_err "register r = base @ 0 : bit[8]; variable v = r : int(8); variable v = r : int(8);";
  elab_err "variable v = nosuch : int(8);";
  elab_err "register r = base @ 0 : bit[8]; variable v = r[9..8] : int(2);";
  elab_err "register r = base @ 0 : bit[8]; variable v = r[0..3] : int(4);";
  elab_err "register r = base @ 0 : bit[8]; variable v = r;";
  elab_err "register r = base @ 0, mask '101' : bit[8]; variable v = r : int(8);";
  elab_err "register T(i : int{0..3}) = base @ 1 : bit[8]; register T9 = T(9);";
  elab_err "register T(i : int{0..3}) = base @ 1 : bit[8]; register T0 = T(0, 1);";
  elab_err "register r = base @ 0, pre {ghost = 1} : bit[8]; variable v = r : int(8);";
  elab_err "register r = base @ 0 : bit[8]; variable v = r : int(40);"

let () =
  Alcotest.run "resolve"
    [
      ( "elaboration",
        [
          Alcotest.test_case "ports and registers" `Quick
            test_ports_and_registers;
          Alcotest.test_case "variables" `Quick test_variable_resolution;
          Alcotest.test_case "whole-register chunks" `Quick
            test_whole_register_chunk;
          Alcotest.test_case "template instantiation" `Quick
            test_template_instantiation;
          Alcotest.test_case "trigger merge" `Quick test_trigger_merge;
          Alcotest.test_case "conditional declarations" `Quick
            test_conditionals;
          Alcotest.test_case "structures" `Quick test_structure_fields;
          Alcotest.test_case "self-referencing set" `Quick
            test_self_referencing_set;
        ] );
      ("errors", [ Alcotest.test_case "rejections" `Quick test_errors ]);
    ]
