(* Tests for variable types and value encoding (Devil_ir.Dtype). *)

module Dtype = Devil_ir.Dtype
module Value = Devil_ir.Value
module Bitpat = Devil_bits.Bitpat

let enum cases =
  Dtype.Enum
    (List.map
       (fun (name, dir, pat) ->
         { Dtype.case_name = name; dir; pattern = Bitpat.of_string_exn pat })
       cases)

let config_ty =
  enum [ ("CONFIGURATION", Dtype.Write, "1"); ("DEFAULT_MODE", Dtype.Write, "0") ]

let rd_ty =
  enum
    [
      ("NODMA", Dtype.Both, "100");
      ("IDLE", Dtype.Read, "000");
      ("REMOTE_READ", Dtype.Both, "001");
      ("DONE", Dtype.Read, "1*1");
    ]

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let err = function Error _ -> () | Ok _ -> Alcotest.fail "expected an error"

let test_bool () =
  Alcotest.(check int) "true" 1 (ok (Dtype.encode Dtype.Bool (Value.Bool true)));
  Alcotest.(check int) "false" 0 (ok (Dtype.encode Dtype.Bool (Value.Bool false)));
  err (Dtype.encode Dtype.Bool (Value.Int 1));
  (match ok (Dtype.decode Dtype.Bool 1) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Value.to_string v));
  Alcotest.(check int) "width" 1 (Dtype.width Dtype.Bool)

let test_unsigned () =
  let ty = Dtype.Int { signed = false; bits = 4 } in
  Alcotest.(check int) "encode" 9 (ok (Dtype.encode ty (Value.Int 9)));
  err (Dtype.encode ty (Value.Int 16));
  err (Dtype.encode ty (Value.Int (-1)));
  err (Dtype.encode ty (Value.Bool true));
  match ok (Dtype.decode ty 9) with
  | Value.Int 9 -> ()
  | v -> Alcotest.fail (Value.to_string v)

let test_signed () =
  let ty = Dtype.Int { signed = true; bits = 8 } in
  Alcotest.(check int) "-3" 0xfd (ok (Dtype.encode ty (Value.Int (-3))));
  Alcotest.(check int) "127" 127 (ok (Dtype.encode ty (Value.Int 127)));
  err (Dtype.encode ty (Value.Int 128));
  err (Dtype.encode ty (Value.Int (-129)));
  match ok (Dtype.decode ty 0xfd) with
  | Value.Int -3 -> ()
  | v -> Alcotest.fail (Value.to_string v)

let test_int_set () =
  let ty = Dtype.Int_set { values = [ 0; 1; 2; 3; 17; 25 ]; bits = 5 } in
  Alcotest.(check int) "member" 17 (ok (Dtype.encode ty (Value.Int 17)));
  err (Dtype.encode ty (Value.Int 4));
  (match Dtype.validate_read_raw ty 25 with Ok () -> () | Error e -> Alcotest.fail e);
  err (Dtype.validate_read_raw ty 24)

let test_enum_write () =
  Alcotest.(check int)
    "writable case" 1
    (ok (Dtype.encode config_ty (Value.Enum "CONFIGURATION")));
  err (Dtype.encode config_ty (Value.Enum "MISSING"));
  (* Read-only cases cannot be written. *)
  err (Dtype.encode rd_ty (Value.Enum "IDLE"));
  (* Wildcard cases denote no single value. *)
  err (Dtype.encode rd_ty (Value.Enum "DONE"))

let test_enum_read () =
  (match ok (Dtype.decode rd_ty 0) with
  | Value.Enum "IDLE" -> ()
  | v -> Alcotest.fail (Value.to_string v));
  (* First matching readable case wins: 100 is NODMA, not DONE. *)
  (match ok (Dtype.decode rd_ty 4) with
  | Value.Enum "NODMA" -> ()
  | v -> Alcotest.fail (Value.to_string v));
  (match ok (Dtype.decode rd_ty 5) with
  | Value.Enum "DONE" -> ()
  | v -> Alcotest.fail (Value.to_string v));
  (* 010 matches no readable case. *)
  err (Dtype.decode rd_ty 2);
  err (Dtype.validate_read_raw rd_ty 2)

let test_find_case () =
  Alcotest.(check bool)
    "found" true
    (Option.is_some (Dtype.find_case rd_ty "NODMA"));
  Alcotest.(check bool)
    "missing" true
    (Option.is_none (Dtype.find_case rd_ty "NOPE"));
  Alcotest.(check bool)
    "non-enum" true
    (Option.is_none (Dtype.find_case Dtype.Bool "NODMA"))

let prop_unsigned_roundtrip =
  QCheck.Test.make ~name:"unsigned encode/decode roundtrip" ~count:300
    QCheck.(pair (int_range 1 16) (int_bound 0xffff))
    (fun (bits, v) ->
      let ty = Dtype.Int { signed = false; bits } in
      let v = v land Devil_bits.Bitops.width_mask bits in
      match Dtype.encode ty (Value.Int v) with
      | Ok raw -> (
          match Dtype.decode ty raw with
          | Ok (Value.Int v') -> v = v'
          | _ -> false)
      | Error _ -> false)

let prop_signed_roundtrip =
  QCheck.Test.make ~name:"signed encode/decode roundtrip" ~count:300
    QCheck.(pair (int_range 2 16) (int_range (-32768) 32767))
    (fun (bits, v) ->
      let ty = Dtype.Int { signed = true; bits } in
      let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
      QCheck.assume (v >= lo && v <= hi);
      match Dtype.encode ty (Value.Int v) with
      | Ok raw -> (
          match Dtype.decode ty raw with
          | Ok (Value.Int v') -> v = v'
          | _ -> false)
      | Error _ -> false)

let () =
  Alcotest.run "dtype"
    [
      ( "unit",
        [
          Alcotest.test_case "bool" `Quick test_bool;
          Alcotest.test_case "unsigned int" `Quick test_unsigned;
          Alcotest.test_case "signed int" `Quick test_signed;
          Alcotest.test_case "int sets" `Quick test_int_set;
          Alcotest.test_case "enum writes" `Quick test_enum_write;
          Alcotest.test_case "enum reads" `Quick test_enum_read;
          Alcotest.test_case "find_case" `Quick test_find_case;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_unsigned_roundtrip; prop_signed_roundtrip ] );
    ]
