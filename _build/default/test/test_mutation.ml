(* Tests for the mutation-analysis engine: the mutation rules (with the
   paper's own counting example), the C-subset checker's detection
   classes, the CDevil constraint checking, and targeted Devil mutants
   that the verifier must catch or must miss. *)

module Mutop = Mutation.Mutop
module C_lang = Mutation.C_lang
module Corpus = Mutation.Corpus
module Analysis = Mutation.Analysis
module Check = Devil_check.Check

let case name f = Alcotest.test_case name `Quick f

(* {1 Mutation rules} *)

let test_paper_counting_example () =
  (* "given an integer of two digits in base ten, 50 mutants can be
     generated (2 for removing a digit, 30 for inserting a new digit,
     and 18 for replacing a digit)". The paper's arithmetic counts
     duplicates (inserting '1' before or after the '1' of "12" both
     give "112", likewise '2' around the '2'); our generator dedups,
     so a digits-distinct two-digit number yields 50 - 2 = 48. *)
  let ms = Mutop.mutate_decimal "12" in
  Alcotest.(check int) "48 distinct mutants for a two-digit number" 48
    (List.length ms);
  Alcotest.(check bool) "removal" true (List.mem "1" ms);
  Alcotest.(check bool) "insertion" true (List.mem "112" ms);
  Alcotest.(check bool) "replacement" true (List.mem "92" ms);
  Alcotest.(check bool) "original excluded" false (List.mem "12" ms)

let test_hex_mutants () =
  let ms = Mutop.mutate_hex "0xf" in
  Alcotest.(check bool) "prefix kept" true
    (List.for_all (fun m -> String.length m >= 2 && String.sub m 0 2 = "0x") ms);
  Alcotest.(check bool) "empty-digit mutant kept" true (List.mem "0x" ms)

let test_ident_mutants () =
  let ms = Mutop.mutate_ident "dx" in
  Alcotest.(check bool) "removal" true (List.mem "d" ms);
  Alcotest.(check bool) "no digit-leading" false
    (List.exists (fun m -> m <> "" && m.[0] >= '0' && m.[0] <= '9') ms);
  Alcotest.(check bool) "distinct" false (List.mem "dx" ms)

let test_operator_mutants () =
  let ms = Mutop.mutate_operator ~ops:C_lang.operators "&" in
  Alcotest.(check bool) "&&" true (List.mem "&&" ms);
  Alcotest.(check bool) "&=" true (List.mem "&=" ms);
  Alcotest.(check bool) "not <<=" false (List.mem "<<=" ms);
  let ms2 = Mutop.mutate_operator ~ops:C_lang.operators "<=" in
  Alcotest.(check bool) "< from <=" true (List.mem "<" ms2);
  Alcotest.(check bool) "== from <= (one char replaced)" true
    (List.mem "==" ms2);
  Alcotest.(check bool) "|| not distance 1 of <=" false (List.mem "||" ms2)

let test_bitlit_mutants () =
  let ms = Mutop.mutate_bitlit "10" in
  Alcotest.(check bool) "replace" true (List.mem "00" ms);
  Alcotest.(check bool) "wildcards" true (List.mem "*0" ms);
  Alcotest.(check bool) "removal" true (List.mem "1" ms);
  Alcotest.(check bool) "insert" true (List.mem "100" ms)

let test_edit_distance () =
  Alcotest.(check bool) "same" false (Mutop.edit_distance1 "ab" "ab");
  Alcotest.(check bool) "replace" true (Mutop.edit_distance1 "ab" "ac");
  Alcotest.(check bool) "insert" true (Mutop.edit_distance1 "ab" "axb");
  Alcotest.(check bool) "delete" true (Mutop.edit_distance1 "ab" "a");
  Alcotest.(check bool) "two edits" false (Mutop.edit_distance1 "ab" "cd")

(* {1 The C-subset checker} *)

let env =
  {
    C_lang.vars = [ "x"; "y" ];
    consts = [ ("LIMIT", Some 10) ];
    funcs =
      [
        ("inb", { C_lang.arity = 1; args = [] });
        ("outb", { C_lang.arity = 2; args = [] });
        ("set_small", { C_lang.arity = 1; args = [ C_lang.Range (0, 3) ] });
        ("set_mode", { C_lang.arity = 1; args = [ C_lang.One_of [ 0; 16 ] ] });
      ];
  }

let accepts src =
  match C_lang.check ~env src with
  | Ok () -> ()
  | Error m -> Alcotest.fail (m ^ " in: " ^ src)

let rejects src =
  match C_lang.check ~env src with
  | Error _ -> ()
  | Ok () -> Alcotest.fail ("compiled: " ^ src)

let test_c_accepts () =
  accepts "void f(void) { x = inb(0x10) & 0xff; outb(x, 0x20); }";
  accepts "int f(int a) { int b = a; while (b > 0) b--; return b; }";
  accepts "#define P 0x3c\nvoid f(void) { outb(LIMIT, P); }";
  accepts "void f(void) { for (x = 0; x < 4; x++) y += x; }";
  accepts "void f(void) { if (x == 1) { y = 2; } else y = 3; }";
  accepts "void f(void) { do { x--; } while (x); }";
  accepts "static unsigned char t[4];\nvoid f(void) { t[1] = 2; }";
  accepts "void f(void) { x = y > 1 ? 2 : 3; }"

let test_c_rejects () =
  rejects "void f(void) { z = 1; }";  (* undeclared *)
  rejects "void f(void) { x = inb(1, 2); }";  (* arity *)
  rejects "void f(void) { x = nosuch(1); }";  (* unknown function *)
  rejects "void f(void) { x = LIMIT(1); }";  (* constant called *)
  rejects "void f(void) { 5 = x; }";  (* lvalue *)
  rejects "void f(void) { LIMIT = 3; }";  (* assignment to constant *)
  rejects "void f(void) { inb(0)++; }";  (* increment of rvalue *)
  rejects "void f(void) { x = 0x; }";  (* malformed hex *)
  rejects "void f(void) { x = 09; }";  (* bad octal *)
  rejects "void f(void) { x = 1 }";  (* missing semicolon *)
  rejects "void f(void) { if x == 1 y = 2; }";  (* missing parens *)
  rejects "void f(void) @ x = 1;"  (* stray character *)

let test_c_permissiveness () =
  (* What C silently accepts — the essence of the experiment. *)
  accepts "void f(void) { x = inb(0x999) & 0xef; }";  (* wrong constant *)
  accepts "void f(void) { x = y | 1; }";  (* | for || *)
  accepts "void f(void) { x = y << 3; y; }";  (* useless expression *)
  accepts "void f(void) { outb(0x20, 0x10); }"  (* swapped arguments *)

let test_cdevil_constraints () =
  accepts "void f(void) { set_small(3); }";
  rejects "void f(void) { set_small(4); }";
  rejects "void f(void) { set_small(LIMIT); }";  (* constant propagated *)
  accepts "void f(void) { set_small(x); }";  (* dynamic: compile-time ok *)
  accepts "void f(void) { set_mode(16); }";
  rejects "void f(void) { set_mode(15); }"

let test_corpora_compile () =
  List.iter
    (fun (name, env, src) ->
      match C_lang.check ~env src with
      | Ok () -> ()
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    [
      ("busmouse C", Corpus.c_env, Corpus.busmouse_c);
      ("ide C", Corpus.c_env, Corpus.ide_c);
      ("ne2000 C", Corpus.c_env, Corpus.ne2000_c);
      ("busmouse CDevil", Corpus.busmouse_cdevil_env (), Corpus.busmouse_cdevil);
      ("ide CDevil", Corpus.ide_cdevil_env (), Corpus.ide_cdevil);
      ("ne2000 CDevil", Corpus.ne2000_cdevil_env (), Corpus.ne2000_cdevil);
      ("uart C", Corpus.c_env, Corpus.uart_c);
      ("uart CDevil", Corpus.uart_cdevil_env (), Corpus.uart_cdevil);
    ]

(* {1 Targeted Devil mutants} *)

let detected src =
  match Check.compile src with
  | Ok _ -> false
  | Error _ -> true
  | exception _ -> true

let replace_once ~from ~into src =
  (* Replace the first occurrence of [from]. *)
  let n = String.length src and nf = String.length from in
  let rec find i = if i + nf > n then None
    else if String.sub src i nf = from then Some i else find (i + 1) in
  match find 0 with
  | None -> Alcotest.fail ("pattern not found: " ^ from)
  | Some i ->
      String.sub src 0 i ^ into ^ String.sub src (i + nf) (n - i - nf)

let test_devil_detected_mutants () =
  let src = Devil_specs.Specs.busmouse_source in
  (* A corrupted register reference is unresolved. *)
  Alcotest.(check bool) "bad reference" true
    (detected (replace_once ~from:"= sig_reg," ~into:"= sig_rag," src));
  (* Shrinking a bit range leaves a register bit unused. *)
  Alcotest.(check bool) "uncovered bit" true
    (detected (replace_once ~from:"interrupt_reg[4]" ~into:"interrupt_reg[5]" src));
  (* Corrupting a mask's '.' steals the variable's bit. *)
  Alcotest.(check bool) "mask dot to star" true
    (detected (replace_once ~from:"'000.0000'" ~into:"'000*0000'" src));
  (* Changing the type width breaks strong typing. *)
  Alcotest.(check bool) "type width" true
    (detected (replace_once ~from:"int(2)" ~into:"int(3)" src));
  (* Duplicate enum pattern. *)
  Alcotest.(check bool) "duplicate pattern" true
    (detected (replace_once ~from:"DEFAULT_MODE => '0'" ~into:"DEFAULT_MODE => '1'" src));
  (* A changed pre-action constant makes two registers overlap. *)
  Alcotest.(check bool) "pre-action clash" true
    (detected (replace_once ~from:"pre {index = 1}" ~into:"pre {index = 0}" src))

let test_devil_undetected_mutants () =
  let src = Devil_specs.Specs.busmouse_source in
  (* Value-level errors below the consistency rules stay invisible —
     the small residue in the paper's Devil column. *)
  Alcotest.(check bool) "forced-bit value flip" false
    (detected (replace_once ~from:"'1001000.'" ~into:"'1011000.'" src))

let test_analysis_shapes () =
  (* Keep it fast: sample fewer mutants per site. *)
  let saved = !Analysis.max_mutants_per_site in
  Analysis.max_mutants_per_site := 8;
  Fun.protect
    ~finally:(fun () -> Analysis.max_mutants_per_site := saved)
    (fun () ->
      let r = Analysis.busmouse_report () in
      (* The paper's shape: Devil mutants are nearly always detected;
         plain C misses errors several times more often than CDevil. *)
      Alcotest.(check bool) "devil detects nearly all" true
        (r.devil_row.undetected_per_site /. r.devil_row.mutants_per_site
        < 0.10);
      Alcotest.(check bool) "C misses more than CDevil" true
        (r.ratio_cdevil > 1.5);
      Alcotest.(check bool) "C misses more than Devil+CDevil" true
        (r.ratio_combined > 1.0);
      Alcotest.(check bool) "sites positive" true
        (r.c_row.sites > 0 && r.devil_row.sites > 0 && r.cdevil_row.sites > 0))

let () =
  Alcotest.run "mutation"
    [
      ( "rules",
        [
          case "paper's 50-mutant example" test_paper_counting_example;
          case "hex numbers" test_hex_mutants;
          case "identifiers" test_ident_mutants;
          case "operators" test_operator_mutants;
          case "bit literals" test_bitlit_mutants;
          case "edit distance" test_edit_distance;
        ] );
      ( "c checker",
        [
          case "accepts valid driver C" test_c_accepts;
          case "rejects what gcc rejects" test_c_rejects;
          case "accepts what gcc accepts" test_c_permissiveness;
          case "CDevil constant constraints" test_cdevil_constraints;
          case "corpora compile" test_corpora_compile;
        ] );
      ( "devil mutants",
        [
          case "consistency violations detected" test_devil_detected_mutants;
          case "pure value flips undetected" test_devil_undetected_mutants;
        ] );
      ("analysis", [ case "table 1 shape" test_analysis_shapes ]);
    ]
