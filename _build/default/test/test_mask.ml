(* Unit and property tests for register masks (Devil_bits.Mask). *)

module Mask = Devil_bits.Mask

let classify m i =
  match Mask.bit m i with
  | Mask.Covered -> '.'
  | Mask.Forced true -> '1'
  | Mask.Forced false -> '0'
  | Mask.Irrelevant -> '*'

let test_parse_figure1 () =
  (* The index register mask of the paper's Figure 1. *)
  let m = Mask.of_string_exn ~width:8 "1..00000" in
  Alcotest.(check char) "bit 7 forced 1" '1' (classify m 7);
  Alcotest.(check char) "bit 6 covered" '.' (classify m 6);
  Alcotest.(check char) "bit 5 covered" '.' (classify m 5);
  Alcotest.(check char) "bit 4 forced 0" '0' (classify m 4);
  Alcotest.(check char) "bit 0 forced 0" '0' (classify m 0);
  Alcotest.(check (list int)) "covered bits" [ 5; 6 ] (Mask.covered_bits m);
  Alcotest.(check int) "forced value" 0x80 (Mask.forced_value m);
  Alcotest.(check int) "forced positions" 0x9f (Mask.forced_positions m)

let test_irrelevant () =
  let m = Mask.of_string_exn ~width:8 "***-...." in
  Alcotest.(check char) "bit 7" '*' (classify m 7);
  Alcotest.(check char) "bit 4 dash is irrelevant" '*' (classify m 4);
  Alcotest.(check (list int)) "covered" [ 0; 1; 2; 3 ] (Mask.covered_bits m)

let test_all_covered () =
  let m = Mask.all_covered 8 in
  Alcotest.(check (list int))
    "all bits" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (Mask.covered_bits m);
  Alcotest.(check int) "no forced" 0 (Mask.forced_value m)

let test_writable_frame () =
  let m = Mask.of_string_exn ~width:8 "1..00000" in
  (* Writing index value 2 (bits 6..5 = 10): keep covered bits, apply
     forced bits, zero the rest. *)
  Alcotest.(check int) "frame" 0xc0 (Mask.writable_frame m ~value:0x40);
  Alcotest.(check int)
    "irrelevant bits dropped" 0x80
    (Mask.writable_frame m ~value:0x1f);
  let cr = Mask.of_string_exn ~width:8 "1001000." in
  Alcotest.(check int) "cr with bit0=0" 0x90 (Mask.writable_frame cr ~value:0);
  Alcotest.(check int) "cr with bit0=1" 0x91 (Mask.writable_frame cr ~value:1)

let test_errors () =
  (match Mask.of_string ~width:8 "101" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch accepted");
  (match Mask.of_string ~width:8 "10x00000" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid character accepted");
  Alcotest.check_raises "all_covered 0" (Invalid_argument "Mask.all_covered")
    (fun () -> ignore (Mask.all_covered 0))

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let m = Mask.of_string_exn ~width:(String.length s) s in
      (* '-' normalizes to '*'; otherwise text is preserved. *)
      let expected = String.map (fun c -> if c = '-' then '*' else c) s in
      Alcotest.(check string) s expected (Mask.to_string m))
    [ "1..00000"; "****...."; "...*...."; "000.0000"; "1001000."; "--**..01" ]

let mask_gen =
  QCheck.Gen.(
    map
      (fun cells -> String.concat "" cells)
      (list_size (return 8)
         (map (fun i -> List.nth [ "0"; "1"; "."; "*" ] i) (int_bound 3))))

let prop_frame_contains_forced =
  QCheck.Test.make ~name:"writable frame always carries the forced bits"
    ~count:300
    QCheck.(pair (make mask_gen) (int_bound 0xff))
    (fun (text, value) ->
      match Mask.of_string ~width:8 text with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
          let frame = Mask.writable_frame m ~value in
          frame land Mask.forced_positions m = Mask.forced_value m)

let prop_frame_idempotent =
  QCheck.Test.make ~name:"framing is idempotent on covered values"
    ~count:300
    QCheck.(pair (make mask_gen) (int_bound 0xff))
    (fun (text, value) ->
      match Mask.of_string ~width:8 text with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
          let f1 = Mask.writable_frame m ~value in
          (* Re-framing the frame may only differ on forced positions
             that the first pass set. *)
          Mask.writable_frame m ~value:f1 = f1)

let () =
  Alcotest.run "mask"
    [
      ( "unit",
        [
          Alcotest.test_case "figure 1 index mask" `Quick test_parse_figure1;
          Alcotest.test_case "irrelevant classes" `Quick test_irrelevant;
          Alcotest.test_case "all_covered" `Quick test_all_covered;
          Alcotest.test_case "writable_frame" `Quick test_writable_frame;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "to_string" `Quick test_to_string_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_frame_contains_forced; prop_frame_idempotent ] );
    ]
