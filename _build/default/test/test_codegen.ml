(* Tests for the C backend: structural golden checks on the generated
   busmouse header (paper Figure 3), determinism, and — when a C
   compiler is available — an end-to-end test that compiles the
   generated stubs against a tiny C device model and runs them. *)

module C_backend = Devil_codegen.C_backend
module Specs = Devil_specs.Specs

let case name f = Alcotest.test_case name `Quick f

let header () = C_backend.generate ~prefix:"bm" (Specs.busmouse ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let must_contain h fragment =
  if not (contains h fragment) then
    Alcotest.fail ("generated header lacks: " ^ fragment)

let test_structural_golden () =
  let h = header () in
  (* The cache structure of Figure 3c. *)
  must_contain h "struct bm_devil_cache";
  must_contain h "static struct bm_devil_cache bm_cache;";
  must_contain h "struct {";
  (* Enum case macros. *)
  must_contain h "#define BM_CONFIG_CONFIGURATION 0x1u";
  must_contain h "#define BM_INTERRUPT_ENABLE 0x0u";
  (* Masked register write: cr forces 1001000. -> 0x90 over bit 0. *)
  must_contain h "outb((raw & 0x1u) | 0x90u, bm_cache.__dil_base__ + 3);";
  (* Index pre-action inlined into the x_high reader (index = 1). *)
  must_contain h "bm_set_index(0x1u);";
  (* The structure getter reads each register once. *)
  must_contain h "bm_cache.cache_mouse_state.cache_y_high = bm_read_y_high();";
  (* Sign extension for the signed dx/dy accessors. *)
  must_contain h ">> 24)";
  (* Dynamic checks are guarded. *)
  must_contain h "#ifdef DEVIL_DEBUG"

let test_deterministic () =
  Alcotest.(check string) "same output twice" (header ()) (header ())

let test_all_specs_generate () =
  List.iter
    (fun (name, _) ->
      let device =
        match name with
        | "logitech_busmouse" -> Specs.busmouse ()
        | "ne2000" -> Specs.ne2000 ()
        | "ide" -> Specs.ide ()
        | "piix4_ide" -> Specs.piix4_ide ()
        | "dma8237" -> Specs.dma8237 ()
        | "pic8259" -> Specs.pic8259 ()
        | "cs4236b" -> Specs.cs4236b ()
        | "permedia2" -> Specs.permedia2 ()
        | "uart16550" -> Specs.uart16550 ()
        | "mc146818" -> Specs.mc146818 ()
        | "i8042" -> Specs.i8042 ()
        | other -> Alcotest.fail ("unknown spec " ^ other)
      in
      let h = C_backend.generate device in
      Alcotest.(check bool)
        (name ^ " nonempty") true
        (String.length h > 500))
    Specs.all

(* {1 Doc backend} *)

let test_doc_text () =
  let doc = Devil_codegen.Doc_backend.generate (Specs.busmouse ()) in
  List.iter (must_contain doc)
    [
      "Device logitech_busmouse";
      "Register map";
      "Functional interface";
      (* per-bit ownership of the index register *)
      "[=1 | index | index | =0 | =0 | =0 | =0 | =0]";
      "volatile, write trigger";
    ];
  (* Serialization orders appear for the 8237's 16-bit counters. *)
  let dma_doc = Devil_codegen.Doc_backend.generate (Specs.dma8237 ()) in
  must_contain dma_doc "serialized as: cnt0_low; cnt0_high"

let test_doc_markdown () =
  let doc = Devil_codegen.Doc_backend.generate_markdown (Specs.cs4236b ()) in
  must_contain doc "# Device cs4236b";
  must_contain doc "| register | acc | read at | write at |";
  must_contain doc "parameterized";
  (* Private state section lists the automaton cell. *)
  must_contain doc "xm"

let test_doc_all_specs () =
  List.iter
    (fun (name, src) ->
      let config =
        if name = "pic8259" then
          [ ("is_master", Devil_ir.Value.Bool true) ]
        else []
      in
      match Devil_check.Check.compile ~config src with
      | Ok device ->
          let doc = Devil_codegen.Doc_backend.generate device in
          Alcotest.(check bool) (name ^ " doc nonempty") true
            (String.length doc > 300)
      | Error _ -> Alcotest.fail name)
    Specs.all

let c_harness =
  {|
#include <stdio.h>
#include <stdlib.h>

static int bm_dx = 5, bm_dy = -3, bm_buttons = 5, bm_index = 0, bm_sig = 0;
static unsigned int inb(unsigned long addr) {
  unsigned ux = bm_dx & 0xff, uy = bm_dy & 0xff;
  switch ((int)(addr - 0x23c)) {
  case 0:
    switch (bm_index) {
    case 0: return ux & 0xf;
    case 1: return (ux >> 4) & 0xf;
    case 2: return uy & 0xf;
    default: return (bm_buttons << 5) | ((uy >> 4) & 0xf);
    }
  case 1: return bm_sig;
  default: return 0xff;
  }
}
static void outb(unsigned int v, unsigned long addr) {
  switch ((int)(addr - 0x23c)) {
  case 1: bm_sig = v & 0xff; break;
  case 2: if (v & 0x80) bm_index = (v >> 5) & 3; break;
  default: break;
  }
}
static void insb(unsigned long p, void *b, unsigned n) { (void)p;(void)b;(void)n; }
static void insw(unsigned long p, void *b, unsigned n) { (void)p;(void)b;(void)n; }
static void insl(unsigned long p, void *b, unsigned n) { (void)p;(void)b;(void)n; }
static void outsb(unsigned long p, const void *b, unsigned n) { (void)p;(void)b;(void)n; }
static void outsw(unsigned long p, const void *b, unsigned n) { (void)p;(void)b;(void)n; }
static void outsl(unsigned long p, const void *b, unsigned n) { (void)p;(void)b;(void)n; }
void devil_check_failed(const char *what) {
  fprintf(stderr, "devil check failed: %s\n", what);
  exit(1);
}
#define DEVIL_DEBUG
#include "busmouse.dil.h"

int main(void) {
  bm_init(0x23c);
  bm_set_signature(0xa5);
  if (bm_get_signature() != 0xa5) return 1;
  bm_set_config(BM_CONFIG_DEFAULT_MODE);
  bm_set_interrupt(BM_INTERRUPT_ENABLE);
  bm_get_mouse_state();
  if (bm_get_dx() != 5 || bm_get_dy() != -3 || bm_get_buttons() != 5) return 2;
  printf("GENERATED-C-OK\n");
  return 0;
}
|}

let have_gcc () = Sys.command "command -v gcc > /dev/null 2>&1" = 0

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let test_gcc_end_to_end () =
  if not (have_gcc ()) then ()
  else begin
    let dir = Filename.temp_file "devil_cgen" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    write_file (Filename.concat dir "busmouse.dil.h") (header ());
    write_file (Filename.concat dir "main.c") c_harness;
    let cmd =
      Printf.sprintf
        "cd %s && gcc -std=c99 -Wall -Werror -Wno-unused-function -o t main.c \
         && ./t > out.txt 2>&1"
        (Filename.quote dir)
    in
    Alcotest.(check int) "gcc compile and run" 0 (Sys.command cmd);
    let ic = open_in (Filename.concat dir "out.txt") in
    let line = input_line ic in
    close_in ic;
    Alcotest.(check string) "program output" "GENERATED-C-OK" line
  end

let test_gcc_all_headers_compile () =
  (* Every generated header must at least compile standalone. *)
  if not (have_gcc ()) then ()
  else begin
    let dir = Filename.temp_file "devil_cgen_all" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let shims =
      "static unsigned int inb(unsigned long a){(void)a;return 0;}\n\
       static unsigned int inw(unsigned long a){(void)a;return 0;}\n\
       static unsigned int inl(unsigned long a){(void)a;return 0;}\n\
       static void outb(unsigned int v,unsigned long a){(void)v;(void)a;}\n\
       static void outw(unsigned int v,unsigned long a){(void)v;(void)a;}\n\
       static void outl(unsigned int v,unsigned long a){(void)v;(void)a;}\n\
       static void insb(unsigned long p,void*b,unsigned n){(void)p;(void)b;(void)n;}\n\
       static void insw(unsigned long p,void*b,unsigned n){(void)p;(void)b;(void)n;}\n\
       static void insl(unsigned long p,void*b,unsigned n){(void)p;(void)b;(void)n;}\n\
       static void outsb(unsigned long p,const void*b,unsigned n){(void)p;(void)b;(void)n;}\n\
       static void outsw(unsigned long p,const void*b,unsigned n){(void)p;(void)b;(void)n;}\n\
       static void outsl(unsigned long p,const void*b,unsigned n){(void)p;(void)b;(void)n;}\n"
    in
    List.iter
      (fun (name, device) ->
        let h = C_backend.generate ~prefix:name device in
        write_file (Filename.concat dir (name ^ ".h")) h;
        write_file
          (Filename.concat dir (name ^ ".c"))
          (Printf.sprintf "%s#include \"%s.h\"\nint main(void){return 0;}\n"
             shims name);
        let cmd =
          Printf.sprintf
            "cd %s && gcc -std=c99 -Wall -Wno-unused-function -c %s.c 2> %s.err"
            (Filename.quote dir) name name
        in
        if Sys.command cmd <> 0 then begin
          let ic = open_in (Filename.concat dir (name ^ ".err")) in
          let buf = Buffer.create 256 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          close_in ic;
          Alcotest.fail
            (Printf.sprintf "%s.h does not compile:\n%s" name
               (Buffer.contents buf))
        end)
      [
        ("busmouse", Specs.busmouse ());
        ("ne2000", Specs.ne2000 ());
        ("ide", Specs.ide ());
        ("piix4", Specs.piix4_ide ());
        ("dma8237", Specs.dma8237 ());
        ("pic8259", Specs.pic8259 ());
        ("cs4236b", Specs.cs4236b ());
        ("permedia2", Specs.permedia2 ());
        ("uart16550", Specs.uart16550 ());
        ("mc146818", Specs.mc146818 ());
        ("i8042", Specs.i8042 ());
      ]
  end

let () =
  Alcotest.run "codegen"
    [
      ( "text",
        [
          case "structural golden" test_structural_golden;
          case "deterministic" test_deterministic;
          case "all specs generate" test_all_specs_generate;
        ] );
      ( "doc",
        [
          case "text data sheet" test_doc_text;
          case "markdown data sheet" test_doc_markdown;
          case "all specs document" test_doc_all_specs;
        ] );
      ( "gcc",
        [
          case "busmouse stubs run" test_gcc_end_to_end;
          case "all headers compile" test_gcc_all_headers_compile;
        ] );
    ]
