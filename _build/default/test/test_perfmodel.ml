(* Tests for the performance harness: the reproduced tables must keep
   the paper's shape — who wins, by what factor, where the crossovers
   fall (Tables 2, 3, 4). *)

module Ide_bench = Perfmodel.Ide_bench
module Permedia_bench = Perfmodel.Permedia_bench
module Cost = Perfmodel.Cost

let case name f = Alcotest.test_case name `Quick f

let in_range name lo hi v =
  if v < lo || v > hi then
    Alcotest.fail (Printf.sprintf "%s: %.3f outside [%.3f, %.3f]" name v lo hi)

(* {1 Table 2} *)

let test_dma_parity () =
  let l = Ide_bench.run_line ~sectors:16 Ide_bench.Dma ~devil_path:`Loop in
  in_range "dma ratio" 0.99 1.01 l.ratio;
  in_range "dma throughput MB/s" 12.0 14.5 l.standard.throughput_mb_s

let test_pio_loop_penalty () =
  List.iter
    (fun (spi, width) ->
      let l =
        Ide_bench.run_line ~sectors:16
          (Ide_bench.Pio { sectors_per_irq = spi; width })
          ~devil_path:`Loop
      in
      in_range
        (Printf.sprintf "loop ratio spi=%d" spi)
        0.85 0.95 l.ratio)
    [ (16, `W16); (8, `W32); (1, `W16) ]

let test_pio_block_parity () =
  List.iter
    (fun (spi, width) ->
      let l =
        Ide_bench.run_line ~sectors:16
          (Ide_bench.Pio { sectors_per_irq = spi; width })
          ~devil_path:`Block
      in
      in_range (Printf.sprintf "block ratio spi=%d" spi) 0.97 1.01 l.ratio)
    [ (16, `W16); (1, `W32) ]

let test_pio_absolute_throughput () =
  (* Paper: ~8.2 MB/s at 32-bit, ~4.5 MB/s at 16-bit (16 sectors/irq). *)
  let w32 =
    Ide_bench.run_line ~sectors:16
      (Ide_bench.Pio { sectors_per_irq = 16; width = `W32 })
      ~devil_path:`Loop
  in
  let w16 =
    Ide_bench.run_line ~sectors:16
      (Ide_bench.Pio { sectors_per_irq = 16; width = `W16 })
      ~devil_path:`Loop
  in
  in_range "32-bit std MB/s" 7.0 9.5 w32.standard.throughput_mb_s;
  in_range "16-bit std MB/s" 3.8 5.0 w16.standard.throughput_mb_s;
  in_range "32/16 speedup" 1.8 2.1
    (w32.standard.throughput_mb_s /. w16.standard.throughput_mb_s)

let test_interrupt_coalescing_helps () =
  let t spi =
    (Ide_bench.run_line ~sectors:32
       (Ide_bench.Pio { sectors_per_irq = spi; width = `W32 })
       ~devil_path:`Loop).standard.throughput_mb_s
  in
  let t16 = t 16 and t1 = t 1 in
  Alcotest.(check bool) "16/irq faster than 1/irq" true (t16 > t1);
  in_range "coalescing gain" 1.05 1.35 (t16 /. t1)

let test_op_count_formulas () =
  (* Hand-crafted setup = 7 ops (6 task-file writes + 1 status poll);
     per interrupt 1 status read; per sector 256 16-bit transfers.
     Devil adds 3 at setup and 2 per interrupt (paper section 4.3). *)
  let sectors = 8 in
  let l =
    Ide_bench.run_line ~sectors
      (Ide_bench.Pio { sectors_per_irq = 1; width = `W16 })
      ~devil_path:`Loop
  in
  Alcotest.(check int) "standard ops" (7 + (sectors * (1 + 256)))
    l.standard.io_ops;
  Alcotest.(check int) "devil ops" (10 + (sectors * (3 + 256)))
    l.devil.io_ops;
  Alcotest.(check int) "irqs" sectors l.standard.irqs

(* {1 Tables 3 and 4} *)

let test_gfx_small_rect_ratio () =
  List.iter
    (fun depth ->
      let c = Permedia_bench.run_cell Permedia_bench.Fill ~depth ~size:2 in
      in_range (Printf.sprintf "fill 2x2 @%d" depth) 0.92 0.98 c.ratio)
    [ 8; 16; 32 ]

let test_gfx_24bpp_parity () =
  List.iter
    (fun size ->
      let c = Permedia_bench.run_cell Permedia_bench.Fill ~depth:24 ~size in
      in_range (Printf.sprintf "fill 24bpp %dx%d" size size) 0.995 1.005
        c.ratio)
    [ 2; 100 ]

let test_gfx_large_rect_parity () =
  let c = Permedia_bench.run_cell Permedia_bench.Fill ~depth:32 ~size:400 in
  in_range "fill 400x400" 0.97 1.03 c.ratio;
  let k = Permedia_bench.run_cell Permedia_bench.Copy ~depth:8 ~size:400 in
  in_range "copy 400x400" 0.97 1.03 k.ratio

let test_gfx_rate_ordering () =
  (* Bigger rectangles are slower; copies are slower than fills. *)
  let rate prim size =
    (Permedia_bench.run_cell prim ~depth:8 ~size).std_rate
  in
  Alcotest.(check bool) "2x2 > 100x100" true
    (rate Permedia_bench.Fill 2 > rate Permedia_bench.Fill 100);
  Alcotest.(check bool) "100 > 400" true
    (rate Permedia_bench.Fill 100 > rate Permedia_bench.Fill 400);
  Alcotest.(check bool) "copy slower than fill at 100" true
    (rate Permedia_bench.Fill 100 > rate Permedia_bench.Copy 100)

let test_gfx_absolute_rates () =
  (* Paper: ~1M 2x2 fills/s; ~900/s at 400x400x32. *)
  let small = Permedia_bench.run_cell Permedia_bench.Fill ~depth:8 ~size:2 in
  in_range "2x2 rate" 500_000.0 1_500_000.0 small.std_rate;
  let large = Permedia_bench.run_cell Permedia_bench.Fill ~depth:32 ~size:400 in
  in_range "400x400x32 rate" 500.0 1500.0 large.std_rate

let test_gfx_devil_op_counts () =
  let c = Permedia_bench.run_cell Permedia_bench.Fill ~depth:16 ~size:2 in
  in_range "+2 ops per primitive" 1.9 2.1
    (c.devil_ops_per_prim -. c.std_ops_per_prim);
  let c24 = Permedia_bench.run_cell Permedia_bench.Fill ~depth:24 ~size:2 in
  in_range "24bpp op parity" (-0.1) 0.1
    (c24.devil_ops_per_prim -. c24.std_ops_per_prim)

(* {1 Cost model} *)

let test_cost_model_basics () =
  let s = { Cost.singles = 100; block_items = 0; irqs = 0 } in
  let b = { Cost.singles = 0; block_items = 100; irqs = 0 } in
  Alcotest.(check bool) "loops cost more than blocks" true
    (Cost.pio_time s > Cost.pio_time b);
  let with_irq = { Cost.singles = 0; block_items = 100; irqs = 1 } in
  Alcotest.(check bool) "interrupts cost" true
    (Cost.pio_time with_irq > Cost.pio_time b);
  let dma = Cost.dma_time { Cost.singles = 14; block_items = 0; irqs = 1 } ~bytes:(1 lsl 20) in
  in_range "dma near media rate" 13.0 14.5
    (float_of_int (1 lsl 20) /. dma /. 1.0e6)

let () =
  Alcotest.run "perfmodel"
    [
      ( "table2",
        [
          case "dma parity" test_dma_parity;
          case "pio loop penalty" test_pio_loop_penalty;
          case "pio block parity" test_pio_block_parity;
          case "absolute throughput" test_pio_absolute_throughput;
          case "interrupt coalescing" test_interrupt_coalescing_helps;
          case "op-count formulas" test_op_count_formulas;
        ] );
      ( "tables3and4",
        [
          case "small-rect ratio" test_gfx_small_rect_ratio;
          case "24bpp parity" test_gfx_24bpp_parity;
          case "large-rect parity" test_gfx_large_rect_parity;
          case "rate ordering" test_gfx_rate_ordering;
          case "absolute rates" test_gfx_absolute_rates;
          case "devil op counts" test_gfx_devil_op_counts;
        ] );
      ("cost", [ case "model basics" test_cost_model_basics ]);
    ]
