(* Differential testing of the OCaml backend: the module devilc
   generates for a specification (compiled into this binary by a dune
   rule — see test/dune) must behave exactly like the interpreting
   runtime bound to the same specification: same values, same bus
   operations, in the same order. *)

module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus
module Value = Devil_ir.Value

let case name f = Alcotest.test_case name `Quick f

type op = R of int * int | W of int * int * int  (* width, addr[, value] *)

let pp_op fmt = function
  | R (w, a) -> Format.fprintf fmt "R%d[%#x]" w a
  | W (w, a, v) -> Format.fprintf fmt "W%d[%#x]=%#x" w a v

let op = Alcotest.testable pp_op ( = )

(* A bus over a fresh busmouse model that logs every operation. *)
let logging_mouse_bus () =
  let mouse = Hwsim.Busmouse.create () in
  let model = Hwsim.Busmouse.model mouse in
  let log = ref [] in
  let read ~width ~addr =
    log := R (width, addr) :: !log;
    model.Hwsim.Model.read ~width ~offset:(addr - 0x23c)
  in
  let write ~width ~addr ~value =
    log := W (width, addr, value) :: !log;
    model.Hwsim.Model.write ~width ~offset:(addr - 0x23c) ~value
  in
  let bus =
    {
      Bus.read;
      write;
      read_block =
        (fun ~width ~addr ~into ->
          Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into);
      write_block =
        (fun ~width ~addr ~from ->
          Array.iter (fun value -> write ~width ~addr ~value) from);
    }
  in
  (mouse, bus, fun () -> List.rev !log)

module Gen_env (B : sig
  val bus : Bus.t
end) =
struct
  let read = B.bus.Bus.read
  let write = B.bus.Bus.write
  let read_block = B.bus.Bus.read_block
  let write_block = B.bus.Bus.write_block
  let base _ = 0x23c
end

let int_of_value = function
  | Value.Int n -> n
  | Value.Bool b -> if b then 1 else 0
  | Value.Enum _ -> Alcotest.fail "unexpected enum"

let test_busmouse_differential () =
  (* Interpreter side. *)
  let mouse_i, bus_i, log_i = logging_mouse_bus () in
  let inst =
    Instance.create (Devil_specs.Specs.busmouse ()) ~bus:bus_i
      ~bases:[ ("base", 0x23c) ]
  in
  (* Generated side. *)
  let mouse_g, bus_g, log_g = logging_mouse_bus () in
  let module G =
    Gen_busmouse.Make (Gen_env (struct
      let bus = bus_g
    end))
  in
  (* The same scenario on both. *)
  Hwsim.Busmouse.move mouse_i ~dx:11 ~dy:(-7);
  Hwsim.Busmouse.set_buttons mouse_i 0b110;
  Hwsim.Busmouse.move mouse_g ~dx:11 ~dy:(-7);
  Hwsim.Busmouse.set_buttons mouse_g 0b110;

  (* probe *)
  Instance.set inst "signature" (Value.Int 0x5a);
  G.set_signature 0x5a;
  Alcotest.(check int) "signature" (int_of_value (Instance.get inst "signature"))
    (G.get_signature ());

  (* configuration *)
  Instance.set inst "config" (Value.Enum "DEFAULT_MODE");
  G.set_config G.const_config_default_mode;
  Instance.set inst "interrupt" (Value.Enum "ENABLE");
  G.set_interrupt G.const_interrupt_enable;

  (* the structure read *)
  Instance.get_struct inst "mouse_state";
  G.get_mouse_state ();
  Alcotest.(check int) "dx" (int_of_value (Instance.get inst "dx")) (G.get_dx ());
  Alcotest.(check int) "dy" (int_of_value (Instance.get inst "dy")) (G.get_dy ());
  Alcotest.(check int) "buttons"
    (int_of_value (Instance.get inst "buttons"))
    (G.get_buttons ());
  Alcotest.(check int) "dx value" 11 (G.get_dx ());
  Alcotest.(check int) "dy value" (-7) (G.get_dy ());

  (* Same bus traffic, operation for operation. *)
  Alcotest.(check (list op)) "identical I/O traces" (log_i ()) (log_g ())

let test_busmouse_generated_checks () =
  let _, bus, _ = logging_mouse_bus () in
  let module G =
    Gen_busmouse.Make (Gen_env (struct
      let bus = bus
    end))
  in
  (match G.set_signature 0x1ff with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "range violation accepted");
  match G.set_config 2 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-case enum value accepted"

(* The UART exercises the DLAB overlay, serialization and block
   stubs through the generated module. *)
let logging_uart_bus () =
  let uart = Hwsim.Uart16550.create () in
  let model = Hwsim.Uart16550.model uart in
  let bus =
    {
      Bus.read =
        (fun ~width ~addr ->
          model.Hwsim.Model.read ~width ~offset:(addr - 0x3f8));
      write =
        (fun ~width ~addr ~value ->
          model.Hwsim.Model.write ~width ~offset:(addr - 0x3f8) ~value);
      read_block =
        (fun ~width ~addr ~into ->
          Array.iteri
            (fun i _ ->
              into.(i) <- model.Hwsim.Model.read ~width ~offset:(addr - 0x3f8))
            into);
      write_block =
        (fun ~width ~addr ~from ->
          Array.iter
            (fun value ->
              model.Hwsim.Model.write ~width ~offset:(addr - 0x3f8) ~value)
            from);
    }
  in
  (uart, bus)

let test_uart_generated_driver () =
  let uart, bus = logging_uart_bus () in
  let module G =
    Gen_uart.Make (struct
      let read = bus.Bus.read
      let write = bus.Bus.write
      let read_block = bus.Bus.read_block
      let write_block = bus.Bus.write_block
      let base _ = 0x3f8
    end)
  in
  (* Program the divisor through the DLAB overlay. *)
  G.set_divisor (115200 / 19200);
  Alcotest.(check int) "device divisor" 6 (Hwsim.Uart16550.divisor uart);
  G.set_word_length G.const_word_length_bits8;
  G.set_two_stop_bits 0;
  (* DLAB must be back off: the data write goes to the THR. *)
  G.write_tx_data_block [| Char.code 'o'; Char.code 'k' |];
  Alcotest.(check string) "wire" "ok" (Hwsim.Uart16550.take_transmitted uart);
  (* Receive through the block stub. *)
  Hwsim.Uart16550.inject uart "hi";
  let data = G.read_rx_data_block 2 in
  Alcotest.(check (list int)) "received"
    [ Char.code 'h'; Char.code 'i' ]
    (Array.to_list data);
  (* Structure read of the line status. *)
  G.get_line_status ();
  Alcotest.(check int) "thr empty" 1 (G.get_thr_empty ());
  Alcotest.(check int) "no data" 0 (G.get_data_ready ())

(* The CS4236B generated module exercises parameterized registers and
   structure-writing pre-actions (the access automaton). *)
let test_cs4236b_generated_automaton () =
  let chip = Hwsim.Cs4236b.create () in
  let model = Hwsim.Cs4236b.model chip in
  let module G =
    Gen_cs4236b.Make (struct
      let read ~width ~addr = model.Hwsim.Model.read ~width ~offset:(addr - 0x530)
      let write ~width ~addr ~value =
        model.Hwsim.Model.write ~width ~offset:(addr - 0x530) ~value
      let read_block ~width ~addr ~into =
        Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into
      let write_block ~width ~addr ~from =
        Array.iter (fun value -> write ~width ~addr ~value) from
      let base _ = 0x530
    end)
  in
  (* Indexed mixer access through the generated setters. *)
  G.set_left_attenuation 21;
  G.set_left_mute 0;
  Alcotest.(check int) "I6" 21 (Hwsim.Cs4236b.indexed_reg chip 6);
  (* The extended-register automaton behind get_chip_version. *)
  Alcotest.(check int) "X25" Hwsim.Cs4236b.chip_version (G.get_chip_version ());
  Alcotest.(check bool) "extended mode entered" true
    (Hwsim.Cs4236b.extended_mode chip);
  (* The parameterized register stubs. *)
  G.write_I 6 0x3f;
  Alcotest.(check int) "write via template" 0x3f
    (Hwsim.Cs4236b.indexed_reg chip 6);
  Alcotest.(check bool) "template leaves extended mode" false
    (Hwsim.Cs4236b.extended_mode chip);
  (match G.read_I 99 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "out-of-range template index accepted");
  Alcotest.(check int) "read via template" 0x3f (G.read_I 6)

(* Smoke coverage: every bundled specification's generated module is
   compiled into this binary (dune rules) and driven over a RAM bus —
   any emission bug in any feature combination fails the build or one
   of these checks. *)
module Ram_env (P : sig
  val size : int
end) =
struct
  let cells = Array.make P.size 0
  let read ~width ~addr = cells.(addr) land Devil_bits.Bitops.width_mask width
  let write ~width ~addr ~value =
    cells.(addr) <- value land Devil_bits.Bitops.width_mask width
  let read_block ~width ~addr ~into =
    Array.iteri (fun i _ -> into.(i) <- read ~width ~addr) into
  let write_block ~width ~addr ~from =
    Array.iter (fun value -> write ~width ~addr ~value) from
  let base _ = 0
end

let test_generated_all_specs () =
  (let module G = Gen_ne2000.Make (Ram_env (struct let size = 64 end)) in
   G.set_st G.const_st_stop;
   G.set_page_start 0x46;
   Alcotest.(check int) "ne2000 pstart" 0x46 (G.get_page_start ());
   G.set_remote_count 1234;
   Alcotest.(check int) "ne2000 16-bit split" 1234 (G.get_remote_count ()));
  (let module G = Gen_ide.Make (Ram_env (struct let size = 16 end)) in
   G.set_sector_count 7;
   Alcotest.(check int) "ide count" 7 (G.get_sector_count ());
   G.set_command G.const_command_read_sectors;
   G.get_ide_status ();
   Alcotest.(check int) "ide bsy" 0 (G.get_bsy ()));
  (let module G = Gen_piix4.Make (Ram_env (struct let size = 16 end)) in
   G.set_prd_address 0xabcdef;
   Alcotest.(check int) "piix4 prd" 0xabcdef (G.get_prd_address ()));
  (let module G = Gen_dma8237.Make (Ram_env (struct let size = 16 end)) in
   (* The serialized 16-bit counter writes low byte then high through
      one port; over RAM the last write wins, so the readback is the
      high byte — what matters is that it emits and runs. *)
   G.set_count0 0x1234;
   G.set_mask_bits 0x5;
   Alcotest.(check int) "dma mask bits" 0x5 (G.get_mask_bits ()));
  (let module G = Gen_pic8259.Make (Ram_env (struct let size = 4 end)) in
   (* Conditional serialization: cascaded + ic4 emits all four ICWs. *)
   G.set_init ~ic4:1 ~sngl:G.const_sngl_cascaded ~adi:0
     ~ltim:G.const_ltim_edge ~vector_base:4 ~cascade_map:0x04
     ~microprocessor:G.const_microprocessor_x8086 ~auto_eoi:0
     ~buffer_master:0 ~buffered:0 ~nested:0;
   G.set_irq_mask 0xaa;
   Alcotest.(check int) "pic imr" 0xaa (G.get_irq_mask ()));
  (let module G = Gen_permedia2.Make (Ram_env (struct let size = 32 end)) in
   G.set_fill_color 0x123456;
   G.set_rect_position ~rect_x:10 ~rect_y:20;
   Alcotest.(check int) "gfx x" 10 (G.get_rect_x ());
   Alcotest.(check int) "gfx y" 20 (G.get_rect_y ());
   G.set_copy_vector ~copy_dx:(-3) ~copy_dy:5;
   Alcotest.(check int) "gfx signed dx" (-3) (G.get_copy_dx ()));
  let module G = Gen_mc146818.Make (Ram_env (struct let size = 4 end)) in
  G.set_seconds_alarm 59;
  Alcotest.(check int) "rtc alarm" 59 (G.get_seconds_alarm ())

let () =
  Alcotest.run "ocaml_backend"
    [
      ( "differential",
        [
          case "busmouse: generated = interpreted" test_busmouse_differential;
          case "generated range checks" test_busmouse_generated_checks;
          case "uart: overlay, blocks, structures" test_uart_generated_driver;
          case "cs4236b: templates and automaton" test_cs4236b_generated_automaton;
          case "all specs: generated modules run" test_generated_all_specs;
        ] );
    ]
