(* Tests for the behavioural device models (Hwsim). *)

module Io_space = Hwsim.Io_space

let case name f = Alcotest.test_case name `Quick f

(* {1 I/O space} *)

let test_io_space_dispatch () =
  let space = Io_space.create () in
  Io_space.attach space ~base:0x100 ~size:4 (Hwsim.Model.ram ~name:"a" ~size:4);
  Io_space.attach space ~base:0x200 ~size:4 (Hwsim.Model.ram ~name:"b" ~size:4);
  let bus = Io_space.bus space in
  bus.Devil_runtime.Bus.write ~width:8 ~addr:0x101 ~value:0x42;
  Alcotest.(check int) "routed" 0x42 (bus.Devil_runtime.Bus.read ~width:8 ~addr:0x101);
  Alcotest.(check int) "isolated" 0 (bus.Devil_runtime.Bus.read ~width:8 ~addr:0x201);
  Alcotest.(check int) "ops counted" 3 (Io_space.io_ops space);
  (match bus.Devil_runtime.Bus.read ~width:8 ~addr:0x300 with
  | exception Devil_runtime.Instance.Device_error _ -> ()
  | _ -> Alcotest.fail "bus fault not raised");
  match Io_space.attach space ~base:0x102 ~size:4 (Hwsim.Model.ram ~name:"c" ~size:4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping attach accepted"

let test_io_space_blocks () =
  let space = Io_space.create () in
  Io_space.attach space ~base:0 ~size:1 (Hwsim.Model.ram ~name:"r" ~size:1);
  let bus = Io_space.bus space in
  bus.Devil_runtime.Bus.write_block ~width:8 ~addr:0 ~from:[| 1; 2; 3 |];
  let into = Array.make 2 0 in
  bus.Devil_runtime.Bus.read_block ~width:8 ~addr:0 ~into;
  let stats = Io_space.stats space in
  Alcotest.(check int) "block ops" 2 stats.Io_space.block_ops;
  Alcotest.(check int) "block items" 5 stats.Io_space.block_items;
  Alcotest.(check int) "io ops" 5 (Io_space.io_ops space);
  Alcotest.(check int) "singles" 0 (Io_space.single_ops space)

(* {1 Busmouse} *)

let test_busmouse_cycle () =
  let m = Hwsim.Busmouse.create () in
  let model = Hwsim.Busmouse.model m in
  let rd off = model.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = model.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  Hwsim.Busmouse.move m ~dx:5 ~dy:(-3);
  Hwsim.Busmouse.set_buttons m 0b101;
  let nibble i =
    wr 2 (0x80 lor (i lsl 5));
    rd 0
  in
  let dx = nibble 0 lor (nibble 1 lsl 4) in
  let y3 = nibble 3 in
  let dy = nibble 2 lor ((y3 land 0xf) lsl 4) in
  Alcotest.(check int) "dx" 5 dx;
  Alcotest.(check int) "dy" 0xfd dy;
  Alcotest.(check int) "buttons" 0b101 (y3 lsr 5);
  (* The cycle completion cleared the counters. *)
  Alcotest.(check int) "cleared" 0 (nibble 0 lor (nibble 1 lsl 4))

let test_busmouse_control_decode () =
  let m = Hwsim.Busmouse.create () in
  let model = Hwsim.Busmouse.model m in
  let wr off v = model.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr 2 0x00;
  Alcotest.(check bool) "irq on" true (Hwsim.Busmouse.interrupt_enabled m);
  wr 2 0x10;
  Alcotest.(check bool) "irq off" false (Hwsim.Busmouse.interrupt_enabled m);
  wr 2 0xe0;  (* index write: must not touch the irq flag *)
  Alcotest.(check bool) "irq unchanged" false (Hwsim.Busmouse.interrupt_enabled m);
  wr 3 0x90;
  Alcotest.(check int) "config" 0x90 (Hwsim.Busmouse.config_byte m)

let test_busmouse_clamp () =
  let m = Hwsim.Busmouse.create () in
  Hwsim.Busmouse.move m ~dx:200 ~dy:(-300);
  Hwsim.Busmouse.move m ~dx:100 ~dy:(-100);
  (* Saturates at the signed 8-bit bounds rather than wrapping. *)
  let model = Hwsim.Busmouse.model m in
  let rd off = model.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = model.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  let nibble i = wr 2 (0x80 lor (i lsl 5)); rd 0 in
  let dx = nibble 0 lor (nibble 1 lsl 4) in
  Alcotest.(check int) "saturated" 127 dx

(* {1 IDE disk} *)

let test_ide_pio_roundtrip () =
  let d = Hwsim.Ide_disk.create () in
  let m = Hwsim.Ide_disk.command_model d in
  let rd off = m.Hwsim.Model.read ~width:16 ~offset:off in
  let rd8 off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr8 off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  let wr off v = m.Hwsim.Model.write ~width:16 ~offset:off ~value:v in
  (* write one sector at LBA 5 *)
  wr8 2 1; wr8 3 5; wr8 4 0; wr8 5 0; wr8 6 0xe0;
  wr8 7 0x30;
  for i = 0 to 255 do
    wr 0 (i * 3)
  done;
  Alcotest.(check bool) "irq after write" true (Hwsim.Ide_disk.take_irq d);
  (* read it back *)
  wr8 2 1; wr8 3 5; wr8 7 0x20;
  Alcotest.(check bool) "irq after read cmd" true (Hwsim.Ide_disk.irq_pending d);
  let st = rd8 7 in
  Alcotest.(check bool) "drq" true (st land 0x08 <> 0);
  Alcotest.(check bool) "irq acked by status read" false (Hwsim.Ide_disk.irq_pending d);
  let ok = ref true in
  for i = 0 to 255 do
    if rd 0 <> (i * 3) land 0xffff then ok := false
  done;
  Alcotest.(check bool) "data" true !ok;
  Alcotest.(check bool) "drq clear" true (rd8 7 land 0x08 = 0)

let test_ide_multi_sector_irqs () =
  let d = Hwsim.Ide_disk.create () in
  Hwsim.Ide_disk.set_multiple d 4;
  let m = Hwsim.Ide_disk.command_model d in
  let rd off = m.Hwsim.Model.read ~width:16 ~offset:off in
  let wr8 off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  Hwsim.Ide_disk.reset_irq_count d;
  wr8 2 8; wr8 3 0; wr8 7 0x20;
  for _ = 1 to 8 * 256 do
    ignore (rd 0)
  done;
  (* 8 sectors at 4 per DRQ block: 2 interrupts. *)
  Alcotest.(check int) "irqs" 2 (Hwsim.Ide_disk.irq_count d)

let test_ide_dma_handshake () =
  let d = Hwsim.Ide_disk.create () in
  Hwsim.Ide_disk.write_sector d ~lba:9 (Bytes.make 512 'z');
  let m = Hwsim.Ide_disk.command_model d in
  let wr8 off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr8 2 1; wr8 3 9; wr8 7 0xc8;
  (match Hwsim.Ide_disk.dma_read_pending d with
  | Some (9, 1) -> ()
  | _ -> Alcotest.fail "dma not pending");
  Hwsim.Ide_disk.dma_complete d;
  Alcotest.(check bool) "irq" true (Hwsim.Ide_disk.take_irq d);
  Alcotest.(check bool) "idle" true (Hwsim.Ide_disk.dma_read_pending d = None)

let test_ide_abort_unknown_command () =
  let d = Hwsim.Ide_disk.create () in
  let m = Hwsim.Ide_disk.command_model d in
  let rd8 off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr8 off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr8 7 0x99;
  Alcotest.(check bool) "error bit" true (rd8 7 land 0x01 <> 0);
  Alcotest.(check int) "abort code" 0x04 (rd8 1)

(* {1 NE2000} *)

let ne_setup () =
  let n = Hwsim.Ne2000.create () in
  let m = Hwsim.Ne2000.model n in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  (n, rd, wr)

let test_ne2000_remote_dma () =
  let n, rd, wr = ne_setup () in
  wr 0 0x22;  (* start *)
  (* remote write 4 bytes at 0x4000 *)
  wr 8 0x00; wr 9 0x40; wr 10 4; wr 11 0;
  wr 0 0x12;  (* start + remote write *)
  List.iter (fun b -> wr 16 b) [ 0xde; 0xad; 0xbe; 0xef ];
  Alcotest.(check int) "ram" 0xad (Hwsim.Ne2000.ram_byte n 0x4001);
  Alcotest.(check bool) "rdc set" true (rd 7 land 0x40 <> 0);
  (* remote read back *)
  wr 8 0x00; wr 9 0x40; wr 10 4; wr 11 0;
  wr 0 0x0a;  (* start + remote read *)
  Alcotest.(check (list int)) "readback" [ 0xde; 0xad; 0xbe; 0xef ]
    (List.init 4 (fun _ -> rd 16))

let test_ne2000_loopback_rx_ring () =
  let n, rd, wr = ne_setup () in
  wr 0 0x22;
  wr 13 0x02;  (* TCR loopback *)
  (* place a frame in tx memory via remote DMA *)
  let frame = "abcdefgh" in
  wr 8 0; wr 9 0x40; wr 10 (String.length frame); wr 11 0;
  wr 0 0x12;  (* start + remote write *)
  String.iter (fun c -> wr 16 (Char.code c)) frame;
  (* transmit *)
  wr 4 0x40; wr 5 (String.length frame); wr 6 0;
  wr 0 (0x22 lor 0x04);
  Alcotest.(check bool) "ptx" true (rd 7 land 0x02 <> 0);
  Alcotest.(check bool) "prx" true (rd 7 land 0x01 <> 0);
  (* the receive header is at the old CURR page *)
  Alcotest.(check int) "rx status" 0x01 (Hwsim.Ne2000.ram_byte n 0x4600);
  Alcotest.(check int) "length lo" (String.length frame + 4)
    (Hwsim.Ne2000.ram_byte n 0x4602);
  Alcotest.(check int) "payload" (Char.code 'a') (Hwsim.Ne2000.ram_byte n 0x4604)

let test_ne2000_inject_and_overflow () =
  let n, _, wr = ne_setup () in
  Alcotest.(check bool) "stopped: rejected" false
    (Hwsim.Ne2000.inject_frame n "xx");
  wr 0 0x22;
  Alcotest.(check bool) "accepted" true (Hwsim.Ne2000.inject_frame n "xx");
  (* Fill the ring until it refuses. *)
  let big = String.make 1000 'y' in
  let rec fill n_acc =
    if Hwsim.Ne2000.inject_frame n big then fill (n_acc + 1) else n_acc
  in
  let accepted = fill 0 in
  Alcotest.(check bool) "ring eventually full" true (accepted < 60)

let test_ne2000_wire_tx () =
  let n, _, wr = ne_setup () in
  wr 0 0x22;
  wr 13 0x00;  (* normal mode *)
  wr 8 0; wr 9 0x40; wr 10 2; wr 11 0;
  wr 0 0x12;  (* start + remote write *)
  wr 16 0x68; wr 16 0x69;
  wr 4 0x40; wr 5 2; wr 6 0;
  wr 0 (0x22 lor 0x04);
  Alcotest.(check (list string)) "on the wire" [ "hi" ]
    (Hwsim.Ne2000.take_transmitted n)

(* {1 8237 DMA} *)

let test_dma8237_flipflop () =
  let d = Hwsim.Dma8237.create ~memory_size:256 in
  let m = Hwsim.Dma8237.model d in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr 12 0;  (* clear flip-flop *)
  wr 1 0x34; wr 1 0x12;  (* channel 0 count = 0x1234 *)
  Alcotest.(check int) "count" 0x1234 (Hwsim.Dma8237.programmed_count d ~channel:0);
  wr 12 0;
  Alcotest.(check int) "low" 0x34 (rd 1);
  Alcotest.(check int) "high" 0x12 (rd 1)

let test_dma8237_transfer () =
  let d = Hwsim.Dma8237.create ~memory_size:256 in
  let m = Hwsim.Dma8237.model d in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr 13 0;  (* master clear *)
  wr 11 0x45;  (* channel 1, write-to-memory, single *)
  wr 12 0;
  wr 2 0x10; wr 2 0x00;  (* address 0x10 *)
  wr 12 0;
  wr 3 3; wr 3 0;  (* count 3 -> 4 bytes *)
  wr 10 0x01;  (* unmask channel 1 *)
  let moved =
    Hwsim.Dma8237.device_request d ~channel:1
      ~data:(Bytes.of_string "wxyz") Hwsim.Dma8237.To_memory
  in
  Alcotest.(check int) "bytes moved" 4 moved;
  Alcotest.(check string) "memory" "wxyz"
    (Bytes.sub_string (Hwsim.Dma8237.memory d) 0x10 4);
  Alcotest.(check bool) "tc" true (Hwsim.Dma8237.terminal_count d ~channel:1);
  Alcotest.(check bool) "auto-masked" true (Hwsim.Dma8237.channel_masked d ~channel:1)

let test_dma8237_masked_channel () =
  let d = Hwsim.Dma8237.create ~memory_size:64 in
  let moved =
    Hwsim.Dma8237.device_request d ~channel:0 ~data:(Bytes.make 4 'a')
      Hwsim.Dma8237.To_memory
  in
  Alcotest.(check int) "refused" 0 moved

(* {1 8259 PIC} *)

let pic_setup () =
  let p = Hwsim.Pic8259.create () in
  let m = Hwsim.Pic8259.model p in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  (p, rd, wr)

let init_pc_master wr =
  wr 0 0x11;  (* ICW1: cascaded, ICW4 needed *)
  wr 1 0x20;  (* ICW2: vectors at 0x20 *)
  wr 1 0x04;  (* ICW3 *)
  wr 1 0x01   (* ICW4: 8086 mode *)

let test_pic_init_variants () =
  let p, _, wr = pic_setup () in
  init_pc_master wr;
  Alcotest.(check bool) "initialized" true (Hwsim.Pic8259.initialized p);
  Alcotest.(check int) "vectors" 0x20 (Hwsim.Pic8259.vector_base p);
  (* Single + no ICW4: two writes suffice. *)
  let p2, _, wr2 = pic_setup () in
  wr2 0 0x12;
  wr2 1 0x40;
  Alcotest.(check bool) "short init" true (Hwsim.Pic8259.initialized p2);
  Alcotest.(check int) "vectors 2" 0x40 (Hwsim.Pic8259.vector_base p2)

let test_pic_priorities () =
  let p, _, wr = pic_setup () in
  init_pc_master wr;
  wr 1 0x00;  (* OCW1: unmask all *)
  Hwsim.Pic8259.raise_irq p ~line:3;
  Hwsim.Pic8259.raise_irq p ~line:1;
  Alcotest.(check (option int)) "highest first" (Some 0x21) (Hwsim.Pic8259.inta p);
  (* line 3 is pending but nested below the in-service line 1. *)
  Alcotest.(check bool) "nested blocks" false (Hwsim.Pic8259.int_asserted p);
  wr 0 0x20;  (* non-specific EOI *)
  Alcotest.(check (option int)) "then lower" (Some 0x23) (Hwsim.Pic8259.inta p);
  wr 0 0x20;
  Alcotest.(check int) "isr clear" 0 (Hwsim.Pic8259.isr p)

let test_pic_masking_and_reads () =
  let p, rd, wr = pic_setup () in
  init_pc_master wr;
  wr 1 0xfd;  (* only line 1 open *)
  Hwsim.Pic8259.raise_irq p ~line:0;
  Hwsim.Pic8259.raise_irq p ~line:1;
  Alcotest.(check (option int)) "masked line skipped" (Some 0x21)
    (Hwsim.Pic8259.inta p);
  wr 0 0x0a;  (* OCW3: read IRR *)
  Alcotest.(check int) "irr" 0x01 (rd 0);
  wr 0 0x0b;  (* OCW3: read ISR *)
  Alcotest.(check int) "isr" 0x02 (rd 0);
  Alcotest.(check int) "imr readback" 0xfd (rd 1)

(* {1 CS4236B} *)

let test_cs4236b_indexed () =
  let c = Hwsim.Cs4236b.create () in
  let m = Hwsim.Cs4236b.model c in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  wr 0 6; wr 1 0x2a;
  Alcotest.(check int) "I6" 0x2a (Hwsim.Cs4236b.indexed_reg c 6);
  wr 0 6;
  Alcotest.(check int) "readback" 0x2a (rd 1)

let test_cs4236b_automaton () =
  let c = Hwsim.Cs4236b.create () in
  let m = Hwsim.Cs4236b.model c in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  (* select I23, write XA=25 with XRAE: bits [2,7..4]=11001, bit3=1 *)
  wr 0 23;
  let xa25 = 0x90 lor 0x04 lor 0x08 in  (* bits 7..4 = 1001, bit2=1, XRAE *)
  wr 1 xa25;
  Alcotest.(check bool) "extended" true (Hwsim.Cs4236b.extended_mode c);
  Alcotest.(check int) "X25 version" Hwsim.Cs4236b.chip_version (rd 1);
  (* X25 is read-only *)
  wr 1 0x55;
  Alcotest.(check int) "still version" Hwsim.Cs4236b.chip_version
    (Hwsim.Cs4236b.extended_reg c 25);
  (* control write leaves extended mode *)
  wr 0 0;
  Alcotest.(check bool) "left extended" false (Hwsim.Cs4236b.extended_mode c)

let test_cs4236b_pcm () =
  let c = Hwsim.Cs4236b.create () in
  let m = Hwsim.Cs4236b.model c in
  let rd off = m.Hwsim.Model.read ~width:8 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:8 ~offset:off ~value:v in
  Alcotest.(check int) "no data" 0 (rd 2);
  Hwsim.Cs4236b.queue_pcm c [ 1; 2; 3 ];
  Alcotest.(check int) "data ready" 1 (rd 2);
  let s1 = rd 3 in
  let s2 = rd 3 in
  let s3 = rd 3 in
  Alcotest.(check (list int)) "capture" [ 1; 2; 3 ] [ s1; s2; s3 ];
  wr 3 9; wr 3 8;
  Alcotest.(check (list int)) "playback" [ 9; 8 ] (Hwsim.Cs4236b.played c)

(* {1 Permedia2} *)

let test_permedia_fill_copy () =
  let g = Hwsim.Permedia2.create ~width:64 ~height:32 () in
  let m = Hwsim.Permedia2.mmio_model g in
  let wr off v = m.Hwsim.Model.write ~width:32 ~offset:off ~value:v in
  wr 6 8;
  wr 1 0x7;
  wr 2 (4 lor (5 lsl 16));
  wr 3 (3 lor (2 lsl 16));
  wr 5 0x1;
  (* drain *)
  let rd off = m.Hwsim.Model.read ~width:32 ~offset:off in
  while rd 7 <> 0 do () done;
  Alcotest.(check int) "filled" 0x7 (Hwsim.Permedia2.pixel g ~x:5 ~y:6);
  Alcotest.(check int) "outside" 0 (Hwsim.Permedia2.pixel g ~x:3 ~y:5);
  (* copy right by 8 *)
  wr 2 (12 lor (5 lsl 16));
  wr 3 (3 lor (2 lsl 16));
  wr 4 8;
  wr 5 0x2;
  while rd 7 <> 0 do () done;
  Alcotest.(check int) "copied" 0x7 (Hwsim.Permedia2.pixel g ~x:13 ~y:6)

let test_permedia_fifo () =
  let g = Hwsim.Permedia2.create () in
  let m = Hwsim.Permedia2.mmio_model g in
  let rd off = m.Hwsim.Model.read ~width:32 ~offset:off in
  let wr off v = m.Hwsim.Model.write ~width:32 ~offset:off ~value:v in
  Alcotest.(check int) "initially free" Hwsim.Permedia2.fifo_capacity (rd 0);
  (* A big fill keeps the engine busy; pile writes onto the queue. *)
  wr 6 32;
  wr 2 0; wr 3 (500 lor (500 lsl 16)); wr 5 1;
  let free_before = rd 0 in
  for _ = 1 to Hwsim.Permedia2.fifo_capacity + 10 do
    wr 1 0
  done;
  Alcotest.(check bool) "fifo filled" true (rd 0 < free_before);
  Alcotest.(check bool) "overflow recorded" true (Hwsim.Permedia2.overflows g > 0)

let () =
  Alcotest.run "hwsim"
    [
      ( "io_space",
        [
          case "dispatch and faults" test_io_space_dispatch;
          case "block accounting" test_io_space_blocks;
        ] );
      ( "busmouse",
        [
          case "read cycle" test_busmouse_cycle;
          case "control decode" test_busmouse_control_decode;
          case "saturation" test_busmouse_clamp;
        ] );
      ( "ide",
        [
          case "pio roundtrip" test_ide_pio_roundtrip;
          case "multi-sector interrupts" test_ide_multi_sector_irqs;
          case "dma handshake" test_ide_dma_handshake;
          case "unknown command aborts" test_ide_abort_unknown_command;
        ] );
      ( "ne2000",
        [
          case "remote dma" test_ne2000_remote_dma;
          case "loopback to rx ring" test_ne2000_loopback_rx_ring;
          case "inject and ring-full" test_ne2000_inject_and_overflow;
          case "wire transmit" test_ne2000_wire_tx;
        ] );
      ( "dma8237",
        [
          case "flip-flop latching" test_dma8237_flipflop;
          case "device transfer" test_dma8237_transfer;
          case "masked channel refuses" test_dma8237_masked_channel;
        ] );
      ( "pic8259",
        [
          case "init variants" test_pic_init_variants;
          case "priorities and eoi" test_pic_priorities;
          case "masking and status reads" test_pic_masking_and_reads;
        ] );
      ( "cs4236b",
        [
          case "indexed registers" test_cs4236b_indexed;
          case "extended-register automaton" test_cs4236b_automaton;
          case "pcm fifo" test_cs4236b_pcm;
        ] );
      ( "permedia2",
        [
          case "fill and copy" test_permedia_fill_copy;
          case "fifo and overflow" test_permedia_fifo;
        ] );
    ]
