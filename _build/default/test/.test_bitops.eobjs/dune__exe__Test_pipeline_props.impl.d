test/test_pipeline_props.ml: Alcotest Buffer Devil_bits Devil_check Devil_codegen Devil_ir Devil_runtime Devil_syntax List Option Printf QCheck QCheck_alcotest Random String
