test/test_mutation.ml: Alcotest Devil_check Devil_specs Fun List Mutation String
