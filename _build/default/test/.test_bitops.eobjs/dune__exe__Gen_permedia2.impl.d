test/gen_permedia2.ml: Array List
