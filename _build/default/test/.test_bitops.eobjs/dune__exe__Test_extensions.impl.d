test/test_extensions.ml: Alcotest Char Drivers Hwsim String
