test/gen_pic8259.ml: List
