test/gen_busmouse.ml: List
