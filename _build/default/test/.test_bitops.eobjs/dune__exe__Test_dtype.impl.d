test/test_dtype.ml: Alcotest Devil_bits Devil_ir List Option QCheck QCheck_alcotest
