test/test_parser.ml: Alcotest Devil_specs Devil_syntax List
