test/test_pipeline_props.mli:
