test/test_cli.ml: Alcotest Array Filename Fun List Option String Sys
