test/test_lexer.ml: Alcotest Devil_syntax List QCheck QCheck_alcotest String
