test/test_hwsim.ml: Alcotest Array Bytes Char Devil_runtime Hwsim List String
