test/test_runtime.ml: Alcotest Array Devil_check Devil_ir Devil_runtime Devil_syntax Format Hashtbl List Option
