test/gen_dma8237.ml: List
