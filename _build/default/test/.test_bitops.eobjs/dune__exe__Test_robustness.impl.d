test/test_robustness.ml: Alcotest Array Bytes Char Devil_check Devil_ir Devil_runtime Devil_specs Devil_syntax Format List Printexc QCheck QCheck_alcotest String
