test/test_drivers.ml: Alcotest Bytes Char Drivers Hwsim List Printf String
