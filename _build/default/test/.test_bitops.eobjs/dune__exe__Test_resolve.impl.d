test/test_resolve.ml: Alcotest Devil_bits Devil_ir Devil_syntax Format List
