test/test_integration.ml: Alcotest Array Bytes Char Devil_ir Devil_runtime Drivers Hwsim List Printf
