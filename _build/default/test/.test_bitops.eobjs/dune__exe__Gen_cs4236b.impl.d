test/gen_cs4236b.ml: Array List
