test/test_mask.mli:
