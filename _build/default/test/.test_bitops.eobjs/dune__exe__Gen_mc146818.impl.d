test/gen_mc146818.ml: List
