test/gen_uart.ml: Array List
