test/gen_ne2000.ml: Array List
