test/test_bitpat.ml: Alcotest Devil_bits List QCheck QCheck_alcotest String
