test/gen_piix4.ml: List
