test/test_bitops.ml: Alcotest Devil_bits Format List QCheck QCheck_alcotest
