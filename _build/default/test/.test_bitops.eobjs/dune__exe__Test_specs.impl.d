test/test_specs.ml: Alcotest Devil_ir Devil_specs Filename List Option String Sys
