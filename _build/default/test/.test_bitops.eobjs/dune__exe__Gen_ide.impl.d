test/gen_ide.ml: Array List
