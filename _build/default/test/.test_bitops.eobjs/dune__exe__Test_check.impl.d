test/test_check.ml: Alcotest Devil_check Devil_ir Devil_specs Devil_syntax Format List String
