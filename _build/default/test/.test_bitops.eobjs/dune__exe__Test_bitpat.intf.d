test/test_bitpat.mli:
