test/test_ocaml_backend.mli:
