test/test_mask.ml: Alcotest Devil_bits List QCheck QCheck_alcotest String
