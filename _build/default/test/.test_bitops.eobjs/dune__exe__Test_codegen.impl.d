test/test_codegen.ml: Alcotest Buffer Devil_check Devil_codegen Devil_ir Devil_specs Filename Fun List Printf String Sys Unix
