(* Driver-level tests: the Devil-based and hand-crafted drivers must
   produce identical device outcomes; where the paper quantifies their
   I/O-operation difference, the tests pin the relation down. *)

module Machine = Drivers.Machine

let case name f = Alcotest.test_case name `Quick f

(* {1 Mouse} *)

let test_mouse_equivalence () =
  let m = Machine.create ~debug:true () in
  let devil = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  let hand = Drivers.Mouse.Handcrafted.create m.bus ~base:Machine.mouse_base in
  Alcotest.(check bool) "devil probe" true (Drivers.Mouse.Devil_driver.probe devil);
  Alcotest.(check bool) "hand probe" true (Drivers.Mouse.Handcrafted.probe hand);
  Drivers.Mouse.Devil_driver.init devil;
  let exercise read =
    Hwsim.Busmouse.move m.mouse ~dx:(-7) ~dy:9;
    Hwsim.Busmouse.set_buttons m.mouse 0b011;
    Machine.reset_io_stats m;
    let st = read () in
    (st, Machine.io_ops m)
  in
  let st1, ops1 = exercise (fun () -> Drivers.Mouse.Devil_driver.read_state devil) in
  let st2, ops2 = exercise (fun () -> Drivers.Mouse.Handcrafted.read_state hand) in
  Alcotest.(check int) "dx" st2.Drivers.Mouse.dx st1.Drivers.Mouse.dx;
  Alcotest.(check int) "dy" st2.Drivers.Mouse.dy st1.Drivers.Mouse.dy;
  Alcotest.(check int) "buttons" st2.Drivers.Mouse.buttons st1.Drivers.Mouse.buttons;
  (* The paper's headline: the generated stubs cost the same 8 I/O
     operations as the hand-written macros. *)
  Alcotest.(check int) "devil ops" 8 ops1;
  Alcotest.(check int) "hand ops" 8 ops2

let test_mouse_interrupt_toggle () =
  let m = Machine.create ~debug:true () in
  let devil = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  Drivers.Mouse.Devil_driver.init devil;
  Alcotest.(check bool) "enabled" true (Hwsim.Busmouse.interrupt_enabled m.mouse);
  Drivers.Mouse.Devil_driver.set_interrupts devil false;
  Alcotest.(check bool) "disabled" false (Hwsim.Busmouse.interrupt_enabled m.mouse)

(* {1 IDE} *)

let pattern sectors =
  Bytes.init (sectors * 512) (fun i -> Char.chr ((i * 7) land 0xff))

let test_ide_all_modes_agree () =
  let m = Machine.create () in
  let devil = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let hand =
    Drivers.Ide.Handcrafted.create m.bus ~cmd_base:Machine.ide_base
      ~ctrl_base:Machine.ide_ctrl_base ~bm_base:Machine.piix4_base
      ~prd_base:Machine.piix4_prd_base
  in
  let data = pattern 4 in
  Drivers.Ide.Devil_driver.write_sectors devil ~lba:32 ~count:4 ~mult:1
    ~path:`Block ~width:`W16 data;
  List.iter
    (fun (path, width) ->
      let got =
        Drivers.Ide.Devil_driver.read_sectors devil ~lba:32 ~count:4 ~mult:1
          ~path ~width
      in
      Alcotest.(check bool) "devil read agrees" true (Bytes.equal data got);
      let got2 =
        Drivers.Ide.Handcrafted.read_sectors hand ~lba:32 ~count:4 ~mult:1
          ~path ~width
      in
      Alcotest.(check bool) "hand read agrees" true (Bytes.equal data got2))
    [ (`Loop, `W16); (`Loop, `W32); (`Block, `W16); (`Block, `W32) ]

let test_ide_dma_agree () =
  let m = Machine.create () in
  let devil = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let hand =
    Drivers.Ide.Handcrafted.create m.bus ~cmd_base:Machine.ide_base
      ~ctrl_base:Machine.ide_ctrl_base ~bm_base:Machine.piix4_base
      ~prd_base:Machine.piix4_prd_base
  in
  let data = pattern 2 in
  Drivers.Ide.Devil_driver.write_dma devil
    ~memory:(Hwsim.Piix4.memory m.busmaster) ~lba:64 ~count:2 data;
  let got =
    Drivers.Ide.Handcrafted.read_dma hand
      ~memory:(Hwsim.Piix4.memory m.busmaster) ~lba:64 ~count:2
  in
  Alcotest.(check bool) "dma roundtrip" true (Bytes.equal data got)

let test_ide_setup_cost_shape () =
  (* Paper section 4.3: +3 setup operations and +2 per interrupt for the
     Devil driver in PIO mode. *)
  let run driver =
    let m = Machine.create () in
    Hwsim.Ide_disk.write_sector m.disk ~lba:0 (Bytes.make 512 'x');
    Machine.reset_io_stats m;
    (match driver with
    | `Devil ->
        let d = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
        ignore
          (Drivers.Ide.Devil_driver.read_sectors d ~lba:0 ~count:1 ~mult:1
             ~path:`Block ~width:`W16)
    | `Hand ->
        let h =
          Drivers.Ide.Handcrafted.create m.bus ~cmd_base:Machine.ide_base
            ~ctrl_base:Machine.ide_ctrl_base ~bm_base:Machine.piix4_base
            ~prd_base:Machine.piix4_prd_base
        in
        ignore
          (Drivers.Ide.Handcrafted.read_sectors h ~lba:0 ~count:1 ~mult:1
             ~path:`Block ~width:`W16));
    Machine.io_ops m
  in
  let devil_ops = run `Devil and hand_ops = run `Hand in
  Alcotest.(check int) "devil adds 5 ops for 1 sector (3 setup + 2 irq)"
    5 (devil_ops - hand_ops)

(* {1 NE2000} *)

let test_net_loopback_both_drivers () =
  let mac = "\x02\x00\x00\x00\x00\x07" in
  let payload = "The quick brown fox jumps over the lazy dog" in
  let run_devil () =
    let m = Machine.create () in
    let d = Drivers.Net.Devil_driver.create m.ne2000_dev in
    Drivers.Net.Devil_driver.init_loopback d ~mac;
    Drivers.Net.Devil_driver.send d payload;
    Drivers.Net.Devil_driver.receive d
  in
  let run_hand () =
    let m = Machine.create () in
    let h = Drivers.Net.Handcrafted.create m.bus ~base:Machine.ne2000_base in
    Drivers.Net.Handcrafted.init_loopback h ~mac;
    Drivers.Net.Handcrafted.send h payload;
    Drivers.Net.Handcrafted.receive h
  in
  Alcotest.(check (option string)) "devil" (Some payload) (run_devil ());
  Alcotest.(check (option string)) "hand" (Some payload) (run_hand ())

let test_net_station_address () =
  let mac = "\x0a\x0b\x0c\x0d\x0e\x0f" in
  let m = Machine.create () in
  let d = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init d ~mac;
  Alcotest.(check string) "readback" mac (Drivers.Net.Devil_driver.station_address d)

let test_net_ring_wrap () =
  (* Enough frames to wrap the receive ring at pstop. *)
  let m = Machine.create () in
  let d = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init d ~mac:"\x02\x00\x00\x00\x00\x01";
  let frame i = Printf.sprintf "frame-%04d-%s" i (String.make 400 'p') in
  let received = ref 0 in
  for round = 0 to 40 do
    assert (Hwsim.Ne2000.inject_frame m.nic (frame round));
    match Drivers.Net.Devil_driver.receive d with
    | Some f ->
        Alcotest.(check string) "in order" (frame round) f;
        incr received
    | None -> Alcotest.fail "lost a frame"
  done;
  Alcotest.(check int) "all received" 41 !received

(* {1 PIC} *)

let test_pic_drivers_agree () =
  let run init_driver read_mask =
    let m = Machine.create () in
    init_driver m;
    (Hwsim.Pic8259.initialized m.pic, Hwsim.Pic8259.vector_base m.pic, read_mask m)
  in
  let devil =
    run
      (fun m ->
        let d = Drivers.Pic_driver.Devil_driver.create m.pic_dev in
        Drivers.Pic_driver.Devil_driver.init d ~vector_base:0x20 ~single:false
          ~with_icw4:true ~cascade_map:0x04;
        Drivers.Pic_driver.Devil_driver.set_mask d 0xab)
      (fun m ->
        Drivers.Pic_driver.Devil_driver.read_mask
          (Drivers.Pic_driver.Devil_driver.create m.pic_dev))
  in
  let hand =
    run
      (fun m ->
        let h = Drivers.Pic_driver.Handcrafted.create m.bus ~base:Machine.pic_base in
        Drivers.Pic_driver.Handcrafted.init h ~vector_base:0x20 ~single:false
          ~with_icw4:true ~cascade_map:0x04;
        Drivers.Pic_driver.Handcrafted.set_mask h 0xab)
      (fun m ->
        Drivers.Pic_driver.Handcrafted.read_mask
          (Drivers.Pic_driver.Handcrafted.create m.bus ~base:Machine.pic_base))
  in
  Alcotest.(check bool) "same state" true (devil = hand)

let test_pic_eoi_cycle () =
  let m = Machine.create () in
  let d = Drivers.Pic_driver.Devil_driver.create m.pic_dev in
  Drivers.Pic_driver.Devil_driver.init d ~vector_base:0x20 ~single:false
    ~with_icw4:true ~cascade_map:0x04;
  Drivers.Pic_driver.Devil_driver.set_mask d 0x00;
  Hwsim.Pic8259.raise_irq m.pic ~line:6;
  Alcotest.(check (option int)) "vector" (Some 0x26) (Hwsim.Pic8259.inta m.pic);
  Alcotest.(check int) "in service" 0x40 (Drivers.Pic_driver.Devil_driver.in_service d);
  Drivers.Pic_driver.Devil_driver.specific_eoi d ~line:6;
  Alcotest.(check int) "retired" 0x00 (Drivers.Pic_driver.Devil_driver.in_service d)

(* {1 8237 DMA} *)

let test_dma_drivers_agree () =
  let program create_and_program readback =
    let m = Machine.create () in
    create_and_program m;
    ( Hwsim.Dma8237.programmed_address m.dma ~channel:2,
      Hwsim.Dma8237.programmed_count m.dma ~channel:2,
      Hwsim.Dma8237.channel_masked m.dma ~channel:2,
      readback m )
  in
  let devil =
    program
      (fun m ->
        let d = Drivers.Dma_driver.Devil_driver.create m.dma_dev in
        Drivers.Dma_driver.Devil_driver.master_clear d;
        Drivers.Dma_driver.Devil_driver.program_channel d ~channel:2
          ~address:0x2345 ~count:511 ~transfer:Drivers.Dma_driver.Write_memory
          ~mode:Drivers.Dma_driver.Single ~auto_init:false)
      (fun _ -> 0)
  in
  let hand =
    program
      (fun m ->
        let h = Drivers.Dma_driver.Handcrafted.create m.bus ~base:Machine.dma_base in
        Drivers.Dma_driver.Handcrafted.master_clear h;
        Drivers.Dma_driver.Handcrafted.program_channel h ~channel:2
          ~address:0x2345 ~count:511 ~transfer:Drivers.Dma_driver.Write_memory
          ~mode:Drivers.Dma_driver.Single ~auto_init:false)
      (fun _ -> 0)
  in
  Alcotest.(check bool) "same programming" true (devil = hand);
  let addr, count, masked, _ = devil in
  Alcotest.(check int) "address" 0x2345 addr;
  Alcotest.(check int) "count" 511 count;
  Alcotest.(check bool) "unmasked" false masked

let test_dma_transfer_through_devil_programming () =
  let m = Machine.create () in
  let d = Drivers.Dma_driver.Devil_driver.create m.dma_dev in
  Drivers.Dma_driver.Devil_driver.master_clear d;
  Drivers.Dma_driver.Devil_driver.program_channel d ~channel:1 ~address:0x80
    ~count:7 ~transfer:Drivers.Dma_driver.Write_memory
    ~mode:Drivers.Dma_driver.Single ~auto_init:false;
  let moved =
    Hwsim.Dma8237.device_request m.dma ~channel:1
      ~data:(Bytes.of_string "8 bytes!") Hwsim.Dma8237.To_memory
  in
  Alcotest.(check int) "moved" 8 moved;
  Alcotest.(check string) "landed" "8 bytes!"
    (Bytes.sub_string (Hwsim.Dma8237.memory m.dma) 0x80 8);
  Alcotest.(check bool) "tc seen through devil" true
    (Drivers.Dma_driver.Devil_driver.terminal_count_reached d 1)

(* {1 Sound} *)

let test_sound_drivers_agree () =
  let run setup inspect =
    let m = Machine.create () in
    setup m;
    inspect m
  in
  let inspect m =
    ( Hwsim.Cs4236b.indexed_reg m.Machine.sound 6,
      Hwsim.Cs4236b.indexed_reg m.Machine.sound 7,
      Hwsim.Cs4236b.extended_reg m.Machine.sound 2 )
  in
  let devil =
    run
      (fun m ->
        let d = Drivers.Sound.Devil_driver.create m.sound_dev in
        Drivers.Sound.Devil_driver.set_volume d ~left:20 ~right:30;
        Drivers.Sound.Devil_driver.line_gain d 11;
        Alcotest.(check int) "version" Hwsim.Cs4236b.chip_version
          (Drivers.Sound.Devil_driver.chip_version d))
      inspect
  in
  let hand =
    run
      (fun m ->
        let h = Drivers.Sound.Handcrafted.create m.bus ~base:Machine.sound_base in
        Drivers.Sound.Handcrafted.set_volume h ~left:20 ~right:30;
        Drivers.Sound.Handcrafted.line_gain h 11;
        Alcotest.(check int) "version" Hwsim.Cs4236b.chip_version
          (Drivers.Sound.Handcrafted.chip_version h))
      inspect
  in
  Alcotest.(check bool) "same chip state" true (devil = hand)

(* {1 Graphics} *)

let test_gfx_drivers_agree () =
  let scene driver m =
    (match driver with
    | `Devil ->
        let d = Drivers.Gfx.Devil_driver.create m.Machine.gfx_dev in
        Drivers.Gfx.Devil_driver.set_depth d 8;
        Drivers.Gfx.Devil_driver.fill_rect d { x = 2; y = 2; w = 10; h = 6 } ~color:3;
        Drivers.Gfx.Devil_driver.copy_rect d { x = 20; y = 2; w = 10; h = 6 } ~dx:18 ~dy:0;
        Drivers.Gfx.Devil_driver.sync d
    | `Hand ->
        let h = Drivers.Gfx.Handcrafted.create m.Machine.bus ~mmio_base:Machine.gfx_mmio_base in
        Drivers.Gfx.Handcrafted.set_depth h 8;
        Drivers.Gfx.Handcrafted.fill_rect h { x = 2; y = 2; w = 10; h = 6 } ~color:3;
        Drivers.Gfx.Handcrafted.copy_rect h { x = 20; y = 2; w = 10; h = 6 } ~dx:18 ~dy:0;
        Drivers.Gfx.Handcrafted.sync h);
    List.init 40 (fun x -> List.init 10 (fun y -> Hwsim.Permedia2.pixel m.Machine.gfx ~x ~y))
  in
  let m1 = Machine.create () and m2 = Machine.create () in
  Alcotest.(check bool) "same framebuffer" true (scene `Devil m1 = scene `Hand m2);
  Alcotest.(check int) "fill visible" 3 (Hwsim.Permedia2.pixel m1.gfx ~x:5 ~y:4);
  Alcotest.(check int) "copy visible" 3 (Hwsim.Permedia2.pixel m1.gfx ~x:25 ~y:4)

let test_gfx_op_cost_rule () =
  (* +2 operations per primitive at 8/16/32 bpp; parity at 24 bpp. *)
  let ops driver depth =
    let m = Machine.create () in
    (match driver with
    | `Devil ->
        let d = Drivers.Gfx.Devil_driver.create m.Machine.gfx_dev in
        Drivers.Gfx.Devil_driver.set_depth d depth;
        Machine.reset_io_stats m;
        Drivers.Gfx.Devil_driver.fill_rect d { x = 0; y = 0; w = 2; h = 2 } ~color:1
    | `Hand ->
        let h = Drivers.Gfx.Handcrafted.create m.Machine.bus ~mmio_base:Machine.gfx_mmio_base in
        Drivers.Gfx.Handcrafted.set_depth h depth;
        Machine.reset_io_stats m;
        Drivers.Gfx.Handcrafted.fill_rect h { x = 0; y = 0; w = 2; h = 2 } ~color:1);
    Machine.io_ops m
  in
  Alcotest.(check int) "8bpp: +2" 2 (ops `Devil 8 - ops `Hand 8);
  Alcotest.(check int) "32bpp: +2" 2 (ops `Devil 32 - ops `Hand 32);
  Alcotest.(check int) "24bpp: parity" 0 (ops `Devil 24 - ops `Hand 24)

let () =
  Alcotest.run "drivers"
    [
      ( "mouse",
        [
          case "state and op-count equivalence" test_mouse_equivalence;
          case "interrupt toggle" test_mouse_interrupt_toggle;
        ] );
      ( "ide",
        [
          case "all PIO modes agree" test_ide_all_modes_agree;
          case "dma agrees" test_ide_dma_agree;
          case "setup cost (+3, +2/irq)" test_ide_setup_cost_shape;
        ] );
      ( "ne2000",
        [
          case "loopback, both drivers" test_net_loopback_both_drivers;
          case "station address" test_net_station_address;
          case "receive ring wrap" test_net_ring_wrap;
        ] );
      ( "pic",
        [
          case "drivers agree" test_pic_drivers_agree;
          case "eoi cycle" test_pic_eoi_cycle;
        ] );
      ( "dma",
        [
          case "drivers agree" test_dma_drivers_agree;
          case "transfer after devil programming" test_dma_transfer_through_devil_programming;
        ] );
      ("sound", [ case "drivers agree" test_sound_drivers_agree ]);
      ( "gfx",
        [
          case "drivers agree" test_gfx_drivers_agree;
          case "+2/-0 op rule" test_gfx_op_cost_rule;
        ] );
    ]
