(* Integration scenarios across the whole simulated machine: devices,
   Devil drivers and the interrupt controller cooperating like a small
   operating system would use them. *)

module Machine = Drivers.Machine
module Pic = Drivers.Pic_driver
module Value = Devil_ir.Value

let case name f = Alcotest.test_case name `Quick f

(* Conventional PC IRQ lines for our devices. *)
let irq_timer_rtc = 0
let irq_disk = 6
let irq_net = 3

(* A tiny interrupt dispatcher: poll device lines, feed the PIC, and
   service via INTA + EOI. *)
let service_interrupts m pic ~handlers =
  if Hwsim.Ide_disk.irq_pending m.Machine.disk then
    Hwsim.Pic8259.raise_irq m.Machine.pic ~line:irq_disk;
  if Hwsim.Ne2000.irq_asserted m.Machine.nic then
    Hwsim.Pic8259.raise_irq m.Machine.pic ~line:irq_net;
  if Hwsim.Mc146818.irq_asserted m.Machine.rtc then
    Hwsim.Pic8259.raise_irq m.Machine.pic ~line:irq_timer_rtc;
  let serviced = ref [] in
  let rec loop () =
    if Hwsim.Pic8259.int_asserted m.Machine.pic then begin
      match Hwsim.Pic8259.inta m.Machine.pic with
      | Some vector ->
          let line = vector - 0x20 in
          serviced := line :: !serviced;
          (match List.assoc_opt line handlers with
          | Some h -> h ()
          | None -> ());
          Pic.Devil_driver.eoi pic;
          loop ()
      | None -> ()
    end
  in
  loop ();
  List.rev !serviced

let boot () =
  let m = Machine.create ~debug:true () in
  let pic = Pic.Devil_driver.create m.pic_dev in
  Pic.Devil_driver.init pic ~vector_base:0x20 ~single:false ~with_icw4:true
    ~cascade_map:0x04;
  Pic.Devil_driver.set_mask pic 0x00;
  (m, pic)

let test_disk_interrupt_path () =
  let m, pic = boot () in
  let ide = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  Hwsim.Ide_disk.write_sector m.disk ~lba:3 (Bytes.make 512 'Q');
  (* Issue READ SECTORS by hand so the IRQ stays pending (the driver's
     status poll would acknowledge it). *)
  Machine.reset_io_stats m;
  Devil_runtime.Instance.set m.ide_dev "sector_count" (Value.Int 1);
  Devil_runtime.Instance.set m.ide_dev "lba_low" (Value.Int 3);
  Devil_runtime.Instance.set m.ide_dev "lba_mid" (Value.Int 0);
  Devil_runtime.Instance.set m.ide_dev "lba_high" (Value.Int 0);
  Devil_runtime.Instance.set m.ide_dev "lba_enable" (Value.Enum "LBA_MODE");
  Devil_runtime.Instance.set m.ide_dev "drive_select" (Value.Enum "MASTER");
  Devil_runtime.Instance.set m.ide_dev "head" (Value.Int 0);
  Devil_runtime.Instance.set m.ide_dev "command" (Value.Enum "READ_SECTORS");
  let got = ref None in
  let handler () =
    (* In the handler, drain the DRQ block like a real ISR bottom half. *)
    let words =
      Devil_runtime.Instance.read_block m.ide_dev "Ide_data" ~count:256
    in
    got := Some words.(0)
  in
  let serviced =
    service_interrupts m pic ~handlers:[ (irq_disk, handler) ]
  in
  Alcotest.(check (list int)) "disk line serviced" [ irq_disk ] serviced;
  Alcotest.(check (option int)) "payload word"
    (Some (Char.code 'Q' lor (Char.code 'Q' lsl 8)))
    !got;
  ignore ide

let test_net_interrupt_path () =
  let m, pic = boot () in
  let net = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net ~mac:"\x02\x00\x00\x00\x00\x42";
  Alcotest.(check bool) "inject" true
    (Hwsim.Ne2000.inject_frame m.nic "interrupt-driven frame");
  let received = ref None in
  let handler () =
    received := Drivers.Net.Devil_driver.receive net;
    Drivers.Net.Devil_driver.ack_interrupts net
  in
  let serviced = service_interrupts m pic ~handlers:[ (irq_net, handler) ] in
  Alcotest.(check (list int)) "net line serviced" [ irq_net ] serviced;
  Alcotest.(check (option string)) "frame" (Some "interrupt-driven frame")
    !received;
  (* The acknowledge cleared the controller's interrupt condition. *)
  Alcotest.(check bool) "line deasserted" false
    (Hwsim.Ne2000.irq_asserted m.nic)

let test_rtc_alarm_interrupt_path () =
  let m, pic = boot () in
  let rtc = Drivers.Rtc.Devil_driver.create m.rtc_dev in
  Drivers.Rtc.Devil_driver.set_time rtc
    { Drivers.Rtc.hours = 7; minutes = 59; seconds = 58 };
  Drivers.Rtc.Devil_driver.set_alarm rtc
    { Drivers.Rtc.hours = 8; minutes = 0; seconds = 0 };
  Drivers.Rtc.Devil_driver.enable_alarm_irq rtc true;
  Hwsim.Mc146818.tick_seconds m.rtc 2;
  let flags = ref 0 in
  let handler () = flags := Drivers.Rtc.Devil_driver.pending_interrupts rtc in
  let serviced =
    service_interrupts m pic ~handlers:[ (irq_timer_rtc, handler) ]
  in
  Alcotest.(check (list int)) "rtc line serviced" [ irq_timer_rtc ] serviced;
  Alcotest.(check bool) "alarm flag seen" true (!flags land 0x2 <> 0);
  Alcotest.(check bool) "flags acked" false
    (Hwsim.Mc146818.irq_asserted m.rtc)

let test_priority_across_devices () =
  (* Disk (line 6) and RTC (line 0) pending together: the RTC wins. *)
  let m, pic = boot () in
  Hwsim.Pic8259.raise_irq m.pic ~line:irq_disk;
  Hwsim.Pic8259.raise_irq m.pic ~line:irq_timer_rtc;
  let serviced = service_interrupts m pic ~handlers:[] in
  Alcotest.(check (list int)) "priority order" [ irq_timer_rtc; irq_disk ]
    serviced

let test_copy_file_disk_to_net () =
  (* A mini application: read a "file" from disk via DMA and transmit
     it over the network in 512-byte frames; the wire must carry the
     disk's exact contents. *)
  let m, _pic = boot () in
  let ide = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  let net = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init net ~mac:"\x02\x00\x00\x00\x00\x99";
  let sectors = 4 in
  for lba = 0 to sectors - 1 do
    Hwsim.Ide_disk.write_sector m.disk ~lba
      (Bytes.init 512 (fun i -> Char.chr ((lba + i) land 0xff)))
  done;
  let data =
    Drivers.Ide.Devil_driver.read_dma ide
      ~memory:(Hwsim.Piix4.memory m.busmaster)
      ~lba:0 ~count:sectors
  in
  for s = 0 to sectors - 1 do
    Drivers.Net.Devil_driver.send net (Bytes.sub_string data (s * 512) 512)
  done;
  let frames = Hwsim.Ne2000.take_transmitted m.nic in
  Alcotest.(check int) "frame count" sectors (List.length frames);
  List.iteri
    (fun s frame ->
      Alcotest.(check string)
        (Printf.sprintf "frame %d" s)
        (Bytes.sub_string data (s * 512) 512)
        frame)
    frames

let test_console_logging_scenario () =
  (* The RTC timestamps a kernel log line that goes out on the UART. *)
  let m, _pic = boot () in
  let rtc = Drivers.Rtc.Devil_driver.create m.rtc_dev in
  let serial = Drivers.Serial.Devil_driver.create m.uart_dev in
  Drivers.Serial.Devil_driver.init serial ~baud:115200;
  Drivers.Rtc.Devil_driver.set_time rtc
    { Drivers.Rtc.hours = 13; minutes = 37; seconds = 0 };
  Hwsim.Mc146818.tick_seconds m.rtc 42;
  let t = Drivers.Rtc.Devil_driver.read_time rtc in
  Drivers.Serial.Devil_driver.send serial
    (Printf.sprintf "[%02d:%02d:%02d] devil: all drivers up\n" t.Drivers.Rtc.hours
       t.Drivers.Rtc.minutes t.Drivers.Rtc.seconds);
  Alcotest.(check string) "console line"
    "[13:37:42] devil: all drivers up\n"
    (Hwsim.Uart16550.take_transmitted m.uart)

let test_whole_machine_smoke () =
  (* Every Devil instance on the machine does one meaningful operation
     with dynamic checks enabled. *)
  let m, pic = boot () in
  let mouse = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  Alcotest.(check bool) "mouse probe" true (Drivers.Mouse.Devil_driver.probe mouse);
  let sound = Drivers.Sound.Devil_driver.create m.sound_dev in
  Alcotest.(check int) "sound id" Hwsim.Cs4236b.chip_version
    (Drivers.Sound.Devil_driver.chip_version sound);
  let gfx = Drivers.Gfx.Devil_driver.create m.gfx_dev in
  Drivers.Gfx.Devil_driver.set_depth gfx 8;
  Drivers.Gfx.Devil_driver.fill_rect gfx { Drivers.Gfx.x = 0; y = 0; w = 2; h = 2 }
    ~color:9;
  Drivers.Gfx.Devil_driver.sync gfx;
  Alcotest.(check int) "pixel" 9 (Hwsim.Permedia2.pixel m.gfx ~x:1 ~y:1);
  let dma = Drivers.Dma_driver.Devil_driver.create m.dma_dev in
  Drivers.Dma_driver.Devil_driver.program_channel dma ~channel:0 ~address:0x40
    ~count:3 ~transfer:Drivers.Dma_driver.Write_memory
    ~mode:Drivers.Dma_driver.Single ~auto_init:false;
  Alcotest.(check int) "dma addr" 0x40
    (Hwsim.Dma8237.programmed_address m.dma ~channel:0);
  Alcotest.(check int) "pic mask" 0x00 (Pic.Devil_driver.read_mask pic)

let () =
  Alcotest.run "integration"
    [
      ( "interrupt paths",
        [
          case "disk read via IRQ" test_disk_interrupt_path;
          case "network receive via IRQ" test_net_interrupt_path;
          case "rtc alarm via IRQ" test_rtc_alarm_interrupt_path;
          case "priorities across devices" test_priority_across_devices;
        ] );
      ( "applications",
        [
          case "copy disk to network" test_copy_file_disk_to_net;
          case "timestamped console log" test_console_logging_scenario;
          case "whole machine smoke" test_whole_machine_smoke;
        ] );
    ]
