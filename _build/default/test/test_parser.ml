(* Tests for the Devil parser: every construct of the paper, error
   handling, and print/re-parse round trips over the bundled
   specification library. *)

module Ast = Devil_syntax.Ast
module Parser = Devil_syntax.Parser
module Pretty = Devil_syntax.Pretty
module Specs = Devil_specs.Specs

let parse src = Parser.parse_device ("device d (base : bit[8] port @ {0..7}) {" ^ src ^ "}")

let first_decl src =
  match (parse src).Ast.dev_decls with
  | d :: _ -> d
  | [] -> Alcotest.fail "no declaration parsed"

let expect_syntax_error src =
  match Parser.parse_device_result src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("parsed: " ^ src)

let test_device_header () =
  let d =
    Parser.parse_device
      "device two_ports (a : bit[8] port @ {0..3}, b : bit[16] port @ {0}, \
       mode : bool) { register r = a @ 0 : bit[8]; }"
  in
  Alcotest.(check string) "name" "two_ports" d.Ast.dev_name.name;
  Alcotest.(check int) "params" 3 (List.length d.Ast.dev_params);
  match (List.nth d.Ast.dev_params 2).Ast.dp_kind with
  | Ast.DP_const { ty = Ast.T_bool; _ } -> ()
  | _ -> Alcotest.fail "third parameter should be a bool constant"

let test_register_forms () =
  (match first_decl "register r = base @ 1 : bit[8];" with
  | Ast.D_register { reg_body = Ast.RB_ports [ (Ast.Acc_read_write, pe) ]; reg_size = Some 8; _ } ->
      Alcotest.(check (option int)) "offset" (Some 1) pe.Ast.port_offset
  | _ -> Alcotest.fail "simple register");
  (match first_decl "register r = write base @ 3, mask '1001000.' : bit[8];" with
  | Ast.D_register { reg_body = Ast.RB_ports [ (Ast.Acc_write, _) ]; reg_attrs = [ Ast.RA_mask { mask_text; _ } ]; _ } ->
      Alcotest.(check string) "mask" "1001000." mask_text
  | _ -> Alcotest.fail "write register with mask");
  (match first_decl "register r = read base @ 0 write base @ 1 : bit[8];" with
  | Ast.D_register { reg_body = Ast.RB_ports [ (Ast.Acc_read, _); (Ast.Acc_write, _) ]; _ } -> ()
  | _ -> Alcotest.fail "two-port register");
  (match first_decl "register r = base @ 0, pre {i = 0}, post {i = 1}, set {i = 2} : bit[8];" with
  | Ast.D_register { reg_attrs = [ Ast.RA_pre _; Ast.RA_post _; Ast.RA_set _ ]; _ } -> ()
  | _ -> Alcotest.fail "action attributes");
  (match first_decl "register bare = base : bit[8];" with
  | Ast.D_register { reg_body = Ast.RB_ports [ (_, pe) ]; _ } ->
      Alcotest.(check (option int)) "no offset" None pe.Ast.port_offset
  | _ -> Alcotest.fail "bare port")

let test_parameterized_registers () =
  (match first_decl "register I(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];" with
  | Ast.D_register { reg_params = [ p ]; _ } ->
      Alcotest.(check string) "param" "i" p.Ast.param_name.name;
      Alcotest.(check int) "range" 32 (Ast.int_set_cardinal p.Ast.param_set)
  | _ -> Alcotest.fail "template");
  match first_decl "register I23 = I(23), mask '......0.';" with
  | Ast.D_register { reg_body = Ast.RB_instance { template; args; _ }; reg_size = None; _ } ->
      Alcotest.(check string) "template" "I" template.Ast.name;
      Alcotest.(check (list int)) "args" [ 23 ] args
  | _ -> Alcotest.fail "instance"

let test_variable_forms () =
  (match first_decl "variable v = r, volatile, write trigger : int(8);" with
  | Ast.D_variable { var_attrs = [ Ast.VA_volatile; Ast.VA_trigger { t_dir = Ast.Trig_write; t_exempt = None } ]; _ } -> ()
  | _ -> Alcotest.fail "volatile write trigger");
  (match first_decl "variable v = r[1..0], write trigger except NEUTRAL : bool;" with
  | Ast.D_variable { var_attrs = [ Ast.VA_trigger { t_exempt = Some (Ast.Exempt_except e); _ } ]; _ } ->
      Alcotest.(check string) "neutral" "NEUTRAL" e.Ast.name
  | _ -> Alcotest.fail "except");
  (match first_decl "variable v = r[3], set {xm = v}, write trigger for true : bool;" with
  | Ast.D_variable { var_attrs = [ Ast.VA_set _; Ast.VA_trigger { t_exempt = Some (Ast.Exempt_for (Ast.AV_bool true)); _ } ]; _ } -> ()
  | _ -> Alcotest.fail "for true");
  (match first_decl "variable dx = h[3..0] # l[3..0], volatile : signed int(8);" with
  | Ast.D_variable { var_chunks = [ c1; c2 ]; var_type = Some { ty = Ast.T_int { signed = true; bits = 8 }; _ }; _ } ->
      Alcotest.(check string) "msb chunk" "h" c1.Ast.chunk_reg.name;
      Alcotest.(check string) "lsb chunk" "l" c2.Ast.chunk_reg.name
  | _ -> Alcotest.fail "concatenation");
  (match first_decl "variable xa = r[2,7..4] : int(5);" with
  | Ast.D_variable { var_chunks = [ { chunk_ranges = [ Ast.Single 2; Ast.Range (7, 4) ]; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "multi-fragment range");
  (match first_decl "private variable xm : bool;" with
  | Ast.D_variable { var_private = true; var_chunks = []; _ } -> ()
  | _ -> Alcotest.fail "memory cell");
  match first_decl "variable x = h # l : int(16) serialized as {l; h};" with
  | Ast.D_variable { var_serial = Some [ a; b ]; _ } ->
      Alcotest.(check string) "first" "l" a.Ast.si_reg.name;
      Alcotest.(check string) "second" "h" b.Ast.si_reg.name
  | _ -> Alcotest.fail "serialized variable"

let test_types () =
  (match first_decl "variable v = r : { A => '1', B <= '0', C <=> '1' };" with
  | Ast.D_variable { var_type = Some { ty = Ast.T_enum [ a; b; c ]; _ }; _ } ->
      Alcotest.(check bool) "A write" true (a.Ast.dir = Ast.Dir_write);
      Alcotest.(check bool) "B read" true (b.Ast.dir = Ast.Dir_read);
      Alcotest.(check bool) "C both" true (c.Ast.dir = Ast.Dir_both)
  | _ -> Alcotest.fail "enum type");
  match first_decl "variable v = r : int{0..17,25};" with
  | Ast.D_variable { var_type = Some { ty = Ast.T_int_set set; _ }; _ } ->
      Alcotest.(check bool) "has 25" true (Ast.int_set_mem 25 set);
      Alcotest.(check bool) "no 18" false (Ast.int_set_mem 18 set);
      Alcotest.(check int) "cardinal" 19 (Ast.int_set_cardinal set)
  | _ -> Alcotest.fail "int set type"

let test_structures () =
  match
    first_decl
      "structure init = { variable a = r[0] : bool; variable b = r[1] : bool; } \
       serialized as { r; if (a == true) s; if (b != false) t; };"
  with
  | Ast.D_structure { struct_fields = [ _; _ ]; struct_serial = Some [ i1; i2; i3 ]; _ } ->
      Alcotest.(check bool) "plain item" true (i1.Ast.si_cond = None);
      (match i2.Ast.si_cond with
      | Some { sc_negated = false; sc_value = Ast.AV_bool true; _ } -> ()
      | _ -> Alcotest.fail "== condition");
      (match i3.Ast.si_cond with
      | Some { sc_negated = true; _ } -> ()
      | _ -> Alcotest.fail "!= condition")
  | _ -> Alcotest.fail "structure"

let test_conditionals () =
  match
    first_decl
      "if (mode == true) { register a = base @ 0 : bit[8]; } else { register \
       b = base @ 0 : bit[8]; }"
  with
  | Ast.D_conditional { cd_then = [ _ ]; cd_else = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "conditional declaration"

let test_struct_assignment_action () =
  match first_decl "register X = base @ 1, pre {XS = {XA => 3; XRAE => true}} : bit[8];" with
  | Ast.D_register { reg_attrs = [ Ast.RA_pre { assignments = [ Ast.Assign_struct (t, fields) ]; _ } ]; _ } ->
      Alcotest.(check string) "target" "XS" t.Ast.name;
      Alcotest.(check int) "fields" 2 (List.length fields)
  | _ -> Alcotest.fail "structure assignment in pre-action"

let test_errors () =
  expect_syntax_error "device";
  expect_syntax_error "device d { }";
  expect_syntax_error "device d () { register r = ; }";
  expect_syntax_error "device d () { register r = base @ : bit[8]; }";
  expect_syntax_error "device d () { variable v = r[3..] : bool; }";
  expect_syntax_error "device d () { register r = base @ 0 : bit[8]; } trailing";
  expect_syntax_error "device d () { structure s = { register r = base @ 0 : bit[8]; }; }";
  expect_syntax_error "device d () { private register r = base @ 0 : bit[8]; }"

(* Round trips over the whole specification library: pretty-printing
   then re-parsing reaches a fixed point. *)
let test_roundtrip_specs () =
  List.iter
    (fun (name, src) ->
      let d1 = Parser.parse_device ~file:name src in
      let p1 = Pretty.device_to_string d1 in
      let d2 = Parser.parse_device ~file:(name ^ "-rt") p1 in
      let p2 = Pretty.device_to_string d2 in
      Alcotest.(check string) (name ^ " roundtrip") p1 p2)
    Specs.all

let () =
  Alcotest.run "parser"
    [
      ( "constructs",
        [
          Alcotest.test_case "device header" `Quick test_device_header;
          Alcotest.test_case "register forms" `Quick test_register_forms;
          Alcotest.test_case "parameterized registers" `Quick
            test_parameterized_registers;
          Alcotest.test_case "variable forms" `Quick test_variable_forms;
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "structures" `Quick test_structures;
          Alcotest.test_case "conditional declarations" `Quick
            test_conditionals;
          Alcotest.test_case "struct assignment actions" `Quick
            test_struct_assignment_action;
        ] );
      ( "errors",
        [ Alcotest.test_case "syntax errors" `Quick test_errors ] );
      ( "roundtrip",
        [ Alcotest.test_case "specification library" `Quick test_roundtrip_specs ] );
    ]
