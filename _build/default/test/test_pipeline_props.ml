(* End-to-end property tests: randomly generated device specifications
   are pushed through the whole pipeline — parse, elaborate, verify,
   pretty-print round trip, C generation, and runtime semantics over a
   RAM-backed device model. The generator only produces specifications
   that are verification-clean by construction, so every front-end
   rejection is a real bug. *)

module Check = Devil_check.Check
module Ir = Devil_ir.Ir
module Value = Devil_ir.Value
module Dtype = Devil_ir.Dtype
module Instance = Devil_runtime.Instance
module Bus = Devil_runtime.Bus

(* {1 A generator of verification-clean devices} *)

type gvar = {
  g_name : string;
  g_hi : int;
  g_lo : int;
  g_kind : [ `Uint | `Sint | `Bool | `Enum ];
  g_volatile : bool;
}

type greg = { g_reg : string; g_offset : int; g_vars : gvar list }

(* Split the 8 bits of a register into 1..4 fields. *)
let partition_bits rand =
  let rec cuts acc bit =
    if bit >= 8 then List.rev acc
    else
      let w = 1 + Random.State.int rand (min 4 (8 - bit)) in
      cuts ((bit + w - 1, bit) :: acc) (bit + w)
  in
  cuts [] 0

let gen_device rand =
  let n_regs = 2 + Random.State.int rand 3 in
  let regs =
    List.init n_regs (fun r ->
        let vars =
          List.mapi
            (fun i (hi, lo) ->
              let w = hi - lo + 1 in
              let kind =
                match Random.State.int rand 4 with
                | 0 when w = 1 -> `Bool
                | 1 when w >= 2 -> `Sint
                | 2 -> `Enum
                | _ -> `Uint
              in
              {
                g_name = Printf.sprintf "v%d_%d" r i;
                g_hi = hi;
                g_lo = lo;
                g_kind = kind;
                g_volatile = Random.State.bool rand;
              })
            (partition_bits rand)
        in
        { g_reg = Printf.sprintf "r%d" r; g_offset = r; g_vars = vars })
  in
  regs

let enum_cases w =
  (* An exhaustive read-write enumeration over w bits (w <= 2 keeps the
     case list small). *)
  let n = 1 lsl w in
  String.concat ", "
    (List.init n (fun i ->
         let bits =
           String.init w (fun j ->
               if (i lsr (w - 1 - j)) land 1 = 1 then '1' else '0')
         in
         Printf.sprintf "C%d_%s <=> '%s'" i bits bits))

let type_of_gvar v =
  let w = v.g_hi - v.g_lo + 1 in
  match v.g_kind with
  | `Bool -> "bool"
  | `Sint -> Printf.sprintf "signed int(%d)" w
  | `Enum when w <= 2 -> Printf.sprintf "{ %s }" (enum_cases w)
  | `Enum | `Uint -> Printf.sprintf "int(%d)" w

let source_of regs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "device generated (base : bit[8] port @ {0..%d}) {\n"
       (List.length regs - 1));
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  register %s = base @ %d : bit[8];\n" r.g_reg
           r.g_offset);
      List.iter
        (fun v ->
          let range =
            if v.g_hi = v.g_lo then string_of_int v.g_hi
            else Printf.sprintf "%d..%d" v.g_hi v.g_lo
          in
          Buffer.add_string b
            (Printf.sprintf "  variable %s = %s[%s]%s : %s;\n" v.g_name
               r.g_reg range
               (if v.g_volatile then ", volatile" else "")
               (type_of_gvar v)))
        r.g_vars)
    regs;
  Buffer.add_string b "}\n";
  Buffer.contents b

let value_for rand (v : gvar) : Value.t =
  let w = v.g_hi - v.g_lo + 1 in
  match v.g_kind with
  | `Bool -> Value.Bool (Random.State.bool rand)
  | `Uint -> Value.Int (Random.State.int rand (1 lsl w))
  | `Sint ->
      Value.Int (Random.State.int rand (1 lsl w) - (1 lsl (w - 1)))
  | `Enum when w <= 2 ->
      let i = Random.State.int rand (1 lsl w) in
      let bits =
        String.init w (fun j ->
            if (i lsr (w - 1 - j)) land 1 = 1 then '1' else '0')
      in
      Value.Enum (Printf.sprintf "C%d_%s" i bits)
  | `Enum -> Value.Int (Random.State.int rand (1 lsl w))

(* {1 Properties} *)

let seeds = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let with_generated seed f =
  let rand = Random.State.make [| seed; 0xde11 |] in
  let regs = gen_device rand in
  let src = source_of regs in
  match Check.compile src with
  | Ok device -> f rand regs src device
  | Error diags ->
      QCheck.Test.fail_reportf "generated spec rejected:@.%s@.%a" src
        Devil_syntax.Diagnostics.pp diags

let prop_compiles =
  QCheck.Test.make ~name:"generated specifications verify" ~count:150 seeds
    (fun seed -> with_generated seed (fun _ _ _ _ -> true))

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty-print/re-elaborate preserves the model"
    ~count:100 seeds (fun seed ->
      with_generated seed (fun _ _ src device ->
          let ast = Devil_syntax.Parser.parse_device src in
          let printed = Devil_syntax.Pretty.device_to_string ast in
          match Check.compile printed with
          | Ok d2 ->
              List.length d2.d_regs = List.length device.d_regs
              && List.length d2.d_vars = List.length device.d_vars
              && List.for_all2
                   (fun (a : Ir.var) (b : Ir.var) ->
                     a.v_name = b.v_name && a.v_chunks = b.v_chunks
                     && Dtype.width a.v_type = Dtype.width b.v_type)
                   device.d_vars d2.d_vars
          | Error _ -> false))

let prop_runtime_roundtrip =
  QCheck.Test.make ~name:"set then get returns the value (RAM-backed device)"
    ~count:150 seeds (fun seed ->
      with_generated seed (fun rand regs _src device ->
          let inst =
            Instance.create ~debug:true device ~bus:(Bus.memory ())
              ~bases:[ ("base", 0) ]
          in
          List.for_all
            (fun r ->
              List.for_all
                (fun v ->
                  let value = value_for rand v in
                  Instance.set inst v.g_name value;
                  Value.equal (Instance.get inst v.g_name) value)
                r.g_vars)
            regs))

let prop_sibling_isolation =
  QCheck.Test.make
    ~name:"writing one variable leaves its siblings' values intact"
    ~count:100 seeds (fun seed ->
      with_generated seed (fun rand regs _src device ->
          let inst =
            Instance.create ~debug:true device ~bus:(Bus.memory ())
              ~bases:[ ("base", 0) ]
          in
          (* Write every variable once, then rewrite one per register
             and check the others kept their values. *)
          let written =
            List.concat_map
              (fun r ->
                List.map
                  (fun v ->
                    let value = value_for rand v in
                    Instance.set inst v.g_name value;
                    (v, value))
                  r.g_vars)
              regs
          in
          List.for_all
            (fun r ->
              match r.g_vars with
              | first :: _ ->
                  let nv = value_for rand first in
                  Instance.set inst first.g_name nv;
                  List.for_all
                    (fun (v, value) ->
                      let expected =
                        if v.g_name = first.g_name then nv else value
                      in
                      Value.equal (Instance.get inst v.g_name) expected)
                    (List.filter (fun (v, _) -> List.memq v r.g_vars) written)
              | [] -> true)
            regs))

let prop_c_generation =
  QCheck.Test.make ~name:"C generation succeeds and is deterministic"
    ~count:100 seeds (fun seed ->
      with_generated seed (fun _ _ _ device ->
          let h1 = Devil_codegen.C_backend.generate device in
          let h2 = Devil_codegen.C_backend.generate device in
          String.length h1 > 200 && String.equal h1 h2))

let prop_doc_generation =
  QCheck.Test.make ~name:"doc generation mentions every public variable"
    ~count:100 seeds (fun seed ->
      with_generated seed (fun _ _ _ device ->
          let doc = Devil_codegen.Doc_backend.generate device in
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            nn = 0 || go 0
          in
          List.for_all
            (fun (v : Ir.var) -> contains doc v.v_name)
            (Ir.public_vars device)))

let prop_raw_image_consistency =
  QCheck.Test.make
    ~name:"register image equals the composition of its variables"
    ~count:100 seeds (fun seed ->
      with_generated seed (fun rand regs _src device ->
          let bus = Bus.memory () in
          let inst =
            Instance.create ~debug:true device ~bus ~bases:[ ("base", 0) ]
          in
          List.for_all
            (fun r ->
              let expected = ref 0 in
              List.iter
                (fun v ->
                  let value = value_for rand v in
                  Instance.set inst v.g_name value;
                  let var = Option.get (Ir.find_var device v.g_name) in
                  match Dtype.encode var.v_type value with
                  | Ok raw ->
                      expected :=
                        Devil_bits.Bitops.insert ~hi:v.g_hi ~lo:v.g_lo
                          ~field:raw !expected
                  | Error _ -> ())
                r.g_vars;
              bus.Bus.read ~width:8 ~addr:r.g_offset = !expected)
            regs))

let () =
  Alcotest.run "pipeline_props"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compiles;
            prop_pretty_roundtrip;
            prop_runtime_roundtrip;
            prop_sibling_isolation;
            prop_c_generation;
            prop_doc_generation;
            prop_raw_image_consistency;
          ] );
    ]
