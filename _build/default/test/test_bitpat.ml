(* Unit and property tests for enum bit patterns (Devil_bits.Bitpat). *)

module Bitpat = Devil_bits.Bitpat

let test_exact () =
  let p = Bitpat.of_string_exn "100" in
  Alcotest.(check bool) "exact" true (Bitpat.is_exact p);
  Alcotest.(check (option int)) "value" (Some 4) (Bitpat.value p);
  Alcotest.(check bool) "matches 4" true (Bitpat.matches p 4);
  Alcotest.(check bool) "not 5" false (Bitpat.matches p 5);
  Alcotest.(check bool) "not out of width" false (Bitpat.matches p 12)

let test_wildcard () =
  let p = Bitpat.of_string_exn "1*1" in
  Alcotest.(check bool) "not exact" false (Bitpat.is_exact p);
  Alcotest.(check (option int)) "no value" None (Bitpat.value p);
  Alcotest.(check bool) "101" true (Bitpat.matches p 5);
  Alcotest.(check bool) "111" true (Bitpat.matches p 7);
  Alcotest.(check bool) "100" false (Bitpat.matches p 4)

let test_width_and_errors () =
  Alcotest.(check int) "width" 8 (Bitpat.width (Bitpat.of_string_exn "10*01-.*"));
  (match Bitpat.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  match Bitpat.of_string "10z" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad char accepted"

let test_overlap () =
  let p a = Bitpat.of_string_exn a in
  Alcotest.(check bool) "distinct exact" false (Bitpat.overlap (p "00") (p "01"));
  Alcotest.(check bool) "same" true (Bitpat.overlap (p "01") (p "01"));
  Alcotest.(check bool) "wild vs exact" true (Bitpat.overlap (p "0*") (p "01"));
  Alcotest.(check bool) "wild disjoint" false (Bitpat.overlap (p "0*") (p "10"));
  Alcotest.(check bool)
    "different widths never overlap" false
    (Bitpat.overlap (p "0") (p "00"))

let test_to_string () =
  Alcotest.(check string) "roundtrip" "1*1" (Bitpat.to_string (Bitpat.of_string_exn "1*1"));
  (* '.' and '-' normalize to '*'. *)
  Alcotest.(check string) "dot" "1*0" (Bitpat.to_string (Bitpat.of_string_exn "1.0"))

let pat_gen width =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (return width)
         (map (fun i -> List.nth [ "0"; "1"; "*" ] i) (int_bound 2))))

let prop_value_matches =
  QCheck.Test.make ~name:"an exact pattern matches its own value" ~count:300
    (QCheck.make (pat_gen 6))
    (fun text ->
      let p = Bitpat.of_string_exn text in
      match Bitpat.value p with
      | Some v -> Bitpat.matches p v
      | None -> not (Bitpat.is_exact p))

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:300
    QCheck.(pair (make (pat_gen 5)) (make (pat_gen 5)))
    (fun (a, b) ->
      let pa = Bitpat.of_string_exn a and pb = Bitpat.of_string_exn b in
      Bitpat.overlap pa pb = Bitpat.overlap pb pa)

let prop_overlap_witness =
  QCheck.Test.make ~name:"overlap iff a common matching value exists"
    ~count:300
    QCheck.(pair (make (pat_gen 5)) (make (pat_gen 5)))
    (fun (a, b) ->
      let pa = Bitpat.of_string_exn a and pb = Bitpat.of_string_exn b in
      let witness = ref false in
      for v = 0 to 31 do
        if Bitpat.matches pa v && Bitpat.matches pb v then witness := true
      done;
      Bitpat.overlap pa pb = !witness)

let () =
  Alcotest.run "bitpat"
    [
      ( "unit",
        [
          Alcotest.test_case "exact patterns" `Quick test_exact;
          Alcotest.test_case "wildcards" `Quick test_wildcard;
          Alcotest.test_case "width and errors" `Quick test_width_and_errors;
          Alcotest.test_case "overlap" `Quick test_overlap;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_value_matches; prop_overlap_symmetric; prop_overlap_witness ]
      );
    ]
