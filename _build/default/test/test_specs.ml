(* Tests over the bundled specification library: every specification
   verifies, has the inventory DESIGN.md promises, and matches the
   paper's figures where the paper shows them. *)

module Specs = Devil_specs.Specs
module Ir = Devil_ir.Ir
module Value = Devil_ir.Value

let case name f = Alcotest.test_case name `Quick f

let test_busmouse_inventory () =
  let d = Specs.busmouse () in
  Alcotest.(check string) "name" "logitech_busmouse" d.d_name;
  Alcotest.(check int) "registers" 8 (List.length d.d_regs);
  (* Figure 1's interface: signature, config, interrupt + the three
     mouse_state fields are public; index is private. *)
  let public = List.map (fun v -> v.Ir.v_name) (Ir.public_vars d) in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n public))
    [ "signature"; "config"; "interrupt"; "dx"; "dy"; "buttons" ];
  Alcotest.(check bool) "index is private" true
    (match Ir.find_var d "index" with
    | Some v -> v.v_private
    | None -> false);
  match Ir.find_struct d "mouse_state" with
  | Some s -> Alcotest.(check (list string)) "fields" [ "dx"; "dy"; "buttons" ] s.s_fields
  | None -> Alcotest.fail "mouse_state missing"

let test_busmouse_figure1_details () =
  let d = Specs.busmouse () in
  (* dx is the paper's concatenation x_high[3..0] # x_low[3..0]. *)
  (match Ir.find_var d "dx" with
  | Some { v_chunks = [ { c_reg = "x_high"; c_ranges = [ (3, 0) ] };
                        { c_reg = "x_low"; c_ranges = [ (3, 0) ] } ];
           v_behaviour = { b_volatile = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "dx shape");
  (* signature is volatile with a write trigger. *)
  (match Ir.find_var d "signature" with
  | Some { v_behaviour = { b_volatile = true; b_trigger = Some { tr_write = true; _ }; _ }; _ } -> ()
  | _ -> Alcotest.fail "signature behaviour");
  (* x_low..y_high carry the index pre-actions 0..3. *)
  List.iteri
    (fun i reg ->
      match Ir.find_reg d reg with
      | Some { r_pre = [ Ir.Set_var { target = "index"; value = Ir.O_int n } ]; _ } ->
          Alcotest.(check int) reg i n
      | _ -> Alcotest.fail (reg ^ " pre-action"))
    [ "x_low"; "x_high"; "y_low"; "y_high" ]

let test_ne2000_inventory () =
  let d = Specs.ne2000 () in
  (* The paper's command-register split: st, txp, rd triggers + the
     private page variable. *)
  (match Ir.find_var d "st" with
  | Some { v_behaviour = { b_trigger = Some { tr_write = true; tr_exempt = Some (Ir.Neutral (Value.Enum "NEUTRAL")); _ }; _ }; _ } -> ()
  | _ -> Alcotest.fail "st trigger");
  (match Ir.find_var d "page" with
  | Some { v_private = true; _ } -> ()
  | _ -> Alcotest.fail "page private");
  (match Ir.find_var d "remote_data" with
  | Some { v_behaviour = { b_block = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "remote_data block");
  Alcotest.(check bool) "isr structure" true
    (Option.is_some (Ir.find_struct d "interrupt_status"))

let test_ide_inventory () =
  let d = Specs.ide () in
  (* The paper's block-transfer example variable. *)
  (match Ir.find_var d "Ide_data" with
  | Some { v_behaviour = { b_block = true; b_volatile = true; b_trigger = Some _; _ }; _ } -> ()
  | _ -> Alcotest.fail "Ide_data");
  Alcotest.(check int) "three ports" 3 (List.length d.d_ports);
  match Ir.find_struct d "ide_status" with
  | Some s -> Alcotest.(check int) "8 status bits" 8 (List.length s.s_fields)
  | None -> Alcotest.fail "ide_status"

let test_dma8237_serialization () =
  let d = Specs.dma8237 () in
  match Ir.find_var d "count0" with
  | Some { v_serial = Some [ a; b ]; _ } ->
      Alcotest.(check string) "low first" "cnt0_low" a.si_reg;
      Alcotest.(check string) "then high" "cnt0_high" b.si_reg;
      (match Ir.find_reg d "cnt0_low" with
      | Some { r_pre = [ Ir.Set_var { target = "flip_flop"; value = Ir.O_any } ]; _ } -> ()
      | _ -> Alcotest.fail "flip-flop pre-action")
  | _ -> Alcotest.fail "count0 serialization"

let test_pic8259_configs () =
  let master = Specs.pic8259 ~master:true () in
  let slave = Specs.pic8259 ~master:false () in
  Alcotest.(check bool) "master map" true
    (Option.is_some (Ir.find_var master "cascade_map"));
  Alcotest.(check bool) "no slave_id on master" true
    (Option.is_none (Ir.find_var master "slave_id"));
  Alcotest.(check bool) "slave id" true
    (Option.is_some (Ir.find_var slave "slave_id"));
  (* The control-flow serialization of the paper. *)
  match Ir.find_struct master "init" with
  | Some { s_serial = Some items; _ } ->
      let conds = List.filter (fun i -> i.Ir.si_cond <> None) items in
      Alcotest.(check int) "two conditional ICWs" 2 (List.length conds)
  | _ -> Alcotest.fail "init serialization"

let test_cs4236b_automaton_spec () =
  let d = Specs.cs4236b () in
  (* The templates I and X exist with the paper's parameter ranges. *)
  (match Ir.find_template d "I" with
  | Some { t_params = [ (_, values) ]; _ } ->
      Alcotest.(check int) "I range" 32 (List.length values)
  | _ -> Alcotest.fail "template I");
  (match Ir.find_template d "X" with
  | Some { t_params = [ (_, values) ]; t_pre = [ Ir.Set_struct { target = "XS"; _ } ]; _ } ->
      Alcotest.(check int) "X range" 19 (List.length values)
  | _ -> Alcotest.fail "template X");
  (* XA's multi-fragment chunk [2,7..4]. *)
  match Ir.find_var d "XA" with
  | Some { v_chunks = [ { c_ranges = [ (2, 2); (7, 4) ]; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "XA fragments"

let test_source_sizes () =
  (* The library is real: each source is a substantive specification. *)
  List.iter
    (fun (name, src) ->
      let lines =
        List.length
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' src))
      in
      Alcotest.(check bool) (name ^ " substantive") true (lines >= 15))
    Specs.all

let test_dil_files_match_library () =
  (* The checked-in specs/*.dil files are the embedded sources. *)
  let dir = "../specs" in
  if Sys.file_exists dir && Sys.is_directory dir then
    List.iter
      (fun (name, src) ->
        let path = Filename.concat dir (name ^ ".dil") in
        let ic = open_in_bin path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Alcotest.(check string) (name ^ ".dil") (String.trim src)
          (String.trim contents))
      Specs.all

let test_compile_exn_rejects_garbage () =
  match Specs.compile_exn ~name:"bad" "device oops (" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

let () =
  Alcotest.run "specs"
    [
      ( "library",
        [
          case "busmouse inventory" test_busmouse_inventory;
          case "busmouse figure 1 details" test_busmouse_figure1_details;
          case "ne2000 inventory" test_ne2000_inventory;
          case "ide inventory" test_ide_inventory;
          case "dma8237 serialization" test_dma8237_serialization;
          case "pic8259 configurations" test_pic8259_configs;
          case "cs4236b automaton" test_cs4236b_automaton_spec;
          case "source sizes" test_source_sizes;
          case ".dil files match the library" test_dil_files_match_library;
          case "compile_exn rejects garbage" test_compile_exn_rejects_garbage;
        ] );
    ]
