(* Network echo: bring up the NE2000 through the Devil interface and
   bounce frames off the controller's internal loopback — then switch
   to the wire and exchange frames with a peer injected by the "world".

   Run with: dune exec examples/network_echo.exe *)

module Machine = Drivers.Machine
module Net = Drivers.Net

let mac = "\x02\xde\x71\x1c\x00\x01"

let () =
  let m = Machine.create () in
  let drv = Net.Devil_driver.create m.ne2000_dev in

  (* Loopback mode: what we transmit comes straight back. *)
  Net.Devil_driver.init_loopback drv ~mac;
  Format.printf "station address: %s@."
    (String.concat ":"
       (List.init 6 (fun i ->
            Printf.sprintf "%02x"
              (Char.code (Net.Devil_driver.station_address drv).[i]))));
  List.iter
    (fun payload ->
      Net.Devil_driver.send drv payload;
      match Net.Devil_driver.receive drv with
      | Some frame when frame = payload ->
          Format.printf "loopback echo ok: %S (%d bytes)@." payload
            (String.length payload)
      | Some frame ->
          Format.printf "loopback MISMATCH: sent %S got %S@." payload frame
      | None -> Format.printf "loopback LOST %S@." payload)
    [ "ping"; "a somewhat longer frame to cross a page boundary"; "pong" ];

  (* Normal mode: frames go to the wire; a peer answers. *)
  Net.Devil_driver.init drv ~mac;
  Net.Devil_driver.send drv "hello, network";
  (match Hwsim.Ne2000.take_transmitted m.nic with
  | [ frame ] -> Format.printf "wire saw: %S@." frame
  | frames -> Format.printf "wire saw %d frames?!@." (List.length frames));
  assert (Hwsim.Ne2000.inject_frame m.nic "hello, driver");
  (match Net.Devil_driver.receive drv with
  | Some frame -> Format.printf "received from peer: %S@." frame
  | None -> Format.printf "no frame received?!@.");

  (* Ring stress: several frames queued then drained in order. *)
  let burst = List.init 10 (fun i -> Printf.sprintf "burst frame %02d" i) in
  List.iter (fun f -> assert (Hwsim.Ne2000.inject_frame m.nic f)) burst;
  let drained = ref [] in
  let rec drain () =
    match Net.Devil_driver.receive drv with
    | Some f ->
        drained := f :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  assert (List.rev !drained = burst);
  Format.printf "burst of %d frames drained in order@." (List.length burst)
