examples/serial_console.ml: Drivers Format Hwsim Printf String
