examples/disk_io.ml: Bytes Drivers Format Hwsim List Printf String
