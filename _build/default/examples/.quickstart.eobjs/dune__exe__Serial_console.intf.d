examples/serial_console.mli:
