examples/mini_os.ml: Bytes Devil_runtime Drivers Format Hwsim List Printf String
