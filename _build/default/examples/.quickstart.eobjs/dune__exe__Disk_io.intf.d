examples/disk_io.mli:
