examples/xserver_2d.mli:
