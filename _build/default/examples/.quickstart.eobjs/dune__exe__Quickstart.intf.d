examples/quickstart.mli:
