examples/network_echo.mli:
