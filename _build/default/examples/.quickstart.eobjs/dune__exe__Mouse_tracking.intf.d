examples/mouse_tracking.mli:
