examples/sound_mixer.mli:
