examples/sound_mixer.ml: Drivers Format Hwsim List
