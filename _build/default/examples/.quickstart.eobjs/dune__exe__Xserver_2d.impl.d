examples/xserver_2d.ml: Char Drivers Format Hwsim
