examples/interrupt_demo.mli:
