examples/network_echo.ml: Char Drivers Format Hwsim List Printf String
