examples/mini_os.mli:
