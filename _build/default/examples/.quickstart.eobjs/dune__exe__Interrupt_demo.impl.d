examples/interrupt_demo.ml: Drivers Format Hwsim
