examples/mouse_tracking.ml: Drivers Format Hwsim List
