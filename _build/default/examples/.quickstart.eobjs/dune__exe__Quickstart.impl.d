examples/quickstart.ml: Devil_check Devil_codegen Devil_ir Devil_runtime Devil_specs Devil_syntax Format Hwsim List String
