(* Quickstart: the complete Devil tool-chain in one file.

   1. Write (or load) a specification — here the paper's Figure 1.
   2. Compile it: parse, elaborate, verify (paper section 3.1).
   3. Generate the C stubs the paper's compiler emitted (Figure 3c).
   4. Bind the same specification to a simulated device and drive it
      through the generated OCaml accessors.

   Run with: dune exec examples/quickstart.exe *)

module Specs = Devil_specs.Specs
module Check = Devil_check.Check
module Instance = Devil_runtime.Instance
module Value = Devil_ir.Value

let () =
  (* 1-2. Compile the busmouse specification. *)
  let device =
    match Check.compile ~file:"busmouse.dil" Specs.busmouse_source with
    | Ok device -> device
    | Error diags ->
        Format.eprintf "%a@." Devil_syntax.Diagnostics.pp diags;
        exit 1
  in
  Format.printf "verified %s: %d registers, %d variables@." device.d_name
    (List.length device.d_regs)
    (List.length device.d_vars);

  (* 3. Generate the C stub header. *)
  let header = Devil_codegen.C_backend.generate ~prefix:"bm" device in
  Format.printf "generated %d bytes of C stubs; first lines:@."
    (String.length header);
  String.split_on_char '\n' header
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter print_endline;

  (* 4. Bind the specification to a simulated mouse and use it. *)
  let space = Hwsim.Io_space.create () in
  let mouse = Hwsim.Busmouse.create () in
  Hwsim.Io_space.attach space ~base:0x23c ~size:4 (Hwsim.Busmouse.model mouse);
  let inst =
    Instance.create ~debug:true device ~bus:(Hwsim.Io_space.bus space)
      ~bases:[ ("base", 0x23c) ]
  in
  Hwsim.Busmouse.move mouse ~dx:17 ~dy:(-4);
  Hwsim.Busmouse.set_buttons mouse 0b001;
  Instance.get_struct inst "mouse_state";
  Format.printf "mouse state: dx=%a dy=%a buttons=%a (%d I/O operations)@."
    Value.pp (Instance.get inst "dx") Value.pp (Instance.get inst "dy")
    Value.pp
    (Instance.get inst "buttons")
    (Hwsim.Io_space.io_ops space)
