(* Interrupt plumbing: initialize the 8259A through the Devil-generated
   structure stub — whose serialization order depends on the values
   written (paper's control-flow serialization example) — then service
   a burst of device interrupts with priorities, masking and EOIs.

   Run with: dune exec examples/interrupt_demo.exe *)

module Machine = Drivers.Machine
module Pic = Drivers.Pic_driver

let () =
  let m = Machine.create () in
  let pic = Pic.Devil_driver.create m.pic_dev in

  (* Standard PC master PIC: cascaded, vectors at 0x20, 8086 mode.
     Writing the init structure emits ICW1, ICW2, ICW3 (cascaded!) and
     ICW4 (ic4 set) — four ordered I/O writes from one stub call. *)
  Machine.reset_io_stats m;
  Pic.Devil_driver.init pic ~vector_base:0x20 ~single:false ~with_icw4:true
    ~cascade_map:0x04;
  Format.printf "ICW sequence: %d I/O operations (icw1..icw4)@."
    (Machine.io_ops m);
  assert (Hwsim.Pic8259.initialized m.pic);

  (* A single controller with no ICW4 would emit only ICW1 and ICW2. *)
  Machine.reset_io_stats m;
  Pic.Devil_driver.init pic ~vector_base:0x40 ~single:true ~with_icw4:false
    ~cascade_map:0;
  Format.printf "single/no-icw4 sequence: %d I/O operations (icw1, icw2)@."
    (Machine.io_ops m);

  (* Back to the standard configuration for the interrupt exercise. *)
  Pic.Devil_driver.init pic ~vector_base:0x20 ~single:false ~with_icw4:true
    ~cascade_map:0x04;
  Pic.Devil_driver.set_mask pic 0b1111_1000;  (* allow IRQ 0..2 *)

  (* Devices raise lines 1 (keyboard), 0 (timer) and 5 (masked). *)
  Hwsim.Pic8259.raise_irq m.pic ~line:1;
  Hwsim.Pic8259.raise_irq m.pic ~line:0;
  Hwsim.Pic8259.raise_irq m.pic ~line:5;

  Format.printf "pending (IRR): %#x@." (Pic.Devil_driver.pending_requests pic);
  let rec service () =
    if Hwsim.Pic8259.int_asserted m.pic then begin
      match Hwsim.Pic8259.inta m.pic with
      | Some vector ->
          Format.printf "servicing vector %#x (in service: %#x)@." vector
            (Pic.Devil_driver.in_service pic);
          Pic.Devil_driver.eoi pic;
          service ()
      | None -> ()
    end
  in
  service ();
  Format.printf "remaining pending (IRQ 5 stays masked): %#x@."
    (Pic.Devil_driver.pending_requests pic);
  Pic.Devil_driver.unmask_line pic 5;
  (match Hwsim.Pic8259.inta m.pic with
  | Some v -> Format.printf "after unmask, vector %#x delivered@." v
  | None -> Format.printf "unexpected: nothing pending@.");
  Pic.Devil_driver.eoi pic;
  assert (Hwsim.Pic8259.isr m.pic = 0);
  Format.printf "all interrupts retired@."
