(* Sound mixer: drive the CS4236B through its indexed registers, read
   the chip identification through the I23 extended-register automaton
   (the paper's automata-based addressing example), and stream a short
   PCM tone through the block-transfer stubs.

   Run with: dune exec examples/sound_mixer.exe *)

module Machine = Drivers.Machine
module Sound = Drivers.Sound

let () =
  let m = Machine.create () in
  let drv = Sound.Devil_driver.create m.sound_dev in

  (* The extended-register dance: IA := 23, write XS with XRAE set,
     access X25, and leave extended mode by rewriting the control
     register — all hidden behind one variable read. *)
  let version = Sound.Devil_driver.chip_version drv in
  Format.printf "chip version (extended register X25): %#x@." version;
  assert (version = Hwsim.Cs4236b.chip_version);
  (* Extended mode persists until the control register is written... *)
  assert (Hwsim.Cs4236b.extended_mode m.sound);

  (* ...which the next indexed access's pre-action does transparently. *)
  Sound.Devil_driver.set_volume drv ~left:10 ~right:12;
  assert (not (Hwsim.Cs4236b.extended_mode m.sound));
  Format.printf "volume: I6=%#04x I7=%#04x@."
    (Hwsim.Cs4236b.indexed_reg m.sound 6)
    (Hwsim.Cs4236b.indexed_reg m.sound 7);
  Sound.Devil_driver.mute drv true;
  assert (Hwsim.Cs4236b.indexed_reg m.sound 6 land 0x80 <> 0);
  Sound.Devil_driver.mute drv false;

  (* Extended line-input gain lives in X2. *)
  Sound.Devil_driver.line_gain drv 5;
  Format.printf "line gain (extended register X2): %#04x@."
    (Hwsim.Cs4236b.extended_reg m.sound 2);

  (* Play a square-ish wave through the PCM data port. *)
  let tone =
    List.init 64 (fun i -> if i mod 8 < 4 then 0x30 else 0xd0)
  in
  Sound.Devil_driver.play drv tone;
  let played = Hwsim.Cs4236b.played m.sound in
  assert (played = tone);
  Format.printf "played %d PCM samples through the block stub@."
    (List.length played);

  (* And capture: the device queues samples, the driver records them. *)
  let capture = List.init 16 (fun i -> i * 3 mod 256) in
  Hwsim.Cs4236b.queue_pcm m.sound capture;
  let recorded = Sound.Devil_driver.record drv 16 in
  assert (recorded = capture);
  Format.printf "recorded %d samples back@." (List.length recorded)
