(* Mouse tracking: the paper's running example as an application.

   A simulated user drags the mouse along a path; the Devil-based and
   the hand-crafted drivers (paper Figures 2 and 3) both track it, and
   the example checks they reconstruct the same trajectory with the
   same number of I/O operations.

   Run with: dune exec examples/mouse_tracking.exe *)

module Machine = Drivers.Machine
module Mouse = Drivers.Mouse

let path =
  (* A little spiral of movement deltas. *)
  List.init 48 (fun i ->
      let a = float_of_int i *. 0.4 in
      ( int_of_float (cos a *. float_of_int (i / 3)),
        int_of_float (sin a *. float_of_int (i / 3)),
        i mod 8 ))

let track name read_state move =
  let x = ref 0 and y = ref 0 and ops = ref 0 and presses = ref 0 in
  List.iter
    (fun (dx, dy, buttons) ->
      move ~dx ~dy ~buttons;
      let st, cost = read_state () in
      x := !x + st.Mouse.dx;
      y := !y + st.Mouse.dy;
      if st.Mouse.buttons <> 0 then incr presses;
      ops := !ops + cost)
    path;
  Format.printf "%-12s final position (%d, %d), %d button samples, %d I/O ops@."
    name !x !y !presses !ops;
  (!x, !y, !ops)

let () =
  let m = Machine.create ~debug:true () in
  let devil = Mouse.Devil_driver.create m.mouse_dev in
  let hand = Mouse.Handcrafted.create m.bus ~base:Machine.mouse_base in

  assert (Mouse.Devil_driver.probe devil);
  Mouse.Devil_driver.init devil;

  let move ~dx ~dy ~buttons =
    Hwsim.Busmouse.move m.mouse ~dx ~dy;
    Hwsim.Busmouse.set_buttons m.mouse buttons
  in
  let costed f () =
    Machine.reset_io_stats m;
    let st = f () in
    (st, Machine.io_ops m)
  in
  let dx_devil =
    track "Devil" (costed (fun () -> Mouse.Devil_driver.read_state devil)) move
  in
  let dx_hand =
    track "hand-crafted"
      (costed (fun () -> Mouse.Handcrafted.read_state hand))
      move
  in
  let x1, y1, ops1 = dx_devil and x2, y2, ops2 = dx_hand in
  assert (x1 = x2 && y1 = y2);
  Format.printf
    "both drivers agree; Devil costs %+d I/O operation(s) vs hand-crafted@."
    (ops1 - ops2)
