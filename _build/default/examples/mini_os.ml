(* A miniature operating system over the simulated PC: every device of
   the paper driven through its Devil-generated interface at once.

   Boot: program the 8259A, probe the mouse, identify the disk, bring
   up the NIC, the UART console and the RTC. Then run an event loop:
   the RTC ticks, the mouse moves a cursor that paints on the
   Permedia2 framebuffer, incoming network frames are appended to a
   log file on the IDE disk, and everything is reported on the serial
   console with timestamps.

   Run with: dune exec examples/mini_os.exe *)

module Machine = Drivers.Machine
module Pic = Drivers.Pic_driver

let irq_rtc = 0
let irq_net = 3
let irq_disk = 6

let () =
  let m = Machine.create ~debug:true () in

  (* --- boot --- *)
  let pic = Pic.Devil_driver.create m.pic_dev in
  Pic.Devil_driver.init pic ~vector_base:0x20 ~single:false ~with_icw4:true
    ~cascade_map:0x04;
  Pic.Devil_driver.set_mask pic 0x00;

  let console = Drivers.Serial.Devil_driver.create m.uart_dev in
  Drivers.Serial.Devil_driver.init console ~baud:115200;
  let clock = Drivers.Rtc.Devil_driver.create m.rtc_dev in
  Drivers.Rtc.Devil_driver.set_time clock
    { Drivers.Rtc.hours = 12; minutes = 0; seconds = 0 };
  let log msg =
    let t = Drivers.Rtc.Devil_driver.read_time clock in
    Drivers.Serial.Devil_driver.send console
      (Printf.sprintf "[%02d:%02d:%02d] %s\n" t.Drivers.Rtc.hours
         t.Drivers.Rtc.minutes t.Drivers.Rtc.seconds msg)
  in

  let mouse = Drivers.Mouse.Devil_driver.create m.mouse_dev in
  assert (Drivers.Mouse.Devil_driver.probe mouse);
  Drivers.Mouse.Devil_driver.init mouse;
  log "busmouse: probed and enabled";

  let disk = Drivers.Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  log (Printf.sprintf "ide: %s" (Drivers.Ide.Devil_driver.identify disk));

  let nic = Drivers.Net.Devil_driver.create m.ne2000_dev in
  Drivers.Net.Devil_driver.init nic ~mac:"\x02\x00\x5e\x10\x00\x01";
  log "ne2000: up";

  let gfx = Drivers.Gfx.Devil_driver.create m.gfx_dev in
  Drivers.Gfx.Devil_driver.set_depth gfx 8;
  Drivers.Gfx.Devil_driver.fill_rect gfx { Drivers.Gfx.x = 0; y = 0; w = 80; h = 24 }
    ~color:0;
  log "permedia2: desktop cleared";

  let kbd = Drivers.Keyboard.Devil_driver.create m.kbd_dev in
  assert (Drivers.Keyboard.Devil_driver.init kbd);
  ignore (Drivers.Keyboard.Devil_driver.set_leds kbd 0b010);
  log "i8042: keyboard self-test passed, caps-lock LED on";

  let audio = Drivers.Sound.Devil_driver.create m.sound_dev in
  Drivers.Sound.Devil_driver.set_volume audio ~left:8 ~right:8;
  log
    (Printf.sprintf "cs4236b: version %#x, volume set"
       (Drivers.Sound.Devil_driver.chip_version audio));

  (* --- the world acts --- *)
  let moves = [ (3, 1); (4, 2); (2, 0); (5, 3); (1, 1) ] in
  List.iteri
    (fun i (dx, dy) ->
      Hwsim.Busmouse.move m.mouse ~dx ~dy;
      if i mod 2 = 0 then
        assert (Hwsim.Ne2000.inject_frame m.nic (Printf.sprintf "packet-%d" i)))
    moves;
  Hwsim.Mc146818.tick_seconds m.rtc 2;
  List.iter (fun c -> ignore (Hwsim.I8042.press m.kbd c)) [ 0x26; 0x1f ];

  (* --- the event loop --- *)
  let cursor_x = ref 2 and cursor_y = ref 2 in
  let disk_log_lba = ref 200 in
  let service_pending () =
    if Hwsim.Ne2000.irq_asserted m.nic then
      Hwsim.Pic8259.raise_irq m.pic ~line:irq_net;
    if Hwsim.Ide_disk.irq_pending m.disk then
      Hwsim.Pic8259.raise_irq m.pic ~line:irq_disk;
    if Hwsim.Mc146818.irq_asserted m.rtc then
      Hwsim.Pic8259.raise_irq m.pic ~line:irq_rtc;
    let rec drain () =
      match Hwsim.Pic8259.inta m.pic with
      | Some vector ->
          (match vector - 0x20 with
          | l when l = irq_net ->
              (* Drain the whole receive ring before acknowledging, as
                 real handlers must: the ISR bit covers all of it. *)
              let rec drain_ring () =
                match Drivers.Net.Devil_driver.receive nic with
                | Some frame ->
                    log (Printf.sprintf "net rx: %S -> disk @ lba %d" frame
                           !disk_log_lba);
                    let sector = Bytes.make 512 '\000' in
                    Bytes.blit_string frame 0 sector 0
                      (min (String.length frame) 512);
                    Drivers.Ide.Devil_driver.write_sectors disk
                      ~lba:!disk_log_lba ~count:1 ~mult:1 ~path:`Block
                      ~width:`W16 sector;
                    incr disk_log_lba;
                    drain_ring ()
                | None -> Drivers.Net.Devil_driver.ack_interrupts nic
              in
              drain_ring ()
          | l when l = irq_disk ->
              (* Reading the status register acknowledges the drive. *)
              Devil_runtime.Instance.get_struct m.ide_dev "ide_status";
              log "disk: write completed"
          | l when l = irq_rtc ->
              ignore (Drivers.Rtc.Devil_driver.pending_interrupts clock)
          | l -> log (Printf.sprintf "spurious irq %d" l));
          Pic.Devil_driver.eoi pic;
          drain ()
      | None -> ()
    in
    drain ()
  in
  (* keystrokes arrive by polling, like the mouse *)
  let rec drain_keys () =
    match Drivers.Keyboard.Devil_driver.poll_scancode kbd with
    | Some code ->
        log (Printf.sprintf "key: scancode %#04x" code);
        drain_keys ()
    | None -> ()
  in
  drain_keys ();
  for _ = 1 to 6 do
    (* mouse polling paints the cursor trail *)
    let st = Drivers.Mouse.Devil_driver.read_state mouse in
    cursor_x := !cursor_x + st.Drivers.Mouse.dx;
    cursor_y := !cursor_y + st.Drivers.Mouse.dy;
    Drivers.Gfx.Devil_driver.fill_rect gfx
      { Drivers.Gfx.x = !cursor_x; y = !cursor_y; w = 2; h = 1 }
      ~color:7;
    service_pending ()
  done;
  Drivers.Gfx.Devil_driver.sync gfx;
  log (Printf.sprintf "cursor parked at (%d, %d)" !cursor_x !cursor_y);

  (* --- what actually happened --- *)
  print_string (Hwsim.Uart16550.take_transmitted m.uart);
  Format.printf "--- frame log recovered from disk ---@.";
  for lba = 200 to !disk_log_lba - 1 do
    let data =
      Drivers.Ide.Devil_driver.read_sectors disk ~lba ~count:1 ~mult:1
        ~path:`Block ~width:`W16
    in
    let text =
      match Bytes.index_opt data '\000' with
      | Some i -> Bytes.sub_string data 0 i
      | None -> Bytes.to_string data
    in
    Format.printf "lba %d: %s@." lba text
  done;
  Format.printf "--- framebuffer trail at row %d ---@." !cursor_y;
  for x = 0 to 30 do
    print_char (if Hwsim.Permedia2.pixel m.gfx ~x ~y:!cursor_y = 7 then '#' else '.')
  done;
  print_newline ();
  assert (Hwsim.Permedia2.overflows m.gfx = 0);
  Format.printf "mini-os: all devices served through Devil interfaces@."