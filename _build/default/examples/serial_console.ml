(* Serial console: bring up the 16550 UART through the DLAB overlay,
   run the loopback self-test, and emit a boot log timestamped by the
   MC146818 RTC — the two extension devices working together.

   Run with: dune exec examples/serial_console.exe *)

module Machine = Drivers.Machine
module Serial = Drivers.Serial
module Rtc = Drivers.Rtc

let () =
  let m = Machine.create ~debug:true () in
  let console = Serial.Devil_driver.create m.uart_dev in
  let clock = Rtc.Devil_driver.create m.rtc_dev in

  Serial.Devil_driver.init console ~baud:115200;
  Format.printf "UART configured: %d baud (divisor %d)@."
    (Serial.Devil_driver.configured_baud console)
    (Hwsim.Uart16550.divisor m.uart);
  Format.printf "loopback self-test: %s@."
    (if Serial.Devil_driver.self_test console then "passed" else "FAILED");

  Rtc.Devil_driver.set_time clock { Rtc.hours = 8; minutes = 59; seconds = 55 };
  let log msg =
    let t = Rtc.Devil_driver.read_time clock in
    Serial.Devil_driver.send console
      (Printf.sprintf "[%02d:%02d:%02d] %s\r\n" t.Rtc.hours t.Rtc.minutes
         t.Rtc.seconds msg)
  in
  log "devil console up";
  Hwsim.Mc146818.tick_seconds m.rtc 4;
  log "drivers probed";
  Hwsim.Mc146818.tick_seconds m.rtc 3;
  log "entering main loop";

  Format.printf "--- console output ---@.%s---@."
    (Hwsim.Uart16550.take_transmitted m.uart);

  (* A remote peer types a command; the console echoes it back. *)
  Hwsim.Uart16550.inject m.uart "uptime\r";
  let cmd = Serial.Devil_driver.recv console ~max:32 in
  Format.printf "received command: %S@." cmd;
  log (Printf.sprintf "echo: %s" (String.trim cmd));
  Format.printf "%s" (Hwsim.Uart16550.take_transmitted m.uart)
