(* A miniature X server frame: the two hardware-accelerated primitives
   the paper's modified Xfree86 server used (fill rectangle and screen
   copy) draw a small desktop scene on the Permedia2, which is then
   rendered as ASCII art from the simulated framebuffer.

   Run with: dune exec examples/xserver_2d.exe *)

module Machine = Drivers.Machine
module Gfx = Drivers.Gfx

let glyph = function
  | 0 -> ' '  (* desktop background *)
  | 1 -> '.'  (* window background *)
  | 2 -> '#'  (* title bar *)
  | 3 -> '+'  (* button *)
  | v -> Char.chr (Char.code 'a' + (v mod 26))

let () =
  let m = Machine.create () in
  let d = Gfx.Devil_driver.create m.gfx_dev in
  Gfx.Devil_driver.set_depth d 8;

  (* Desktop, a window with a title bar, and two buttons. *)
  Gfx.Devil_driver.fill_rect d { x = 0; y = 0; w = 72; h = 20 } ~color:0;
  Gfx.Devil_driver.fill_rect d { x = 6; y = 3; w = 40; h = 12 } ~color:1;
  Gfx.Devil_driver.fill_rect d { x = 6; y = 3; w = 40; h = 2 } ~color:2;
  Gfx.Devil_driver.fill_rect d { x = 9; y = 8; w = 6; h = 3 } ~color:3;
  (* Copy the button 10 pixels to the right: the screen-copy path. *)
  Gfx.Devil_driver.copy_rect d { x = 19; y = 8; w = 6; h = 3 } ~dx:10 ~dy:0;
  Gfx.Devil_driver.sync d;

  for y = 0 to 19 do
    for x = 0 to 71 do
      print_char (glyph (Hwsim.Permedia2.pixel m.gfx ~x ~y))
    done;
    print_newline ()
  done;

  assert (Hwsim.Permedia2.overflows m.gfx = 0);
  Format.printf "drawn with %d I/O operations, no FIFO overflows@."
    (Machine.io_ops m)
