(* Disk I/O: store and retrieve a document on the simulated IDE disk
   through the Devil-generated interface, in every transfer mode of
   the paper's Table 2, verifying integrity each time.

   Run with: dune exec examples/disk_io.exe *)

module Machine = Drivers.Machine
module Ide = Drivers.Ide

let document =
  String.concat "\n"
    (List.init 40 (fun i ->
         Printf.sprintf
           "%03d | Devil is an IDL for hardware programming (OSDI 2000)." i))

let sectors = 8
let bytes = sectors * 512

let pad s =
  let b = Bytes.make bytes '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) bytes);
  b

let () =
  let m = Machine.create () in
  let drv = Ide.Devil_driver.create ~ide:m.ide_dev ~piix4:m.piix4_dev in
  Format.printf "disk model: %s@." (Ide.Devil_driver.identify drv);

  let payload = pad document in

  (* Write with per-word loops, 16-bit I/O. *)
  Machine.reset_io_stats m;
  Ide.Devil_driver.write_sectors drv ~lba:100 ~count:sectors ~mult:1
    ~path:`Loop ~width:`W16 payload;
  Format.printf "PIO write (loop, 16-bit):   %6d I/O operations@."
    (Machine.io_ops m);

  (* Read back in each mode and verify. *)
  let check name read =
    Machine.reset_io_stats m;
    let data = read () in
    assert (Bytes.equal data payload);
    Format.printf "%-28s%6d I/O operations (verified)@." name
      (Machine.io_ops m)
  in
  Hwsim.Ide_disk.set_multiple m.disk 8;
  check "PIO read (loop, 16-bit):" (fun () ->
      Ide.Devil_driver.read_sectors drv ~lba:100 ~count:sectors ~mult:8
        ~path:`Loop ~width:`W16);
  check "PIO read (block, 16-bit):" (fun () ->
      Ide.Devil_driver.read_sectors drv ~lba:100 ~count:sectors ~mult:8
        ~path:`Block ~width:`W16);
  check "PIO read (block, 32-bit):" (fun () ->
      Ide.Devil_driver.read_sectors drv ~lba:100 ~count:sectors ~mult:8
        ~path:`Block ~width:`W32);
  check "DMA read:" (fun () ->
      Ide.Devil_driver.read_dma drv
        ~memory:(Hwsim.Piix4.memory m.busmaster)
        ~lba:100 ~count:sectors);

  let recovered =
    Ide.Devil_driver.read_dma drv
      ~memory:(Hwsim.Piix4.memory m.busmaster)
      ~lba:100 ~count:sectors
  in
  let text = Bytes.to_string recovered in
  let printable_prefix =
    match String.index_opt text '\n' with
    | Some i -> String.sub text 0 i
    | None -> String.sub text 0 60
  in
  Format.printf "first recovered line: %s@." (String.escaped printable_prefix)
