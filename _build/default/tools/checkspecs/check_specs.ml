let () =
  List.iter
    (fun (name, src) ->
      let config =
        if name = "pic8259" then [ ("is_master", Devil_ir.Value.Bool true) ]
        else []
      in
      match Devil_check.Check.compile ~config ~file:(name ^ ".dil") src with
      | Ok d ->
          Printf.printf "%-20s OK  (%d regs, %d vars, %d structs)\n" name
            (List.length d.Devil_ir.Ir.d_regs)
            (List.length d.Devil_ir.Ir.d_vars)
            (List.length d.Devil_ir.Ir.d_structs)
      | Error diags ->
          Format.printf "%-20s FAIL@.%a@." name
            Devil_syntax.Diagnostics.pp diags)
    Devil_specs.Specs.all
