let () =
  print_endline "=== Table 2: IDE throughput ===";
  Format.printf "%a@." Perfmodel.Ide_bench.pp_table (Perfmodel.Ide_bench.table2 ());
  print_endline "=== Devil with block stubs (PIO) ===";
  Format.printf "%a@." Perfmodel.Ide_bench.pp_table (Perfmodel.Ide_bench.block_stub_lines ());
  print_endline "=== Table 3: rectangle fill ===";
  Format.printf "%a@." Perfmodel.Permedia_bench.pp_table (Perfmodel.Permedia_bench.table Perfmodel.Permedia_bench.Fill);
  print_endline "=== Table 4: screen copy ===";
  Format.printf "%a@." Perfmodel.Permedia_bench.pp_table (Perfmodel.Permedia_bench.table Perfmodel.Permedia_bench.Copy)
