tools/checkspecs/run_tables.mli:
