tools/checkspecs/run_table1.mli:
