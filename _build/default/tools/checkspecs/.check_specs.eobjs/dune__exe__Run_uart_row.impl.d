tools/checkspecs/run_uart_row.ml: Format Mutation
