tools/checkspecs/check_specs.ml: Devil_check Devil_ir Devil_specs Devil_syntax Format List Printf
