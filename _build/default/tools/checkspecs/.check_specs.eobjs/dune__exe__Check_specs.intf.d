tools/checkspecs/check_specs.mli:
