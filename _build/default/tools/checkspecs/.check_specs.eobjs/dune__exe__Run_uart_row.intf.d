tools/checkspecs/run_uart_row.mli:
