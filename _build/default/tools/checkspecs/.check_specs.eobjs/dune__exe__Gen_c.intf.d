tools/checkspecs/gen_c.mli:
