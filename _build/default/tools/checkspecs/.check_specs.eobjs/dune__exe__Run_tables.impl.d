tools/checkspecs/run_tables.ml: Format Perfmodel
