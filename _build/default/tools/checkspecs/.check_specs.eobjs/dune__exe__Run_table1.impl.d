tools/checkspecs/run_table1.ml: Format Mutation Printf Unix
