tools/checkspecs/export_specs.ml: Array Devil_specs Filename List String Sys
