tools/checkspecs/export_specs.mli:
