tools/checkspecs/gen_c.ml: Array Devil_codegen Devil_specs Sys
