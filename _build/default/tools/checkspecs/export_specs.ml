let () =
  let dir = Sys.argv.(1) in
  List.iter
    (fun (name, src) ->
      let oc = open_out (Filename.concat dir (name ^ ".dil")) in
      output_string oc (String.trim src);
      output_char oc '\n';
      close_out oc)
    Devil_specs.Specs.all
