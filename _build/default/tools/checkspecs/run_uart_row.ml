let () =
  let r = Mutation.Analysis.uart_report () in
  Format.printf "%a" Mutation.Analysis.pp_table1 [ r ]
