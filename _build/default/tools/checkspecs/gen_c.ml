let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "logitech_busmouse" in
  let device =
    match name with
    | "logitech_busmouse" -> Devil_specs.Specs.busmouse ()
    | "ide" -> Devil_specs.Specs.ide ()
    | "ne2000" -> Devil_specs.Specs.ne2000 ()
    | "cs4236b" -> Devil_specs.Specs.cs4236b ()
    | _ -> failwith "unknown"
  in
  print_string (Devil_codegen.C_backend.generate ~prefix:"bm" device)
