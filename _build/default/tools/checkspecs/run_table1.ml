let () =
  let t0 = Unix.gettimeofday () in
  let reports = Mutation.Analysis.table1 () in
  Format.printf "%a" Mutation.Analysis.pp_table1 reports;
  Printf.printf "elapsed: %.1fs\n" (Unix.gettimeofday () -. t0)
