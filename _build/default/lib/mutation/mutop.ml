type token_class = Ident | Number | Operator | Bitlit

let explode s = List.init (String.length s) (String.get s)

let splice s i c =
  String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)

let replace_at s i c =
  String.sub s 0 i ^ String.make 1 c
  ^ String.sub s (i + 1) (String.length s - i - 1)

let remove_at s i =
  String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)

let dedup l =
  List.sort_uniq String.compare l

let over_alphabet ~alphabet ~valid s =
  let n = String.length s in
  let removals = List.init n (fun i -> remove_at s i) in
  let insertions =
    List.concat_map
      (fun i -> List.map (fun c -> splice s i c) alphabet)
      (List.init (n + 1) (fun i -> i))
  in
  let replacements =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun c -> if s.[i] = c then None else Some (replace_at s i c))
          alphabet)
      (List.init n (fun i -> i))
  in
  dedup
    (List.filter
       (fun m -> m <> s && valid m)
       (removals @ insertions @ replacements))

(* Identifier corruption is detected (or not) independently of which
   character a typo introduces, so insertions and replacements probe a
   small representative alphabet; this keeps the mutant count per site
   in the paper's range without biasing the detection rate. *)
let ident_alphabet = explode "az09_"

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let valid_ident s =
  s <> "" && (not (is_digit s.[0])) && String.for_all is_ident_char s

let mutate_ident s = over_alphabet ~alphabet:ident_alphabet ~valid:valid_ident s

let decimal_alphabet = explode "0123456789"

let mutate_decimal s =
  over_alphabet ~alphabet:decimal_alphabet
    ~valid:(fun m -> m <> "" && String.for_all is_digit m)
    s

let hex_alphabet = explode "0123456789abcdefABCDEF"

let mutate_hex s =
  (* Mutate only the digits after "0x"; the result keeps the prefix.
     Removing the only digit yields "0x", an invalid token the compiler
     must reject — that mutant is kept. *)
  let prefix = String.sub s 0 2 in
  let digits = String.sub s 2 (String.length s - 2) in
  let muts =
    over_alphabet ~alphabet:hex_alphabet ~valid:(fun _ -> true) digits
  in
  let muts = if String.length digits = 1 then "" :: muts else muts in
  dedup (List.map (fun d -> prefix ^ d) muts)

let mutate_number s =
  if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    mutate_hex s
  else mutate_decimal s

let edit_distance1 a b =
  let la = String.length a and lb = String.length b in
  if a = b then false
  else if la = lb then (
    let diff = ref 0 in
    String.iteri (fun i c -> if c <> b.[i] then incr diff) a;
    !diff = 1)
  else
    let short, long = if la < lb then (a, b) else (b, a) in
    String.length long - String.length short = 1
    &&
    let rec go i j skipped =
      if i >= String.length short then true
      else if short.[i] = long.[j] then go (i + 1) (j + 1) skipped
      else if skipped then false
      else go i (j + 1) true
    in
    go 0 0 false

let mutate_operator ~ops s =
  dedup (List.filter (fun o -> edit_distance1 s o) ops)

let bit_alphabet = explode "01.*-"

let mutate_bitlit s =
  over_alphabet ~alphabet:bit_alphabet
    ~valid:(fun m -> m <> "")
    s
