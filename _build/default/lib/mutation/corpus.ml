module Ir = Devil_ir.Ir
module Dtype = Devil_ir.Dtype
module Bitpat = Devil_bits.Bitpat

(* {1 The kernel-side environment of a traditional driver} *)

let io_funcs =
  [
    ("inb", 1); ("outb", 2); ("inw", 1); ("outw", 2); ("inl", 1); ("outl", 2);
    ("insb", 3); ("insw", 3); ("insl", 3);
    ("outsb", 3); ("outsw", 3); ("outsl", 3);
    ("readl", 1); ("writel", 2);
    ("udelay", 1); ("mdelay", 1);
    ("request_irq", 2); ("free_irq", 1);
    ("memcpy_fromio", 3); ("memcpy_toio", 3);
  ]

let c_env : C_lang.env =
  {
    C_lang.vars = [ "jiffies" ];
    consts = [ ("HZ", Some 100); ("NULL", Some 0) ];
    funcs =
      List.map
        (fun (n, a) -> (n, { C_lang.arity = a; args = [] }))
        io_funcs;
  }

(* {1 Logitech busmouse, traditional C}

   After linux-2.2.12 drivers/char/busmouse.c: the tagged hardware
   operating regions (paper §4.2). *)

let busmouse_c =
  {|
#define MSE_DATA_PORT 0x23c
#define MSE_SIGNATURE_PORT 0x23d
#define MSE_CONTROL_PORT 0x23e
#define MSE_CONFIG_PORT 0x23f
#define MSE_READ_X_LOW 0x80
#define MSE_READ_X_HIGH 0xa0
#define MSE_READ_Y_LOW 0xc0
#define MSE_READ_Y_HIGH 0xe0
#define MSE_INT_ON 0x00
#define MSE_INT_OFF 0x10
#define MSE_DEFAULT_MODE 0x90

static int mouse_buttons;
static int mouse_dx;
static int mouse_dy;

static void mouse_interrupt(void)
{
  char dx;
  char dy;
  unsigned char buttons;
  outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
  dx = inb(MSE_DATA_PORT) & 0xf;
  outb(MSE_READ_X_HIGH, MSE_CONTROL_PORT);
  dx |= (inb(MSE_DATA_PORT) & 0xf) << 4;
  outb(MSE_READ_Y_LOW, MSE_CONTROL_PORT);
  dy = inb(MSE_DATA_PORT) & 0xf;
  outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
  buttons = inb(MSE_DATA_PORT);
  dy |= (buttons & 0xf) << 4;
  buttons = (buttons >> 5) & 0x07;
  mouse_dx += dx;
  mouse_dy += dy;
  mouse_buttons = buttons;
  outb(MSE_INT_ON, MSE_CONTROL_PORT);
}

static int mouse_probe(void)
{
  outb(0x5a, MSE_SIGNATURE_PORT);
  udelay(100);
  if (inb(MSE_SIGNATURE_PORT) != 0x5a)
    return 0;
  outb(MSE_DEFAULT_MODE, MSE_CONFIG_PORT);
  outb(MSE_INT_OFF, MSE_CONTROL_PORT);
  return 1;
}
|}

(* {1 IDE (PIIX4), traditional C} — after linux-2.2.12 drivers/block. *)

let ide_c =
  {|
#define IDE_BASE 0x1f0
#define IDE_DATA 0x1f0
#define IDE_ERROR 0x1f1
#define IDE_NSECTOR 0x1f2
#define IDE_SECTOR 0x1f3
#define IDE_LCYL 0x1f4
#define IDE_HCYL 0x1f5
#define IDE_SELECT 0x1f6
#define IDE_STATUS 0x1f7
#define IDE_COMMAND 0x1f7
#define IDE_CONTROL 0x3f6
#define BUSY_STAT 0x80
#define READY_STAT 0x40
#define DRQ_STAT 0x08
#define ERR_STAT 0x01
#define WIN_READ 0x20
#define WIN_WRITE 0x30
#define WIN_READDMA 0xc8
#define SECTOR_WORDS 256
#define BM_COMMAND 0xc000
#define BM_STATUS 0xc002
#define BM_PRD 0xc004

static int ide_wait_ready(void)
{
  int timeout = 10000;
  while (inb(IDE_STATUS) & BUSY_STAT) {
    if (--timeout == 0)
      return 1;
    udelay(10);
  }
  return 0;
}

static void ide_setup_command(unsigned int block, int nsect, int cmd)
{
  outb(nsect, IDE_NSECTOR);
  outb(block & 0xff, IDE_SECTOR);
  outb((block >> 8) & 0xff, IDE_LCYL);
  outb((block >> 16) & 0xff, IDE_HCYL);
  outb(0xe0 | ((block >> 24) & 0x0f), IDE_SELECT);
  outb(cmd, IDE_COMMAND);
}

static int ide_read_block(unsigned int block, int nsect, unsigned short *buffer)
{
  int stat;
  int i;
  if (ide_wait_ready())
    return 1;
  ide_setup_command(block, nsect, WIN_READ);
  for (i = 0; i < nsect; i++) {
    do {
      stat = inb(IDE_STATUS);
      if (stat & ERR_STAT)
        return 1;
    } while ((stat & (BUSY_STAT | DRQ_STAT)) != DRQ_STAT);
    insw(IDE_DATA, buffer, SECTOR_WORDS);
    buffer += SECTOR_WORDS;
  }
  return 0;
}

static int ide_dma_read(unsigned int block, int nsect, unsigned long prd)
{
  if (ide_wait_ready())
    return 1;
  outl(prd, BM_PRD);
  ide_setup_command(block, nsect, WIN_READDMA);
  outb(0x08, BM_COMMAND);
  outb(0x09, BM_COMMAND);
  while ((inb(BM_STATUS) & 0x04) == 0)
    udelay(10);
  outb(0x04, BM_STATUS);
  outb(0x00, BM_COMMAND);
  return 0;
}

static void ide_soft_reset(void)
{
  outb(0x04, IDE_CONTROL);
  udelay(10);
  outb(0x00, IDE_CONTROL);
  while (inb(IDE_STATUS) & BUSY_STAT)
    udelay(10);
}
|}

(* {1 NE2000, traditional C} — after linux-2.2.12 drivers/net/ne.c and
   8390.c hardware operating regions. *)

let ne2000_c =
  {|
#define NE_BASE 0x300
#define NE_CMD 0x300
#define NE_DATAPORT 0x310
#define NE_RESET 0x31f
#define EN0_STARTPG 0x301
#define EN0_STOPPG 0x302
#define EN0_BOUNDARY 0x303
#define EN0_TPSR 0x304
#define EN0_TCNTLO 0x305
#define EN0_TCNTHI 0x306
#define EN0_ISR 0x307
#define EN0_RSARLO 0x308
#define EN0_RSARHI 0x309
#define EN0_RCNTLO 0x30a
#define EN0_RCNTHI 0x30b
#define EN0_RXCR 0x30c
#define EN0_TXCR 0x30d
#define EN0_DCFG 0x30e
#define EN0_IMR 0x30f
#define EN1_PHYS 0x301
#define EN1_CURPAG 0x307
#define E8390_STOP 0x01
#define E8390_START 0x02
#define E8390_TRANS 0x04
#define E8390_RREAD 0x08
#define E8390_RWRITE 0x10
#define E8390_NODMA 0x20
#define E8390_PAGE0 0x00
#define E8390_PAGE1 0x40
#define ENISR_RX 0x01
#define ENISR_TX 0x02
#define ENISR_RX_ERR 0x04
#define ENISR_TX_ERR 0x08
#define ENISR_OVER 0x10
#define ENISR_COUNTERS 0x20
#define ENISR_RDC 0x40
#define ENISR_RESET 0x80
#define ENISR_ALL 0x3f
#define ENDCFG_WTS 0x01
#define ENDCFG_FT1 0x40
#define ENDCFG_LS 0x08
#define ETHER_ADDR_LEN 6
#define NESM_START_PG 0x40
#define NESM_STOP_PG 0x80
#define TX_PAGES 12

static int ne_dmaing;
static unsigned char ne_mac[ETHER_ADDR_LEN];

static void ne_reset_8390(void)
{
  unsigned long reset_start_time = jiffies;
  outb(inb(NE_RESET), NE_RESET);
  while ((inb(EN0_ISR) & ENISR_RESET) == 0) {
    if (jiffies - reset_start_time > 2)
      break;
  }
  outb(ENISR_RESET, EN0_ISR);
}

static void ne_stop(void)
{
  outb(E8390_PAGE0 | E8390_STOP | E8390_NODMA, NE_CMD);
  outb(ENISR_ALL, EN0_IMR);
}

static void ne_init_8390(int startp)
{
  int i;
  outb(E8390_NODMA | E8390_PAGE0 | E8390_STOP, NE_CMD);
  outb(ENDCFG_FT1 | ENDCFG_LS, EN0_DCFG);
  outb(0x00, EN0_RCNTLO);
  outb(0x00, EN0_RCNTHI);
  outb(0x00, EN0_RXCR);
  outb(0x02, EN0_TXCR);
  outb(NESM_START_PG, EN0_STARTPG);
  outb(NESM_STOP_PG, EN0_STOPPG);
  outb(NESM_START_PG, EN0_BOUNDARY);
  outb(ENISR_ALL, EN0_ISR);
  outb(0x00, EN0_IMR);
  outb(E8390_NODMA | E8390_PAGE1 | E8390_STOP, NE_CMD);
  for (i = 0; i < ETHER_ADDR_LEN; i++)
    outb(ne_mac[i], EN1_PHYS + i);
  outb(NESM_START_PG, EN1_CURPAG);
  outb(E8390_NODMA | E8390_PAGE0 | E8390_STOP, NE_CMD);
  if (startp) {
    outb(0xff, EN0_ISR);
    outb(ENISR_ALL, EN0_IMR);
    outb(E8390_NODMA | E8390_PAGE0 | E8390_START, NE_CMD);
    outb(0x00, EN0_TXCR);
    outb(0x04, EN0_RXCR);
  }
}

static void ne_get_8390_hdr(unsigned char *hdr, int ring_page)
{
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  outb(E8390_NODMA | E8390_PAGE0 | E8390_START, NE_CMD);
  outb(4, EN0_RCNTLO);
  outb(0, EN0_RCNTHI);
  outb(0, EN0_RSARLO);
  outb(ring_page, EN0_RSARHI);
  outb(E8390_RREAD | E8390_START, NE_CMD);
  insb(NE_DATAPORT, hdr, 4);
  outb(ENISR_RDC, EN0_ISR);
  ne_dmaing = 0;
}

static void ne_block_input(unsigned char *buf, int count, int ring_offset)
{
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  outb(E8390_NODMA | E8390_PAGE0 | E8390_START, NE_CMD);
  outb(count & 0xff, EN0_RCNTLO);
  outb(count >> 8, EN0_RCNTHI);
  outb(ring_offset & 0xff, EN0_RSARLO);
  outb(ring_offset >> 8, EN0_RSARHI);
  outb(E8390_RREAD | E8390_START, NE_CMD);
  insb(NE_DATAPORT, buf, count);
  outb(ENISR_RDC, EN0_ISR);
  ne_dmaing = 0;
}

static void ne_block_output(const unsigned char *buf, int count, int start_page)
{
  unsigned long dma_start;
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  outb(E8390_PAGE0 | E8390_START | E8390_NODMA, NE_CMD);
  outb(ENISR_RDC, EN0_ISR);
  outb(count & 0xff, EN0_RCNTLO);
  outb(count >> 8, EN0_RCNTHI);
  outb(0x00, EN0_RSARLO);
  outb(start_page, EN0_RSARHI);
  outb(E8390_RWRITE | E8390_START, NE_CMD);
  outsb(NE_DATAPORT, buf, count);
  dma_start = jiffies;
  while ((inb(EN0_ISR) & ENISR_RDC) == 0) {
    if (jiffies - dma_start > 2) {
      ne_reset_8390();
      ne_init_8390(1);
      break;
    }
  }
  outb(ENISR_RDC, EN0_ISR);
  ne_dmaing = 0;
}

static void ne_trigger_send(unsigned int length, int start_page)
{
  outb(E8390_NODMA | E8390_PAGE0, NE_CMD);
  outb(length & 0xff, EN0_TCNTLO);
  outb(length >> 8, EN0_TCNTHI);
  outb(start_page, EN0_TPSR);
  outb(E8390_NODMA | E8390_TRANS | E8390_START, NE_CMD);
}

static int ne_rx_overrun(void)
{
  unsigned char was_txing;
  was_txing = inb(NE_CMD) & E8390_TRANS;
  outb(E8390_NODMA | E8390_PAGE0 | E8390_STOP, NE_CMD);
  mdelay(10);
  outb(0x00, EN0_RCNTLO);
  outb(0x00, EN0_RCNTHI);
  outb(E8390_TXCONFIG_LOOP, EN0_TXCR);
  outb(E8390_NODMA | E8390_PAGE0 | E8390_START, NE_CMD);
  outb(ENISR_OVER, EN0_ISR);
  outb(0x00, EN0_TXCR);
  return was_txing;
}
|}

(* Fix-up: the overrun routine references a loopback constant. *)
let ne2000_c =
  String.concat ""
    [ "#define E8390_TXCONFIG_LOOP 0x02\n"; ne2000_c ]

(* {1 CDevil environments} *)

let constraint_of_type (ty : Dtype.t) : C_lang.constraint_ =
  match ty with
  | Dtype.Bool -> C_lang.One_of [ 0; 1 ]
  | Dtype.Int { signed = false; bits } -> C_lang.Range (0, (1 lsl bits) - 1)
  | Dtype.Int { signed = true; bits } ->
      C_lang.Range (-(1 lsl (bits - 1)), (1 lsl (bits - 1)) - 1)
  | Dtype.Int_set { values; _ } -> C_lang.One_of values
  | Dtype.Enum cases ->
      C_lang.One_of
        (List.filter_map
           (fun (c : Dtype.enum_case) ->
             if Dtype.writable_case c.dir then Bitpat.value c.pattern else None)
           cases)

let cdevil_env (device : Ir.device) ~prefix : C_lang.env =
  let upper = String.uppercase_ascii in
  let consts = ref [] in
  let funcs = ref [] in
  let add_fun name fsig = funcs := (name, fsig) :: !funcs in
  List.iter
    (fun (v : Ir.var) ->
      (match v.v_type with
      | Dtype.Enum cases ->
          List.iter
            (fun (c : Dtype.enum_case) ->
              match Bitpat.value c.pattern with
              | Some raw ->
                  consts :=
                    ( Printf.sprintf "%s_%s_%s" (upper prefix) (upper v.v_name)
                        (upper c.case_name),
                      Some raw )
                    :: !consts
              | None -> ())
            cases
      | Dtype.Bool | Dtype.Int _ | Dtype.Int_set _ -> ());
      add_fun
        (Printf.sprintf "%s_get_%s" prefix v.v_name)
        { C_lang.arity = 0; args = [] };
      let writable =
        v.v_chunks = []
        || List.exists
             (fun (c : Ir.chunk) ->
               match Ir.find_reg device c.c_reg with
               | Some r -> Ir.reg_writable r
               | None -> false)
             v.v_chunks
      in
      if writable then
        add_fun
          (Printf.sprintf "%s_set_%s" prefix v.v_name)
          { C_lang.arity = 1; args = [ constraint_of_type v.v_type ] };
      if v.v_behaviour.b_block then begin
        add_fun
          (Printf.sprintf "%s_read_%s_block" prefix v.v_name)
          { C_lang.arity = 2; args = [] };
        add_fun
          (Printf.sprintf "%s_write_%s_block" prefix v.v_name)
          { C_lang.arity = 2; args = [] }
      end)
    device.d_vars;
  List.iter
    (fun (s : Ir.strct) ->
      add_fun
        (Printf.sprintf "%s_get_%s" prefix s.s_name)
        { C_lang.arity = 0; args = [] };
      let field_constraints =
        List.map
          (fun fname ->
            match Ir.find_var device fname with
            | Some v -> constraint_of_type v.v_type
            | None -> C_lang.Any)
          s.s_fields
      in
      add_fun
        (Printf.sprintf "%s_set_%s" prefix s.s_name)
        { C_lang.arity = List.length s.s_fields; args = field_constraints })
    device.d_structs;
  add_fun (prefix ^ "_init")
    { C_lang.arity = List.length device.d_ports; args = [] };
  {
    C_lang.vars = c_env.C_lang.vars;
    consts = !consts @ c_env.C_lang.consts;
    funcs = !funcs @ c_env.C_lang.funcs;
  }

(* {1 Busmouse, CDevil} *)

let busmouse_cdevil =
  {|
static int mouse_buttons;
static int mouse_dx;
static int mouse_dy;

static void mouse_interrupt(void)
{
  bm_get_mouse_state();
  mouse_dx += bm_get_dx();
  mouse_dy += bm_get_dy();
  mouse_buttons = bm_get_buttons();
  bm_set_interrupt(BM_INTERRUPT_ENABLE);
}

static int mouse_probe(void)
{
  bm_init(0x23c);
  bm_set_signature(0x5a);
  udelay(100);
  if (bm_get_signature() != 0x5a)
    return 0;
  bm_set_config(BM_CONFIG_DEFAULT_MODE);
  bm_set_interrupt(BM_INTERRUPT_DISABLE);
  return 1;
}
|}

(* {1 IDE, CDevil} *)

let ide_cdevil =
  {|
#define SECTOR_WORDS 256

static int ide_wait_ready(void)
{
  int timeout = 10000;
  ide_get_ide_status();
  while (ide_get_bsy()) {
    if (--timeout == 0)
      return 1;
    udelay(10);
    ide_get_ide_status();
  }
  return 0;
}

static void ide_setup_command(unsigned int block, int nsect, int cmd)
{
  ide_set_sector_count(nsect & 0xff);
  ide_set_lba_low(block & 0xff);
  ide_set_lba_mid((block >> 8) & 0xff);
  ide_set_lba_high((block >> 16) & 0xff);
  ide_set_lba_enable(IDE_LBA_ENABLE_LBA_MODE);
  ide_set_drive_select(IDE_DRIVE_SELECT_MASTER);
  ide_set_head((block >> 24) & 0x0f);
  ide_set_command(cmd);
}

static int ide_wait_drq(void)
{
  ide_get_ide_status();
  while (!ide_get_drq()) {
    if (ide_get_err())
      return 1;
    ide_get_ide_status();
  }
  if (ide_get_error_flags())
    return 1;
  return 0;
}

static int ide_read_block(unsigned int block, int nsect, unsigned short *buffer)
{
  int i;
  if (ide_wait_ready())
    return 1;
  ide_setup_command(block, nsect, IDE_COMMAND_READ_SECTORS);
  for (i = 0; i < nsect; i++) {
    if (ide_wait_drq())
      return 1;
    ide_read_Ide_data_block(buffer, SECTOR_WORDS);
    buffer += SECTOR_WORDS;
  }
  return 0;
}

static int ide_dma_read(unsigned int block, int nsect, unsigned long prd)
{
  if (ide_wait_ready())
    return 1;
  piix_set_prd_address(prd);
  ide_setup_command(block, nsect, IDE_COMMAND_READ_DMA);
  piix_set_bm_direction(PIIX_BM_DIRECTION_BM_TO_MEMORY);
  piix_set_bm_engine(PIIX_BM_ENGINE_BM_START);
  while (piix_get_bm_irq() != PIIX_BM_IRQ_RAISED)
    udelay(10);
  piix_set_bm_irq(PIIX_BM_IRQ_CLEAR_IRQ);
  piix_set_bm_engine(PIIX_BM_ENGINE_BM_STOP);
  return 0;
}

static void ide_soft_reset(void)
{
  ide_set_soft_reset(IDE_SOFT_RESET_RESET);
  udelay(10);
  ide_set_soft_reset(IDE_SOFT_RESET_RUN);
  ide_get_ide_status();
  while (ide_get_bsy())
    ide_get_ide_status();
}
|}

(* {1 NE2000, CDevil} *)

let ne2000_cdevil =
  {|
#define NESM_START_PG 0x40
#define NESM_STOP_PG 0x80
#define ETHER_ADDR_LEN 6

static int ne_dmaing;

static void ne_stop(void)
{
  ne_set_st(NE_ST_STOP);
  ne_set_irq_mask(0x00);
}

static void ne_init_8390(int startp)
{
  ne_set_st(NE_ST_STOP);
  ne_set_word_transfer(NE_WORD_TRANSFER_BYTE_WIDE);
  ne_set_loopback_select(NE_LOOPBACK_SELECT_NORMAL_OP);
  ne_set_fifo_threshold(2);
  ne_set_remote_count(0);
  ne_set_accept_broadcast(1);
  ne_set_loopback_mode(1);
  ne_set_page_start(NESM_START_PG);
  ne_set_page_stop(NESM_STOP_PG);
  ne_set_boundary(NESM_START_PG);
  ne_set_mac0(0x02);
  ne_set_mac1(0x00);
  ne_set_mac2(0x00);
  ne_set_mac3(0x00);
  ne_set_mac4(0x00);
  ne_set_mac5(0x01);
  ne_set_current_page(NESM_START_PG);
  ne_set_interrupt_status(NE_PRX_CLEAR_PRX, NE_PTX_CLEAR_PTX,
                          NE_RXE_CLEAR_RXE, NE_TXE_CLEAR_TXE,
                          NE_OVW_CLEAR_OVW, NE_CNT_CLEAR_CNT,
                          NE_RDC_CLEAR_RDC, NE_RST_CLEAR_RST);
  ne_set_irq_mask(0x3f);
  if (startp)
    ne_set_st(NE_ST_START);
}

static void ne_get_8390_hdr(unsigned int *hdr, int ring_page)
{
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  ne_set_remote_start(ring_page << 8);
  ne_set_remote_count(4);
  ne_set_rd(NE_RD_REMOTE_READ);
  ne_read_remote_data_block(hdr, 4);
  ne_set_rdc(NE_RDC_CLEAR_RDC);
  ne_dmaing = 0;
}

static void ne_block_input(unsigned int *buf, int count, int ring_offset)
{
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  ne_set_remote_start(ring_offset);
  ne_set_remote_count(count);
  ne_set_rd(NE_RD_REMOTE_READ);
  ne_read_remote_data_block(buf, count);
  ne_set_rdc(NE_RDC_CLEAR_RDC);
  ne_dmaing = 0;
}

static void ne_block_output(const unsigned int *buf, int count, int start_page)
{
  if (ne_dmaing)
    return;
  ne_dmaing = 1;
  ne_set_rdc(NE_RDC_CLEAR_RDC);
  ne_set_remote_start(start_page << 8);
  ne_set_remote_count(count);
  ne_set_rd(NE_RD_REMOTE_WRITE);
  ne_write_remote_data_block(buf, count);
  ne_set_rdc(NE_RDC_CLEAR_RDC);
  ne_dmaing = 0;
}

static void ne_trigger_send(unsigned int length, int start_page)
{
  ne_set_tx_page_start(start_page);
  ne_set_tx_byte_count(length);
  ne_set_txp(NE_TXP_TRANSMIT);
}

static void ne_rx_overrun(void)
{
  ne_set_st(NE_ST_STOP);
  mdelay(10);
  ne_set_remote_count(0);
  ne_set_loopback_mode(1);
  ne_set_st(NE_ST_START);
  ne_set_ovw(NE_OVW_CLEAR_OVW);
  ne_set_loopback_mode(0);
}
|}

let busmouse_cdevil_env () =
  cdevil_env (Devil_specs.Specs.busmouse ()) ~prefix:"bm"

let ide_cdevil_env () =
  let ide = cdevil_env (Devil_specs.Specs.ide ()) ~prefix:"ide" in
  let piix = cdevil_env (Devil_specs.Specs.piix4_ide ()) ~prefix:"piix" in
  {
    C_lang.vars = ide.C_lang.vars;
    consts = piix.C_lang.consts @ ide.C_lang.consts;
    funcs = piix.C_lang.funcs @ ide.C_lang.funcs;
  }

let ne2000_cdevil_env () =
  cdevil_env (Devil_specs.Specs.ne2000 ()) ~prefix:"ne"

(* {1 16550 UART — the extension device as a fourth mutation-study row} *)

let uart_c =
  {|
#define COM1 0x3f8
#define UART_RX 0x3f8
#define UART_TX 0x3f8
#define UART_DLL 0x3f8
#define UART_DLM 0x3f9
#define UART_IER 0x3f9
#define UART_FCR 0x3fa
#define UART_LCR 0x3fb
#define UART_MCR 0x3fc
#define UART_LSR 0x3fd
#define UART_MSR 0x3fe
#define UART_LCR_DLAB 0x80
#define UART_LCR_8N1 0x03
#define UART_LSR_DR 0x01
#define UART_LSR_THRE 0x20
#define UART_FCR_ENABLE 0x01
#define UART_FCR_CLEAR 0x06
#define UART_MCR_DTR 0x01
#define UART_MCR_RTS 0x02
#define UART_MCR_LOOP 0x10
#define BASE_BAUD 115200

static void serial_set_baud(int baud)
{
  int divisor = BASE_BAUD / baud;
  int lcr = inb(UART_LCR);
  outb(lcr | UART_LCR_DLAB, UART_LCR);
  outb(divisor & 0xff, UART_DLL);
  outb((divisor >> 8) & 0xff, UART_DLM);
  outb(lcr & ~UART_LCR_DLAB, UART_LCR);
}

static void serial_init(int baud)
{
  outb(0x00, UART_IER);
  serial_set_baud(baud);
  outb(UART_LCR_8N1, UART_LCR);
  outb(UART_FCR_ENABLE | UART_FCR_CLEAR, UART_FCR);
  outb(UART_MCR_DTR | UART_MCR_RTS, UART_MCR);
}

static void serial_putc(int c)
{
  while ((inb(UART_LSR) & UART_LSR_THRE) == 0)
    udelay(1);
  outb(c, UART_TX);
}

static int serial_getc(void)
{
  while ((inb(UART_LSR) & UART_LSR_DR) == 0)
    udelay(1);
  return inb(UART_RX);
}

static int serial_loop_test(void)
{
  int mcr = inb(UART_MCR);
  int ok;
  outb(mcr | UART_MCR_LOOP, UART_MCR);
  outb(0x5a, UART_TX);
  ok = inb(UART_RX) == 0x5a;
  outb(mcr & ~UART_MCR_LOOP, UART_MCR);
  return ok;
}
|}

let uart_cdevil =
  {|
#define BASE_BAUD 115200

static void serial_set_baud(int baud)
{
  uart_set_divisor(BASE_BAUD / baud);
}

static void serial_init(int baud)
{
  uart_set_irq_rx_available(0);
  uart_set_irq_tx_empty(0);
  serial_set_baud(baud);
  uart_set_word_length(UART_WORD_LENGTH_BITS8);
  uart_set_two_stop_bits(0);
  uart_set_parity_mode(0);
  uart_set_fifo_enable(1);
  uart_set_rx_fifo_reset(1);
  uart_set_tx_fifo_reset(1);
  uart_set_dtr(1);
  uart_set_rts(1);
}

static void serial_putc(int c)
{
  uart_get_line_status();
  while (uart_get_thr_empty() == 0) {
    udelay(1);
    uart_get_line_status();
  }
  uart_set_tx_data(c);
}

static int serial_getc(void)
{
  uart_get_line_status();
  while (uart_get_data_ready() == 0) {
    udelay(1);
    uart_get_line_status();
  }
  return uart_get_rx_data();
}

static int serial_loop_test(void)
{
  int ok;
  uart_set_loopback(1);
  uart_set_tx_data(0x5a);
  ok = uart_get_rx_data() == 0x5a;
  uart_set_loopback(0);
  return ok;
}
|}

let uart_cdevil_env () =
  cdevil_env (Devil_specs.Specs.uart16550 ()) ~prefix:"uart"
