(** A C-subset front-end standing in for the C compiler in the
    mutation experiment.

    The checker implements exactly the detection classes a C compiler
    applies to driver code: lexical validity (malformed numbers,
    stray characters), syntax, declared-before-use identifiers,
    call arity, lvalue discipline for assignments and increments, and
    assignment to constants. It deliberately does {e not} implement
    any deeper semantics — C's permissiveness is the experiment's
    baseline (paper §4.2).

    For CDevil code (driver code over generated stubs), function
    signatures may carry per-argument value constraints derived from
    the Devil types; a call with an out-of-range {e constant} argument
    is a compile-time error, mirroring the checks the generated
    stubs can perform on constants (§3.2). Run-time checks are not
    modelled, matching the paper's footnote. *)

type constraint_ =
  | Any
  | Range of int * int  (** inclusive *)
  | One_of of int list

type fsig = { arity : int; args : constraint_ list }
(** [args] is padded/truncated against [arity] as needed. *)

type env = {
  vars : string list;  (** assignable objects in scope *)
  consts : (string * int option) list;  (** macro constants *)
  funcs : (string * fsig) list;
}

val empty_env : env

val check : env:env -> string -> (unit, string) result
(** [Ok ()] when the translation unit compiles; [Error reason] when the
    compiler would reject it. *)

val operators : string list
(** The mutable operator tokens of the C subset. *)

type token =
  | IDENT of string
  | NUM of string
  | CHARLIT of string
  | STRING of string
  | OP of string
  | PUNCT of string
  | HASH_DEFINE
  | HASH_OTHER
  | EOF

type loc_token = { tok : token; offset : int; len : int; line : int }

val tokenize : string -> (loc_token list, string) result
(** Exposed for the mutation driver, which needs token positions to
    splice mutants into the source text. *)
