lib/mutation/corpus.mli: C_lang Devil_ir
