lib/mutation/mutop.mli:
