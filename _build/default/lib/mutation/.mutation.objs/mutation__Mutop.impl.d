lib/mutation/mutop.ml: List String
