lib/mutation/analysis.ml: Array C_lang Corpus Devil_check Devil_ir Devil_specs Devil_syntax Format Hashtbl List Mutop Option Printf String
