lib/mutation/corpus.ml: C_lang Devil_bits Devil_ir Devil_specs List Printf String
