lib/mutation/analysis.mli: C_lang Devil_ir Format
