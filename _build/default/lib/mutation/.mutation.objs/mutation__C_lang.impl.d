lib/mutation/c_lang.ml: Array List Option Printf String
