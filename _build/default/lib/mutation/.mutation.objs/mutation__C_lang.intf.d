lib/mutation/c_lang.mli:
