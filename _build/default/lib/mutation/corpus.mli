(** The mutation-analysis corpus (paper §4.2).

    For each of the three studied devices — Logitech busmouse, IDE
    (PIIX4) and NE2000 — the corpus holds:

    - the {e hardware operating regions} of a traditional C driver,
      written after the Linux 2.2 drivers the paper tagged, together
      with the environment (externally declared I/O primitives and
      kernel helpers) the compiler would see;
    - the equivalent {e CDevil} code: driver logic whose device
      accesses go through the stubs generated from our Devil
      specifications, checked against an environment derived
      automatically from the specification's IR.

    Our Devil specifications themselves come from [Devil_specs]. *)

val c_env : C_lang.env
(** Kernel-side declarations shared by the traditional drivers:
    [inb]/[outb] and friends, [insw]/[outsw], [udelay], [printk]... *)

val busmouse_c : string
val ide_c : string
val ne2000_c : string

val cdevil_env : Devil_ir.Ir.device -> prefix:string -> C_lang.env
(** Builds the compile-time environment of the generated header:
    accessor functions with arity and per-argument value constraints
    derived from the variable types, enum case macros, structure and
    block stubs. *)

val busmouse_cdevil : string
val ide_cdevil : string
val ne2000_cdevil : string

val busmouse_cdevil_env : unit -> C_lang.env
val ide_cdevil_env : unit -> C_lang.env
val ne2000_cdevil_env : unit -> C_lang.env

val uart_c : string
(** 16550 serial driver fragment — the extension device's traditional
    C hardware-operating code, a fourth row beyond the paper's three. *)

val uart_cdevil : string
val uart_cdevil_env : unit -> C_lang.env
