module Check = Devil_check.Check
module Value = Devil_ir.Value
module Token = Devil_syntax.Token
module Lexer = Devil_syntax.Lexer
module Diagnostics = Devil_syntax.Diagnostics

type row = {
  language : string;
  lines : int;
  sites : int;
  mutants_per_site : float;
  undetected_per_site : float;
  sites_with_undetected : float;
}

type device_report = {
  device : string;
  c_row : row;
  devil_row : row;
  cdevil_row : row;
  combined_row : row;
  ratio_cdevil : float;
  ratio_combined : float;
}

let max_mutants_per_site = ref 48

let count_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* Evenly-strided deterministic sample of at most [n] elements. *)
let sample n items =
  let len = List.length items in
  if len <= n then items
  else
    let arr = Array.of_list items in
    List.init n (fun i -> arr.(i * len / n))

type site = {
  offset : int;
  len : int;
  mutants : string list;  (** full generated set *)
}

let splice src ~offset ~len text =
  String.sub src 0 offset ^ text
  ^ String.sub src (offset + len) (String.length src - offset - len)

let aggregate ~language ~lines sites_results =
  (* sites_results: (generated_count, evaluated, undetected) per site.
     Per-site rates are scaled back to the generated counts so the
     sampling does not bias ms. *)
  let sites = List.length sites_results in
  let total_mutants =
    List.fold_left (fun acc (g, _, _) -> acc + g) 0 sites_results
  in
  let total_undetected =
    List.fold_left
      (fun acc (g, e, u) ->
        if e = 0 then acc
        else acc +. (float_of_int g *. float_of_int u /. float_of_int e))
      0.0 sites_results
  in
  let fs = float_of_int (max sites 1) in
  let ms = float_of_int total_mutants /. fs in
  let ums = total_undetected /. fs in
  {
    language;
    lines;
    sites;
    mutants_per_site = ms;
    undetected_per_site = ums;
    sites_with_undetected =
      (if total_mutants = 0 then 0.0
       else total_undetected /. float_of_int total_mutants *. float_of_int sites);
  }

let run_sites ~language ~lines ~src ~sites ~detect =
  let results =
    List.filter_map
      (fun site ->
        match site.mutants with
        | [] -> None
        | mutants ->
            let evaluated = sample !max_mutants_per_site mutants in
            let undetected =
              List.fold_left
                (fun acc m ->
                  let mutated =
                    splice src ~offset:site.offset ~len:site.len m
                  in
                  if detect mutated then acc else acc + 1)
                0 evaluated
            in
            Some (List.length mutants, List.length evaluated, undetected))
      sites
  in
  aggregate ~language ~lines results

(* {1 C and CDevil} *)

(* Mutating the single occurrence of an identifier is an alpha-rename:
   the program's semantics is unchanged, so it is not a valid mutant
   (the paper requires that a mutant "actually modifies the semantics").
   Keywords are always mutable — corrupting one changes the syntax. *)
let occurrence_counts texts =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun text ->
      Hashtbl.replace counts text
        (1 + Option.value (Hashtbl.find_opt counts text) ~default:0))
    texts;
  counts

let c_keywords =
  [ "if"; "else"; "while"; "for"; "do"; "return"; "break"; "continue";
    "switch"; "case"; "default"; "sizeof"; "goto";
    "void"; "char"; "short"; "int"; "long"; "unsigned"; "signed"; "const";
    "static"; "volatile"; "register"; "extern"; "struct"; "union" ]

let c_sites src =
  match C_lang.tokenize src with
  | Error msg -> failwith ("corpus does not lex: " ^ msg)
  | Ok toks ->
      let idents =
        List.filter_map
          (fun (t : C_lang.loc_token) ->
            match t.tok with C_lang.IDENT n -> Some n | _ -> None)
          toks
      in
      let counts = occurrence_counts idents in
      List.filter_map
        (fun (t : C_lang.loc_token) ->
          let mk mutants = Some { offset = t.offset; len = t.len; mutants } in
          match t.tok with
          | C_lang.IDENT name ->
              if
                List.mem name c_keywords
                || Option.value (Hashtbl.find_opt counts name) ~default:0 > 1
              then mk (Mutop.mutate_ident name)
              else None
          | C_lang.NUM text -> mk (Mutop.mutate_number text)
          | C_lang.OP op -> mk (Mutop.mutate_operator ~ops:C_lang.operators op)
          | C_lang.CHARLIT _ | C_lang.STRING _ | C_lang.PUNCT _
          | C_lang.HASH_DEFINE | C_lang.HASH_OTHER | C_lang.EOF ->
              None)
        toks

let analyze_c ~language ~env src =
  (* Sanity: the unmutated corpus must compile. *)
  (match C_lang.check ~env src with
  | Ok () -> ()
  | Error msg -> failwith ("corpus does not compile: " ^ msg));
  let detect mutated =
    match C_lang.check ~env mutated with Ok () -> false | Error _ -> true
  in
  run_sites ~language ~lines:(count_lines src) ~src ~sites:(c_sites src)
    ~detect

(* {1 Devil} *)

let devil_operators =
  [ "="; "=="; "!="; "=>"; "<="; "<=>"; ".."; "@"; "#"; "*" ]

let devil_sites src =
  let toks = Lexer.tokenize src in
  let idents =
    List.filter_map
      (fun (t : Token.loc_token) ->
        match t.token with
        | Token.IDENT n | Token.UIDENT n -> Some n
        | _ -> None)
      toks
  in
  let counts = occurrence_counts idents in
  List.filter_map
    (fun (t : Token.loc_token) ->
      let offset = t.loc.Devil_syntax.Loc.start_pos.offset in
      let len = String.length t.text in
      let mk mutants = Some { offset; len; mutants } in
      match t.token with
      | Token.IDENT name | Token.UIDENT name ->
          if Option.value (Hashtbl.find_opt counts name) ~default:0 > 1 then
            mk (Mutop.mutate_ident name)
          else None
      | Token.KW _ -> mk (Mutop.mutate_ident t.text)
      | Token.INT _ -> mk (Mutop.mutate_number t.text)
      | Token.BITLIT body ->
          (* Mutate the body; the quotes stay in place. *)
          mk (List.map (fun b -> "'" ^ b ^ "'") (Mutop.mutate_bitlit body))
      | Token.EQ | Token.EQEQ | Token.NEQ | Token.MAPSTO | Token.MAPSFROM
      | Token.MAPSBOTH | Token.DOTDOT | Token.AT | Token.HASH | Token.STAR ->
          mk (Mutop.mutate_operator ~ops:devil_operators t.text)
      | Token.LBRACE | Token.RBRACE | Token.LPAREN | Token.RPAREN
      | Token.LBRACKET | Token.RBRACKET | Token.COLON | Token.SEMI
      | Token.COMMA | Token.EOF ->
          None)
    toks

let analyze_devil ?config src =
  (match Check.compile ?config src with
  | Ok _ -> ()
  | Error diags ->
      failwith
        (Format.asprintf "specification does not verify:@.%a" Diagnostics.pp
           diags));
  let detect mutated =
    match Check.compile ?config mutated with
    | Ok _ -> false
    | Error _ -> true
    | exception _ -> true  (* a front-end crash still flags the mutant *)
  in
  run_sites ~language:"Devil" ~lines:(count_lines src) ~src
    ~sites:(devil_sites src) ~detect

(* {1 Combination and reports} *)

let combine ~language a b =
  let sites = a.sites + b.sites in
  let total_mutants =
    (a.mutants_per_site *. float_of_int a.sites)
    +. (b.mutants_per_site *. float_of_int b.sites)
  in
  let total_undetected =
    (a.undetected_per_site *. float_of_int a.sites)
    +. (b.undetected_per_site *. float_of_int b.sites)
  in
  let fs = float_of_int (max sites 1) in
  {
    language;
    lines = a.lines + b.lines;
    sites;
    mutants_per_site = total_mutants /. fs;
    undetected_per_site = total_undetected /. fs;
    sites_with_undetected =
      (if total_mutants = 0.0 then 0.0
       else total_undetected /. total_mutants *. float_of_int sites);
  }

let report ~device ~c_row ~devil_row ~cdevil_row =
  let combined_row = combine ~language:"Devil+CDevil" devil_row cdevil_row in
  let ratio a b = if b = 0.0 then infinity else a /. b in
  {
    device;
    c_row;
    devil_row;
    cdevil_row;
    combined_row;
    ratio_cdevil =
      ratio c_row.sites_with_undetected cdevil_row.sites_with_undetected;
    ratio_combined =
      ratio c_row.sites_with_undetected combined_row.sites_with_undetected;
  }

let busmouse_report () =
  report ~device:"Logitech Busmouse"
    ~c_row:(analyze_c ~language:"C" ~env:Corpus.c_env Corpus.busmouse_c)
    ~devil_row:(analyze_devil Devil_specs.Specs.busmouse_source)
    ~cdevil_row:
      (analyze_c ~language:"CDevil"
         ~env:(Corpus.busmouse_cdevil_env ())
         Corpus.busmouse_cdevil)

let ide_report () =
  (* The paper's IDE row covers both the IDE and PIIX4 specifications. *)
  let devil_ide = analyze_devil Devil_specs.Specs.ide_source in
  let devil_piix = analyze_devil Devil_specs.Specs.piix4_ide_source in
  report ~device:"IDE (Intel PIIX4)"
    ~c_row:(analyze_c ~language:"C" ~env:Corpus.c_env Corpus.ide_c)
    ~devil_row:(combine ~language:"Devil" devil_ide devil_piix)
    ~cdevil_row:
      (analyze_c ~language:"CDevil" ~env:(Corpus.ide_cdevil_env ())
         Corpus.ide_cdevil)

let ne2000_report () =
  report ~device:"Ethernet (NE2000)"
    ~c_row:(analyze_c ~language:"C" ~env:Corpus.c_env Corpus.ne2000_c)
    ~devil_row:(analyze_devil Devil_specs.Specs.ne2000_source)
    ~cdevil_row:
      (analyze_c ~language:"CDevil"
         ~env:(Corpus.ne2000_cdevil_env ())
         Corpus.ne2000_cdevil)

let table1 () = [ busmouse_report (); ide_report (); ne2000_report () ]

let pp_row fmt ?(ratio = "") (r : row) =
  Format.fprintf fmt "  %-14s %5d %7d %9.1f %12.2f %12.1f %8s@." r.language
    r.lines r.sites r.mutants_per_site r.undetected_per_site
    r.sites_with_undetected ratio

let pp_table1 fmt reports =
  Format.fprintf fmt
    "%-18s %-14s %5s %7s %9s %12s %12s %8s@." "Device" "Language" "lines"
    "sites" "mut/site" "undet/site" "sites-undet" "ratio";
  List.iter
    (fun r ->
      Format.fprintf fmt "%s@." r.device;
      pp_row fmt r.c_row;
      pp_row fmt r.devil_row;
      pp_row fmt ~ratio:(Printf.sprintf "%.1f" r.ratio_cdevil) r.cdevil_row;
      pp_row fmt
        ~ratio:(Printf.sprintf "%.1f" r.ratio_combined)
        r.combined_row)
    reports

(* The extension device: a fourth row beyond the paper's Table 1. *)
let uart_report () =
  report ~device:"16550 UART (ext)"
    ~c_row:(analyze_c ~language:"C" ~env:Corpus.c_env Corpus.uart_c)
    ~devil_row:(analyze_devil Devil_specs.Specs.uart16550_source)
    ~cdevil_row:
      (analyze_c ~language:"CDevil"
         ~env:(Corpus.uart_cdevil_env ())
         Corpus.uart_cdevil)
